// Scenario example: conflict-free frequency assignment.
//
// The classic motivation for conflict-free coloring: base stations along a
// road (points on a line) must be assigned frequencies so that every
// client — who hears all stations within an interval — can tune to at
// least one station whose frequency is free of interference, i.e. heard
// from exactly one station.  Client ranges are interval hyperedges; a
// conflict-free coloring of the stations is a valid frequency plan.
//
// We solve the same instance three ways and compare the spectrum used:
//   1. the interval-specialized dyadic plan (log2 n + 1 frequencies),
//   2. the paper's generic reduction via MaxIS approximation,
//   3. the naive fresh-frequency-per-client plan (m frequencies).
//
//   ./example_spectrum_assignment [--stations=64] [--clients=128] [--seed=3]
#include <cmath>
#include <iostream>

#include "coloring/cf_baselines.hpp"
#include "core/reduction.hpp"
#include "hypergraph/generators.hpp"
#include "mis/greedy_maxis.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace pslocal;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const std::size_t stations = opts.get_int("stations", 64);
  const std::size_t clients = opts.get_int("clients", 128);
  Rng rng(opts.get_int("seed", 3));

  const auto ranges = interval_hypergraph(
      stations, clients, 2, std::min<std::size_t>(stations, 10), rng);
  std::cout << "Spectrum assignment: " << stations << " stations, "
            << clients << " client ranges (interval hypergraph)\n\n";

  // 1. Dyadic plan.
  const auto dyadic = dyadic_interval_cf_coloring(stations);
  const bool dyadic_ok = is_conflict_free(ranges, dyadic);

  // 2. Theorem 1.1 reduction.  Intervals admit a CF coloring with
  //    k = floor(log2 n) + 1 single colors (the dyadic witness).
  const std::size_t k =
      static_cast<std::size_t>(std::floor(std::log2(
          static_cast<double>(stations)))) + 1;
  GreedyMinDegreeOracle oracle;
  ReductionOptions ropts;
  ropts.k = k;
  const auto reduction = cf_multicoloring_via_maxis(ranges, oracle, ropts);

  // 3. Fresh plan.
  const auto fresh = fresh_color_baseline(ranges);

  Table table("Frequencies used by each plan");
  table.header({"plan", "frequencies", "valid", "notes"});
  table.row({"dyadic (interval-specialized)",
             fmt_size(cf_color_count(dyadic)), fmt_bool(dyadic_ok),
             "single color per station"});
  table.row({"reduction via MaxIS (Thm 1.1)",
             fmt_size(reduction.colors_used), fmt_bool(reduction.success),
             std::to_string(reduction.phases) + " phases, k=" +
                 std::to_string(k)});
  table.row({"fresh color per client", fmt_size(fresh.palette_size()),
             fmt_bool(is_conflict_free(ranges, fresh)),
             "multicolor, wasteful"});
  std::cout << table.render();

  std::cout << "\nEvery client can tune to an interference-free station "
               "under all three plans;\nthe generic reduction approaches "
               "the specialized dyadic plan without knowing\nthe instance "
               "is an interval hypergraph.\n";
  return (dyadic_ok && reduction.success) ? 0 : 1;
}
