// pslocal_cnf — DIMACS/WDIMACS exporter for the exact-oracle backend
// (src/solver/).
//
// Exports the byte-deterministic encodings so any external SAT/MaxSAT
// solver can act as a λ=1 oracle with no linking at all:
//
//   pslocal_cnf --tiny --out-dir=DIR
//       write the two fixed golden instances (the files CI cmp's):
//       DIR/maxis_petersen.wcnf   MaxIS of the Petersen graph (WDIMACS)
//       DIR/cf_tiny.cnf           CF 2-colorability of a tiny hypergraph
//
//   pslocal_cnf --kind=maxis --family=planted-k3 --seed=5 --out=FILE
//       MaxIS → WCNF of the conflict graph G_k of a named qc family
//       (hyper_family_names in src/qc/gen.hpp), k from the instance.
//
//   pslocal_cnf --kind=cf --family=planted-k3 --seed=5 --k=3 --out=FILE
//       CF k-colorability → CNF of the same hypergraph.
//
// Golden-bytes contract: the emitted bytes are a pure function of the
// flags — comments carry instance hashes and shape, never timestamps or
// paths — and identical at every --threads value.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/conflict_graph.hpp"
#include "qc/gen.hpp"
#include "solver/encode.hpp"
#include "util/bench_report.hpp"
#include "util/hash.hpp"
#include "util/options.hpp"

using namespace pslocal;

namespace {

/// The Petersen graph: outer 5-cycle, inner 5-star, spokes.  alpha = 4.
Graph petersen() {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId i = 0; i < 5; ++i) {
    edges.emplace_back(i, (i + 1) % 5);          // outer cycle
    edges.emplace_back(5 + i, 5 + (i + 2) % 5);  // inner pentagram
    edges.emplace_back(i, 5 + i);                // spoke
  }
  return Graph::from_edges(10, edges, /*dedup=*/true);
}

/// A fixed 6-vertex hypergraph that needs 2 colors conflict-free.
Hypergraph tiny_hypergraph() {
  return Hypergraph(6, {{0, 1, 2}, {2, 3, 4}, {4, 5, 0}, {1, 3, 5}});
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  PSL_CHECK_MSG(out.good(), "pslocal_cnf: cannot open " << path);
  out << bytes;
  PSL_CHECK_MSG(out.good(), "pslocal_cnf: write to " << path << " failed");
  std::cout << path << " (" << bytes.size() << " bytes)\n";
}

std::string export_maxis(const Graph& g, const std::string& label) {
  const auto enc = solver::encode_maxis(g);
  return solver::to_wdimacs(
      enc.formula,
      {"pslocal maxis->wcnf " + label,
       "graph_hash " + hex64(hash_graph(g)),
       "n " + std::to_string(g.vertex_count()) + " m " +
           std::to_string(g.edge_count())});
}

std::string export_cf(const Hypergraph& h, std::size_t k,
                      const std::string& label) {
  const auto enc = solver::encode_cf_decision(h, k);
  return solver::to_dimacs(
      enc.formula,
      {"pslocal cf->cnf " + label + " k=" + std::to_string(k),
       "instance_hash " + hex64(hash_hypergraph(h)),
       "n " + std::to_string(h.vertex_count()) + " m " +
           std::to_string(h.edge_count())});
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  apply_thread_option(opts);

  if (opts.has("tiny")) {
    const std::string dir = opts.get_string("out-dir", ".");
    write_file(dir + "/maxis_petersen.wcnf",
               export_maxis(petersen(), "petersen"));
    write_file(dir + "/cf_tiny.cnf", export_cf(tiny_hypergraph(), 2, "tiny"));
    return 0;
  }

  const std::string kind = opts.get_string("kind", "maxis");
  const std::string family = opts.get_string("family", "planted-k3");
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  const std::string out = opts.get_string("out", "");
  PSL_CHECK_MSG(!out.empty(), "pslocal_cnf: --out=FILE is required");

  const qc::HyperInstance inst = qc::make_family(family, seed);
  const std::string label = family + " seed=" + std::to_string(seed);
  if (kind == "maxis") {
    const ConflictGraph cg(inst.hypergraph, inst.k);
    write_file(out, export_maxis(cg.graph(), label));
  } else if (kind == "cf") {
    const auto k = static_cast<std::size_t>(
        opts.get_int("k", static_cast<long>(inst.k)));
    write_file(out, export_cf(inst.hypergraph, k, label));
  } else {
    std::cerr << "pslocal_cnf: unknown --kind '" << kind
              << "' (maxis|cf)\n";
    return 1;
  }
  return 0;
}
