// pslocal_stats — live telemetry scraper for the shard tier
// (docs/tracing.md).
//
// Polls one or more running shards with the kStatsRequest wire kind —
// answered inline on each shard's io loop, so scraping never pauses
// serving — and prints one summary line per shard per poll:
//
//   pslocal_stats --connect=127.0.0.1:7000,127.0.0.1:7001
//   pslocal_stats --connect=127.0.0.1:7000 --polls=10 --interval-ms=1000
//   pslocal_stats --connect=127.0.0.1:7000 --raw      # full JSON per poll
//   pslocal_stats --self-test=48                      # self-contained demo
//
// A summary line condenses the engine stats, per-loop gauges and the
// service.stage.* histograms of the scrape into:
//
//   shard0 127.0.0.1:7000 served=48 cached=12 err=0 q=0 conns=2 loops=1
//     solve_p99_ms=1.84 rtt_p99_ms=2.10
//
// --self-test=N needs no running cluster: it starts a LocalCluster
// (--shards, default 2), drives N seeded requests through a
// ShardClient, scrapes every shard MID-RUN (half the trace served, the
// cluster still live), validates the JSON shape, prints the summary
// lines and exits nonzero on any malformed or unreachable shard.
//
// Knobs: --connect --polls --interval-ms --raw --self-test --shards
// --replication --seed --threads.
#include <chrono>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "service/workload.hpp"
#include "shard/shard.hpp"
#include "util/bench_report.hpp"
#include "util/json.hpp"
#include "util/options.hpp"

using namespace pslocal;

namespace {

struct Target {
  std::string host;
  std::uint16_t port = 0;
};

std::vector<Target> parse_targets(const std::string& list) {
  std::vector<Target> targets;
  std::istringstream is(list);
  std::string item;
  while (std::getline(is, item, ',')) {
    const auto colon = item.rfind(':');
    if (colon == std::string::npos || colon + 1 >= item.size()) {
      std::cerr << "bad --connect entry '" << item << "' (want host:port)\n";
      continue;
    }
    targets.push_back(
        {item.substr(0, colon),
         static_cast<std::uint16_t>(std::stoul(item.substr(colon + 1)))});
  }
  return targets;
}

/// The p99 of the slowest kind of one stage family, in ms (0 when no
/// such histogram recorded anything yet).
double stage_p99_ms(const json::Value& histograms, const std::string& stage) {
  double worst_ns = 0.0;
  const std::string prefix = "service.stage." + stage + ".";
  for (const auto& [name, hist] : histograms.members()) {
    if (name.rfind(prefix, 0) != 0) continue;
    if (hist.at("count").as_number() == 0.0) continue;
    worst_ns = std::max(worst_ns, hist.at("p99").as_number());
  }
  return worst_ns / 1e6;
}

/// One-line-per-shard digest of a stats payload; throws (PSL_CHECK)
/// on a payload missing the contract's keys.
std::string summarize(const Target& target, const std::string& payload) {
  const json::Value doc = json::parse(payload);
  const json::Value& engine = doc.at("engine");
  const json::Value& server = doc.at("server");
  const json::Value& histograms = doc.at("obs").at("histograms");
  std::ostringstream os;
  os << server.at("name").as_string() << " " << target.host << ":"
     << target.port
     << " served=" << static_cast<std::uint64_t>(
            engine.at("served").as_number())
     << " cached=" << static_cast<std::uint64_t>(
            engine.at("served_cached").as_number())
     << " err=" << static_cast<std::uint64_t>(engine.at("errors").as_number())
     << " q=" << static_cast<std::uint64_t>(
            server.at("queue_depth").as_number())
     << " conns=" << static_cast<std::uint64_t>(
            server.at("connections").as_number())
     << " loops=" << static_cast<std::uint64_t>(
            server.at("io_loops").as_number());
  os << " shed=" << static_cast<std::uint64_t>(engine.at("shed").as_number());
  // The QoS block (docs/qos.md) is always present; per-tenant lanes are
  // listed only when admission control is actually on.
  const json::Value& qos = engine.at("qos");
  if (qos.at("enabled").as_number() != 0.0) {
    os << " tenants=";
    bool first = true;
    for (const auto& tenant : qos.at("tenants").as_array()) {
      if (!first) os << ",";
      first = false;
      os << tenant.at("name").as_string() << ":w"
         << static_cast<std::uint64_t>(tenant.at("weight").as_number())
         << ":a"
         << static_cast<std::uint64_t>(tenant.at("admitted").as_number())
         << ":s"
         << static_cast<std::uint64_t>(
                tenant.at("shed_rate").as_number() +
                tenant.at("shed_deadline").as_number());
    }
  }
  os.setf(std::ios::fixed);
  os.precision(3);
  os << " solve_p99_ms=" << stage_p99_ms(histograms, "solve_ns")
     << " rtt_p99_ms=" << stage_p99_ms(histograms, "rtt_ns");
  return os.str();
}

/// Scrape one target; returns false (and prints why) when unreachable.
bool scrape(const Target& target, bool raw, std::string* payload_out) {
  try {
    net::Client::Config cc;
    cc.host = target.host;
    cc.port = target.port;
    cc.connect_timeout_ms = 2000;
    cc.io_timeout_ms = 5000;
    net::Client client(cc);
    client.connect();
    const net::Client::Result r = client.stats();
    if (r.outcome != net::Client::Outcome::kOk) {
      std::cerr << target.host << ":" << target.port << " scrape failed: "
                << net::Client::outcome_name(r.outcome) << "\n";
      return false;
    }
    if (payload_out != nullptr) *payload_out = r.stats_json;
    std::cout << (raw ? r.stats_json : summarize(target, r.stats_json))
              << "\n";
    return true;
  } catch (const ContractViolation& e) {
    std::cerr << target.host << ":" << target.port << " unreachable: "
              << e.what() << "\n";
    return false;
  }
}

int self_test(const Options& opts) {
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  shard::LocalClusterConfig cc;
  cc.shards = static_cast<std::size_t>(opts.get_int("shards", 2));
  cc.replication =
      static_cast<std::size_t>(opts.get_int("replication", 1));
  cc.ring_seed = seed;
  shard::LocalCluster cluster(cc);
  cluster.start();

  service::TraceParams tp;
  tp.seed = seed;
  tp.requests = static_cast<std::size_t>(opts.get_int("self-test", 48));
  tp.instance_pool = 6;
  tp.n = 32;
  tp.m = 24;
  const service::Trace trace = service::generate_trace(tp);

  shard::ShardClientConfig scc;
  scc.topology = cluster.topology();
  scc.retry.seed = seed;
  shard::ShardClient client(scc);
  client.connect();

  // First half of the trace, then the mid-run scrape: the cluster is
  // live and warm, not idle or torn down.
  std::size_t ok = 0;
  const std::size_t half = trace.requests.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    if (client.call(trace.requests[i]).outcome ==
        net::Client::Outcome::kOk)
      ++ok;
  }

  bool scrapes_ok = true;
  for (std::size_t s = 0; s < cluster.shards(); ++s) {
    const shard::Endpoint& ep = cluster.topology().shards[s];
    std::string payload;
    if (!scrape({ep.host, ep.port}, opts.get_bool("raw", false), &payload)) {
      scrapes_ok = false;
      continue;
    }
    // The self-test pins the payload contract: top-level engine/obs/
    // server objects, the per-shard identity, and one gauge pair per
    // io loop.
    const json::Value doc = json::parse(payload);
    const json::Value& server = doc.at("server");
    if (server.at("name").as_string() != "shard" + std::to_string(s) ||
        server.at("loops").as_array().size() !=
            static_cast<std::size_t>(server.at("io_loops").as_number()) ||
        !doc.at("obs").is_object() ||
        doc.at("engine").at("served").as_number() < 1.0) {
      std::cerr << "shard " << s << " stats payload violates the contract\n";
      scrapes_ok = false;
    }
  }

  for (std::size_t i = half; i < trace.requests.size(); ++i) {
    if (client.call(trace.requests[i]).outcome ==
        net::Client::Outcome::kOk)
      ++ok;
  }
  client.drain();
  cluster.stop();

  const bool served_all = ok == trace.requests.size();
  std::cout << "self-test: " << ok << "/" << trace.requests.size()
            << " served, scrapes " << (scrapes_ok ? "ok" : "FAILED") << "\n";
  return served_all && scrapes_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  apply_thread_option(opts);

  if (opts.has("self-test")) return self_test(opts);

  const std::vector<Target> targets =
      parse_targets(opts.get_string("connect", ""));
  if (targets.empty()) {
    std::cerr << "usage: pslocal_stats --connect=host:port[,host:port...]"
                 " [--polls=N] [--interval-ms=M] [--raw]\n"
                 "       pslocal_stats --self-test=N [--shards=S]\n";
    return 2;
  }
  const auto polls = static_cast<std::size_t>(opts.get_int("polls", 1));
  const auto interval_ms = opts.get_int("interval-ms", 500);
  const bool raw = opts.get_bool("raw", false);

  bool all_ok = true;
  for (std::size_t p = 0; p < polls; ++p) {
    if (p != 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    for (const Target& target : targets)
      all_ok = scrape(target, raw, nullptr) && all_ok;
  }
  return all_ok ? 0 : 1;
}
