// pslocal_fuzz — the deterministic property-based fuzz driver (src/qc/).
//
// Runs the standing property set (differential oracles over graphs,
// hypergraphs and service traces, plus fault injection) for a bounded
// number of iterations per property.  Everything is a pure function of
// the base seed: two runs with the same flags produce byte-identical
// JSON reports at any --threads value, and every failure prints a
// one-line reproducer command that replays the exact failing iteration.
//
//   pslocal_fuzz --iters=500 --seed=1                  # full sweep
//   pslocal_fuzz --property=mis-differential --seed=7  # one property
//   pslocal_fuzz --plant-bug --iters=50                # must fail
//   pslocal_fuzz --time-budget-ms=30000                # CI soak mode
//
// Knobs: --seed --iters --time-budget-ms --property=<name>
// --family=<name> --oracle=<name> --plant-bug --json-out=<path>
// --threads --list.  Flags accept both `--name=value` and
// `--name value` spellings (the latter is normalized below).
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "qc/property.hpp"
#include "util/bench_report.hpp"
#include "util/options.hpp"

using namespace pslocal;

namespace {

/// util::Options only understands `--name=value`; fold a space-separated
/// `--name value` argv pair into that form so the documented acceptance
/// command (`pslocal_fuzz --iters 500 --seed 1 --threads 8`) works too.
/// A `--flag` followed by another `--flag` (or nothing) stays boolean.
std::vector<std::string> normalize_argv(int argc, char** argv) {
  std::vector<std::string> out;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    const bool is_flag =
        arg.size() > 2 && arg[0] == '-' && arg[1] == '-' &&
        arg.find('=') == std::string::npos;
    if (is_flag && i + 1 < argc && argv[i + 1][0] != '-') {
      arg += "=";
      arg += argv[++i];
    }
    out.push_back(std::move(arg));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args = normalize_argv(argc, argv);
  std::vector<const char*> argp;
  argp.reserve(args.size());
  for (const auto& a : args) argp.push_back(a.c_str());
  const Options opts(static_cast<int>(argp.size()), argp.data());
  apply_thread_option(opts);

  qc::FuzzOptions fuzz;
  fuzz.seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  fuzz.iters = static_cast<std::size_t>(opts.get_int("iters", 200));
  fuzz.time_budget_ms = opts.get_int("time-budget-ms", 0);
  fuzz.only = opts.get_string("property", "");
  fuzz.family = opts.get_string("family", "");
  fuzz.oracle = opts.get_string("oracle", "");
  fuzz.plant_bug = opts.get_bool("plant-bug", false);
  // Naming the planted-bug property arms it — the printed reproducer
  // says `--property=planted-bug` and must replay as-is.
  if (fuzz.only == "planted-bug") fuzz.plant_bug = true;

  const std::vector<qc::Property> props = qc::default_properties(fuzz);

  if (opts.get_bool("list", false)) {
    for (const auto& p : props) std::cout << p.name << "\n";
    return 0;
  }
  if (!fuzz.only.empty()) {
    bool known = false;
    for (const auto& p : props) known = known || p.name == fuzz.only;
    if (!known) {
      std::cerr << "pslocal_fuzz: unknown property '" << fuzz.only
                << "' (see --list)\n";
      return 2;
    }
  }

  std::cout << "pslocal_fuzz: seed=" << fuzz.seed << " iters=" << fuzz.iters
            << (fuzz.plant_bug ? " [planted bug armed]" : "") << "\n";

  const qc::FuzzReport report = qc::run_properties(props, fuzz);

  for (const auto& out : report.outcomes) {
    if (!out.failure.has_value()) {
      std::cout << "  PASS " << out.name << " (" << out.iterations
                << " iterations)\n";
      continue;
    }
    std::cout << "  FAIL " << out.name << " at iteration "
              << out.iterations - 1 << " (seed " << out.fail_seed << ")\n"
              << "       " << out.failure->message << "\n"
              << "       counterexample: " << out.failure->counterexample
              << "\n"
              << "       shrink: " << out.failure->shrink_accepted << "/"
              << out.failure->shrink_attempts << " deletions accepted\n"
              << "       reproduce: " << out.reproducer << "\n";
  }

  const std::string json_path = opts.json_out();
  if (!json_path.empty()) {
    std::ofstream os(json_path);
    if (!os) {
      std::cerr << "pslocal_fuzz: cannot write " << json_path << "\n";
      return 2;
    }
    os << qc::report_json(report, fuzz);
    std::cout << "report written to " << json_path << "\n";
  }

  if (!report.passed()) {
    std::cout << report.failure_count() << " propert"
              << (report.failure_count() == 1 ? "y" : "ies") << " failed\n";
    return 1;
  }
  std::cout << "all properties held\n";
  return 0;
}
