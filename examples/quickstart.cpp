// Quickstart: conflict-free multicoloring via MaxIS approximation.
//
// Builds a hypergraph with a hidden (planted) conflict-free k-coloring,
// runs the Theorem 1.1 reduction with the min-degree greedy MaxIS oracle,
// verifies the result, and prints the per-phase trace.
//
//   ./example_quickstart [--n=64] [--m=48] [--k=3] [--seed=1]
#include <iostream>

#include "core/reduction.hpp"
#include "hypergraph/generators.hpp"
#include "hypergraph/properties.hpp"
#include "mis/greedy_maxis.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace pslocal;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  PlantedCfParams params;
  params.n = opts.get_int("n", 64);
  params.m = opts.get_int("m", 48);
  params.k = opts.get_int("k", 3);
  Rng rng(opts.get_int("seed", 1));

  // 1. A hypergraph that admits a CF k-coloring (the reduction's promise).
  const auto inst = planted_cf_colorable(params, rng);
  const auto stats = hypergraph_stats(inst.hypergraph);
  std::cout << "Instance: n=" << stats.vertices << " vertices, m="
            << stats.edges << " hyperedges, sizes in [" << stats.corank
            << ", " << stats.rank << "], planted palette k=" << inst.k
            << "\n\n";

  // 2. Run the reduction: phases of conflict graph -> MaxIS -> coloring.
  GreedyMinDegreeOracle oracle;
  ReductionOptions ropts;
  ropts.k = params.k;
  const auto res = cf_multicoloring_via_maxis(inst.hypergraph, oracle, ropts);

  Table trace("Per-phase trace (oracle: " + oracle.name() + ")");
  trace.header({"phase", "|E_i|", "|V(Gk)|", "|E(Gk)|", "|I_i|",
                "edges made happy", "oracle ms"});
  for (const auto& t : res.trace)
    trace.row({fmt_size(t.phase), fmt_size(t.edges_before),
               fmt_size(t.conflict_nodes), fmt_size(t.conflict_edges),
               fmt_size(t.is_size), fmt_size(t.happy_removed),
               fmt_double(t.oracle_millis, 2)});
  std::cout << trace.render();

  // 3. Verify and summarize.
  std::cout << "\nconflict-free: "
            << fmt_bool(is_conflict_free(inst.hypergraph, res.coloring))
            << "\nphases: " << res.phases << " (palette bound k*phases = "
            << res.palette_bound << ")\ncolors used: " << res.colors_used
            << " (trivial fresh baseline would use " << stats.edges << ")\n";
  return res.success ? 0 : 1;
}
