// Scenario example: derandomization, the paper's raison d'être.
//
// "If any P-SLOCAL-complete problem can be solved efficiently by a
//  deterministic algorithm in the LOCAL model all problems in the class
//  P-SLOCAL can be solved efficiently by deterministic algorithms."
//
// This demo shows the derandomization mechanics the class is built on, at
// three levels:
//
//  1. A problem where randomness is trivial but determinism needs work:
//     hypergraph splitting.  Random coloring fails a measurable fraction
//     of the time near the threshold; the conditional-expectations
//     SLOCAL(1) algorithm *never* fails above it.
//  2. SLOCAL -> LOCAL: the compiler turns the sequential derandomized
//     algorithm into a deterministic distributed one, billed in rounds
//     via a network decomposition.
//  3. The full stack: a deterministic oracle (greedy) inside the
//     Theorem 1.1 reduction solves the P-SLOCAL-complete CF multicoloring
//     problem with zero random bits.
//
//   ./example_derandomization_demo [--seed=21]
#include <cmath>
#include <iostream>
#include <numeric>

#include "coloring/splitting.hpp"
#include "core/reduction.hpp"
#include "hypergraph/generators.hpp"
#include "local/slocal_compiler.hpp"
#include "mis/greedy_maxis.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace pslocal;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const std::uint64_t seed = opts.get_int("seed", 21);
  Rng rng(seed);

  // 1. Random vs derandomized splitting near the threshold.
  {
    Table table(
        "1) splitting: random coin-flips vs conditional expectations "
        "(50 edges, 200 random trials each)");
    table.header({"edge size s", "estimator m*2^(1-s)",
                  "random failure rate", "derandomized mono edges"});
    for (std::size_t s : {4u, 6u, 8u, 10u}) {
      const auto h = random_uniform_hypergraph(80, 50, s, rng);
      std::size_t failures = 0;
      for (int t = 0; t < 200; ++t)
        if (!is_valid_splitting(h, random_splitting(h, rng))) ++failures;
      std::vector<VertexId> order(h.vertex_count());
      std::iota(order.begin(), order.end(), VertexId{0});
      const auto der = derandomized_splitting(h, order);
      table.row({fmt_size(s), fmt_double(splitting_estimator(h), 3),
                 fmt_double(static_cast<double>(failures) / 200.0, 3),
                 fmt_size(monochromatic_edge_count(h, der.splitting))});
    }
    std::cout << table.render() << "\n";
  }

  // 2. The derandomized splitting compiled to deterministic LOCAL.
  {
    const auto h = random_uniform_hypergraph(60, 40, 9, rng);
    const Graph primal = h.primal_graph();
    struct SplitCell {
      bool assigned = false;
      bool blue = false;
    };
    // Inline conditional-expectations step (locality 1), run through the
    // compiler on the communication graph.
    auto run = compile_slocal_to_local<SplitCell>(
        primal, 1, std::vector<SplitCell>(h.vertex_count()),
        [&h](SLocalView<SplitCell>& view) {
          const VertexId v = view.center();
          double if_red = 0, if_blue = 0;
          for (EdgeId e : h.edges_of(v)) {
            for (int hypo = 0; hypo < 2; ++hypo) {
              std::size_t unassigned = 0;
              bool any_r = false, any_b = false;
              for (VertexId u : h.edge(e)) {
                bool assigned, blue;
                if (u == v) {
                  assigned = true;
                  blue = (hypo == 1);
                } else {
                  const auto& s = view.state(u);
                  assigned = s.assigned;
                  blue = s.blue;
                }
                if (!assigned)
                  ++unassigned;
                else
                  (blue ? any_b : any_r) = true;
              }
              double p = 0;
              if (!(any_r && any_b)) {
                p = std::pow(2.0, -static_cast<double>(unassigned));
                if (!any_r && !any_b) p *= 2.0;
              }
              (hypo == 0 ? if_red : if_blue) += p;
            }
          }
          view.own_state() = SplitCell{true, if_blue < if_red};
        });
    Splitting s(h.vertex_count());
    for (VertexId v = 0; v < h.vertex_count(); ++v)
      s[v] = run.states[v].blue;
    std::cout << "2) compiled deterministic LOCAL splitting: valid="
              << fmt_bool(is_valid_splitting(h, s)) << ", rounds bill = "
              << run.local_rounds << " (decomposition: "
              << run.decomposition_colors << " colors, "
              << run.decomposition_clusters << " clusters)\n\n";
  }

  // 3. Deterministic end-to-end CF multicoloring via the reduction.
  {
    PlantedCfParams params;
    params.n = 60;
    params.m = 45;
    params.k = 3;
    auto inst = planted_cf_colorable(params, rng);
    GreedyMinDegreeOracle oracle;  // fully deterministic
    ReductionOptions ropts;
    ropts.k = 3;
    const auto res =
        cf_multicoloring_via_maxis(inst.hypergraph, oracle, ropts);
    std::cout << "3) deterministic reduction: success="
              << fmt_bool(res.success) << ", colors=" << res.colors_used
              << ", phases=" << res.phases
              << " — zero random bits consumed.\n";
  }
  return 0;
}
