// pslocal_cli — file-based command-line front end to the library.
//
// Subcommands:
//   gen      --type=planted|interval|uniform --out=FILE [--n --m --k --s
//            --eps --seed]                    generate a hypergraph
//   inspect  --in=FILE [--eps=0.5]            print structural stats
//   solve    --in=FILE [--k --oracle=greedy|clique|random|luby|exact
//            --out=FILE --seed --trace]       CF-multicolor via Theorem 1.1
//   verify   --in=FILE --coloring=FILE        check a multicoloring file
//   conflict --in=FILE --k=K --out=FILE       emit G_k as an edge list
//
// Coloring file format: line 1 "n"; then per vertex a line
// "c  color_1 ... color_c".
//
// Examples:
//   pslocal_cli gen --type=planted --n=64 --m=48 --k=3 --out=h.hg
//   pslocal_cli solve --in=h.hg --k=3 --oracle=greedy --out=h.colors
//   pslocal_cli verify --in=h.hg --coloring=h.colors
#include <fstream>
#include <iostream>
#include <memory>

#include "core/conflict_graph.hpp"
#include "core/reduction.hpp"
#include "core/simulation.hpp"
#include "graph/io.hpp"
#include "hypergraph/generators.hpp"
#include "hypergraph/io.hpp"
#include "hypergraph/properties.hpp"
#include "local/luby_mis.hpp"
#include "mis/exact_maxis.hpp"
#include "mis/greedy_maxis.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace pslocal;

namespace {

int usage() {
  std::cerr << "usage: pslocal_cli <gen|inspect|solve|verify|conflict> "
               "[--options]\n       see the header of examples/pslocal_cli.cpp\n";
  return 2;
}

void write_multicoloring(const std::string& path, const CfMulticoloring& mc) {
  std::ofstream f(path);
  PSL_CHECK_MSG(f.good(), "cannot open " << path);
  f << mc.vertex_count() << '\n';
  for (VertexId v = 0; v < mc.vertex_count(); ++v) {
    const auto& cs = mc.colors_of(v);
    f << cs.size();
    for (auto c : cs) f << ' ' << c;
    f << '\n';
  }
}

CfMulticoloring read_multicoloring(const std::string& path) {
  std::ifstream f(path);
  PSL_CHECK_MSG(f.good(), "cannot open " << path);
  std::size_t n = 0;
  PSL_CHECK_MSG(static_cast<bool>(f >> n), "bad coloring header");
  CfMulticoloring mc(n);
  for (VertexId v = 0; v < n; ++v) {
    std::size_t count = 0;
    PSL_CHECK_MSG(static_cast<bool>(f >> count), "bad color count at " << v);
    for (std::size_t i = 0; i < count; ++i) {
      std::size_t c = 0;
      PSL_CHECK_MSG(static_cast<bool>(f >> c), "bad color at vertex " << v);
      mc.add_color(v, c);
    }
  }
  return mc;
}

MaxISOraclePtr make_oracle(const std::string& kind, std::uint64_t seed) {
  if (kind == "greedy") return std::make_unique<GreedyMinDegreeOracle>();
  if (kind == "clique") return std::make_unique<CliqueCoverGreedyOracle>();
  if (kind == "random") return std::make_unique<RandomGreedyOracle>(seed);
  if (kind == "luby") return std::make_unique<LubyOracle>(seed);
  if (kind == "exact") return std::make_unique<ExactOracle>();
  PSL_CHECK_MSG(false, "unknown oracle '" << kind << "'");
  return nullptr;
}

int cmd_gen(const Options& opts) {
  const std::string type = opts.get_string("type", "planted");
  const std::string out = opts.get_string("out", "");
  if (out.empty()) return usage();
  Rng rng(opts.get_int("seed", 1));
  Hypergraph h;
  if (type == "planted") {
    PlantedCfParams params;
    params.n = opts.get_int("n", 64);
    params.m = opts.get_int("m", 48);
    params.k = opts.get_int("k", 3);
    params.epsilon = opts.get_double("eps", 1.0);
    auto inst = planted_cf_colorable(params, rng);
    h = std::move(inst.hypergraph);
    std::cout << "generated planted instance (admits CF " << params.k
              << "-coloring)\n";
  } else if (type == "interval") {
    h = interval_hypergraph(opts.get_int("n", 64), opts.get_int("m", 96), 2,
                            opts.get_int("s", 10), rng);
  } else if (type == "uniform") {
    h = random_uniform_hypergraph(opts.get_int("n", 64), opts.get_int("m", 48),
                                  opts.get_int("s", 4), rng);
  } else {
    return usage();
  }
  save_hypergraph(out, h);
  std::cout << "wrote " << h.vertex_count() << " vertices, " << h.edge_count()
            << " edges to " << out << "\n";
  return 0;
}

int cmd_inspect(const Options& opts) {
  const std::string in = opts.get_string("in", "");
  if (in.empty()) return usage();
  const auto h = load_hypergraph(in);
  const auto stats = hypergraph_stats(h);
  const double eps = opts.get_double("eps", 0.5);
  Table table("hypergraph " + in);
  table.header({"property", "value"});
  table.row({"vertices", fmt_size(stats.vertices)});
  table.row({"edges", fmt_size(stats.edges)});
  table.row({"rank / corank", fmt_size(stats.rank) + " / " +
                                  fmt_size(stats.corank)});
  table.row({"avg edge size", fmt_double(stats.avg_edge_size, 2)});
  table.row({"max vertex degree", fmt_size(stats.max_vertex_degree)});
  table.row({"almost uniform (eps=" + fmt_double(eps, 2) + ")",
             fmt_bool(is_almost_uniform(h, eps))});
  table.row({"distinct edges", fmt_bool(has_distinct_edges(h))});
  std::cout << table.render();
  return 0;
}

int cmd_solve(const Options& opts) {
  const std::string in = opts.get_string("in", "");
  if (in.empty()) return usage();
  const auto h = load_hypergraph(in);
  auto oracle = make_oracle(opts.get_string("oracle", "greedy"),
                            opts.get_int("seed", 1));
  ReductionOptions ropts;
  ropts.k = opts.get_int("k", 3);
  const auto res = cf_multicoloring_via_maxis(h, *oracle, ropts);
  if (opts.get_bool("trace", false)) {
    Table trace("phase trace");
    trace.header({"phase", "|E_i|", "|I_i|", "removed"});
    for (const auto& t : res.trace)
      trace.row({fmt_size(t.phase), fmt_size(t.edges_before),
                 fmt_size(t.is_size), fmt_size(t.happy_removed)});
    std::cout << trace.render();
  }
  std::cout << "success=" << fmt_bool(res.success) << " phases=" << res.phases
            << " colors=" << res.colors_used << " (k*phases="
            << res.palette_bound << ")\n";
  const std::string out = opts.get_string("out", "");
  if (!out.empty() && res.success) {
    write_multicoloring(out, res.coloring);
    std::cout << "wrote multicoloring to " << out << "\n";
  }
  return res.success ? 0 : 1;
}

int cmd_verify(const Options& opts) {
  const std::string in = opts.get_string("in", "");
  const std::string coloring = opts.get_string("coloring", "");
  if (in.empty() || coloring.empty()) return usage();
  const auto h = load_hypergraph(in);
  const auto mc = read_multicoloring(coloring);
  PSL_CHECK_MSG(mc.vertex_count() == h.vertex_count(),
                "coloring has " << mc.vertex_count() << " vertices, expected "
                                << h.vertex_count());
  const auto happy = happy_edge_count(h, mc);
  const bool ok = happy == h.edge_count();
  std::cout << "happy edges: " << happy << "/" << h.edge_count()
            << "  conflict-free: " << fmt_bool(ok) << "  colors: "
            << mc.palette_size() << "\n";
  return ok ? 0 : 1;
}

int cmd_conflict(const Options& opts) {
  const std::string in = opts.get_string("in", "");
  const std::string out = opts.get_string("out", "");
  if (in.empty() || out.empty()) return usage();
  const auto h = load_hypergraph(in);
  const ConflictGraph cg(h, opts.get_int("k", 3));
  save_graph(out, cg.graph());
  const auto host = analyze_host_mapping(cg);
  std::cout << "wrote G_k: " << cg.triple_count() << " triples, "
            << cg.graph().edge_count() << " edges to " << out
            << "  (host dilation " << host.max_dilation << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const Options opts(argc - 1, argv + 1);
  try {
    if (cmd == "gen") return cmd_gen(opts);
    if (cmd == "inspect") return cmd_inspect(opts);
    if (cmd == "solve") return cmd_solve(opts);
    if (cmd == "verify") return cmd_verify(opts);
    if (cmd == "conflict") return cmd_conflict(opts);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
