// Scenario example: the full P-SLOCAL-completeness pipeline of Theorem 1.1,
// narrated step by step with every lemma re-checked on live objects.
//
//   hardness:     CF multicoloring  --local reduction-->  MaxIS approx
//   containment:  MaxIS approx is solved by an SLOCAL algorithm
//                 (ball carving, 2-approx, O(log n) locality)
//
// Running the reduction with the ball-carving oracle therefore solves a
// P-SLOCAL-complete problem using a P-SLOCAL algorithm — the two halves of
// the completeness proof composed into one executable.
//
//   ./example_completeness_pipeline [--m=14] [--seed=11]
#include <iostream>

#include "core/correspondence.hpp"
#include "core/problems.hpp"
#include "core/reduction.hpp"
#include "core/simulation.hpp"
#include "hypergraph/generators.hpp"
#include "slocal/ball_carving.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace pslocal;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const std::size_t m = opts.get_int("m", 14);
  Rng rng(opts.get_int("seed", 11));

  std::cout << "== The P-SLOCAL landscape ==\n";
  for (const auto& p : problem_catalogue())
    std::cout << "  - " << p.name << ": " << to_string(p.status) << "  ["
              << p.reference << "]\n";
  std::cout << "\n";

  // The P-SLOCAL-complete source problem (Theorem 1.2): CF multicoloring
  // of an almost-uniform hypergraph that admits a CF k-coloring.
  PlantedCfParams params;
  params.n = 2 * m;
  params.m = m;
  params.k = 2;
  const auto inst = planted_cf_colorable(params, rng);
  std::cout << "Source instance: CF multicoloring, m=" << m
            << " hyperedges, promised CF k-coloring with k=2\n\n";

  // Phase-by-phase, with all of Lemma 2.1 re-verified.
  Hypergraph current = inst.hypergraph.restrict_edges(
      std::vector<bool>(inst.hypergraph.edge_count(), true));
  BallCarvingOracle oracle;  // the containment-side SLOCAL algorithm
  CfMulticoloring coloring(inst.hypergraph.vertex_count());
  Table table("Pipeline trace (oracle: SLOCAL ball carving, lambda <= 2)");
  table.header({"phase", "|E_i|", "|V(Gk)|", "dilation<=1", "alpha=|E_i|",
                "|I_i|", "happy>=|I_i|", "removed"});

  std::size_t phase = 0;
  while (current.edge_count() > 0) {
    ++phase;
    const ConflictGraph cg(current, 2);

    // The conflict graph is simulatable in H in one round (Section 2).
    const auto host = analyze_host_mapping(cg);

    // Lemma 2.1 a): the promise coloring certifies alpha(G_k) = |E_i|.
    const auto lemma_a = check_lemma_a(cg, CfColoring(inst.planted_coloring));

    // The SLOCAL containment algorithm plays the lambda-approx oracle.
    const auto is = oracle.solve(cg.graph());

    // Lemma 2.1 b): the IS converts to a partial coloring, edges get happy.
    const auto lemma_b = check_lemma_b(cg, is);
    const auto induced = coloring_from_is(cg, is);
    coloring.absorb(induced.coloring, (phase - 1) * 2);

    const auto happy = happy_edges(current, induced.coloring);
    std::vector<bool> keep(current.edge_count());
    std::size_t removed = 0;
    for (EdgeId e = 0; e < current.edge_count(); ++e) {
      keep[e] = !happy[e];
      if (happy[e]) ++removed;
    }
    table.row({fmt_size(phase), fmt_size(current.edge_count()),
               fmt_size(cg.triple_count()),
               fmt_bool(host.one_round_simulable),
               fmt_bool(lemma_a.attains_maximum), fmt_size(is.size()),
               fmt_bool(lemma_b.happy_at_least_is_size), fmt_size(removed)});
    if (!host.one_round_simulable || !lemma_a.attains_maximum ||
        !lemma_b.happy_at_least_is_size || removed == 0)
      return 1;
    current = current.restrict_edges(keep);
  }
  std::cout << table.render();

  const bool ok = is_conflict_free(inst.hypergraph, coloring);
  std::cout << "\nFinal multicoloring conflict-free: " << fmt_bool(ok)
            << ", colors used: " << coloring.palette_size() << " <= k*phases = "
            << 2 * phase << "\n"
            << "rho bound for lambda=2: "
            << reduction_phase_bound(2.0, m) << " phases; used " << phase
            << ".\n\nBoth directions of Theorem 1.1 exercised: a P-SLOCAL "
               "algorithm (ball carving)\nsolved the P-SLOCAL-complete "
               "problem through the paper's local reduction.\n";
  return ok ? 0 : 1;
}
