// Scenario example: the two models of the paper, side by side.
//
// The paper's backdrop (Section 1): MIS has fast *randomized* LOCAL
// algorithms [Lub86] but no known polylog *deterministic* one, which is
// what the SLOCAL model and P-SLOCAL-completeness probe.  This example
// runs, on the same graphs:
//   * the SLOCAL(1) greedy MIS (deterministic, sequential, locality 1),
//   * Luby's randomized LOCAL MIS (O(log n) rounds),
//   * the SLOCAL->LOCAL compiler (deterministic LOCAL via network
//     decomposition — the derandomization route the paper's completeness
//     result speaks to).
//
//   ./example_slocal_vs_local [--seed=7]
#include <iostream>
#include <numeric>

#include "graph/generators.hpp"
#include "local/luby_mis.hpp"
#include "local/slocal_compiler.hpp"
#include "mis/independent_set.hpp"
#include "slocal/greedy_algorithms.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace pslocal;

namespace {
enum class Mark : std::uint8_t { kUndecided, kIn, kOut };
}

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const std::uint64_t seed = opts.get_int("seed", 7);

  Table table("MIS three ways: SLOCAL(1), randomized LOCAL, compiled LOCAL");
  table.header({"graph", "n", "SLOCAL |MIS|", "SLOCAL locality",
                "Luby |MIS|", "Luby rounds", "compiled |MIS|",
                "compiled rounds bill"});

  struct Workload {
    std::string name;
    Graph graph;
  };
  Rng rng(seed);
  std::vector<Workload> workloads;
  workloads.push_back({"ring(64)", ring(64)});
  workloads.push_back({"grid(8x8)", grid(8, 8)});
  workloads.push_back({"gnp(96, deg~4)", gnp(96, 4.0 / 96.0, rng)});
  workloads.push_back({"tree(80)", random_tree(80, rng)});

  for (const auto& w : workloads) {
    const Graph& g = w.graph;
    std::vector<VertexId> order(g.vertex_count());
    std::iota(order.begin(), order.end(), VertexId{0});

    const auto slocal = slocal_greedy_mis(g, order);
    const auto luby = luby_mis(g, seed);
    const auto compiled = compile_slocal_to_local<Mark>(
        g, 1, std::vector<Mark>(g.vertex_count(), Mark::kUndecided),
        [](SLocalView<Mark>& view) {
          bool neighbor_in = false;
          for (VertexId u : view.neighbors())
            if (view.state(u) == Mark::kIn) {
              neighbor_in = true;
              break;
            }
          view.own_state() = neighbor_in ? Mark::kOut : Mark::kIn;
        });
    std::vector<VertexId> compiled_set;
    for (VertexId v = 0; v < g.vertex_count(); ++v)
      if (compiled.states[v] == Mark::kIn) compiled_set.push_back(v);

    if (!is_maximal_independent_set(g, slocal.independent_set) ||
        !is_maximal_independent_set(g, luby.independent_set) ||
        !is_maximal_independent_set(g, compiled_set))
      return 1;

    table.row({w.name, fmt_size(g.vertex_count()),
               fmt_size(slocal.independent_set.size()),
               fmt_size(slocal.locality),
               fmt_size(luby.independent_set.size()), fmt_size(luby.rounds),
               fmt_size(compiled_set.size()), fmt_size(compiled.local_rounds)});
  }
  std::cout << table.render();
  std::cout
      << "\nSLOCAL solves MIS with locality 1 but sequentially; Luby is "
         "parallel but randomized;\nthe compiler turns the SLOCAL algorithm "
         "into a deterministic LOCAL one whose round bill\nis driven by the "
         "network decomposition — the derandomization currency in which\n"
         "P-SLOCAL-completeness (Theorem 1.1) is quoted.\n";
  return 0;
}
