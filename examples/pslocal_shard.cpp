// pslocal_shard — in-process shard cluster round-trip (docs/shard.md).
//
// Spins up an N-shard LocalCluster (one ServiceEngine + net::Server per
// shard on ephemeral loopback ports), runs the router's deterministic
// placement self-test, then drives a seeded trace through a ShardClient
// with the requested replication factor and checks every response.
// With --replay-out the canonical payloads are recorded; because
// placement never leaks into payload bytes, replay files from different
// shard counts and replication factors are cmp-identical — the
// shard-smoke CI job runs this binary at --shards=1/2 and rf=1/2 and
// byte-compares the outputs.
//
//   pslocal_shard --shards=2                         # round-trip, exit 0
//   pslocal_shard --shards=4 --replication=2         # fan-out pair
//   pslocal_shard --shards=2 --replay-out=r2.json    # record payloads
//   pslocal_shard --self-test-only                   # placement check only
//
// --kill-shard=i stops shard i after the first quarter of the trace —
// a scripted failover demo: with replication >= 2 (or i not the only
// shard) the run still answers every request.
//
// With --trace-out=<path> the whole run is recorded as one Chrome
// trace (docs/tracing.md): the driving client thread, each shard's io
// loops / completer / dispatcher appear as named "shard<i>.*" tracks,
// and every request's spans (shard.call -> shard.attempt ->
// net.dispatch -> service.solve -> net.serialize) carry its trace_id.
//
// Knobs: --shards --replication --requests --pool --n --m --k
// --weight-mutate --cache-entries --io-threads --vnodes --replay-out
// --kill-shard --self-test-only --trace-out --threads --seed.
#include <unistd.h>

#include <iostream>
#include <string>

#include "obs/obs.hpp"
#include "service/engine.hpp"
#include "service/workload.hpp"
#include "shard/shard.hpp"
#include "util/bench_report.hpp"
#include "util/check.hpp"
#include "util/options.hpp"

using namespace pslocal;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  apply_thread_option(opts);  // starts the trace session on --trace-out
  obs::set_trace_process(static_cast<std::uint32_t>(::getpid()),
                         "pslocal_shard");
  obs::set_thread_label("client");
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));

  shard::LocalClusterConfig cc;
  cc.shards = static_cast<std::size_t>(opts.get_int("shards", 2));
  cc.replication = static_cast<std::size_t>(
      opts.get_int("replication", 1));
  cc.engine.cache.max_entries =
      static_cast<std::size_t>(opts.get_int("cache-entries", 512));
  cc.io_threads = static_cast<std::size_t>(opts.get_int("io-threads", 1));
  cc.vnodes = static_cast<std::size_t>(opts.get_int("vnodes", 64));
  cc.ring_seed = seed;

  // Placement self-test on the requested shard count (socket-free).
  {
    shard::Topology topo;
    topo.ring_seed = cc.ring_seed;
    topo.vnodes = cc.vnodes;
    for (std::size_t s = 0; s < cc.shards; ++s)
      topo.shards.push_back(shard::Endpoint{"127.0.0.1", 1});
    const auto st = shard::ShardRouter(topo).self_test();
    std::cout << "router " << st.detail << "\n";
    if (!st.ok) return 1;
    if (opts.get_bool("self-test-only", false)) return 0;
  }

  service::TraceParams tp;
  tp.seed = seed;
  tp.requests = static_cast<std::size_t>(opts.get_int("requests", 48));
  tp.instance_pool = static_cast<std::size_t>(opts.get_int("pool", 6));
  tp.n = static_cast<std::size_t>(opts.get_int("n", 32));
  tp.m = static_cast<std::size_t>(opts.get_int("m", 24));
  tp.k = static_cast<std::size_t>(opts.get_int("k", 3));
  tp.weight_mutate =
      static_cast<unsigned>(opts.get_int("weight-mutate", 0));
  const service::Trace trace = service::generate_trace(tp);

  shard::LocalCluster cluster(cc);
  cluster.start();
  std::cout << "cluster: " << topology_json(cluster.topology()) << "\n";

  shard::ShardClientConfig scc;
  scc.topology = cluster.topology();
  scc.retry.seed = seed;
  shard::ShardClient client(scc);
  client.connect();

  const auto kill_shard = opts.get_int("kill-shard", -1);
  const std::size_t kill_at = trace.requests.size() / 4;

  std::vector<service::ReplayEntry> entries;
  entries.reserve(trace.requests.size());
  std::size_t ok = 0;
  for (std::size_t i = 0; i < trace.requests.size(); ++i) {
    if (kill_shard >= 0 && i == kill_at) {
      std::cout << "killing shard " << kill_shard << " at request " << i
                << "\n";
      cluster.kill_shard(static_cast<std::size_t>(kill_shard));
    }
    const net::Client::Result r = client.call(trace.requests[i]);
    if (r.outcome == net::Client::Outcome::kOk) {
      ++ok;
      entries.push_back(
          service::ReplayEntry{i, r.response.key, r.response.result});
    } else {
      std::cerr << "request " << i << " failed: "
                << net::Client::outcome_name(r.outcome)
                << (r.error.empty() ? "" : " (" + r.error + ")") << "\n";
    }
  }
  client.drain();

  const auto stats = client.stats();
  std::cout << "served " << ok << "/" << trace.requests.size() << " over "
            << cc.shards << " shards (rf=" << client.replication()
            << "): sends=" << stats.sends
            << " fanout=" << stats.fanout_sends
            << " dups_suppressed=" << stats.duplicates_suppressed
            << " failovers=" << stats.failovers
            << " reroutes=" << stats.reroutes_queue_full << "\n";
  std::cout << "routed per shard: [";
  const auto routed = client.routed_per_shard();
  for (std::size_t s = 0; s < routed.size(); ++s)
    std::cout << (s == 0 ? "" : ",") << routed[s];
  std::cout << "]\n";
  for (std::size_t s = 0; s < cluster.shards(); ++s) {
    std::cout << "shard " << s << " engine: "
              << service::stats_json(cluster.engine(s).stats()) << "\n";
  }

  const std::string replay_out = opts.get_string("replay-out", "");
  if (!replay_out.empty() && ok == trace.requests.size()) {
    service::write_replay_file(replay_out, entries, tp.seed);
    std::cout << "replay written to " << replay_out << "\n";
  }

  cluster.stop();
  obs::finish_tracing();  // writes the --trace-out file, if a session ran
  return ok == trace.requests.size() ? 0 : 1;
}
