// pslocal_serve — interactive driver for the serving engine.
//
// Spins up a ServiceEngine, generates (or replays) a seeded trace, and
// prints per-request responses plus the engine's end-of-run statistics.
// This is the smallest end-to-end tour of src/service/: admission,
// batching, the memoizing solver cache, and deterministic replay, all
// from one binary.  docs/service.md walks through the output.
//
//   pslocal_serve --requests=40 --threads=4            # quick demo
//   pslocal_serve --kind=greedy_maxis --requests=12    # one kind only
//   pslocal_serve --replay-out=trace.json              # record
//   pslocal_serve --replay-in=trace.json --threads=8   # verify bytes
//
// Knobs: --seed --requests --pool --n --m --k --clients
// --queue-capacity --cache-entries --no-cache --kind=<name> --verbose.
#include <iostream>
#include <vector>

#include "service/engine.hpp"
#include "service/workload.hpp"
#include "util/bench_report.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace pslocal;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  apply_thread_option(opts);

  service::TraceParams tp;
  tp.seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  tp.requests = static_cast<std::size_t>(opts.get_int("requests", 40));
  tp.instance_pool = static_cast<std::size_t>(opts.get_int("pool", 6));
  tp.n = static_cast<std::size_t>(opts.get_int("n", 48));
  tp.m = static_cast<std::size_t>(opts.get_int("m", 40));
  tp.k = static_cast<std::size_t>(opts.get_int("k", 3));
  const std::string only_kind = opts.get_string("kind", "");
  if (!only_kind.empty()) {
    // Zero out every weight except the requested kind.
    tp.weight_build = tp.weight_greedy = tp.weight_luby = 0;
    tp.weight_cf = tp.weight_reduction = 0;
    switch (service::kind_from_name(only_kind)) {
      case service::RequestKind::kBuildConflictGraph: tp.weight_build = 1; break;
      case service::RequestKind::kGreedyMaxis: tp.weight_greedy = 1; break;
      case service::RequestKind::kLubyMis: tp.weight_luby = 1; break;
      case service::RequestKind::kCfColor: tp.weight_cf = 1; break;
      case service::RequestKind::kRunReduction: tp.weight_reduction = 1; break;
    }
  }
  const service::Trace trace = service::generate_trace(tp);

  service::EngineConfig cfg;
  cfg.queue_capacity =
      static_cast<std::size_t>(opts.get_int("queue-capacity", 256));
  cfg.cache.max_entries =
      static_cast<std::size_t>(opts.get_int("cache-entries", 512));
  cfg.cache.enabled = !opts.get_bool("no-cache", false);
  service::ServiceEngine engine(cfg);
  engine.start();

  std::cout << "pslocal_serve: " << trace.requests.size()
            << " requests over " << trace.instances.size() << " instances ("
            << trace.unique_keys << " distinct keys), cache "
            << (cfg.cache.enabled ? "on" : "off") << "\n";

  const bool verbose = opts.get_bool("verbose", trace.requests.size() <= 64);
  std::vector<service::ReplayEntry> entries;
  entries.reserve(trace.requests.size());
  for (const auto& req : trace.requests) {
    auto sub = engine.submit(req);
    PSL_CHECK_MSG(sub.admission == service::Admission::kAccepted,
                  "submission rejected: " << admission_name(sub.admission));
    const service::Response resp = sub.response.get();
    entries.push_back({resp.id, resp.key, resp.result});
    if (verbose) {
      std::cout << "  #" << resp.id << " " << kind_name(req.kind)
                << (resp.cache_hit ? " [hit]  " : " [miss] ")
                << (resp.total_ns / 1000) << "us  " << resp.result.substr(0, 96)
                << (resp.result.size() > 96 ? "...\n" : "\n");
    }
  }

  const auto stats = engine.stats();
  engine.stop();

  Table table("engine statistics");
  table.header({"served", "cached", "errors", "batches", "cycles",
                "cache hits", "cache misses", "evictions", "Gk builds",
                "Gk hits"});
  table.row({fmt_size(stats.served), fmt_size(stats.served_cached),
             fmt_size(stats.errors), fmt_size(stats.batches),
             fmt_size(stats.dispatch_cycles), fmt_size(stats.cache.hits),
             fmt_size(stats.cache.misses), fmt_size(stats.cache.evictions),
             fmt_size(stats.graph_cache.builds),
             fmt_size(stats.graph_cache.hits)});
  std::cout << table.render();

  const std::string replay_out = opts.get_string("replay-out", "");
  if (!replay_out.empty()) {
    service::write_replay_file(replay_out, entries, tp.seed);
    std::cout << "recorded " << entries.size() << " responses to "
              << replay_out << "\n";
  }
  const std::string replay_in = opts.get_string("replay-in", "");
  if (!replay_in.empty()) {
    const auto recorded = service::read_replay_file(replay_in);
    const auto verdict = service::verify_replay(recorded, entries);
    if (!verdict.identical) {
      std::cout << "REPLAY MISMATCH: " << verdict.mismatches << "/"
                << verdict.compared << " responses differ (first id "
                << verdict.first_mismatch_id << ")\n";
      return 1;
    }
    std::cout << "replay verified: " << verdict.compared
              << " responses byte-identical to " << replay_in << "\n";
  }
  return 0;
}
