// pslocal_netserve — TCP front-end for the serving engine.
//
// Spins up a ServiceEngine and a net::Server on a loopback (or given)
// address, prints the bound endpoint, and serves wire-protocol requests
// until the duration elapses or SIGINT/SIGTERM arrives.  This is the
// process half of the "Serving over TCP" quickstart (docs/net.md);
// bench_net_throughput --connect=host:port is the matching load side.
//
//   pslocal_netserve                          # ephemeral port, prints it
//   pslocal_netserve --port=7411 --threads=4  # fixed port, solver pool
//   pslocal_netserve --self-test=32           # loopback round-trip, exit
//
// --self-test=N short-circuits the serving loop: an in-process
// net::Client sends N seeded requests through the real socket stack,
// checks every response, prints the stats and exits 0 — a one-command
// smoke test of the whole tier (ctest runs exactly this).
//
// Knobs: --host --port --duration-s --self-test=N --queue-capacity
// --max-batch --cache-entries --max-connections --threads --seed.
#include <atomic>
#include <chrono>
#include <csignal>
#include <iostream>
#include <thread>

#include "net/client.hpp"
#include "net/server.hpp"
#include "service/engine.hpp"
#include "service/workload.hpp"
#include "util/bench_report.hpp"
#include "util/check.hpp"
#include "util/options.hpp"

using namespace pslocal;

namespace {

std::atomic<bool> g_stop{false};
extern "C" void handle_signal(int) { g_stop.store(true); }

void print_stats(const net::Server::Stats& s) {
  std::cout << "server stats: accepted=" << s.accepted
            << " frames_rx=" << s.frames_rx << " frames_tx=" << s.frames_tx
            << " bytes_rx=" << s.bytes_rx << " bytes_tx=" << s.bytes_tx
            << " dispatched=" << s.requests_dispatched
            << " nack_queue_full=" << s.nacks_queue_full
            << " nack_shutdown=" << s.nacks_shutdown
            << " decode_errors=" << s.decode_errors << "\n";
}

int self_test(net::Server& server, const std::string& host,
              std::uint16_t port, std::uint64_t seed, std::size_t requests) {
  service::TraceParams tp;
  tp.seed = seed;
  tp.requests = requests;
  tp.instance_pool = 4;
  tp.n = 32;
  tp.m = 24;
  const service::Trace trace = service::generate_trace(tp);

  net::Client::Config cc;
  cc.host = host;
  cc.port = port;
  net::Client client(cc);
  client.connect();

  net::Client::RetryPolicy policy;
  policy.seed = seed;
  std::size_t ok = 0;
  for (const service::Request& req : trace.requests) {
    const net::Client::Result r = client.call_with_retry(req, policy);
    if (r.outcome == net::Client::Outcome::kOk) {
      ++ok;
    } else {
      std::cerr << "self-test request failed: "
                << net::Client::outcome_name(r.outcome)
                << (r.error.empty() ? "" : " (" + r.error + ")") << "\n";
    }
  }
  std::cout << "self-test: " << ok << "/" << trace.requests.size()
            << " requests ok\n";
  print_stats(server.stats());
  return ok == trace.requests.size() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  apply_thread_option(opts);
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));

  service::EngineConfig cfg;
  cfg.queue_capacity =
      static_cast<std::size_t>(opts.get_int("queue-capacity", 256));
  cfg.max_batch = static_cast<std::size_t>(opts.get_int("max-batch", 64));
  cfg.cache.max_entries =
      static_cast<std::size_t>(opts.get_int("cache-entries", 512));
  service::ServiceEngine engine(cfg);
  engine.start();

  net::Server::Config sc;
  sc.host = opts.get_string("host", "127.0.0.1");
  sc.port = static_cast<std::uint16_t>(opts.get_int("port", 0));
  sc.max_connections =
      static_cast<std::size_t>(opts.get_int("max-connections", 64));
  net::Server server(engine, sc);
  server.start();
  // Flushed immediately so a parent process (the CI smoke job) can read
  // the bound port before the first connection arrives.
  std::cout << "listening on " << sc.host << ":" << server.port()
            << std::endl;

  const auto self_requests = opts.get_int("self-test", 0);
  if (self_requests > 0) {
    const int rc = self_test(server, sc.host, server.port(), seed,
                             static_cast<std::size_t>(self_requests));
    server.stop();
    engine.stop();
    return rc;
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  const double duration_s = opts.get_double("duration-s", 0.0);
  const auto started = std::chrono::steady_clock::now();
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (duration_s > 0.0) {
      const std::chrono::duration<double> up =
          std::chrono::steady_clock::now() - started;
      if (up.count() >= duration_s) break;
    }
  }

  print_stats(server.stats());
  server.stop();
  engine.stop(service::ServiceEngine::StopMode::kDrain);
  return 0;
}
