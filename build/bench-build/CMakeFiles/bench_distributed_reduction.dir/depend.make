# Empty dependencies file for bench_distributed_reduction.
# This may be replaced when dependencies are built.
