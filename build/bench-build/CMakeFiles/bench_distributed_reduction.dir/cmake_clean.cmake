file(REMOVE_RECURSE
  "../bench/bench_distributed_reduction"
  "../bench/bench_distributed_reduction.pdb"
  "CMakeFiles/bench_distributed_reduction.dir/bench_distributed_reduction.cpp.o"
  "CMakeFiles/bench_distributed_reduction.dir/bench_distributed_reduction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_distributed_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
