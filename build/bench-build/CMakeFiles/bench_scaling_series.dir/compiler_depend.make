# Empty compiler generated dependencies file for bench_scaling_series.
# This may be replaced when dependencies are built.
