file(REMOVE_RECURSE
  "../bench/bench_scaling_series"
  "../bench/bench_scaling_series.pdb"
  "CMakeFiles/bench_scaling_series.dir/bench_scaling_series.cpp.o"
  "CMakeFiles/bench_scaling_series.dir/bench_scaling_series.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaling_series.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
