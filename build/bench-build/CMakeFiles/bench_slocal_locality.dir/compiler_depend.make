# Empty compiler generated dependencies file for bench_slocal_locality.
# This may be replaced when dependencies are built.
