file(REMOVE_RECURSE
  "../bench/bench_slocal_locality"
  "../bench/bench_slocal_locality.pdb"
  "CMakeFiles/bench_slocal_locality.dir/bench_slocal_locality.cpp.o"
  "CMakeFiles/bench_slocal_locality.dir/bench_slocal_locality.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_slocal_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
