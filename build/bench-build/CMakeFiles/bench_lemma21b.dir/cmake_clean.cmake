file(REMOVE_RECURSE
  "../bench/bench_lemma21b"
  "../bench/bench_lemma21b.pdb"
  "CMakeFiles/bench_lemma21b.dir/bench_lemma21b.cpp.o"
  "CMakeFiles/bench_lemma21b.dir/bench_lemma21b.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemma21b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
