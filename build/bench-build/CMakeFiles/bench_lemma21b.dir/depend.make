# Empty dependencies file for bench_lemma21b.
# This may be replaced when dependencies are built.
