file(REMOVE_RECURSE
  "../bench/bench_local_simulation"
  "../bench/bench_local_simulation.pdb"
  "CMakeFiles/bench_local_simulation.dir/bench_local_simulation.cpp.o"
  "CMakeFiles/bench_local_simulation.dir/bench_local_simulation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_local_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
