# Empty dependencies file for bench_local_simulation.
# This may be replaced when dependencies are built.
