file(REMOVE_RECURSE
  "../bench/bench_cf_baselines"
  "../bench/bench_cf_baselines.pdb"
  "CMakeFiles/bench_cf_baselines.dir/bench_cf_baselines.cpp.o"
  "CMakeFiles/bench_cf_baselines.dir/bench_cf_baselines.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cf_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
