# Empty compiler generated dependencies file for bench_cf_baselines.
# This may be replaced when dependencies are built.
