file(REMOVE_RECURSE
  "../bench/bench_phases_vs_lambda"
  "../bench/bench_phases_vs_lambda.pdb"
  "CMakeFiles/bench_phases_vs_lambda.dir/bench_phases_vs_lambda.cpp.o"
  "CMakeFiles/bench_phases_vs_lambda.dir/bench_phases_vs_lambda.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_phases_vs_lambda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
