# Empty dependencies file for bench_phases_vs_lambda.
# This may be replaced when dependencies are built.
