# Empty compiler generated dependencies file for bench_oracle_quality.
# This may be replaced when dependencies are built.
