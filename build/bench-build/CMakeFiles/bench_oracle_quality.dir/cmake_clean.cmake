file(REMOVE_RECURSE
  "../bench/bench_oracle_quality"
  "../bench/bench_oracle_quality.pdb"
  "CMakeFiles/bench_oracle_quality.dir/bench_oracle_quality.cpp.o"
  "CMakeFiles/bench_oracle_quality.dir/bench_oracle_quality.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_oracle_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
