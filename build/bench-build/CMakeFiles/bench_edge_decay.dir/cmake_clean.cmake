file(REMOVE_RECURSE
  "../bench/bench_edge_decay"
  "../bench/bench_edge_decay.pdb"
  "CMakeFiles/bench_edge_decay.dir/bench_edge_decay.cpp.o"
  "CMakeFiles/bench_edge_decay.dir/bench_edge_decay.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_edge_decay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
