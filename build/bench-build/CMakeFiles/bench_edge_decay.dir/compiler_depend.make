# Empty compiler generated dependencies file for bench_edge_decay.
# This may be replaced when dependencies are built.
