# Empty dependencies file for bench_order_ablation.
# This may be replaced when dependencies are built.
