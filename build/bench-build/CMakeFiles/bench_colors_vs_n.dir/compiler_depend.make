# Empty compiler generated dependencies file for bench_colors_vs_n.
# This may be replaced when dependencies are built.
