file(REMOVE_RECURSE
  "../bench/bench_deterministic_local"
  "../bench/bench_deterministic_local.pdb"
  "CMakeFiles/bench_deterministic_local.dir/bench_deterministic_local.cpp.o"
  "CMakeFiles/bench_deterministic_local.dir/bench_deterministic_local.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_deterministic_local.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
