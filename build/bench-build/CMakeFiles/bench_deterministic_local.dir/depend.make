# Empty dependencies file for bench_deterministic_local.
# This may be replaced when dependencies are built.
