# Empty dependencies file for bench_lemma21a.
# This may be replaced when dependencies are built.
