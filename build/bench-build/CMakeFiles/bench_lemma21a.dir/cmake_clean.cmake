file(REMOVE_RECURSE
  "../bench/bench_lemma21a"
  "../bench/bench_lemma21a.pdb"
  "CMakeFiles/bench_lemma21a.dir/bench_lemma21a.cpp.o"
  "CMakeFiles/bench_lemma21a.dir/bench_lemma21a.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemma21a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
