# Empty dependencies file for bench_pslocal_problems.
# This may be replaced when dependencies are built.
