file(REMOVE_RECURSE
  "../bench/bench_pslocal_problems"
  "../bench/bench_pslocal_problems.pdb"
  "CMakeFiles/bench_pslocal_problems.dir/bench_pslocal_problems.cpp.o"
  "CMakeFiles/bench_pslocal_problems.dir/bench_pslocal_problems.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pslocal_problems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
