# Empty compiler generated dependencies file for bench_conflict_graph_size.
# This may be replaced when dependencies are built.
