file(REMOVE_RECURSE
  "../bench/bench_conflict_graph_size"
  "../bench/bench_conflict_graph_size.pdb"
  "CMakeFiles/bench_conflict_graph_size.dir/bench_conflict_graph_size.cpp.o"
  "CMakeFiles/bench_conflict_graph_size.dir/bench_conflict_graph_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_conflict_graph_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
