
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_ball_carving.cpp" "tests/CMakeFiles/pslocal_tests.dir/test_ball_carving.cpp.o" "gcc" "tests/CMakeFiles/pslocal_tests.dir/test_ball_carving.cpp.o.d"
  "/root/repo/tests/test_bitset.cpp" "tests/CMakeFiles/pslocal_tests.dir/test_bitset.cpp.o" "gcc" "tests/CMakeFiles/pslocal_tests.dir/test_bitset.cpp.o.d"
  "/root/repo/tests/test_conflict_free.cpp" "tests/CMakeFiles/pslocal_tests.dir/test_conflict_free.cpp.o" "gcc" "tests/CMakeFiles/pslocal_tests.dir/test_conflict_free.cpp.o.d"
  "/root/repo/tests/test_conflict_graph.cpp" "tests/CMakeFiles/pslocal_tests.dir/test_conflict_graph.cpp.o" "gcc" "tests/CMakeFiles/pslocal_tests.dir/test_conflict_graph.cpp.o.d"
  "/root/repo/tests/test_congest_and_verifier.cpp" "tests/CMakeFiles/pslocal_tests.dir/test_congest_and_verifier.cpp.o" "gcc" "tests/CMakeFiles/pslocal_tests.dir/test_congest_and_verifier.cpp.o.d"
  "/root/repo/tests/test_correspondence.cpp" "tests/CMakeFiles/pslocal_tests.dir/test_correspondence.cpp.o" "gcc" "tests/CMakeFiles/pslocal_tests.dir/test_correspondence.cpp.o.d"
  "/root/repo/tests/test_distributed_reduction.cpp" "tests/CMakeFiles/pslocal_tests.dir/test_distributed_reduction.cpp.o" "gcc" "tests/CMakeFiles/pslocal_tests.dir/test_distributed_reduction.cpp.o.d"
  "/root/repo/tests/test_dominating_set.cpp" "tests/CMakeFiles/pslocal_tests.dir/test_dominating_set.cpp.o" "gcc" "tests/CMakeFiles/pslocal_tests.dir/test_dominating_set.cpp.o.d"
  "/root/repo/tests/test_exact_cf.cpp" "tests/CMakeFiles/pslocal_tests.dir/test_exact_cf.cpp.o" "gcc" "tests/CMakeFiles/pslocal_tests.dir/test_exact_cf.cpp.o.d"
  "/root/repo/tests/test_exact_maxis.cpp" "tests/CMakeFiles/pslocal_tests.dir/test_exact_maxis.cpp.o" "gcc" "tests/CMakeFiles/pslocal_tests.dir/test_exact_maxis.cpp.o.d"
  "/root/repo/tests/test_from_coloring.cpp" "tests/CMakeFiles/pslocal_tests.dir/test_from_coloring.cpp.o" "gcc" "tests/CMakeFiles/pslocal_tests.dir/test_from_coloring.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/pslocal_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/pslocal_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_graph_algorithms.cpp" "tests/CMakeFiles/pslocal_tests.dir/test_graph_algorithms.cpp.o" "gcc" "tests/CMakeFiles/pslocal_tests.dir/test_graph_algorithms.cpp.o.d"
  "/root/repo/tests/test_graph_generators.cpp" "tests/CMakeFiles/pslocal_tests.dir/test_graph_generators.cpp.o" "gcc" "tests/CMakeFiles/pslocal_tests.dir/test_graph_generators.cpp.o.d"
  "/root/repo/tests/test_greedy_maxis.cpp" "tests/CMakeFiles/pslocal_tests.dir/test_greedy_maxis.cpp.o" "gcc" "tests/CMakeFiles/pslocal_tests.dir/test_greedy_maxis.cpp.o.d"
  "/root/repo/tests/test_hypergraph.cpp" "tests/CMakeFiles/pslocal_tests.dir/test_hypergraph.cpp.o" "gcc" "tests/CMakeFiles/pslocal_tests.dir/test_hypergraph.cpp.o.d"
  "/root/repo/tests/test_hypergraph_generators.cpp" "tests/CMakeFiles/pslocal_tests.dir/test_hypergraph_generators.cpp.o" "gcc" "tests/CMakeFiles/pslocal_tests.dir/test_hypergraph_generators.cpp.o.d"
  "/root/repo/tests/test_hypergraph_io.cpp" "tests/CMakeFiles/pslocal_tests.dir/test_hypergraph_io.cpp.o" "gcc" "tests/CMakeFiles/pslocal_tests.dir/test_hypergraph_io.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/pslocal_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/pslocal_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_kernelization.cpp" "tests/CMakeFiles/pslocal_tests.dir/test_kernelization.cpp.o" "gcc" "tests/CMakeFiles/pslocal_tests.dir/test_kernelization.cpp.o.d"
  "/root/repo/tests/test_linial.cpp" "tests/CMakeFiles/pslocal_tests.dir/test_linial.cpp.o" "gcc" "tests/CMakeFiles/pslocal_tests.dir/test_linial.cpp.o.d"
  "/root/repo/tests/test_local_coloring.cpp" "tests/CMakeFiles/pslocal_tests.dir/test_local_coloring.cpp.o" "gcc" "tests/CMakeFiles/pslocal_tests.dir/test_local_coloring.cpp.o.d"
  "/root/repo/tests/test_local_simulator.cpp" "tests/CMakeFiles/pslocal_tests.dir/test_local_simulator.cpp.o" "gcc" "tests/CMakeFiles/pslocal_tests.dir/test_local_simulator.cpp.o.d"
  "/root/repo/tests/test_luby.cpp" "tests/CMakeFiles/pslocal_tests.dir/test_luby.cpp.o" "gcc" "tests/CMakeFiles/pslocal_tests.dir/test_luby.cpp.o.d"
  "/root/repo/tests/test_matching.cpp" "tests/CMakeFiles/pslocal_tests.dir/test_matching.cpp.o" "gcc" "tests/CMakeFiles/pslocal_tests.dir/test_matching.cpp.o.d"
  "/root/repo/tests/test_mpx.cpp" "tests/CMakeFiles/pslocal_tests.dir/test_mpx.cpp.o" "gcc" "tests/CMakeFiles/pslocal_tests.dir/test_mpx.cpp.o.d"
  "/root/repo/tests/test_network_decomposition.cpp" "tests/CMakeFiles/pslocal_tests.dir/test_network_decomposition.cpp.o" "gcc" "tests/CMakeFiles/pslocal_tests.dir/test_network_decomposition.cpp.o.d"
  "/root/repo/tests/test_orders.cpp" "tests/CMakeFiles/pslocal_tests.dir/test_orders.cpp.o" "gcc" "tests/CMakeFiles/pslocal_tests.dir/test_orders.cpp.o.d"
  "/root/repo/tests/test_problems.cpp" "tests/CMakeFiles/pslocal_tests.dir/test_problems.cpp.o" "gcc" "tests/CMakeFiles/pslocal_tests.dir/test_problems.cpp.o.d"
  "/root/repo/tests/test_property_sweeps.cpp" "tests/CMakeFiles/pslocal_tests.dir/test_property_sweeps.cpp.o" "gcc" "tests/CMakeFiles/pslocal_tests.dir/test_property_sweeps.cpp.o.d"
  "/root/repo/tests/test_reduction.cpp" "tests/CMakeFiles/pslocal_tests.dir/test_reduction.cpp.o" "gcc" "tests/CMakeFiles/pslocal_tests.dir/test_reduction.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/pslocal_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/pslocal_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_ruling_set.cpp" "tests/CMakeFiles/pslocal_tests.dir/test_ruling_set.cpp.o" "gcc" "tests/CMakeFiles/pslocal_tests.dir/test_ruling_set.cpp.o.d"
  "/root/repo/tests/test_set_cover.cpp" "tests/CMakeFiles/pslocal_tests.dir/test_set_cover.cpp.o" "gcc" "tests/CMakeFiles/pslocal_tests.dir/test_set_cover.cpp.o.d"
  "/root/repo/tests/test_simulation.cpp" "tests/CMakeFiles/pslocal_tests.dir/test_simulation.cpp.o" "gcc" "tests/CMakeFiles/pslocal_tests.dir/test_simulation.cpp.o.d"
  "/root/repo/tests/test_slocal_algorithms.cpp" "tests/CMakeFiles/pslocal_tests.dir/test_slocal_algorithms.cpp.o" "gcc" "tests/CMakeFiles/pslocal_tests.dir/test_slocal_algorithms.cpp.o.d"
  "/root/repo/tests/test_slocal_compiler.cpp" "tests/CMakeFiles/pslocal_tests.dir/test_slocal_compiler.cpp.o" "gcc" "tests/CMakeFiles/pslocal_tests.dir/test_slocal_compiler.cpp.o.d"
  "/root/repo/tests/test_slocal_engine.cpp" "tests/CMakeFiles/pslocal_tests.dir/test_slocal_engine.cpp.o" "gcc" "tests/CMakeFiles/pslocal_tests.dir/test_slocal_engine.cpp.o.d"
  "/root/repo/tests/test_smoke.cpp" "tests/CMakeFiles/pslocal_tests.dir/test_smoke.cpp.o" "gcc" "tests/CMakeFiles/pslocal_tests.dir/test_smoke.cpp.o.d"
  "/root/repo/tests/test_splitting.cpp" "tests/CMakeFiles/pslocal_tests.dir/test_splitting.cpp.o" "gcc" "tests/CMakeFiles/pslocal_tests.dir/test_splitting.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/pslocal_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/pslocal_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_tree_maxis.cpp" "tests/CMakeFiles/pslocal_tests.dir/test_tree_maxis.cpp.o" "gcc" "tests/CMakeFiles/pslocal_tests.dir/test_tree_maxis.cpp.o.d"
  "/root/repo/tests/test_util_misc.cpp" "tests/CMakeFiles/pslocal_tests.dir/test_util_misc.cpp.o" "gcc" "tests/CMakeFiles/pslocal_tests.dir/test_util_misc.cpp.o.d"
  "/root/repo/tests/test_vertex_cover.cpp" "tests/CMakeFiles/pslocal_tests.dir/test_vertex_cover.cpp.o" "gcc" "tests/CMakeFiles/pslocal_tests.dir/test_vertex_cover.cpp.o.d"
  "/root/repo/tests/test_virtual_local.cpp" "tests/CMakeFiles/pslocal_tests.dir/test_virtual_local.cpp.o" "gcc" "tests/CMakeFiles/pslocal_tests.dir/test_virtual_local.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pslocal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
