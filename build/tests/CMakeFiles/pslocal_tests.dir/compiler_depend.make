# Empty compiler generated dependencies file for pslocal_tests.
# This may be replaced when dependencies are built.
