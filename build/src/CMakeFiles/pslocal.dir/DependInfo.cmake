
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coloring/cf_baselines.cpp" "src/CMakeFiles/pslocal.dir/coloring/cf_baselines.cpp.o" "gcc" "src/CMakeFiles/pslocal.dir/coloring/cf_baselines.cpp.o.d"
  "/root/repo/src/coloring/coloring.cpp" "src/CMakeFiles/pslocal.dir/coloring/coloring.cpp.o" "gcc" "src/CMakeFiles/pslocal.dir/coloring/coloring.cpp.o.d"
  "/root/repo/src/coloring/conflict_free.cpp" "src/CMakeFiles/pslocal.dir/coloring/conflict_free.cpp.o" "gcc" "src/CMakeFiles/pslocal.dir/coloring/conflict_free.cpp.o.d"
  "/root/repo/src/coloring/exact_cf.cpp" "src/CMakeFiles/pslocal.dir/coloring/exact_cf.cpp.o" "gcc" "src/CMakeFiles/pslocal.dir/coloring/exact_cf.cpp.o.d"
  "/root/repo/src/coloring/local_verifier.cpp" "src/CMakeFiles/pslocal.dir/coloring/local_verifier.cpp.o" "gcc" "src/CMakeFiles/pslocal.dir/coloring/local_verifier.cpp.o.d"
  "/root/repo/src/coloring/splitting.cpp" "src/CMakeFiles/pslocal.dir/coloring/splitting.cpp.o" "gcc" "src/CMakeFiles/pslocal.dir/coloring/splitting.cpp.o.d"
  "/root/repo/src/core/conflict_graph.cpp" "src/CMakeFiles/pslocal.dir/core/conflict_graph.cpp.o" "gcc" "src/CMakeFiles/pslocal.dir/core/conflict_graph.cpp.o.d"
  "/root/repo/src/core/correspondence.cpp" "src/CMakeFiles/pslocal.dir/core/correspondence.cpp.o" "gcc" "src/CMakeFiles/pslocal.dir/core/correspondence.cpp.o.d"
  "/root/repo/src/core/distributed_reduction.cpp" "src/CMakeFiles/pslocal.dir/core/distributed_reduction.cpp.o" "gcc" "src/CMakeFiles/pslocal.dir/core/distributed_reduction.cpp.o.d"
  "/root/repo/src/core/problems.cpp" "src/CMakeFiles/pslocal.dir/core/problems.cpp.o" "gcc" "src/CMakeFiles/pslocal.dir/core/problems.cpp.o.d"
  "/root/repo/src/core/reduction.cpp" "src/CMakeFiles/pslocal.dir/core/reduction.cpp.o" "gcc" "src/CMakeFiles/pslocal.dir/core/reduction.cpp.o.d"
  "/root/repo/src/core/simulation.cpp" "src/CMakeFiles/pslocal.dir/core/simulation.cpp.o" "gcc" "src/CMakeFiles/pslocal.dir/core/simulation.cpp.o.d"
  "/root/repo/src/cover/dominating_set.cpp" "src/CMakeFiles/pslocal.dir/cover/dominating_set.cpp.o" "gcc" "src/CMakeFiles/pslocal.dir/cover/dominating_set.cpp.o.d"
  "/root/repo/src/cover/set_cover.cpp" "src/CMakeFiles/pslocal.dir/cover/set_cover.cpp.o" "gcc" "src/CMakeFiles/pslocal.dir/cover/set_cover.cpp.o.d"
  "/root/repo/src/graph/algorithms.cpp" "src/CMakeFiles/pslocal.dir/graph/algorithms.cpp.o" "gcc" "src/CMakeFiles/pslocal.dir/graph/algorithms.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/pslocal.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/pslocal.dir/graph/generators.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/pslocal.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/pslocal.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/CMakeFiles/pslocal.dir/graph/io.cpp.o" "gcc" "src/CMakeFiles/pslocal.dir/graph/io.cpp.o.d"
  "/root/repo/src/hypergraph/generators.cpp" "src/CMakeFiles/pslocal.dir/hypergraph/generators.cpp.o" "gcc" "src/CMakeFiles/pslocal.dir/hypergraph/generators.cpp.o.d"
  "/root/repo/src/hypergraph/hypergraph.cpp" "src/CMakeFiles/pslocal.dir/hypergraph/hypergraph.cpp.o" "gcc" "src/CMakeFiles/pslocal.dir/hypergraph/hypergraph.cpp.o.d"
  "/root/repo/src/hypergraph/io.cpp" "src/CMakeFiles/pslocal.dir/hypergraph/io.cpp.o" "gcc" "src/CMakeFiles/pslocal.dir/hypergraph/io.cpp.o.d"
  "/root/repo/src/hypergraph/properties.cpp" "src/CMakeFiles/pslocal.dir/hypergraph/properties.cpp.o" "gcc" "src/CMakeFiles/pslocal.dir/hypergraph/properties.cpp.o.d"
  "/root/repo/src/local/coloring_local.cpp" "src/CMakeFiles/pslocal.dir/local/coloring_local.cpp.o" "gcc" "src/CMakeFiles/pslocal.dir/local/coloring_local.cpp.o.d"
  "/root/repo/src/local/from_coloring.cpp" "src/CMakeFiles/pslocal.dir/local/from_coloring.cpp.o" "gcc" "src/CMakeFiles/pslocal.dir/local/from_coloring.cpp.o.d"
  "/root/repo/src/local/linial_coloring.cpp" "src/CMakeFiles/pslocal.dir/local/linial_coloring.cpp.o" "gcc" "src/CMakeFiles/pslocal.dir/local/linial_coloring.cpp.o.d"
  "/root/repo/src/local/luby_mis.cpp" "src/CMakeFiles/pslocal.dir/local/luby_mis.cpp.o" "gcc" "src/CMakeFiles/pslocal.dir/local/luby_mis.cpp.o.d"
  "/root/repo/src/local/mpx_decomposition.cpp" "src/CMakeFiles/pslocal.dir/local/mpx_decomposition.cpp.o" "gcc" "src/CMakeFiles/pslocal.dir/local/mpx_decomposition.cpp.o.d"
  "/root/repo/src/mis/degraded_oracle.cpp" "src/CMakeFiles/pslocal.dir/mis/degraded_oracle.cpp.o" "gcc" "src/CMakeFiles/pslocal.dir/mis/degraded_oracle.cpp.o.d"
  "/root/repo/src/mis/exact_maxis.cpp" "src/CMakeFiles/pslocal.dir/mis/exact_maxis.cpp.o" "gcc" "src/CMakeFiles/pslocal.dir/mis/exact_maxis.cpp.o.d"
  "/root/repo/src/mis/greedy_maxis.cpp" "src/CMakeFiles/pslocal.dir/mis/greedy_maxis.cpp.o" "gcc" "src/CMakeFiles/pslocal.dir/mis/greedy_maxis.cpp.o.d"
  "/root/repo/src/mis/independent_set.cpp" "src/CMakeFiles/pslocal.dir/mis/independent_set.cpp.o" "gcc" "src/CMakeFiles/pslocal.dir/mis/independent_set.cpp.o.d"
  "/root/repo/src/mis/kernelization.cpp" "src/CMakeFiles/pslocal.dir/mis/kernelization.cpp.o" "gcc" "src/CMakeFiles/pslocal.dir/mis/kernelization.cpp.o.d"
  "/root/repo/src/mis/tree_maxis.cpp" "src/CMakeFiles/pslocal.dir/mis/tree_maxis.cpp.o" "gcc" "src/CMakeFiles/pslocal.dir/mis/tree_maxis.cpp.o.d"
  "/root/repo/src/mis/vertex_cover.cpp" "src/CMakeFiles/pslocal.dir/mis/vertex_cover.cpp.o" "gcc" "src/CMakeFiles/pslocal.dir/mis/vertex_cover.cpp.o.d"
  "/root/repo/src/slocal/ball_carving.cpp" "src/CMakeFiles/pslocal.dir/slocal/ball_carving.cpp.o" "gcc" "src/CMakeFiles/pslocal.dir/slocal/ball_carving.cpp.o.d"
  "/root/repo/src/slocal/greedy_algorithms.cpp" "src/CMakeFiles/pslocal.dir/slocal/greedy_algorithms.cpp.o" "gcc" "src/CMakeFiles/pslocal.dir/slocal/greedy_algorithms.cpp.o.d"
  "/root/repo/src/slocal/matching.cpp" "src/CMakeFiles/pslocal.dir/slocal/matching.cpp.o" "gcc" "src/CMakeFiles/pslocal.dir/slocal/matching.cpp.o.d"
  "/root/repo/src/slocal/network_decomposition.cpp" "src/CMakeFiles/pslocal.dir/slocal/network_decomposition.cpp.o" "gcc" "src/CMakeFiles/pslocal.dir/slocal/network_decomposition.cpp.o.d"
  "/root/repo/src/slocal/orders.cpp" "src/CMakeFiles/pslocal.dir/slocal/orders.cpp.o" "gcc" "src/CMakeFiles/pslocal.dir/slocal/orders.cpp.o.d"
  "/root/repo/src/slocal/ruling_set.cpp" "src/CMakeFiles/pslocal.dir/slocal/ruling_set.cpp.o" "gcc" "src/CMakeFiles/pslocal.dir/slocal/ruling_set.cpp.o.d"
  "/root/repo/src/util/bitset.cpp" "src/CMakeFiles/pslocal.dir/util/bitset.cpp.o" "gcc" "src/CMakeFiles/pslocal.dir/util/bitset.cpp.o.d"
  "/root/repo/src/util/options.cpp" "src/CMakeFiles/pslocal.dir/util/options.cpp.o" "gcc" "src/CMakeFiles/pslocal.dir/util/options.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/pslocal.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/pslocal.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/pslocal.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/pslocal.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/pslocal.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/pslocal.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
