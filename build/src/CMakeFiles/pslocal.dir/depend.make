# Empty dependencies file for pslocal.
# This may be replaced when dependencies are built.
