# Empty compiler generated dependencies file for pslocal.
# This may be replaced when dependencies are built.
