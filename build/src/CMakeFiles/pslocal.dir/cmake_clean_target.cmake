file(REMOVE_RECURSE
  "libpslocal.a"
)
