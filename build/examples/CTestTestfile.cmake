# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart_runs "/root/repo/build/examples/example_quickstart" "--n=32" "--m=24" "--k=3")
set_tests_properties(example_quickstart_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;11;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_spectrum_assignment_runs "/root/repo/build/examples/example_spectrum_assignment" "--stations=32" "--clients=48")
set_tests_properties(example_spectrum_assignment_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_slocal_vs_local_runs "/root/repo/build/examples/example_slocal_vs_local")
set_tests_properties(example_slocal_vs_local_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_completeness_pipeline_runs "/root/repo/build/examples/example_completeness_pipeline" "--m=10")
set_tests_properties(example_completeness_pipeline_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_derandomization_demo_runs "/root/repo/build/examples/example_derandomization_demo")
set_tests_properties(example_derandomization_demo_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_gen_runs "/root/repo/build/examples/example_pslocal_cli" "gen" "--type=planted" "--n=32" "--m=20" "--k=2" "--out=/root/repo/build/examples/cli_test.hg")
set_tests_properties(example_cli_gen_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_solve_runs "/root/repo/build/examples/example_pslocal_cli" "solve" "--in=/root/repo/build/examples/cli_test.hg" "--k=2" "--out=/root/repo/build/examples/cli_test.colors")
set_tests_properties(example_cli_solve_runs PROPERTIES  DEPENDS "example_cli_gen_runs" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_verify_runs "/root/repo/build/examples/example_pslocal_cli" "verify" "--in=/root/repo/build/examples/cli_test.hg" "--coloring=/root/repo/build/examples/cli_test.colors")
set_tests_properties(example_cli_verify_runs PROPERTIES  DEPENDS "example_cli_solve_runs" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
