
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/slocal_vs_local.cpp" "examples/CMakeFiles/example_slocal_vs_local.dir/slocal_vs_local.cpp.o" "gcc" "examples/CMakeFiles/example_slocal_vs_local.dir/slocal_vs_local.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pslocal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
