file(REMOVE_RECURSE
  "CMakeFiles/example_slocal_vs_local.dir/slocal_vs_local.cpp.o"
  "CMakeFiles/example_slocal_vs_local.dir/slocal_vs_local.cpp.o.d"
  "example_slocal_vs_local"
  "example_slocal_vs_local.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_slocal_vs_local.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
