# Empty dependencies file for example_slocal_vs_local.
# This may be replaced when dependencies are built.
