# Empty dependencies file for example_completeness_pipeline.
# This may be replaced when dependencies are built.
