file(REMOVE_RECURSE
  "CMakeFiles/example_completeness_pipeline.dir/completeness_pipeline.cpp.o"
  "CMakeFiles/example_completeness_pipeline.dir/completeness_pipeline.cpp.o.d"
  "example_completeness_pipeline"
  "example_completeness_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_completeness_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
