# Empty dependencies file for example_spectrum_assignment.
# This may be replaced when dependencies are built.
