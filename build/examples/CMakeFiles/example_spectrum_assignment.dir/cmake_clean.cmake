file(REMOVE_RECURSE
  "CMakeFiles/example_spectrum_assignment.dir/spectrum_assignment.cpp.o"
  "CMakeFiles/example_spectrum_assignment.dir/spectrum_assignment.cpp.o.d"
  "example_spectrum_assignment"
  "example_spectrum_assignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_spectrum_assignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
