# Empty compiler generated dependencies file for example_pslocal_cli.
# This may be replaced when dependencies are built.
