file(REMOVE_RECURSE
  "CMakeFiles/example_pslocal_cli.dir/pslocal_cli.cpp.o"
  "CMakeFiles/example_pslocal_cli.dir/pslocal_cli.cpp.o.d"
  "example_pslocal_cli"
  "example_pslocal_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_pslocal_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
