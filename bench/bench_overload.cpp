// Open-loop overload bench for the QoS tier (docs/qos.md).
//
// Two tenants share one TCP loopback server over a qos-enabled engine:
//
//   gold   weight 4, no rate limit  — the in-SLO tenant
//   abuse  weight 1, rate-limited   — offers far more than its budget
//
// Pass 1 (uncontended): gold alone, Poisson arrivals at --rate-gold.
// Pass 2 (overload): the *same* gold schedule (same seed, so the offered
// load is byte-identical) plus the abusive tenant sending bounded-Pareto
// bursts at --rate-abuse, several times its token-bucket refill rate.
//
// The loop is open: senders hold their arrival schedules regardless of
// completions (bench/load_gen.hpp), which is what makes overload real —
// a closed loop would politely slow the abuser down.  Gates:
//
//   * zero silently dropped requests — every send resolves as a payload
//     or a typed NACK; lost == 0, errors == 0, unclaimed frames == 0;
//   * the abusive tenant is shed (NACK(shed_retry_after) > 0) while gold
//     is never shed;
//   * gold's p99 in the overload pass stays within --p99-factor (2x) of
//     its uncontended p99, floored at --p99-floor-ms to absorb scheduler
//     jitter on tiny absolute latencies.
//
// Knobs: --requests --rate-gold --rate-abuse --abuse-limit-rps
// --abuse-burst --pareto-alpha --pareto-bound --zipf-gold --zipf-abuse
// --pool --n --m --k (trace shape), --queue-capacity --max-batch,
// --p99-factor --p99-floor-ms, --iters-small, --threads, --seed.
#include <atomic>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_main.hpp"
#include "load_gen.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "service/engine.hpp"
#include "service/workload.hpp"
#include "util/check.hpp"
#include "util/table.hpp"

using namespace pslocal;

namespace {

/// One tenant's sender context: a connection plus the tenant's Zipf key
/// stream.  The destructor tallies unresolved/parked frames — both must
/// be zero for a "nothing silently dropped" pass.
struct TenantCtx {
  std::unique_ptr<net::Client> client;
  Rng rng;
  benchload::ZipfPicker zipf;
  std::string tenant;
  std::atomic<std::uint64_t>* unclaimed = nullptr;

  TenantCtx(std::unique_ptr<net::Client> c, Rng r, benchload::ZipfPicker z,
            std::string name, std::atomic<std::uint64_t>* u)
      : client(std::move(c)), rng(r), zipf(std::move(z)),
        tenant(std::move(name)), unclaimed(u) {}
  TenantCtx(TenantCtx&&) = default;
  TenantCtx& operator=(TenantCtx&&) = default;
  ~TenantCtx() {
    if (client && unclaimed != nullptr)
      unclaimed->fetch_add(client->inflight() + client->parked(),
                           std::memory_order_relaxed);
  }
};

benchload::OpenOutcome classify(const net::Client::Result& r) {
  switch (r.outcome) {
    case net::Client::Outcome::kOk: return benchload::OpenOutcome::kOk;
    case net::Client::Outcome::kNack:
      return r.nack_code == net::wire::NackCode::kShedRetryAfter
                 ? benchload::OpenOutcome::kShed
                 : benchload::OpenOutcome::kNack;
    default: return benchload::OpenOutcome::kError;
  }
}

struct PassSpec {
  std::vector<benchload::OpenLoopTenant> tenants;  // arrival schedules
  std::vector<double> zipf_s;                      // per-tenant key skew
  std::uint64_t seed = 1;
};

benchload::OpenLoopResult run_pass(const PassSpec& spec,
                                   const service::Trace& trace,
                                   const std::string& host,
                                   std::uint16_t port) {
  std::atomic<std::uint64_t> unclaimed{0};
  auto result = benchload::run_open_loop(
      spec.tenants,
      [&](std::size_t ti) {
        net::Client::Config cc;
        cc.host = host;
        cc.port = port;
        auto client = std::make_unique<net::Client>(cc);
        client->connect();
        return TenantCtx(std::move(client), Rng(spec.seed).fork(ti),
                         benchload::ZipfPicker(trace.requests.size(),
                                               spec.zipf_s[ti]),
                         spec.tenants[ti].name, &unclaimed);
      },
      [&](TenantCtx& ctx, std::size_t, std::size_t) {
        service::Request req = trace.requests[ctx.zipf.pick(ctx.rng)];
        req.tenant = ctx.tenant;
        return ctx.client->send(req);
      },
      [](TenantCtx& ctx, std::uint64_t id, benchload::OpenOutcome& out) {
        const net::Client::Result r = ctx.client->try_wait(id);
        if (r.outcome == net::Client::Outcome::kTimeout) return false;
        out = classify(r);
        return true;
      },
      [](TenantCtx& ctx, std::uint64_t id, benchload::OpenOutcome& out) {
        const net::Client::Result r = ctx.client->wait(id);
        if (r.outcome == net::Client::Outcome::kTimeout) return false;
        out = classify(r);
        return true;
      });
  PSL_CHECK_MSG(unclaimed.load() == 0,
                unclaimed.load() << " duplicated/unclaimed response frames");
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  return benchmain::run(argc, argv, "overload", 1, [](benchmain::Context&
                                                          ctx) {
    const bool small = ctx.opts.get_bool("iters-small", false);
    const auto requests = static_cast<std::size_t>(
        ctx.opts.get_int("requests", small ? 400 : 2000));
    const double rate_gold =
        static_cast<double>(ctx.opts.get_int("rate-gold", 800));
    const double rate_abuse =
        static_cast<double>(ctx.opts.get_int("rate-abuse", 800));
    const double abuse_limit =
        static_cast<double>(ctx.opts.get_int("abuse-limit-rps", 80));
    const double abuse_burst =
        static_cast<double>(ctx.opts.get_int("abuse-burst", 16));
    const double pareto_alpha = 1.5;
    const double pareto_bound =
        static_cast<double>(ctx.opts.get_int("pareto-bound", 64));
    const double p99_factor =
        static_cast<double>(ctx.opts.get_int("p99-factor", 2));
    const double p99_floor_ms =
        static_cast<double>(ctx.opts.get_int("p99-floor-ms", 5));

    service::TraceParams tp;
    tp.seed = ctx.seed;
    tp.requests = static_cast<std::size_t>(ctx.opts.get_int("pool", 64));
    tp.instance_pool = 8;
    tp.n = static_cast<std::size_t>(ctx.opts.get_int("n", 32));
    tp.m = static_cast<std::size_t>(ctx.opts.get_int("m", 28));
    tp.k = static_cast<std::size_t>(ctx.opts.get_int("k", 2));
    const service::Trace trace = service::generate_trace(tp);

    service::EngineConfig cfg;
    cfg.queue_capacity = static_cast<std::size_t>(
        ctx.opts.get_int("queue-capacity", 512));
    cfg.max_batch =
        static_cast<std::size_t>(ctx.opts.get_int("max-batch", 16));
    cfg.qos.enabled = true;
    cfg.qos.seed = ctx.seed;
    qos::TenantConfig gold;
    gold.name = "gold";
    gold.weight = 4;
    qos::TenantConfig abuse;
    abuse.name = "abuse";
    abuse.weight = 1;
    abuse.rate_rps = abuse_limit;
    abuse.burst = abuse_burst;
    cfg.qos.tenants = {gold, abuse};

    auto engine = std::make_unique<service::ServiceEngine>(cfg);
    engine->start();
    net::Server::Config sc;  // ephemeral loopback port
    auto server = std::make_unique<net::Server>(*engine, sc);
    server->start();

    // Both passes reuse the gold schedule: identical offered load, so
    // the p99 delta isolates what the abusive tenant's presence costs.
    Rng gold_rng = Rng(ctx.seed).fork(101);
    const auto gold_schedule =
        benchload::poisson_arrivals_ns(gold_rng, rate_gold, requests);
    Rng abuse_rng = Rng(ctx.seed).fork(202);
    const auto abuse_schedule = benchload::pareto_arrivals_ns(
        abuse_rng, rate_abuse, pareto_alpha, pareto_bound, requests);

    std::cout << "target: in-process server on " << sc.host << ":"
              << server->port() << ", pool " << trace.requests.size()
              << " requests (" << trace.unique_keys << " keys), gold "
              << rate_gold << " rps vs abuse " << rate_abuse
              << " rps offered / " << abuse_limit << " rps allowed\n";

    PassSpec base;
    base.tenants = {{"gold", gold_schedule}};
    base.zipf_s = {1.1};
    base.seed = ctx.seed;
    const auto uncontended =
        run_pass(base, trace, sc.host, server->port());

    PassSpec over;
    over.tenants = {{"gold", gold_schedule}, {"abuse", abuse_schedule}};
    over.zipf_s = {1.1, 0.8};
    over.seed = ctx.seed;
    const auto overload = run_pass(over, trace, sc.host, server->port());

    const net::Server::Stats ss = server->stats();
    const service::ServiceEngine::Stats es = engine->stats();
    server->stop();
    engine->stop();

    Table table("Open-loop overload — per-tenant outcome");
    table.header({"pass", "tenant", "offered", "ok", "shed", "lost",
                  "p50 ms", "p99 ms", "mean ms"});
    const auto rows = [&table](const char* pass,
                               const benchload::OpenLoopResult& r) {
      for (const auto& t : r.tenants)
        table.row({pass, t.name, fmt_size(t.offered), fmt_size(t.ok),
                   fmt_size(t.shed), fmt_size(t.lost),
                   fmt_double(t.p50_ms, 3), fmt_double(t.p99_ms, 3),
                   fmt_double(t.mean_ms, 3)});
    };
    rows("uncontended", uncontended);
    rows("overload", overload);
    std::cout << table.render();
    ctx.report.add_table(table);

    const auto& gold_base = uncontended.tenants[0];
    const auto& gold_over = overload.tenants[0];
    const auto& abuse_over = overload.tenants[1];

    // --- Gate 1: nothing silently dropped, in either pass.
    PSL_CHECK_MSG(uncontended.lost == 0 && overload.lost == 0,
                  "lost responses: " << uncontended.lost << " uncontended, "
                                     << overload.lost << " overload");
    PSL_CHECK_MSG(uncontended.errors == 0 && overload.errors == 0,
                  "errors: " << uncontended.errors << " uncontended, "
                             << overload.errors << " overload");

    // --- Gate 2: the abusive tenant was shed via the typed NACK path,
    // the in-SLO tenant never was.
    PSL_CHECK_MSG(abuse_over.shed > 0,
                  "abusive tenant was never shed (offered " << rate_abuse
                      << " rps against a " << abuse_limit << " rps budget)");
    PSL_CHECK_MSG(gold_over.shed == 0 && gold_base.shed == 0,
                  "in-SLO tenant was shed " << gold_over.shed << " times");
    PSL_CHECK_MSG(ss.nacks_shed >= abuse_over.shed,
                  "server counted " << ss.nacks_shed
                      << " shed NACK frames < client's " << abuse_over.shed);

    // --- Gate 3: in-SLO p99 stays flat under overload.
    const double p99_budget_ms =
        std::max(p99_factor * gold_base.p99_ms, p99_floor_ms);
    PSL_CHECK_MSG(gold_over.p99_ms <= p99_budget_ms,
                  "in-SLO p99 " << gold_over.p99_ms << " ms exceeds budget "
                      << p99_budget_ms << " ms (uncontended "
                      << gold_base.p99_ms << " ms)");

    std::cout << "gates: 0 lost, abuse shed " << abuse_over.shed << "/"
              << abuse_over.offered << " (" << ss.nacks_shed
              << " NACK frames), gold p99 " << fmt_double(gold_base.p99_ms, 3)
              << " -> " << fmt_double(gold_over.p99_ms, 3) << " ms (budget "
              << fmt_double(p99_budget_ms, 3) << ")\n";

    ctx.report.metric("requests_per_tenant", static_cast<double>(requests))
        .metric("rate_gold_rps", rate_gold)
        .metric("rate_abuse_rps", rate_abuse)
        .metric("abuse_limit_rps", abuse_limit)
        .metric("gold_p99_uncontended_ms", gold_base.p99_ms)
        .metric("gold_p99_overload_ms", gold_over.p99_ms)
        .metric("gold_p50_overload_ms", gold_over.p50_ms)
        .metric("p99_budget_ms", p99_budget_ms)
        .metric("abuse_shed", static_cast<double>(abuse_over.shed))
        .metric("abuse_ok", static_cast<double>(abuse_over.ok))
        .metric("gold_shed", static_cast<double>(gold_over.shed))
        .metric("nacks_shed_frames", static_cast<double>(ss.nacks_shed))
        .metric("lost", static_cast<double>(overload.lost))
        .metric("errors", static_cast<double>(overload.errors))
        .metric("engine_shed", static_cast<double>(es.shed))
        .metric("queue_capacity", static_cast<double>(es.queue_capacity));
    return 0;
  });
}
