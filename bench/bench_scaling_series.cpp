// Supplementary experiment E15: seed-aggregated scaling series.
//
// E4/E5/E14 report single-seed runs; this bench re-measures the headline
// series with mean +/- stddev over several seeds, and can emit CSV for
// plotting (--csv=prefix writes <prefix>_colors.csv and <prefix>_rounds.csv).
//
// Series:
//   (a) colors used by the reduction vs n          (paper: k*rho polylog)
//   (b) distributed-reduction H-rounds vs n        (paper: polylog rounds)
#include <fstream>
#include <iostream>

#include "core/distributed_reduction.hpp"
#include "core/reduction.hpp"
#include "hypergraph/generators.hpp"
#include "mis/greedy_maxis.hpp"
#include "util/bench_report.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace pslocal;

namespace {

void maybe_write_csv(const Table& table, const std::string& prefix,
                     const std::string& suffix) {
  if (prefix.empty()) return;
  const std::string path = prefix + suffix;
  std::ofstream f(path);
  if (f.good()) {
    f << table.render_csv();
    std::cout << "(wrote " << path << ")\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  apply_thread_option(opts);
  BenchReport json_report("scaling_series", opts);
  const std::uint64_t seed0 = opts.get_int("seed", 15);
  const int seeds = static_cast<int>(opts.get_int("seeds", 5));
  const std::string csv = opts.get_string("csv", "");

  // (a) colors vs n, aggregated.
  {
    Table table("E15a — reduction colors vs n, mean ± std over " +
                std::to_string(seeds) + " seeds (m = n, k = 3, greedy)");
    table.header({"n", "colors mean", "colors std", "phases mean",
                  "fresh baseline (m)"});
    for (std::size_t n : {32u, 64u, 128u, 192u}) {
      Accumulator colors, phases;
      for (int s = 0; s < seeds; ++s) {
        Rng rng(seed0 + static_cast<std::uint64_t>(s) * 1000 + n);
        PlantedCfParams params;
        params.n = n;
        params.m = n;
        params.k = 3;
        const auto inst = planted_cf_colorable(params, rng);
        GreedyMinDegreeOracle oracle;
        ReductionOptions ropts;
        ropts.k = 3;
        const auto res =
            cf_multicoloring_via_maxis(inst.hypergraph, oracle, ropts);
        if (!res.success) return 1;
        colors.add(static_cast<double>(res.colors_used));
        phases.add(static_cast<double>(res.phases));
      }
      table.row({fmt_size(n), fmt_double(colors.mean(), 2),
                 fmt_double(colors.stddev(), 2), fmt_double(phases.mean(), 2),
                 fmt_size(n)});
    }
    std::cout << table.render();
    json_report.add_table(table);
    maybe_write_csv(table, csv, "_colors.csv");
  }

  // (b) distributed rounds vs n, aggregated.
  {
    Table table("E15b — distributed reduction H-rounds vs n, mean ± std "
                "over " + std::to_string(seeds) + " seeds (m = n, k = 3)");
    table.header({"n", "H rounds mean", "H rounds std", "phases mean",
                  "max msg bytes mean"});
    for (std::size_t n : {32u, 64u, 128u}) {
      Accumulator rounds, phases, bytes;
      for (int s = 0; s < seeds; ++s) {
        Rng rng(seed0 + static_cast<std::uint64_t>(s) * 997 + n);
        PlantedCfParams params;
        params.n = n;
        params.m = n;
        params.k = 3;
        const auto inst = planted_cf_colorable(params, rng);
        const auto res = distributed_cf_multicoloring(
            inst.hypergraph, 3, seed0 * 13 + n + static_cast<std::uint64_t>(s));
        if (!res.success) return 1;
        rounds.add(static_cast<double>(res.total_physical_rounds));
        phases.add(static_cast<double>(res.phases));
        std::size_t mx = 0;
        for (const auto& t : res.trace)
          mx = std::max(mx, t.max_message_bytes);
        bytes.add(static_cast<double>(mx));
      }
      table.row({fmt_size(n), fmt_double(rounds.mean(), 2),
                 fmt_double(rounds.stddev(), 2), fmt_double(phases.mean(), 2),
                 fmt_double(bytes.mean(), 0)});
    }
    std::cout << table.render();
    json_report.add_table(table);
    maybe_write_csv(table, csv, "_rounds.csv");
  }
  std::cout << "Colors and round bills are flat-to-logarithmic in n across "
               "seeds; variance is small.\n";
  json_report.write();
  return 0;
}
