// Supplementary experiment E13: the P-SLOCAL landscape in numbers.
//
// The paper situates MaxIS approximation among the known
// P-SLOCAL-complete problems: conflict-free multicoloring [GKM17],
// network decomposition [GKM17], dominating-set approximation [GHK18].
// This bench runs the library's implementation of each on a shared
// workload and reports the certificate quantities (colors, cluster
// parameters, approximation ratios, localities) side by side.
#include <cmath>
#include <iostream>
#include <numeric>

#include "coloring/splitting.hpp"
#include "core/reduction.hpp"
#include "cover/dominating_set.hpp"
#include "cover/set_cover.hpp"
#include "graph/generators.hpp"
#include "hypergraph/generators.hpp"
#include "mis/greedy_maxis.hpp"
#include "slocal/ball_carving.hpp"
#include "slocal/network_decomposition.hpp"
#include "slocal/ruling_set.hpp"
#include "util/bench_report.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace pslocal;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  apply_thread_option(opts);
  BenchReport json_report("pslocal_problems", opts);
  const std::uint64_t seed = opts.get_int("seed", 13);

  Table table("E13 — P-SLOCAL-complete problems on one workload family");
  table.header({"problem", "instance", "certificate", "bound / reference"});

  // 1. MaxIS approximation (this paper) via SLOCAL ball carving.
  {
    Rng rng(seed);
    const Graph g = gnp(96, 5.0 / 96.0, rng);
    std::vector<VertexId> order(g.vertex_count());
    std::iota(order.begin(), order.end(), VertexId{0});
    const auto carve = ball_carving_maxis(g, order);
    table.row({"MaxIS polylog-approx (Thm 1.1)", "G(96, deg~5)",
               "|I| = " + fmt_size(carve.independent_set.size()) +
                   ", locality " + fmt_size(carve.locality),
               "lambda <= 2, locality <= log2 n + 1 = " +
                   fmt_double(std::log2(96.0) + 1, 1)});
  }

  // 2. Conflict-free multicoloring (Thm 1.2 source problem).
  {
    Rng rng(seed + 1);
    PlantedCfParams params;
    params.n = 96;
    params.m = 96;
    params.k = 3;
    const auto inst = planted_cf_colorable(params, rng);
    GreedyMinDegreeOracle oracle;
    ReductionOptions ropts;
    ropts.k = 3;
    const auto res = cf_multicoloring_via_maxis(inst.hypergraph, oracle, ropts);
    table.row({"CF multicoloring [GKM17]", "planted, m=96, k=3",
               "colors = " + fmt_size(res.colors_used) + ", phases = " +
                   fmt_size(res.phases),
               "k*rho = polylog; fresh baseline = 96"});
  }

  // 3. Network decomposition [GKM17].
  {
    Rng rng(seed + 2);
    const Graph g = gnp(128, 4.0 / 128.0, rng);
    const auto nd = ball_growing_decomposition(g);
    const bool ok = verify_decomposition(
        g, nd, decomposition_diameter_bound(128),
        decomposition_color_bound(128));
    table.row({"network decomposition [GKM17]", "G(128, deg~4)",
               "C = " + fmt_size(nd.color_count) + ", clusters = " +
                   fmt_size(nd.cluster_count) + ", valid = " + fmt_bool(ok),
               "C <= log2 n + 1 = " + fmt_size(decomposition_color_bound(128)) +
                   ", D <= 2 log2 n = " +
                   fmt_size(decomposition_diameter_bound(128))});
  }

  // 4. Dominating set approximation [GHK18].
  {
    Rng rng(seed + 3);
    const Graph g = gnp(24, 0.2, rng);
    const auto greedy = greedy_dominating_set(g);
    const auto exact = exact_dominating_set(g);
    const double ratio = static_cast<double>(greedy.size()) /
                         static_cast<double>(exact.set.size());
    table.row({"dominating set approx [GHK18]", "G(24, p=0.2)",
               "greedy = " + fmt_size(greedy.size()) + ", opt = " +
                   fmt_size(exact.set.size()) + ", ratio = " +
                   fmt_ratio(ratio, 2),
               "H(Δ+1) = " + fmt_ratio(dominating_set_guarantee(g), 2)});
  }

  // 4b. Set cover [GHK18] — dominating set's hypergraph generalization.
  {
    Rng rng(seed + 13);
    const Graph g = gnp(20, 0.25, rng);
    const auto h = closed_neighborhood_hypergraph(g);
    const auto greedy = greedy_set_cover(h);
    const auto exact = exact_set_cover(h);
    const double ratio = static_cast<double>(greedy.size()) /
                         static_cast<double>(exact.cover.size());
    table.row({"set cover approx [GHK18]", "N[v] sets of G(20, p=0.25)",
               "greedy = " + fmt_size(greedy.size()) + ", opt = " +
                   fmt_size(exact.cover.size()) + ", ratio = " +
                   fmt_ratio(ratio, 2),
               "H(rank) = " + fmt_ratio(set_cover_guarantee(h), 2)});
  }

  // 4c. (Weak) local splitting [GKM17] via derandomized SLOCAL(1).
  {
    Rng rng(seed + 17);
    const auto h = random_uniform_hypergraph(80, 50, 9, rng);
    std::vector<VertexId> order(h.vertex_count());
    std::iota(order.begin(), order.end(), VertexId{0});
    const auto res = derandomized_splitting(h, order);
    table.row({"(weak) splitting [GKM17]", "50 edges of size 9",
               "mono = " +
                   fmt_size(monochromatic_edge_count(h, res.splitting)) +
                   ", locality " + fmt_size(res.locality),
               "estimator " + fmt_double(res.initial_estimator, 3) +
                   " < 1 => always valid"});
  }

  // 5. Ruling sets (substrate for [AGLP89]-style decompositions).
  {
    Rng rng(seed + 4);
    const Graph g = gnp(96, 5.0 / 96.0, rng);
    std::vector<VertexId> order(g.vertex_count());
    std::iota(order.begin(), order.end(), VertexId{0});
    const auto rs = slocal_ruling_set(g, 3, order);
    table.row({"(3,2)-ruling set [AGLP89 toolkit]", "G(96, deg~5)",
               "|S| = " + fmt_size(rs.ruling_set.size()) + ", locality " +
                   fmt_size(rs.locality),
               "locality = alpha-1 = 2"});
  }

  std::cout << table.render();
  json_report.add_table(table);
  std::cout << "Every completeness-class member runs on the same substrate "
               "stack; solving any one of\nthem in deterministic polylog "
               "LOCAL derandomizes them all (paper, Section 1).\n";
  json_report.write();
  return 0;
}
