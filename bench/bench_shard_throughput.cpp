// Multi-shard serving throughput over the shard tier (docs/shard.md).
//
// Replays one seeded trace through LocalCluster topologies of 1, 2 and
// 4 shards (replication factor 1), plus a 2-shard rf=2 fan-out pass and
// a 2-shard rf=2 *failover* pass that kills one shard halfway through
// the trace.  Every pass must produce byte-identical response payloads
// (verify_replay against the 1-shard recording) with zero lost requests
// — including the failover pass, where the surviving replica absorbs
// the dead shard's keys mid-run.
//
// What the 1→2 shard speedup measures on a single-core host: this
// machine is CPU-bound, so sharding cannot add compute.  What it adds
// is *aggregate cache capacity*: each shard's SolverCache holds
// --cache-entries entries (deliberately sized below the trace's
// distinct-key count), so one shard thrashes its LRU and recomputes,
// while the consistent-hash partition splits the key set until it fits.
// That is the honest multi-node story — shards scale the memory tier,
// and on multi-core hosts the epoll-per-core server scales the CPU tier
// on top (BENCH_net measures that axis).  The rf=2 pass shows the
// fan-out tradeoff: every request computes on two replicas, buying
// tail-latency/availability with throughput.
//
// Per-connection request counts and per-shard routed counts go into the
// JSON so client- and shard-imbalance are visible.
//
// Knobs: --requests --pool --n --m --k --seed-variants (trace shape),
// --clients, --cache-entries --queue-capacity --max-batch (per-shard
// engine), --vnodes, --io-threads (per-shard server loops),
// --iters-small (CI-sized run), --threads, --seed.
#include <atomic>
#include <cstdint>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_main.hpp"
#include "load_gen.hpp"
#include "net/client.hpp"
#include "service/engine.hpp"
#include "service/workload.hpp"
#include "shard/shard.hpp"
#include "util/check.hpp"
#include "util/table.hpp"

using namespace pslocal;

namespace {

std::string counts_json(const std::vector<std::uint64_t>& counts) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (i != 0) os << ",";
    os << counts[i];
  }
  os << "]";
  return os.str();
}

struct ShardPass {
  benchload::ClosedLoopResult loop;
  std::vector<service::ReplayEntry> entries;
  shard::ShardClient::Stats agg;                // summed over workers
  std::vector<std::uint64_t> routed;            // per shard, all workers
  std::vector<std::string> engine_stats;        // stats_json per shard
  /// Live telemetry scraped from each shard at the halfway request
  /// while the other workers keep driving load (kStatsRequest answered
  /// on the shard's io loop — docs/tracing.md).  "null" for a shard
  /// that was dead or unreachable at scrape time (the kill pass).
  std::vector<std::string> mid_stats;
};

/// One kStatsRequest round-trip against a shard endpoint; "null" when
/// the shard refuses or the scrape fails (it may be mid-kill).
std::string scrape_stats(const shard::Endpoint& ep) {
  try {
    net::Client::Config cc;
    cc.host = ep.host;
    cc.port = ep.port;
    cc.connect_timeout_ms = 2000;
    cc.io_timeout_ms = 5000;
    net::Client client(cc);
    client.connect();
    const net::Client::Result r = client.stats();
    if (r.outcome != net::Client::Outcome::kOk) return "null";
    return r.stats_json;
  } catch (const ContractViolation&) {
    return "null";
  }
}

/// Worker context: one ShardClient; the destructor drains duplicate
/// responses and folds the client's tallies into the shared aggregates.
struct ShardCtx {
  std::unique_ptr<shard::ShardClient> client;
  shard::ShardClient::Stats* agg = nullptr;
  std::vector<std::uint64_t>* routed = nullptr;

  ShardCtx(std::unique_ptr<shard::ShardClient> c,
           shard::ShardClient::Stats* a, std::vector<std::uint64_t>* r)
      : client(std::move(c)), agg(a), routed(r) {}
  ShardCtx(ShardCtx&&) = default;
  ShardCtx& operator=(ShardCtx&&) = default;
  ~ShardCtx() {
    if (client == nullptr) return;
    client->drain();
    const auto s = client->stats();
    // Workers are joined before the aggregates are read, but the folds
    // themselves run concurrently — guarded by the closed loop's design
    // of one context per worker thread plus this mutex.
    static std::mutex mu;
    std::lock_guard<std::mutex> lock(mu);
    agg->calls += s.calls;
    agg->sends += s.sends;
    agg->fanout_sends += s.fanout_sends;
    agg->duplicates_suppressed += s.duplicates_suppressed;
    agg->reroutes_queue_full += s.reroutes_queue_full;
    agg->failovers += s.failovers;
    agg->reconnects += s.reconnects;
    agg->pending_duplicates += s.pending_duplicates;
    const auto per_shard = client->routed_per_shard();
    for (std::size_t i = 0; i < per_shard.size(); ++i)
      (*routed)[i] += per_shard[i];
  }
};

struct PassConfig {
  std::size_t shards = 1;
  std::size_t replication = 1;
  std::size_t kill_shard = SIZE_MAX;  // fault injection target
  std::size_t kill_at = SIZE_MAX;     // request index that triggers it
};

ShardPass run_shard_pass(const service::Trace& trace,
                         const shard::LocalClusterConfig& cluster_cfg,
                         const PassConfig& pass, std::size_t clients,
                         const net::Client::RetryPolicy& policy,
                         int io_timeout_ms) {
  ShardPass result;
  const std::size_t total = trace.requests.size();
  result.entries.resize(total);
  result.routed.assign(pass.shards, 0);
  result.mid_stats.assign(pass.shards, "null");

  shard::LocalClusterConfig cc = cluster_cfg;
  cc.shards = pass.shards;
  cc.replication = pass.replication;
  shard::LocalCluster cluster(cc);
  cluster.start();
  std::atomic<bool> kill_armed{pass.kill_at != SIZE_MAX};

  result.loop = benchload::run_closed_loop(
      total, clients,
      [&](std::size_t) {
        shard::ShardClientConfig scc;
        scc.topology = cluster.topology();
        scc.retry = policy;
        scc.io_timeout_ms = io_timeout_ms;
        auto client = std::make_unique<shard::ShardClient>(scc);
        client->connect();
        return ShardCtx(std::move(client), &result.agg, &result.routed);
      },
      [&](ShardCtx& ctx, std::size_t i) -> benchload::OneResult {
        if (i == pass.kill_at && kill_armed.exchange(false)) {
          cluster.kill_shard(pass.kill_shard);
        }
        const net::Client::Result r = ctx.client->call(trace.requests[i]);
        benchload::OneResult one;
        one.ok = r.outcome == net::Client::Outcome::kOk;
        one.latency_ns = r.rtt_ns;
        one.retries = r.attempts - 1;
        if (one.ok)
          result.entries[i] = service::ReplayEntry{i, r.response.key,
                                                   r.response.result};
        else
          std::cerr << "request " << i << " failed: "
                    << net::Client::outcome_name(r.outcome)
                    << (r.error.empty() ? "" : " (" + r.error + ")") << "\n";
        return one;
      },
      [&] {
        // Mid-run scrape: the cluster is under load from every other
        // worker while these stats round-trips run.
        for (std::size_t s = 0; s < pass.shards; ++s) {
          if (!cluster.alive(s)) continue;
          result.mid_stats[s] = scrape_stats(cluster.topology().shards[s]);
        }
      });

  for (std::size_t s = 0; s < cluster.shards(); ++s)
    result.engine_stats.push_back(service::stats_json(cluster.engine(s).stats()));
  cluster.stop();

  PSL_CHECK_MSG(result.loop.errors == 0,
                result.loop.errors << "/" << total
                    << " requests lost or failed (see stderr)");
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  return benchmain::run(
      argc, argv, "shard", 1, [](benchmain::Context& ctx) {
        const bool small = ctx.opts.get_bool("iters-small", false);
        service::TraceParams tp;
        tp.seed = ctx.seed;
        tp.requests = static_cast<std::size_t>(
            ctx.opts.get_int("requests", small ? 600 : 6000));
        tp.instance_pool = static_cast<std::size_t>(
            ctx.opts.get_int("pool", small ? 24 : 48));
        tp.n = static_cast<std::size_t>(ctx.opts.get_int("n", 48));
        tp.m = static_cast<std::size_t>(ctx.opts.get_int("m", 40));
        tp.k = static_cast<std::size_t>(ctx.opts.get_int("k", 3));
        tp.seed_variants =
            static_cast<std::size_t>(ctx.opts.get_int("seed-variants", 2));
        const auto clients =
            static_cast<std::size_t>(ctx.opts.get_int("clients", 8));

        const service::Trace trace = service::generate_trace(tp);

        shard::LocalClusterConfig cc;
        cc.engine.queue_capacity =
            static_cast<std::size_t>(ctx.opts.get_int("queue-capacity", 256));
        cc.engine.max_batch =
            static_cast<std::size_t>(ctx.opts.get_int("max-batch", 64));
        // Per-shard cache deliberately smaller than the key set: the
        // partition, not one LRU, has to hold the working set (header).
        cc.engine.cache.max_entries = static_cast<std::size_t>(
            ctx.opts.get_int("cache-entries",
                             static_cast<long long>(trace.unique_keys / 3)));
        cc.vnodes =
            static_cast<std::size_t>(ctx.opts.get_int("vnodes", 64));
        cc.io_threads =
            static_cast<std::size_t>(ctx.opts.get_int("io-threads", 1));
        cc.ring_seed = ctx.seed;

        ctx.report.metric("requests", static_cast<double>(tp.requests))
            .metric("unique_keys", static_cast<double>(trace.unique_keys))
            .metric("clients", static_cast<double>(clients))
            .metric("cache_entries_per_shard",
                    static_cast<double>(cc.engine.cache.max_entries));
        std::cout << tp.requests << " requests, " << trace.unique_keys
                  << " distinct cache keys, " << cc.engine.cache.max_entries
                  << " cache entries per shard, " << clients
                  << " client workers\n";

        net::Client::RetryPolicy policy;
        policy.seed = ctx.seed;
        policy.max_attempts = 64;
        const int io_timeout_ms = 60000;  // sanitizer builds are slow

        // Router self-test on the widest topology before any traffic.
        {
          shard::Topology topo;
          topo.ring_seed = cc.ring_seed;
          topo.vnodes = cc.vnodes;
          for (std::size_t s = 0; s < 4; ++s)
            topo.shards.push_back(shard::Endpoint{"127.0.0.1", 1});
          const auto st = shard::ShardRouter(topo).self_test();
          std::cout << st.detail << "\n";
          PSL_CHECK_MSG(st.ok, "router self-test failed: " << st.detail);
        }

        struct Named {
          std::string name;
          PassConfig pass;
        };
        std::vector<Named> passes = {
            {"1 shard", {1, 1, SIZE_MAX, SIZE_MAX}},
            {"2 shards", {2, 1, SIZE_MAX, SIZE_MAX}},
            {"4 shards", {4, 1, SIZE_MAX, SIZE_MAX}},
            {"2 shards rf=2", {2, 2, SIZE_MAX, SIZE_MAX}},
            {"2 shards rf=2 +kill", {2, 2, 1, tp.requests / 2}},
        };

        Table table("Sharded serving — capacity scaling, fan-out, failover");
        table.header({"pass", "wall s", "req/s", "p50 ms", "p99 ms", "errors",
                      "fanout", "dups", "failovers", "routed/shard"});
        std::vector<ShardPass> results;
        results.reserve(passes.size());
        for (const Named& named : passes) {
          ShardPass pass = run_shard_pass(trace, cc, named.pass, clients,
                                          policy, io_timeout_ms);
          table.row({named.name, fmt_double(pass.loop.wall_s, 2),
                     fmt_double(pass.loop.throughput_rps, 0),
                     fmt_double(pass.loop.p50_ms, 3),
                     fmt_double(pass.loop.p99_ms, 3),
                     fmt_size(pass.loop.errors),
                     fmt_size(pass.agg.fanout_sends),
                     fmt_size(pass.agg.duplicates_suppressed),
                     fmt_size(pass.agg.failovers),
                     counts_json(pass.routed)});
          results.push_back(std::move(pass));
        }
        std::cout << table.render();
        ctx.report.add_table(table);

        // Byte-identical replay across every topology and fault pattern.
        for (std::size_t p = 1; p < results.size(); ++p) {
          const auto verdict =
              service::verify_replay(results[0].entries, results[p].entries);
          PSL_CHECK_MSG(verdict.identical,
                        "pass \"" << passes[p].name
                            << "\" diverged from the 1-shard recording at id "
                            << verdict.first_mismatch_id << " ("
                            << verdict.mismatches << " mismatches)");
        }
        std::cout << "replay: all " << results.size()
                  << " passes byte-identical\n";

        const double rps1 = results[0].loop.throughput_rps;
        const double rps2 = results[1].loop.throughput_rps;
        const double rps4 = results[2].loop.throughput_rps;
        const double scaling2 = rps2 / std::max(rps1, 1e-9);
        std::cout << "scaling: 1 shard " << fmt_double(rps1, 0)
                  << " rps -> 2 shards " << fmt_double(rps2, 0)
                  << " rps (x" << fmt_double(scaling2, 2) << ") -> 4 shards "
                  << fmt_double(rps4, 0) << " rps\n";

        const ShardPass& kill = results[4];
        PSL_CHECK_MSG(kill.agg.failovers > 0,
                      "kill pass recorded no failovers — the fault never "
                      "reached a client");

        ctx.report.metric("throughput_rps_1shard", rps1)
            .metric("throughput_rps_2shard", rps2)
            .metric("throughput_rps_4shard", rps4)
            .metric("shard_scaling_1_to_2", scaling2)
            .metric("shard_scaling_1_to_4", rps4 / std::max(rps1, 1e-9))
            .metric("throughput_rps_rf2", results[3].loop.throughput_rps)
            .metric("throughput_rps_rf2_kill", kill.loop.throughput_rps)
            .metric("rf2_duplicates_suppressed",
                    static_cast<double>(results[3].agg.duplicates_suppressed))
            .metric("kill_failovers", static_cast<double>(kill.agg.failovers))
            .metric("kill_errors", static_cast<double>(kill.loop.errors))
            .metric("latency_p50_ms_2shard", results[1].loop.p50_ms)
            .metric("latency_p99_ms_2shard", results[1].loop.p99_ms)
            .metric("routed_per_shard_2shard",
                    counts_json(results[1].routed))
            .metric("routed_per_shard_4shard",
                    counts_json(results[2].routed))
            .metric("per_connection_2shard",
                    counts_json(results[1].loop.per_client))
            .metric("engine_stats_2shard",
                    "[" + results[1].engine_stats[0] + "," +
                        results[1].engine_stats[1] + "]");

        // Per-shard live telemetry captured at the halfway request of
        // each pass: obs snapshot (service.stage.* breakdowns with tail
        // exemplars), engine stats and per-loop gauges, as scraped from
        // the running shard — not a post-mortem snapshot.
        for (std::size_t p = 0; p < results.size(); ++p) {
          std::string arr = "[";
          for (std::size_t s = 0; s < results[p].mid_stats.size(); ++s) {
            if (s != 0) arr += ",";
            arr += results[p].mid_stats[s];
          }
          arr += "]";
          std::string key = "obs_midrun_pass" + std::to_string(p);
          ctx.report.metric_json(key, arr);
        }
        // The 2-shard pass must have scraped both shards live.
        for (const std::string& s : results[1].mid_stats) {
          PSL_CHECK_MSG(s != "null",
                        "2-shard pass failed to scrape a live shard mid-run");
        }
        return 0;
      });
}
