// Experiment E4 (Figure 2): the phase bound of Theorem 1.1.
//
// "fix this k and let rho = lambda * ln m + 1.  In the reduction we use
//  phases 1, ..., rho ... after rho phases ... all edges of the initial
//  hypergraph H are happy and removed."
//
// The controlled-lambda oracle realizes |I_i| = ceil(|E_i|/lambda)
// exactly, so the measured phase count probes the tightness of
// rho = ceil(lambda ln m) + 1 as lambda grows.
#include <iostream>
#include <vector>

#include "core/reduction.hpp"
#include "hypergraph/generators.hpp"
#include "mis/degraded_oracle.hpp"
#include "util/bench_report.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace pslocal;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  apply_thread_option(opts);
  BenchReport json_report("phases_vs_lambda", opts);
  const std::uint64_t seed = opts.get_int("seed", 4);
  const std::size_t m = opts.get_int("m", 24);

  Rng rng(seed);
  PlantedCfParams params;
  params.n = 2 * m;
  params.m = m;
  params.k = 2;
  const auto inst = planted_cf_colorable(params, rng);

  Table table("E4 / Figure 2 — phases used vs lambda (m = " +
              std::to_string(m) + ", k = 2, controlled-lambda oracle)");
  table.header({"lambda", "phases measured", "rho = ceil(l*ln m)+1",
                "within bound", "colors used", "k*phases"});

  bool all_within = true;
  for (double lambda : {1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0}) {
    ControlledLambdaOracle oracle(lambda);
    ReductionOptions ropts;
    ropts.k = 2;
    const auto res = cf_multicoloring_via_maxis(inst.hypergraph, oracle, ropts);
    if (!res.success) return 1;
    all_within = all_within && res.within_rho;
    table.row({fmt_double(lambda, 1), fmt_size(res.phases),
               fmt_size(res.rho_bound), fmt_bool(res.within_rho),
               fmt_size(res.colors_used), fmt_size(2 * res.phases)});
  }
  std::cout << table.render();
  json_report.add_table(table);
  std::cout << (all_within
                    ? "Every run finished within the paper's rho bound.\n"
                    : "PHASE BOUND VIOLATION — investigate!\n");
  json_report.write();
  return all_within ? 0 : 1;
}
