// Overhead proof for src/obs/: how much does instrumentation cost when
// it is compiled in but no trace session is active?
//
// The hot loop mirrors how the library is actually instrumented — a
// counter bump and a scoped span per *block* of work (the runtime
// instruments per chunk/region, never per element).  Reported numbers:
//
//   * baseline        — the raw kernel, no instrumentation
//   * counter/block   — + one Counter::add per block
//   * span/block      — + one untraced ScopedSpan per block
//   * full/block      — + both (the realistic configuration)
//   * counter/element — worst case: a Counter::add on EVERY element,
//                       far denser than anything the library does
//   * traced-wire     — full/block plus an adopted wire trace context
//                       and an exemplar-carrying histogram record, the
//                       per-request cost on a serving thread when trace
//                       ids flow (recorded for trending, not gated)
//
// The acceptance bound lives in `overhead_full_pct`: the realistic
// instrumented-but-untraced loop must stay within ~2% of baseline.  In
// a -DPSLOCAL_OBS=OFF build every variant must time like baseline (the
// stubs compile to nothing) and `obs_enabled` reports 0.
#include <cstdint>
#include <iostream>

#include <benchmark/benchmark.h>

#include "obs/obs.hpp"
#include "util/bench_report.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace pslocal;

namespace {

constexpr std::size_t kBlock = 512;  // elements per instrumented block

// xorshift-mix kernel: cheap, unvectorizable enough to time honestly.
inline std::uint64_t mix(std::uint64_t x) {
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return x;
}

std::uint64_t run_block(std::uint64_t x) {
  for (std::size_t i = 0; i < kBlock; ++i) x = mix(x);
  return x;
}

/// Best-of-`reps` wall time of `blocks` blocks under `body`; body takes
/// and returns the rolling checksum so nothing folds away.
template <typename Body>
double best_seconds(std::size_t blocks, std::size_t reps, Body&& body) {
  double best = 1e100;
  for (std::size_t r = 0; r < reps; ++r) {
    std::uint64_t x = 88172645463325252ull + r;
    WallTimer timer;
    for (std::size_t b = 0; b < blocks; ++b) x = body(x);
    const double s = timer.elapsed_seconds();
    benchmark::DoNotOptimize(x);
    if (s < best) best = s;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  apply_thread_option(opts);
  BenchReport json_report("obs_overhead", opts);
  const auto blocks =
      static_cast<std::size_t>(opts.get_int("blocks", 200000));
  const auto reps = static_cast<std::size_t>(opts.get_int("reps", 7));

  obs::Counter block_counter("obs_overhead.blocks");
  obs::Counter element_counter("obs_overhead.elements");

  const double base = best_seconds(blocks, reps, [](std::uint64_t x) {
    return run_block(x);
  });
  const double with_counter =
      best_seconds(blocks, reps, [&](std::uint64_t x) {
        block_counter.add(1);
        return run_block(x);
      });
  const double with_span = best_seconds(blocks, reps, [](std::uint64_t x) {
    PSL_OBS_SPAN("obs_overhead.block");
    return run_block(x);
  });
  const double with_full = best_seconds(blocks, reps, [&](std::uint64_t x) {
    PSL_OBS_SPAN("obs_overhead.block");
    block_counter.add(1);
    return run_block(x);
  });
  const double per_element =
      best_seconds(blocks, reps, [&](std::uint64_t x) {
        for (std::size_t i = 0; i < kBlock; ++i) {
          element_counter.add(1);
          x = mix(x);
        }
        return x;
      });
  // Traced-wire configuration: the realistic block under an adopted
  // wire trace context plus an exemplar-carrying histogram record —
  // what a server io/worker thread pays per request when trace ids are
  // flowing (docs/tracing.md).  Recorded alongside the gate for
  // trending; the ≤2% acceptance bound stays on the *untraced* path.
  obs::Histogram traced_hist("obs_overhead.traced_ns");
  const double with_traced =
      best_seconds(blocks, reps, [&](std::uint64_t x) {
        obs::ScopedTraceContext trace_ctx(0x9e3779b97f4a7c15ull, 1);
        PSL_OBS_SPAN("obs_overhead.block");
        block_counter.add(1);
        x = run_block(x);
        traced_hist.record(x | 1, obs::current_trace_context().trace_id);
        return x;
      });

  const auto pct = [&](double t) { return (t / base - 1.0) * 100.0; };
  const auto ns_per_block = [&](double t) {
    return t / static_cast<double>(blocks) * 1e9;
  };

  Table table("obs overhead — instrumented-but-untraced hot loop (" +
              std::to_string(blocks) + " blocks x " +
              std::to_string(kBlock) + " elements, best of " +
              std::to_string(reps) + ")");
  table.header({"variant", "ns/block", "overhead %"});
  table.row({"baseline", fmt_double(ns_per_block(base), 1), fmt_double(0.0, 2)});
  table.row({"counter/block", fmt_double(ns_per_block(with_counter), 1),
             fmt_double(pct(with_counter), 2)});
  table.row({"span/block", fmt_double(ns_per_block(with_span), 1),
             fmt_double(pct(with_span), 2)});
  table.row({"full/block", fmt_double(ns_per_block(with_full), 1),
             fmt_double(pct(with_full), 2)});
  table.row({"counter/element", fmt_double(ns_per_block(per_element), 1),
             fmt_double(pct(per_element), 2)});
  table.row({"traced-wire/block", fmt_double(ns_per_block(with_traced), 1),
             fmt_double(pct(with_traced), 2)});
  std::cout << table.render();

  json_report.add_table(table);
  json_report.metric("obs_enabled", obs::kEnabled ? 1.0 : 0.0);
  json_report.metric("baseline_ns_per_block", ns_per_block(base));
  json_report.metric("overhead_counter_pct", pct(with_counter));
  json_report.metric("overhead_span_pct", pct(with_span));
  json_report.metric("overhead_full_pct", pct(with_full));
  json_report.metric("overhead_counter_per_element_pct", pct(per_element));
  json_report.metric("overhead_traced_pct", pct(with_traced));
  json_report.write();

  std::cout << (obs::kEnabled ? "obs compiled IN" : "obs compiled OUT")
            << "; realistic (full/block) overhead: "
            << fmt_double(pct(with_full), 2) << "% (bound: 2%).\n";
  return 0;
}
