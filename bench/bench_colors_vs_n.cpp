// Experiment E5 (Figure 3): total colors k * rho = polylog(n).
//
// "Thus the obtained multicoloring is conflictfree and the total number
//  of colors is k * rho = poly log n."
//
// Sweep n with m = n and k = ceil(log2 n); run the reduction with the
// min-degree greedy oracle and compare the colors actually used against
// m (the trivial fresh baseline) and the k * phases accounting.
#include <cmath>
#include <iostream>

#include "bench_main.hpp"
#include "core/reduction.hpp"
#include "hypergraph/generators.hpp"
#include "mis/greedy_maxis.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace pslocal;

int main(int argc, char** argv) {
  return benchmain::run(
      argc, argv, "colors_vs_n", 5, [](benchmain::Context& ctx) {
        Table table(
            "E5 / Figure 3 — colors used vs n (m = n, k = ceil(log2 n), "
            "greedy-mindeg oracle)");
        table.header({"n", "m", "k", "phases", "colors used", "k*phases",
                      "fresh baseline (m)", "colors / (k*ln m)"});

        std::vector<double> log_n, colors_over_klog;
        for (std::size_t n : {16u, 32u, 64u, 128u, 192u}) {
          const std::size_t k = static_cast<std::size_t>(
              std::ceil(std::log2(static_cast<double>(n))));
          Rng rng(ctx.seed + n);
          PlantedCfParams params;
          params.n = n;
          params.m = n;
          params.k = k;
          params.epsilon = 0.5;
          const auto inst = planted_cf_colorable(params, rng);

          GreedyMinDegreeOracle oracle;
          ReductionOptions ropts;
          ropts.k = k;
          const auto res =
              cf_multicoloring_via_maxis(inst.hypergraph, oracle, ropts);
          if (!res.success) return 1;

          const double k_ln_m =
              static_cast<double>(k) * std::log(static_cast<double>(n));
          table.row(
              {fmt_size(n), fmt_size(n), fmt_size(k), fmt_size(res.phases),
               fmt_size(res.colors_used), fmt_size(res.palette_bound),
               fmt_size(n),
               fmt_double(static_cast<double>(res.colors_used) / k_ln_m, 3)});
          log_n.push_back(std::log2(static_cast<double>(n)));
          colors_over_klog.push_back(static_cast<double>(res.colors_used));
        }
        std::cout << table.render();
        ctx.report.add_table(table);
        std::cout
            << "Colors grow ~ k * phases = polylog(n); the fresh baseline "
               "grows linearly in m = n.\n"
               "(Greedy has no proven lambda; its empirical phase counts are "
               "small because greedy ISs on G_k are near-maximum — see E6.)\n";
        return 0;
      });
}
