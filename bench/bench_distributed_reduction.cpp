// Supplementary experiment E14: the Theorem 1.1 reduction as an actual
// distributed computation on H.
//
// Every phase hosts G_k^i on H's primal graph (dilation 1), runs Luby's
// MIS through the hosts, colors locally, and detects happy edges in one
// exchange.  The total physical round bill — the quantity the LOCAL model
// cares about — is tabulated against instance size next to the trivial
// sequential alternative (gather everything: diameter-ish ~ |V| rounds).
#include <cmath>
#include <iostream>

#include "core/distributed_reduction.hpp"
#include "hypergraph/generators.hpp"
#include "util/bench_report.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace pslocal;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  apply_thread_option(opts);
  BenchReport json_report("distributed_reduction", opts);
  const std::uint64_t seed = opts.get_int("seed", 14);

  Table table(
      "E14 — distributed reduction on H (hosted Luby per phase, k = 3)");
  table.header({"n", "m", "phases", "total H rounds", "colors",
                "max host msg bytes", "4*log2(kn)^2 ref"});

  for (std::size_t n : {16u, 32u, 64u, 128u, 192u}) {
    Rng rng(seed + n);
    PlantedCfParams params;
    params.n = n;
    params.m = n;
    params.k = 3;
    const auto inst = planted_cf_colorable(params, rng);
    const auto res = distributed_cf_multicoloring(inst.hypergraph, 3,
                                                  seed * 7 + n);
    if (!res.success) return 1;
    std::size_t max_msg = 0;
    for (const auto& t : res.trace)
      max_msg = std::max(max_msg, t.max_message_bytes);
    const double ref =
        4.0 * std::pow(std::log2(3.0 * static_cast<double>(n)), 2.0);
    table.row({fmt_size(n), fmt_size(n), fmt_size(res.phases),
               fmt_size(res.total_physical_rounds), fmt_size(res.colors_used),
               fmt_size(max_msg), fmt_double(ref, 0)});
  }
  std::cout << table.render();
  json_report.add_table(table);

  // The deterministic variant: greedy SLOCAL(1) MIS on G_k^i compiled via
  // a network decomposition of (G_k^i)^3 — zero random bits end to end.
  Table table2(
      "E14b — deterministic distributed reduction (compiled SLOCAL oracle)");
  table2.header({"n", "m", "phases", "round bill", "colors",
                 "ND colors (max over phases)"});
  for (std::size_t n : {16u, 32u, 64u}) {
    Rng rng(seed * 3 + n);
    PlantedCfParams params;
    params.n = n;
    params.m = n;
    params.k = 3;
    const auto inst = planted_cf_colorable(params, rng);
    const auto res =
        deterministic_distributed_cf_multicoloring(inst.hypergraph, 3);
    if (!res.success) return 1;
    std::size_t nd_colors = 0;
    for (const auto& t : res.trace)
      nd_colors = std::max(nd_colors, t.decomposition_colors);
    table2.row({fmt_size(n), fmt_size(n), fmt_size(res.phases),
                fmt_size(res.total_round_bill), fmt_size(res.colors_used),
                fmt_size(nd_colors)});
  }
  std::cout << table2.render();
  json_report.add_table(table2);
  std::cout << "Rounds stay polylogarithmic in n while message sizes grow "
               "with host load — LOCAL's\nunbounded bandwidth is exactly "
               "what the simulability argument spends.  The deterministic\n"
               "variant shows the derandomization payoff: decomposition-"
               "compiled SLOCAL oracles, no coins.\n";
  json_report.write();
  return 0;
}
