// Exact-oracle backend frontier + exact_certificate cache economics
// (docs/solver.md).
//
// Part 1 — size frontier.  For growing G(n, p) instances, solve MaxIS
// three ways under comparable budgets: the branch-and-bound ExactMaxIS
// (mis/exact_maxis), the CNF/DPLL backend with the kernelizing pruner,
// and the same backend with the pruner disabled.  Every pair that both
// proves optimality must agree on |IS| (PSL_CHECKed), so the table
// doubles as a differential run; the interesting signal is where each
// method stops proving within budget and what the proof costs (B&B
// nodes vs DPLL decisions, and how much the kernel shrinks the search).
//
// Part 2 — cache-hit path.  A pure exact_certificate trace (weight_exact
// only) repeats a tiny instance pool through a ServiceEngine, splitting
// per-request latency by Response::cache_hit: the miss rows pay a full
// prune -> encode -> iterated-SAT solve, the hit rows pay a cache probe.
// The ratio is the argument for content-addressing exact certificates.
//
// Knobs: --sizes (frontier max n), --p, --budget (DPLL decisions, B&B
// nodes), --requests --pool --n --m (trace shape), --seed, --threads.
// The report's obs section carries solver.* counters and the
// service.stage.* histograms of the run.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_main.hpp"
#include "graph/generators.hpp"
#include "mis/exact_maxis.hpp"
#include "service/engine.hpp"
#include "service/workload.hpp"
#include "solver/solver.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace pslocal;

namespace {

struct FrontierRow {
  std::size_t n = 0, m = 0;
  // Branch and bound.
  double bb_ms = 0;
  std::uint64_t bb_nodes = 0;
  bool bb_proven = false;
  std::size_t bb_size = 0;
  // DPLL with / without the kernelizing pruner.
  double kd_ms = 0, raw_ms = 0;
  std::uint64_t kd_decisions = 0, raw_decisions = 0;
  bool kd_proven = false, raw_proven = false;
  std::size_t kd_size = 0, raw_size = 0;
  std::size_t kernel_vertices = 0, kernel_forced = 0;
};

FrontierRow frontier_point(std::size_t n, double p, std::uint64_t seed,
                           std::uint64_t budget) {
  Rng rng(seed);
  const Graph g = gnp(n, p, rng);
  FrontierRow row;
  row.n = g.vertex_count();
  row.m = g.edge_count();

  {
    WallTimer timer;
    const auto bb = ExactMaxIS(budget).solve(g);
    row.bb_ms = timer.elapsed_millis();
    row.bb_nodes = bb.nodes_explored;
    row.bb_proven = bb.proven_optimal;
    row.bb_size = bb.set.size();
  }

  const auto backend = solver::SolverFactory::instance().make("dpll");
  solver::SolverOptions opts;
  opts.seed = seed;
  opts.decision_budget = budget;
  {
    WallTimer timer;
    const auto res = backend->solve_maxis(g, opts);
    row.kd_ms = timer.elapsed_millis();
    row.kd_decisions = res.decisions;
    row.kd_proven = res.proven_optimal;
    row.kd_size = res.independent_set.size();
    row.kernel_vertices = res.kernel_vertices;
    row.kernel_forced = res.kernel_forced;
  }
  {
    solver::SolverOptions raw = opts;
    raw.kernelize = false;
    WallTimer timer;
    const auto res = backend->solve_maxis(g, raw);
    row.raw_ms = timer.elapsed_millis();
    row.raw_decisions = res.decisions;
    row.raw_proven = res.proven_optimal;
    row.raw_size = res.independent_set.size();
  }

  // Differential: any two methods that both completed must agree.
  if (row.bb_proven && row.kd_proven)
    PSL_CHECK_MSG(row.bb_size == row.kd_size,
                  "frontier n=" << n << ": B&B alpha " << row.bb_size
                                << " != kernel+dpll " << row.kd_size);
  if (row.bb_proven && row.raw_proven)
    PSL_CHECK_MSG(row.bb_size == row.raw_size,
                  "frontier n=" << n << ": B&B alpha " << row.bb_size
                                << " != raw dpll " << row.raw_size);
  if (row.kd_proven && row.raw_proven)
    PSL_CHECK_MSG(row.kd_size == row.raw_size,
                  "frontier n=" << n << ": kernel+dpll " << row.kd_size
                                << " != raw dpll " << row.raw_size);
  return row;
}

const char* mark(bool proven) { return proven ? "yes" : "cut"; }

}  // namespace

int main(int argc, char** argv) {
  return benchmain::run(argc, argv, "solver", 2, [](benchmain::Context& ctx) {
    const auto max_n =
        static_cast<std::size_t>(ctx.opts.get_int("sizes", 40));
    const double p = ctx.opts.get_double("p", 0.3);
    const auto budget =
        static_cast<std::uint64_t>(ctx.opts.get_int("budget", 2'000'000));

    // --- Part 1: size frontier -------------------------------------
    std::vector<FrontierRow> rows;
    for (std::size_t n = 8; n <= max_n; n += 8)
      rows.push_back(frontier_point(n, p, ctx.seed + n, budget));

    Table frontier("Exact-solve size frontier — B&B vs CNF/DPLL (G(n, p), "
                   "p = " + fmt_double(p, 2) + ")");
    frontier.header({"n", "m", "alpha", "B&B ms", "nodes", "ok",
                     "kern+dpll ms", "decisions", "ok", "kernel n",
                     "raw dpll ms", "decisions", "ok"});
    for (const auto& r : rows)
      frontier.row({fmt_size(r.n), fmt_size(r.m), fmt_size(r.bb_size),
                    fmt_double(r.bb_ms, 2), fmt_size(r.bb_nodes),
                    mark(r.bb_proven), fmt_double(r.kd_ms, 2),
                    fmt_size(r.kd_decisions), mark(r.kd_proven),
                    fmt_size(r.kernel_vertices), fmt_double(r.raw_ms, 2),
                    fmt_size(r.raw_decisions), mark(r.raw_proven)});
    std::cout << frontier.render();
    ctx.report.add_table(frontier);

    const auto largest_proven = [&](auto pick) {
      std::size_t best = 0;
      for (const auto& r : rows)
        if (pick(r)) best = std::max(best, r.n);
      return static_cast<double>(best);
    };
    ctx.report.metric("frontier_points", static_cast<double>(rows.size()))
        .metric("frontier_budget", static_cast<double>(budget))
        .metric("frontier_p", p)
        .metric("largest_proven_bb",
                largest_proven([](const FrontierRow& r) { return r.bb_proven; }))
        .metric("largest_proven_kernel_dpll",
                largest_proven([](const FrontierRow& r) { return r.kd_proven; }))
        .metric("largest_proven_raw_dpll",
                largest_proven(
                    [](const FrontierRow& r) { return r.raw_proven; }));
    if (!rows.empty()) {
      const auto& last = rows.back();
      ctx.report
          .metric("frontier_last_kernel_shrink",
                  last.n > 0 ? 1.0 - static_cast<double>(last.kernel_vertices) /
                                         static_cast<double>(last.n)
                             : 0.0)
          .metric("frontier_last_bb_ms", last.bb_ms)
          .metric("frontier_last_kernel_dpll_ms", last.kd_ms)
          .metric("frontier_last_raw_dpll_ms", last.raw_ms);
    }

    // --- Part 2: exact_certificate cache-hit path ------------------
    service::TraceParams tp;
    tp.seed = ctx.seed;
    tp.requests =
        static_cast<std::size_t>(ctx.opts.get_int("requests", 48));
    tp.instance_pool =
        static_cast<std::size_t>(ctx.opts.get_int("pool", 3));
    tp.n = static_cast<std::size_t>(ctx.opts.get_int("n", 10));
    tp.m = static_cast<std::size_t>(ctx.opts.get_int("m", 4));
    tp.k = 2;
    tp.seed_variants = 1;
    // Pure exact_certificate stream: every request pays (or reuses) a
    // full certificate solve.
    tp.weight_build = tp.weight_greedy = tp.weight_luby = 0;
    tp.weight_cf = tp.weight_reduction = 0;
    tp.weight_exact = 1;
    const service::Trace trace = service::generate_trace(tp);

    service::ServiceEngine engine{service::EngineConfig{}};
    engine.start();
    double miss_ms = 0, hit_ms = 0;
    std::size_t misses = 0, hits = 0;
    std::string first_payload;
    for (const auto& req : trace.requests) {
      auto sub = engine.submit(req);
      PSL_CHECK_MSG(sub.admission == service::Admission::kAccepted,
                    "exact trace request " << req.id << " rejected");
      const service::Response resp = sub.response.get();
      PSL_CHECK_MSG(resp.status == service::Response::Status::kOk,
                    "exact trace request " << req.id << " failed: "
                                           << resp.reason);
      if (resp.cache_hit) {
        ++hits;
        hit_ms += static_cast<double>(resp.total_ns) * 1e-6;
      } else {
        ++misses;
        miss_ms += static_cast<double>(resp.total_ns) * 1e-6;
      }
      if (first_payload.empty()) first_payload = resp.result;
    }
    const auto stats = engine.stats();
    engine.stop();

    PSL_CHECK_MSG(misses == trace.unique_keys,
                  "expected " << trace.unique_keys << " cold solves, got "
                              << misses);
    const double mean_miss = misses ? miss_ms / static_cast<double>(misses) : 0;
    const double mean_hit = hits ? hit_ms / static_cast<double>(hits) : 0;

    Table cache("exact_certificate via ServiceEngine — miss vs hit");
    cache.header({"path", "requests", "mean ms"});
    cache.row({"miss (solve)", fmt_size(misses), fmt_double(mean_miss, 3)});
    cache.row({"hit (cache)", fmt_size(hits), fmt_double(mean_hit, 4)});
    std::cout << cache.render();
    ctx.report.add_table(cache);

    ctx.report.metric("cert_requests", static_cast<double>(tp.requests))
        .metric("cert_unique_keys", static_cast<double>(trace.unique_keys))
        .metric("cert_misses", static_cast<double>(misses))
        .metric("cert_hits", static_cast<double>(hits))
        .metric("cert_miss_mean_ms", mean_miss)
        .metric("cert_hit_mean_ms", mean_hit)
        .metric("cert_hit_speedup",
                mean_hit > 0 ? mean_miss / mean_hit : 0.0)
        .metric("cert_served_cached",
                static_cast<double>(stats.served_cached));
    std::cout << "cache speedup (mean latency): "
              << fmt_double(mean_hit > 0 ? mean_miss / mean_hit : 0.0, 1)
              << "x over " << hits << " hits / " << misses << " misses\n";
    return 0;
  });
}
