// Experiment E11: micro-benchmarks (google-benchmark) for the hot paths:
// conflict-graph construction, the Lemma 2.1 correspondence maps, the
// greedy oracles, and happy-edge scanning.
//
// Like every other bench this binary honors --threads=N (global pool),
// --json-out=<path> and --trace-out=<path>: a custom main applies the
// repo options before benchmark::Initialize consumes the --benchmark_*
// flags, and a collecting reporter snapshots every run into a
// BenchReport table so BENCH_micro.json is regression-trackable.
#include <benchmark/benchmark.h>

#include "core/correspondence.hpp"
#include "core/reduction.hpp"
#include "core/simulation.hpp"
#include "graph/generators.hpp"
#include "hypergraph/generators.hpp"
#include "mis/exact_maxis.hpp"
#include "mis/greedy_maxis.hpp"
#include "mis/kernelization.hpp"
#include "util/bench_report.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

namespace {

using namespace pslocal;

PlantedCfInstance make_instance(std::size_t m, std::size_t k) {
  Rng rng(1234 + m * 3 + k);
  PlantedCfParams params;
  params.n = std::max<std::size_t>(2 * m, 4 * k);
  params.m = m;
  params.k = k;
  return planted_cf_colorable(params, rng);
}

void BM_ConflictGraphBuild(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto inst = make_instance(m, k);
  for (auto _ : state) {
    ConflictGraph cg(inst.hypergraph, k);
    benchmark::DoNotOptimize(cg.graph().edge_count());
  }
  state.SetLabel("m=" + std::to_string(m) + " k=" + std::to_string(k));
}
BENCHMARK(BM_ConflictGraphBuild)
    ->Args({16, 2})
    ->Args({64, 2})
    ->Args({64, 4})
    ->Args({128, 4});

void BM_IsFromColoring(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto inst = make_instance(m, 3);
  const ConflictGraph cg(inst.hypergraph, 3);
  const CfColoring f(inst.planted_coloring);
  for (auto _ : state) {
    benchmark::DoNotOptimize(is_from_coloring(cg, f));
  }
}
BENCHMARK(BM_IsFromColoring)->Arg(16)->Arg(64)->Arg(128);

void BM_ColoringFromIs(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto inst = make_instance(m, 3);
  const ConflictGraph cg(inst.hypergraph, 3);
  const auto is = is_from_coloring(cg, CfColoring(inst.planted_coloring));
  for (auto _ : state) {
    benchmark::DoNotOptimize(coloring_from_is(cg, is));
  }
}
BENCHMARK(BM_ColoringFromIs)->Arg(16)->Arg(64)->Arg(128);

void BM_GreedyMinDegreeOnConflictGraph(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto inst = make_instance(m, 3);
  const ConflictGraph cg(inst.hypergraph, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(greedy_min_degree_maxis(cg.graph()));
  }
}
BENCHMARK(BM_GreedyMinDegreeOnConflictGraph)->Arg(16)->Arg(64)->Arg(128);

void BM_HappyEdgeScan(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto inst = make_instance(m, 3);
  const CfColoring f(inst.planted_coloring);
  for (auto _ : state) {
    benchmark::DoNotOptimize(happy_edge_count(inst.hypergraph, f));
  }
}
BENCHMARK(BM_HappyEdgeScan)->Arg(64)->Arg(256);

void BM_ExactMaxISOnConflictGraph(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto inst = make_instance(m, 2);
  const ConflictGraph cg(inst.hypergraph, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExactMaxIS().solve(cg.graph()));
  }
}
BENCHMARK(BM_ExactMaxISOnConflictGraph)->Arg(8)->Arg(16)->Arg(24);

void BM_KernelizeRandomGraph(benchmark::State& state) {
  Rng rng(5);
  const Graph g = gnp(static_cast<std::size_t>(state.range(0)), 0.05, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernelize_maxis(g));
  }
}
BENCHMARK(BM_KernelizeRandomGraph)->Arg(64)->Arg(256);

void BM_HostMappingAnalysis(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto inst = make_instance(m, 3);
  const ConflictGraph cg(inst.hypergraph, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_host_mapping(cg));
  }
}
BENCHMARK(BM_HostMappingAnalysis)->Arg(16)->Arg(64);

void BM_FullReductionGreedy(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto inst = make_instance(m, 3);
  for (auto _ : state) {
    GreedyMinDegreeOracle oracle;
    ReductionOptions opts;
    opts.k = 3;
    opts.verify_phases = false;
    benchmark::DoNotOptimize(
        cf_multicoloring_via_maxis(inst.hypergraph, oracle, opts));
  }
}
BENCHMARK(BM_FullReductionGreedy)->Arg(16)->Arg(64);

// Console output as usual, plus one table row per finished run for the
// JSON report (ns are per iteration, like the console numbers).
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  CollectingReporter() : table_("E11 — micro-benchmark hot paths") {
    table_.header({"benchmark", "iterations", "real ns/iter", "cpu ns/iter",
                   "label"});
  }

  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      table_.row({run.benchmark_name(),
                  fmt_size(static_cast<std::size_t>(run.iterations)),
                  fmt_double(run.GetAdjustedRealTime(), 1),
                  fmt_double(run.GetAdjustedCPUTime(), 1),
                  run.report_label});
    }
  }

  [[nodiscard]] const Table& table() const { return table_; }

 private:
  Table table_;
};

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  apply_thread_option(opts);
  // benchmark::Initialize strips the --benchmark_* flags it understands
  // and leaves ours alone; both parsers see the full command line.
  benchmark::Initialize(&argc, argv);
  BenchReport json_report("micro", opts);
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  json_report.add_table(reporter.table());
  json_report.write();
  return 0;
}
