// Shared closed-loop load generator for the serving benches.
//
// bench_service_throughput (in-process engine) and bench_net_throughput
// (TCP loopback) drive the same loop: `clients` worker threads race to
// claim the next unclaimed request index, issue it, wait for its
// response, record the latency, repeat until the trace is exhausted.
// This header owns that driver plus the latency bookkeeping, so the two
// benches differ only in what "issue and wait" means.
//
//   auto result = benchload::run_closed_loop(
//       total, clients,
//       [&](std::size_t client) { return make_connection(client); },
//       [&](auto& conn, std::size_t i) -> benchload::OneResult {
//         ... submit trace.requests[i] via conn, wait ...
//         return {latency_ns, retries, ok};
//       });
//
// The context factory runs inside each worker thread (a per-thread TCP
// connection is created on the thread that uses it); the issue callback
// may capture shared state (e.g. a replay-entry vector indexed by `i` —
// each index is claimed by exactly one worker, so slot writes race-free).
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace pslocal::benchload {

/// One completed request, as reported by the issue callback.
struct OneResult {
  std::uint64_t latency_ns = 0;
  std::uint64_t retries = 0;  // admission rejections resubmitted
  bool ok = true;             // false counts into ClosedLoopResult::errors
};

struct ClosedLoopResult {
  double wall_s = 0.0;
  double throughput_rps = 0.0;
  std::uint64_t errors = 0;
  std::uint64_t retries = 0;
  std::vector<std::uint64_t> latencies_ns;  // per request index
  /// Requests completed by each worker connection.  Sums to the request
  /// total; benches report it so connection/shard imbalance is visible
  /// in the JSON (a closed loop self-balances, so a skewed vector means
  /// one connection's target was slow).
  std::vector<std::uint64_t> per_client;
  // Exact quantiles over latencies_ns, in milliseconds.
  double p50_ms = 0.0, p99_ms = 0.0, mean_ms = 0.0;
};

/// Closed-loop driver (see header comment).  `make_ctx(client_index)`
/// builds each worker's private context on the worker thread;
/// `one(ctx, request_index)` issues request `request_index` and blocks
/// until its response.  `mid_hook()` fires exactly once, on whichever
/// worker claims the halfway request index, *while the other workers
/// keep driving load* — the shard bench uses it to scrape the live
/// telemetry plane mid-run (docs/tracing.md) rather than after the
/// cluster has gone idle.
template <typename MakeCtx, typename One, typename Mid>
ClosedLoopResult run_closed_loop(std::size_t total, std::size_t clients,
                                 MakeCtx&& make_ctx, One&& one,
                                 Mid&& mid_hook) {
  ClosedLoopResult result;
  result.latencies_ns.assign(total, 0);
  result.per_client.assign(clients > 0 ? clients : 1, 0);
  std::atomic<std::size_t> next{0};
  std::atomic<std::uint64_t> errors{0}, retries{0};
  const std::size_t mid_index = total / 2;

  WallTimer timer;
  const auto worker = [&](std::size_t client_index) {
    auto ctx = make_ctx(client_index);
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) return;
      if (i == mid_index) mid_hook();  // each index claimed exactly once
      const OneResult r = one(ctx, i);
      result.latencies_ns[i] = r.latency_ns;
      result.per_client[client_index]++;  // each worker owns its slot
      if (!r.ok) errors.fetch_add(1, std::memory_order_relaxed);
      retries.fetch_add(r.retries, std::memory_order_relaxed);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(clients > 0 ? clients - 1 : 0);
  for (std::size_t c = 1; c < clients; ++c)
    threads.emplace_back(worker, c);
  worker(0);  // the calling thread is a client too
  for (auto& t : threads) t.join();
  result.wall_s = timer.elapsed_millis() / 1e3;

  result.errors = errors.load();
  result.retries = retries.load();
  result.throughput_rps =
      result.wall_s > 0 ? static_cast<double>(total) / result.wall_s : 0.0;

  std::vector<std::uint64_t> sorted = result.latencies_ns;
  std::sort(sorted.begin(), sorted.end());
  const auto at = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(total > 0 ? total - 1 : 0));
    return static_cast<double>(sorted.empty() ? 0 : sorted[idx]) / 1e6;
  };
  result.p50_ms = at(0.50);
  result.p99_ms = at(0.99);
  double sum = 0;
  for (const auto ns : sorted) sum += static_cast<double>(ns);
  result.mean_ms = total > 0 ? sum / static_cast<double>(total) / 1e6 : 0.0;
  return result;
}

template <typename MakeCtx, typename One>
ClosedLoopResult run_closed_loop(std::size_t total, std::size_t clients,
                                 MakeCtx&& make_ctx, One&& one) {
  return run_closed_loop(total, clients, std::forward<MakeCtx>(make_ctx),
                         std::forward<One>(one), [] {});
}

// ---------------------------------------------------------------------
// Open-loop traffic (docs/qos.md).  A closed loop self-throttles — a
// slow server slows its own clients — so it can never demonstrate
// overload.  The open-loop driver below sends on a precomputed arrival
// schedule regardless of completions, which is what makes an abusive
// tenant abusive: its offered rate does not bend.  All schedules are
// seeded and computed up front, so the offered load is a pure function
// of (seed, rate, count) even though service times are not.
// ---------------------------------------------------------------------

/// Poisson process: cumulative exponential gaps, ns offsets from start.
inline std::vector<std::uint64_t> poisson_arrivals_ns(Rng& rng,
                                                      double rate_rps,
                                                      std::size_t count) {
  std::vector<std::uint64_t> out;
  out.reserve(count);
  double t = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    t += rng.next_exponential(rate_rps) * 1e9;
    out.push_back(static_cast<std::uint64_t>(t));
  }
  return out;
}

/// One bounded-Pareto variate on [lo, hi] with shape `alpha` (inverse
/// CDF).  Heavy-tailed but capped: the burst length has a hard bound, so
/// a seeded schedule cannot stall a CI run on one astronomical gap.
inline double bounded_pareto(Rng& rng, double alpha, double lo, double hi) {
  const double u = rng.next_double();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

/// Bounded-Pareto arrival process with mean rate `rate_rps`: gaps are
/// bounded-Pareto on [1, bound] (shape `alpha`), scaled by the analytic
/// mean so the long-run offered rate matches — bursty on the inside,
/// calibrated on the outside.
inline std::vector<std::uint64_t> pareto_arrivals_ns(Rng& rng,
                                                     double rate_rps,
                                                     double alpha,
                                                     double bound,
                                                     std::size_t count) {
  // Mean of bounded Pareto on [1, b], shape a != 1:
  //   E = (a / (a - 1)) * (1 - b^(1-a)) / (1 - b^-a)
  const double mean = (alpha / (alpha - 1.0)) *
                      (1.0 - std::pow(bound, 1.0 - alpha)) /
                      (1.0 - std::pow(bound, -alpha));
  const double scale_ns = (1e9 / rate_rps) / mean;
  std::vector<std::uint64_t> out;
  out.reserve(count);
  double t = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    t += bounded_pareto(rng, alpha, 1.0, bound) * scale_ns;
    out.push_back(static_cast<std::uint64_t>(t));
  }
  return out;
}

/// Zipf(s) sampler over {0, ..., n-1}: CDF table + binary search.  Each
/// tenant owns one (with its own Rng stream) so tenants hit skewed,
/// tenant-specific key sets — cache hit rates differ per tenant, like
/// real multi-tenant traffic.
class ZipfPicker {
 public:
  ZipfPicker(std::size_t n, double s) {
    cdf_.reserve(n);
    double acc = 0.0;
    for (std::size_t i = 1; i <= n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i), s);
      cdf_.push_back(acc);
    }
    for (double& c : cdf_) c /= acc;
  }

  [[nodiscard]] std::size_t pick(Rng& rng) const {
    const auto it =
        std::upper_bound(cdf_.begin(), cdf_.end(), rng.next_double());
    const auto idx = static_cast<std::size_t>(it - cdf_.begin());
    return idx < cdf_.size() ? idx : cdf_.size() - 1;
  }

 private:
  std::vector<double> cdf_;
};

/// How one open-loop request resolved.  Unlike the closed loop there is
/// no retry here — a shed is an *answer* (the typed NACK is the QoS
/// contract working), not a failure, and it is counted as such.
enum class OpenOutcome : std::uint8_t {
  kOk,     // response payload arrived
  kShed,   // NACK(shed_retry_after) — load shedding, accounted
  kNack,   // other NACK (queue_full / shutdown)
  kError,  // rejected/error/transport
};

struct OpenLoopTenant {
  std::string name;
  std::vector<std::uint64_t> arrivals_ns;  // sorted offsets from start
};

struct OpenTenantResult {
  std::string name;
  std::uint64_t offered = 0;  // requests sent on schedule
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t nacked = 0;
  std::uint64_t errors = 0;
  std::uint64_t lost = 0;  // sent, never resolved — must be 0
  std::vector<std::uint64_t> latencies_ns;  // ok only: send -> resolve
  double p50_ms = 0.0, p99_ms = 0.0, mean_ms = 0.0;
};

struct OpenLoopResult {
  double wall_s = 0.0;
  std::vector<OpenTenantResult> tenants;
  std::uint64_t ok = 0, shed = 0, nacked = 0, errors = 0, lost = 0;
};

/// Open-loop driver: one sender thread per tenant, sends pipelined on
/// the tenant's arrival schedule and pumps completions in the gaps.
///
///   make_ctx(tenant)              worker-thread context (a connection)
///   send(ctx, tenant, i)          issue arrival i, return its wait id
///   try_resolve(ctx, id, &out)    nonblocking; true when id resolved
///   resolve(ctx, id, &out)        blocking drain; false = lost
///
/// Every sent id is resolved exactly once or counted into `lost`; the
/// overload bench asserts lost == 0 (shedding must answer, not drop).
template <typename MakeCtx, typename Send, typename TryResolve,
          typename Resolve>
OpenLoopResult run_open_loop(const std::vector<OpenLoopTenant>& tenants,
                             MakeCtx&& make_ctx, Send&& send,
                             TryResolve&& try_resolve, Resolve&& resolve) {
  OpenLoopResult result;
  result.tenants.resize(tenants.size());
  WallTimer timer;

  const auto worker = [&](std::size_t ti) {
    auto ctx = make_ctx(ti);
    OpenTenantResult& res = result.tenants[ti];
    res.name = tenants[ti].name;
    struct Sent {
      std::uint64_t id;
      std::uint64_t sent_ns;
    };
    std::vector<Sent> inflight;
    const auto classify = [&res](OpenOutcome o, std::uint64_t latency_ns) {
      switch (o) {
        case OpenOutcome::kOk:
          res.ok++;
          res.latencies_ns.push_back(latency_ns);
          break;
        case OpenOutcome::kShed: res.shed++; break;
        case OpenOutcome::kNack: res.nacked++; break;
        case OpenOutcome::kError: res.errors++; break;
      }
    };
    const auto pump = [&]() {
      for (auto it = inflight.begin(); it != inflight.end();) {
        OpenOutcome out;
        if (try_resolve(ctx, it->id, out)) {
          classify(out, now_ns() - it->sent_ns);
          it = inflight.erase(it);
        } else {
          ++it;
        }
      }
    };

    const std::uint64_t start = now_ns();
    for (const std::uint64_t at : tenants[ti].arrivals_ns) {
      // Open loop: hold the schedule regardless of completions.  Pump
      // the connection while waiting so responses never pile up.
      for (;;) {
        const std::uint64_t elapsed = now_ns() - start;
        if (elapsed >= at) break;
        pump();
        if (at - elapsed > 200'000)
          std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
      const std::uint64_t id = send(ctx, ti, res.offered);
      inflight.push_back({id, now_ns()});
      res.offered++;
      pump();
    }
    for (const Sent& s : inflight) {
      OpenOutcome out;
      if (resolve(ctx, s.id, out))
        classify(out, now_ns() - s.sent_ns);
      else
        res.lost++;
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(tenants.size() > 0 ? tenants.size() - 1 : 0);
  for (std::size_t t = 1; t < tenants.size(); ++t)
    threads.emplace_back(worker, t);
  if (!tenants.empty()) worker(0);
  for (auto& t : threads) t.join();
  result.wall_s = timer.elapsed_millis() / 1e3;

  for (OpenTenantResult& res : result.tenants) {
    std::vector<std::uint64_t> sorted = res.latencies_ns;
    std::sort(sorted.begin(), sorted.end());
    const auto at = [&sorted](double q) {
      if (sorted.empty()) return 0.0;
      const auto idx =
          static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1));
      return static_cast<double>(sorted[idx]) / 1e6;
    };
    res.p50_ms = at(0.50);
    res.p99_ms = at(0.99);
    double sum = 0;
    for (const auto ns : sorted) sum += static_cast<double>(ns);
    res.mean_ms = sorted.empty()
                      ? 0.0
                      : sum / static_cast<double>(sorted.size()) / 1e6;
    result.ok += res.ok;
    result.shed += res.shed;
    result.nacked += res.nacked;
    result.errors += res.errors;
    result.lost += res.lost;
  }
  return result;
}

/// Per-pass view of a process-wide obs histogram (counts accumulate for
/// the whole process; subtracting the pass-start snapshot isolates one
/// pass).  min/max keep the after-side values — the log2 buckets
/// dominate the quantiles anyway.
inline obs::HistogramSnapshot diff_histogram(
    const obs::HistogramSnapshot& before, const obs::HistogramSnapshot& after) {
  obs::HistogramSnapshot d;
  d.count = after.count - before.count;
  d.sum = after.sum - before.sum;
  d.min = after.min;
  d.max = after.max;
  for (std::size_t b = 0; b < obs::HistogramSnapshot::kBuckets; ++b)
    d.buckets[b] = after.buckets[b] - before.buckets[b];
  return d;
}

}  // namespace pslocal::benchload
