// Shared closed-loop load generator for the serving benches.
//
// bench_service_throughput (in-process engine) and bench_net_throughput
// (TCP loopback) drive the same loop: `clients` worker threads race to
// claim the next unclaimed request index, issue it, wait for its
// response, record the latency, repeat until the trace is exhausted.
// This header owns that driver plus the latency bookkeeping, so the two
// benches differ only in what "issue and wait" means.
//
//   auto result = benchload::run_closed_loop(
//       total, clients,
//       [&](std::size_t client) { return make_connection(client); },
//       [&](auto& conn, std::size_t i) -> benchload::OneResult {
//         ... submit trace.requests[i] via conn, wait ...
//         return {latency_ns, retries, ok};
//       });
//
// The context factory runs inside each worker thread (a per-thread TCP
// connection is created on the thread that uses it); the issue callback
// may capture shared state (e.g. a replay-entry vector indexed by `i` —
// each index is claimed by exactly one worker, so slot writes race-free).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "util/timer.hpp"

namespace pslocal::benchload {

/// One completed request, as reported by the issue callback.
struct OneResult {
  std::uint64_t latency_ns = 0;
  std::uint64_t retries = 0;  // admission rejections resubmitted
  bool ok = true;             // false counts into ClosedLoopResult::errors
};

struct ClosedLoopResult {
  double wall_s = 0.0;
  double throughput_rps = 0.0;
  std::uint64_t errors = 0;
  std::uint64_t retries = 0;
  std::vector<std::uint64_t> latencies_ns;  // per request index
  /// Requests completed by each worker connection.  Sums to the request
  /// total; benches report it so connection/shard imbalance is visible
  /// in the JSON (a closed loop self-balances, so a skewed vector means
  /// one connection's target was slow).
  std::vector<std::uint64_t> per_client;
  // Exact quantiles over latencies_ns, in milliseconds.
  double p50_ms = 0.0, p99_ms = 0.0, mean_ms = 0.0;
};

/// Closed-loop driver (see header comment).  `make_ctx(client_index)`
/// builds each worker's private context on the worker thread;
/// `one(ctx, request_index)` issues request `request_index` and blocks
/// until its response.  `mid_hook()` fires exactly once, on whichever
/// worker claims the halfway request index, *while the other workers
/// keep driving load* — the shard bench uses it to scrape the live
/// telemetry plane mid-run (docs/tracing.md) rather than after the
/// cluster has gone idle.
template <typename MakeCtx, typename One, typename Mid>
ClosedLoopResult run_closed_loop(std::size_t total, std::size_t clients,
                                 MakeCtx&& make_ctx, One&& one,
                                 Mid&& mid_hook) {
  ClosedLoopResult result;
  result.latencies_ns.assign(total, 0);
  result.per_client.assign(clients > 0 ? clients : 1, 0);
  std::atomic<std::size_t> next{0};
  std::atomic<std::uint64_t> errors{0}, retries{0};
  const std::size_t mid_index = total / 2;

  WallTimer timer;
  const auto worker = [&](std::size_t client_index) {
    auto ctx = make_ctx(client_index);
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) return;
      if (i == mid_index) mid_hook();  // each index claimed exactly once
      const OneResult r = one(ctx, i);
      result.latencies_ns[i] = r.latency_ns;
      result.per_client[client_index]++;  // each worker owns its slot
      if (!r.ok) errors.fetch_add(1, std::memory_order_relaxed);
      retries.fetch_add(r.retries, std::memory_order_relaxed);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(clients > 0 ? clients - 1 : 0);
  for (std::size_t c = 1; c < clients; ++c)
    threads.emplace_back(worker, c);
  worker(0);  // the calling thread is a client too
  for (auto& t : threads) t.join();
  result.wall_s = timer.elapsed_millis() / 1e3;

  result.errors = errors.load();
  result.retries = retries.load();
  result.throughput_rps =
      result.wall_s > 0 ? static_cast<double>(total) / result.wall_s : 0.0;

  std::vector<std::uint64_t> sorted = result.latencies_ns;
  std::sort(sorted.begin(), sorted.end());
  const auto at = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(total > 0 ? total - 1 : 0));
    return static_cast<double>(sorted.empty() ? 0 : sorted[idx]) / 1e6;
  };
  result.p50_ms = at(0.50);
  result.p99_ms = at(0.99);
  double sum = 0;
  for (const auto ns : sorted) sum += static_cast<double>(ns);
  result.mean_ms = total > 0 ? sum / static_cast<double>(total) / 1e6 : 0.0;
  return result;
}

template <typename MakeCtx, typename One>
ClosedLoopResult run_closed_loop(std::size_t total, std::size_t clients,
                                 MakeCtx&& make_ctx, One&& one) {
  return run_closed_loop(total, clients, std::forward<MakeCtx>(make_ctx),
                         std::forward<One>(one), [] {});
}

/// Per-pass view of a process-wide obs histogram (counts accumulate for
/// the whole process; subtracting the pass-start snapshot isolates one
/// pass).  min/max keep the after-side values — the log2 buckets
/// dominate the quantiles anyway.
inline obs::HistogramSnapshot diff_histogram(
    const obs::HistogramSnapshot& before, const obs::HistogramSnapshot& after) {
  obs::HistogramSnapshot d;
  d.count = after.count - before.count;
  d.sum = after.sum - before.sum;
  d.min = after.min;
  d.max = after.max;
  for (std::size_t b = 0; b < obs::HistogramSnapshot::kBuckets; ++b)
    d.buckets[b] = after.buckets[b] - before.buckets[b];
  return d;
}

}  // namespace pslocal::benchload
