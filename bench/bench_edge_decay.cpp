// Experiment E10 (Figure 6): per-phase happy-edge decay and the
// remove-all-happy-edges design choice.
//
// The proof gives |E_{i+1}| <= (1 - 1/lambda)|E_i|.  We trace |E_i| for
// several lambdas against that geometric envelope.  Ablation: the proof
// only needs to remove the |I_i| *witnessed* edges (one per IS node); the
// algorithm removes *all* happy edges.  We run both variants and compare
// phase counts — the "witnessed-only" variant still meets the bound, the
// full removal simply converges no slower.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "core/correspondence.hpp"
#include "core/reduction.hpp"
#include "hypergraph/generators.hpp"
#include "mis/degraded_oracle.hpp"
#include "util/bench_report.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace pslocal;

namespace {

/// Reduction variant that removes only the edges witnessed by the IS
/// (the minimal removal the proof accounts for).
std::vector<std::size_t> witnessed_only_trace(const Hypergraph& h,
                                              std::size_t k, double lambda) {
  std::vector<std::size_t> trace;
  Hypergraph current =
      h.restrict_edges(std::vector<bool>(h.edge_count(), true));
  ControlledLambdaOracle oracle(lambda);
  while (current.edge_count() > 0) {
    trace.push_back(current.edge_count());
    const ConflictGraph cg(current, k);
    const auto is = oracle.solve(cg.graph());
    std::vector<bool> keep(current.edge_count(), true);
    for (VertexId t : is) keep[cg.triple(t).e] = false;
    if (std::all_of(keep.begin(), keep.end(), [](bool b) { return b; }))
      break;  // stall guard (cannot happen for nonempty IS)
    current = current.restrict_edges(keep);
    if (trace.size() > 200) break;
  }
  trace.push_back(current.edge_count());
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  apply_thread_option(opts);
  BenchReport json_report("edge_decay", opts);
  const std::uint64_t seed = opts.get_int("seed", 10);
  const std::size_t m = opts.get_int("m", 48);

  Rng rng(seed);
  PlantedCfParams params;
  params.n = 2 * m;
  params.m = m;
  params.k = 2;
  const auto inst = planted_cf_colorable(params, rng);

  for (double lambda : {2.0, 4.0}) {
    ControlledLambdaOracle oracle(lambda);
    ReductionOptions ropts;
    ropts.k = 2;
    const auto res = cf_multicoloring_via_maxis(inst.hypergraph, oracle, ropts);
    if (!res.success) return 1;
    const auto witnessed = witnessed_only_trace(inst.hypergraph, 2, lambda);

    Table table("E10 / Figure 6 — |E_i| decay, lambda = " +
                fmt_double(lambda, 1) + " (m = " + std::to_string(m) + ")");
    table.header({"phase i", "|E_i| (remove all happy)",
                  "|E_i| (witnessed only)", "envelope (1-1/l)^(i-1) * m",
                  "within envelope"});
    const std::size_t phases =
        std::max(res.trace.size(), witnessed.size());
    bool ok = true;
    for (std::size_t i = 0; i < phases; ++i) {
      const std::string full =
          i < res.trace.size() ? fmt_size(res.trace[i].edges_before)
          : res.success        ? "0"
                               : "-";
      const std::string wit =
          i < witnessed.size() ? fmt_size(witnessed[i]) : "0";
      const double envelope =
          static_cast<double>(m) *
          std::pow(1.0 - 1.0 / lambda, static_cast<double>(i));
      bool within = true;
      if (i < res.trace.size())
        within = static_cast<double>(res.trace[i].edges_before) <=
                 envelope + 1e-9;
      ok = ok && within;
      table.row({fmt_size(i + 1), full, wit, fmt_double(envelope, 1),
                 fmt_bool(within)});
    }
    std::cout << table.render();
    json_report.add_table(table);
    if (!ok) {
      std::cout << "ENVELOPE VIOLATION — investigate!\n";
      return 1;
    }
  }
  std::cout << "Both variants decay at least geometrically; removing all "
             "happy edges (the paper's algorithm) dominates the minimal "
             "witnessed-only removal.\n";
  json_report.write();
  return 0;
}
