// Experiment E1 (Table 1): conflict-graph size scaling.
//
// Paper claim (proof of Theorem 1.1): "G_k has polynomially many nodes and
// edges and can be simulated locally."  We measure |V(G_k)| = k * sum |e|
// exactly and tabulate the edge count split into the three classes, then
// fit the growth rate of |E(G_k)| against the incidence size to confirm a
// low-degree polynomial.
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_main.hpp"
#include "core/conflict_graph.hpp"
#include "hypergraph/generators.hpp"
#include "hypergraph/properties.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace pslocal;

int main(int argc, char** argv) {
  return benchmain::run(
      argc, argv, "conflict_graph_size", 1, [](benchmain::Context& ctx) {
        Table table(
            "E1 / Table 1 — conflict graph G_k size scaling "
            "(planted almost-uniform hypergraphs, eps = 0.5)");
        table.header({"n", "m", "k", "|V(Gk)|", "k*sum|e|", "E_vertex",
                      "E_edge", "E_color", "|E(Gk)| total", "build ms"});

        struct Row {
          std::size_t n, m, k;
        };
        const std::vector<Row> rows = {
            {16, 16, 2},  {32, 32, 2},   {64, 64, 2},   {128, 128, 2},
            {16, 16, 4},  {32, 32, 4},   {64, 64, 4},   {128, 128, 4},
            {64, 64, 6},  {128, 128, 6}, {192, 192, 6},
        };

        std::vector<double> log_incidence, log_edges;
        for (const auto& r : rows) {
          Rng rng(ctx.seed + r.n * 31 + r.k);
          PlantedCfParams params;
          params.n = r.n;
          params.m = r.m;
          params.k = r.k;
          params.epsilon = 0.5;
          const auto inst = planted_cf_colorable(params, rng);
          const auto stats = hypergraph_stats(inst.hypergraph);

          WallTimer timer;
          const ConflictGraph cg(inst.hypergraph, r.k);
          const double ms = timer.elapsed_millis();
          const auto classes = cg.count_edge_classes();

          table.row({fmt_size(r.n), fmt_size(r.m), fmt_size(r.k),
                     fmt_size(cg.triple_count()),
                     fmt_size(stats.incidence_size * r.k),
                     fmt_size(classes.e_vertex), fmt_size(classes.e_edge),
                     fmt_size(classes.e_color), fmt_size(classes.total),
                     fmt_double(ms, 1)});
          log_incidence.push_back(
              std::log(static_cast<double>(stats.incidence_size * r.k)));
          log_edges.push_back(std::log(static_cast<double>(classes.total)));
        }
        std::cout << table.render();
        ctx.report.add_table(table);

        const auto fit = linear_fit(log_incidence, log_edges);
        ctx.report.metric("fit_slope", fit.slope).metric("fit_r2", fit.r2);
        std::cout << "log-log fit |E(Gk)| ~ |V(Gk)|^b: b = "
                  << fmt_double(fit.slope, 2)
                  << " (R^2 = " << fmt_double(fit.r2, 3)
                  << ") — polynomial, as the paper claims.\n"
                  << "|V(Gk)| column equals k*sum|e| on every row by "
                     "construction (checked: see test_conflict_graph.cpp).\n";
        return 0;
      });
}
