// Closed-loop TCP loopback load generator for the net tier (docs/net.md).
//
// Replays a seeded trace (service/workload.hpp) through the full stack —
// net::Client -> wire frames -> net::Server -> ServiceEngine — from
// --clients closed-loop client threads, each owning one TCP connection.
// Two passes run over the same trace (1 client, then --clients clients)
// so the report shows what connection parallelism buys; the two passes
// must produce byte-identical response payloads (verify_replay), and
// every pass asserts zero lost and zero duplicated responses (every
// request resolves kOk exactly once; no client holds unclaimed parked
// frames at the end).
//
// A third pass pins the backpressure contract: a deliberately undersized
// engine queue (--nack-queue-capacity, batch size 1, cache off) makes
// admission fail under concurrent load, the server answers with typed
// NACK(queue_full) frames, and call_with_retry's seeded backoff drives
// every request to eventual completion — NACKs observed > 0, errors 0.
//
// By default the bench hosts its own server on an ephemeral loopback
// port; --connect=host:port targets an already-running pslocal_netserve
// instead (used by the CI smoke job; the NACK pass and server-side stats
// are skipped, since the remote queue depth is not ours to undersize).
//
// Knobs: --requests --pool --n --m --k --seed-variants (trace shape),
// --clients, --queue-capacity --max-batch --cache-entries (local engine),
// --nack-queue-capacity --nack-requests --nack=false (backpressure pass),
// --connect=host:port, --iters-small (CI-sized run), --threads, --seed.
#include <atomic>
#include <cstdint>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>

#include "bench_main.hpp"
#include "load_gen.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "service/engine.hpp"
#include "service/workload.hpp"
#include "util/check.hpp"
#include "util/table.hpp"

using namespace pslocal;

namespace {

struct NetPass {
  benchload::ClosedLoopResult loop;
  // Log2-resolution quantiles from the obs net.rtt_ns histogram.
  std::uint64_t obs_p50_ns = 0, obs_p99_ns = 0;
  std::uint64_t nack_retries = 0;  // extra sends forced by NACK(queue_full)
  std::vector<service::ReplayEntry> entries;
};

/// Worker-thread context: one connection, plus a destructor that tallies
/// unresolved ids and unclaimed parked frames into `unclaimed` — both
/// must be zero for a loss/duplication-free pass.
struct NetCtx {
  std::unique_ptr<net::Client> client;
  std::atomic<std::uint64_t>* unclaimed = nullptr;

  NetCtx(std::unique_ptr<net::Client> c, std::atomic<std::uint64_t>* u)
      : client(std::move(c)), unclaimed(u) {}
  NetCtx(NetCtx&&) = default;
  NetCtx& operator=(NetCtx&&) = default;
  ~NetCtx() {
    if (client && unclaimed != nullptr)
      unclaimed->fetch_add(client->inflight() + client->parked(),
                           std::memory_order_relaxed);
  }
};

NetPass run_net_pass(const service::Trace& trace, const std::string& host,
                     std::uint16_t port, std::size_t clients,
                     const net::Client::RetryPolicy& policy) {
  NetPass result;
  const obs::Snapshot before = obs::snapshot();
  const std::size_t total = trace.requests.size();
  result.entries.resize(total);
  std::atomic<std::uint64_t> unclaimed{0};
  std::atomic<std::uint64_t> nack_retries{0};

  result.loop = benchload::run_closed_loop(
      total, clients,
      [&](std::size_t) {
        net::Client::Config cc;
        cc.host = host;
        cc.port = port;
        auto client = std::make_unique<net::Client>(cc);
        client->connect();
        return NetCtx(std::move(client), &unclaimed);
      },
      [&](NetCtx& ctx, std::size_t i) -> benchload::OneResult {
        const net::Client::Result r =
            ctx.client->call_with_retry(trace.requests[i], policy);
        benchload::OneResult one;
        one.ok = r.outcome == net::Client::Outcome::kOk;
        one.latency_ns = r.rtt_ns;
        one.retries = r.attempts - 1;
        nack_retries.fetch_add(r.attempts - 1, std::memory_order_relaxed);
        if (one.ok)
          result.entries[i] = service::ReplayEntry{i, r.response.key,
                                                   r.response.result};
        else
          std::cerr << "request " << i << " failed: "
                    << net::Client::outcome_name(r.outcome)
                    << (r.error.empty() ? "" : " (" + r.error + ")") << "\n";
        return one;
      });

  PSL_CHECK_MSG(result.loop.errors == 0,
                result.loop.errors << "/" << total
                    << " requests lost or failed (see stderr)");
  PSL_CHECK_MSG(unclaimed.load() == 0,
                unclaimed.load() << " duplicated/unclaimed response frames");

  result.nack_retries = nack_retries.load();
  const obs::Snapshot after = obs::snapshot();
  const auto rtt_hist = benchload::diff_histogram(
      before.histogram("net.rtt_ns"), after.histogram("net.rtt_ns"));
  result.obs_p50_ns = rtt_hist.value_at_quantile(0.50);
  result.obs_p99_ns = rtt_hist.value_at_quantile(0.99);
  return result;
}

/// Host+port of whichever server this run talks to: an in-process
/// net::Server over a fresh engine by default, or an external one when
/// --connect=host:port is given (engine/server stay null then).
struct Target {
  std::string host;
  std::uint16_t port = 0;
  std::unique_ptr<service::ServiceEngine> engine;
  std::unique_ptr<net::Server> server;

  [[nodiscard]] bool local() const { return server != nullptr; }
};

Target make_local_target(const service::EngineConfig& cfg) {
  Target t;
  t.engine = std::make_unique<service::ServiceEngine>(cfg);
  t.engine->start();
  net::Server::Config sc;  // ephemeral loopback port
  t.server = std::make_unique<net::Server>(*t.engine, sc);
  t.server->start();
  t.host = sc.host;
  t.port = t.server->port();
  return t;
}

Target parse_connect_target(const std::string& spec) {
  const auto colon = spec.rfind(':');
  PSL_CHECK_MSG(colon != std::string::npos && colon + 1 < spec.size(),
                "--connect expects host:port, got \"" << spec << "\"");
  Target t;
  t.host = spec.substr(0, colon);
  const int port = std::stoi(spec.substr(colon + 1));
  PSL_CHECK_MSG(port > 0 && port <= 65535,
                "--connect port out of range: " << port);
  t.port = static_cast<std::uint16_t>(port);
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  return benchmain::run(
      argc, argv, "net", 1, [](benchmain::Context& ctx) {
        const bool small = ctx.opts.get_bool("iters-small", false);
        service::TraceParams tp;
        tp.seed = ctx.seed;
        tp.requests = static_cast<std::size_t>(
            ctx.opts.get_int("requests", small ? 400 : 10000));
        tp.instance_pool =
            static_cast<std::size_t>(ctx.opts.get_int("pool", 24));
        tp.n = static_cast<std::size_t>(ctx.opts.get_int("n", 48));
        tp.m = static_cast<std::size_t>(ctx.opts.get_int("m", 40));
        tp.k = static_cast<std::size_t>(ctx.opts.get_int("k", 3));
        tp.seed_variants =
            static_cast<std::size_t>(ctx.opts.get_int("seed-variants", 2));
        const auto clients =
            static_cast<std::size_t>(ctx.opts.get_int("clients", 8));

        service::EngineConfig cfg;
        cfg.queue_capacity =
            static_cast<std::size_t>(ctx.opts.get_int("queue-capacity", 256));
        cfg.max_batch =
            static_cast<std::size_t>(ctx.opts.get_int("max-batch", 64));
        cfg.cache.max_entries =
            static_cast<std::size_t>(ctx.opts.get_int("cache-entries", 512));

        const service::Trace trace = service::generate_trace(tp);
        ctx.report.metric("requests", static_cast<double>(tp.requests))
            .metric("unique_keys", static_cast<double>(trace.unique_keys))
            .metric("clients", static_cast<double>(clients));

        const std::string connect = ctx.opts.get_string("connect", "");
        Target target = connect.empty() ? make_local_target(cfg)
                                        : parse_connect_target(connect);
        std::cout << "target: " << (target.local() ? "in-process server on "
                                                   : "external server at ")
                  << target.host << ":" << target.port << ", "
                  << tp.requests << " requests (" << trace.unique_keys
                  << " distinct cache keys)\n";

        net::Client::RetryPolicy policy;
        policy.seed = ctx.seed;

        const NetPass single =
            run_net_pass(trace, target.host, target.port, 1, policy);
        const NetPass multi =
            run_net_pass(trace, target.host, target.port, clients, policy);

        // Same trace through the same server — the payload bytes must
        // not depend on how many connections carried them.
        const auto verdict = service::verify_replay(single.entries,
                                                    multi.entries);
        PSL_CHECK_MSG(verdict.identical,
                      "multi-client pass diverged from single-client pass "
                      "at id " << verdict.first_mismatch_id << " ("
                          << verdict.mismatches << " mismatches)");

        Table table("Loopback serving throughput — 1 vs " +
                    std::to_string(clients) + " client connections");
        table.header({"pass", "wall s", "req/s", "p50 ms", "p99 ms",
                      "mean ms", "obs p50 ms", "obs p99 ms", "errors",
                      "retries"});
        const auto row = [&](const std::string& name, const NetPass& r) {
          table.row({name, fmt_double(r.loop.wall_s, 2),
                     fmt_double(r.loop.throughput_rps, 0),
                     fmt_double(r.loop.p50_ms, 3), fmt_double(r.loop.p99_ms, 3),
                     fmt_double(r.loop.mean_ms, 3),
                     fmt_double(static_cast<double>(r.obs_p50_ns) / 1e6, 3),
                     fmt_double(static_cast<double>(r.obs_p99_ns) / 1e6, 3),
                     fmt_size(r.loop.errors), fmt_size(r.loop.retries)});
        };
        row("1 client", single);
        row(std::to_string(clients) + " clients", multi);
        std::cout << table.render();
        ctx.report.add_table(table);

        ctx.report.metric("throughput_rps", multi.loop.throughput_rps)
            .metric("single_client_rps", single.loop.throughput_rps)
            .metric("client_scaling",
                    multi.loop.throughput_rps /
                        std::max(single.loop.throughput_rps, 1e-9))
            .metric("latency_p50_ms", multi.loop.p50_ms)
            .metric("latency_p99_ms", multi.loop.p99_ms)
            .metric("latency_mean_ms", multi.loop.mean_ms)
            .metric("obs_rtt_p50_ns", static_cast<double>(multi.obs_p50_ns))
            .metric("obs_rtt_p99_ns", static_cast<double>(multi.obs_p99_ns))
            .metric("errors", static_cast<double>(multi.loop.errors));

        {
          // Per-connection completion counts: a closed loop self-balances,
          // so a skewed vector flags a slow connection or server loop.
          std::ostringstream per_conn;
          per_conn << "[";
          for (std::size_t c = 0; c < multi.loop.per_client.size(); ++c) {
            if (c != 0) per_conn << ",";
            per_conn << multi.loop.per_client[c];
          }
          per_conn << "]";
          ctx.report.metric("per_connection", per_conn.str());
        }

        if (target.local()) {
          const net::Server::Stats ss = target.server->stats();
          ctx.report.metric("frames_rx", static_cast<double>(ss.frames_rx))
              .metric("frames_tx", static_cast<double>(ss.frames_tx))
              .metric("bytes_rx", static_cast<double>(ss.bytes_rx))
              .metric("bytes_tx", static_cast<double>(ss.bytes_tx))
              .metric("decode_errors", static_cast<double>(ss.decode_errors));
          PSL_CHECK_MSG(ss.decode_errors == 0,
                        "server saw " << ss.decode_errors
                            << " decode errors on a clean load");
          target.server->stop();
          target.engine->stop();
        }

        // --- Backpressure pass: undersized queue must NACK, not drop.
        if (target.local() && ctx.opts.get_bool("nack", true)) {
          service::EngineConfig tiny = cfg;
          tiny.queue_capacity = static_cast<std::size_t>(
              ctx.opts.get_int("nack-queue-capacity", 2));
          tiny.max_batch = 1;
          tiny.cache.enabled = false;  // real compute per request, so the
          tiny.graph_cache_entries = 0;  // queue actually backs up
          service::TraceParams nack_tp = tp;
          nack_tp.requests = static_cast<std::size_t>(
              ctx.opts.get_int("nack-requests", small ? 120 : 2000));
          const service::Trace nack_trace = service::generate_trace(nack_tp);

          Target nt = make_local_target(tiny);
          // A deliberately starved queue NACKs most sends, and slow
          // builds (sanitizers) stretch each compute, so the retry
          // budget is sized for the worst case: the pass must end with
          // every request served, not with exhausted clients.
          net::Client::RetryPolicy nack_policy;
          nack_policy.seed = ctx.seed;
          nack_policy.max_attempts = 512;
          nack_policy.base_delay_us = 100;
          nack_policy.max_delay_us = 20000;
          const NetPass nacked = run_net_pass(nack_trace, nt.host, nt.port,
                                              clients, nack_policy);
          const net::Server::Stats ns = nt.server->stats();
          nt.server->stop();
          nt.engine->stop();

          const double nack_rate =
              static_cast<double>(ns.nacks_queue_full) /
              static_cast<double>(nack_tp.requests + ns.nacks_queue_full);
          std::cout << "backpressure: queue capacity "
                    << tiny.queue_capacity << ", " << nack_tp.requests
                    << " requests -> " << ns.nacks_queue_full
                    << " NACK(queue_full) (" << fmt_double(nack_rate * 100, 1)
                    << "% of sends), " << nacked.nack_retries
                    << " retries, 0 lost\n";
          PSL_CHECK_MSG(ns.nacks_queue_full > 0,
                        "undersized queue produced no NACKs — backpressure "
                        "path untested (capacity " << tiny.queue_capacity
                            << ", " << clients << " clients)");
          ctx.report
              .metric("nacks_queue_full",
                      static_cast<double>(ns.nacks_queue_full))
              .metric("nack_rate", nack_rate)
              .metric("nack_retries",
                      static_cast<double>(nacked.nack_retries))
              .metric("nack_errors",
                      static_cast<double>(nacked.loop.errors));
        }
        return 0;
      });
}
