// Runtime experiment: scaling of the work-stealing scheduler on the
// library's parallel hot paths, with the determinism contract enforced.
//
// For each thread count in {1, 2, 4, 8} the bench runs
//   (a) conflict-graph construction (parallel candidate-pair enumeration),
//   (b) Luby MIS on G_k (parallel round evaluation),
//   (c) min-degree greedy MaxIS on G_k (parallel argmin scoring),
// on one planted instance and CHECKs that every output is byte-identical
// to the single-threaded run — the runtime/scheduler.hpp contract, which
// holds on any machine.  Speedups are reported, not asserted: they only
// materialize with real cores (hardware_concurrency is in the output, so
// a 1-CPU container run is self-explaining).  Times are best-of --reps.
#include <algorithm>
#include <iostream>
#include <vector>

#include "core/conflict_graph.hpp"
#include "hypergraph/generators.hpp"
#include "local/luby_mis.hpp"
#include "mis/greedy_maxis.hpp"
#include "runtime/thread_pool.hpp"
#include "util/bench_report.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace pslocal;

namespace {

/// Best-of-reps wall time of f() in milliseconds.
template <typename F>
double best_ms(std::size_t reps, F&& f) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < reps; ++r) {
    WallTimer timer;
    f();
    best = std::min(best, timer.elapsed_millis());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  BenchReport json_report("runtime", opts);
  const std::uint64_t seed = opts.get_int("seed", 1);
  const std::size_t reps = opts.get_int("reps", 3);

  // Planted instance sized so candidate-pair enumeration alone exceeds
  // 10^5 pairs (checked below) — big enough for stealing to matter.
  PlantedCfParams params;
  params.n = opts.get_int("n", 256);
  params.m = opts.get_int("m", 256);
  params.k = opts.get_int("k", 6);
  params.epsilon = 0.5;
  Rng rng(seed);
  const auto inst = planted_cf_colorable(params, rng);

  // Single-threaded reference outputs (the determinism baseline).
  runtime::ThreadPool ref_pool(1);
  const ConflictGraph ref_cg(inst.hypergraph, params.k, ref_pool);
  const auto ref_luby = luby_mis(ref_cg.graph(), seed, 0, ref_pool);
  const auto ref_greedy = greedy_min_degree_maxis(ref_cg.graph(), ref_pool);

  const std::size_t pairs = ref_cg.count_edge_classes().total;
  PSL_CHECK_MSG(pairs >= 100'000,
                "instance too small for a meaningful scaling run: "
                    << pairs << " candidate pairs (raise --n/--m/--k)");

  Table table("Runtime scaling — conflict graph build / Luby MIS / greedy "
              "MaxIS on one planted instance (times: best of " +
              std::to_string(reps) + " reps)");
  table.header({"threads", "cg ms", "cg x", "luby ms", "luby x", "greedy ms",
                "greedy x", "identical"});

  double cg_ms1 = 0, luby_ms1 = 0, greedy_ms1 = 0;
  double cg_x4 = 0, luby_x4 = 0;
  bool all_identical = true;
  for (std::size_t threads : {1, 2, 4, 8}) {
    runtime::ThreadPool pool(threads);

    const double cg_ms = best_ms(reps, [&] {
      ConflictGraph cg(inst.hypergraph, params.k, pool);
    });
    const ConflictGraph cg(inst.hypergraph, params.k, pool);

    const double luby_ms =
        best_ms(reps, [&] { luby_mis(cg.graph(), seed, 0, pool); });
    const auto luby = luby_mis(cg.graph(), seed, 0, pool);

    const double greedy_ms =
        best_ms(reps, [&] { greedy_min_degree_maxis(cg.graph(), pool); });
    const auto greedy = greedy_min_degree_maxis(cg.graph(), pool);

    // The determinism contract: byte-identical outputs at every thread
    // count.  Graph== compares the full CSR; the MIS vectors compare
    // element-wise.
    const bool identical = cg.graph() == ref_cg.graph() &&
                           luby.independent_set == ref_luby.independent_set &&
                           luby.rounds == ref_luby.rounds &&
                           greedy == ref_greedy;
    PSL_CHECK_MSG(identical, "outputs diverged at threads=" << threads);
    all_identical = all_identical && identical;

    if (threads == 1) {
      cg_ms1 = cg_ms;
      luby_ms1 = luby_ms;
      greedy_ms1 = greedy_ms;
    }
    if (threads == 4) {
      cg_x4 = cg_ms1 / cg_ms;
      luby_x4 = luby_ms1 / luby_ms;
    }
    table.row({fmt_size(threads), fmt_double(cg_ms, 2),
               fmt_ratio(cg_ms1 / cg_ms, 2), fmt_double(luby_ms, 2),
               fmt_ratio(luby_ms1 / luby_ms, 2), fmt_double(greedy_ms, 2),
               fmt_ratio(greedy_ms1 / greedy_ms, 2),
               fmt_bool(identical)});
  }
  std::cout << table.render();
  json_report.add_table(table);

  const std::size_t hw = std::thread::hardware_concurrency();
  std::cout << "candidate pairs enumerated: " << pairs
            << "; hardware_concurrency: " << hw << "\n"
            << "all outputs byte-identical across thread counts: "
            << fmt_bool(all_identical) << "\n";
  if (hw < 4)
    std::cout << "note: <4 hardware threads — speedup columns reflect "
                 "oversubscription, not the scheduler.\n";

  json_report.metric("candidate_pairs", static_cast<double>(pairs))
      .metric("hardware_concurrency", static_cast<double>(hw))
      .metric("cg_speedup_4t", cg_x4)
      .metric("luby_speedup_4t", luby_x4)
      .metric("identical_all", all_identical ? 1.0 : 0.0);
  json_report.write();
  return 0;
}
