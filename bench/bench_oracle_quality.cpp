// Experiment E6 (Table 3): empirical approximation quality of every MaxIS
// oracle on conflict graphs.
//
// The reduction is generic in the oracle; the only thing that matters is
// its lambda.  On planted conflict graphs alpha(G_k) = m is known exactly
// (Lemma 2.1 a), so the empirical lambda = m / |I| requires no exact
// solve.  We tabulate every oracle the library ships, plus its proven
// guarantee where one exists.
#include <iostream>
#include <memory>
#include <vector>

#include "core/conflict_graph.hpp"
#include "hypergraph/generators.hpp"
#include "local/luby_mis.hpp"
#include "mis/degraded_oracle.hpp"
#include "mis/exact_maxis.hpp"
#include "mis/greedy_maxis.hpp"
#include "slocal/ball_carving.hpp"
#include "util/bench_report.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace pslocal;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  apply_thread_option(opts);
  BenchReport json_report("oracle_quality", opts);
  const std::uint64_t seed = opts.get_int("seed", 6);
  const int reps = static_cast<int>(opts.get_int("reps", 3));

  struct OracleEntry {
    MaxISOraclePtr oracle;
    bool heavy;  // restrict to the small instance
  };
  std::vector<OracleEntry> oracles;
  oracles.push_back({std::make_unique<ExactOracle>(), true});
  oracles.push_back({std::make_unique<GreedyMinDegreeOracle>(), false});
  oracles.push_back({std::make_unique<CliqueCoverGreedyOracle>(), false});
  oracles.push_back({std::make_unique<RandomGreedyOracle>(seed), false});
  oracles.push_back({std::make_unique<LubyOracle>(seed), false});
  oracles.push_back({std::make_unique<BallCarvingOracle>(), true});

  struct Instance {
    std::string name;
    std::size_t n, m, k;
  };
  const std::vector<Instance> instances = {
      {"small (m=12, k=2)", 24, 12, 2},
      {"medium (m=48, k=3)", 64, 48, 3},
      {"large (m=96, k=4)", 128, 96, 4},
  };

  Table table("E6 / Table 3 — oracle quality on conflict graphs "
              "(alpha = m by Lemma 2.1 a)");
  table.header({"instance", "oracle", "|I| avg", "alpha", "empirical lambda",
                "proven lambda", "ms avg"});

  for (const auto& inst_spec : instances) {
    Rng rng(seed + inst_spec.m);
    PlantedCfParams params;
    params.n = inst_spec.n;
    params.m = inst_spec.m;
    params.k = inst_spec.k;
    const auto inst = planted_cf_colorable(params, rng);
    const ConflictGraph cg(inst.hypergraph, inst_spec.k);

    for (auto& entry : oracles) {
      if (entry.heavy && inst_spec.m > 12) continue;  // exact/carving: small only
      Accumulator size_acc, time_acc;
      for (int rep = 0; rep < reps; ++rep) {
        WallTimer timer;
        const auto is = entry.oracle->solve(cg.graph());
        time_acc.add(timer.elapsed_millis());
        size_acc.add(static_cast<double>(is.size()));
      }
      const double lambda =
          static_cast<double>(inst_spec.m) / size_acc.mean();
      const auto guarantee = entry.oracle->lambda_guarantee();
      table.row({inst_spec.name, entry.oracle->name(),
                 fmt_double(size_acc.mean(), 1), fmt_size(inst_spec.m),
                 fmt_ratio(lambda, 3),
                 guarantee ? fmt_ratio(*guarantee, 1) : "-",
                 fmt_double(time_acc.mean(), 2)});
    }
  }
  std::cout << table.render();
  json_report.add_table(table);
  std::cout << "Structure-aware greedies sit near lambda = 1 on conflict "
               "graphs; any polylog lambda suffices for Theorem 1.1.\n";
  json_report.write();
  return 0;
}
