// Experiment E3 (Figure 1): Lemma 2.1 b).
//
// "For any independent set I ⊆ V(G_k) the induced coloring f_I is well
//  defined and at least |I| edges of H are happy in f_I."
//
// We sample many independent sets of varying sizes (random greedy MIS
// prefixes) and plot the happy-edge count against |I|.  The figure's
// series is the per-|I|-bucket minimum slack happy(f_I) - |I|, which the
// lemma predicts to be >= 0 everywhere.
#include <algorithm>
#include <iostream>
#include <map>

#include "core/correspondence.hpp"
#include "hypergraph/generators.hpp"
#include "mis/greedy_maxis.hpp"
#include "util/bench_report.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace pslocal;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  apply_thread_option(opts);
  BenchReport json_report("lemma21b", opts);
  const std::uint64_t seed = opts.get_int("seed", 3);
  const std::size_t samples = opts.get_int("samples", 400);

  Rng rng(seed);
  PlantedCfParams params;
  params.n = 48;
  params.m = 32;
  params.k = 3;
  const auto inst = planted_cf_colorable(params, rng);
  const ConflictGraph cg(inst.hypergraph, params.k);

  struct Bucket {
    Accumulator slack;
    std::size_t violations = 0;
  };
  std::map<std::size_t, Bucket> buckets;

  RandomGreedyOracle oracle(seed * 97 + 1);
  for (std::size_t s = 0; s < samples; ++s) {
    auto is = oracle.solve(cg.graph());
    // Random prefix => independent subsets of all sizes.
    rng.shuffle(is);
    const std::size_t keep = rng.next_below(is.size() + 1);
    is.resize(keep);

    const auto report = check_lemma_b(cg, is);
    if (!report.independent || !report.well_defined) return 1;
    auto& bucket = buckets[report.is_size];
    bucket.slack.add(static_cast<double>(report.happy_count) -
                     static_cast<double>(report.is_size));
    if (!report.happy_at_least_is_size) ++bucket.violations;
  }

  Table table(
      "E3 / Figure 1 — Lemma 2.1 b): happy(f_I) - |I| >= 0 "
      "(n=48, m=32, k=3, " + std::to_string(samples) + " sampled ISs)");
  table.header({"|I|", "samples", "min slack", "avg slack", "max slack",
                "violations"});
  std::size_t total_violations = 0;
  for (const auto& [size, bucket] : buckets) {
    table.row({fmt_size(size), fmt_size(bucket.slack.count()),
               fmt_double(bucket.slack.min(), 0),
               fmt_double(bucket.slack.mean(), 2),
               fmt_double(bucket.slack.max(), 0),
               fmt_size(bucket.violations)});
    total_violations += bucket.violations;
  }
  std::cout << table.render();
  json_report.add_table(table);
  std::cout << (total_violations == 0
                    ? "Lemma 2.1 b) holds for every sampled independent set.\n"
                    : "LEMMA 2.1 b) VIOLATION — investigate!\n");
  json_report.write();
  return total_violations == 0 ? 0 : 1;
}
