// Closed-loop load generator for the serving engine (docs/service.md).
//
// Replays a seeded trace (service/workload.hpp) against a ServiceEngine
// from --clients closed-loop client threads: each client submits one
// request, waits for its response, then takes the next unclaimed trace
// index.  Two passes run over the same trace — solver cache enabled and
// disabled — so one report shows both the hit rate and what the hits buy
// in latency.  An admission probe (filling an engine whose dispatcher
// never drains) pins the deterministic reject-with-reason behavior of the
// bounded queue into the report.
//
// Determinism check: response payloads are byte-identical across runs,
// thread counts and cache states.  --replay-out=<path> records the
// cache-on pass; --replay-in=<path> verifies the current run against a
// recording (exit 1 on any byte difference).  The cache-off pass is
// always verified in-process against the cache-on pass.
//
// Knobs: --requests --pool --n --m --k --seed-variants
// --weight-mutate (trace shape),
// --clients --queue-capacity --max-batch --cache-entries (engine),
// --threads (solver pool), --seed, --replay-out, --replay-in,
// --nocache=false (skip the comparison pass).
#include <iostream>
#include <thread>
#include <vector>

#include "bench_main.hpp"
#include "load_gen.hpp"
#include "obs/metrics.hpp"
#include "service/engine.hpp"
#include "service/workload.hpp"
#include "util/table.hpp"

using namespace pslocal;

namespace {

struct PassResult {
  benchload::ClosedLoopResult loop;
  // Log2-resolution quantiles from the obs service.latency_ns histogram.
  std::uint64_t obs_p50_ns = 0, obs_p99_ns = 0;
  service::ServiceEngine::Stats stats;
  std::vector<service::ReplayEntry> entries;
};

PassResult run_pass(const service::Trace& trace, service::EngineConfig cfg,
                    std::size_t clients) {
  PassResult result;
  const obs::Snapshot before = obs::snapshot();
  service::ServiceEngine engine(cfg);
  engine.start();

  const std::size_t total = trace.requests.size();
  result.entries.resize(total);
  result.loop = benchload::run_closed_loop(
      total, clients, [](std::size_t) { return 0; },
      [&](int&, std::size_t i) -> benchload::OneResult {
        benchload::OneResult one;
        for (;;) {
          auto sub = engine.submit(trace.requests[i]);
          if (sub.admission == service::Admission::kQueueFull) {
            ++one.retries;
            std::this_thread::yield();
            continue;
          }
          PSL_CHECK_MSG(sub.admission == service::Admission::kAccepted,
                        "service rejected request " << i << " with "
                            << admission_name(sub.admission));
          const service::Response resp = sub.response.get();
          one.ok = resp.status == service::Response::Status::kOk;
          one.latency_ns = resp.total_ns;
          result.entries[i] =
              service::ReplayEntry{resp.id, resp.key, resp.result};
          return one;
        }
      });

  result.stats = engine.stats();
  engine.stop();

  const obs::Snapshot after = obs::snapshot();
  const auto pass_hist =
      benchload::diff_histogram(before.histogram("service.latency_ns"),
                                after.histogram("service.latency_ns"));
  result.obs_p50_ns = pass_hist.value_at_quantile(0.50);
  result.obs_p99_ns = pass_hist.value_at_quantile(0.99);
  return result;
}

/// Deterministic admission-control probe: an engine whose dispatcher is
/// never started admits exactly `capacity` requests and rejects the rest
/// with kQueueFull; stop() answers the admitted ones with "shutdown".
void admission_probe(const service::Trace& trace, BenchReport& report) {
  constexpr std::size_t kCapacity = 8;
  constexpr std::size_t kOverflow = 4;
  service::EngineConfig cfg;
  cfg.queue_capacity = kCapacity;
  service::ServiceEngine engine(cfg);

  std::size_t accepted = 0, rejected_full = 0;
  std::vector<std::future<service::Response>> futures;
  for (std::size_t i = 0; i < kCapacity + kOverflow; ++i) {
    auto sub = engine.submit(trace.requests[i % trace.requests.size()]);
    if (sub.admission == service::Admission::kAccepted) {
      ++accepted;
      futures.push_back(std::move(sub.response));
    } else if (sub.admission == service::Admission::kQueueFull) {
      ++rejected_full;
    }
  }
  engine.stop();
  std::size_t shutdown_rejected = 0;
  for (auto& f : futures)
    if (f.get().status == service::Response::Status::kRejected)
      ++shutdown_rejected;

  PSL_CHECK_MSG(accepted == kCapacity && rejected_full == kOverflow &&
                    shutdown_rejected == kCapacity,
                "admission probe: expected " << kCapacity << "/" << kOverflow
                    << ", got " << accepted << "/" << rejected_full << "/"
                    << shutdown_rejected);
  report.metric("probe_capacity", static_cast<double>(kCapacity))
      .metric("probe_rejected_full", static_cast<double>(rejected_full))
      .metric("probe_rejected_shutdown",
              static_cast<double>(shutdown_rejected));
}

}  // namespace

int main(int argc, char** argv) {
  return benchmain::run(
      argc, argv, "service", 1, [](benchmain::Context& ctx) {
        service::TraceParams tp;
        tp.seed = ctx.seed;
        tp.requests =
            static_cast<std::size_t>(ctx.opts.get_int("requests", 10000));
        tp.instance_pool =
            static_cast<std::size_t>(ctx.opts.get_int("pool", 24));
        tp.n = static_cast<std::size_t>(ctx.opts.get_int("n", 48));
        tp.m = static_cast<std::size_t>(ctx.opts.get_int("m", 40));
        tp.k = static_cast<std::size_t>(ctx.opts.get_int("k", 3));
        tp.seed_variants =
            static_cast<std::size_t>(ctx.opts.get_int("seed-variants", 2));
        tp.weight_mutate =
            static_cast<unsigned>(ctx.opts.get_int("weight-mutate", 0));
        const auto clients =
            static_cast<std::size_t>(ctx.opts.get_int("clients", 8));

        service::EngineConfig cfg;
        cfg.queue_capacity =
            static_cast<std::size_t>(ctx.opts.get_int("queue-capacity", 256));
        cfg.max_batch =
            static_cast<std::size_t>(ctx.opts.get_int("max-batch", 64));
        cfg.cache.max_entries =
            static_cast<std::size_t>(ctx.opts.get_int("cache-entries", 512));

        const service::Trace trace = service::generate_trace(tp);
        ctx.report.metric("requests", static_cast<double>(tp.requests))
            .metric("unique_keys", static_cast<double>(trace.unique_keys))
            .metric("clients", static_cast<double>(clients));

        admission_probe(trace, ctx.report);

        std::cout << "trace: " << tp.requests << " requests over "
                  << tp.instance_pool << " instances (" << trace.unique_keys
                  << " distinct cache keys), " << clients << " clients\n";

        const PassResult cached = run_pass(trace, cfg, clients);
        const double hit_rate =
            cached.stats.served > 0
                ? static_cast<double>(cached.stats.served_cached) /
                      static_cast<double>(cached.stats.served)
                : 0.0;

        PassResult uncached;
        const bool run_nocache = ctx.opts.get_bool("nocache", true);
        if (run_nocache) {
          service::EngineConfig nocache_cfg = cfg;
          nocache_cfg.cache.enabled = false;
          nocache_cfg.graph_cache_entries = 0;
          uncached = run_pass(trace, nocache_cfg, clients);
          // Same trace, caches off — the bytes must not change.
          const auto verdict =
              service::verify_replay(cached.entries, uncached.entries);
          PSL_CHECK_MSG(verdict.identical,
                        "cache-off pass diverged from cache-on pass at id "
                            << verdict.first_mismatch_id << " ("
                            << verdict.mismatches << " mismatches)");
        }

        Table table("Serving throughput — cache on vs off (same trace)");
        table.header({"pass", "wall s", "req/s", "p50 ms", "p99 ms",
                      "mean ms", "hit rate", "errors", "retries"});
        const auto row = [&](const char* name, const PassResult& r,
                             double hits) {
          table.row({name, fmt_double(r.loop.wall_s, 2),
                     fmt_double(r.loop.throughput_rps, 0),
                     fmt_double(r.loop.p50_ms, 3), fmt_double(r.loop.p99_ms, 3),
                     fmt_double(r.loop.mean_ms, 3), fmt_double(hits, 3),
                     fmt_size(r.loop.errors), fmt_size(r.loop.retries)});
        };
        row("cache", cached, hit_rate);
        if (run_nocache) row("no-cache", uncached, 0.0);
        std::cout << table.render();
        ctx.report.add_table(table);

        ctx.report.metric("throughput_rps", cached.loop.throughput_rps)
            .metric("latency_p50_ms", cached.loop.p50_ms)
            .metric("latency_p99_ms", cached.loop.p99_ms)
            .metric("latency_mean_ms", cached.loop.mean_ms)
            .metric("obs_latency_p50_ns",
                    static_cast<double>(cached.obs_p50_ns))
            .metric("obs_latency_p99_ns",
                    static_cast<double>(cached.obs_p99_ns))
            .metric("cache_hit_rate", hit_rate)
            .metric("cache_hits", static_cast<double>(cached.stats.cache.hits))
            .metric("cache_misses",
                    static_cast<double>(cached.stats.cache.misses))
            .metric("cache_evictions",
                    static_cast<double>(cached.stats.cache.evictions))
            .metric("served_cached",
                    static_cast<double>(cached.stats.served_cached))
            .metric("batches", static_cast<double>(cached.stats.batches))
            .metric("dispatch_cycles",
                    static_cast<double>(cached.stats.dispatch_cycles))
            .metric("errors", static_cast<double>(cached.loop.errors))
            .metric("queue_retries", static_cast<double>(cached.loop.retries));
        if (run_nocache) {
          ctx.report
              .metric("nocache_throughput_rps", uncached.loop.throughput_rps)
              .metric("nocache_latency_mean_ms", uncached.loop.mean_ms)
              .metric("nocache_latency_p50_ms", uncached.loop.p50_ms)
              .metric("nocache_latency_p99_ms", uncached.loop.p99_ms);
          std::cout << "cache speedup (mean latency): "
                    << fmt_double(uncached.loop.mean_ms /
                                      std::max(cached.loop.mean_ms, 1e-9),
                                  2)
                    << "x\n";
        }

        const std::string replay_out =
            ctx.opts.get_string("replay-out", "");
        if (!replay_out.empty()) {
          service::write_replay_file(replay_out, cached.entries, tp.seed);
          std::cout << "recorded " << cached.entries.size()
                    << " responses to " << replay_out << "\n";
        }
        const std::string replay_in = ctx.opts.get_string("replay-in", "");
        if (!replay_in.empty()) {
          const auto recorded = service::read_replay_file(replay_in);
          const auto verdict =
              service::verify_replay(recorded, cached.entries);
          ctx.report.metric("replay_compared",
                            static_cast<double>(verdict.compared))
              .metric("replay_mismatches",
                      static_cast<double>(verdict.mismatches));
          if (!verdict.identical) {
            std::cout << "REPLAY MISMATCH: " << verdict.mismatches << "/"
                      << verdict.compared << " responses differ (first id "
                      << verdict.first_mismatch_id << ")\n";
            return 1;
          }
          std::cout << "replay verified: " << verdict.compared
                    << " responses byte-identical to " << replay_in << "\n";
        }
        return 0;
      });
}
