// Experiment E8 (Figure 4): SLOCAL locality measurements.
//
// Containment side of Theorem 1.1: MaxIS approximation is *in* P-SLOCAL.
// The measuring engine reports the locality actually used:
//  * greedy MIS — the paper's SLOCAL(1) algorithm — must report exactly 1;
//  * ball-carving 2-approx MaxIS must stay within log2(n) + 1.
#include <cmath>
#include <iostream>
#include <numeric>

#include "graph/generators.hpp"
#include "mis/exact_maxis.hpp"
#include "slocal/ball_carving.hpp"
#include "slocal/greedy_algorithms.hpp"
#include "util/bench_report.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace pslocal;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  apply_thread_option(opts);
  BenchReport json_report("slocal_locality", opts);
  const std::uint64_t seed = opts.get_int("seed", 8);

  Table table(
      "E8 / Figure 4 — measured SLOCAL locality vs n "
      "(G(n, p) with expected degree 4)");
  table.header({"n", "greedy MIS locality", "carving locality",
                "log2(n)+1 bound", "carving |I|", "alpha", "ratio"});

  for (std::size_t n : {16u, 32u, 64u, 96u, 128u}) {
    Rng rng(seed + n);
    const Graph g = gnp(n, 4.0 / static_cast<double>(n), rng);
    std::vector<VertexId> order(n);
    std::iota(order.begin(), order.end(), VertexId{0});

    const auto mis = slocal_greedy_mis(g, order);
    const auto carve = ball_carving_maxis(g, order);
    const auto alpha = independence_number(g);
    const double bound =
        std::log2(static_cast<double>(n)) + 1.0;

    table.row({fmt_size(n), fmt_size(mis.locality), fmt_size(carve.locality),
               fmt_double(bound, 1), fmt_size(carve.independent_set.size()),
               fmt_size(alpha),
               fmt_ratio(static_cast<double>(alpha) /
                             static_cast<double>(carve.independent_set.size()),
                         2)});
    if (mis.locality > 1 || static_cast<double>(carve.locality) > bound)
      return 1;
  }
  std::cout << table.render();
  json_report.add_table(table);
  std::cout << "Greedy MIS is SLOCAL(1) exactly as the paper states; ball "
               "carving stays within its O(log n) locality and 2x quality "
               "guarantees.\n";
  json_report.write();
  return 0;
}
