// Experiment E9 (Figure 5): local simulability of G_k and LOCAL rounds.
//
// "The conflict graph G_k can be efficiently simulated in H in the LOCAL
//  model."  We measure (a) the host-mapping dilation (predicted <= 1, so
//  one G_k round costs one H round), (b) Luby-MIS round counts on G_k,
//  whose product is the simulated LOCAL cost of one reduction phase, and
//  (c) the SLOCAL->LOCAL compiler's round bill for the SLOCAL(1) greedy
//  MIS on H's primal graph, the derandomization route of Section 1.
#include <cmath>
#include <iostream>

#include "core/conflict_graph.hpp"
#include "core/simulation.hpp"
#include "hypergraph/generators.hpp"
#include "local/luby_mis.hpp"
#include "local/slocal_compiler.hpp"
#include "util/bench_report.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace pslocal;

namespace {
enum class Mark : std::uint8_t { kUndecided, kIn, kOut };
}

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  apply_thread_option(opts);
  BenchReport json_report("local_simulation", opts);
  const std::uint64_t seed = opts.get_int("seed", 9);

  Table table("E9 / Figure 5 — simulating G_k in H (planted instances, k=3)");
  table.header({"n", "m", "|V(Gk)|", "max dilation", "max host load",
                "Luby rounds on Gk", "H rounds per phase",
                "2*log2|V(Gk)| ref", "max H-msg bytes"});

  bool all_one_round = true;
  for (std::size_t n : {16u, 32u, 64u, 128u}) {
    Rng rng(seed + n);
    PlantedCfParams params;
    params.n = n;
    params.m = n;
    params.k = 3;
    const auto inst = planted_cf_colorable(params, rng);
    const ConflictGraph cg(inst.hypergraph, 3);

    const auto host = analyze_host_mapping(cg);
    all_one_round = all_one_round && host.one_round_simulable;
    const auto luby = luby_mis(cg.graph(), seed + n);
    const std::size_t h_rounds =
        luby.rounds * host.rounds_per_simulated_round;
    // A host relays the payloads of all triples it hosts in one
    // (unbounded) LOCAL message: load * per-triple payload.  This is the
    // quantity a CONGEST-style model would cap — LOCAL does not.
    const std::size_t host_msg_bytes =
        host.max_load * luby.max_message_bytes;

    table.row({fmt_size(n), fmt_size(n), fmt_size(cg.triple_count()),
               fmt_size(host.max_dilation), fmt_size(host.max_load),
               fmt_size(luby.rounds), fmt_size(h_rounds),
               fmt_double(2.0 * std::log2(static_cast<double>(
                                    cg.triple_count())),
                          1),
               fmt_size(host_msg_bytes)});
  }
  std::cout << table.render();
  json_report.add_table(table);

  // (c) SLOCAL -> LOCAL compilation on the communication graph of H.
  Table table2(
      "E9c — SLOCAL(1) greedy MIS compiled to LOCAL via network "
      "decomposition of H's primal graph");
  table2.header({"n", "clusters", "colors C", "max weak diam D",
                 "LOCAL rounds bill", "n (trivial bill)"});
  for (std::size_t n : {16u, 32u, 64u}) {
    Rng rng(seed * 5 + n);
    PlantedCfParams params;
    params.n = n;
    params.m = n;
    params.k = 3;
    const auto inst = planted_cf_colorable(params, rng);
    const Graph primal = inst.hypergraph.primal_graph();
    const auto run = compile_slocal_to_local<Mark>(
        primal, 1,
        std::vector<Mark>(primal.vertex_count(), Mark::kUndecided),
        [](SLocalView<Mark>& view) {
          bool neighbor_in = false;
          for (VertexId w : view.neighbors())
            if (view.state(w) == Mark::kIn) {
              neighbor_in = true;
              break;
            }
          view.own_state() = neighbor_in ? Mark::kOut : Mark::kIn;
        });
    table2.row({fmt_size(n), fmt_size(run.decomposition_clusters),
                fmt_size(run.decomposition_colors),
                fmt_size(run.max_cluster_weak_diameter),
                fmt_size(run.local_rounds), fmt_size(n)});
  }
  std::cout << table2.render();
  json_report.add_table(table2);
  std::cout << (all_one_round
                    ? "Dilation <= 1 everywhere: one G_k round costs one H "
                      "round, exactly the paper's simulability claim.\n"
                    : "DILATION > 1 — simulability claim violated!\n");
  json_report.write();
  return all_one_round ? 0 : 1;
}
