// Supplementary experiment E12: the deterministic-LOCAL gap that motivates
// the paper.
//
// Section 1: MIS and (Δ+1)-coloring "have fast randomized algorithms
// [Lub86] and exponentially slower deterministic algorithms [AGLP89]",
// and whether a polylog deterministic algorithm exists is the open
// question behind P-SLOCAL-completeness.  This bench makes the gap
// concrete on bounded-degree graphs, where the classic deterministic
// pipeline IS fast:
//
//    Linial O(log* n) rounds  ->  O(Δ² log² Δ) colors
//    color_reduction           ->  Δ+1 colors   (+O(Δ²) rounds)
//    mis_from_coloring          ->  MIS          (+Δ+1 rounds)
//
// versus randomized Luby (O(log n) rounds, any degree).  The
// deterministic pipeline's round bill depends on Δ, not n — watch the
// columns stay flat as n grows and explode as Δ grows.
#include <cmath>
#include <iostream>

#include "graph/generators.hpp"
#include "local/from_coloring.hpp"
#include "local/linial_coloring.hpp"
#include "local/luby_mis.hpp"
#include "mis/independent_set.hpp"
#include "util/bench_report.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace pslocal;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  apply_thread_option(opts);
  BenchReport json_report("deterministic_local", opts);
  const std::uint64_t seed = opts.get_int("seed", 12);

  {
    Table table(
        "E12a — deterministic MIS pipeline vs randomized Luby, Δ = 2 "
        "(rings): rounds vs n");
    table.header({"n", "Linial rounds", "Linial colors", "reduce rounds",
                  "MIS sweep rounds", "det. total", "Luby rounds (rand)"});
    for (std::size_t n : {64u, 256u, 1024u, 4096u}) {
      const Graph g = ring(n);
      const auto linial = linial_coloring(g);
      const auto reduced = color_reduction(g, linial.coloring);
      const auto mis = mis_from_coloring(g, reduced.coloring);
      const auto luby = luby_mis(g, seed + n);
      table.row({fmt_size(n), fmt_size(linial.rounds),
                 fmt_size(linial.colors_range), fmt_size(reduced.rounds),
                 fmt_size(mis.rounds),
                 fmt_size(linial.rounds + reduced.rounds + mis.rounds),
                 fmt_size(luby.rounds)});
    }
    std::cout << table.render();
    json_report.add_table(table);
  }

  {
    Table table(
        "E12b — the same pipeline as Δ grows (near-regular graphs, n=256): "
        "deterministic cost is degree-driven");
    table.header({"target d", "Δ", "Linial colors", "det. total rounds",
                  "Luby rounds (rand)"});
    for (std::size_t d : {2u, 4u, 8u, 16u}) {
      Rng rng(seed + d);
      const Graph g = random_near_regular(256, d, rng);
      const auto linial = linial_coloring(g);
      const auto reduced = color_reduction(g, linial.coloring);
      const auto mis = mis_from_coloring(g, reduced.coloring);
      const auto luby = luby_mis(g, seed + d);
      table.row({fmt_size(d), fmt_size(g.max_degree()),
                 fmt_size(linial.colors_range),
                 fmt_size(linial.rounds + reduced.rounds + mis.rounds),
                 fmt_size(luby.rounds)});
    }
    std::cout << table.render();
    json_report.add_table(table);
  }
  std::cout
      << "Deterministic rounds are flat in n (log* + poly(Δ)) but blow up "
         "with Δ, while Luby stays\nO(log n) regardless — the gap the "
         "P-SLOCAL theory, and this paper's completeness result, probe.\n";
  json_report.write();
  return 0;
}
