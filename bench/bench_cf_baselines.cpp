// Experiment E7 (Table 4): end-to-end conflict-free coloring — the
// Theorem 1.1 reduction vs. the baselines.
//
//  * fresh-color baseline: always succeeds, m colors (linear in m);
//  * dyadic baseline (interval hypergraphs only): floor(log2 n)+1 colors;
//  * planted reference: the k colors the generator hid (a lower-bound
//    witness, unavailable to algorithms).
//
// The paper predicts the reduction uses k * rho = polylog colors — it must
// beat "fresh" by a widening margin as m grows and stay within a polylog
// factor of the interval-specialized dyadic coloring.
#include <cmath>
#include <iostream>

#include "coloring/cf_baselines.hpp"
#include "core/reduction.hpp"
#include "hypergraph/generators.hpp"
#include "mis/greedy_maxis.hpp"
#include "util/bench_report.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace pslocal;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  apply_thread_option(opts);
  BenchReport json_report("cf_baselines", opts);
  const std::uint64_t seed = opts.get_int("seed", 7);

  {
    Table table(
        "E7a / Table 4 — planted almost-uniform instances: colors used");
    table.header({"n", "m", "planted k", "reduction colors",
                  "greedy-CF colors", "fresh colors", "reduction phases",
                  "reduction wins"});
    for (std::size_t m : {32u, 64u, 128u, 256u}) {
      const std::size_t n = m;
      const std::size_t k = 3;
      Rng rng(seed + m);
      PlantedCfParams params;
      params.n = n;
      params.m = m;
      params.k = k;
      const auto inst = planted_cf_colorable(params, rng);

      GreedyMinDegreeOracle oracle;
      ReductionOptions ropts;
      ropts.k = k;
      const auto res =
          cf_multicoloring_via_maxis(inst.hypergraph, oracle, ropts);
      if (!res.success) return 1;
      const auto fresh = fresh_color_baseline(inst.hypergraph);
      const auto greedy_cf = greedy_cf_coloring(inst.hypergraph);
      table.row({fmt_size(n), fmt_size(m), fmt_size(k),
                 fmt_size(res.colors_used), fmt_size(greedy_cf.colors_used),
                 fmt_size(fresh.palette_size()), fmt_size(res.phases),
                 fmt_bool(res.colors_used < fresh.palette_size())});
    }
    std::cout << table.render();
    json_report.add_table(table);
  }

  {
    Table table("E7b / Table 4 — interval hypergraphs: reduction vs dyadic");
    table.header({"points n", "intervals m", "dyadic colors",
                  "reduction colors (k=log2 n+1)", "reduction phases"});
    for (std::size_t n : {32u, 64u, 128u}) {
      const std::size_t m = 2 * n;
      Rng rng(seed * 3 + n);
      const auto h = interval_hypergraph(n, m, 2, std::min<std::size_t>(n, 12),
                                         rng);
      const auto dyadic = dyadic_interval_cf_coloring(n);
      if (!is_conflict_free(h, dyadic)) return 1;

      const std::size_t k = static_cast<std::size_t>(
                                std::floor(std::log2(static_cast<double>(n)))) +
                            1;
      GreedyMinDegreeOracle oracle;
      ReductionOptions ropts;
      ropts.k = k;
      const auto res = cf_multicoloring_via_maxis(h, oracle, ropts);
      if (!res.success) return 1;
      table.row({fmt_size(n), fmt_size(m), fmt_size(cf_color_count(dyadic)),
                 fmt_size(res.colors_used), fmt_size(res.phases)});
    }
    std::cout << table.render();
    json_report.add_table(table);
  }
  std::cout << "The generic reduction stays polylog while fresh grows "
               "linearly; the interval-specialized dyadic coloring is the "
               "stronger baseline on its home turf, as expected.\n";
  json_report.write();
  return 0;
}
