// Supplementary experiment E16: SLOCAL order sensitivity ablation.
//
// The SLOCAL model quantifies over arbitrary processing orders; the
// guarantees of the library's SLOCAL algorithms hold for all of them
// (locality 1 for greedy MIS, 2x + O(log n) for ball carving).  What
// *does* move with the order is solution quality.  This ablation runs
// every order strategy on shared instances and tabulates:
//   (a) greedy-MIS size vs exact alpha on a random graph,
//   (b) greedy-MIS size on the conflict graph (where alpha = m),
//   (c) ball-carving quality and locality.
#include <iostream>

#include "core/conflict_graph.hpp"
#include "graph/generators.hpp"
#include "hypergraph/generators.hpp"
#include "mis/exact_maxis.hpp"
#include "slocal/ball_carving.hpp"
#include "slocal/greedy_algorithms.hpp"
#include "slocal/orders.hpp"
#include "util/bench_report.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace pslocal;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  apply_thread_option(opts);
  BenchReport json_report("order_ablation", opts);
  const std::uint64_t seed = opts.get_int("seed", 16);

  Rng rng(seed);
  const Graph random_graph = gnp(48, 0.12, rng);
  const auto alpha = independence_number(random_graph);

  PlantedCfParams params;
  params.n = 48;
  params.m = 32;
  params.k = 3;
  const auto inst = planted_cf_colorable(params, rng);
  const ConflictGraph cg(inst.hypergraph, 3);

  Table table("E16 — SLOCAL order ablation (same instances, all orders)");
  table.header({"order", "MIS on G(48,.12) (alpha=" + fmt_size(alpha) + ")",
                "MIS on G_k (alpha=32)", "carving |I|",
                "carving locality"});

  for (OrderStrategy strategy : all_order_strategies()) {
    const auto o1 = make_order(random_graph, strategy, seed);
    const auto mis1 = slocal_greedy_mis(random_graph, o1);

    const auto o2 = make_order(cg.graph(), strategy, seed);
    const auto mis2 = slocal_greedy_mis(cg.graph(), o2);

    const auto carve = ball_carving_maxis(random_graph, o1);

    table.row({to_string(strategy), fmt_size(mis1.independent_set.size()),
               fmt_size(mis2.independent_set.size()),
               fmt_size(carve.independent_set.size()),
               fmt_size(carve.locality)});
  }
  std::cout << table.render();
  json_report.add_table(table);
  std::cout << "Every order yields valid outputs with the model guarantees; "
               "degree-aware orders\n(degree-asc, degeneracy) consistently "
               "find larger independent sets — the quality\nknob the SLOCAL "
               "model leaves free.\n";
  json_report.write();
  return 0;
}
