// Experiment E2 (Table 2): Lemma 2.1 a).
//
// "Any conflict-free k-coloring f of H induces a maximum independent set
//  I_f of the conflict graph G_k.  The size of this maximum independent
//  set is m = |E(H)|."
//
// For every instance we build I_f from the planted coloring, check
// independence, compare |I_f| against m, and — on instances small enough
// for the exact solver — confirm alpha(G_k) = m by branch and bound.
#include <iostream>
#include <vector>

#include "bench_main.hpp"
#include "core/correspondence.hpp"
#include "hypergraph/generators.hpp"
#include "mis/exact_maxis.hpp"
#include "util/table.hpp"

using namespace pslocal;

int main(int argc, char** argv) {
  return benchmain::run(argc, argv, "lemma21a", 2, [](benchmain::Context& ctx) {
    Table table(
        "E2 / Table 2 — Lemma 2.1 a): I_f is a maximum IS of size m");
    table.header({"n", "m", "k", "|I_f|", "independent", "alpha(Gk) exact",
                  "alpha == m", "attains max"});

    struct Row {
      std::size_t n, m, k;
    };
    const std::vector<Row> rows = {
        {12, 4, 2},  {16, 8, 2},  {20, 10, 2}, {24, 12, 3},
        {28, 14, 3}, {32, 16, 3}, {24, 8, 4},  {36, 18, 2},
    };

    bool all_good = true;
    for (const auto& r : rows) {
      Rng rng(ctx.seed + r.n * 7 + r.m);
      PlantedCfParams params;
      params.n = r.n;
      params.m = r.m;
      params.k = r.k;
      const auto inst = planted_cf_colorable(params, rng);
      const ConflictGraph cg(inst.hypergraph, r.k);

      const auto report = check_lemma_a(cg, CfColoring(inst.planted_coloring));
      const auto alpha = independence_number(cg.graph());
      all_good = all_good && report.attains_maximum && alpha == r.m;

      table.row({fmt_size(r.n), fmt_size(r.m), fmt_size(r.k),
                 fmt_size(report.is_size), fmt_bool(report.independent),
                 fmt_size(alpha), fmt_bool(alpha == r.m),
                 fmt_bool(report.attains_maximum)});
    }
    std::cout << table.render();
    ctx.report.add_table(table);
    std::cout << (all_good ? "Lemma 2.1 a) verified on every instance.\n"
                           : "LEMMA 2.1 a) VIOLATION — investigate!\n");
    return all_good ? 0 : 1;
  });
}
