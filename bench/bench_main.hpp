// Shared main() scaffolding for bench binaries.
//
// Every bench opens the same way: parse Options, apply the runtime CLI
// flags (--threads / --trace-out), construct the BenchReport, read the
// seed, and remember to write() the report on every exit path.  That
// last step is the one that gets forgotten; benchmain::run owns it, so a
// bench body that early-returns a failure code still emits its
// trajectory file.  Usage:
//
//   int main(int argc, char** argv) {
//     return pslocal::benchmain::run(argc, argv, "lemma21a", /*seed=*/2,
//                                    [](pslocal::benchmain::Context& ctx) {
//       ...
//       ctx.report.add_table(table);
//       return all_good ? 0 : 1;
//     });
//   }
//
// The body's return value becomes the process exit code.  ctx.seed is
// the --seed option with the bench's default applied; ctx.opts exposes
// the remaining knobs.
#pragma once

#include <cstdint>
#include <utility>

#include "util/bench_report.hpp"
#include "util/options.hpp"

namespace pslocal::benchmain {

struct Context {
  const Options& opts;
  BenchReport& report;
  std::uint64_t seed;
};

/// Run `body` inside the standard bench scaffold (options parsed, global
/// scheduler sized, report written after the body returns).
template <typename Body>
int run(int argc, char** argv, const char* name, long default_seed,
        Body&& body) {
  const Options opts(argc, argv);
  apply_thread_option(opts);
  BenchReport report(name, opts);
  Context ctx{opts, report,
              static_cast<std::uint64_t>(opts.get_int("seed", default_seed))};
  const int rc = std::forward<Body>(body)(ctx);
  report.write();
  return rc;
}

}  // namespace pslocal::benchmain
