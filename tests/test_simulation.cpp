#include "core/simulation.hpp"

#include <gtest/gtest.h>

#include "hypergraph/generators.hpp"

namespace pslocal {
namespace {

struct SimCase {
  std::size_t n, m, k;
};

class HostMappingTest : public ::testing::TestWithParam<SimCase> {};

TEST_P(HostMappingTest, DilationAtMostOneOnPlantedInstances) {
  const auto p = GetParam();
  Rng rng(640 + p.n);
  PlantedCfParams params;
  params.n = p.n;
  params.m = p.m;
  params.k = p.k;
  const auto inst = planted_cf_colorable(params, rng);
  const ConflictGraph cg(inst.hypergraph, p.k);
  const auto report = analyze_host_mapping(cg);

  EXPECT_EQ(report.host_count, p.n);
  EXPECT_EQ(report.triple_count, cg.triple_count());
  EXPECT_LE(report.max_dilation, 1u);  // the paper's simulability claim
  EXPECT_TRUE(report.one_round_simulable);
  EXPECT_EQ(report.rounds_per_simulated_round, 1u);
  EXPECT_GE(report.max_load, 1u);
  EXPECT_GT(report.avg_load, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, HostMappingTest,
                         ::testing::Values(SimCase{16, 8, 2}, SimCase{24, 16, 3},
                                           SimCase{40, 30, 4},
                                           SimCase{32, 20, 2}));

TEST(HostMappingTest, IntervalInstancesToo) {
  Rng rng(7);
  const auto h = interval_hypergraph(30, 15, 2, 6, rng);
  const ConflictGraph cg(h, 3);
  const auto report = analyze_host_mapping(cg);
  EXPECT_TRUE(report.one_round_simulable);
}

TEST(HostMappingTest, LoadAccountsEveryTriple) {
  const Hypergraph h(4, {{0, 1}, {1, 2, 3}});
  const ConflictGraph cg(h, 2);
  const auto report = analyze_host_mapping(cg);
  // Vertex 1 hosts triples from both edges: 2 pairs x k = 4 triples.
  EXPECT_EQ(report.max_load, 4u);
  EXPECT_EQ(report.triple_count, (2u + 3u) * 2u);
}

TEST(HostMappingTest, EdgelessHypergraph) {
  const Hypergraph h(3, {});
  const ConflictGraph cg(h, 2);
  const auto report = analyze_host_mapping(cg);
  EXPECT_EQ(report.triple_count, 0u);
  EXPECT_EQ(report.max_dilation, 0u);
  EXPECT_TRUE(report.one_round_simulable);
}

}  // namespace
}  // namespace pslocal
