#include "core/distributed_reduction.hpp"

#include <gtest/gtest.h>

#include "hypergraph/generators.hpp"

namespace pslocal {
namespace {

struct DistCase {
  std::size_t n, m, k;
  std::uint64_t seed;
};

class DistributedReductionTest : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistributedReductionTest, SolvesPlantedInstancesOverTheNetwork) {
  const auto p = GetParam();
  Rng rng(p.seed);
  PlantedCfParams params;
  params.n = p.n;
  params.m = p.m;
  params.k = p.k;
  const auto inst = planted_cf_colorable(params, rng);

  const auto res =
      distributed_cf_multicoloring(inst.hypergraph, p.k, p.seed * 31 + 1);
  ASSERT_TRUE(res.success);
  EXPECT_TRUE(is_conflict_free(inst.hypergraph, res.coloring));
  EXPECT_GE(res.phases, 1u);
  EXPECT_LE(res.colors_used, p.k * res.phases);

  // Round accounting: every phase bills its Luby rounds plus one
  // detection round, and Luby rounds stay within the w.h.p. cap.
  std::size_t billed = 0;
  for (const auto& t : res.trace) {
    billed += t.luby_rounds + 1;
    EXPECT_GE(t.happy_removed, 1u);
    EXPECT_GT(t.virtual_nodes, 0u);
    EXPECT_GT(t.max_message_bytes, 0u);
  }
  EXPECT_EQ(res.total_physical_rounds, billed);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DistributedReductionTest,
                         ::testing::Values(DistCase{24, 16, 2, 1},
                                           DistCase{36, 24, 3, 2},
                                           DistCase{48, 36, 3, 3},
                                           DistCase{40, 20, 4, 4}));

TEST(DistributedReductionTest, EdgelessSucceedsImmediately) {
  const Hypergraph h(5, {});
  const auto res = distributed_cf_multicoloring(h, 2, 7);
  EXPECT_TRUE(res.success);
  EXPECT_EQ(res.phases, 0u);
  EXPECT_EQ(res.total_physical_rounds, 0u);
}

TEST(DistributedReductionTest, PhaseCapReportsFailure) {
  Rng rng(9);
  PlantedCfParams params;
  params.n = 40;
  params.m = 30;
  params.k = 2;
  const auto inst = planted_cf_colorable(params, rng);
  // k = 1 makes progress slow (few happy edges per phase); cap at 1 phase.
  const auto res =
      distributed_cf_multicoloring(inst.hypergraph, 1, 5, /*max_phases=*/1);
  EXPECT_EQ(res.phases, 1u);
  // With one phase on a 30-edge instance success is implausible but not
  // impossible; only the accounting is asserted.
  EXPECT_GT(res.total_physical_rounds, 0u);
}

TEST(DeterministicDistributedTest, SolvesWithZeroRandomness) {
  Rng rng(21);
  PlantedCfParams params;
  params.n = 28;
  params.m = 16;
  params.k = 2;
  const auto inst = planted_cf_colorable(params, rng);
  const auto a = deterministic_distributed_cf_multicoloring(inst.hypergraph, 2);
  const auto b = deterministic_distributed_cf_multicoloring(inst.hypergraph, 2);
  ASSERT_TRUE(a.success);
  EXPECT_TRUE(is_conflict_free(inst.hypergraph, a.coloring));
  // Fully deterministic: identical runs.
  EXPECT_EQ(a.phases, b.phases);
  EXPECT_EQ(a.total_round_bill, b.total_round_bill);
  EXPECT_EQ(a.colors_used, b.colors_used);
  for (const auto& t : a.trace) {
    EXPECT_GE(t.happy_removed, 1u);
    EXPECT_GE(t.decomposition_colors, 1u);
    EXPECT_GT(t.compiled_rounds, 0u);
  }
}

TEST(DeterministicDistributedTest, EdgelessImmediate) {
  const auto res =
      deterministic_distributed_cf_multicoloring(Hypergraph(4, {}), 2);
  EXPECT_TRUE(res.success);
  EXPECT_EQ(res.total_round_bill, 0u);
}

TEST(DistributedReductionTest, RoundsStayPolylogish) {
  // The headline: total physical rounds across phases stay far below the
  // trivial sequential bound (|V(Gk)| rounds to gather everything).
  Rng rng(11);
  PlantedCfParams params;
  params.n = 64;
  params.m = 48;
  params.k = 3;
  const auto inst = planted_cf_colorable(params, rng);
  const auto res = distributed_cf_multicoloring(inst.hypergraph, 3, 13);
  ASSERT_TRUE(res.success);
  std::size_t total_triples = 0;
  for (const auto& t : res.trace) total_triples += t.virtual_nodes;
  EXPECT_LT(res.total_physical_rounds, total_triples / 4);
}

}  // namespace
}  // namespace pslocal
