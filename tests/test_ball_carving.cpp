#include "slocal/ball_carving.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "graph/generators.hpp"
#include "mis/exact_maxis.hpp"
#include "mis/independent_set.hpp"
#include "slocal/orders.hpp"

namespace pslocal {
namespace {

std::vector<VertexId> identity_order(const Graph& g) {
  std::vector<VertexId> order(g.vertex_count());
  std::iota(order.begin(), order.end(), VertexId{0});
  return order;
}

class BallCarvingSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BallCarvingSeedTest, TwoApproxWithLogLocalityOnRandomGraphs) {
  Rng rng(GetParam());
  const Graph g = gnp(40, 0.12, rng);
  const auto res = ball_carving_maxis(g, identity_order(g));
  EXPECT_TRUE(is_independent_set(g, res.independent_set));

  const auto alpha = independence_number(g);
  EXPECT_GE(2 * res.independent_set.size(), alpha)
      << "alpha=" << alpha << " alg=" << res.independent_set.size();

  const double log2n = std::log2(static_cast<double>(g.vertex_count()));
  EXPECT_LE(static_cast<double>(res.locality), log2n + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BallCarvingSeedTest,
                         ::testing::Values(1, 2, 3, 4, 5, 11, 17));

TEST(BallCarvingTest, ExactOnFamiliesWhereCarvingIsLucky) {
  // Disjoint cliques: every carve resolves one clique exactly.
  const Graph g = disjoint_cliques({3, 5, 2, 4});
  const auto res = ball_carving_maxis(g, identity_order(g));
  EXPECT_EQ(res.independent_set.size(), 4u);
  // Edgeless graph: first carve at the first vertex... every vertex active,
  // balls are singletons; every vertex ends up in the IS.
  const Graph e = Graph::from_edges(6, {});
  const auto res2 = ball_carving_maxis(e, identity_order(e));
  EXPECT_EQ(res2.independent_set.size(), 6u);
}

TEST(BallCarvingTest, RingHalvesAreFound) {
  const Graph g = ring(16);  // alpha = 8
  const auto res = ball_carving_maxis(g, identity_order(g));
  EXPECT_GE(res.independent_set.size(), 4u);  // 2-approx floor
  EXPECT_TRUE(is_independent_set(g, res.independent_set));
}

TEST(BallCarvingTest, CarveAccountingIsConsistent) {
  Rng rng(9);
  const Graph g = gnp(30, 0.2, rng);
  const auto res = ball_carving_maxis(g, identity_order(g));
  EXPECT_GT(res.carve_count, 0u);
  EXPECT_LE(res.carve_count, g.vertex_count());
  // Doubling rule: radii stay below log2(n); locality is radius + 1.
  const double log2n = std::log2(static_cast<double>(g.vertex_count()));
  EXPECT_LE(static_cast<double>(res.max_radius), log2n);
  EXPECT_LE(res.locality, res.max_radius + 1);
  // Every carve contributes at least one IS vertex (alpha(B(0)) >= 1).
  EXPECT_GE(res.independent_set.size(), res.carve_count);
}

TEST(BallCarvingTest, OrderChangesResultButNotGuarantee) {
  Rng rng(10);
  const Graph g = gnp(36, 0.15, rng);
  const auto alpha = independence_number(g);
  auto order = identity_order(g);
  std::reverse(order.begin(), order.end());
  const auto res = ball_carving_maxis(g, order);
  EXPECT_TRUE(is_independent_set(g, res.independent_set));
  EXPECT_GE(2 * res.independent_set.size(), alpha);
}

class GreedyCarvingSeedTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(GreedyCarvingSeedTest, GreedyInnerScalesAndStaysLocal) {
  // No proven 2-approx with the greedy inner solver, but validity and the
  // doubling-rule locality bound survive; quality is checked empirically
  // against exact alpha (loose factor 3 at these sizes).
  Rng rng(GetParam());
  const Graph g = gnp(48, 0.15, rng);
  const auto res = ball_carving_maxis(g, identity_order(g), 0,
                                      BallCarvingInner::kGreedy);
  EXPECT_TRUE(is_independent_set(g, res.independent_set));
  const double log2n = std::log2(static_cast<double>(g.vertex_count()));
  EXPECT_LE(static_cast<double>(res.locality), log2n + 1.0);
  const auto alpha = independence_number(g);
  EXPECT_GE(3 * res.independent_set.size(), alpha);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyCarvingSeedTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(GreedyCarvingTest, HandlesDenseGraphsTheExactSolverWouldStruggleOn) {
  Rng rng(99);
  const Graph g = gnp(300, 0.3, rng);  // dense: exact inner would blow up
  const auto res = ball_carving_maxis(g, identity_order(g), 0,
                                      BallCarvingInner::kGreedy);
  EXPECT_TRUE(is_independent_set(g, res.independent_set));
  EXPECT_GE(res.independent_set.size(), 1u);
}

TEST(BallCarvingTest, GuaranteeHoldsUnderEveryOrderStrategy) {
  // The 2-approximation and the log-locality bound are order-free claims;
  // sweep every named strategy on one instance.
  Rng rng(77);
  const Graph g = gnp(36, 0.14, rng);
  const auto alpha = independence_number(g);
  const double log2n = std::log2(static_cast<double>(g.vertex_count()));
  for (OrderStrategy strategy : all_order_strategies()) {
    const auto order = make_order(g, strategy, 5);
    const auto res = ball_carving_maxis(g, order);
    EXPECT_TRUE(is_independent_set(g, res.independent_set))
        << to_string(strategy);
    EXPECT_GE(2 * res.independent_set.size(), alpha) << to_string(strategy);
    EXPECT_LE(static_cast<double>(res.locality), log2n + 1.0)
        << to_string(strategy);
  }
}

TEST(BallCarvingOracleTest, GreedyAdapterHasNoClaimedGuarantee) {
  BallCarvingOracle oracle(0, BallCarvingInner::kGreedy);
  EXPECT_EQ(oracle.name(), "slocal-carving-greedy");
  EXPECT_FALSE(oracle.lambda_guarantee().has_value());
  const Graph g = ring(12);
  EXPECT_TRUE(is_independent_set(g, oracle.solve(g)));
}

TEST(BallCarvingOracleTest, AdapterReportsGuarantee) {
  BallCarvingOracle oracle;
  EXPECT_EQ(oracle.name(), "slocal-carving");
  ASSERT_TRUE(oracle.lambda_guarantee().has_value());
  EXPECT_DOUBLE_EQ(*oracle.lambda_guarantee(), 2.0);
  const auto is = oracle.solve(ring(10));
  EXPECT_TRUE(is_independent_set(ring(10), is));
  EXPECT_GE(is.size(), 3u);  // alpha = 5, 2-approx floor ceil(5/2)
}

}  // namespace
}  // namespace pslocal
