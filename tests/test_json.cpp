// util/json: the verification parser used by the BenchReport and trace
// tests.  A parser bug would silently weaken those tests, so it gets
// its own coverage.
#include "util/json.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace pslocal {
namespace {

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(json::parse("null").is_null());
  EXPECT_TRUE(json::parse("true").as_bool());
  EXPECT_FALSE(json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(json::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(json::parse("-0.5").as_number(), -0.5);
  EXPECT_DOUBLE_EQ(json::parse("1e3").as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(json::parse("2.5E-2").as_number(), 0.025);
  EXPECT_EQ(json::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonTest, ParsesStringEscapes) {
  const auto v = json::parse("\"a\\\"b\\\\c\\nd\\te\\u001f\\/f\\u00e9\"");
  EXPECT_EQ(v.as_string(), "a\"b\\c\nd\te\x1f/f\xc3\xa9");
}

TEST(JsonTest, ParsesNestedStructures) {
  const auto v = json::parse(
      R"({"a": [1, 2, {"b": null}], "c": {"d": false}, "e": []})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.members().size(), 3u);
  const auto& a = v.at("a");
  ASSERT_TRUE(a.is_array());
  EXPECT_EQ(a.as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(a.at(1).as_number(), 2.0);
  EXPECT_TRUE(a.at(2).at("b").is_null());
  EXPECT_FALSE(v.at("c").at("d").as_bool());
  EXPECT_TRUE(v.at("e").as_array().empty());
  EXPECT_TRUE(v.has("a"));
  EXPECT_FALSE(v.has("zzz"));
}

TEST(JsonTest, PreservesMemberOrder) {
  const auto v = json::parse(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_EQ(v.members().size(), 3u);
  EXPECT_EQ(v.members()[0].first, "z");
  EXPECT_EQ(v.members()[1].first, "a");
  EXPECT_EQ(v.members()[2].first, "m");
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_THROW((void)json::parse(""), ContractViolation);
  EXPECT_THROW((void)json::parse("{"), ContractViolation);
  EXPECT_THROW((void)json::parse("[1,]"), ContractViolation);
  EXPECT_THROW((void)json::parse("{\"a\" 1}"), ContractViolation);
  EXPECT_THROW((void)json::parse("nul"), ContractViolation);
  EXPECT_THROW((void)json::parse("1 2"), ContractViolation);
  EXPECT_THROW((void)json::parse("\"unterminated"), ContractViolation);
  EXPECT_THROW((void)json::parse("\"bad\\q\""), ContractViolation);
  EXPECT_THROW((void)json::parse("--1"), ContractViolation);
  EXPECT_THROW((void)json::parse("\"\x01\""), ContractViolation);
}

TEST(JsonTest, AllowsSurroundingWhitespace) {
  const auto v = json::parse("  \n\t[ 1 , 2 ]\r\n  ");
  EXPECT_EQ(v.as_array().size(), 2u);
}

// --- Hardening: the parser also sits on the serving path (replay files,
// service/workload.hpp), so adversarial inputs must fail cleanly.

TEST(JsonTest, RejectsNestingBeyondDepthLimit) {
  // kMaxDepth+1 unclosed arrays: the depth check must fire before any
  // stack-overflow territory (and before the missing-']' error).
  const std::string deep(json::kMaxDepth + 1, '[');
  EXPECT_THROW((void)json::parse(deep), ContractViolation);
  const std::string deep_obj = [] {
    std::string s;
    for (std::size_t i = 0; i < json::kMaxDepth + 1; ++i) s += "{\"k\":";
    return s;
  }();
  EXPECT_THROW((void)json::parse(deep_obj), ContractViolation);
}

TEST(JsonTest, AcceptsNestingAtTheDepthLimit) {
  std::string at_limit(json::kMaxDepth, '[');
  at_limit.append(json::kMaxDepth, ']');
  const auto v = json::parse(at_limit);
  EXPECT_TRUE(v.is_array());
}

TEST(JsonTest, OverflowingNumbersParseAsNull) {
  // No emitter in this repository writes inf; an overflowing literal
  // normalizes to null instead of smuggling a non-JSON value through.
  EXPECT_TRUE(json::parse("1e999").is_null());
  EXPECT_TRUE(json::parse("-1e999").is_null());
  EXPECT_TRUE(json::parse("[1e999, 2]").at(0).is_null());
  // Large-but-finite values still parse as numbers.
  EXPECT_DOUBLE_EQ(json::parse("1e308").as_number(), 1e308);
}

TEST(JsonTest, RejectsTrailingGarbageAfterDocument) {
  EXPECT_THROW((void)json::parse("{} {}"), ContractViolation);
  EXPECT_THROW((void)json::parse("[1] x"), ContractViolation);
  EXPECT_THROW((void)json::parse("42,"), ContractViolation);
  EXPECT_THROW((void)json::parse("null null"), ContractViolation);
}

TEST(JsonTest, EscapeRoundTripsThroughParse) {
  const std::string nasty = "a\"b\\c\nd\te\rf\x01g";
  const auto v = json::parse('"' + json::escape(nasty) + '"');
  EXPECT_EQ(v.as_string(), nasty);
}

}  // namespace
}  // namespace pslocal
