// util/json: the verification parser used by the BenchReport and trace
// tests.  A parser bug would silently weaken those tests, so it gets
// its own coverage.
#include "util/json.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace pslocal {
namespace {

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(json::parse("null").is_null());
  EXPECT_TRUE(json::parse("true").as_bool());
  EXPECT_FALSE(json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(json::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(json::parse("-0.5").as_number(), -0.5);
  EXPECT_DOUBLE_EQ(json::parse("1e3").as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(json::parse("2.5E-2").as_number(), 0.025);
  EXPECT_EQ(json::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonTest, ParsesStringEscapes) {
  const auto v = json::parse("\"a\\\"b\\\\c\\nd\\te\\u001f\\/f\\u00e9\"");
  EXPECT_EQ(v.as_string(), "a\"b\\c\nd\te\x1f/f\xc3\xa9");
}

TEST(JsonTest, ParsesNestedStructures) {
  const auto v = json::parse(
      R"({"a": [1, 2, {"b": null}], "c": {"d": false}, "e": []})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.members().size(), 3u);
  const auto& a = v.at("a");
  ASSERT_TRUE(a.is_array());
  EXPECT_EQ(a.as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(a.at(1).as_number(), 2.0);
  EXPECT_TRUE(a.at(2).at("b").is_null());
  EXPECT_FALSE(v.at("c").at("d").as_bool());
  EXPECT_TRUE(v.at("e").as_array().empty());
  EXPECT_TRUE(v.has("a"));
  EXPECT_FALSE(v.has("zzz"));
}

TEST(JsonTest, PreservesMemberOrder) {
  const auto v = json::parse(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_EQ(v.members().size(), 3u);
  EXPECT_EQ(v.members()[0].first, "z");
  EXPECT_EQ(v.members()[1].first, "a");
  EXPECT_EQ(v.members()[2].first, "m");
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_THROW((void)json::parse(""), ContractViolation);
  EXPECT_THROW((void)json::parse("{"), ContractViolation);
  EXPECT_THROW((void)json::parse("[1,]"), ContractViolation);
  EXPECT_THROW((void)json::parse("{\"a\" 1}"), ContractViolation);
  EXPECT_THROW((void)json::parse("nul"), ContractViolation);
  EXPECT_THROW((void)json::parse("1 2"), ContractViolation);
  EXPECT_THROW((void)json::parse("\"unterminated"), ContractViolation);
  EXPECT_THROW((void)json::parse("\"bad\\q\""), ContractViolation);
  EXPECT_THROW((void)json::parse("--1"), ContractViolation);
  EXPECT_THROW((void)json::parse("\"\x01\""), ContractViolation);
}

TEST(JsonTest, AllowsSurroundingWhitespace) {
  const auto v = json::parse("  \n\t[ 1 , 2 ]\r\n  ");
  EXPECT_EQ(v.as_array().size(), 2u);
}

}  // namespace
}  // namespace pslocal
