#include "core/problems.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace pslocal {
namespace {

TEST(ProblemCatalogueTest, ContainsThePapersTheorem) {
  const auto& cat = problem_catalogue();
  const auto it = std::find_if(cat.begin(), cat.end(), [](const auto& p) {
    return p.name.find("MaxIS approximation") != std::string::npos;
  });
  ASSERT_NE(it, cat.end());
  EXPECT_EQ(it->status, PSLocalStatus::kPSLocalComplete);
  EXPECT_NE(it->reference.find("Theorem 1.1"), std::string::npos);
}

TEST(ProblemCatalogueTest, MisAndColoringAreOpen) {
  const auto& cat = problem_catalogue();
  std::size_t open = 0;
  for (const auto& p : cat)
    if (p.status == PSLocalStatus::kCompletenessOpen) ++open;
  EXPECT_EQ(open, 2u);  // MIS and (Δ+1)-coloring, the paper's open problems
}

TEST(ProblemCatalogueTest, EveryEntryIsDocumented) {
  for (const auto& p : problem_catalogue()) {
    EXPECT_FALSE(p.name.empty());
    EXPECT_FALSE(p.description.empty());
    EXPECT_FALSE(p.reference.empty());
    EXPECT_FALSE(p.implementation.empty());
    EXPECT_FALSE(to_string(p.status).empty());
  }
}

TEST(ProblemCatalogueTest, EverySelfCheckPasses) {
  for (const auto& p : problem_catalogue()) {
    ASSERT_TRUE(static_cast<bool>(p.self_check)) << p.name;
    EXPECT_TRUE(p.self_check()) << p.name;
  }
}

TEST(ProblemCatalogueTest, CompleteProblemsNameTheirSource) {
  for (const auto& p : problem_catalogue()) {
    if (p.status == PSLocalStatus::kPSLocalComplete) {
      const bool cited = p.reference.find("GKM17") != std::string::npos ||
                         p.reference.find("GHK18") != std::string::npos ||
                         p.reference.find("Theorem 1.1") != std::string::npos;
      EXPECT_TRUE(cited) << p.name;
    }
  }
}

}  // namespace
}  // namespace pslocal
