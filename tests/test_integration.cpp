// Cross-module integration tests: the full completeness narrative.
#include <gtest/gtest.h>

#include "coloring/cf_baselines.hpp"
#include "core/correspondence.hpp"
#include "core/reduction.hpp"
#include "core/simulation.hpp"
#include "hypergraph/generators.hpp"
#include "local/luby_mis.hpp"
#include "local/slocal_compiler.hpp"
#include "mis/degraded_oracle.hpp"
#include "mis/greedy_maxis.hpp"
#include "slocal/ball_carving.hpp"

namespace pslocal {
namespace {

TEST(Integration, CompletenessLoopWithSLocalOracle) {
  // Hardness direction: CF multicoloring -> MaxIS approximation, with the
  // oracle being the *containment* algorithm (SLOCAL ball carving, a
  // 2-approximation).  This closes the loop of Theorem 1.1: a P-SLOCAL
  // MaxIS approximation solves the P-SLOCAL-complete CF multicoloring.
  Rng rng(2024);
  PlantedCfParams params;
  params.n = 32;
  params.m = 20;
  params.k = 2;
  const auto inst = planted_cf_colorable(params, rng);

  BallCarvingOracle oracle;
  ReductionOptions opts;
  opts.k = 2;
  const auto res = cf_multicoloring_via_maxis(inst.hypergraph, oracle, opts);
  ASSERT_TRUE(res.success);
  EXPECT_TRUE(is_conflict_free(inst.hypergraph, res.coloring));
  // lambda = 2 guarantee propagated from the oracle into the rho bound.
  EXPECT_EQ(res.rho_bound, reduction_phase_bound(2.0, 20));
  EXPECT_TRUE(res.within_rho);
}

TEST(Integration, ReductionBeatsFreshBaselineOnColors) {
  // E7's headline comparison at test scale: for m >> k ln m the reduction
  // must use far fewer colors than one-fresh-color-per-edge.
  Rng rng(31);
  PlantedCfParams params;
  params.n = 64;
  params.m = 120;
  params.k = 3;
  const auto inst = planted_cf_colorable(params, rng);

  GreedyMinDegreeOracle oracle;
  ReductionOptions opts;
  opts.k = 3;
  const auto res = cf_multicoloring_via_maxis(inst.hypergraph, oracle, opts);
  ASSERT_TRUE(res.success);

  const auto fresh = fresh_color_baseline(inst.hypergraph);
  EXPECT_LT(res.colors_used, fresh.palette_size() / 2)
      << "reduction=" << res.colors_used << " fresh=" << fresh.palette_size();
}

TEST(Integration, DyadicBaselineMatchesReductionOnIntervals) {
  Rng rng(17);
  const auto h = interval_hypergraph(64, 40, 2, 10, rng);
  // Dyadic coloring: conflict-free with <= log2(64)+1 = 7 colors.
  const auto dyadic = dyadic_interval_cf_coloring(64);
  ASSERT_TRUE(is_conflict_free(h, dyadic));
  EXPECT_LE(cf_color_count(dyadic), 7u);

  // The reduction with k = 7 (intervals admit a CF 7-coloring by the
  // dyadic witness) also succeeds.
  GreedyMinDegreeOracle oracle;
  ReductionOptions opts;
  opts.k = 7;
  const auto res = cf_multicoloring_via_maxis(h, oracle, opts);
  EXPECT_TRUE(res.success);
}

TEST(Integration, PerPhaseLemmaChecksHoldUnderHeuristicOracle) {
  // Run the reduction manually phase by phase, re-validating both lemma
  // clauses with the library checkers at every step.
  Rng rng(23);
  PlantedCfParams params;
  params.n = 30;
  params.m = 18;
  params.k = 2;
  const auto inst = planted_cf_colorable(params, rng);

  Hypergraph current = inst.hypergraph.restrict_edges(
      std::vector<bool>(inst.hypergraph.edge_count(), true));
  GreedyMinDegreeOracle oracle;
  std::size_t guard = 0;
  while (current.edge_count() > 0) {
    ASSERT_LT(guard++, 50u);
    const ConflictGraph cg(current, 2);
    // Lemma a) on the planted coloring restricted to the current phase.
    const auto lemma_a =
        check_lemma_a(cg, CfColoring(inst.planted_coloring));
    EXPECT_TRUE(lemma_a.applicable);
    EXPECT_TRUE(lemma_a.attains_maximum);

    const auto is = oracle.solve(cg.graph());
    const auto lemma_b = check_lemma_b(cg, is);
    EXPECT_TRUE(lemma_b.independent);
    EXPECT_TRUE(lemma_b.well_defined);
    EXPECT_TRUE(lemma_b.happy_at_least_is_size);

    const auto induced = coloring_from_is(cg, is);
    const auto happy = happy_edges(current, induced.coloring);
    std::vector<bool> keep(current.edge_count());
    bool removed_any = false;
    for (EdgeId e = 0; e < current.edge_count(); ++e) {
      keep[e] = !happy[e];
      removed_any = removed_any || happy[e];
    }
    ASSERT_TRUE(removed_any);
    current = current.restrict_edges(keep);
  }
}

TEST(Integration, SimulabilityHoldsAcrossReductionPhases) {
  // The LOCAL simulation claim must hold for every phase's conflict graph,
  // not just the first (H_i changes shape as edges disappear).
  Rng rng(29);
  PlantedCfParams params;
  params.n = 28;
  params.m = 16;
  params.k = 2;
  const auto inst = planted_cf_colorable(params, rng);

  Hypergraph current = inst.hypergraph.restrict_edges(
      std::vector<bool>(inst.hypergraph.edge_count(), true));
  ControlledLambdaOracle oracle(4.0);  // several phases
  std::size_t guard = 0;
  while (current.edge_count() > 0) {
    ASSERT_LT(guard++, 50u);
    const ConflictGraph cg(current, 2);
    EXPECT_TRUE(analyze_host_mapping(cg).one_round_simulable);
    const auto is = oracle.solve(cg.graph());
    const auto induced = coloring_from_is(cg, is);
    const auto happy = happy_edges(current, induced.coloring);
    std::vector<bool> keep(current.edge_count());
    for (EdgeId e = 0; e < current.edge_count(); ++e) keep[e] = !happy[e];
    current = current.restrict_edges(keep);
  }
}

TEST(Integration, LubyOnConflictGraphRunsInSimulatedLocal) {
  // E9 at test scale: Luby's MIS executes on G_k (simulated in H with
  // dilation 1) and its output drives a correct phase.
  Rng rng(37);
  PlantedCfParams params;
  params.n = 24;
  params.m = 12;
  params.k = 2;
  const auto inst = planted_cf_colorable(params, rng);
  const ConflictGraph cg(inst.hypergraph, 2);
  ASSERT_TRUE(analyze_host_mapping(cg).one_round_simulable);

  const auto luby = luby_mis(cg.graph(), 5);
  ASSERT_TRUE(luby.completed);
  const auto report = check_lemma_b(cg, luby.independent_set);
  EXPECT_TRUE(report.independent);
  EXPECT_TRUE(report.happy_at_least_is_size);
}

}  // namespace
}  // namespace pslocal
