#include "slocal/matching.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.hpp"

namespace pslocal {
namespace {

std::vector<VertexId> identity_order(const Graph& g) {
  std::vector<VertexId> order(g.vertex_count());
  std::iota(order.begin(), order.end(), VertexId{0});
  return order;
}

TEST(MatchingVerifierTest, Basics) {
  const Graph g = path(5);
  EXPECT_TRUE(is_matching(g, {{0, 1}, {2, 3}}));
  EXPECT_FALSE(is_matching(g, {{0, 1}, {1, 2}}));  // shared endpoint
  EXPECT_FALSE(is_matching(g, {{0, 2}}));          // not an edge
  EXPECT_TRUE(is_maximal_matching(g, {{0, 1}, {2, 3}}));
  EXPECT_FALSE(is_maximal_matching(g, {{1, 2}}));  // edge {3,4} free
}

TEST(MaximumMatchingTest, KnownValues) {
  EXPECT_EQ(maximum_matching_size(path(5)), 2u);
  EXPECT_EQ(maximum_matching_size(path(6)), 3u);
  EXPECT_EQ(maximum_matching_size(ring(6)), 3u);
  EXPECT_EQ(maximum_matching_size(ring(7)), 3u);
  EXPECT_EQ(maximum_matching_size(complete(5)), 2u);
  EXPECT_EQ(maximum_matching_size(complete_bipartite(3, 5)), 3u);
  EXPECT_EQ(maximum_matching_size(Graph::from_edges(4, {})), 0u);
}

class GreedyMatchingSeedTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(GreedyMatchingSeedTest, MaximalWithLocalityOneAndHalfOptimal) {
  Rng rng(GetParam());
  const Graph g = gnp(22, 0.18, rng);
  const auto res = slocal_greedy_matching(g, identity_order(g));
  EXPECT_TRUE(is_maximal_matching(g, res.matching));
  if (g.edge_count() > 0) {
    EXPECT_EQ(res.locality, 1u);
  }
  // Maximal matching is a 2-approximation of maximum matching.
  const auto nu = maximum_matching_size(g);
  EXPECT_GE(2 * res.matching.size(), nu);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyMatchingSeedTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(GreedyMatchingTest, OrderSensitivityOnAPath) {
  const Graph g = path(4);  // edges 0-1, 1-2, 2-3
  // Identity order: 0 grabs 1, 2 grabs 3 -> perfect matching.
  const auto a = slocal_greedy_matching(g, {0, 1, 2, 3});
  EXPECT_EQ(a.matching.size(), 2u);
  // Processing 1 first: 1 grabs 0, then 2 grabs 3.
  const auto b = slocal_greedy_matching(g, {1, 0, 2, 3});
  EXPECT_EQ(b.matching.size(), 2u);
}

TEST(GreedyMatchingTest, EdgelessAndSingletonGraphs) {
  const Graph g = Graph::from_edges(3, {});
  const auto res = slocal_greedy_matching(g, identity_order(g));
  EXPECT_TRUE(res.matching.empty());
  EXPECT_EQ(res.locality, 1u);  // nodes still look at (empty) neighborhoods
}

}  // namespace
}  // namespace pslocal
