// net/client: pipelined out-of-order response reassociation, retry and
// backoff determinism, and deadline behavior — driven against a raw
// scripted socket so the tests control exactly what crosses the wire.
#include "net/client.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "util/hash.hpp"
#include "util/rng.hpp"

namespace pslocal::net {
namespace {

service::Request tiny_request() {
  service::Request req;
  req.kind = service::RequestKind::kGreedyMaxis;
  req.instance = std::make_shared<Hypergraph>(
      5, std::vector<std::vector<VertexId>>{{0, 1}, {1, 2, 3}, {3, 4}});
  req.instance_hash = hash_hypergraph(*req.instance);
  req.k = 2;
  return req;
}

/// A blocking loopback server whose behavior is the `script` callback:
/// it gets the accepted connection fd and does whatever the test needs
/// (read frames, answer out of order, NACK, stay silent...).
class FakeServer {
 public:
  explicit FakeServer(std::function<void(int fd)> script) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(listen_fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    EXPECT_EQ(::listen(listen_fd_, 1), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                            &len),
              0);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this, script = std::move(script)] {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd >= 0) {
        script(fd);
        ::close(fd);
      }
    });
  }

  ~FakeServer() {
    if (thread_.joinable()) thread_.join();
    if (listen_fd_ >= 0) ::close(listen_fd_);
  }

  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
};

/// Read exactly `n` complete frames off a blocking fd.
std::vector<wire::Frame> read_frames(int fd, std::size_t n) {
  std::vector<wire::Frame> frames;
  wire::FrameDecoder dec;
  char buf[16 * 1024];
  while (frames.size() < n) {
    wire::Frame frame;
    const auto r = dec.next(frame);
    if (r == wire::FrameDecoder::Result::kFrame) {
      frames.push_back(std::move(frame));
      continue;
    }
    if (r == wire::FrameDecoder::Result::kCorrupt) {
      ADD_FAILURE() << "fake server saw corrupt stream: " << dec.error();
      return frames;
    }
    const ssize_t got = ::recv(fd, buf, sizeof buf, 0);
    if (got <= 0) {
      ADD_FAILURE() << "fake server: client hung up early";
      return frames;
    }
    dec.feed(buf, static_cast<std::size_t>(got));
  }
  return frames;
}

void send_all(int fd, const std::string& bytes) {
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + written,
                             bytes.size() - written, MSG_NOSIGNAL);
    if (n <= 0) return;
    written += static_cast<std::size_t>(n);
  }
}

std::string ok_response_frame(std::uint64_t id, const std::string& result) {
  service::Response resp;
  resp.status = service::Response::Status::kOk;
  resp.key = 77;
  resp.result = result;
  return wire::encode_frame(
      {wire::FrameKind::kResponse, id, wire::encode_response(resp)});
}

Client connect_client(std::uint16_t port) {
  Client::Config cc;
  cc.port = port;
  cc.io_timeout_ms = 5000;
  Client client(cc);
  client.connect();
  return client;
}

TEST(NetClientTest, ReassociatesOutOfOrderResponses) {
  // The server answers the two pipelined requests in REVERSE order; each
  // wait(id) must still get its own response, whichever wait runs first.
  FakeServer server([](int fd) {
    const auto frames = read_frames(fd, 2);
    ASSERT_EQ(frames.size(), 2u);
    send_all(fd, ok_response_frame(frames[1].request_id, "second"));
    send_all(fd, ok_response_frame(frames[0].request_id, "first"));
  });

  Client client = connect_client(server.port());
  const service::Request req = tiny_request();
  const std::uint64_t id_a = client.send(req);
  const std::uint64_t id_b = client.send(req);
  ASSERT_NE(id_a, id_b);
  EXPECT_EQ(client.inflight(), 2u);

  // Wait in send order even though arrival order is b-then-a: the b
  // frame is parked while wait(id_a) runs, then claimed by wait(id_b).
  const Client::Result ra = client.wait(id_a);
  ASSERT_EQ(ra.outcome, Client::Outcome::kOk) << ra.error;
  EXPECT_EQ(ra.response.result, "first");
  EXPECT_EQ(ra.response.id, id_a);
  EXPECT_EQ(client.parked(), 1u);

  const Client::Result rb = client.wait(id_b);
  ASSERT_EQ(rb.outcome, Client::Outcome::kOk) << rb.error;
  EXPECT_EQ(rb.response.result, "second");
  EXPECT_EQ(rb.response.id, id_b);
  EXPECT_EQ(client.inflight(), 0u);
  EXPECT_EQ(client.parked(), 0u);
}

TEST(NetClientTest, BackoffScheduleIsDeterministicUnderFixedSeed) {
  Client::RetryPolicy policy;
  policy.base_delay_us = 200;
  policy.max_delay_us = 100000;
  policy.seed = 9;

  const auto a = Client::backoff_delays_us(policy, 10);
  const auto b = Client::backoff_delays_us(policy, 10);
  EXPECT_EQ(a, b);  // same policy -> byte-identical schedule

  // The schedule is exactly the documented formula over the policy Rng.
  Rng rng(policy.seed);
  for (std::size_t r = 0; r < a.size(); ++r) {
    std::uint64_t d = policy.base_delay_us << r;
    if (d > policy.max_delay_us) d = policy.max_delay_us;
    const std::uint64_t expected = d / 2 + rng.next_below(d / 2 + 1);
    EXPECT_EQ(a[r], expected) << "retry " << r;
    EXPECT_GE(a[r], d / 2);
    EXPECT_LE(a[r], d);
  }

  Client::RetryPolicy other = policy;
  other.seed = 10;
  EXPECT_NE(Client::backoff_delays_us(other, 10), a)
      << "different seed produced the same jitter";
}

TEST(NetClientTest, BackoffScheduleIsPureAcrossClientInstances) {
  // The schedule is a pure function of the policy seed: no connection
  // state, request-id counter, or prior retry activity feeds the
  // jitter.  Two separate clients each burn two queue-full retries;
  // the schedule queried before, between, and after is byte-identical.
  Client::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.base_delay_us = 50;
  policy.max_delay_us = 200;
  policy.seed = 31;
  const auto pristine = Client::backoff_delays_us(policy, 8);

  const auto nack_twice_then_serve = [](int fd) {
    for (int i = 0; i < 2; ++i) {
      const auto frames = read_frames(fd, 1);
      ASSERT_EQ(frames.size(), 1u);
      send_all(fd, wire::encode_frame(
                       {wire::FrameKind::kNack, frames[0].request_id,
                        wire::encode_nack(wire::NackCode::kQueueFull)}));
    }
    const auto frames = read_frames(fd, 1);
    ASSERT_EQ(frames.size(), 1u);
    send_all(fd, ok_response_frame(frames[0].request_id, "served"));
  };

  std::vector<std::size_t> attempts;
  for (int instance = 0; instance < 2; ++instance) {
    FakeServer server(nack_twice_then_serve);
    Client client = connect_client(server.port());
    const Client::Result r = client.call_with_retry(tiny_request(), policy);
    ASSERT_EQ(r.outcome, Client::Outcome::kOk) << r.error;
    attempts.push_back(r.attempts);
    EXPECT_EQ(Client::backoff_delays_us(policy, 8), pristine)
        << "client activity perturbed the schedule";
  }
  EXPECT_EQ(attempts[0], attempts[1])
      << "same policy, same script, different retry behavior";
}

TEST(NetClientTest, CallWithRetryResendsAfterQueueFullNacks) {
  // NACK the first two sends, serve the third: call_with_retry must
  // come back with kOk and an attempt count of exactly 3.
  FakeServer server([](int fd) {
    for (int i = 0; i < 2; ++i) {
      const auto frames = read_frames(fd, 1);
      ASSERT_EQ(frames.size(), 1u);
      send_all(fd, wire::encode_frame(
                       {wire::FrameKind::kNack, frames[0].request_id,
                        wire::encode_nack(wire::NackCode::kQueueFull)}));
    }
    const auto frames = read_frames(fd, 1);
    ASSERT_EQ(frames.size(), 1u);
    send_all(fd, ok_response_frame(frames[0].request_id, "served"));
  });

  Client client = connect_client(server.port());
  Client::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.base_delay_us = 50;  // keep the test fast
  policy.max_delay_us = 200;
  const Client::Result r = client.call_with_retry(tiny_request(), policy);
  ASSERT_EQ(r.outcome, Client::Outcome::kOk) << r.error;
  EXPECT_EQ(r.attempts, 3u);
  EXPECT_EQ(r.response.result, "served");
}

TEST(NetClientTest, ShutdownNackIsNotRetried) {
  FakeServer server([](int fd) {
    const auto frames = read_frames(fd, 1);
    ASSERT_EQ(frames.size(), 1u);
    send_all(fd, wire::encode_frame(
                     {wire::FrameKind::kNack, frames[0].request_id,
                      wire::encode_nack(wire::NackCode::kShutdown)}));
  });

  Client client = connect_client(server.port());
  Client::RetryPolicy policy;
  policy.max_attempts = 5;
  const Client::Result r = client.call_with_retry(tiny_request(), policy);
  EXPECT_EQ(r.outcome, Client::Outcome::kNack);
  EXPECT_EQ(r.nack_code, wire::NackCode::kShutdown);
  EXPECT_EQ(r.attempts, 1u) << "shutdown NACKs must not be retried";
}

TEST(NetClientTest, WaitTimesOutInsteadOfHanging) {
  // The server reads the request and goes silent; the signal that
  // releases it is the client closing after its timeout.
  FakeServer server([](int fd) {
    (void)read_frames(fd, 1);
    char buf[64];
    (void)::recv(fd, buf, sizeof buf, 0);  // blocks until client closes
  });
  {
    Client client = connect_client(server.port());
    const std::uint64_t id = client.send(tiny_request());
    const Client::Result r = client.wait(id, /*timeout_ms=*/100);
    EXPECT_EQ(r.outcome, Client::Outcome::kTimeout);
    EXPECT_EQ(client.inflight(), 1u) << "timed-out id remains in flight";
  }  // destructor closes the socket, unblocking the fake server
}

}  // namespace
}  // namespace pslocal::net
