// BenchReport JSON emission: escaping, numeric-cell detection, NaN/inf
// handling and the obs section — validated by actually parsing the
// output with util/json rather than by string scraping.
#include "util/bench_report.hpp"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "obs/obs.hpp"
#include "util/json.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

namespace pslocal {
namespace {

Options make_options(std::initializer_list<const char*> extra = {}) {
  std::vector<const char*> argv = {"test_bench_report"};
  argv.insert(argv.end(), extra.begin(), extra.end());
  return Options(static_cast<int>(argv.size()), argv.data());
}

TEST(BenchReportTest, EscapesStringsInAllPositions) {
  BenchReport report("esc\"ape\\name", make_options());
  report.metric("quote\"key", std::string("va\\lue\nwith\tcontrol\x01end"));
  Table t("cap\"tion \\ with\nnewline");
  t.header({"col\"one", "plain"});
  t.row({"cell\\\"mix", "ok"});
  report.add_table(t);

  const auto doc = json::parse(report.to_json());
  EXPECT_EQ(doc.at("bench").as_string(), "esc\"ape\\name");
  EXPECT_EQ(doc.at("metrics").at("quote\"key").as_string(),
            "va\\lue\nwith\tcontrol\x01end");
  const auto& table = doc.at("tables").at(0);
  EXPECT_EQ(table.at("caption").as_string(), "cap\"tion \\ with\nnewline");
  EXPECT_EQ(table.at("columns").at(0).as_string(), "col\"one");
  EXPECT_EQ(table.at("rows").at(0).at(0).as_string(), "cell\\\"mix");
}

TEST(BenchReportTest, DetectsNumericVersusStringCells) {
  BenchReport report("cells", make_options());
  Table t("numeric detection");
  t.header({"a", "b", "c", "d", "e", "f", "g"});
  t.row({"12", "-0.5", "1e3", "1.500x", "75%", "", "nan"});
  report.add_table(t);

  const auto row = json::parse(report.to_json()).at("tables").at(0)
                       .at("rows").at(0);
  EXPECT_TRUE(row.at(0).is_number());
  EXPECT_DOUBLE_EQ(row.at(0).as_number(), 12.0);
  EXPECT_TRUE(row.at(1).is_number());
  EXPECT_DOUBLE_EQ(row.at(1).as_number(), -0.5);
  EXPECT_TRUE(row.at(2).is_number());
  EXPECT_DOUBLE_EQ(row.at(2).as_number(), 1000.0);
  // Decorated numerics, empty cells and non-finite spellings stay strings.
  EXPECT_TRUE(row.at(3).is_string());
  EXPECT_TRUE(row.at(4).is_string());
  EXPECT_TRUE(row.at(5).is_string());
  EXPECT_TRUE(row.at(6).is_string());
}

TEST(BenchReportTest, NonFiniteMetricsSerializeAsNull) {
  BenchReport report("nonfinite", make_options());
  report.metric("nan", std::nan(""));
  report.metric("inf", std::numeric_limits<double>::infinity());
  report.metric("neg_inf", -std::numeric_limits<double>::infinity());
  report.metric("finite", 2.5);

  const auto doc = json::parse(report.to_json());
  const auto& metrics = doc.at("metrics");
  EXPECT_TRUE(metrics.at("nan").is_null());
  EXPECT_TRUE(metrics.at("inf").is_null());
  EXPECT_TRUE(metrics.at("neg_inf").is_null());
  EXPECT_DOUBLE_EQ(metrics.at("finite").as_number(), 2.5);
}

TEST(BenchReportTest, RecordsOptionsVerbatimPlusEffectiveThreads) {
  const auto opts =
      make_options({"--seed=7", "--label=run one", "--json-out=none"});
  BenchReport report("opts", opts);
  const auto doc = json::parse(report.to_json());
  const auto& options = doc.at("options");
  EXPECT_DOUBLE_EQ(options.at("seed").as_number(), 7.0);
  EXPECT_EQ(options.at("label").as_string(), "run one");
  // --threads was absent, so the effective pool size is recorded.
  EXPECT_TRUE(options.at("threads").is_number());
  EXPECT_EQ(report.write(), "");  // --json-out=none suppresses the file
}

TEST(BenchReportTest, EmitsObsSection) {
  BenchReport report("obs_section", make_options());
  const auto doc = json::parse(report.to_json());
  ASSERT_TRUE(doc.has("obs"));
  const auto& obs_section = doc.at("obs");
  EXPECT_TRUE(obs_section.at("counters").is_object());
  EXPECT_TRUE(obs_section.at("gauges").is_object());
  EXPECT_TRUE(obs_section.at("histograms").is_object());
#if PSLOCAL_OBS_ENABLED
  // Touch a metric of our own so the check doesn't depend on which
  // other tests ran before this one.
  obs::Counter("bench_report_test.touch").add(1);
  const auto doc2 = json::parse(report.to_json());
  EXPECT_DOUBLE_EQ(
      doc2.at("obs").at("counters").at("bench_report_test.touch").as_number(),
      1.0);
#else
  EXPECT_TRUE(obs_section.at("counters").members().empty());
#endif
}

}  // namespace
}  // namespace pslocal
