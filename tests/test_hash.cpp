// util/hash: the content-addressing layer of the serving cache.  Pins
// the FNV-1a constants (cache keys must be stable across builds) and the
// structural hashing / hex64 wire format.
#include "util/hash.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/graph.hpp"
#include "hypergraph/hypergraph.hpp"
#include "hypergraph/mutation.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace pslocal {
namespace {

TEST(HashTest, Fnv1a64MatchesReferenceVectors) {
  // Offset basis and standard test vectors of 64-bit FNV-1a.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(HashTest, UpdateU64IsLengthPrefixFree) {
  // update_u64 writes fixed-width little-endian words, so (1, 2) and
  // (12, ...) cannot collide by concatenation ambiguity.
  Fnv1a64 a;
  a.update_u64(1);
  a.update_u64(2);
  Fnv1a64 b;
  b.update_u64(0x0000000200000001ULL);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(HashTest, StringUpdateIsLengthPrefixed) {
  Fnv1a64 a;
  a.update_string("ab");
  a.update_string("c");
  Fnv1a64 b;
  b.update_string("a");
  b.update_string("bc");
  EXPECT_NE(a.digest(), b.digest());
}

TEST(HashTest, HashCombineDependsOnOrder) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
  EXPECT_NE(hash_combine(0, 0), 0u);
}

TEST(HashTest, HypergraphHashSeparatesStructure) {
  const Hypergraph a(4, {{0, 1}, {2, 3}});
  const Hypergraph same(4, {{0, 1}, {2, 3}});
  const Hypergraph other_edge(4, {{0, 1}, {2, 3, 0}});
  const Hypergraph other_n(5, {{0, 1}, {2, 3}});
  const Hypergraph swapped(4, {{2, 3}, {0, 1}});
  EXPECT_EQ(hash_hypergraph(a), hash_hypergraph(same));
  EXPECT_NE(hash_hypergraph(a), hash_hypergraph(other_edge));
  EXPECT_NE(hash_hypergraph(a), hash_hypergraph(other_n));
  // Edge identity matters for conflict graphs, so order is significant.
  EXPECT_NE(hash_hypergraph(a), hash_hypergraph(swapped));
}

TEST(HashTest, GraphHashSeparatesStructure) {
  const auto make = [](VertexId u, VertexId v) {
    GraphBuilder builder(3);
    builder.add_edge(u, v);
    return builder.build();
  };
  EXPECT_EQ(hash_graph(make(0, 1)), hash_graph(make(0, 1)));
  EXPECT_NE(hash_graph(make(0, 1)), hash_graph(make(0, 2)));
}

TEST(HashTest, CanonicalBytesMatchesHash) {
  const Hypergraph h(6, {{0, 1, 2}, {3, 4}, {5}});
  EXPECT_EQ(fnv1a64(canonical_bytes(h)), hash_hypergraph(h));
}

TEST(HashTest, Hex64RoundTrips) {
  for (const std::uint64_t v :
       {0ULL, 1ULL, 0xdeadbeefULL, ~0ULL, 0x0123456789abcdefULL}) {
    const std::string s = hex64(v);
    EXPECT_EQ(s.size(), 16u);
    EXPECT_EQ(parse_hex64(s), v);
  }
  EXPECT_EQ(hex64(0x0123456789abcdefULL), "0123456789abcdef");
}

TEST(HashTest, ParseHex64RejectsBadInput) {
  EXPECT_THROW((void)parse_hex64("123"), ContractViolation);
  EXPECT_THROW((void)parse_hex64("0123456789abcdeg"), ContractViolation);
  EXPECT_THROW((void)parse_hex64("0123456789ABCDEF"), ContractViolation);
}

TEST(HashTest, Mix64MatchesSplitMix64Finalizer) {
  // mix64(x) is pinned to one SplitMix64 step from state x — the shard
  // ring's placement (shard/ring.hpp) depends on these exact bits.
  for (const std::uint64_t x :
       {0ULL, 1ULL, 2ULL, 0xdeadbeefULL, ~0ULL, 0x0123456789abcdefULL}) {
    EXPECT_EQ(mix64(x), SplitMix64(x).next()) << "x=" << x;
  }
  // Compile-time usable, and zero is not a fixed point.
  static_assert(mix64(0) != 0);
  static_assert(mix64(1) != mix64(2));
}

TEST(HashTest, Mix64AvalanchesSingleBitFlips) {
  // Flipping any one input bit must flip roughly half the output bits.
  // [8, 56] is a generous band (binomial(64, 1/2) stays within it with
  // overwhelming probability); the qc `mix64_avalanche` property runs
  // the randomized version of this continuously.
  Rng rng(2026);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::uint64_t x = rng.next_u64();
    const std::uint64_t flipped = x ^ (1ULL << rng.next_below(64));
    const int changed = __builtin_popcountll(mix64(x) ^ mix64(flipped));
    ASSERT_GE(changed, 8) << "x=" << x;
    ASSERT_LE(changed, 56) << "x=" << x;
  }
}

TEST(HashTest, Mix64DecorrelatesSequentialInputs) {
  // Sequential integers (shard/vnode indices) and shared-prefix FNV
  // digests are the ring's actual inputs; their images must not cluster.
  std::vector<std::uint64_t> images;
  for (std::uint64_t i = 0; i < 4096; ++i) images.push_back(mix64(i));
  std::sort(images.begin(), images.end());
  EXPECT_EQ(std::unique(images.begin(), images.end()), images.end());
  // Adjacent inputs land far apart: no pair of consecutive integers
  // maps within 2^32 of each other (would skew ring arc lengths).
  for (std::uint64_t i = 0; i + 1 < 4096; ++i) {
    const std::uint64_t a = mix64(i);
    const std::uint64_t b = mix64(i + 1);
    const std::uint64_t gap = a > b ? a - b : b - a;
    ASSERT_GT(gap, 1ULL << 32) << "i=" << i;
  }
}

TEST(HashTest, OneFieldFlipNeverCollidesOver10kPairs) {
  // Cache-key smoke: 10k random multi-field payload pairs differing in
  // exactly one field (a single flipped bit of one word) must digest
  // differently.  A collision here would let two distinct requests
  // share a cache entry.
  Rng rng(2026);
  for (int trial = 0; trial < 10000; ++trial) {
    const std::size_t fields = 1 + rng.next_below(8);
    const std::size_t flip = rng.next_below(fields);
    const std::uint64_t delta = 1ULL << rng.next_below(64);
    Fnv1a64 a, b;
    for (std::size_t i = 0; i < fields; ++i) {
      const std::uint64_t w = rng.next_u64();
      a.update_u64(w);
      b.update_u64(i == flip ? w ^ delta : w);
    }
    ASSERT_NE(a.digest(), b.digest())
        << "trial " << trial << " fields=" << fields << " flip=" << flip;
  }
}

TEST(HashTest, Hex64RoundTripsRandomWords) {
  Rng rng(77);
  for (int trial = 0; trial < 10000; ++trial) {
    const std::uint64_t v = rng.next_u64();
    ASSERT_EQ(parse_hex64(hex64(v)), v) << hex64(v);
  }
}

TEST(HashTest, EpochChainOneMutationFlipSweep10k) {
  // Cache keys are chained per mutation epoch: two scripts that differ
  // in exactly one step must diverge at that link — and stay diverged
  // after a shared suffix step (mix64 decorrelates the chain, so a
  // collision cannot "heal").  10k random one-mutation flips.
  Rng rng(99);
  const auto draw = [&rng] {
    switch (rng.next_below(4)) {
      case 0: {
        std::vector<VertexId> vs(1 + rng.next_below(3));
        for (auto& v : vs) v = static_cast<VertexId>(rng.next_below(64));
        return Mutation::add_edge(std::move(vs));
      }
      case 1:
        return Mutation::remove_edge(
            static_cast<EdgeId>(rng.next_below(64)));
      case 2:
        return Mutation::add_vertex();
      default:
        return Mutation::remove_vertex(
            static_cast<VertexId>(rng.next_below(64)));
    }
  };
  for (int trial = 0; trial < 10000; ++trial) {
    const std::uint64_t epoch = rng.next_u64();
    const Mutation a = draw();
    const Mutation b = draw();
    if (a == b) continue;
    ASSERT_NE(hash_mutation(a), hash_mutation(b))
        << "trial " << trial << ": " << describe(a) << " vs " << describe(b);
    ASSERT_NE(advance_epoch(epoch, a), advance_epoch(epoch, b))
        << "trial " << trial;
    const Mutation shared = draw();
    ASSERT_NE(advance_epoch(advance_epoch(epoch, a), shared),
              advance_epoch(advance_epoch(epoch, b), shared))
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace pslocal
