#include "util/bitset.hpp"

#include <gtest/gtest.h>

namespace pslocal {
namespace {

class BitsetSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitsetSizeTest, SetTestResetRoundtrip) {
  const std::size_t n = GetParam();
  DynamicBitset b(n);
  EXPECT_EQ(b.size(), n);
  EXPECT_TRUE(b.none());
  for (std::size_t i = 0; i < n; i += 3) b.set(i);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(b.test(i), i % 3 == 0);
  EXPECT_EQ(b.count(), (n + 2) / 3);
  for (std::size_t i = 0; i < n; i += 3) b.reset(i);
  EXPECT_TRUE(b.none());
}

TEST_P(BitsetSizeTest, SetAllRespectsPadding) {
  const std::size_t n = GetParam();
  DynamicBitset b(n);
  b.set_all();
  EXPECT_EQ(b.count(), n);
  EXPECT_EQ(b.any(), n > 0);
  b.reset_all();
  EXPECT_EQ(b.count(), 0u);
}

TEST_P(BitsetSizeTest, FindFirstScansAll) {
  const std::size_t n = GetParam();
  DynamicBitset b(n);
  if (n == 0) {
    EXPECT_EQ(b.find_first(), 0u);
    return;
  }
  b.set(n - 1);
  EXPECT_EQ(b.find_first(), n - 1);
  EXPECT_EQ(b.find_first(n - 1), n - 1);
  EXPECT_EQ(b.find_first(n), n);  // past the end
  if (n > 2) {
    b.set(1);
    EXPECT_EQ(b.find_first(), 1u);
    EXPECT_EQ(b.find_first(2), n - 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitsetSizeTest,
                         ::testing::Values(0, 1, 2, 63, 64, 65, 127, 128, 129,
                                           1000));

TEST(Bitset, OutOfRangeViolatesContract) {
  DynamicBitset b(10);
  EXPECT_THROW(b.set(10), ContractViolation);
  EXPECT_THROW((void)b.test(10), ContractViolation);
  EXPECT_THROW(b.reset(10), ContractViolation);
}

TEST(Bitset, BinaryOps) {
  DynamicBitset a(100), b(100);
  a.set(1);
  a.set(70);
  a.set(99);
  b.set(70);
  b.set(2);

  DynamicBitset both = a;
  both &= b;
  EXPECT_EQ(both.count(), 1u);
  EXPECT_TRUE(both.test(70));

  DynamicBitset either = a;
  either |= b;
  EXPECT_EQ(either.count(), 4u);

  DynamicBitset diff = a;
  diff.andnot(b);
  EXPECT_EQ(diff.count(), 2u);
  EXPECT_TRUE(diff.test(1));
  EXPECT_TRUE(diff.test(99));
  EXPECT_FALSE(diff.test(70));

  EXPECT_TRUE(a.intersects(b));
  EXPECT_EQ(a.intersection_count(b), 1u);
  DynamicBitset c(100);
  c.set(3);
  EXPECT_FALSE(a.intersects(c));
}

TEST(Bitset, SizeMismatchViolatesContract) {
  DynamicBitset a(10), b(11);
  EXPECT_THROW(a &= b, ContractViolation);
  EXPECT_THROW(a |= b, ContractViolation);
  EXPECT_THROW(a.andnot(b), ContractViolation);
  EXPECT_THROW((void)a.intersects(b), ContractViolation);
}

TEST(Bitset, ToIndices) {
  DynamicBitset b(200);
  b.set(0);
  b.set(64);
  b.set(199);
  const auto idx = b.to_indices();
  EXPECT_EQ(idx, (std::vector<std::size_t>{0, 64, 199}));
}

TEST(Bitset, Equality) {
  DynamicBitset a(50), b(50);
  EXPECT_EQ(a, b);
  a.set(10);
  EXPECT_NE(a, b);
  b.set(10);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace pslocal
