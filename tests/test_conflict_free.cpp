#include "coloring/conflict_free.hpp"

#include <gtest/gtest.h>

#include "coloring/cf_baselines.hpp"
#include "hypergraph/generators.hpp"

namespace pslocal {
namespace {

TEST(HappyEdgeTest, SingleColoringCases) {
  const Hypergraph h(4, {{0, 1, 2}, {2, 3}});
  // Edge 0 = {0,1,2} under {1,2,2,2}: color 1 unique at vertex 0 -> happy;
  // edge 1 = {2,3}: both carry color 2 -> unhappy.
  const CfColoring f{1, 2, 2, 2};
  EXPECT_TRUE(is_edge_happy(h, 0, f));
  EXPECT_FALSE(is_edge_happy(h, 1, f));
  // An uncolored vertex does not spoil uniqueness: {2, ⊥} is happy.
  const CfColoring g{1, 2, 2, kCfUncolored};
  EXPECT_TRUE(is_edge_happy(h, 1, g));
}

TEST(HappyEdgeTest, AllSameColorIsUnhappy) {
  const Hypergraph h(3, {{0, 1, 2}});
  const CfColoring f{1, 1, 1};
  EXPECT_FALSE(is_edge_happy(h, 0, f));
}

TEST(HappyEdgeTest, AllUncoloredIsUnhappy) {
  const Hypergraph h(3, {{0, 1, 2}});
  const CfColoring f{kCfUncolored, kCfUncolored, kCfUncolored};
  EXPECT_FALSE(is_edge_happy(h, 0, f));
}

TEST(HappyEdgeTest, PairOfPairsNeedsDistinctColors) {
  const Hypergraph h(2, {{0, 1}});
  EXPECT_FALSE(is_edge_happy(h, 0, CfColoring{2, 2}));
  EXPECT_TRUE(is_edge_happy(h, 0, CfColoring{1, 2}));
  EXPECT_TRUE(is_edge_happy(h, 0, CfColoring{1, kCfUncolored}));
}

TEST(MulticoloringTest, AddAndQuery) {
  CfMulticoloring mc(3);
  mc.add_color(0, 2);
  mc.add_color(0, 1);
  mc.add_color(0, 2);  // duplicate ignored
  mc.add_color(2, 5);
  EXPECT_EQ(mc.colors_of(0), (std::vector<std::size_t>{1, 2}));
  EXPECT_TRUE(mc.has_color(0, 1));
  EXPECT_FALSE(mc.has_color(1, 1));
  EXPECT_EQ(mc.palette_size(), 3u);
  EXPECT_EQ(mc.max_color(), 5u);
  EXPECT_EQ(mc.assignment_count(), 3u);
}

TEST(MulticoloringTest, ZeroColorViolatesContract) {
  CfMulticoloring mc(2);
  EXPECT_THROW(mc.add_color(0, 0), ContractViolation);
}

TEST(MulticoloringTest, HappyRequiresUniqueColorAcrossAllSets) {
  const Hypergraph h(3, {{0, 1, 2}});
  CfMulticoloring mc(3);
  mc.add_color(0, 1);
  mc.add_color(1, 1);
  EXPECT_FALSE(is_edge_happy(h, 0, mc));  // color 1 twice, nothing else
  mc.add_color(1, 2);
  EXPECT_TRUE(is_edge_happy(h, 0, mc));  // color 2 unique at vertex 1
}

TEST(MulticoloringTest, AbsorbAppliesPaletteOffset) {
  CfMulticoloring mc(3);
  const CfColoring phase{2, kCfUncolored, 1};
  mc.absorb(phase, 10);
  EXPECT_TRUE(mc.has_color(0, 12));
  EXPECT_TRUE(mc.has_color(2, 11));
  EXPECT_TRUE(mc.colors_of(1).empty());
}

TEST(ConflictFreeTest, WholeHypergraph) {
  const Hypergraph h(4, {{0, 1}, {1, 2, 3}});
  EXPECT_TRUE(is_conflict_free(h, CfColoring{1, 2, 1, 1}));
  // {1,1,2,2}: edge {0,1} monochromatic (unhappy); edge {1,2,3} has color 1
  // unique at vertex 1 (happy).
  EXPECT_FALSE(is_conflict_free(h, CfColoring{1, 1, 2, 2}));
  EXPECT_EQ(happy_edge_count(h, CfColoring{1, 1, 2, 2}), 1u);
  EXPECT_EQ(happy_edge_count(h, CfColoring{1, 1, 1, 1}), 0u);
  EXPECT_EQ(cf_color_count(CfColoring{1, 2, 1, kCfUncolored}), 2u);
}

TEST(FreshBaselineTest, UsesOneColorPerEdge) {
  Rng rng(7);
  PlantedCfParams params;
  params.n = 40;
  params.m = 25;
  params.k = 3;
  const auto inst = planted_cf_colorable(params, rng);
  const auto mc = fresh_color_baseline(inst.hypergraph);
  EXPECT_TRUE(is_conflict_free(inst.hypergraph, mc));
  EXPECT_EQ(mc.palette_size(), 25u);
}

class DyadicTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DyadicTest, ConflictFreeOnAllIntervals) {
  const std::size_t n = GetParam();
  const auto f = dyadic_interval_cf_coloring(n);
  const auto h = all_intervals(n, 1, n);
  EXPECT_TRUE(is_conflict_free(h, f));
  // Color bound: floor(log2 n) + 1.
  std::size_t log2n = 0;
  while ((std::size_t{1} << (log2n + 1)) <= n) ++log2n;
  EXPECT_LE(cf_color_count(f), log2n + 1);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DyadicTest,
                         ::testing::Values(1, 2, 3, 7, 8, 15, 16, 33, 64, 100));

class GreedyCfTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GreedyCfTest, AlwaysConflictFreeAcrossFamilies) {
  Rng rng(GetParam());
  PlantedCfParams params;
  params.n = 40;
  params.m = 30;
  params.k = 3;
  const auto planted = planted_cf_colorable(params, rng);
  const auto intervals = interval_hypergraph(30, 40, 2, 8, rng);
  for (const Hypergraph* h : {&planted.hypergraph, &intervals}) {
    const auto res = greedy_cf_coloring(*h);
    EXPECT_TRUE(is_conflict_free(*h, res.coloring));
    EXPECT_EQ(res.colors_used, cf_color_count(res.coloring));
    // Never worse than one fresh color per vertex; in practice far less
    // than the fresh-per-edge baseline.
    EXPECT_LE(res.colors_used, h->vertex_count());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyCfTest, ::testing::Values(1, 2, 3, 4));

TEST(GreedyCfTest, EdgelessUsesNoColorsBeyondSingles) {
  const auto res = greedy_cf_coloring(Hypergraph(4, {}));
  EXPECT_TRUE(is_conflict_free(Hypergraph(4, {}), res.coloring));
  EXPECT_LE(res.colors_used, 1u);  // first vertex opens color 1; rest reuse
}

TEST(GreedyCfTest, SmallKnownInstance) {
  // Single edge: first endpoint gets 1, second reuses 1? {1,1} would be
  // unhappy, so it must take 2.
  const auto res = greedy_cf_coloring(Hypergraph(2, {{0, 1}}));
  EXPECT_EQ(res.colors_used, 2u);
}

TEST(IntervalDetectionTest, Classification) {
  EXPECT_TRUE(is_interval_hypergraph(Hypergraph(5, {{1, 2, 3}, {0, 1}})));
  EXPECT_FALSE(is_interval_hypergraph(Hypergraph(5, {{0, 2}})));
  Rng rng(9);
  EXPECT_TRUE(is_interval_hypergraph(interval_hypergraph(30, 10, 1, 6, rng)));
}

}  // namespace
}  // namespace pslocal
