#include "mis/vertex_cover.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "mis/exact_maxis.hpp"

namespace pslocal {
namespace {

TEST(VertexCoverVerifierTest, Basics) {
  const Graph g = path(4);
  EXPECT_TRUE(is_vertex_cover(g, {1, 2}));
  EXPECT_FALSE(is_vertex_cover(g, {0, 3}));  // edge 1-2 uncovered
  EXPECT_FALSE(is_vertex_cover(g, {9}));
  EXPECT_TRUE(is_vertex_cover(Graph::from_edges(3, {}), {}));
}

TEST(ExactVertexCoverTest, GallaiIdentity) {
  Rng rng(3);
  for (int rep = 0; rep < 6; ++rep) {
    const Graph g = gnp(20, 0.25, rng);
    const auto cover = exact_vertex_cover(g);
    const auto alpha = independence_number(g);
    EXPECT_EQ(cover.size() + alpha, g.vertex_count());  // tau + alpha = n
    EXPECT_TRUE(is_vertex_cover(g, cover));
  }
}

TEST(ExactVertexCoverTest, KnownValues) {
  EXPECT_EQ(exact_vertex_cover(complete(6)).size(), 5u);
  EXPECT_EQ(exact_vertex_cover(ring(8)).size(), 4u);
  EXPECT_EQ(exact_vertex_cover(path(5)).size(), 2u);
  EXPECT_EQ(exact_vertex_cover(complete_bipartite(3, 7)).size(), 3u);
}

class MatchingCoverTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatchingCoverTest, TwoApproximationHolds) {
  Rng rng(GetParam());
  const Graph g = gnp(24, 0.2, rng);
  const auto approx = matching_vertex_cover(g);
  const auto exact = exact_vertex_cover(g);
  EXPECT_TRUE(is_vertex_cover(g, approx));
  EXPECT_LE(approx.size(), 2 * exact.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatchingCoverTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(MatchingCoverTest, EdgelessGraphNeedsNothing) {
  const Graph g = Graph::from_edges(5, {});
  EXPECT_TRUE(matching_vertex_cover(g).empty());
  EXPECT_TRUE(exact_vertex_cover(g).empty());
}

}  // namespace
}  // namespace pslocal
