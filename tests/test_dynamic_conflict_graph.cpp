#include "core/dynamic_conflict_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "hypergraph/generators.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace pslocal {
namespace {

/// Draw one mutation that is valid for the current (n, edges) state.
Mutation random_valid_mutation(std::size_t n,
                               const std::vector<std::vector<VertexId>>& edges,
                               Rng& rng) {
  for (;;) {
    switch (rng.next_below(4)) {
      case 0: {  // add_edge: random distinct subset of size 1..4
        const std::size_t size =
            1 + static_cast<std::size_t>(rng.next_below(std::min<std::uint64_t>(4, n)));
        std::vector<VertexId> vs;
        while (vs.size() < size) {
          const auto v = static_cast<VertexId>(rng.next_below(n));
          if (std::find(vs.begin(), vs.end(), v) == vs.end()) vs.push_back(v);
        }
        return Mutation::add_edge(std::move(vs));
      }
      case 1:
        if (edges.empty()) continue;
        return Mutation::remove_edge(
            static_cast<EdgeId>(rng.next_below(edges.size())));
      case 2:
        return Mutation::add_vertex();
      default:
        return Mutation::remove_vertex(
            static_cast<VertexId>(rng.next_below(n)));
    }
  }
}

/// The pinned equivalence: after every step the patched graph must be
/// bit-identical to a from-scratch rebuild on the mutated hypergraph.
void check_against_rebuild(const DynamicConflictGraph& dyn) {
  const Hypergraph h = dyn.hypergraph();
  const ConflictGraph rebuilt(h, dyn.k());
  const Graph snap = dyn.snapshot();
  ASSERT_EQ(snap, rebuilt.graph());
  EXPECT_EQ(dyn.gk_edge_count(), rebuilt.graph().edge_count());
  EXPECT_EQ(dyn.triple_count(), rebuilt.triple_count());
  EXPECT_EQ(dyn.graph_hash(), hash_graph(rebuilt.graph()));
  EXPECT_EQ(dyn.content_hash(), hash_hypergraph(h));
}

TEST(DynamicConflictGraphTest, SeedMatchesConflictGraph) {
  const Hypergraph h(6, {{0, 1, 2}, {2, 3}, {3, 4, 5}});
  const ConflictGraph cg(h, 3);
  const DynamicConflictGraph from_cg(cg);
  const DynamicConflictGraph from_h(h, 3);
  EXPECT_EQ(from_cg.snapshot(), cg.graph());
  EXPECT_EQ(from_h.snapshot(), cg.graph());
  EXPECT_EQ(from_cg.gk_edge_count(), cg.graph().edge_count());
  EXPECT_EQ(from_h.graph_hash(), hash_graph(cg.graph()));
}

TEST(DynamicConflictGraphTest, AddVertexIsIdentityDelta) {
  const Hypergraph h(3, {{0, 1}, {1, 2}});
  DynamicConflictGraph dyn(h, 2);
  const auto before = dyn.triple_count();
  const auto delta = dyn.apply(Mutation::add_vertex());
  EXPECT_TRUE(delta.removed.empty());
  EXPECT_TRUE(delta.added.empty());
  EXPECT_TRUE(delta.dirty.empty());
  ASSERT_EQ(delta.remap.size(), before);
  for (TripleId t = 0; t < before; ++t) EXPECT_EQ(delta.remap[t], t);
  EXPECT_EQ(dyn.vertex_count(), 4u);
  check_against_rebuild(dyn);
}

TEST(DynamicConflictGraphTest, RemoveIsolatedVertexTouchesNothing) {
  const Hypergraph h(4, {{0, 1}});  // vertices 2, 3 isolated
  DynamicConflictGraph dyn(h, 2);
  const auto delta = dyn.apply(Mutation::remove_vertex(3));
  EXPECT_TRUE(delta.removed.empty());
  EXPECT_TRUE(delta.dirty.empty());
  EXPECT_EQ(delta.gk_edges_removed, 0u);
  EXPECT_EQ(delta.gk_edges_added, 0u);
  check_against_rebuild(dyn);
}

TEST(DynamicConflictGraphTest, AddEdgeDeltaCountsReconcile) {
  const Hypergraph h(5, {{0, 1, 2}});
  DynamicConflictGraph dyn(h, 2);
  const auto edges_before = dyn.gk_edge_count();
  const auto delta = dyn.apply(Mutation::add_edge({1, 3}));
  EXPECT_EQ(delta.gk_edges_removed, 0u);  // nothing touched the old block
  EXPECT_EQ(dyn.gk_edge_count(), edges_before + delta.gk_edges_added);
  EXPECT_EQ(delta.added.size(), 2u * 2u);  // |{1,3}| pairs * k colors
  // The fresh block is dirty, and so is every old triple it attached to.
  for (const TripleId t : delta.added)
    EXPECT_TRUE(std::binary_search(delta.dirty.begin(), delta.dirty.end(), t));
  check_against_rebuild(dyn);
}

TEST(DynamicConflictGraphTest, RemoveEdgeRemapIsMonotone) {
  const Hypergraph h(6, {{0, 1}, {1, 2, 3}, {3, 4, 5}});
  DynamicConflictGraph dyn(h, 2);
  const auto before = dyn.triple_count();
  const auto delta = dyn.apply(Mutation::remove_edge(1));
  ASSERT_EQ(delta.remap.size(), before);
  TripleId last = 0;
  bool first = true;
  for (TripleId t = 0; t < before; ++t) {
    if (delta.remap[t] == DynamicConflictGraph::kRemoved) continue;
    if (!first) EXPECT_GT(delta.remap[t], last);
    last = delta.remap[t];
    first = false;
  }
  EXPECT_EQ(delta.removed.size(), 3u * 2u);  // block of edge 1
  check_against_rebuild(dyn);
}

TEST(DynamicConflictGraphTest, RandomScriptsMatchRebuildAtEveryPrefix) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed);
    PlantedCfParams params;
    params.n = 12 + (seed % 3) * 2;
    params.m = 8 + (seed % 4) * 2;
    params.k = 2 + (seed % 2);
    auto inst = planted_cf_colorable(params, rng);
    DynamicConflictGraph dyn(inst.hypergraph, inst.k);

    std::size_t n = inst.hypergraph.vertex_count();
    std::vector<std::vector<VertexId>> edges;
    for (EdgeId e = 0; e < inst.hypergraph.edge_count(); ++e) {
      const auto vs = inst.hypergraph.edge(e);
      edges.emplace_back(vs.begin(), vs.end());
    }

    for (int step = 0; step < 10; ++step) {
      const Mutation mut = random_valid_mutation(n, edges, rng);
      apply_mutation(n, edges, mut);
      const auto delta = dyn.apply(mut);
      EXPECT_EQ(dyn.vertex_count(), n);
      EXPECT_EQ(dyn.edge_count(), edges.size());
      // Dirty ids are valid, sorted, and include every fresh triple.
      EXPECT_TRUE(std::is_sorted(delta.dirty.begin(), delta.dirty.end()));
      for (const TripleId t : delta.dirty) EXPECT_LT(t, dyn.triple_count());
      for (const TripleId t : delta.added)
        EXPECT_TRUE(
            std::binary_search(delta.dirty.begin(), delta.dirty.end(), t));
      ASSERT_NO_FATAL_FAILURE(check_against_rebuild(dyn))
          << "seed " << seed << " step " << step << " mut " << describe(mut);
    }
  }
}

TEST(DynamicConflictGraphTest, TripleDecodeTracksLayout) {
  const Hypergraph h(4, {{0, 1}, {1, 2, 3}});
  DynamicConflictGraph dyn(h, 2);
  (void)dyn.apply(Mutation::remove_edge(0));
  // After the removal the only block is {1,2,3}'s; pair 1 is vertex 2.
  const Triple t = dyn.triple(2);  // pair 1, color 1
  EXPECT_EQ(t.e, 0u);
  EXPECT_EQ(t.v, 2u);
  EXPECT_EQ(t.c, 1u);
}

}  // namespace
}  // namespace pslocal
