#include "slocal/network_decomposition.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"

namespace pslocal {
namespace {

void expect_valid_decomposition(const Graph& g) {
  const auto nd = ball_growing_decomposition(g);
  const std::size_t n = g.vertex_count();
  EXPECT_TRUE(verify_decomposition(g, nd, decomposition_diameter_bound(n),
                                   decomposition_color_bound(n)))
      << "n=" << n << " clusters=" << nd.cluster_count
      << " colors=" << nd.color_count;
  if (n > 1) {
    EXPECT_LE(static_cast<double>(nd.max_radius),
              std::log2(static_cast<double>(n)));
  }
}

TEST(NetworkDecompositionTest, Families) {
  expect_valid_decomposition(ring(20));
  expect_valid_decomposition(path(33));
  expect_valid_decomposition(grid(6, 7));
  expect_valid_decomposition(complete(12));
  Rng rng(5);
  expect_valid_decomposition(gnp(80, 0.05, rng));
  expect_valid_decomposition(gnp(80, 0.3, rng));
  expect_valid_decomposition(random_tree(90, rng));
}

TEST(NetworkDecompositionTest, DisconnectedGraph) {
  const Graph g = disjoint_cliques({4, 4, 4});
  expect_valid_decomposition(g);
}

TEST(NetworkDecompositionTest, SingletonsAndEmpty) {
  const Graph g = Graph::from_edges(5, {});
  const auto nd = ball_growing_decomposition(g);
  EXPECT_EQ(nd.cluster_count, 5u);
  EXPECT_EQ(nd.color_count, 1u);
  EXPECT_TRUE(verify_decomposition(g, nd, 0, 1));

  const Graph empty;
  const auto nd2 = ball_growing_decomposition(empty);
  EXPECT_EQ(nd2.cluster_count, 0u);
}

TEST(NetworkDecompositionTest, CompleteGraphIsOneCluster) {
  // The doubling rule swallows K_n at radius 1 (|B(1)| = n <= 2|B(0)|
  // fails at r=0 when n > 2, but |B(2)| = |B(1)| then stops growth at 1).
  const Graph g = complete(10);
  const auto nd = ball_growing_decomposition(g);
  EXPECT_EQ(nd.cluster_count, 1u);
  EXPECT_EQ(nd.color_count, 1u);
}

TEST(NetworkDecompositionTest, VerifierRejectsBadDecompositions) {
  const Graph g = path(4);
  auto nd = ball_growing_decomposition(g);
  ASSERT_TRUE(
      verify_decomposition(g, nd, decomposition_diameter_bound(4), 99));

  // Tamper: merge everything into cluster 0 with one color but lie about
  // the cluster count.
  NetworkDecomposition bad;
  bad.cluster_of = {0, 0, 1, 1};
  bad.color_of_cluster = {0, 0};  // adjacent same-color clusters (1-2 edge)
  bad.cluster_count = 2;
  bad.color_count = 1;
  EXPECT_FALSE(verify_decomposition(g, bad, 10, 10));

  NetworkDecomposition too_wide;
  too_wide.cluster_of = {0, 0, 0, 0};
  too_wide.color_of_cluster = {0};
  too_wide.cluster_count = 1;
  too_wide.color_count = 1;
  EXPECT_TRUE(verify_decomposition(g, too_wide, 3, 1));
  EXPECT_FALSE(verify_decomposition(g, too_wide, 2, 1));  // diameter 3 > 2

  NetworkDecomposition sparse_ids;
  sparse_ids.cluster_of = {0, 0, 2, 2};  // id 1 unused -> not dense
  sparse_ids.color_of_cluster = {0, 1, 2};
  sparse_ids.cluster_count = 3;
  sparse_ids.color_count = 3;
  EXPECT_FALSE(verify_decomposition(g, sparse_ids, 10, 10));
}

TEST(NetworkDecompositionTest, BoundsFormulae) {
  EXPECT_EQ(decomposition_diameter_bound(1), 0u);
  EXPECT_EQ(decomposition_color_bound(1), 1u);
  EXPECT_EQ(decomposition_diameter_bound(16), 8u);
  EXPECT_EQ(decomposition_color_bound(16), 5u);
}

}  // namespace
}  // namespace pslocal
