// qc/oracles + qc/property: the differential checkers hold on bounded
// sweeps of generated inputs, the property runner is deterministic, and
// the planted bug is the one thing that breaks it — with a replayable
// reproducer in the failure.
#include "qc/oracles.hpp"

#include <gtest/gtest.h>

#include "qc/gen.hpp"
#include "qc/property.hpp"

namespace pslocal::qc {
namespace {

TEST(QcDifferentialTest, MisCheckerHoldsOnGraphZoo) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed);
    const std::uint64_t solver_seed = rng.next_u64();
    const Graph g = arbitrary_graph(rng);
    const auto verdict = check_mis_differential(g, solver_seed);
    EXPECT_FALSE(verdict.has_value())
        << "seed " << seed << " on " << describe(g) << ": " << *verdict;
  }
}

TEST(QcDifferentialTest, CfCheckerHoldsOnTinyHypergraphs) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed);
    const Hypergraph h = arbitrary_tiny_hypergraph(rng);
    const auto verdict = check_cf_differential(h);
    EXPECT_FALSE(verdict.has_value())
        << "seed " << seed << " on " << describe(h) << ": " << *verdict;
  }
}

TEST(QcDifferentialTest, CorrespondenceHoldsOnEveryFamily) {
  for (const std::string& family : hyper_family_names()) {
    for (std::uint64_t seed : {3ull, 14ull, 159ull}) {
      const HyperInstance inst = make_family(family, seed);
      const auto verdict = check_correspondence(inst, seed);
      EXPECT_FALSE(verdict.has_value())
          << family << " seed " << seed << ": " << *verdict;
    }
  }
}

TEST(QcDifferentialTest, ReductionHoldsOnEveryFamilyAndOracle) {
  for (const std::string& family : hyper_family_names()) {
    for (std::uint64_t seed : {2ull, 71ull, 828ull}) {
      const HyperInstance inst = make_family(family, seed);
      const auto verdict = check_reduction(inst, seed);
      EXPECT_FALSE(verdict.has_value())
          << family << " seed " << seed << ": " << *verdict;
    }
  }
}

TEST(QcDifferentialTest, DegradedOracleCheckedOnSmallInstance) {
  // Pin the degraded λ-oracle explicitly on a family small enough for
  // its exact inner solves (the random draw gates it by triple count).
  const HyperInstance inst = make_family("path-neighborhoods", 9);
  const auto verdict = check_reduction(inst, 9, "degraded", 2.0);
  EXPECT_FALSE(verdict.has_value()) << *verdict;
}

TEST(QcDifferentialTest, DefaultPropertySetPasses) {
  FuzzOptions opts;
  opts.seed = 1;
  opts.iters = 15;
  const FuzzReport report = run_properties(default_properties(opts), opts);
  EXPECT_TRUE(report.passed());
  ASSERT_EQ(report.outcomes.size(), 15u);
  for (const auto& out : report.outcomes)
    EXPECT_EQ(out.iterations, opts.iters) << out.name;
}

TEST(QcDifferentialTest, PlantedBugIsFoundWithReproducer) {
  FuzzOptions opts;
  opts.seed = 1;
  opts.iters = 50;
  opts.plant_bug = true;
  opts.only = "planted-bug";
  const FuzzReport report = run_properties(default_properties(opts), opts);
  ASSERT_EQ(report.outcomes.size(), 1u);
  const PropertyOutcome& out = report.outcomes[0];
  ASSERT_TRUE(out.failure.has_value());
  EXPECT_NE(out.reproducer.find("pslocal_fuzz"), std::string::npos);
  EXPECT_NE(out.reproducer.find("--property=planted-bug"), std::string::npos);
  EXPECT_NE(out.reproducer.find("--seed="), std::string::npos);
  // The recorded counterexample is the SHRUNK witness: <= 5 vertices.
  EXPECT_NE(out.failure->counterexample.find("graph n="), std::string::npos);

  // The reproducer's seed replays the identical failure: iteration t
  // under base s equals iteration 0 under base s + t.
  FuzzOptions replay = opts;
  replay.seed = out.fail_seed;
  replay.iters = 1;
  const FuzzReport again = run_properties(default_properties(replay), replay);
  ASSERT_EQ(again.outcomes.size(), 1u);
  ASSERT_TRUE(again.outcomes[0].failure.has_value());
  EXPECT_EQ(again.outcomes[0].failure->counterexample,
            out.failure->counterexample);
  EXPECT_EQ(again.outcomes[0].failure->message, out.failure->message);
}

TEST(QcDifferentialTest, ReportJsonIsByteDeterministic) {
  FuzzOptions opts;
  opts.seed = 7;
  opts.iters = 10;
  const std::string a =
      report_json(run_properties(default_properties(opts), opts), opts);
  const std::string b =
      report_json(run_properties(default_properties(opts), opts), opts);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"passed\": true"), std::string::npos);
}

TEST(QcDifferentialTest, FamilyPinThreadsThroughToReproducer) {
  FuzzOptions opts;
  opts.seed = 1;
  opts.iters = 5;
  opts.family = "interval";
  opts.only = "reduction-solves";
  const FuzzReport report = run_properties(default_properties(opts), opts);
  ASSERT_EQ(report.outcomes.size(), 1u);
  EXPECT_FALSE(report.outcomes[0].failure.has_value());
  // Reproducer construction carries the pin even without a failure.
  EXPECT_NE(reproducer("reduction-solves", 3, opts.family, "")
                .find("--family=interval"),
            std::string::npos);
}

}  // namespace
}  // namespace pslocal::qc
