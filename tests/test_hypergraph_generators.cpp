#include "hypergraph/generators.hpp"

#include <gtest/gtest.h>

#include "coloring/conflict_free.hpp"
#include "hypergraph/properties.hpp"

namespace pslocal {
namespace {

struct PlantedCase {
  std::size_t n, m, k;
  double eps;
};

class PlantedTest : public ::testing::TestWithParam<PlantedCase> {};

TEST_P(PlantedTest, PlantedColoringIsConflictFree) {
  const auto p = GetParam();
  Rng rng(1000 + p.n + p.m * 7 + p.k * 31);
  PlantedCfParams params;
  params.n = p.n;
  params.m = p.m;
  params.k = p.k;
  params.epsilon = p.eps;
  const auto inst = planted_cf_colorable(params, rng);

  EXPECT_EQ(inst.hypergraph.vertex_count(), p.n);
  EXPECT_EQ(inst.hypergraph.edge_count(), p.m);
  EXPECT_EQ(inst.k, p.k);
  ASSERT_EQ(inst.planted_coloring.size(), p.n);
  for (auto c : inst.planted_coloring) {
    EXPECT_GE(c, 1u);
    EXPECT_LE(c, p.k);
  }
  EXPECT_TRUE(is_conflict_free(inst.hypergraph,
                               CfColoring(inst.planted_coloring)));
}

TEST_P(PlantedTest, AlmostUniformWithSizesInRange) {
  const auto p = GetParam();
  Rng rng(2000 + p.n + p.m * 7 + p.k * 31);
  PlantedCfParams params;
  params.n = p.n;
  params.m = p.m;
  params.k = p.k;
  params.epsilon = p.eps;
  const auto inst = planted_cf_colorable(params, rng);

  EXPECT_TRUE(is_almost_uniform(inst.hypergraph, p.eps));
  const auto max_size = static_cast<std::size_t>((1.0 + p.eps) * p.k);
  for (EdgeId e = 0; e < inst.hypergraph.edge_count(); ++e) {
    EXPECT_GE(inst.hypergraph.edge_size(e), p.k);
    EXPECT_LE(inst.hypergraph.edge_size(e), max_size);
  }
}

TEST_P(PlantedTest, EveryEdgeSubsetStaysColorable) {
  // The reduction relies on H_i ⊆ H admitting the CF k-coloring; spot
  // check a random restriction.
  const auto p = GetParam();
  Rng rng(3000 + p.n + p.m);
  PlantedCfParams params;
  params.n = p.n;
  params.m = p.m;
  params.k = p.k;
  params.epsilon = p.eps;
  const auto inst = planted_cf_colorable(params, rng);
  std::vector<bool> keep(p.m);
  for (std::size_t e = 0; e < p.m; ++e) keep[e] = rng.next_bool(0.5);
  const auto sub = inst.hypergraph.restrict_edges(keep);
  EXPECT_TRUE(is_conflict_free(sub, CfColoring(inst.planted_coloring)));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlantedTest,
    ::testing::Values(PlantedCase{16, 8, 2, 1.0}, PlantedCase{24, 20, 3, 0.5},
                      PlantedCase{40, 40, 4, 1.0}, PlantedCase{64, 80, 5, 0.7},
                      PlantedCase{100, 150, 8, 0.25},
                      PlantedCase{30, 10, 2, 0.9}));

TEST(PlantedTest, TooFewVerticesViolatesContract) {
  Rng rng(1);
  PlantedCfParams params;
  params.n = 5;
  params.k = 4;
  params.epsilon = 1.0;  // needs n >= 16
  EXPECT_THROW(planted_cf_colorable(params, rng), ContractViolation);
}

TEST(PlantedTest, DistinctEdgesBestEffort) {
  Rng rng(2);
  PlantedCfParams params;
  params.n = 60;
  params.m = 40;
  params.k = 3;
  const auto inst = planted_cf_colorable(params, rng);
  EXPECT_TRUE(has_distinct_edges(inst.hypergraph));
}

TEST(IntervalTest, EdgesAreIntervals) {
  Rng rng(3);
  const auto h = interval_hypergraph(50, 30, 2, 8, rng);
  EXPECT_EQ(h.edge_count(), 30u);
  for (EdgeId e = 0; e < h.edge_count(); ++e) {
    const auto verts = h.edge(e);
    EXPECT_GE(verts.size(), 2u);
    EXPECT_LE(verts.size(), 8u);
    for (std::size_t i = 1; i < verts.size(); ++i)
      EXPECT_EQ(verts[i], verts[i - 1] + 1);
  }
}

TEST(IntervalTest, AllIntervalsCount) {
  const auto h = all_intervals(6, 2, 3);
  // Length-2 intervals: 5; length-3: 4.
  EXPECT_EQ(h.edge_count(), 9u);
}

TEST(IntervalTest, BadLengthsViolateContract) {
  Rng rng(4);
  EXPECT_THROW(interval_hypergraph(10, 5, 0, 3, rng), ContractViolation);
  EXPECT_THROW(interval_hypergraph(10, 5, 4, 3, rng), ContractViolation);
  EXPECT_THROW(interval_hypergraph(10, 5, 2, 11, rng), ContractViolation);
}

TEST(RandomUniformTest, UniformSizes) {
  Rng rng(5);
  const auto h = random_uniform_hypergraph(30, 25, 4, rng);
  EXPECT_EQ(h.edge_count(), 25u);
  for (EdgeId e = 0; e < h.edge_count(); ++e)
    EXPECT_EQ(h.edge_size(e), 4u);
  EXPECT_TRUE(is_almost_uniform(h, 0.01));
}

}  // namespace
}  // namespace pslocal
