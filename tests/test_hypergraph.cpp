#include "hypergraph/hypergraph.hpp"

#include <gtest/gtest.h>

#include "hypergraph/properties.hpp"

namespace pslocal {
namespace {

Hypergraph make_sample() {
  // V = {0..5}; edges: {0,1,2}, {2,3}, {3,4,5}, {0,5}
  return Hypergraph(6, {{0, 1, 2}, {2, 3}, {3, 4, 5}, {0, 5}});
}

TEST(HypergraphTest, BasicAccessors) {
  const Hypergraph h = make_sample();
  EXPECT_EQ(h.vertex_count(), 6u);
  EXPECT_EQ(h.edge_count(), 4u);
  EXPECT_EQ(h.edge_size(0), 3u);
  EXPECT_EQ(h.rank(), 3u);
  EXPECT_EQ(h.corank(), 2u);
  EXPECT_TRUE(h.edge_contains(0, 1));
  EXPECT_FALSE(h.edge_contains(1, 1));
}

TEST(HypergraphTest, EdgesStoredSorted) {
  const Hypergraph h(4, {{3, 0, 2}});
  const auto e = h.edge(0);
  EXPECT_EQ(e[0], 0u);
  EXPECT_EQ(e[1], 2u);
  EXPECT_EQ(e[2], 3u);
}

TEST(HypergraphTest, IncidenceLists) {
  const Hypergraph h = make_sample();
  const auto of2 = h.edges_of(2);
  ASSERT_EQ(of2.size(), 2u);
  EXPECT_EQ(of2[0], 0u);
  EXPECT_EQ(of2[1], 1u);
  EXPECT_EQ(h.vertex_degree(1), 1u);
  EXPECT_EQ(h.vertex_degree(5), 2u);
}

TEST(HypergraphTest, ConstructionContracts) {
  EXPECT_THROW(Hypergraph(3, {{}}), ContractViolation);          // empty edge
  EXPECT_THROW(Hypergraph(3, {{0, 0}}), ContractViolation);      // duplicate
  EXPECT_THROW(Hypergraph(3, {{0, 3}}), ContractViolation);      // range
}

TEST(HypergraphTest, PrimalGraph) {
  const Hypergraph h = make_sample();
  const Graph p = h.primal_graph();
  EXPECT_TRUE(p.has_edge(0, 1));
  EXPECT_TRUE(p.has_edge(0, 2));
  EXPECT_TRUE(p.has_edge(2, 3));
  EXPECT_TRUE(p.has_edge(0, 5));
  EXPECT_FALSE(p.has_edge(1, 3));
  EXPECT_EQ(p.edge_count(), 3u + 1 + 3 + 1);
}

TEST(HypergraphTest, RestrictEdgesKeepsOriginalIds) {
  const Hypergraph h = make_sample();
  const Hypergraph h2 = h.restrict_edges({true, false, true, false});
  EXPECT_EQ(h2.edge_count(), 2u);
  EXPECT_EQ(h2.vertex_count(), 6u);
  EXPECT_EQ(h2.original_edge_id(0), 0u);
  EXPECT_EQ(h2.original_edge_id(1), 2u);
  // Chained restriction maps to the root ids.
  const Hypergraph h3 = h2.restrict_edges({false, true});
  EXPECT_EQ(h3.edge_count(), 1u);
  EXPECT_EQ(h3.original_edge_id(0), 2u);
}

TEST(HypergraphTest, RestrictWrongArityViolatesContract) {
  const Hypergraph h = make_sample();
  EXPECT_THROW(h.restrict_edges({true}), ContractViolation);
}

TEST(AlmostUniformTest, WitnessAndRejection) {
  // Sizes {2,3}: 3 <= (1+eps)*2 iff eps >= 0.5.
  const Hypergraph h = make_sample();
  EXPECT_TRUE(is_almost_uniform(h, 0.5));
  EXPECT_EQ(almost_uniform_witness(h, 0.5), std::size_t{2});
  EXPECT_FALSE(is_almost_uniform(h, 0.49));
  // Uniform hypergraph is almost uniform for any eps.
  const Hypergraph u(4, {{0, 1}, {2, 3}});
  EXPECT_TRUE(is_almost_uniform(u, 0.01));
  // Edgeless: vacuous.
  const Hypergraph empty(4, {});
  EXPECT_TRUE(is_almost_uniform(empty, 0.5));
}

TEST(AlmostUniformTest, EpsilonContract) {
  const Hypergraph h = make_sample();
  EXPECT_THROW(is_almost_uniform(h, 0.0), ContractViolation);
  EXPECT_THROW(is_almost_uniform(h, 1.5), ContractViolation);
}

TEST(StatsTest, Summary) {
  const auto s = hypergraph_stats(make_sample());
  EXPECT_EQ(s.vertices, 6u);
  EXPECT_EQ(s.edges, 4u);
  EXPECT_EQ(s.rank, 3u);
  EXPECT_EQ(s.corank, 2u);
  EXPECT_EQ(s.incidence_size, 10u);
  EXPECT_DOUBLE_EQ(s.avg_edge_size, 2.5);
  EXPECT_EQ(s.max_vertex_degree, 2u);
}

TEST(DistinctEdgesTest, DetectsDuplicates) {
  EXPECT_TRUE(has_distinct_edges(make_sample()));
  const Hypergraph dup(3, {{0, 1}, {1, 0}});
  EXPECT_FALSE(has_distinct_edges(dup));
}

}  // namespace
}  // namespace pslocal
