#include "core/virtual_local.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "hypergraph/generators.hpp"
#include "local/luby_algorithm.hpp"
#include "mis/independent_set.hpp"

namespace pslocal {
namespace {

// Deterministic algorithm: every virtual node adopts the minimum id seen
// so far (min-gossip).  After diam(G_k) rounds all nodes in a component
// agree on its minimum — a clean probe for delivery correctness.
struct GossipState {
  std::size_t best = 0;
  std::size_t round = 0;
};

class MinGossip final : public BroadcastAlgorithm<GossipState, std::size_t> {
 public:
  explicit MinGossip(std::size_t rounds) : rounds_(rounds) {}

  GossipState init(VertexId v, const Graph&, Rng&) override {
    return GossipState{v, 0};
  }
  std::optional<std::size_t> emit(VertexId, const GossipState& s) override {
    return s.best;
  }
  void step(VertexId, GossipState& s,
            std::span<const std::optional<std::size_t>> inbox, Rng&) override {
    for (const auto& m : inbox)
      if (m && *m < s.best) s.best = *m;
    ++s.round;
  }
  bool halted(VertexId, const GossipState& s) override {
    return s.round >= rounds_;
  }

 private:
  std::size_t rounds_;
};

// Randomized algorithm exercising the RNG-stream equivalence: each node
// draws a value per round and tracks a rolling xor with neighbor values.
struct NoiseState {
  std::uint64_t acc = 0;
  std::uint64_t mine = 0;
  std::size_t round = 0;
};

class NoiseMix final : public BroadcastAlgorithm<NoiseState, std::uint64_t> {
 public:
  explicit NoiseMix(std::size_t rounds) : rounds_(rounds) {}

  NoiseState init(VertexId, const Graph&, Rng& rng) override {
    NoiseState s;
    s.mine = rng.next_u64();
    return s;
  }
  std::optional<std::uint64_t> emit(VertexId, const NoiseState& s) override {
    return s.mine;
  }
  void step(VertexId, NoiseState& s,
            std::span<const std::optional<std::uint64_t>> inbox,
            Rng& rng) override {
    for (const auto& m : inbox)
      if (m) s.acc ^= *m;
    s.mine = rng.next_u64();
    ++s.round;
  }
  bool halted(VertexId, const NoiseState& s) override {
    return s.round >= rounds_;
  }

 private:
  std::size_t rounds_;
};

ConflictGraph make_cg(std::size_t n, std::size_t m, std::size_t k,
                      std::uint64_t seed) {
  Rng rng(seed);
  PlantedCfParams params;
  params.n = n;
  params.m = m;
  params.k = k;
  auto inst = planted_cf_colorable(params, rng);
  return ConflictGraph(std::move(inst.hypergraph), k);
}

TEST(VirtualLocalTest, GossipConvergesThroughHosts) {
  const auto cg = make_cg(20, 12, 2, 5);
  const std::size_t diam = diameter(cg.graph());
  ASSERT_NE(diam, kUnreachable);
  MinGossip algo(diam + 1);
  const auto run = run_local_on_hosts(cg, algo, 1, 100);
  EXPECT_TRUE(run.all_halted);
  EXPECT_EQ(run.physical_rounds, diam + 1);
  for (const auto& s : run.states) EXPECT_EQ(s.best, 0u);
}

TEST(VirtualLocalTest, BitIdenticalToDirectExecution) {
  const auto cg = make_cg(24, 14, 3, 7);
  for (std::uint64_t seed : {1ull, 9ull, 123ull}) {
    NoiseMix direct_algo(6), hosted_algo(6);
    const auto direct = run_local(cg.graph(), direct_algo, seed, 100);
    const auto hosted = run_local_on_hosts(cg, hosted_algo, seed, 100);
    ASSERT_TRUE(direct.all_halted);
    ASSERT_TRUE(hosted.all_halted);
    ASSERT_EQ(direct.states.size(), hosted.states.size());
    for (std::size_t t = 0; t < direct.states.size(); ++t) {
      EXPECT_EQ(direct.states[t].acc, hosted.states[t].acc) << "t=" << t;
      EXPECT_EQ(direct.states[t].mine, hosted.states[t].mine);
    }
    EXPECT_EQ(direct.rounds, hosted.physical_rounds);
  }
}

TEST(VirtualLocalTest, CongestionIsBundledPerHost) {
  const auto cg = make_cg(16, 10, 2, 11);
  MinGossip algo(3);
  const auto run = run_local_on_hosts(cg, algo, 1, 100);
  // Max host load L implies a max bundled message of L * (payload + 8).
  std::vector<std::size_t> load(cg.hypergraph().vertex_count(), 0);
  for (TripleId t = 0; t < cg.triple_count(); ++t) ++load[cg.triple(t).v];
  const std::size_t max_load = *std::max_element(load.begin(), load.end());
  EXPECT_EQ(run.max_physical_message_bytes,
            max_load * (sizeof(std::size_t) + 8));
  EXPECT_GT(run.total_physical_message_bytes, 0u);
}

TEST(VirtualLocalTest, HostedLubyMatchesDirectLubyExactly) {
  // The real algorithm of the reduction: Luby's MIS on G_k, hosted vs
  // direct, same seed -> same independent set, same round count.
  const auto cg = make_cg(28, 18, 2, 19);
  for (std::uint64_t seed : {3ull, 77ull}) {
    detail::LubyAlgorithm direct_algo, hosted_algo;
    const std::size_t cap = detail::luby_default_round_cap(cg.triple_count());
    const auto direct = run_local(cg.graph(), direct_algo, seed, cap);
    const auto hosted = run_local_on_hosts(cg, hosted_algo, seed, cap);
    ASSERT_TRUE(direct.all_halted);
    ASSERT_TRUE(hosted.all_halted);
    EXPECT_EQ(direct.rounds, hosted.physical_rounds);

    std::vector<VertexId> direct_is, hosted_is;
    for (VertexId t = 0; t < cg.triple_count(); ++t) {
      if (direct.states[t].status == detail::LubyStatus::kIn)
        direct_is.push_back(t);
      if (hosted.states[t].status == detail::LubyStatus::kIn)
        hosted_is.push_back(t);
    }
    EXPECT_EQ(direct_is, hosted_is);
    EXPECT_TRUE(is_maximal_independent_set(cg.graph(), hosted_is));
  }
}

TEST(VirtualLocalTest, RoundCapReported) {
  const auto cg = make_cg(16, 10, 2, 13);
  MinGossip algo(50);
  const auto run = run_local_on_hosts(cg, algo, 1, 4);
  EXPECT_FALSE(run.all_halted);
  EXPECT_EQ(run.physical_rounds, 4u);
}

TEST(VirtualLocalTest, EdgelessHypergraphHostsNothing) {
  const ConflictGraph cg(Hypergraph(4, {}), 2);
  MinGossip algo(2);
  const auto run = run_local_on_hosts(cg, algo, 1, 10);
  EXPECT_TRUE(run.all_halted);
  EXPECT_TRUE(run.states.empty());
}

}  // namespace
}  // namespace pslocal
