// net/server: end-to-end serving over real loopback sockets — payload
// parity with in-process execution, cache visibility, the typed-NACK
// backpressure contract, and per-connection fault isolation.
#include "net/server.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include "net/client.hpp"
#include "obs/metrics.hpp"
#include "runtime/thread_pool.hpp"
#include "service/workload.hpp"
#include "util/check.hpp"
#include "util/json.hpp"

namespace pslocal::net {
namespace {

service::Trace small_trace() {
  service::TraceParams tp;
  tp.seed = 11;
  tp.requests = 12;
  tp.instance_pool = 3;
  tp.n = 32;
  tp.m = 24;
  tp.k = 3;
  return service::generate_trace(tp);
}

Client make_client(const Server& server) {
  Client::Config cc;
  cc.port = server.port();
  return Client(cc);
}

TEST(NetServerTest, EndToEndCallMatchesInProcessExecution) {
  const service::Trace trace = small_trace();
  service::ServiceEngine engine;
  engine.start();
  Server server(engine, {});
  server.start();

  Client client = make_client(server);
  client.connect();

  runtime::ThreadPool direct_pool(1);
  for (const service::Request& req : trace.requests) {
    const Client::Result r = client.call(req);
    ASSERT_EQ(r.outcome, Client::Outcome::kOk) << r.error;
    EXPECT_EQ(r.response.key, service::cache_key(req));
    // The bytes that crossed the wire are the canonical payload the
    // library computes in-process for the same request.
    EXPECT_EQ(r.response.result, service::execute_request(req, direct_pool));
    EXPECT_GT(r.rtt_ns, 0u);
  }
  EXPECT_EQ(client.inflight(), 0u);
  EXPECT_EQ(client.parked(), 0u);

  const Server::Stats stats = server.stats();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.frames_rx, trace.requests.size());
  EXPECT_EQ(stats.frames_tx, trace.requests.size());
  EXPECT_EQ(stats.requests_dispatched, trace.requests.size());
  EXPECT_EQ(stats.decode_errors, 0u);
  EXPECT_EQ(stats.nacks_queue_full, 0u);
}

TEST(NetServerTest, RepeatedRequestIsServedFromCache) {
  const service::Trace trace = small_trace();
  service::ServiceEngine engine;
  engine.start();
  Server server(engine, {});
  server.start();
  Client client = make_client(server);
  client.connect();

  const Client::Result first = client.call(trace.requests[0]);
  ASSERT_EQ(first.outcome, Client::Outcome::kOk) << first.error;
  EXPECT_FALSE(first.response.cache_hit);
  const Client::Result second = client.call(trace.requests[0]);
  ASSERT_EQ(second.outcome, Client::Outcome::kOk) << second.error;
  EXPECT_TRUE(second.response.cache_hit);
  EXPECT_EQ(second.response.result, first.response.result);
}

TEST(NetServerTest, QueueFullBecomesTypedNackNotSilence) {
  // An un-started engine with capacity 1 makes admission deterministic:
  // the first request parks in the queue forever, the second is refused
  // at the door.  The server must answer the refusal with NACK(queue_full)
  // immediately — even though the first request's future never resolves —
  // and the parked request must still get its shutdown answer at stop().
  const service::Trace trace = small_trace();
  service::EngineConfig cfg;
  cfg.queue_capacity = 1;
  service::ServiceEngine engine(cfg);  // never started
  Server server(engine, {});
  server.start();
  Client client = make_client(server);
  client.connect();

  const std::uint64_t parked_id = client.send(trace.requests[0]);
  const Client::Result nacked = client.call(trace.requests[1]);
  ASSERT_EQ(nacked.outcome, Client::Outcome::kNack) << nacked.error;
  EXPECT_EQ(nacked.nack_code, wire::NackCode::kQueueFull);
  EXPECT_EQ(server.stats().nacks_queue_full, 1u);

  engine.stop();  // answers the parked request with kRejected("shutdown")
  const Client::Result drained = client.wait(parked_id);
  ASSERT_EQ(drained.outcome, Client::Outcome::kRejected) << drained.error;
  EXPECT_EQ(drained.response.reason, "shutdown");
}

TEST(NetServerTest, GarbageStreamClosesOnlyThatConnection) {
  const service::Trace trace = small_trace();
  service::ServiceEngine engine;
  engine.start();
  Server server(engine, {});
  server.start();

  // Raw socket speaking nonsense: the server must close it...
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::string garbage(64, '\xff');
  ASSERT_EQ(::send(fd, garbage.data(), garbage.size(), 0),
            static_cast<ssize_t>(garbage.size()));
  char buf[16];
  EXPECT_EQ(::recv(fd, buf, sizeof(buf), 0), 0) << "expected EOF";
  ::close(fd);

  // ...while a well-behaved connection keeps being served.
  Client client = make_client(server);
  client.connect();
  const Client::Result r = client.call(trace.requests[0]);
  EXPECT_EQ(r.outcome, Client::Outcome::kOk) << r.error;
  EXPECT_GE(server.stats().decode_errors, 1u);
  EXPECT_GE(server.stats().closed, 1u);
}

TEST(NetServerTest, ServerStopLeavesClientWithTransportError) {
  const service::Trace trace = small_trace();
  service::ServiceEngine engine;
  engine.start();
  Server server(engine, {});
  server.start();
  Client client = make_client(server);
  client.connect();
  ASSERT_EQ(client.call(trace.requests[0]).outcome, Client::Outcome::kOk);

  server.stop();
  // The next exchange cannot succeed; it must fail promptly and loudly —
  // a transport outcome from wait(), or send() itself throwing once the
  // kernel reports the reset — never a hang.
  try {
    const Client::Result r =
        client.call(trace.requests[1], /*timeout_ms=*/2000);
    EXPECT_TRUE(r.outcome == Client::Outcome::kTransport ||
                r.outcome == Client::Outcome::kTimeout)
        << Client::outcome_name(r.outcome);
  } catch (const ContractViolation&) {
    // send() noticed the dead socket first — equally acceptable.
  }
}

TEST(NetServerTest, StatsRequestAnsweredInlineWithDeterministicJson) {
  // The live telemetry plane (docs/tracing.md): a kStatsRequest frame
  // is answered from the io loop with one JSON object — engine stats,
  // obs snapshot, per-loop server gauges — without touching the
  // dispatch queue.
  const service::Trace trace = small_trace();
  service::ServiceEngine engine;
  engine.start();
  Server::Config sc;
  sc.name = "stats-under-test";
  Server server(engine, sc);
  server.start();
  Client client = make_client(server);
  client.connect();

  // Scrape works on an idle server...
  const Client::Result idle = client.stats();
  ASSERT_EQ(idle.outcome, Client::Outcome::kOk) << idle.error;
  const json::Value idle_doc = json::parse(idle.stats_json);
  EXPECT_EQ(idle_doc.at("engine").at("served").as_number(), 0.0);

  // ...and mid-traffic, interleaved with real requests on the SAME
  // connection.
  for (int i = 0; i < 4; ++i)
    ASSERT_EQ(client.call(trace.requests[i]).outcome, Client::Outcome::kOk);
  const Client::Result r = client.stats();
  ASSERT_EQ(r.outcome, Client::Outcome::kOk) << r.error;

  const json::Value doc = json::parse(r.stats_json);
  EXPECT_EQ(doc.at("engine").at("served").as_number(), 4.0);
  EXPECT_TRUE(doc.at("obs").is_object());
  EXPECT_TRUE(doc.at("obs").at("histograms").is_object());
  const json::Value& srv = doc.at("server");
  EXPECT_EQ(srv.at("name").as_string(), "stats-under-test");
  EXPECT_EQ(static_cast<std::size_t>(srv.at("io_loops").as_number()),
            srv.at("loops").as_array().size());
  EXPECT_GE(srv.at("connections").as_number(), 1.0);
  for (const auto& loop : srv.at("loops").as_array()) {
    EXPECT_TRUE(loop.has("connections"));
    EXPECT_TRUE(loop.has("queued_bytes"));
  }

  // Stats frames are not dispatched requests: the engine never sees
  // them and the dispatch counter counts only the 4 real calls.
  EXPECT_EQ(server.stats().requests_dispatched, 4u);

#if PSLOCAL_OBS_ENABLED
  // With instrumentation compiled in, serving 4 requests must have
  // populated the per-stage histograms the scraper summarizes.
  bool saw_stage = false;
  for (const auto& [name, hist] : doc.at("obs").at("histograms").members()) {
    if (name.rfind("service.stage.", 0) == 0 &&
        hist.at("count").as_number() > 0.0)
      saw_stage = true;
  }
  EXPECT_TRUE(saw_stage);
#endif
}

TEST(NetServerTest, ResponseFrameEchoesRequestTraceContext) {
  // Trace ids stamped into a request frame come back on the response
  // frame even in an OBS=OFF build — the words are wire plumbing, not
  // instrumentation.
  const service::Trace trace = small_trace();
  service::ServiceEngine engine;
  engine.start();
  Server server(engine, {});
  server.start();
  Client client = make_client(server);
  client.connect();

  service::Request req = trace.requests[0];
  req.trace_id = 0x7e57ab1e;
  req.parent_span_id = 5;
  const Client::Result r = client.call(req);
  ASSERT_EQ(r.outcome, Client::Outcome::kOk) << r.error;
  EXPECT_EQ(r.trace_id, 0x7e57ab1eu);
}

#if PSLOCAL_OBS_ENABLED
TEST(NetServerTest, ObsCountersTrackTraffic) {
  const service::Trace trace = small_trace();
  const obs::Snapshot before = obs::snapshot();
  service::ServiceEngine engine;
  engine.start();
  Server server(engine, {});
  server.start();
  {
    Client client = make_client(server);
    client.connect();
    for (int i = 0; i < 3; ++i)
      ASSERT_EQ(client.call(trace.requests[i]).outcome, Client::Outcome::kOk);
  }
  server.stop();
  const obs::Snapshot after = obs::snapshot();
  EXPECT_GE(after.counter("net.accepted") - before.counter("net.accepted"),
            1u);
  EXPECT_GE(after.counter("net.frames_rx") - before.counter("net.frames_rx"),
            3u);
  EXPECT_GE(after.counter("net.frames_tx") - before.counter("net.frames_tx"),
            3u);
  EXPECT_GT(after.counter("net.bytes_rx"), before.counter("net.bytes_rx"));
  EXPECT_GT(after.counter("net.bytes_tx"), before.counter("net.bytes_tx"));
  // Every connection opened here is closed again: the gauge nets to 0.
  EXPECT_EQ(after.gauge("net.conn_active"), 0);
  const auto rtt =
      after.histogram("net.rtt_ns").count - before.histogram("net.rtt_ns").count;
  EXPECT_GE(rtt, 3u);
}
#endif  // PSLOCAL_OBS_ENABLED

}  // namespace
}  // namespace pslocal::net
