#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "mis/exact_maxis.hpp"

namespace pslocal {
namespace {

TEST(GnpTest, ExtremeProbabilities) {
  Rng rng(1);
  EXPECT_EQ(gnp(20, 0.0, rng).edge_count(), 0u);
  EXPECT_EQ(gnp(20, 1.0, rng).edge_count(), 190u);
}

TEST(GnpTest, EdgeCountNearExpectation) {
  Rng rng(2);
  const std::size_t n = 200;
  const double p = 0.1;
  double total = 0;
  const int reps = 20;
  for (int i = 0; i < reps; ++i)
    total += static_cast<double>(gnp(n, p, rng).edge_count());
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(total / reps, expected, expected * 0.1);
}

TEST(RingPathGridTest, Structure) {
  EXPECT_EQ(ring(5).edge_count(), 5u);
  EXPECT_EQ(ring(5).max_degree(), 2u);
  EXPECT_THROW(ring(2), ContractViolation);
  EXPECT_EQ(path(1).edge_count(), 0u);
  EXPECT_EQ(path(5).edge_count(), 4u);
  const Graph g = grid(3, 4);
  EXPECT_EQ(g.vertex_count(), 12u);
  EXPECT_EQ(g.edge_count(), 3u * 3 + 2u * 4);  // vertical + horizontal
  EXPECT_EQ(g.max_degree(), 4u);
}

TEST(CompleteTest, Structure) {
  EXPECT_EQ(complete(6).edge_count(), 15u);
  const Graph kb = complete_bipartite(3, 4);
  EXPECT_EQ(kb.edge_count(), 12u);
  EXPECT_EQ(kb.vertex_count(), 7u);
  EXPECT_FALSE(kb.has_edge(0, 1));  // same side
  EXPECT_TRUE(kb.has_edge(0, 3));
}

TEST(DisjointCliquesTest, AlphaEqualsCliqueCount) {
  const Graph g = disjoint_cliques({3, 1, 4, 2});
  EXPECT_EQ(g.vertex_count(), 10u);
  EXPECT_EQ(independence_number(g), 4u);
  const auto comp = connected_components(g);
  EXPECT_EQ(comp.count, 4u);
}

TEST(NearRegularTest, DegreeBounded) {
  Rng rng(3);
  const Graph g = random_near_regular(50, 6, rng);
  EXPECT_LE(g.max_degree(), 6u);
  EXPECT_GT(g.edge_count(), 0u);
}

TEST(PowerLawTest, ProducesHeavyTail) {
  Rng rng(4);
  const Graph g = power_law(300, 2.5, 4.0, rng);
  EXPECT_EQ(g.vertex_count(), 300u);
  EXPECT_GT(g.edge_count(), 100u);
  // Heavy tail: max degree well above the average.
  EXPECT_GT(static_cast<double>(g.max_degree()), 2.0 * g.average_degree());
}

TEST(RandomTreeTest, IsATree) {
  Rng rng(5);
  const Graph g = random_tree(80, rng);
  EXPECT_EQ(g.edge_count(), 79u);
  EXPECT_EQ(connected_components(g).count, 1u);
}

TEST(HypercubeTest, Structure) {
  const Graph q3 = hypercube(3);
  EXPECT_EQ(q3.vertex_count(), 8u);
  EXPECT_EQ(q3.edge_count(), 12u);  // d * 2^{d-1}
  EXPECT_EQ(q3.max_degree(), 3u);
  EXPECT_EQ(diameter(q3), 3u);
  // Bipartite: alpha = 2^{d-1}.
  EXPECT_EQ(independence_number(q3), 4u);
  const Graph q0 = hypercube(0);
  EXPECT_EQ(q0.vertex_count(), 1u);
}

TEST(CaterpillarTest, Structure) {
  const Graph g = caterpillar(4, 2);
  EXPECT_EQ(g.vertex_count(), 12u);
  EXPECT_EQ(g.edge_count(), 11u);  // spine 3 + legs 8; it's a tree
  EXPECT_EQ(connected_components(g).count, 1u);
  EXPECT_EQ(degeneracy_order(g).degeneracy, 1u);
  // All leaves + alternating spine: alpha = 8 + ... leaves alone give 8;
  // spine vertices all adjacent to taken leaves' parents... compute:
  EXPECT_EQ(independence_number(g), 8u);
}

TEST(RandomBipartiteTest, SidesStayIndependent) {
  Rng rng(17);
  const Graph g = random_bipartite(10, 14, 0.4, rng);
  EXPECT_EQ(g.vertex_count(), 24u);
  for (VertexId u = 0; u < 10; ++u)
    for (VertexId v = u + 1; v < 10; ++v) EXPECT_FALSE(g.has_edge(u, v));
  for (VertexId u = 10; u < 24; ++u)
    for (VertexId v = u + 1; v < 24; ++v) EXPECT_FALSE(g.has_edge(u, v));
}

class GnpSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GnpSeedTest, DeterministicPerSeed) {
  Rng a(GetParam()), b(GetParam());
  EXPECT_EQ(gnp(40, 0.2, a), gnp(40, 0.2, b));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GnpSeedTest,
                         ::testing::Values(1, 7, 42, 9999));

}  // namespace
}  // namespace pslocal
