#include "mis/kernelization.hpp"

#include <gtest/gtest.h>

#include "core/reduction.hpp"
#include "graph/generators.hpp"
#include "hypergraph/generators.hpp"
#include "mis/exact_maxis.hpp"
#include "mis/greedy_maxis.hpp"
#include "mis/independent_set.hpp"

namespace pslocal {
namespace {

TEST(KernelizationTest, TreesReduceCompletely) {
  // Pendant folding alone dissolves any forest.
  Rng rng(1);
  const Graph g = random_tree(60, rng);
  const auto kernel = kernelize_maxis(g);
  EXPECT_EQ(kernel.kernel.vertex_count(), 0u);
  EXPECT_EQ(kernel.forced.size(), independence_number(g));
  EXPECT_TRUE(is_independent_set(g, kernel.forced));
}

TEST(KernelizationTest, IsolatedVerticesAreForced) {
  const Graph g = Graph::from_edges(5, {{0, 1}});
  const auto kernel = kernelize_maxis(g);
  // 2, 3, 4 isolated -> forced; {0,1} is a pendant pair -> one forced.
  EXPECT_EQ(kernel.forced.size(), 4u);
  EXPECT_EQ(kernel.kernel.vertex_count(), 0u);
  EXPECT_GE(kernel.isolated_applications, 3u);
}

TEST(KernelizationTest, CliquesShrinkByDomination) {
  // In K_n every pair dominates; domination peels K_7 down to K_2 (five
  // applications), then the pendant rule forces one endpoint.
  const auto kernel = kernelize_maxis(complete(7));
  EXPECT_EQ(kernel.kernel.vertex_count(), 0u);
  EXPECT_EQ(kernel.forced.size(), 1u);
  EXPECT_GE(kernel.domination_applications, 5u);
}

TEST(KernelizationTest, EvenRingsAreIrreducible) {
  // C_n (n >= 6 even) has min degree 2 and no closed domination, so no
  // rule fires: the kernel is the ring itself.
  const auto kernel = kernelize_maxis(ring(8));
  EXPECT_EQ(kernel.kernel.vertex_count(), 8u);
  EXPECT_TRUE(kernel.forced.empty());
  EXPECT_EQ(kernel.kernel.edge_count(), 8u);
}

class KernelAlphaTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KernelAlphaTest, AlphaIsPreserved) {
  Rng rng(GetParam());
  const Graph g = gnp(30, 0.12, rng);
  const auto kernel = kernelize_maxis(g);
  const auto alpha_kernel =
      kernel.kernel.vertex_count() == 0
          ? 0
          : independence_number(kernel.kernel);
  EXPECT_EQ(kernel.forced.size() + alpha_kernel, independence_number(g));
}

TEST_P(KernelAlphaTest, LiftedSolutionsAreIndependent) {
  Rng rng(GetParam() + 70);
  const Graph g = gnp(28, 0.15, rng);
  const auto kernel = kernelize_maxis(g);
  std::vector<VertexId> kernel_is;
  if (kernel.kernel.vertex_count() > 0)
    kernel_is = ExactMaxIS().solve(kernel.kernel).set;
  const auto lifted = lift_kernel_solution(kernel, kernel_is);
  EXPECT_TRUE(is_independent_set(g, lifted));
  EXPECT_EQ(lifted.size(), independence_number(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelAlphaTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7));

TEST(KernelizedOracleTest, ExactInnerStaysExact) {
  Rng rng(99);
  KernelizedOracle oracle(std::make_unique<ExactOracle>());
  EXPECT_EQ(oracle.name(), "kernel+exact");
  ASSERT_TRUE(oracle.lambda_guarantee().has_value());
  for (int rep = 0; rep < 4; ++rep) {
    const Graph g = gnp(26, 0.15, rng);
    EXPECT_EQ(oracle.solve(g).size(), independence_number(g));
  }
}

TEST(KernelizedOracleTest, GreedyInnerNeverLosesToPlainGreedy) {
  Rng rng(101);
  const Graph g = random_tree(80, rng);  // kernel dissolves trees entirely
  KernelizedOracle oracle(std::make_unique<GreedyMinDegreeOracle>());
  const auto is = oracle.solve(g);
  EXPECT_TRUE(is_independent_set(g, is));
  EXPECT_EQ(is.size(), independence_number(g));  // optimal on forests
}

TEST(KernelizedOracleTest, DrivesTheReduction) {
  Rng rng(103);
  PlantedCfParams params;
  params.n = 30;
  params.m = 18;
  params.k = 2;
  const auto inst = planted_cf_colorable(params, rng);
  KernelizedOracle oracle(std::make_unique<GreedyMinDegreeOracle>());
  ReductionOptions opts;
  opts.k = 2;
  const auto res = cf_multicoloring_via_maxis(inst.hypergraph, oracle, opts);
  EXPECT_TRUE(res.success);
}

TEST(KernelizationTest, LiftRejectsDependentKernelSets) {
  const auto kernel = kernelize_maxis(ring(8));
  EXPECT_THROW(lift_kernel_solution(kernel, {0, 1}), ContractViolation);
}

}  // namespace
}  // namespace pslocal
