#include "coloring/splitting.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "hypergraph/generators.hpp"

namespace pslocal {
namespace {

std::vector<VertexId> identity_order(std::size_t n) {
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), VertexId{0});
  return order;
}

TEST(SplittingVerifierTest, Basics) {
  const Hypergraph h(4, {{0, 1}, {1, 2, 3}});
  EXPECT_TRUE(is_valid_splitting(h, {false, true, false, false}));
  EXPECT_FALSE(is_valid_splitting(h, {false, false, true, true}));
  EXPECT_EQ(monochromatic_edge_count(h, {false, false, false, false}), 2u);
  EXPECT_EQ(monochromatic_edge_count(h, {false, true, true, true}), 1u);
}

TEST(SplittingVerifierTest, SingletonEdgesAreUnsplittable) {
  const Hypergraph h(2, {{0}});
  EXPECT_FALSE(is_valid_splitting(h, {false, false}));
  EXPECT_FALSE(is_valid_splitting(h, {true, false}));
}

TEST(SplittingEstimatorTest, Formula) {
  // Two edges of size 3: estimator = 2 * 2^{-2} = 0.5.
  const Hypergraph h(6, {{0, 1, 2}, {3, 4, 5}});
  EXPECT_DOUBLE_EQ(splitting_estimator(h), 0.5);
  EXPECT_DOUBLE_EQ(splitting_estimator(Hypergraph(3, {})), 0.0);
}

class DerandomizedSplittingTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DerandomizedSplittingTest, AlwaysSucceedsAboveThreshold) {
  // corank s and m edges with estimator m * 2^{1-s} < 1.
  Rng rng(GetParam());
  const std::size_t m = 40;
  const std::size_t s = 8;  // 40 * 2^-7 = 0.3125 < 1
  const auto h = random_uniform_hypergraph(60, m, s, rng);
  ASSERT_LT(splitting_estimator(h), 1.0);
  const auto res = derandomized_splitting(h, identity_order(60));
  EXPECT_TRUE(is_valid_splitting(h, res.splitting));
  EXPECT_LE(res.locality, 1u);  // SLOCAL(1): reads only co-edge vertices
}

TEST_P(DerandomizedSplittingTest, EstimatorBoundsMonochromaticCount) {
  // Below the threshold success is not promised, but the conditional-
  // expectations invariant still caps the damage by the estimator.
  Rng rng(GetParam() + 50);
  const auto h = random_uniform_hypergraph(30, 20, 3, rng);  // estimator 5
  const auto res = derandomized_splitting(h, identity_order(30));
  EXPECT_LE(static_cast<double>(monochromatic_edge_count(h, res.splitting)),
            res.initial_estimator);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DerandomizedSplittingTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(DerandomizedSplittingTest, OrderDoesNotBreakTheInvariant) {
  Rng rng(9);
  const auto h = random_uniform_hypergraph(40, 30, 7, rng);
  auto order = identity_order(40);
  std::reverse(order.begin(), order.end());
  const auto res = derandomized_splitting(h, order);
  EXPECT_TRUE(is_valid_splitting(h, res.splitting));
}

TEST(MoserTardosTest, SucceedsOnLllInstances) {
  // Disjoint-ish edges: D small, so the LLL criterion holds even when the
  // union-bound estimator exceeds 1 (many edges of moderate size).
  Rng rng(31);
  std::vector<std::vector<VertexId>> edges;
  for (std::size_t i = 0; i < 60; ++i) {
    std::vector<VertexId> e;
    for (std::size_t j = 0; j < 6; ++j)
      e.push_back(static_cast<VertexId>(i * 6 + j));  // disjoint 6-sets
    edges.push_back(std::move(e));
  }
  const Hypergraph h(360, std::move(edges));
  EXPECT_GT(splitting_estimator(h), 1.0);  // union bound gives no promise
  EXPECT_LT(lll_criterion(h), 1.0);        // LLL does (D = 0)
  const auto res = moser_tardos_splitting(h, rng);
  EXPECT_TRUE(res.success);
  EXPECT_TRUE(is_valid_splitting(h, res.splitting));
}

TEST(MoserTardosTest, OverlappingEdgesStillConverge) {
  Rng rng(37);
  const auto h = random_uniform_hypergraph(50, 40, 7, rng);
  const auto res = moser_tardos_splitting(h, rng);
  EXPECT_TRUE(res.success);
  EXPECT_TRUE(is_valid_splitting(h, res.splitting));
  EXPECT_LT(res.resamples, 1000u);  // expected O(m)
}

TEST(MoserTardosTest, ImpossibleInstanceExhaustsBudget) {
  // A singleton edge can never be non-monochromatic.
  const Hypergraph h(2, {{0}});
  Rng rng(41);
  const auto res = moser_tardos_splitting(h, rng, /*max_resamples=*/100);
  EXPECT_FALSE(res.success);
  EXPECT_EQ(res.resamples, 100u);
}

TEST(LllCriterionTest, Values) {
  EXPECT_DOUBLE_EQ(lll_criterion(Hypergraph(3, {})), 0.0);
  // Two disjoint size-3 edges: D = 0, p = 2^{-2} -> e * 0.25.
  const Hypergraph h(6, {{0, 1, 2}, {3, 4, 5}});
  EXPECT_NEAR(lll_criterion(h), 2.718281828459045 * 0.25, 1e-9);
  // Sharing a vertex raises D to 1.
  const Hypergraph h2(5, {{0, 1, 2}, {2, 3, 4}});
  EXPECT_NEAR(lll_criterion(h2), 2.718281828459045 * 0.25 * 2.0, 1e-9);
}

TEST(RandomSplittingTest, SucceedsWhpOnLargeEdges) {
  Rng rng(11);
  const auto h = random_uniform_hypergraph(80, 30, 12, rng);
  std::size_t successes = 0;
  for (int rep = 0; rep < 20; ++rep)
    if (is_valid_splitting(h, random_splitting(h, rng))) ++successes;
  EXPECT_GE(successes, 18u);  // estimator = 30 * 2^-11 ~ 0.015 per trial
}

TEST(RandomSplittingTest, FailsOftenOnTinyEdges) {
  Rng rng(13);
  const auto h = random_uniform_hypergraph(40, 30, 2, rng);
  std::size_t successes = 0;
  for (int rep = 0; rep < 20; ++rep)
    if (is_valid_splitting(h, random_splitting(h, rng))) ++successes;
  EXPECT_LT(successes, 5u);  // each size-2 edge mono w.p. 1/2
}

}  // namespace
}  // namespace pslocal
