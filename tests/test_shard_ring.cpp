// shard/ring + shard/router + shard/topology: placement determinism.
// Everything here is socket-free — the ring and router are pure policy,
// so these tests pin the exact placement contract two processes must
// share (docs/shard.md).
#include "shard/ring.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "shard/router.hpp"
#include "shard/topology.hpp"
#include "util/check.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace pslocal::shard {
namespace {

Topology loopback_topology(std::size_t shards, std::uint64_t seed = 1,
                           std::size_t vnodes = 64) {
  Topology topo;
  topo.ring_seed = seed;
  topo.vnodes = vnodes;
  for (std::size_t s = 0; s < shards; ++s)
    topo.shards.push_back(Endpoint{"127.0.0.1",
                                   static_cast<std::uint16_t>(9001 + s)});
  return topo;
}

TEST(ShardRingTest, PointIsAPureFunctionOfItsArguments) {
  // The documented formula, verbatim: no RNG state, no global salt.
  const std::uint64_t gamma = 0x9e3779b97f4a7c15ULL;
  for (std::uint64_t seed : {1ULL, 7ULL, 0xabcdULL}) {
    for (std::size_t shard = 0; shard < 4; ++shard) {
      for (std::size_t vnode = 0; vnode < 8; ++vnode) {
        const std::uint64_t expected =
            mix64(mix64(seed + gamma * (shard + 1)) + vnode + 1);
        EXPECT_EQ(HashRing::point(seed, shard, vnode), expected);
        EXPECT_EQ(HashRing::point(seed, shard, vnode),
                  HashRing::point(seed, shard, vnode));
      }
    }
  }
}

TEST(ShardRingTest, TwoRingsFromEqualConfigAgreeEverywhere) {
  RingConfig config;
  config.seed = 42;
  config.vnodes = 32;
  const HashRing a(4, config);
  const HashRing b(4, config);
  EXPECT_EQ(a.points(), b.points());
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t key = rng.next_u64();
    ASSERT_EQ(a.owner(key), b.owner(key));
    ASSERT_EQ(a.replicas(key, 3), b.replicas(key, 3));
  }
}

TEST(ShardRingTest, PointsAreSortedAndCounted) {
  const HashRing ring(5, RingConfig{/*seed=*/9, /*vnodes=*/16});
  ASSERT_EQ(ring.points().size(), 5u * 16u);
  EXPECT_TRUE(std::is_sorted(ring.points().begin(), ring.points().end()));
  std::vector<std::size_t> per_shard(5, 0);
  for (const auto& [pos, shard] : ring.points()) {
    ASSERT_LT(shard, 5u);
    ++per_shard[shard];
  }
  for (std::size_t s = 0; s < 5; ++s) EXPECT_EQ(per_shard[s], 16u);
}

TEST(ShardRingTest, ReplicasAreDistinctOwnerFirstAndCapped) {
  const HashRing ring(4, RingConfig{/*seed=*/1, /*vnodes=*/64});
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t key = rng.next_u64();
    for (std::size_t count : {std::size_t{1}, std::size_t{2},
                              std::size_t{4}, std::size_t{9}}) {
      const auto reps = ring.replicas(key, count);
      ASSERT_EQ(reps.size(), std::min(count, ring.shards()));
      ASSERT_EQ(reps.front(), ring.owner(key));
      const std::set<std::size_t> distinct(reps.begin(), reps.end());
      ASSERT_EQ(distinct.size(), reps.size()) << "duplicate replica";
    }
  }
}

TEST(ShardRingTest, ScaleDownMovesOnlyTheLostShardsKeys) {
  // ring(N-1)'s point set is a subset of ring(N)'s, so removing the
  // highest-indexed shard relocates exactly the keys it owned.
  RingConfig config;
  config.seed = 5;
  config.vnodes = 48;
  const HashRing big(4, config);
  const HashRing small(3, config);

  // Point-set subset: small's points are exactly big's minus shard 3's.
  std::set<std::pair<std::uint64_t, std::uint32_t>> big_points(
      big.points().begin(), big.points().end());
  for (const auto& p : small.points())
    EXPECT_TRUE(big_points.count(p)) << "new point appeared on scale-down";
  EXPECT_EQ(big.points().size() - small.points().size(), config.vnodes);

  // Key-ownership consequence: surviving owners never change.
  Rng rng(17);
  std::size_t moved = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t key = rng.next_u64();
    const std::size_t before = big.owner(key);
    const std::size_t after = small.owner(key);
    if (before == 3) {
      ++moved;  // lost shard's keys must land somewhere valid
      EXPECT_LT(after, 3u);
    } else {
      ASSERT_EQ(after, before) << "key moved between surviving shards";
    }
  }
  EXPECT_GT(moved, 0u) << "shard 3 owned nothing in 2000 keys";
}

TEST(ShardRingTest, SingleShardOwnsEverything) {
  const HashRing ring(1, RingConfig{/*seed=*/1, /*vnodes=*/4});
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ring.owner(rng.next_u64()), 0u);
  }
  EXPECT_EQ(ring.replicas(123, 5), std::vector<std::size_t>{0});
}

TEST(ShardRouterTest, SelfTestPassesAtDefaultDensity) {
  for (std::size_t shards : {std::size_t{1}, std::size_t{2},
                             std::size_t{4}, std::size_t{8}}) {
    const ShardRouter router(loopback_topology(shards));
    const auto st = router.self_test(/*keys=*/5000);
    EXPECT_TRUE(st.ok) << st.detail;
    EXPECT_EQ(st.keys, 5000u);
    EXPECT_EQ(st.owned.size(), shards);
    EXPECT_LT(st.imbalance, 1.75) << st.detail;
    EXPECT_EQ(st.foreign_moves, 0u) << st.detail;
  }
}

TEST(ShardRouterTest, EqualTopologiesRouteIdentically) {
  const ShardRouter a(loopback_topology(4, /*seed=*/77, /*vnodes=*/32));
  const ShardRouter b(loopback_topology(4, /*seed=*/77, /*vnodes=*/32));
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t key = rng.next_u64();
    ASSERT_EQ(a.route_key(key, 2), b.route_key(key, 2));
  }
}

TEST(ShardTopologyTest, EndpointFormatParsesBackExactly) {
  const Endpoint e{"10.1.2.3", 9042};
  EXPECT_EQ(format_endpoint(e), "10.1.2.3:9042");
  const Endpoint back = parse_endpoint("10.1.2.3:9042");
  EXPECT_EQ(back.host, e.host);
  EXPECT_EQ(back.port, e.port);

  EXPECT_THROW((void)parse_endpoint("no-port"), ContractViolation);
  EXPECT_THROW((void)parse_endpoint(":9001"), ContractViolation);
  EXPECT_THROW((void)parse_endpoint("h:0"), ContractViolation);
  EXPECT_THROW((void)parse_endpoint("h:99999"), ContractViolation);
  EXPECT_THROW((void)parse_endpoint("h:12x"), ContractViolation);
}

TEST(ShardTopologyTest, ParseTopologyPreservesListOrder) {
  // Order is the shard numbering — part of the placement contract.
  const Topology topo =
      parse_topology("127.0.0.1:9001,127.0.0.1:9002,10.0.0.5:80");
  ASSERT_EQ(topo.shards.size(), 3u);
  EXPECT_EQ(topo.shards[0].port, 9001);
  EXPECT_EQ(topo.shards[1].port, 9002);
  EXPECT_EQ(topo.shards[2].host, "10.0.0.5");
  validate_topology(topo);  // defaults are valid
}

TEST(ShardTopologyTest, ValidateRejectsBrokenContracts) {
  Topology empty;
  EXPECT_THROW(validate_topology(empty), ContractViolation);

  Topology zero_port = loopback_topology(2);
  zero_port.shards[1].port = 0;
  EXPECT_THROW(validate_topology(zero_port), ContractViolation);

  Topology over_replicated = loopback_topology(2);
  over_replicated.replication = 3;
  EXPECT_THROW(validate_topology(over_replicated), ContractViolation);

  Topology no_vnodes = loopback_topology(2);
  no_vnodes.vnodes = 0;
  EXPECT_THROW(validate_topology(no_vnodes), ContractViolation);
}

TEST(ShardTopologyTest, JsonIsCanonicalAcrossEqualTopologies) {
  const std::string a = topology_json(loopback_topology(3, 7, 16));
  const std::string b = topology_json(loopback_topology(3, 7, 16));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.find('\n'), std::string::npos) << "must be single-line";
  EXPECT_NE(a, topology_json(loopback_topology(3, 8, 16)))
      << "ring seed must be part of the serialized contract";
}

}  // namespace
}  // namespace pslocal::shard
