#include "core/reduction.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "hypergraph/generators.hpp"
#include "local/luby_mis.hpp"
#include "mis/degraded_oracle.hpp"
#include "mis/exact_maxis.hpp"
#include "mis/greedy_maxis.hpp"
#include "slocal/ball_carving.hpp"

namespace pslocal {
namespace {

PlantedCfInstance planted(std::size_t n, std::size_t m, std::size_t k,
                          std::uint64_t seed) {
  Rng rng(seed);
  PlantedCfParams params;
  params.n = n;
  params.m = m;
  params.k = k;
  return planted_cf_colorable(params, rng);
}

MaxISOraclePtr make_oracle(const std::string& kind) {
  if (kind == "exact") return std::make_unique<ExactOracle>();
  if (kind == "greedy-mindeg") return std::make_unique<GreedyMinDegreeOracle>();
  if (kind == "greedy-clique")
    return std::make_unique<CliqueCoverGreedyOracle>();
  if (kind == "greedy-random") return std::make_unique<RandomGreedyOracle>(7);
  if (kind == "luby") return std::make_unique<LubyOracle>(7);
  if (kind == "carving") return std::make_unique<BallCarvingOracle>();
  throw std::logic_error("unknown oracle " + kind);
}

class ReductionOracleTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ReductionOracleTest, SolvesPlantedInstances) {
  // The carving oracle runs exact MaxIS inside balls, which on dense
  // conflict graphs means nearly the whole graph — keep its instance small.
  const bool heavy = GetParam() == "carving";
  const auto inst =
      heavy ? planted(20, 10, 2, 55) : planted(36, 24, 3, 55);
  auto oracle = make_oracle(GetParam());
  ReductionOptions opts;
  opts.k = heavy ? 2 : 3;
  const auto res = cf_multicoloring_via_maxis(inst.hypergraph, *oracle, opts);
  EXPECT_TRUE(res.success) << GetParam();
  EXPECT_TRUE(is_conflict_free(inst.hypergraph, res.coloring));
  EXPECT_LE(res.colors_used, res.palette_bound);
  EXPECT_EQ(res.palette_bound, opts.k * res.phases);
  // Trace sanity: |E_i| strictly decreases; |I_i| <= removals.
  for (std::size_t i = 0; i < res.trace.size(); ++i) {
    const auto& t = res.trace[i];
    EXPECT_EQ(t.phase, i + 1);
    EXPECT_GE(t.happy_removed, t.is_size);
    if (i > 0) {
      EXPECT_EQ(t.edges_before, res.trace[i - 1].edges_before -
                                    res.trace[i - 1].happy_removed);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Oracles, ReductionOracleTest,
                         ::testing::Values("exact", "greedy-mindeg",
                                           "greedy-clique", "greedy-random",
                                           "luby", "carving"));

TEST(ReductionTest, ExactOracleFinishesInOnePhase) {
  // With lambda = 1 the oracle returns a maximum IS of size |E_i|, making
  // every edge happy at once.
  const auto inst = planted(24, 12, 2, 66);
  ExactOracle oracle;
  ReductionOptions opts;
  opts.k = 2;
  const auto res = cf_multicoloring_via_maxis(inst.hypergraph, oracle, opts);
  EXPECT_TRUE(res.success);
  EXPECT_EQ(res.phases, 1u);
  EXPECT_TRUE(res.within_rho);
}

class ControlledLambdaPhaseTest : public ::testing::TestWithParam<double> {};

TEST_P(ControlledLambdaPhaseTest, PhasesRespectPaperBound) {
  const double lambda = GetParam();
  const auto inst = planted(30, 16, 2, 77);
  ControlledLambdaOracle oracle(lambda);
  ReductionOptions opts;
  opts.k = 2;
  const auto res = cf_multicoloring_via_maxis(inst.hypergraph, oracle, opts);
  ASSERT_TRUE(res.success);
  const auto rho = reduction_phase_bound(lambda, 16);
  EXPECT_EQ(res.rho_bound, rho);
  EXPECT_LE(res.phases, rho) << "lambda=" << lambda;
  EXPECT_TRUE(res.within_rho);
}

TEST_P(ControlledLambdaPhaseTest, GeometricEdgeDecay) {
  const double lambda = GetParam();
  const auto inst = planted(30, 16, 2, 88);
  ControlledLambdaOracle oracle(lambda);
  ReductionOptions opts;
  opts.k = 2;
  const auto res = cf_multicoloring_via_maxis(inst.hypergraph, oracle, opts);
  ASSERT_TRUE(res.success);
  // |E_{i+1}| <= (1 - 1/lambda) |E_i| from |I_i| >= |E_i|/lambda.
  for (std::size_t i = 0; i + 1 < res.trace.size(); ++i) {
    const double before = static_cast<double>(res.trace[i].edges_before);
    const double after = static_cast<double>(res.trace[i + 1].edges_before);
    EXPECT_LE(after, (1.0 - 1.0 / lambda) * before + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Lambdas, ControlledLambdaPhaseTest,
                         ::testing::Values(1.0, 1.5, 2.0, 4.0, 8.0));

TEST(ReductionTest, EdgelessHypergraphSucceedsInstantly) {
  const Hypergraph h(5, {});
  ExactOracle oracle;
  ReductionOptions opts;
  opts.k = 2;
  const auto res = cf_multicoloring_via_maxis(h, oracle, opts);
  EXPECT_TRUE(res.success);
  EXPECT_EQ(res.phases, 0u);
  EXPECT_EQ(res.colors_used, 0u);
}

TEST(ReductionTest, SingleEdge) {
  const Hypergraph h(3, {{0, 1, 2}});
  GreedyMinDegreeOracle oracle;
  ReductionOptions opts;
  opts.k = 2;
  const auto res = cf_multicoloring_via_maxis(h, oracle, opts);
  EXPECT_TRUE(res.success);
  EXPECT_EQ(res.phases, 1u);
}

TEST(ReductionTest, MaxPhaseCapStopsRun) {
  const auto inst = planted(40, 30, 3, 99);
  // Cripple progress: lambda huge -> one IS vertex per phase; cap at 2.
  ControlledLambdaOracle oracle(1000.0);
  ReductionOptions opts;
  opts.k = 3;
  opts.max_phases = 2;
  const auto res = cf_multicoloring_via_maxis(inst.hypergraph, oracle, opts);
  EXPECT_FALSE(res.success);
  EXPECT_EQ(res.phases, 2u);
  EXPECT_FALSE(res.within_rho);
}

TEST(ReductionTest, PaletteAccountingMatchesPaper) {
  // Total colors <= k * rho, with per-phase palettes disjoint.
  const auto inst = planted(32, 20, 2, 111);
  ControlledLambdaOracle oracle(2.0);
  ReductionOptions opts;
  opts.k = 2;
  const auto res = cf_multicoloring_via_maxis(inst.hypergraph, oracle, opts);
  ASSERT_TRUE(res.success);
  EXPECT_LE(res.colors_used, opts.k * res.rho_bound);
  EXPECT_LE(res.coloring.max_color(), opts.k * res.phases);
}

TEST(ReductionTest, PhaseBoundFormula) {
  EXPECT_EQ(reduction_phase_bound(1.0, 1), 1u);  // ceil(0) + 1
  EXPECT_EQ(reduction_phase_bound(2.0, 10),
            static_cast<std::size_t>(std::ceil(2.0 * std::log(10.0))) + 1);
  EXPECT_EQ(reduction_phase_bound(3.0, 0), 0u);
  EXPECT_THROW(reduction_phase_bound(0.5, 10), ContractViolation);
}

// --- failure injection: oracles violating their contract ---------------

// Returns a *dependent* vertex set (both endpoints of some edge).
class NonIndependentOracle final : public MaxISOracle {
 public:
  std::vector<VertexId> solve(const Graph& g) override {
    const auto edges = g.edges();
    if (edges.empty()) return {};
    return {edges.front().first, edges.front().second};
  }
  std::string name() const override { return "broken-dependent"; }
};

// Returns out-of-range vertex ids.
class OutOfRangeOracle final : public MaxISOracle {
 public:
  std::vector<VertexId> solve(const Graph& g) override {
    return {static_cast<VertexId>(g.vertex_count() + 7)};
  }
  std::string name() const override { return "broken-range"; }
};

// Returns nothing, ever (stalls the reduction).
class EmptyOracle final : public MaxISOracle {
 public:
  std::vector<VertexId> solve(const Graph&) override { return {}; }
  std::string name() const override { return "broken-empty"; }
};

TEST(ReductionFailureInjectionTest, DependentSetIsCaughtByVerification) {
  const auto inst = planted(24, 12, 2, 301);
  NonIndependentOracle oracle;
  ReductionOptions opts;
  opts.k = 2;
  opts.verify_phases = true;
  EXPECT_THROW(cf_multicoloring_via_maxis(inst.hypergraph, oracle, opts),
               ContractViolation);
}

TEST(ReductionFailureInjectionTest, OutOfRangeIdsAreCaught) {
  const auto inst = planted(24, 12, 2, 302);
  OutOfRangeOracle oracle;
  ReductionOptions opts;
  opts.k = 2;
  // Caught regardless of the verification flag: decoding an invalid
  // triple id violates the conflict graph's contract.
  for (bool verify : {true, false}) {
    opts.verify_phases = verify;
    EXPECT_THROW(cf_multicoloring_via_maxis(inst.hypergraph, oracle, opts),
                 ContractViolation);
  }
}

TEST(ReductionFailureInjectionTest, EmptyOracleStallsWithoutLooping) {
  const auto inst = planted(24, 12, 2, 303);
  EmptyOracle oracle;
  ReductionOptions opts;
  opts.k = 2;
  const auto res = cf_multicoloring_via_maxis(inst.hypergraph, oracle, opts);
  EXPECT_FALSE(res.success);
  EXPECT_EQ(res.phases, 1u);  // detected zero progress and stopped
  EXPECT_EQ(res.colors_used, 0u);
}

TEST(ReductionTest, WorksWithLargerPaletteThanPlanted) {
  // Promise only needs *some* CF k-coloring; k larger than planted is fine.
  const auto inst = planted(30, 15, 2, 123);
  GreedyMinDegreeOracle oracle;
  ReductionOptions opts;
  opts.k = 4;
  const auto res = cf_multicoloring_via_maxis(inst.hypergraph, oracle, opts);
  EXPECT_TRUE(res.success);
}

}  // namespace
}  // namespace pslocal
