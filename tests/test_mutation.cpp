#include "hypergraph/mutation.hpp"

#include <gtest/gtest.h>

#include "util/hash.hpp"

namespace pslocal {
namespace {

Hypergraph base() { return Hypergraph(5, {{0, 1}, {1, 2, 3}, {3, 4}}); }

TEST(MutationTest, AddEdgeAppendsSorted) {
  std::size_t n = 5;
  std::vector<std::vector<VertexId>> edges = {{0, 1}};
  apply_mutation(n, edges, Mutation::add_edge({4, 2, 3}));
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[1], (std::vector<VertexId>{2, 3, 4}));
  EXPECT_EQ(n, 5u);
}

TEST(MutationTest, RemoveEdgeShiftsLaterIds) {
  std::size_t n = 5;
  std::vector<std::vector<VertexId>> edges = {{0, 1}, {1, 2}, {3, 4}};
  apply_mutation(n, edges, Mutation::remove_edge(1));
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], (std::vector<VertexId>{0, 1}));
  EXPECT_EQ(edges[1], (std::vector<VertexId>{3, 4}));
}

TEST(MutationTest, AddVertexAppendsIsolated) {
  std::size_t n = 3;
  std::vector<std::vector<VertexId>> edges = {{0, 1}};
  apply_mutation(n, edges, Mutation::add_vertex());
  EXPECT_EQ(n, 4u);
  EXPECT_EQ(edges.size(), 1u);
}

TEST(MutationTest, RemoveVertexTombstonesAndErasesEmptyEdges) {
  std::size_t n = 4;
  std::vector<std::vector<VertexId>> edges = {{0}, {0, 1}, {2, 3}, {0, 2}};
  apply_mutation(n, edges, Mutation::remove_vertex(0));
  EXPECT_EQ(n, 4u);  // tombstone: the slot stays
  ASSERT_EQ(edges.size(), 3u);  // edge {0} became empty and was erased
  EXPECT_EQ(edges[0], (std::vector<VertexId>{1}));
  EXPECT_EQ(edges[1], (std::vector<VertexId>{2, 3}));
  EXPECT_EQ(edges[2], (std::vector<VertexId>{2}));
}

TEST(MutationTest, ValidateRejectsMalformed) {
  std::size_t n = 3;
  std::vector<std::vector<VertexId>> edges = {{0, 1}};
  EXPECT_TRUE(validate_mutation(n, edges, Mutation::add_edge({})).has_value());
  EXPECT_TRUE(validate_mutation(n, edges, Mutation::add_edge({0, 3})).has_value());
  EXPECT_TRUE(validate_mutation(n, edges, Mutation::add_edge({1, 1})).has_value());
  EXPECT_TRUE(validate_mutation(n, edges, Mutation::remove_edge(1)).has_value());
  EXPECT_TRUE(validate_mutation(n, edges, Mutation::remove_vertex(3)).has_value());
  EXPECT_FALSE(validate_mutation(n, edges, Mutation::add_edge({0, 2})).has_value());
  EXPECT_FALSE(validate_mutation(n, edges, Mutation::remove_edge(0)).has_value());
  EXPECT_FALSE(validate_mutation(n, edges, Mutation::remove_vertex(2)).has_value());
  EXPECT_FALSE(validate_mutation(n, edges, Mutation::add_vertex()).has_value());
}

TEST(MutationTest, ValidateScriptNamesFailingStep) {
  const auto why = validate_script(
      base(), {Mutation::remove_edge(2), Mutation::remove_edge(2)});
  ASSERT_TRUE(why.has_value());
  EXPECT_NE(why->find("step 1:"), std::string::npos);
}

TEST(MutationTest, ApplyScriptMatchesManualApplication) {
  const std::vector<Mutation> script = {
      Mutation::add_vertex(),            // n = 6
      Mutation::add_edge({0, 5}),        // edge 3
      Mutation::remove_edge(0),          // drops {0,1}; ids shift
      Mutation::remove_vertex(3),        // {1,2,3}->{1,2}, {3,4}->{4}
  };
  const Hypergraph result = apply_script(base(), script);
  EXPECT_EQ(result.vertex_count(), 6u);
  ASSERT_EQ(result.edge_count(), 3u);
  EXPECT_EQ(std::vector<VertexId>(result.edge(0).begin(), result.edge(0).end()),
            (std::vector<VertexId>{1, 2}));
  EXPECT_EQ(std::vector<VertexId>(result.edge(1).begin(), result.edge(1).end()),
            (std::vector<VertexId>{4}));
  EXPECT_EQ(std::vector<VertexId>(result.edge(2).begin(), result.edge(2).end()),
            (std::vector<VertexId>{0, 5}));
}

TEST(MutationTest, ScriptCodecRoundTrips) {
  const std::vector<Mutation> script = {
      Mutation::add_edge({2, 0, 7}), Mutation::remove_edge(3),
      Mutation::add_vertex(), Mutation::remove_vertex(1)};
  const std::string bytes = encode_script(script);
  const auto decoded = decode_script(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, script);
  EXPECT_EQ(encode_script(*decoded), bytes);  // canonical
}

TEST(MutationTest, ScriptDecodeRejectsMalformedBytes) {
  const std::string bytes = encode_script({Mutation::add_edge({0, 1})});
  EXPECT_FALSE(decode_script(bytes.substr(0, bytes.size() - 1)).has_value());  // truncated
  EXPECT_FALSE(decode_script(bytes + '\0').has_value());  // trailing byte
  EXPECT_FALSE(decode_script("").has_value());            // no count
  std::string lying(8, '\0');
  lying[0] = 9;  // claims 9 mutations, provides none
  EXPECT_FALSE(decode_script(lying).has_value());
  std::string bad_op = bytes;
  bad_op[8] = 17;  // op byte out of range
  EXPECT_FALSE(decode_script(bad_op).has_value());
}

TEST(MutationTest, HashMutationSeparatesFields) {
  const auto h1 = hash_mutation(Mutation::add_edge({0, 1}));
  EXPECT_NE(h1, hash_mutation(Mutation::add_edge({0, 2})));
  EXPECT_NE(h1, hash_mutation(Mutation::add_edge({0, 1, 2})));
  EXPECT_NE(hash_mutation(Mutation::remove_edge(0)),
            hash_mutation(Mutation::remove_edge(1)));
  EXPECT_NE(hash_mutation(Mutation::remove_vertex(0)),
            hash_mutation(Mutation::remove_edge(0)));
}

TEST(MutationTest, EpochChainCommitsToOrderAndPrefix) {
  const Hypergraph h = base();
  const std::uint64_t e0 = hash_hypergraph(h);
  const Mutation a = Mutation::remove_edge(0);
  const Mutation b = Mutation::add_vertex();
  const auto ab = epoch_chain(e0, {a, b});
  const auto ba = epoch_chain(e0, {b, a});
  ASSERT_EQ(ab.size(), 3u);
  EXPECT_EQ(ab[0], e0);
  EXPECT_NE(ab[1], ab[2]);
  EXPECT_NE(ab[2], ba[2]);  // order-sensitive
  // Prefix property: the chain of the prefix is a prefix of the chain.
  const auto prefix = epoch_chain(e0, {a});
  EXPECT_EQ(prefix[1], ab[1]);
}

TEST(MutationTest, DescribeFormats) {
  EXPECT_EQ(describe(Mutation::add_edge({1, 4, 7})), "add_edge{1,4,7}");
  EXPECT_EQ(describe(Mutation::remove_edge(3)), "remove_edge(3)");
  EXPECT_EQ(describe(Mutation::add_vertex()), "add_vertex");
  EXPECT_EQ(describe(Mutation::remove_vertex(2)), "remove_vertex(2)");
  EXPECT_EQ(describe(std::vector<Mutation>{Mutation::add_vertex(),
                                           Mutation::remove_edge(0)}),
            "[add_vertex remove_edge(0)]");
}

}  // namespace
}  // namespace pslocal
