#include "local/from_coloring.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "coloring/coloring.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "mis/independent_set.hpp"

namespace pslocal {
namespace {

std::vector<std::size_t> some_proper_coloring(const Graph& g) {
  std::vector<VertexId> order(g.vertex_count());
  std::iota(order.begin(), order.end(), VertexId{0});
  return greedy_coloring(g, order);
}

class FromColoringSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FromColoringSeedTest, MisFromColoringIsMaximal) {
  Rng rng(GetParam());
  const Graph g = gnp(70, 0.1, rng);
  const auto color = some_proper_coloring(g);
  const auto res = mis_from_coloring(g, color);
  EXPECT_TRUE(is_maximal_independent_set(g, res.independent_set));
  EXPECT_EQ(res.rounds, color_count(color));  // one round per class
}

TEST_P(FromColoringSeedTest, ColorReductionHitsDeltaPlusOne) {
  Rng rng(GetParam() + 100);
  const Graph g = gnp(70, 0.12, rng);
  // Start from a wasteful coloring: shift greedy colors upward sparsely.
  auto color = some_proper_coloring(g);
  for (auto& c : color) c = c * 3 + 2;  // still proper, range ~3x
  const auto res = color_reduction(g, color);
  EXPECT_TRUE(is_proper_coloring(g, res.coloring));
  EXPECT_LE(color_count(res.coloring), g.max_degree() + 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FromColoringSeedTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(MisFromColoringTest, TwoColoringOnEvenRing) {
  const Graph g = ring(8);
  std::vector<std::size_t> color(8);
  for (VertexId v = 0; v < 8; ++v) color[v] = v % 2;
  const auto res = mis_from_coloring(g, color);
  // Class 0 = {0,2,4,6} joins entirely in round 0, blocking everyone.
  EXPECT_EQ(res.independent_set, (std::vector<VertexId>{0, 2, 4, 6}));
  EXPECT_EQ(res.rounds, 2u);
}

TEST(MisFromColoringTest, ImproperColoringViolatesContract) {
  const Graph g = ring(4);
  EXPECT_THROW(mis_from_coloring(g, {0, 0, 1, 1}), ContractViolation);
  EXPECT_THROW(mis_from_coloring(g, {0, 1}), ContractViolation);
}

TEST(ColorReductionTest, AlreadyTightIsNoOp) {
  const Graph g = ring(6);
  const std::vector<std::size_t> color{0, 1, 0, 1, 0, 1};
  const auto res = color_reduction(g, color);
  EXPECT_EQ(res.rounds, 0u);
  EXPECT_EQ(res.coloring, color);
}

TEST(ColorReductionTest, CompleteGraphKeepsAllColors) {
  const Graph g = complete(5);
  std::vector<std::size_t> color{0, 1, 2, 3, 4};
  const auto res = color_reduction(g, color);
  EXPECT_EQ(color_count(res.coloring), 5u);  // Δ+1 = 5, nothing to reduce
}

TEST(ColorReductionTest, StarGraphDropsToTwoColors) {
  // Star K_{1,6}: Δ+1 = 7, but give it a wasteful 7-color input with
  // sparse high colors; reduction must land within Δ+1 = 7 and in fact
  // uses one color per round to eliminate classes above 7.
  GraphBuilder b(7);
  for (VertexId leaf = 1; leaf < 7; ++leaf) b.add_edge(0, leaf);
  const Graph g = b.build();
  std::vector<std::size_t> color{9, 10, 11, 12, 13, 14, 15};
  const auto res = color_reduction(g, color);
  EXPECT_TRUE(is_proper_coloring(g, res.coloring));
  EXPECT_LE(color_count(res.coloring), 2u);  // center + identical leaves
}

}  // namespace
}  // namespace pslocal
