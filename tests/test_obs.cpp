// src/obs/: metric registries, histogram bucketing, span tracing.
//
// The trace test is the in-tree equivalent of the acceptance check
// `bench_local_simulation --trace-out=trace.json`: it records a session
// across pool worker threads, then parses the file with util/json and
// validates the Chrome trace-event invariants — a well-formed JSON
// array, monotone `ts` within each `tid`, and balanced B/E pairs.
#include "obs/obs.hpp"

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "local/luby_mis.hpp"
#include "runtime/parallel.hpp"
#include "runtime/thread_pool.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace pslocal {
namespace {

#if PSLOCAL_OBS_ENABLED

TEST(ObsMetricsTest, CounterAggregatesAcrossPoolThreads) {
  obs::Counter c("obs_test.counter_agg");
  const std::uint64_t before = obs::snapshot().counter("obs_test.counter_agg");
  runtime::ThreadPool pool(4);
  runtime::parallel_for_each_index(pool, {10000, 16},
                                   [&](std::size_t) { c.add(1); });
  EXPECT_EQ(obs::snapshot().counter("obs_test.counter_agg") - before, 10000u);
}

TEST(ObsMetricsTest, HandlesWithSameNameShareOneMetric) {
  obs::Counter a("obs_test.shared");
  obs::Counter b("obs_test.shared");
  EXPECT_EQ(a.id(), b.id());
  const std::uint64_t before = obs::snapshot().counter("obs_test.shared");
  a.add(2);
  b.add(3);
  EXPECT_EQ(obs::snapshot().counter("obs_test.shared") - before, 5u);
}

TEST(ObsMetricsTest, GaugeSumsSignedDeltas) {
  obs::Gauge g("obs_test.gauge");
  const std::int64_t before = obs::snapshot().gauge("obs_test.gauge");
  g.add(10);
  g.add(-3);
  EXPECT_EQ(obs::snapshot().gauge("obs_test.gauge") - before, 7);
}

TEST(ObsMetricsTest, HistogramBucketsByLog2) {
  EXPECT_EQ(obs::histogram_bucket(0), 0u);
  EXPECT_EQ(obs::histogram_bucket(1), 1u);
  EXPECT_EQ(obs::histogram_bucket(2), 2u);
  EXPECT_EQ(obs::histogram_bucket(3), 2u);
  EXPECT_EQ(obs::histogram_bucket(4), 3u);
  EXPECT_EQ(obs::histogram_bucket(1023), 10u);
  EXPECT_EQ(obs::histogram_bucket(1024), 11u);
  EXPECT_EQ(obs::histogram_bucket_upper(0), 0u);
  EXPECT_EQ(obs::histogram_bucket_upper(1), 1u);
  EXPECT_EQ(obs::histogram_bucket_upper(10), 1023u);

  obs::Histogram h("obs_test.hist");
  for (std::uint64_t v : {0ull, 1ull, 3ull, 3ull, 8ull, 1000ull}) h.record(v);
  const auto snap = obs::snapshot().histogram("obs_test.hist");
  EXPECT_EQ(snap.count, 6u);
  EXPECT_EQ(snap.sum, 1015u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 1000u);
  EXPECT_EQ(snap.buckets[0], 1u);  // {0}
  EXPECT_EQ(snap.buckets[1], 1u);  // {1}
  EXPECT_EQ(snap.buckets[2], 2u);  // {2,3}
  EXPECT_EQ(snap.buckets[4], 1u);  // [8,15]
  EXPECT_EQ(snap.buckets[10], 1u);  // [512,1023]
  EXPECT_DOUBLE_EQ(snap.mean(), 1015.0 / 6.0);
}

TEST(ObsMetricsTest, HistogramQuantilesHaveLog2Resolution) {
  obs::HistogramSnapshot empty;
  EXPECT_EQ(empty.value_at_quantile(0.5), 0u);

  obs::Histogram h("obs_test.hist_quantiles");
  // 90 fast observations in [8,15], 10 slow ones in [1024,2047].
  for (int i = 0; i < 90; ++i) h.record(10);
  for (int i = 0; i < 10; ++i) h.record(1500);
  const auto snap = obs::snapshot().histogram("obs_test.hist_quantiles");
  // p50 lands in the fast bucket, p99 in the slow one; both report the
  // bucket's inclusive upper bound (clamped to the observed max).
  EXPECT_EQ(snap.value_at_quantile(0.50), 15u);
  EXPECT_EQ(snap.value_at_quantile(0.89), 15u);
  EXPECT_EQ(snap.value_at_quantile(0.99), 1500u);  // clamped to max
  EXPECT_EQ(snap.value_at_quantile(1.0), 1500u);
  EXPECT_EQ(snap.value_at_quantile(0.0), 15u);  // rank 0 -> first bucket
}

TEST(ObsMetricsTest, HistogramMergesMinMaxAcrossThreads) {
  obs::Histogram h("obs_test.hist_threads");
  runtime::ThreadPool pool(4);
  // Values 1..64, one per chunk, recorded on whichever lane runs it.
  runtime::parallel_for_each_index(
      pool, {64, 1}, [&](std::size_t i) { h.record(i + 1); });
  const auto snap = obs::snapshot().histogram("obs_test.hist_threads");
  EXPECT_EQ(snap.count, 64u);
  EXPECT_EQ(snap.sum, 64u * 65u / 2u);
  EXPECT_EQ(snap.min, 1u);
  EXPECT_EQ(snap.max, 64u);
}

class ObsTraceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    // Never leak an active session into later tests.
    obs::finish_tracing();
  }

  static std::string temp_path(const char* name) {
    return ::testing::TempDir() + name;
  }
};

TEST_F(ObsTraceTest, InactiveSessionIsNoop) {
  EXPECT_FALSE(obs::tracing_active());
  { PSL_OBS_SPAN("obs_test.noop"); }
  EXPECT_EQ(obs::finish_tracing(), "");
}

TEST_F(ObsTraceTest, EmitsValidBalancedMonotoneChromeTrace) {
  const std::string path = temp_path("obs_trace.json");
  obs::start_tracing(path);
  EXPECT_TRUE(obs::tracing_active());
  {
    PSL_OBS_SPAN("outer");
    {
      PSL_OBS_SPAN("inner");
    }
    // Spans on pool workers land in per-thread buffers.
    runtime::ThreadPool pool(4);
    runtime::parallel_for(pool, {256, 4},
                          [&](std::size_t, std::size_t) {
                            PSL_OBS_SPAN("chunk");
                          });
    // Real workload: a traced Luby-MIS run (local.round/emit/step spans).
    Rng rng(7);
    const Graph g = gnp(200, 0.05, rng);
    (void)luby_mis(g, 7, /*max_rounds=*/0, pool);
  }
  ASSERT_EQ(obs::finish_tracing(), path);
  EXPECT_FALSE(obs::tracing_active());

  const auto doc = json::parse_file(path);
  ASSERT_TRUE(doc.is_array());
  ASSERT_GT(doc.as_array().size(), 4u);

  std::map<int, double> last_ts;
  std::map<int, std::vector<std::string>> stacks;
  bool saw_local_span = false;
  for (const auto& event : doc.as_array()) {
    ASSERT_TRUE(event.is_object());
    const std::string name = event.at("name").as_string();
    const std::string ph = event.at("ph").as_string();
    const int tid = static_cast<int>(event.at("tid").as_number());
    const double ts = event.at("ts").as_number();
    EXPECT_FALSE(name.empty());
    ASSERT_TRUE(ph == "B" || ph == "E");
    // Monotone ts within each tid.
    if (last_ts.count(tid)) {
      EXPECT_GE(ts, last_ts[tid]);
    }
    last_ts[tid] = ts;
    // Balanced, properly nested B/E.
    if (ph == "B") {
      stacks[tid].push_back(name);
    } else {
      ASSERT_FALSE(stacks[tid].empty());
      EXPECT_EQ(stacks[tid].back(), name);
      stacks[tid].pop_back();
    }
    if (name.rfind("local.", 0) == 0) saw_local_span = true;
  }
  for (const auto& [tid, stack] : stacks) EXPECT_TRUE(stack.empty());
  EXPECT_TRUE(saw_local_span);
  std::remove(path.c_str());
}

TEST_F(ObsTraceTest, BalancesSpansLeftOpenAtFinish) {
  const std::string path = temp_path("obs_trace_unbalanced.json");
  obs::start_tracing(path);
  auto* leaked = new obs::ScopedSpan("leaked");
  ASSERT_EQ(obs::finish_tracing(), path);
  delete leaked;  // E lands after the session; writer already balanced it

  const auto doc = json::parse_file(path);
  std::map<int, int> depth;
  for (const auto& event : doc.as_array()) {
    const int tid = static_cast<int>(event.at("tid").as_number());
    if (event.at("ph").as_string() == "B")
      ++depth[tid];
    else
      --depth[tid];
    EXPECT_GE(depth[tid], 0);
  }
  for (const auto& [tid, d] : depth) EXPECT_EQ(d, 0);
  std::remove(path.c_str());
}

#else  // PSLOCAL_OBS_ENABLED == 0

TEST(ObsDisabledTest, EverythingIsCompiledOut) {
  EXPECT_FALSE(obs::kEnabled);
  obs::Counter c("obs_test.disabled");
  c.add(5);
  obs::Histogram h("obs_test.disabled_hist");
  h.record(7);
  { PSL_OBS_SPAN("obs_test.disabled_span"); }
  const auto snap = obs::snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
  EXPECT_FALSE(obs::tracing_active());
  obs::start_tracing("ignored.json");
  EXPECT_EQ(obs::finish_tracing(), "");
}

#endif  // PSLOCAL_OBS_ENABLED

}  // namespace
}  // namespace pslocal
