// src/obs/: metric registries, histogram bucketing, span tracing.
//
// The trace test is the in-tree equivalent of the acceptance check
// `bench_local_simulation --trace-out=trace.json`: it records a session
// across pool worker threads, then parses the file with util/json and
// validates the Chrome trace-event invariants — a well-formed JSON
// array, monotone `ts` within each `tid`, and balanced B/E pairs.
#include "obs/obs.hpp"

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "local/luby_mis.hpp"
#include "runtime/parallel.hpp"
#include "runtime/thread_pool.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace pslocal {
namespace {

#if PSLOCAL_OBS_ENABLED

TEST(ObsMetricsTest, CounterAggregatesAcrossPoolThreads) {
  obs::Counter c("obs_test.counter_agg");
  const std::uint64_t before = obs::snapshot().counter("obs_test.counter_agg");
  runtime::ThreadPool pool(4);
  runtime::parallel_for_each_index(pool, {10000, 16},
                                   [&](std::size_t) { c.add(1); });
  EXPECT_EQ(obs::snapshot().counter("obs_test.counter_agg") - before, 10000u);
}

TEST(ObsMetricsTest, HandlesWithSameNameShareOneMetric) {
  obs::Counter a("obs_test.shared");
  obs::Counter b("obs_test.shared");
  EXPECT_EQ(a.id(), b.id());
  const std::uint64_t before = obs::snapshot().counter("obs_test.shared");
  a.add(2);
  b.add(3);
  EXPECT_EQ(obs::snapshot().counter("obs_test.shared") - before, 5u);
}

TEST(ObsMetricsTest, GaugeSumsSignedDeltas) {
  obs::Gauge g("obs_test.gauge");
  const std::int64_t before = obs::snapshot().gauge("obs_test.gauge");
  g.add(10);
  g.add(-3);
  EXPECT_EQ(obs::snapshot().gauge("obs_test.gauge") - before, 7);
}

TEST(ObsMetricsTest, HistogramBucketsByLog2) {
  EXPECT_EQ(obs::histogram_bucket(0), 0u);
  EXPECT_EQ(obs::histogram_bucket(1), 1u);
  EXPECT_EQ(obs::histogram_bucket(2), 2u);
  EXPECT_EQ(obs::histogram_bucket(3), 2u);
  EXPECT_EQ(obs::histogram_bucket(4), 3u);
  EXPECT_EQ(obs::histogram_bucket(1023), 10u);
  EXPECT_EQ(obs::histogram_bucket(1024), 11u);
  EXPECT_EQ(obs::histogram_bucket_upper(0), 0u);
  EXPECT_EQ(obs::histogram_bucket_upper(1), 1u);
  EXPECT_EQ(obs::histogram_bucket_upper(10), 1023u);

  obs::Histogram h("obs_test.hist");
  for (std::uint64_t v : {0ull, 1ull, 3ull, 3ull, 8ull, 1000ull}) h.record(v);
  const auto snap = obs::snapshot().histogram("obs_test.hist");
  EXPECT_EQ(snap.count, 6u);
  EXPECT_EQ(snap.sum, 1015u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 1000u);
  EXPECT_EQ(snap.buckets[0], 1u);  // {0}
  EXPECT_EQ(snap.buckets[1], 1u);  // {1}
  EXPECT_EQ(snap.buckets[2], 2u);  // {2,3}
  EXPECT_EQ(snap.buckets[4], 1u);  // [8,15]
  EXPECT_EQ(snap.buckets[10], 1u);  // [512,1023]
  EXPECT_DOUBLE_EQ(snap.mean(), 1015.0 / 6.0);
}

TEST(ObsMetricsTest, HistogramQuantilesHaveLog2Resolution) {
  obs::HistogramSnapshot empty;
  EXPECT_EQ(empty.value_at_quantile(0.5), 0u);

  obs::Histogram h("obs_test.hist_quantiles");
  // 90 fast observations in [8,15], 10 slow ones in [1024,2047].
  for (int i = 0; i < 90; ++i) h.record(10);
  for (int i = 0; i < 10; ++i) h.record(1500);
  const auto snap = obs::snapshot().histogram("obs_test.hist_quantiles");
  // p50 lands in the fast bucket, p99 in the slow one; both report the
  // bucket's inclusive upper bound (clamped to the observed max).
  EXPECT_EQ(snap.value_at_quantile(0.50), 15u);
  EXPECT_EQ(snap.value_at_quantile(0.89), 15u);
  EXPECT_EQ(snap.value_at_quantile(0.99), 1500u);  // clamped to max
  EXPECT_EQ(snap.value_at_quantile(1.0), 1500u);
  EXPECT_EQ(snap.value_at_quantile(0.0), 15u);  // rank 0 -> first bucket
}

TEST(ObsMetricsTest, QuantileEdgeCases) {
  // Empty histogram: every quantile (including out-of-range q) is 0.
  obs::HistogramSnapshot empty;
  EXPECT_EQ(empty.value_at_quantile(0.0), 0u);
  EXPECT_EQ(empty.value_at_quantile(1.0), 0u);
  EXPECT_EQ(empty.value_at_quantile(-1.0), 0u);
  EXPECT_EQ(empty.value_at_quantile(2.0), 0u);

  // A single observation is every quantile, clamped to the observed
  // max rather than its bucket's upper bound (100 lives in [64,127]).
  obs::Histogram one("obs_test.quant_single");
  one.record(100);
  const auto single = obs::snapshot().histogram("obs_test.quant_single");
  EXPECT_EQ(single.value_at_quantile(0.0), 100u);
  EXPECT_EQ(single.value_at_quantile(0.5), 100u);
  EXPECT_EQ(single.value_at_quantile(1.0), 100u);

  // All mass in one bucket: quantiles collapse to that bucket,
  // clamped to max.
  obs::Histogram flat("obs_test.quant_flat");
  for (int i = 0; i < 100; ++i) flat.record(10);
  const auto uni = obs::snapshot().histogram("obs_test.quant_flat");
  EXPECT_EQ(uni.value_at_quantile(0.01), 10u);
  EXPECT_EQ(uni.value_at_quantile(0.99), 10u);

  // q outside [0,1] clamps instead of reading past the buckets.
  EXPECT_EQ(uni.value_at_quantile(-0.5), uni.value_at_quantile(0.0));
  EXPECT_EQ(uni.value_at_quantile(1.5), uni.max);

  // Bucket-0 only (all-zero observations): quantile is bucket 0's
  // upper bound, which is 0.
  obs::Histogram zeros("obs_test.quant_zeros");
  for (int i = 0; i < 5; ++i) zeros.record(0);
  EXPECT_EQ(obs::snapshot().histogram("obs_test.quant_zeros")
                .value_at_quantile(0.5),
            0u);
}

TEST(ObsMetricsTest, ExemplarsKeepNewestPerBucket) {
  obs::Histogram h("obs_test.exemplars");
  // Three exemplar-carrying records land in bucket 4 ([8,15]); the
  // ring keeps only the kExemplarSlots == 2 newest, newest first.
  h.record(10, 0xA1);
  h.record(11, 0xA2);
  h.record(12, 0xA3);
  // trace_id 0 means "no exemplar" — must not evict anything.
  h.record(13, 0);
  // A different bucket keeps its own slots.
  h.record(1500, 0xB1);

  const auto snap = obs::snapshot().histogram("obs_test.exemplars");
  ASSERT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.exemplars[4][0].trace_id, 0xA3u);
  EXPECT_EQ(snap.exemplars[4][1].trace_id, 0xA2u);
  EXPECT_EQ(snap.exemplars[11][0].trace_id, 0xB1u);
  EXPECT_EQ(snap.exemplars[11][1].trace_id, 0u);  // empty slot
  // Newest-first within a bucket.
  EXPECT_GE(snap.exemplars[4][0].at_ns, snap.exemplars[4][1].at_ns);

  // Exemplar-free histograms stay exemplar-free.
  obs::Histogram plain("obs_test.exemplars_none");
  plain.record(10);
  plain.record(10, 0);
  const auto none = obs::snapshot().histogram("obs_test.exemplars_none");
  for (const auto& bucket : none.exemplars)
    for (const auto& e : bucket) EXPECT_EQ(e.trace_id, 0u);
}

TEST(ObsMetricsTest, ExemplarMergeKeepsNewestAcrossThreads) {
  obs::Histogram h("obs_test.exemplars_mt");
  runtime::ThreadPool pool(4);
  // 64 exemplar-carrying records into one bucket from whichever lanes
  // run them; the snapshot's max-K-by-recency merge must surface
  // exactly kExemplarSlots of the recorded ids, newest first.
  runtime::parallel_for_each_index(pool, {64, 1}, [&](std::size_t i) {
    h.record(10, 0x1000 + i);
  });
  const auto snap = obs::snapshot().histogram("obs_test.exemplars_mt");
  EXPECT_EQ(snap.count, 64u);
  const auto& slots = snap.exemplars[4];
  for (const auto& e : slots) {
    EXPECT_GE(e.trace_id, 0x1000u);
    EXPECT_LT(e.trace_id, 0x1040u);
  }
  EXPECT_NE(slots[0].trace_id, slots[1].trace_id);
  EXPECT_GE(slots[0].at_ns, slots[1].at_ns);
}

TEST(ObsMetricsTest, SnapshotJsonGoldenBytes) {
  // Pins the wire stats payload byte-for-byte: sorted metric names,
  // fixed field order, sparse [upper,count] buckets, hex64 exemplars.
  obs::Snapshot s;
  s.counters["b.count"] = 2;
  s.counters["a.count"] = 1;  // std::map orders a before b
  s.gauges["g"] = -3;
  obs::HistogramSnapshot h;
  h.count = 3;
  h.sum = 21;
  h.min = 1;
  h.max = 10;
  h.buckets[1] = 1;
  h.buckets[4] = 2;
  h.exemplars[4][0] = {0xabc, 200};
  h.exemplars[4][1] = {0x123, 100};
  s.histograms["h"] = h;

  EXPECT_EQ(obs::snapshot_json(s),
            "{\"counters\":{\"a.count\":1,\"b.count\":2},"
            "\"gauges\":{\"g\":-3},"
            "\"histograms\":{\"h\":{\"count\":3,\"sum\":21,\"min\":1,"
            "\"max\":10,\"p50\":10,\"p99\":10,"
            "\"buckets\":[[1,1],[15,2]],"
            "\"exemplars\":[[15,\"0x0000000000000abc\","
            "\"0x0000000000000123\"]]}}}");

  // The payload must parse back with util/json and round-trip the
  // numbers.
  const auto doc = json::parse(obs::snapshot_json(s));
  EXPECT_EQ(doc.at("counters").at("a.count").as_number(), 1.0);
  EXPECT_EQ(doc.at("histograms").at("h").at("p99").as_number(), 10.0);
}

TEST(ObsMetricsTest, SnapshotJsonByteDeterministicAcrossThreadCounts) {
  // The same multiset of observations recorded under different thread
  // counts must serialize to identical bytes — the merge is
  // commutative and the key order fixed, so thread scheduling can
  // never leak into the scraped payload.
  const auto run = [](const char* name, std::size_t threads) {
    obs::Histogram h(name);
    runtime::ThreadPool pool(threads);
    runtime::parallel_for_each_index(pool, {64, 1}, [&](std::size_t i) {
      // Exactly one record carries an exemplar so the newest-K merge
      // has a schedule-independent answer.
      h.record(i + 1, i == 41 ? 0x41u : 0u);
    });
    return obs::snapshot().histogram(name);
  };
  obs::Snapshot a;
  a.histograms["h"] = run("obs_test.det_t1", 1);
  obs::Snapshot b;
  b.histograms["h"] = run("obs_test.det_t4", 4);
  EXPECT_EQ(obs::snapshot_json(a), obs::snapshot_json(b));
}

TEST(ObsMetricsTest, HistogramMergesMinMaxAcrossThreads) {
  obs::Histogram h("obs_test.hist_threads");
  runtime::ThreadPool pool(4);
  // Values 1..64, one per chunk, recorded on whichever lane runs it.
  runtime::parallel_for_each_index(
      pool, {64, 1}, [&](std::size_t i) { h.record(i + 1); });
  const auto snap = obs::snapshot().histogram("obs_test.hist_threads");
  EXPECT_EQ(snap.count, 64u);
  EXPECT_EQ(snap.sum, 64u * 65u / 2u);
  EXPECT_EQ(snap.min, 1u);
  EXPECT_EQ(snap.max, 64u);
}

class ObsTraceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    // Never leak an active session into later tests.
    obs::finish_tracing();
  }

  static std::string temp_path(const char* name) {
    return ::testing::TempDir() + name;
  }
};

TEST_F(ObsTraceTest, InactiveSessionIsNoop) {
  EXPECT_FALSE(obs::tracing_active());
  { PSL_OBS_SPAN("obs_test.noop"); }
  EXPECT_EQ(obs::finish_tracing(), "");
}

TEST_F(ObsTraceTest, EmitsValidBalancedMonotoneChromeTrace) {
  const std::string path = temp_path("obs_trace.json");
  obs::start_tracing(path);
  EXPECT_TRUE(obs::tracing_active());
  {
    PSL_OBS_SPAN("outer");
    {
      PSL_OBS_SPAN("inner");
    }
    // Spans on pool workers land in per-thread buffers.
    runtime::ThreadPool pool(4);
    runtime::parallel_for(pool, {256, 4},
                          [&](std::size_t, std::size_t) {
                            PSL_OBS_SPAN("chunk");
                          });
    // Real workload: a traced Luby-MIS run (local.round/emit/step spans).
    Rng rng(7);
    const Graph g = gnp(200, 0.05, rng);
    (void)luby_mis(g, 7, /*max_rounds=*/0, pool);
  }
  ASSERT_EQ(obs::finish_tracing(), path);
  EXPECT_FALSE(obs::tracing_active());

  const auto doc = json::parse_file(path);
  ASSERT_TRUE(doc.is_array());
  ASSERT_GT(doc.as_array().size(), 4u);

  std::map<int, double> last_ts;
  std::map<int, std::vector<std::string>> stacks;
  bool saw_local_span = false;
  for (const auto& event : doc.as_array()) {
    ASSERT_TRUE(event.is_object());
    const std::string name = event.at("name").as_string();
    const std::string ph = event.at("ph").as_string();
    const int tid = static_cast<int>(event.at("tid").as_number());
    const double ts = event.at("ts").as_number();
    EXPECT_FALSE(name.empty());
    ASSERT_TRUE(ph == "B" || ph == "E" || ph == "M");
    if (ph == "M") {  // track-name metadata, outside the span nesting
      EXPECT_EQ(event.at("cat").as_string(), "__metadata");
      continue;
    }
    // Monotone ts within each tid.
    if (last_ts.count(tid)) {
      EXPECT_GE(ts, last_ts[tid]);
    }
    last_ts[tid] = ts;
    // Balanced, properly nested B/E.
    if (ph == "B") {
      stacks[tid].push_back(name);
    } else {
      ASSERT_FALSE(stacks[tid].empty());
      EXPECT_EQ(stacks[tid].back(), name);
      stacks[tid].pop_back();
    }
    if (name.rfind("local.", 0) == 0) saw_local_span = true;
  }
  for (const auto& [tid, stack] : stacks) EXPECT_TRUE(stack.empty());
  EXPECT_TRUE(saw_local_span);
  std::remove(path.c_str());
}

TEST_F(ObsTraceTest, BalancesSpansLeftOpenAtFinish) {
  const std::string path = temp_path("obs_trace_unbalanced.json");
  obs::start_tracing(path);
  auto* leaked = new obs::ScopedSpan("leaked");
  ASSERT_EQ(obs::finish_tracing(), path);
  delete leaked;  // E lands after the session; writer already balanced it

  const auto doc = json::parse_file(path);
  std::map<int, int> depth;
  for (const auto& event : doc.as_array()) {
    const int tid = static_cast<int>(event.at("tid").as_number());
    if (event.at("ph").as_string() == "B")
      ++depth[tid];
    else
      --depth[tid];
    EXPECT_GE(depth[tid], 0);
  }
  for (const auto& [tid, d] : depth) EXPECT_EQ(d, 0);
  std::remove(path.c_str());
}

TEST_F(ObsTraceTest, SpansCarryAdoptedTraceContextAndThreadLabels) {
  // Ambient context is empty outside any adoption.
  EXPECT_EQ(obs::current_trace_context().trace_id, 0u);

  const std::string path = temp_path("obs_trace_ctx.json");
  obs::start_tracing(path);
  obs::set_thread_label("obs_test.labeled");
  {
    // Adopt a wire context (trace 0xabc, parent span 7), as a server
    // io loop does for an incoming frame; spans opened underneath
    // inherit the trace id and chain parent_span_id correctly.
    obs::ScopedTraceContext ctx(0xabc, 7);
    EXPECT_EQ(obs::current_trace_context().trace_id, 0xabcu);
    PSL_OBS_SPAN("obs_test.ctx_outer");
    {
      PSL_OBS_SPAN("obs_test.ctx_inner");
    }
  }
  EXPECT_EQ(obs::current_trace_context().trace_id, 0u);  // restored
  ASSERT_EQ(obs::finish_tracing(), path);

  const auto doc = json::parse_file(path);
  std::string outer_span_id;
  std::string inner_parent;
  bool saw_label = false;
  for (const auto& event : doc.as_array()) {
    const std::string ph = event.at("ph").as_string();
    const std::string name = event.at("name").as_string();
    if (ph == "M") {
      saw_label = saw_label ||
                  (name == "thread_name" &&
                   event.at("args").at("name").as_string() ==
                       "obs_test.labeled");
      continue;
    }
    if (ph != "B") continue;
    ASSERT_TRUE(event.has("args")) << name;
    const auto& args = event.at("args");
    EXPECT_EQ(args.at("trace_id").as_string(), "0x0000000000000abc");
    if (name == "obs_test.ctx_outer") {
      EXPECT_EQ(args.at("parent_span_id").as_string(),
                "0x0000000000000007");
      outer_span_id = args.at("span_id").as_string();
    } else if (name == "obs_test.ctx_inner") {
      inner_parent = args.at("parent_span_id").as_string();
    }
  }
  EXPECT_TRUE(saw_label);
  ASSERT_FALSE(outer_span_id.empty());
  EXPECT_NE(outer_span_id, "0x0000000000000000");
  EXPECT_EQ(inner_parent, outer_span_id);  // child chains to parent
  std::remove(path.c_str());
}

TEST_F(ObsTraceTest, NewTraceIdsAreUniqueAndNonZero) {
  std::uint64_t a = obs::new_trace_id();
  std::uint64_t b = obs::new_trace_id();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

#else  // PSLOCAL_OBS_ENABLED == 0

TEST(ObsDisabledTest, EverythingIsCompiledOut) {
  EXPECT_FALSE(obs::kEnabled);
  obs::Counter c("obs_test.disabled");
  c.add(5);
  obs::Histogram h("obs_test.disabled_hist");
  h.record(7);
  h.record(7, /*exemplar_trace_id=*/0xabc);
  { PSL_OBS_SPAN("obs_test.disabled_span"); }
  const auto snap = obs::snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
  EXPECT_FALSE(obs::tracing_active());
  obs::start_tracing("ignored.json");
  EXPECT_EQ(obs::finish_tracing(), "");
  // Trace-context stubs: adoption compiles, ambient stays zero.
  obs::ScopedTraceContext ctx(0xabc, 7);
  EXPECT_EQ(obs::current_trace_context().trace_id, 0u);
  EXPECT_EQ(obs::new_trace_id(), 0u);
  // The stats payload serializer still answers — with the empty maps —
  // so the wire `stats` kind works in OBS=OFF builds (docs/tracing.md).
  EXPECT_EQ(obs::snapshot_json(snap),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
}

#endif  // PSLOCAL_OBS_ENABLED

}  // namespace
}  // namespace pslocal
