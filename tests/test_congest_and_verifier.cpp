#include <gtest/gtest.h>

#include "coloring/local_verifier.hpp"
#include "graph/generators.hpp"
#include "hypergraph/generators.hpp"
#include "local/congest.hpp"

namespace pslocal {
namespace {

// Fixed-size-message flooding (same as the simulator test's probe).
struct FloodState {
  bool informed = false;
  std::size_t round = 0;
};

class Flood final : public BroadcastAlgorithm<FloodState, int> {
 public:
  explicit Flood(std::size_t stop) : stop_(stop) {}
  FloodState init(VertexId v, const Graph&, Rng&) override {
    return FloodState{v == 0, 0};
  }
  std::optional<int> emit(VertexId, const FloodState& s) override {
    if (s.informed) return 1;
    return std::nullopt;
  }
  void step(VertexId, FloodState& s, std::span<const std::optional<int>> inbox,
            Rng&) override {
    ++s.round;
    if (s.informed) return;
    for (const auto& m : inbox)
      if (m) {
        s.informed = true;
        return;
      }
  }
  bool halted(VertexId, const FloodState& s) override {
    return s.round >= stop_;
  }

 private:
  std::size_t stop_;
};

// Variable-size messages: node v broadcasts a v-byte payload.
class FatFlood final : public BroadcastAlgorithm<FloodState, std::size_t> {
 public:
  explicit FatFlood(std::size_t stop) : stop_(stop) {}
  FloodState init(VertexId v, const Graph&, Rng&) override {
    return FloodState{v == 0, 0};
  }
  std::optional<std::size_t> emit(VertexId v, const FloodState&) override {
    return static_cast<std::size_t>(v) + 1;  // declared size v+1
  }
  void step(VertexId, FloodState& s, std::span<const std::optional<std::size_t>>,
            Rng&) override {
    ++s.round;
  }
  bool halted(VertexId, const FloodState& s) override {
    return s.round >= stop_;
  }
  std::size_t message_size(const std::size_t& m) const override { return m; }

 private:
  std::size_t stop_;
};

TEST(CongestTest, SemanticsMatchLocalExactly) {
  const Graph g = grid(4, 4);
  Flood a(6), b(6);
  const auto local = run_local(g, a, 3, 100);
  const auto congest = run_congest(g, b, 3, 100, /*bandwidth=*/1024);
  ASSERT_EQ(local.states.size(), congest.local.states.size());
  for (std::size_t v = 0; v < local.states.size(); ++v)
    EXPECT_EQ(local.states[v].informed, congest.local.states[v].informed);
  EXPECT_EQ(local.rounds, congest.local.rounds);
  // Bandwidth above message size: one fragment per round.
  EXPECT_EQ(congest.physical_rounds, congest.local.rounds);
  EXPECT_EQ(congest.max_fragments_per_round, 1u);
}

TEST(CongestTest, FragmentationBillsExtraRounds) {
  const Graph g = path(8);
  FatFlood algo(3);  // biggest message each round: 8 bytes (node 7)
  const auto run = run_congest(g, algo, 1, 100, /*bandwidth=*/3);
  EXPECT_EQ(run.local.rounds, 3u);
  // ceil(8/3) = 3 fragments per algorithm round.
  EXPECT_EQ(run.max_fragments_per_round, 3u);
  EXPECT_EQ(run.physical_rounds, 9u);
}

TEST(CongestTest, ZeroBandwidthViolatesContract) {
  const Graph g = path(3);
  Flood algo(1);
  EXPECT_THROW(run_congest(g, algo, 1, 10, 0), ContractViolation);
}

TEST(IncidenceGraphTest, Structure) {
  const Hypergraph h(4, {{0, 1, 2}, {2, 3}});
  const Graph inc = h.incidence_graph();
  EXPECT_EQ(inc.vertex_count(), 6u);  // 4 vertices + 2 edge agents
  EXPECT_EQ(inc.edge_count(), 5u);    // sum of edge sizes
  EXPECT_TRUE(inc.has_edge(0, 4));
  EXPECT_TRUE(inc.has_edge(2, 4));
  EXPECT_TRUE(inc.has_edge(2, 5));
  EXPECT_TRUE(inc.has_edge(3, 5));
  EXPECT_FALSE(inc.has_edge(0, 5));
  EXPECT_FALSE(inc.has_edge(0, 1));  // vertices not directly joined
}

TEST(LocalVerifierTest, AcceptsValidColorings) {
  Rng rng(3);
  PlantedCfParams params;
  params.n = 24;
  params.m = 16;
  params.k = 3;
  const auto inst = planted_cf_colorable(params, rng);
  CfMulticoloring mc(inst.hypergraph.vertex_count());
  for (VertexId v = 0; v < inst.hypergraph.vertex_count(); ++v)
    mc.add_color(v, inst.planted_coloring[v]);

  const auto verdict = local_cf_verify(inst.hypergraph, mc);
  EXPECT_TRUE(verdict.accept);
  EXPECT_EQ(verdict.rounds, 2u);
  for (bool e : verdict.edge_happy) EXPECT_TRUE(e);
  for (bool v : verdict.vertex_accepts) EXPECT_TRUE(v);
}

TEST(LocalVerifierTest, RejectsAndLocalizesViolations) {
  const Hypergraph h(4, {{0, 1}, {2, 3}});
  CfMulticoloring mc(4);
  mc.add_color(0, 1);
  mc.add_color(1, 2);  // edge 0 happy
  mc.add_color(2, 5);
  mc.add_color(3, 5);  // edge 1 monochromatic in color 5 -> unhappy
  const auto verdict = local_cf_verify(h, mc);
  EXPECT_FALSE(verdict.accept);
  EXPECT_TRUE(verdict.edge_happy[0]);
  EXPECT_FALSE(verdict.edge_happy[1]);
  // The rejection is localized: members of edge 1 reject, edge 0's accept.
  EXPECT_TRUE(verdict.vertex_accepts[0]);
  EXPECT_TRUE(verdict.vertex_accepts[1]);
  EXPECT_FALSE(verdict.vertex_accepts[2]);
  EXPECT_FALSE(verdict.vertex_accepts[3]);
}

TEST(LocalVerifierTest, UncoloredVerticesRejectWhenEdgesNeedThem) {
  const Hypergraph h(2, {{0, 1}});
  const CfMulticoloring empty(2);
  const auto verdict = local_cf_verify(h, empty);
  EXPECT_FALSE(verdict.accept);
}

TEST(LocalVerifierTest, EdgelessAlwaysAccepts) {
  const Hypergraph h(3, {});
  const auto verdict = local_cf_verify(h, CfMulticoloring(3));
  EXPECT_TRUE(verdict.accept);
}

}  // namespace
}  // namespace pslocal
