#include "mis/greedy_maxis.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.hpp"
#include "mis/degraded_oracle.hpp"
#include "mis/exact_maxis.hpp"
#include "mis/independent_set.hpp"

namespace pslocal {
namespace {

std::vector<VertexId> identity_order(const Graph& g) {
  std::vector<VertexId> order(g.vertex_count());
  std::iota(order.begin(), order.end(), VertexId{0});
  return order;
}

TEST(GreedyInOrderTest, IsTheSLocalGreedy) {
  const Graph g = path(5);
  // Identity order on a path picks 0, 2, 4.
  EXPECT_EQ(greedy_mis_in_order(g, identity_order(g)),
            (std::vector<VertexId>{0, 2, 4}));
  // Reverse order picks 4, 2, 0.
  std::vector<VertexId> rev{4, 3, 2, 1, 0};
  EXPECT_EQ(greedy_mis_in_order(g, rev), (std::vector<VertexId>{4, 2, 0}));
}

TEST(GreedyInOrderTest, BadOrderViolatesContract) {
  const Graph g = path(3);
  EXPECT_THROW(greedy_mis_in_order(g, {0, 1}), ContractViolation);
}

class GreedyFamilyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GreedyFamilyTest, AllGreedyVariantsProduceValidSets) {
  Rng rng(GetParam());
  const Graph g = gnp(70, 0.12, rng);
  const auto a = greedy_min_degree_maxis(g);
  EXPECT_TRUE(is_maximal_independent_set(g, a));
  const auto b = clique_cover_greedy_maxis(g);
  EXPECT_TRUE(is_independent_set(g, b));
  RandomGreedyOracle oracle(GetParam());
  const auto c = oracle.solve(g);
  EXPECT_TRUE(is_maximal_independent_set(g, c));
  // Turán-type floor: any MIS has size >= n/(Δ+1).
  const double floor_bound = static_cast<double>(g.vertex_count()) /
                             (static_cast<double>(g.max_degree()) + 1.0);
  EXPECT_GE(static_cast<double>(a.size()), floor_bound);
  EXPECT_GE(static_cast<double>(c.size()), floor_bound);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyFamilyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(GreedyMinDegreeTest, OptimalOnSimpleFamilies) {
  EXPECT_EQ(greedy_min_degree_maxis(path(9)).size(), 5u);
  EXPECT_EQ(greedy_min_degree_maxis(ring(10)).size(), 5u);
  EXPECT_EQ(greedy_min_degree_maxis(complete(6)).size(), 1u);
  EXPECT_EQ(greedy_min_degree_maxis(disjoint_cliques({3, 3, 3})).size(), 3u);
  EXPECT_EQ(greedy_min_degree_maxis(complete_bipartite(2, 9)).size(), 9u);
}

TEST(GreedyMinDegreeTest, HalldorssonRatioOnRandomGraphs) {
  // (Δ+2)/3 worst-case ratio; verify on instances with known alpha.
  Rng rng(33);
  for (int rep = 0; rep < 6; ++rep) {
    const Graph g = gnp(24, 0.3, rng);
    const auto greedy = greedy_min_degree_maxis(g);
    const auto alpha = independence_number(g);
    const double ratio = static_cast<double>(alpha) /
                         static_cast<double>(greedy.size());
    EXPECT_LE(ratio, (static_cast<double>(g.max_degree()) + 2.0) / 3.0);
  }
}

TEST(CliqueCoverGreedyTest, PerfectOnDisjointCliques) {
  const Graph g = disjoint_cliques({4, 4, 4, 4});
  EXPECT_EQ(clique_cover_greedy_maxis(g).size(), 4u);
}

TEST(ControlledLambdaTest, TruncatesExactly) {
  const Graph g = disjoint_cliques({2, 2, 2, 2, 2, 2});  // alpha = 6
  ControlledLambdaOracle half(2.0);
  EXPECT_EQ(half.solve(g).size(), 3u);  // ceil(6/2)
  ControlledLambdaOracle exact(1.0);
  EXPECT_EQ(exact.solve(g).size(), 6u);
  ControlledLambdaOracle four(4.0);
  EXPECT_EQ(four.solve(g).size(), 2u);  // ceil(6/4) = 2
  EXPECT_TRUE(is_independent_set(g, four.solve(g)));
}

TEST(ControlledLambdaTest, NeverReturnsEmptyOnNonemptyGraph) {
  ControlledLambdaOracle oracle(100.0);
  const auto is = oracle.solve(ring(5));
  EXPECT_EQ(is.size(), 1u);
}

TEST(ControlledLambdaTest, GuaranteeMetAcrossRandomGraphs) {
  Rng rng(41);
  for (double lambda : {1.0, 1.5, 2.0, 3.0, 8.0}) {
    ControlledLambdaOracle oracle(lambda);
    ASSERT_EQ(*oracle.lambda_guarantee(), lambda);
    for (int rep = 0; rep < 3; ++rep) {
      const Graph g = gnp(20, 0.25, rng);
      const auto alpha = independence_number(g);
      const auto is = oracle.solve(g);
      EXPECT_TRUE(is_independent_set(g, is));
      EXPECT_GE(static_cast<double>(is.size()) * lambda,
                static_cast<double>(alpha));
    }
  }
}

TEST(ControlledLambdaTest, InvalidLambdaViolatesContract) {
  EXPECT_THROW(ControlledLambdaOracle(0.5), ContractViolation);
}

}  // namespace
}  // namespace pslocal
