#include "slocal/greedy_algorithms.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "coloring/coloring.hpp"
#include "graph/generators.hpp"
#include "mis/independent_set.hpp"

namespace pslocal {
namespace {

struct OrderCase {
  std::string name;
  bool reversed;
  std::uint64_t shuffle_seed;  // 0 = no shuffle
};

std::vector<VertexId> make_order(const Graph& g, const OrderCase& c) {
  std::vector<VertexId> order(g.vertex_count());
  std::iota(order.begin(), order.end(), VertexId{0});
  if (c.reversed) std::reverse(order.begin(), order.end());
  if (c.shuffle_seed != 0) {
    Rng rng(c.shuffle_seed);
    rng.shuffle(order);
  }
  return order;
}

class SLocalOrderTest : public ::testing::TestWithParam<OrderCase> {};

TEST_P(SLocalOrderTest, GreedyMisIsMaximalWithLocalityOne) {
  Rng rng(77);
  const Graph g = gnp(60, 0.1, rng);
  const auto order = make_order(g, GetParam());
  const auto res = slocal_greedy_mis(g, order);
  EXPECT_TRUE(is_maximal_independent_set(g, res.independent_set));
  EXPECT_EQ(res.locality, 1u);  // the paper's SLOCAL(1) claim
}

TEST_P(SLocalOrderTest, GreedyColoringIsProperDeltaPlusOne) {
  Rng rng(78);
  const Graph g = gnp(60, 0.15, rng);
  const auto order = make_order(g, GetParam());
  const auto res = slocal_greedy_coloring(g, order);
  EXPECT_TRUE(is_proper_coloring(g, res.coloring));
  EXPECT_LE(res.colors_used, g.max_degree() + 1);
  EXPECT_EQ(res.locality, 1u);
}

INSTANTIATE_TEST_SUITE_P(Orders, SLocalOrderTest,
                         ::testing::Values(OrderCase{"identity", false, 0},
                                           OrderCase{"reverse", true, 0},
                                           OrderCase{"shuffled1", false, 11},
                                           OrderCase{"shuffled2", false, 23}),
                         [](const auto& info) { return info.param.name; });

TEST(SLocalMisTest, ArbitraryOrderIsTheIntroAlgorithm) {
  // "iterating through the nodes in an arbitrary order and joining the
  //  independent set if none of the already processed neighbors is already
  //  contained in the set" — identity order on a ring.
  const Graph g = ring(7);
  std::vector<VertexId> order{0, 1, 2, 3, 4, 5, 6};
  const auto res = slocal_greedy_mis(g, order);
  EXPECT_EQ(res.independent_set, (std::vector<VertexId>{0, 2, 4}));
}

TEST(SLocalMisTest, EdgelessGraphTakesAll) {
  const Graph g = Graph::from_edges(5, {});
  std::vector<VertexId> order{4, 3, 2, 1, 0};
  const auto res = slocal_greedy_mis(g, order);
  EXPECT_EQ(res.independent_set.size(), 5u);
}

TEST(SLocalColoringTest, CompleteGraphUsesAllColors) {
  const Graph g = complete(5);
  std::vector<VertexId> order{0, 1, 2, 3, 4};
  const auto res = slocal_greedy_coloring(g, order);
  EXPECT_EQ(res.colors_used, 5u);
}

TEST(SLocalColoringTest, BipartiteGetsTwoColorsInGoodOrder) {
  const Graph g = complete_bipartite(4, 4);
  std::vector<VertexId> order{0, 1, 2, 3, 4, 5, 6, 7};  // side by side
  const auto res = slocal_greedy_coloring(g, order);
  EXPECT_EQ(res.colors_used, 2u);
}

}  // namespace
}  // namespace pslocal
