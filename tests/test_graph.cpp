#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/io.hpp"

namespace pslocal {
namespace {

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.vertex_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_EQ(g.max_degree(), 0u);
  EXPECT_EQ(g.average_degree(), 0.0);
  EXPECT_TRUE(g.edges().empty());
}

TEST(GraphTest, BuilderDedupsAndDropsSelfLoops) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 0);  // duplicate, reversed
  b.add_edge(0, 1);  // duplicate
  b.add_edge(2, 2);  // self loop dropped
  b.add_edge(2, 3);
  const Graph g = b.build();
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(GraphTest, BuilderOutOfRangeViolatesContract) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(0, 3), ContractViolation);
}

TEST(GraphTest, NeighborsSortedAndDegreesMatch) {
  const Graph g = Graph::from_edges(5, {{3, 1}, {3, 0}, {3, 4}, {1, 0}});
  const auto nb = g.neighbors(3);
  ASSERT_EQ(nb.size(), 3u);
  EXPECT_EQ(nb[0], 0u);
  EXPECT_EQ(nb[1], 1u);
  EXPECT_EQ(nb[2], 4u);
  EXPECT_EQ(g.degree(3), 3u);
  EXPECT_EQ(g.degree(2), 0u);
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 2.0 * 4 / 5);
}

TEST(GraphTest, EdgesAreCanonical) {
  const Graph g = Graph::from_edges(4, {{2, 1}, {0, 3}});
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], (std::pair<VertexId, VertexId>{0, 3}));
  EXPECT_EQ(edges[1], (std::pair<VertexId, VertexId>{1, 2}));
}

TEST(GraphTest, FromEdgesRejectsDuplicatesUnlessAsked) {
  EXPECT_THROW(Graph::from_edges(3, {{0, 1}, {1, 0}}), ContractViolation);
  const Graph g = Graph::from_edges(3, {{0, 1}, {1, 0}}, /*dedup=*/true);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_THROW(Graph::from_edges(3, {{1, 1}}), ContractViolation);
}

TEST(GraphTest, RoundTripThroughEdgeListIO) {
  const Graph g = Graph::from_edges(6, {{0, 1}, {1, 2}, {4, 5}, {0, 5}});
  std::stringstream ss;
  write_edge_list(ss, g);
  const Graph h = read_edge_list(ss);
  EXPECT_EQ(g, h);
}

TEST(GraphTest, ReadRejectsTruncatedInput) {
  std::stringstream ss("3 2\n0 1\n");  // promises 2 edges, has 1
  EXPECT_THROW(read_edge_list(ss), ContractViolation);
}

}  // namespace
}  // namespace pslocal
