// src/solver/: CNF/WCNF formula types, byte-deterministic encoders with
// golden-file pins, the DPLL reference solver, the kernelizing pruner,
// the SolverFactory, the λ=1 oracle adapter, and the exact_certificate
// request kind end-to-end (engine cache hits + 1/2/4-shard byte
// identity over real sockets).
#include "solver/solver.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "coloring/exact_cf.hpp"
#include "core/conflict_graph.hpp"
#include "graph/generators.hpp"
#include "mis/exact_maxis.hpp"
#include "mis/independent_set.hpp"
#include "qc/gen.hpp"
#include "qc/oracles.hpp"
#include "runtime/thread_pool.hpp"
#include "service/engine.hpp"
#include "service/workload.hpp"
#include "shard/cluster.hpp"
#include "shard/shard_client.hpp"
#include "solver/dpll.hpp"
#include "solver/encode.hpp"
#include "solver/pruner.hpp"
#include "util/hash.hpp"

namespace pslocal::solver {
namespace {

/// The same fixed instances examples/pslocal_cnf.cpp --tiny exports, so
/// the golden files pin the encoder end-to-end.
Graph petersen() {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId i = 0; i < 5; ++i) {
    edges.emplace_back(i, (i + 1) % 5);
    edges.emplace_back(5 + i, 5 + (i + 2) % 5);
    edges.emplace_back(i, 5 + i);
  }
  return Graph::from_edges(10, edges, /*dedup=*/true);
}

Hypergraph tiny_hypergraph() {
  return Hypergraph(6, {{0, 1, 2}, {2, 3, 4}, {4, 5, 0}, {1, 3, 5}});
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string golden_path(const std::string& name) {
  return std::string(PSLOCAL_GOLDEN_DIR) + "/" + name;
}

// ---------------------------------------------------------------- cnf --

TEST(SolverCnfTest, DimacsBytesArePinned) {
  CnfFormula f;
  f.ensure_vars(3);
  f.add_clause({1, -2});
  f.add_clause({2, 3});
  f.add_clause({-1, -3});
  EXPECT_EQ(to_dimacs(f, {"pinned"}),
            "c pinned\np cnf 3 3\n1 -2 0\n2 3 0\n-1 -3 0\n");
}

TEST(SolverCnfTest, WdimacsTopIsSoftTotalPlusOne) {
  WcnfFormula f;
  f.ensure_vars(2);
  f.add_hard({-1, -2});
  f.add_soft(1, {1});
  f.add_soft(2, {2});
  EXPECT_EQ(to_wdimacs(f, {}),
            "p wcnf 2 3 4\n4 -1 -2 0\n1 1 0\n2 2 0\n");
}

TEST(SolverCnfTest, RejectsEmptyAndUnallocated) {
  CnfFormula f;
  f.ensure_vars(1);
  EXPECT_THROW(f.add_clause({}), ContractViolation);
  EXPECT_THROW(f.add_clause({2}), ContractViolation);
  WcnfFormula w;
  w.ensure_vars(1);
  EXPECT_THROW(w.add_soft(0, {1}), ContractViolation);
}

// ------------------------------------------------------------- encode --

TEST(SolverEncodeTest, MaxisEncodingShape) {
  const Graph g = petersen();
  const MaxISEncoding enc = encode_maxis(g);
  EXPECT_EQ(enc.formula.var_count(), 10u);
  EXPECT_EQ(enc.formula.hard_count(), 15u);  // one per edge
  EXPECT_EQ(enc.formula.soft_count(), 10u);  // one per vertex
  EXPECT_EQ(enc.formula.soft_weight_total(), 10u);
}

TEST(SolverEncodeTest, GoldenBytesMatchCheckedInFiles) {
  // Byte-for-byte against the repository golden copies (the same files
  // CI regenerates via pslocal_cnf --tiny and cmp's).
  const auto maxis = encode_maxis(petersen());
  const std::string wcnf = to_wdimacs(
      maxis.formula,
      {"pslocal maxis->wcnf petersen",
       "graph_hash " + hex64(hash_graph(petersen())),
       "n 10 m 15"});
  EXPECT_EQ(wcnf, read_file(golden_path("maxis_petersen.wcnf")));

  const auto cf = encode_cf_decision(tiny_hypergraph(), 2);
  const std::string cnf = to_dimacs(
      cf.formula,
      {"pslocal cf->cnf tiny k=2",
       "instance_hash " + hex64(hash_hypergraph(tiny_hypergraph())),
       "n 6 m 4"});
  EXPECT_EQ(cnf, read_file(golden_path("cf_tiny.cnf")));
}

TEST(SolverEncodeTest, BytesIdenticalAcrossThreadCounts) {
  // The encoder input that IS thread-count sensitive to build — the
  // conflict graph G_k — must still encode to identical bytes.
  const qc::HyperInstance inst = qc::make_family("planted-k3", 11);
  runtime::ThreadPool seq(1), par(4);
  const ConflictGraph cg1(inst.hypergraph, inst.k, seq);
  const ConflictGraph cg4(inst.hypergraph, inst.k, par);
  const std::string b1 = to_wdimacs(encode_maxis(cg1.graph()).formula, {});
  const std::string b4 = to_wdimacs(encode_maxis(cg4.graph()).formula, {});
  EXPECT_EQ(b1, b4);
  EXPECT_EQ(fnv1a64(b1), fnv1a64(b4));
}

TEST(SolverEncodeTest, AtMostCounterIsExact) {
  // Exhaustive over 5 base variables and every bound: forcing each
  // assignment with units, the Sinz clauses are SAT iff count <= bound.
  constexpr std::size_t kN = 5;
  for (std::size_t bound = 0; bound <= kN; ++bound) {
    CnfFormula base;
    base.ensure_vars(kN);
    std::vector<Lit> lits;
    for (Var v = 1; v <= kN; ++v) lits.push_back(static_cast<Lit>(v));
    add_at_most(base, lits, bound);
    for (unsigned mask = 0; mask < (1u << kN); ++mask) {
      CnfFormula f = base;
      std::size_t count = 0;
      for (Var v = 1; v <= kN; ++v) {
        const bool on = (mask >> (v - 1)) & 1u;
        count += on;
        f.add_clause({on ? static_cast<Lit>(v) : -static_cast<Lit>(v)});
      }
      const SatResult r = solve_cnf(f, /*seed=*/7);
      ASSERT_TRUE(r.proven);
      EXPECT_EQ(r.sat, count <= bound)
          << "bound=" << bound << " mask=" << mask;
    }
  }
}

TEST(SolverEncodeTest, CfDecisionAgreesWithExactBacktracker) {
  // SAT at k iff k >= the exact CF chromatic number, on a spread of
  // tiny hypergraphs; models decode to verified CF colorings.
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    Rng rng(seed);
    const Hypergraph h = qc::arbitrary_tiny_hypergraph(rng);
    if (h.edge_count() == 0 || h.vertex_count() == 0) continue;
    const ExactCfResult exact = exact_min_cf_colors(h, h.vertex_count());
    ASSERT_TRUE(exact.found) << "seed " << seed;
    for (std::size_t k = 1; k <= exact.colors; ++k) {
      const CfDecisionEncoding enc = encode_cf_decision(h, k);
      const SatResult r = solve_cnf(enc.formula, seed);
      ASSERT_TRUE(r.proven) << "seed " << seed << " k " << k;
      EXPECT_EQ(r.sat, k >= exact.colors) << "seed " << seed << " k " << k;
      if (r.sat) {
        const CfColoring coloring = enc.decode(r.model);
        EXPECT_TRUE(is_conflict_free(h, coloring))
            << "seed " << seed << " k " << k;
      }
    }
  }
}

// --------------------------------------------------------------- dpll --

TEST(SolverDpllTest, SolvesSatAndUnsatPins) {
  CnfFormula sat;
  sat.ensure_vars(3);
  sat.add_clause({1, 2});
  sat.add_clause({-1, 3});
  sat.add_clause({-2, -3});
  const SatResult r = solve_cnf(sat, 1);
  ASSERT_TRUE(r.proven);
  ASSERT_TRUE(r.sat);
  // Model satisfies every clause.
  const auto lit_true = [&r](Lit l) {
    return positive(l) ? r.model[var_of(l) - 1] : !r.model[var_of(l) - 1];
  };
  for (const Clause& c : sat.clauses()) {
    bool ok = false;
    for (const Lit l : c) ok = ok || lit_true(l);
    EXPECT_TRUE(ok);
  }

  CnfFormula unsat;  // pigeonhole: 3 pigeons, 2 holes
  unsat.ensure_vars(6);  // p_{i,h} = 2*i + h + 1
  for (int i = 0; i < 3; ++i)
    unsat.add_clause({2 * i + 1, 2 * i + 2});
  for (int h = 1; h <= 2; ++h)
    for (int i = 0; i < 3; ++i)
      for (int j = i + 1; j < 3; ++j)
        unsat.add_clause({-(2 * i + h), -(2 * j + h)});
  const SatResult u = solve_cnf(unsat, 1);
  ASSERT_TRUE(u.proven);
  EXPECT_FALSE(u.sat);
  EXPECT_GT(u.stats.conflicts, 0u);
}

TEST(SolverDpllTest, DeterministicUnderFixedSeed) {
  const auto enc = encode_maxis(petersen());
  const CnfFormula& f = enc.formula.hard();
  const SatResult a = solve_cnf(f, 42);
  const SatResult b = solve_cnf(f, 42);
  EXPECT_EQ(a.sat, b.sat);
  EXPECT_EQ(a.model, b.model);
  EXPECT_EQ(a.stats.decisions, b.stats.decisions);
  EXPECT_EQ(a.stats.propagations, b.stats.propagations);
  EXPECT_EQ(a.stats.conflicts, b.stats.conflicts);
}

TEST(SolverDpllTest, BudgetExhaustionIsUnprovenNotWrong) {
  // Pigeonhole 5->4 needs real search; budget 1 cannot close it.
  CnfFormula f;
  const int pigeons = 5, holes = 4;
  f.ensure_vars(static_cast<std::size_t>(pigeons * holes));
  const auto var = [&](int i, int h) { return i * holes + h + 1; };
  for (int i = 0; i < pigeons; ++i) {
    Clause c;
    for (int h = 0; h < holes; ++h) c.push_back(var(i, h));
    f.add_clause(std::move(c));
  }
  for (int h = 0; h < holes; ++h)
    for (int i = 0; i < pigeons; ++i)
      for (int j = i + 1; j < pigeons; ++j)
        f.add_clause({-var(i, h), -var(j, h)});
  const SatResult r = solve_cnf(f, 1, /*decision_budget=*/1);
  EXPECT_FALSE(r.proven);
  EXPECT_FALSE(r.sat);
}

// ------------------------------------------------------------- pruner --

TEST(SolverPrunerTest, IdentityKernelRoundTrips)
{
  const Graph g = petersen();
  const MaxISKernel kernel = identity_kernel(g);
  EXPECT_EQ(kernel.kernel.vertex_count(), g.vertex_count());
  EXPECT_TRUE(kernel.forced.empty());
  const std::vector<VertexId> is = {0, 2, 8, 9};  // alpha(petersen) = 4
  ASSERT_TRUE(is_independent_set(g, is));
  EXPECT_EQ(lift_and_verify(g, kernel, is), is);
}

TEST(SolverPrunerTest, LiftAndVerifyRejectsNonIndependentLifts) {
  const Graph g = petersen();
  const MaxISKernel kernel = identity_kernel(g);
  EXPECT_THROW(lift_and_verify(g, kernel, {0, 1}), ContractViolation);
}

TEST(SolverPrunerTest, KernelLiftPropertyHoldsOver50Seeds) {
  // The satellite acceptance loop: kernel-then-solve-then-lift equals
  // the direct exact solve on the graph zoo, 50 seeds (the qc property
  // `solver_kernel_lift` fuzzes the same checker — reproducer:
  // pslocal_fuzz --property=solver_kernel_lift --seed=<s> --iters=1).
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed);
    const Graph g = qc::arbitrary_graph(rng, /*max_n=*/24);
    const auto failure = qc::check_solver_kernel_lift(g, seed);
    EXPECT_FALSE(failure.has_value())
        << "seed " << seed << ": " << failure.value_or("");
  }
}

// ------------------------------------------------------------ factory --

TEST(SolverFactoryTest, DpllIsRegistered) {
  auto& factory = SolverFactory::instance();
  EXPECT_TRUE(factory.has("dpll"));
  const auto names = factory.backends();
  EXPECT_NE(std::find(names.begin(), names.end(), "dpll"), names.end());
  EXPECT_EQ(factory.make("dpll")->name(), "dpll");
  EXPECT_THROW(static_cast<void>(factory.make("no-such-backend")),
               ContractViolation);
}

TEST(SolverFactoryTest, ExternalBackendsPlugIn) {
  struct FakeSolver final : AbstractSolver {
    [[nodiscard]] std::string name() const override { return "fake"; }
    [[nodiscard]] ExactSolveResult solve_maxis(
        const Graph& g, const SolverOptions&) override {
      ExactSolveResult r;
      r.proven_optimal = g.vertex_count() == 0;
      return r;
    }
  };
  SolverFactory::instance().register_backend("fake", []() -> AbstractSolverPtr {
    return std::make_unique<FakeSolver>();
  });
  EXPECT_TRUE(SolverFactory::instance().has("fake"));
  EXPECT_EQ(SolverFactory::instance().make("fake")->name(), "fake");
}

TEST(SolverOracleTest, LambdaGuaranteeIsExactlyOne) {
  const auto oracle = make_solver_oracle();
  EXPECT_EQ(oracle->name(), "cnf-dpll");
  ASSERT_TRUE(oracle->lambda_guarantee().has_value());
  EXPECT_DOUBLE_EQ(*oracle->lambda_guarantee(), 1.0);
}

TEST(SolverOracleTest, MatchesBranchAndBoundOnTheZoo) {
  // The acceptance differential: CNF-backend MIS sizes equal ExactMaxIS
  // on every zoo instance where both complete.
  const auto oracle = make_solver_oracle();
  for (std::uint64_t seed = 100; seed < 112; ++seed) {
    Rng rng(seed);
    const Graph g = qc::arbitrary_graph(rng, /*max_n=*/24);
    const auto bnb = ExactMaxIS().solve(g);
    ASSERT_TRUE(bnb.proven_optimal) << "seed " << seed;
    const auto is = oracle->solve(g);
    EXPECT_TRUE(is_independent_set(g, is)) << "seed " << seed;
    EXPECT_EQ(is.size(), bnb.set.size()) << "seed " << seed;
  }
}

TEST(SolverOracleTest, BudgetCutTripsTheLambdaContract) {
  SolverOptions options;
  options.decision_budget = 0;
  options.kernelize = false;  // keep the kernel from closing it for free
  const auto oracle = make_solver_oracle("dpll", options);
  const Graph g = petersen();
  EXPECT_THROW(static_cast<void>(oracle->solve(g)), ContractViolation);
}

TEST(SolverBackendTest, CertificateFieldsAreDeterministic) {
  const Graph g = petersen();
  const auto backend = SolverFactory::instance().make("dpll");
  SolverOptions options;
  options.seed = 3;
  const ExactSolveResult a = backend->solve_maxis(g, options);
  const ExactSolveResult b = backend->solve_maxis(g, options);
  EXPECT_EQ(a.independent_set, b.independent_set);
  EXPECT_TRUE(a.proven_optimal);
  EXPECT_EQ(a.independent_set.size(), 4u);  // alpha(petersen)
  EXPECT_EQ(a.formula_hash, b.formula_hash);
  EXPECT_NE(a.formula_hash, 0u);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.propagations, b.propagations);
  EXPECT_EQ(a.conflicts, b.conflicts);
  EXPECT_EQ(a.kernel_vertices, b.kernel_vertices);
}

// -------------------------------------------- exact_certificate kind --

service::Request exact_request(std::shared_ptr<const Hypergraph> h,
                               std::uint64_t id) {
  service::Request req;
  req.id = id;
  req.kind = service::RequestKind::kExactCertificate;
  req.instance = std::move(h);
  req.instance_hash = hash_hypergraph(*req.instance);
  req.k = 2;
  req.seed = 1;
  req.solver = "dpll";
  return req;
}

TEST(SolverServiceTest, ExactCertificateRoundTripsNames) {
  EXPECT_STREQ(service::kind_name(service::RequestKind::kExactCertificate),
               "exact_certificate");
  EXPECT_EQ(service::kind_from_name("exact_certificate"),
            service::RequestKind::kExactCertificate);
}

TEST(SolverServiceTest, ExactCertificateCacheKeyIsDistinct) {
  auto h = std::make_shared<const Hypergraph>(tiny_hypergraph());
  service::Request req = exact_request(h, 0);
  const std::uint64_t key = service::cache_key(req);
  // Differs from every other kind over the identical parameters.
  for (const auto kind :
       {service::RequestKind::kBuildConflictGraph,
        service::RequestKind::kGreedyMaxis, service::RequestKind::kLubyMis,
        service::RequestKind::kCfColor, service::RequestKind::kRunReduction}) {
    service::Request other = req;
    other.kind = kind;
    EXPECT_NE(service::cache_key(other), key) << service::kind_name(kind);
  }
  // And folds k, seed and the backend name.
  service::Request variant = req;
  variant.k = 3;
  EXPECT_NE(service::cache_key(variant), key);
  variant = req;
  variant.seed = 2;
  EXPECT_NE(service::cache_key(variant), key);
  variant = req;
  variant.solver = "fake";
  EXPECT_NE(service::cache_key(variant), key);
}

TEST(SolverServiceTest, PayloadIsByteDeterministicAndWellFormed) {
  auto h = std::make_shared<const Hypergraph>(tiny_hypergraph());
  const service::Request req = exact_request(h, 0);
  runtime::ThreadPool seq(1), par(4);
  const std::string a = service::execute_request(req, seq);
  const std::string b = service::execute_request(req, par);
  EXPECT_EQ(a, b) << "payload bytes must not depend on thread count";
  EXPECT_NE(a.find("\"kind\":\"exact_certificate\""), std::string::npos);
  EXPECT_NE(a.find("\"solver\":\"dpll\""), std::string::npos);
  EXPECT_NE(a.find("\"proven_optimal\":true"), std::string::npos);
  EXPECT_NE(a.find("\"independent\":true"), std::string::npos);
  EXPECT_NE(a.find("\"certificate\":{"), std::string::npos);
  EXPECT_NE(a.find("\"formula_hash\":\""), std::string::npos);
  // On G_k the exact answer meets the Lemma 2.1 upper bound alpha = m.
  std::ostringstream expect_upper;
  expect_upper << "\"upper\":" << h->edge_count();
  EXPECT_NE(a.find(expect_upper.str()), std::string::npos);
}

TEST(SolverServiceTest, EngineServesCacheHitsForRepeats) {
  auto h = std::make_shared<const Hypergraph>(tiny_hypergraph());
  runtime::ThreadPool pool(2);
  service::EngineConfig cfg;
  cfg.scheduler = &pool;
  service::ServiceEngine engine(cfg);
  engine.start();
  auto first = engine.submit(exact_request(h, 0));
  const service::Response r1 = first.response.get();
  ASSERT_EQ(r1.status, service::Response::Status::kOk) << r1.reason;
  auto second = engine.submit(exact_request(h, 1));
  const service::Response r2 = second.response.get();
  ASSERT_EQ(r2.status, service::Response::Status::kOk) << r2.reason;
  EXPECT_TRUE(r2.cache_hit);
  EXPECT_EQ(r1.result, r2.result) << "hit must serve identical bytes";
  EXPECT_EQ(r1.key, r2.key);
  engine.stop();
}

/// A small mixed trace with exact_certificate in the mix, instances
/// tiny enough that every exact solve is instant.
service::Trace mixed_exact_trace() {
  service::TraceParams tp;
  tp.seed = 5;
  tp.requests = 14;
  tp.instance_pool = 2;  // pool growth scales instance size — keep G_k tiny
  tp.n = 8;
  tp.m = 3;
  tp.k = 2;
  tp.weight_exact = 40;
  return service::generate_trace(tp);
}

TEST(SolverServiceTest, TraceGeneratorEmitsExactRequests) {
  const service::Trace trace = mixed_exact_trace();
  std::size_t exact = 0;
  for (const auto& req : trace.requests)
    if (req.kind == service::RequestKind::kExactCertificate) {
      ++exact;
      EXPECT_EQ(req.solver, "dpll");
    }
  EXPECT_GT(exact, 0u);

  // With weight_exact at its 0 default the kind never appears (and the
  // replay-golden test elsewhere pins that default streams are
  // byte-identical to pre-existing recordings).
  service::TraceParams zeroed;
  zeroed.seed = 5;
  zeroed.requests = 14;
  zeroed.instance_pool = 3;
  zeroed.n = 10;
  zeroed.m = 6;
  zeroed.k = 2;
  const service::Trace base = service::generate_trace(zeroed);
  for (const auto& req : base.requests)
    EXPECT_NE(req.kind, service::RequestKind::kExactCertificate);
}

TEST(SolverShardTest, ExactCertificateBytesIdenticalAcross124Shards) {
  // The acceptance headline: exact_certificate served over net/ +
  // shard/ (real loopback sockets), byte-identical replay whatever the
  // shard count.
  const service::Trace trace = mixed_exact_trace();
  const auto run_pass = [&trace](std::size_t shards) {
    shard::LocalClusterConfig cc;
    cc.shards = shards;
    cc.replication = 1;
    cc.engine.cache.max_entries = 64;
    shard::LocalCluster cluster(cc);
    cluster.start();
    shard::ShardClientConfig scc;
    scc.topology = cluster.topology();
    scc.retry.seed = 1;
    shard::ShardClient client(scc);
    client.connect();
    std::vector<std::string> payloads;
    for (const auto& req : trace.requests) {
      const net::Client::Result r = client.call(req);
      EXPECT_EQ(r.outcome, net::Client::Outcome::kOk) << r.error;
      payloads.push_back(r.response.result);
    }
    client.drain();
    cluster.stop();
    return payloads;
  };
  const auto one = run_pass(1);
  const auto two = run_pass(2);
  const auto four = run_pass(4);
  ASSERT_EQ(one.size(), trace.requests.size());
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, four);
  // The trace really exercised the new kind over the wire.
  bool saw_exact = false;
  for (std::size_t i = 0; i < trace.requests.size(); ++i)
    if (trace.requests[i].kind == service::RequestKind::kExactCertificate) {
      saw_exact = true;
      EXPECT_NE(one[i].find("\"kind\":\"exact_certificate\""),
                std::string::npos);
    }
  EXPECT_TRUE(saw_exact);
}

}  // namespace
}  // namespace pslocal::solver
