// qc/shrink: deletion primitives, 1-minimality of the greedy shrink, and
// the harness self-test — the flag-gated planted solver bug must shrink
// to a near-minimal witness on every seed (the QC acceptance gate).
#include "qc/shrink.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "mis/independent_set.hpp"
#include "qc/gen.hpp"
#include "qc/oracles.hpp"
#include "util/hash.hpp"

namespace pslocal::qc {
namespace {

TEST(QcShrinkTest, RemoveVertexShiftsGraphIds) {
  const Graph g = Graph::from_edges(5, {{0, 1}, {1, 2}, {2, 4}, {3, 4}});
  const Graph r = remove_vertex(g, 2);
  EXPECT_EQ(r.vertex_count(), 4u);
  // Edges not touching 2 survive with ids above 2 shifted down.
  EXPECT_TRUE(r.has_edge(0, 1));
  EXPECT_TRUE(r.has_edge(2, 3));  // was (3, 4)
  EXPECT_EQ(r.edge_count(), 2u);  // (1,2) and (2,4) died with the vertex
}

TEST(QcShrinkTest, RemoveVertexDropsEmptiedHyperedges) {
  const auto edge_of = [](const Hypergraph& h, EdgeId e) {
    const auto span = h.edge(e);
    return std::vector<VertexId>(span.begin(), span.end());
  };
  const Hypergraph h(4, {{0}, {0, 1}, {2, 3}});
  const Hypergraph r = remove_vertex(h, 0);
  EXPECT_EQ(r.vertex_count(), 3u);
  ASSERT_EQ(r.edge_count(), 2u);  // {0} vanished
  EXPECT_EQ(edge_of(r, 0), std::vector<VertexId>({0}));     // was {0,1}
  EXPECT_EQ(edge_of(r, 1), std::vector<VertexId>({1, 2}));  // was {2,3}
}

TEST(QcShrinkTest, RemoveEdgeKeepsVertexSet) {
  const Hypergraph h(4, {{0, 1}, {2, 3}});
  const Hypergraph r = remove_edge(h, 0);
  EXPECT_EQ(r.vertex_count(), 4u);
  ASSERT_EQ(r.edge_count(), 1u);
  const auto span = r.edge(0);
  EXPECT_EQ(std::vector<VertexId>(span.begin(), span.end()),
            std::vector<VertexId>({2, 3}));
}

TEST(QcShrinkTest, GraphShrinkReachesSingleEdge) {
  Rng rng(3);
  const Graph g = gnp(20, 0.3, rng);
  ASSERT_GT(g.edge_count(), 0u);
  ShrinkLog log;
  const Graph minimal = shrink_graph(
      g, [](const Graph& c) { return c.edge_count() > 0; }, &log);
  // "Has an edge" is 1-minimal exactly at a single edge on two vertices.
  EXPECT_EQ(minimal.vertex_count(), 2u);
  EXPECT_EQ(minimal.edge_count(), 1u);
  EXPECT_GT(log.attempts, 0u);
  EXPECT_EQ(log.accepted, 18u);
}

TEST(QcShrinkTest, HypergraphEdgesOnlyShrinkPreservesVertices) {
  Rng rng(4);
  const Hypergraph h = arbitrary_tiny_hypergraph(rng);
  if (h.edge_count() == 0) GTEST_SKIP() << "seeded draw had no edges";
  const Hypergraph minimal = shrink_hypergraph(
      h, [](const Hypergraph& c) { return c.edge_count() > 0; },
      /*edges_only=*/true);
  EXPECT_EQ(minimal.vertex_count(), h.vertex_count());
  EXPECT_EQ(minimal.edge_count(), 1u);
}

TEST(QcShrinkTest, RequestShrinkIsolatesTheTriggeringKind) {
  Rng rng(6);
  const service::TraceParams tp = arbitrary_trace_params(rng);
  const service::Trace trace = service::generate_trace(tp);
  const auto has_reduction = [](const std::vector<service::Request>& rs) {
    for (const auto& r : rs)
      if (r.kind == service::RequestKind::kRunReduction) return true;
    return false;
  };
  if (!has_reduction(trace.requests))
    GTEST_SKIP() << "seeded trace drew no reduction request";
  const auto minimal = shrink_requests(trace.requests, has_reduction);
  ASSERT_EQ(minimal.size(), 1u);
  EXPECT_EQ(minimal[0].kind, service::RequestKind::kRunReduction);
}

// ---------------------------------------------------------------------
// Harness self-test (acceptance gate): the planted off-by-one in the
// independence re-check must be caught by the differential check and
// shrink to <= 5 vertices on EVERY one of 50 seeds.  The true minimum
// is a single edge; 5 leaves slack for exotic 1-minimal local optima.
TEST(QcShrinkTest, PlantedBugShrinksToAtMostFiveVerticesOn50Seeds) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    Rng rng(seed);
    Graph failing;
    bool found = false;
    // The bug fires on most graphs where an early pick has a later
    // neighbor; a short run of draws always hits one.
    for (int draw = 0; draw < 100 && !found; ++draw) {
      Graph g = arbitrary_graph(rng);
      if (check_planted_bug(g).has_value()) {
        failing = std::move(g);
        found = true;
      }
    }
    ASSERT_TRUE(found) << "no failing graph within 100 draws, seed " << seed;
    ShrinkLog log;
    const Graph minimal = shrink_graph(
        failing,
        [](const Graph& c) { return check_planted_bug(c).has_value(); },
        &log);
    EXPECT_LE(minimal.vertex_count(), 5u)
        << "seed " << seed << ": " << describe(minimal) << " ("
        << log.accepted << "/" << log.attempts << " deletions)";
    // The shrunk witness still exposes the bug, by construction.
    EXPECT_TRUE(check_planted_bug(minimal).has_value());
    EXPECT_FALSE(
        is_independent_set(minimal, buggy_greedy_mis(minimal)));
  }
}

// Shrinker self-test over mutation sequences (acceptance gate): with
// "changes the base's content hash" as the failure, every family/seed
// must shrink to a <= 3-step, 1-minimal reproducer.  Deleting a step can
// orphan later edge ids, so candidates are validity-guarded exactly the
// way the mis_repair_vs_recompute property guards them.
TEST(QcShrinkTest, MutationShrinkPinsAtMostThreeStepsOn50Seeds) {
  std::size_t ran = 0;
  const auto& families = mutation_family_names();
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const MutationScript ms =
        make_mutation_family(families[seed % families.size()], seed);
    const std::uint64_t base_hash = hash_hypergraph(ms.base.hypergraph);
    const auto still_fails = [&](const std::vector<Mutation>& s) {
      if (validate_script(ms.base.hypergraph, s).has_value()) return false;
      return hash_hypergraph(apply_script(ms.base.hypergraph, s)) !=
             base_hash;
    };
    // churn_burst can round-trip the content exactly; those seeds have
    // nothing to shrink.
    if (!still_fails(ms.script)) continue;
    ++ran;
    ShrinkLog log;
    const auto minimal = shrink_mutations(ms.script, still_fails, &log);
    EXPECT_TRUE(still_fails(minimal)) << "seed " << seed;
    EXPECT_LE(minimal.size(), 3u)
        << "seed " << seed << ": " << pslocal::describe(minimal) << " ("
        << log.accepted << "/" << log.attempts << " deletions)";
    // 1-minimal: no single further deletion keeps the failure.
    for (std::size_t i = 0; i < minimal.size(); ++i) {
      std::vector<Mutation> candidate = minimal;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
      EXPECT_FALSE(still_fails(candidate))
          << "seed " << seed << " drop " << i;
    }
  }
  EXPECT_GE(ran, 25u);  // almost every script moves the content hash
}

}  // namespace
}  // namespace pslocal::qc
