#include "hypergraph/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "hypergraph/generators.hpp"

namespace pslocal {
namespace {

bool same_hypergraph(const Hypergraph& a, const Hypergraph& b) {
  if (a.vertex_count() != b.vertex_count()) return false;
  if (a.edge_count() != b.edge_count()) return false;
  for (EdgeId e = 0; e < a.edge_count(); ++e) {
    const auto ea = a.edge(e);
    const auto eb = b.edge(e);
    if (!std::equal(ea.begin(), ea.end(), eb.begin(), eb.end())) return false;
  }
  return true;
}

TEST(HypergraphIoTest, RoundTrip) {
  Rng rng(4);
  PlantedCfParams params;
  params.n = 20;
  params.m = 12;
  params.k = 3;
  const auto inst = planted_cf_colorable(params, rng);
  std::stringstream ss;
  write_hypergraph(ss, inst.hypergraph);
  const auto back = read_hypergraph(ss);
  EXPECT_TRUE(same_hypergraph(inst.hypergraph, back));
}

TEST(HypergraphIoTest, RejectsTruncatedInput) {
  std::stringstream ss("4 2\n2 0 1\n3 1 2\n");  // edge 1 missing a vertex
  EXPECT_THROW(read_hypergraph(ss), ContractViolation);
  std::stringstream empty("");
  EXPECT_THROW(read_hypergraph(empty), ContractViolation);
}

TEST(HypergraphIoTest, EdgelessRoundTrip) {
  const Hypergraph h(7, {});
  std::stringstream ss;
  write_hypergraph(ss, h);
  const auto back = read_hypergraph(ss);
  EXPECT_EQ(back.vertex_count(), 7u);
  EXPECT_EQ(back.edge_count(), 0u);
}

TEST(NeighborhoodHypergraphTest, ClosedNeighborhoods) {
  const Graph g = path(4);  // 0-1-2-3
  const auto h = closed_neighborhood_hypergraph(g);
  EXPECT_EQ(h.edge_count(), 4u);
  const auto e0 = h.edge(0);
  EXPECT_EQ(std::vector<VertexId>(e0.begin(), e0.end()),
            (std::vector<VertexId>{0, 1}));
  const auto e1 = h.edge(1);
  EXPECT_EQ(std::vector<VertexId>(e1.begin(), e1.end()),
            (std::vector<VertexId>{0, 1, 2}));
}

TEST(NeighborhoodHypergraphTest, ReductionSolvesNeighborhoodInstances) {
  // CF coloring of graph neighborhoods via the paper's reduction: the
  // closed neighborhoods of a ring admit a CF 3-coloring, so k = 3 works.
  const auto h = closed_neighborhood_hypergraph(ring(12));
  EXPECT_EQ(h.rank(), 3u);
  EXPECT_EQ(h.corank(), 3u);
}

}  // namespace
}  // namespace pslocal
