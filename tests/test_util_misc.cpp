#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

namespace pslocal {
namespace {

TEST(TableTest, RendersHeaderAndRows) {
  Table t("Caption");
  t.header({"name", "value"});
  t.row({"alpha", "1"});
  t.row({"beta", "23"});
  const std::string s = t.render();
  EXPECT_NE(s.find("Caption"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("23"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableTest, ArityMismatchViolatesContract) {
  Table t("x");
  t.header({"a", "b"});
  EXPECT_THROW(t.row({"only-one"}), ContractViolation);
}

TEST(TableTest, CsvRendering) {
  Table t("ignored in csv");
  t.header({"a", "b"});
  t.row({"plain", "1"});
  t.row({"with,comma", "quote\"inside"});
  EXPECT_EQ(t.render_csv(),
            "a,b\nplain,1\n\"with,comma\",\"quote\"\"inside\"\n");
}

TEST(TableTest, Formatters) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_ratio(2.0, 1), "2.0x");
  EXPECT_EQ(fmt_size(42), "42");
  EXPECT_EQ(fmt_bool(true), "yes");
  EXPECT_EQ(fmt_bool(false), "no");
}

TEST(OptionsTest, ParsesNamedAndPositional) {
  const char* argv[] = {"prog", "--n=128", "--verbose", "input.txt",
                        "--ratio=2.5", "--name=abc"};
  Options opts(6, argv);
  EXPECT_EQ(opts.get_int("n", 0), 128);
  EXPECT_TRUE(opts.get_bool("verbose", false));
  EXPECT_DOUBLE_EQ(opts.get_double("ratio", 0.0), 2.5);
  EXPECT_EQ(opts.get_string("name", ""), "abc");
  ASSERT_EQ(opts.positionals().size(), 1u);
  EXPECT_EQ(opts.positionals()[0], "input.txt");
}

TEST(OptionsTest, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  Options opts(1, argv);
  EXPECT_EQ(opts.get_int("n", 7), 7);
  EXPECT_FALSE(opts.has("n"));
  EXPECT_FALSE(opts.get_bool("flag", false));
  EXPECT_EQ(opts.get_string("s", "dflt"), "dflt");
}

TEST(OptionsTest, MalformedNumberViolatesContract) {
  const char* argv[] = {"prog", "--n=12x"};
  Options opts(2, argv);
  EXPECT_THROW((void)opts.get_int("n", 0), ContractViolation);
  EXPECT_THROW((void)opts.get_double("n", 0), ContractViolation);
}

}  // namespace
}  // namespace pslocal
