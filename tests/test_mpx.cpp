#include "local/mpx_decomposition.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace pslocal {
namespace {

struct MpxCase {
  double beta;
  std::uint64_t seed;
};

class MpxTest : public ::testing::TestWithParam<MpxCase> {};

TEST_P(MpxTest, PartitionIntoBoundedClusters) {
  const auto [beta, seed] = GetParam();
  Rng rng(seed);
  const Graph g = gnp(120, 0.05, rng);
  const auto res = mpx_clustering(g, beta, seed);

  ASSERT_EQ(res.center_of.size(), g.vertex_count());
  EXPECT_GE(res.cluster_count, 1u);
  EXPECT_LE(res.cluster_count, g.vertex_count());
  EXPECT_GE(res.cut_edge_fraction, 0.0);
  EXPECT_LE(res.cut_edge_fraction, 1.0);
  // Every center names itself (key <= 0 at the center).
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    const VertexId c = res.center_of[v];
    EXPECT_EQ(res.center_of[c], c) << "center of a cluster must self-assign";
  }
  // Radius is bounded by the flooding horizon.
  EXPECT_LE(res.max_cluster_radius, res.rounds);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MpxTest,
                         ::testing::Values(MpxCase{0.2, 1}, MpxCase{0.4, 2},
                                           MpxCase{0.8, 3}, MpxCase{1.0, 4}));

TEST(MpxTest, HighBetaShattersMoreThanLowBeta) {
  Rng rng(9);
  const Graph g = grid(12, 12);
  const auto coarse = mpx_clustering(g, 0.1, 42);
  const auto fine = mpx_clustering(g, 1.0, 42);
  EXPECT_GT(fine.cluster_count, coarse.cluster_count);
}

TEST(MpxTest, SingletonAndEmptyGraphs) {
  const Graph one = Graph::from_edges(1, {});
  const auto res = mpx_clustering(one, 0.5, 1);
  EXPECT_EQ(res.cluster_count, 1u);
  const auto empty = mpx_clustering(Graph{}, 0.5, 1);
  EXPECT_EQ(empty.cluster_count, 0u);
}

TEST(MpxTest, InvalidBetaViolatesContract) {
  EXPECT_THROW(mpx_clustering(ring(5), 0.0, 1), ContractViolation);
  EXPECT_THROW(mpx_clustering(ring(5), 1.5, 1), ContractViolation);
}

TEST(MpxTest, DeterministicPerSeed) {
  Rng rng(10);
  const Graph g = gnp(60, 0.08, rng);
  const auto a = mpx_clustering(g, 0.5, 7);
  const auto b = mpx_clustering(g, 0.5, 7);
  EXPECT_EQ(a.center_of, b.center_of);
}

}  // namespace
}  // namespace pslocal
