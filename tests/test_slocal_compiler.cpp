#include "local/slocal_compiler.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "mis/independent_set.hpp"

namespace pslocal {
namespace {

// The SLOCAL(1) greedy MIS as a process callback (matches
// slocal/greedy_algorithms.cpp but inlined so the compiler test drives the
// raw engine interface).
enum class Mark : std::uint8_t { kUndecided, kIn, kOut };

void greedy_mis_step(SLocalView<Mark>& view) {
  bool neighbor_in = false;
  for (VertexId w : view.neighbors())
    if (view.state(w) == Mark::kIn) {
      neighbor_in = true;
      break;
    }
  view.own_state() = neighbor_in ? Mark::kOut : Mark::kIn;
}

std::vector<VertexId> in_set(const std::vector<Mark>& states) {
  std::vector<VertexId> out;
  for (VertexId v = 0; v < states.size(); ++v)
    if (states[v] == Mark::kIn) out.push_back(v);
  return out;
}

TEST(SLocalCompilerTest, CompiledGreedyMisIsValid) {
  Rng rng(3);
  const Graph g = gnp(40, 0.1, rng);
  const auto run = compile_slocal_to_local<Mark>(
      g, /*r=*/1, std::vector<Mark>(g.vertex_count(), Mark::kUndecided),
      greedy_mis_step);
  EXPECT_TRUE(is_maximal_independent_set(g, in_set(run.states)));
  EXPECT_LE(run.slocal_locality, 1u);
  EXPECT_GT(run.local_rounds, 0u);
  EXPECT_GE(run.decomposition_colors, 1u);
  EXPECT_GE(run.decomposition_clusters, 1u);
}

TEST(SLocalCompilerTest, RoundBillIsPolylogOnBoundedDegree) {
  const Graph g = grid(8, 8);
  const auto run = compile_slocal_to_local<Mark>(
      g, 1, std::vector<Mark>(g.vertex_count(), Mark::kUndecided),
      greedy_mis_step);
  // C * (2*(D + r) + 1) with C, D = O(log n): far below n for a 64-vertex
  // grid the bill must beat the trivial n-round simulation.
  EXPECT_LT(run.local_rounds, g.vertex_count() * 2);
  EXPECT_TRUE(is_maximal_independent_set(g, in_set(run.states)));
}

TEST(SLocalCompilerTest, LocalityOverrunViolatesContract) {
  const Graph g = path(12);
  EXPECT_THROW(
      compile_slocal_to_local<int>(
          g, 1, std::vector<int>(12, 0),
          [](SLocalView<int>& view) { (void)view.ball_vertices(3); }),
      ContractViolation);
}

TEST(SLocalCompilerTest, LargerLocalityIsAccepted) {
  const Graph g = ring(16);
  const auto run = compile_slocal_to_local<int>(
      g, 3, std::vector<int>(16, 0), [](SLocalView<int>& view) {
        view.own_state() = static_cast<int>(view.ball_vertices(3).size());
      });
  EXPECT_EQ(run.slocal_locality, 3u);
  for (int s : run.states) EXPECT_EQ(s, 7);  // |B(3)| on a 16-ring
}

TEST(SLocalCompilerTest, EmptyGraph) {
  const auto run = compile_slocal_to_local<int>(Graph{}, 1, {},
                                                [](SLocalView<int>&) {});
  EXPECT_EQ(run.local_rounds, 0u);
  EXPECT_TRUE(run.states.empty());
}

TEST(SLocalCompilerTest, DisconnectedGraphsCompile) {
  const Graph g = disjoint_cliques({3, 3, 3, 3});
  const auto run = compile_slocal_to_local<Mark>(
      g, 1, std::vector<Mark>(g.vertex_count(), Mark::kUndecided),
      greedy_mis_step);
  EXPECT_EQ(in_set(run.states).size(), 4u);
}

}  // namespace
}  // namespace pslocal
