// Runtime observability counters: steals show up under skew, never at
// one thread, and metric deltas are deterministic across thread counts
// (mirroring the scheduler's bit-identical-results contract).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#include <gtest/gtest.h>

#include "obs/obs.hpp"
#include "runtime/parallel.hpp"
#include "runtime/thread_pool.hpp"

namespace pslocal {
namespace {

#if PSLOCAL_OBS_ENABLED

std::uint64_t steal_counter() {
  return obs::snapshot().counter("runtime.steals");
}

std::uint64_t chunk_counter() {
  return obs::snapshot().counter("runtime.chunks");
}

// Skewed workload: whichever lane runs chunk 0 stalls until every OTHER
// chunk has completed.  The stalled lane still owns the rest of its seed
// block (as deque splits), so the remaining lane can only drain the
// region by stealing — guaranteeing steals at >= 2 threads regardless of
// scheduling luck.  A deadline keeps a scheduler bug from hanging ctest.
void run_skewed(runtime::ThreadPool& pool, std::atomic<int>& others) {
  constexpr int kOtherChunks = 4096 / 16 - 1;  // 255
  runtime::parallel_for(pool, {4096, 16},
                        [&](std::size_t begin, std::size_t) {
                          if (begin == 0) {
                            const auto deadline =
                                std::chrono::steady_clock::now() +
                                std::chrono::seconds(10);
                            while (others.load() < kOtherChunks &&
                                   std::chrono::steady_clock::now() < deadline)
                              std::this_thread::yield();
                          } else {
                            others.fetch_add(1);
                          }
                        });
}

TEST(RuntimeCountersTest, SkewedWorkloadStealsWithTwoThreads) {
  runtime::ThreadPool pool(2);
  const std::uint64_t steals_before = steal_counter();
  const std::uint64_t pool_before = pool.steal_count();
  std::atomic<int> others{0};
  run_skewed(pool, others);
  EXPECT_EQ(others.load(), 4096 / 16 - 1);
  EXPECT_GT(steal_counter(), steals_before);
  EXPECT_GT(pool.steal_count(), pool_before);
}

TEST(RuntimeCountersTest, SingleThreadNeverSteals) {
  runtime::ThreadPool pool(1);
  const std::uint64_t steals_before = steal_counter();
  const std::uint64_t pool_before = pool.steal_count();
  // No second lane exists, so the stall branch must not be entered —
  // run a plain workload of the same shape instead.
  runtime::parallel_for_each_index(pool, {4096, 16}, [](std::size_t) {});
  EXPECT_EQ(steal_counter() - steals_before, 0u);
  EXPECT_EQ(pool.steal_count() - pool_before, 0u);
}

TEST(RuntimeCountersTest, ChunkAndRegionCountsMatchGeometry) {
  // 1000 elements at grain 50 -> exactly 20 chunks, however they are
  // distributed over lanes.
  for (const std::size_t threads : {1u, 2u, 8u}) {
    runtime::ThreadPool pool(threads);
    const std::uint64_t chunks_before = chunk_counter();
    const std::uint64_t regions_before =
        obs::snapshot().counter("runtime.regions");
    runtime::parallel_for_each_index(pool, {1000, 50}, [](std::size_t) {});
    EXPECT_EQ(chunk_counter() - chunks_before, 20u)
        << "threads=" << threads;
    EXPECT_EQ(obs::snapshot().counter("runtime.regions") - regions_before, 1u)
        << "threads=" << threads;
  }
}

TEST(RuntimeCountersTest, CounterMergesAreDeterministicAcrossThreadCounts) {
  // The same instrumented computation must report identical metric
  // deltas at every thread count: sum of add(i) over i in [0, n) and a
  // histogram over the per-chunk lengths.
  constexpr std::size_t kN = 5000;
  constexpr std::uint64_t kExpectedSum =
      static_cast<std::uint64_t>(kN) * (kN - 1) / 2;

  obs::Counter work_sum("runtime_test.work_sum");
  obs::Histogram chunk_len("runtime_test.chunk_len");
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const auto before = obs::snapshot();
    runtime::ThreadPool pool(threads);
    runtime::parallel_for(pool, {kN, 64},
                          [&](std::size_t begin, std::size_t end) {
                            for (std::size_t i = begin; i < end; ++i)
                              work_sum.add(i);
                            chunk_len.record(end - begin);
                          });
    const auto after = obs::snapshot();
    EXPECT_EQ(after.counter("runtime_test.work_sum") -
                  before.counter("runtime_test.work_sum"),
              kExpectedSum)
        << "threads=" << threads;
    const auto h_before = before.histogram("runtime_test.chunk_len");
    const auto h_after = after.histogram("runtime_test.chunk_len");
    // Chunk geometry depends only on (n, grain): 5000/64 -> 79 chunks,
    // 78 of length 64 plus one tail of length 8.
    EXPECT_EQ(h_after.count - h_before.count, 79u) << "threads=" << threads;
    EXPECT_EQ(h_after.sum - h_before.sum, kN) << "threads=" << threads;
    EXPECT_EQ(h_after.max, 64u);
  }
}

TEST(RuntimeCountersTest, BusyTimeAccumulates) {
  runtime::ThreadPool pool(2);
  const std::uint64_t before = obs::snapshot().counter("runtime.busy_ns");
  runtime::parallel_for_each_index(pool, {256, 8}, [](std::size_t i) {
    volatile std::uint64_t x = i;
    for (int r = 0; r < 100; ++r) x = x * 2654435761u + 1;
  });
  EXPECT_GT(obs::snapshot().counter("runtime.busy_ns"), before);
}

#else  // PSLOCAL_OBS_ENABLED == 0

TEST(RuntimeCountersTest, DisabledBuildReportsNothing) {
  runtime::ThreadPool pool(2);
  runtime::parallel_for_each_index(pool, {1024, 16}, [](std::size_t) {});
  EXPECT_TRUE(obs::snapshot().counters.empty());
}

#endif  // PSLOCAL_OBS_ENABLED

}  // namespace
}  // namespace pslocal
