// qc/fault: the shuffled scheduler is a legal schedule (full coverage,
// no overlap) that provokes no result changes, and run_fault_plan
// absorbs seeded queue-full bursts, tiny caches and schedule shuffling
// without breaking any serving contract.
#include "qc/fault.hpp"

#include <gtest/gtest.h>

#include <set>

#include "qc/gen.hpp"
#include "service/request.hpp"

namespace pslocal::qc {
namespace {

TEST(QcFaultTest, ShuffledSchedulerCoversEveryChunkOnce) {
  ShuffledScheduler sched(11);
  const std::size_t n = 37, grain = 5;
  std::vector<int> covered(n, 0);
  std::set<std::size_t> chunk_ids;
  sched.run_chunks(n, grain, [&](runtime::ChunkRange r) {
    EXPECT_LE(r.end, n);
    EXPECT_LT(r.begin, r.end);
    chunk_ids.insert(r.index);
    for (std::size_t i = r.begin; i < r.end; ++i) ++covered[i];
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(covered[i], 1) << i;
  EXPECT_EQ(chunk_ids.size(), runtime::chunk_count(n, grain));
  EXPECT_EQ(sched.regions(), 1u);
}

TEST(QcFaultTest, ShuffledSchedulerActuallyPermutes) {
  // With 20 chunks, at least one seed must execute out of ascending
  // order — otherwise the "adversarial" schedule is the identity.
  bool permuted = false;
  for (std::uint64_t seed = 1; seed <= 5 && !permuted; ++seed) {
    ShuffledScheduler sched(seed);
    std::vector<std::size_t> order;
    sched.run_chunks(100, 5,
                     [&](runtime::ChunkRange r) { order.push_back(r.index); });
    permuted = !std::is_sorted(order.begin(), order.end());
  }
  EXPECT_TRUE(permuted);
}

TEST(QcFaultTest, SolverPayloadsImmuneToScheduleShuffling) {
  // The runtime determinism contract: chunk execution order must not
  // change any result.  Run every request kind under a shuffled and a
  // sequential scheduler and require byte-identical payloads.
  Rng rng(21);
  const service::TraceParams tp = arbitrary_trace_params(rng);
  const service::Trace trace = service::generate_trace(tp);
  runtime::SequentialScheduler sequential;
  ShuffledScheduler shuffled(99);
  for (const auto& req : trace.requests) {
    const std::string a = service::execute_request(req, sequential);
    const std::string b = service::execute_request(req, shuffled);
    EXPECT_EQ(a, b) << "request " << req.id << " ("
                    << service::kind_name(req.kind) << ")";
  }
}

TEST(QcFaultTest, FaultPlansAbsorbedOnSeededTraces) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    const service::TraceParams tp = arbitrary_trace_params(rng);
    const FaultPlan plan = arbitrary_fault_plan(rng);
    const service::Trace trace = service::generate_trace(tp);
    const FaultReport report = run_fault_plan(plan, trace);
    EXPECT_TRUE(report.ok()) << "seed " << seed << ": " << report.error;
    EXPECT_TRUE(report.cache_untouched_on_reject) << "seed " << seed;
    EXPECT_EQ(report.served, trace.requests.size()) << "seed " << seed;
    // The burst was sized past the queue, so rejections really happened.
    if (plan.burst > plan.queue_capacity &&
        trace.requests.size() >= plan.burst)
      EXPECT_GT(report.probe_rejected_full, 0u) << "seed " << seed;
  }
}

TEST(QcFaultTest, TinyCacheForcesEvictionsWithoutMismatch) {
  Rng rng(33);
  const service::TraceParams tp = arbitrary_trace_params(rng);
  const service::Trace trace = service::generate_trace(tp);
  FaultPlan plan;
  plan.seed = 5;
  plan.cache_entries = 1;  // maximal churn
  plan.burst = 0;
  const FaultReport report = run_fault_plan(plan, trace);
  EXPECT_TRUE(report.ok()) << report.error;
  EXPECT_EQ(report.mismatches, 0u);
}

TEST(QcFaultTest, ArbitraryFaultPlanIsDeterministic) {
  Rng a(77);
  Rng b(77);
  const FaultPlan pa = arbitrary_fault_plan(a);
  const FaultPlan pb = arbitrary_fault_plan(b);
  EXPECT_EQ(pa.seed, pb.seed);
  EXPECT_EQ(pa.queue_capacity, pb.queue_capacity);
  EXPECT_EQ(pa.burst, pb.burst);
  EXPECT_EQ(pa.cache_entries, pb.cache_entries);
  EXPECT_EQ(pa.disable_cache, pb.disable_cache);
  EXPECT_EQ(pa.shuffle_scheduler, pb.shuffle_scheduler);
  EXPECT_GE(pa.burst, pa.queue_capacity);
}

}  // namespace
}  // namespace pslocal::qc
