#include "mis/exact_maxis.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "mis/independent_set.hpp"

namespace pslocal {
namespace {

// Reference: exhaustive alpha for graphs with <= 20 vertices via bitmask
// enumeration with pruning-free semantics.
std::size_t alpha_by_enumeration(const Graph& g) {
  const std::size_t n = g.vertex_count();
  std::vector<std::uint32_t> adj(n, 0);
  for (auto [u, v] : g.edges()) {
    adj[u] |= 1u << v;
    adj[v] |= 1u << u;
  }
  std::size_t best = 0;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    bool ok = true;
    for (std::size_t v = 0; v < n && ok; ++v)
      if ((mask >> v) & 1u) ok = (mask & adj[v]) == 0;
    if (ok)
      best = std::max<std::size_t>(best,
                                   static_cast<std::size_t>(__builtin_popcount(mask)));
  }
  return best;
}

TEST(ExactMaxISTest, KnownFamilies) {
  EXPECT_EQ(independence_number(complete(7)), 1u);
  EXPECT_EQ(independence_number(Graph::from_edges(9, {})), 9u);
  EXPECT_EQ(independence_number(ring(10)), 5u);
  EXPECT_EQ(independence_number(ring(11)), 5u);
  EXPECT_EQ(independence_number(path(9)), 5u);
  EXPECT_EQ(independence_number(complete_bipartite(3, 8)), 8u);
  EXPECT_EQ(independence_number(grid(4, 4)), 8u);
  EXPECT_EQ(independence_number(grid(3, 5)), 8u);
  EXPECT_EQ(independence_number(disjoint_cliques({2, 3, 4, 1})), 4u);
}

TEST(ExactMaxISTest, ReturnsActualSetNotJustSize) {
  const Graph g = ring(12);
  const auto res = ExactMaxIS().solve(g);
  EXPECT_TRUE(res.proven_optimal);
  EXPECT_TRUE(is_independent_set(g, res.set));
  EXPECT_EQ(res.set.size(), 6u);
}

TEST(ExactMaxISTest, EmptyGraph) {
  const auto res = ExactMaxIS().solve(Graph{});
  EXPECT_TRUE(res.proven_optimal);
  EXPECT_TRUE(res.set.empty());
}

class ExactVsEnumerationTest
    : public ::testing::TestWithParam<std::pair<double, std::uint64_t>> {};

TEST_P(ExactVsEnumerationTest, AgreesOnRandomGraphs) {
  const auto [p, seed] = GetParam();
  Rng rng(seed);
  for (int rep = 0; rep < 5; ++rep) {
    const std::size_t n = 8 + rng.next_below(9);  // 8..16
    const Graph g = gnp(n, p, rng);
    const auto res = ExactMaxIS().solve(g);
    ASSERT_TRUE(res.proven_optimal);
    EXPECT_TRUE(is_independent_set(g, res.set));
    EXPECT_EQ(res.set.size(), alpha_by_enumeration(g))
        << "n=" << n << " p=" << p << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExactVsEnumerationTest,
    ::testing::Values(std::pair<double, std::uint64_t>{0.1, 1},
                      std::pair<double, std::uint64_t>{0.25, 2},
                      std::pair<double, std::uint64_t>{0.5, 3},
                      std::pair<double, std::uint64_t>{0.75, 4},
                      std::pair<double, std::uint64_t>{0.9, 5}));

TEST(ExactMaxISTest, BudgetExhaustionReportsNonOptimal) {
  Rng rng(9);
  const Graph g = gnp(60, 0.3, rng);
  const auto res = ExactMaxIS(/*node_budget=*/3).solve(g);
  EXPECT_FALSE(res.proven_optimal);
  EXPECT_TRUE(is_independent_set(g, res.set));  // still a valid (maybe empty) IS
}

TEST(ExactMaxISTest, IndependenceNumberThrowsOnBudget) {
  Rng rng(10);
  const Graph g = gnp(200, 0.5, rng);
  // 200-vertex dense graph with a 3-node budget cannot be proven optimal.
  ExactMaxIS tiny(3);
  EXPECT_FALSE(tiny.solve(g).proven_optimal);
}

TEST(ExactOracleTest, SolvesAndReportsGuarantee) {
  ExactOracle oracle;
  EXPECT_EQ(oracle.name(), "exact");
  ASSERT_TRUE(oracle.lambda_guarantee().has_value());
  EXPECT_DOUBLE_EQ(*oracle.lambda_guarantee(), 1.0);
  const Graph g = ring(8);
  EXPECT_EQ(oracle.solve(g).size(), 4u);
}

TEST(ExactOracleTest, LambdaOneIsEnforcedOnBudgetCut) {
  // lambda_guarantee() == 1.0 is a contract, not a hint: when the node
  // budget cuts the search short the oracle must refuse to answer
  // rather than return an incumbent of unknown quality.
  Rng rng(10);
  const Graph g = gnp(200, 0.5, rng);
  ExactOracle starved(/*node_budget=*/3);
  EXPECT_THROW(static_cast<void>(starved.solve(g)), ContractViolation);
  // An adequate budget on a small instance still answers normally.
  ExactOracle fine;
  EXPECT_EQ(fine.solve(ring(8)).size(), 4u);
}

TEST(IndependentSetTest, Predicates) {
  const Graph g = ring(6);
  EXPECT_TRUE(is_independent_set(g, {0, 2, 4}));
  EXPECT_FALSE(is_independent_set(g, {0, 1}));
  EXPECT_FALSE(is_independent_set(g, {0, 0}));      // duplicate
  EXPECT_FALSE(is_independent_set(g, {0, 7}));      // out of range
  EXPECT_TRUE(is_maximal_independent_set(g, {0, 2, 4}));
  EXPECT_TRUE(is_maximal_independent_set(g, {0, 3}));  // N[{0,3}] covers C6
  EXPECT_FALSE(is_maximal_independent_set(g, {0}));    // 2, 3, 4 still free
}

TEST(IndependentSetTest, ExtendToMaximal) {
  const Graph g = path(7);
  const auto extended = extend_to_maximal(g, {3});
  EXPECT_TRUE(is_maximal_independent_set(g, extended));
  EXPECT_NE(std::find(extended.begin(), extended.end(), 3), extended.end());
  EXPECT_THROW(extend_to_maximal(g, {0, 1}), ContractViolation);
}

}  // namespace
}  // namespace pslocal
