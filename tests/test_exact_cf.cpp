#include "coloring/exact_cf.hpp"

#include <gtest/gtest.h>

#include "coloring/cf_baselines.hpp"
#include "core/reduction.hpp"
#include "hypergraph/generators.hpp"
#include "mis/greedy_maxis.hpp"

namespace pslocal {
namespace {

// Note: exact_min_cf_colors works in the paper's Theorem 1.2 regime —
// *total* single colorings f : V -> {1..k} (no ⊥) — matching Lemma 2.1 a.

TEST(ExactCfTest, SingleEdgeNeedsTwoColors) {
  // Total colorings: {1,1} is monochromatic; {1,2} is happy.
  const Hypergraph h(2, {{0, 1}});
  const auto res = exact_min_cf_colors(h, 4);
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.colors, 2u);
}

TEST(ExactCfTest, EdgelessNeedsOne) {
  const Hypergraph h(3, {});
  const auto res = exact_min_cf_colors(h, 4);
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.colors, 1u);
}

TEST(ExactCfTest, DisjointTriplesNeedTwo) {
  // Edge {a,b,c} with colors (1,2,2): color 1 unique -> happy with k = 2;
  // k = 1 is impossible (all-equal is monochromatic).
  const Hypergraph h(6, {{0, 1, 2}, {3, 4, 5}});
  const auto res = exact_min_cf_colors(h, 4);
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.colors, 2u);
}

TEST(ExactCfTest, WitnessIsConflictFree) {
  Rng rng(3);
  PlantedCfParams params;
  params.n = 14;
  params.m = 8;
  params.k = 3;
  const auto inst = planted_cf_colorable(params, rng);
  const auto res = exact_min_cf_colors(inst.hypergraph, 4);
  ASSERT_TRUE(res.found);
  EXPECT_TRUE(is_conflict_free(inst.hypergraph, res.coloring));
  // Planted k is an upper bound on the optimum.
  EXPECT_LE(res.colors, 3u);
}

TEST(ExactCfTest, InfeasibleWithinMaxKReported) {
  // {0,1} needs 2 colors; cap at 1.
  const Hypergraph h(2, {{0, 1}});
  const auto res = exact_min_cf_colors(h, 1);
  EXPECT_FALSE(res.found);
  EXPECT_FALSE(res.budget_exhausted);
}

TEST(ExactCfTest, BudgetExhaustionReported) {
  Rng rng(5);
  const auto h = random_uniform_hypergraph(24, 40, 3, rng);
  const auto res = exact_min_cf_colors(h, 8, /*node_budget=*/10);
  EXPECT_TRUE(res.budget_exhausted);
  EXPECT_FALSE(res.found);
}

TEST(ExactCfTest, ReductionStaysWithinPolylogFactorOfOptimum) {
  // The whole point of E7: the reduction's colors vs the true optimum.
  Rng rng(7);
  PlantedCfParams params;
  params.n = 16;
  params.m = 10;
  params.k = 2;
  const auto inst = planted_cf_colorable(params, rng);
  const auto opt = exact_min_cf_colors(inst.hypergraph, 4);
  ASSERT_TRUE(opt.found);

  GreedyMinDegreeOracle oracle;
  ReductionOptions opts;
  opts.k = 2;
  const auto res = cf_multicoloring_via_maxis(inst.hypergraph, oracle, opts);
  ASSERT_TRUE(res.success);
  // k * phases colors vs optimum: within the k * rho envelope.
  EXPECT_LE(res.colors_used,
            opt.colors * reduction_phase_bound(2.0, 10));
}

TEST(ExactCfTest, DyadicIsOptimalOnAllIntervalsOfSmallN) {
  // For all intervals over n=4 points (lengths >= 2), the CF chromatic
  // number is known to be floor(log2 4) + 1 = 3; dyadic achieves it.
  const auto h = all_intervals(4, 2, 4);
  const auto opt = exact_min_cf_colors(h, 5);
  ASSERT_TRUE(opt.found);
  const auto dyadic = dyadic_interval_cf_coloring(4);
  EXPECT_TRUE(is_conflict_free(h, dyadic));
  EXPECT_EQ(opt.colors, cf_color_count(dyadic));
}

}  // namespace
}  // namespace pslocal
