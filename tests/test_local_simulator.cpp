#include "local/simulator.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace pslocal {
namespace {

// Flooding algorithm used to test the simulator's 1-hop-per-round
// semantics: node 0 holds a token; every informed node broadcasts it.
struct FloodState {
  bool informed = false;
  std::size_t informed_at_round = kUnreachable;
  std::size_t round = 0;
};

class FloodAlgorithm final : public BroadcastAlgorithm<FloodState, int> {
 public:
  explicit FloodAlgorithm(std::size_t stop_after) : stop_after_(stop_after) {}

  FloodState init(VertexId v, const Graph&, Rng&) override {
    FloodState s;
    if (v == 0) {
      s.informed = true;
      s.informed_at_round = 0;
    }
    return s;
  }

  std::optional<int> emit(VertexId, const FloodState& s) override {
    if (s.informed) return 1;
    return std::nullopt;  // silence
  }

  void step(VertexId, FloodState& s, std::span<const std::optional<int>> inbox,
            Rng&) override {
    ++s.round;
    if (s.informed) return;
    for (const auto& m : inbox) {
      if (m) {
        s.informed = true;
        s.informed_at_round = s.round;
        return;
      }
    }
  }

  bool halted(VertexId, const FloodState& s) override {
    return s.round >= stop_after_;
  }

 private:
  std::size_t stop_after_;
};

TEST(LocalSimulatorTest, InformationTravelsExactlyOneHopPerRound) {
  const Graph g = grid(5, 5);
  const auto dist = bfs_distances(g, 0);
  FloodAlgorithm algo(/*stop_after=*/12);
  const auto run = run_local(g, algo, 1, 100);
  EXPECT_TRUE(run.all_halted);
  EXPECT_EQ(run.rounds, 12u);
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    // The token reaches v exactly at its BFS distance — no faster (the
    // model's locality constraint) and no slower (flooding).
    EXPECT_EQ(run.states[v].informed_at_round, dist[v]) << "v=" << v;
  }
}

TEST(LocalSimulatorTest, SilentNodesDeliverNullopt) {
  const Graph g = path(3);
  FloodAlgorithm algo(1);
  const auto run = run_local(g, algo, 1, 100);
  // After one round only node 1 (neighbor of 0) is informed.
  EXPECT_TRUE(run.states[1].informed);
  EXPECT_FALSE(run.states[2].informed);
}

TEST(LocalSimulatorTest, MaxRoundsCapStopsRun) {
  const Graph g = path(30);
  FloodAlgorithm algo(/*stop_after=*/1000);  // wants many rounds
  const auto run = run_local(g, algo, 1, 5);
  EXPECT_FALSE(run.all_halted);
  EXPECT_EQ(run.rounds, 5u);
}

TEST(LocalSimulatorTest, ZeroRoundsWhenEveryoneStartsHalted) {
  const Graph g = path(4);
  FloodAlgorithm algo(/*stop_after=*/0);
  const auto run = run_local(g, algo, 1, 100);
  EXPECT_EQ(run.rounds, 0u);
  EXPECT_TRUE(run.all_halted);
}

// Determinism: per-node RNG substreams are seeded from the run seed only.
struct RandState {
  std::uint64_t value = 0;
  bool done = false;
};

class RandAlgorithm final : public BroadcastAlgorithm<RandState, int> {
 public:
  RandState init(VertexId, const Graph&, Rng& rng) override {
    return RandState{rng.next_u64(), false};
  }
  std::optional<int> emit(VertexId, const RandState&) override {
    return std::nullopt;
  }
  void step(VertexId, RandState& s, std::span<const std::optional<int>>,
            Rng& rng) override {
    s.value ^= rng.next_u64();
    s.done = true;
  }
  bool halted(VertexId, const RandState& s) override { return s.done; }
};

TEST(LocalSimulatorTest, MessageAccountingCountsPayloads) {
  const Graph g = path(4);
  FloodAlgorithm algo(/*stop_after=*/2);
  const auto run = run_local(g, algo, 1, 100);
  // Round 1: node 0 informed -> 1 message.  Round 2: nodes 0, 1 -> 2.
  EXPECT_EQ(run.messages_sent, 3u);
  EXPECT_EQ(run.max_message_bytes, sizeof(int));
  EXPECT_EQ(run.total_message_bytes, 3 * sizeof(int));
}

TEST(LocalSimulatorTest, SilentNodesCostNoBandwidth) {
  const Graph g = Graph::from_edges(3, {});  // nobody ever informed but 0
  FloodAlgorithm algo(/*stop_after=*/1);
  const auto run = run_local(g, algo, 1, 100);
  EXPECT_EQ(run.messages_sent, 1u);  // only node 0 broadcasts
}

TEST(LocalSimulatorTest, DeterministicPerSeedAndIndependentPerNode) {
  const Graph g = ring(10);
  RandAlgorithm algo;
  const auto a = run_local(g, algo, 7, 10);
  const auto b = run_local(g, algo, 7, 10);
  const auto c = run_local(g, algo, 8, 10);
  std::size_t same_seed_equal = 0, diff_seed_equal = 0, cross_node_equal = 0;
  for (VertexId v = 0; v < 10; ++v) {
    if (a.states[v].value == b.states[v].value) ++same_seed_equal;
    if (a.states[v].value == c.states[v].value) ++diff_seed_equal;
    for (VertexId w = v + 1; w < 10; ++w)
      if (a.states[v].value == a.states[w].value) ++cross_node_equal;
  }
  EXPECT_EQ(same_seed_equal, 10u);
  EXPECT_EQ(diff_seed_equal, 0u);
  EXPECT_EQ(cross_node_equal, 0u);
}

}  // namespace
}  // namespace pslocal
