#include "slocal/orders.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "slocal/greedy_algorithms.hpp"

namespace pslocal {
namespace {

class OrderStrategyTest : public ::testing::TestWithParam<OrderStrategy> {};

TEST_P(OrderStrategyTest, ProducesPermutationsOnEveryFamily) {
  Rng rng(1);
  const std::vector<Graph> graphs = {
      ring(12), path(9), complete(6), grid(3, 4),
      gnp(40, 0.1, rng), Graph::from_edges(5, {}), Graph{},
  };
  for (const auto& g : graphs) {
    const auto order = make_order(g, GetParam(), 7);
    EXPECT_TRUE(is_vertex_permutation(g, order))
        << to_string(GetParam()) << " n=" << g.vertex_count();
  }
}

TEST_P(OrderStrategyTest, SLocalGreedyMisValidUnderEveryOrder) {
  Rng rng(2);
  const Graph g = gnp(50, 0.12, rng);
  const auto order = make_order(g, GetParam(), 11);
  const auto res = slocal_greedy_mis(g, order);
  EXPECT_EQ(res.locality, 1u);
  EXPECT_GE(res.independent_set.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(All, OrderStrategyTest,
                         ::testing::ValuesIn(all_order_strategies()),
                         [](const auto& info) {
                           std::string name = to_string(info.param);
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

TEST(OrderStrategyTest, SpecificShapes) {
  const Graph g = path(5);
  EXPECT_EQ(make_order(g, OrderStrategy::kIdentity),
            (std::vector<VertexId>{0, 1, 2, 3, 4}));
  EXPECT_EQ(make_order(g, OrderStrategy::kReverse),
            (std::vector<VertexId>{4, 3, 2, 1, 0}));
  // Degree ascending on a path: endpoints (deg 1) first, stable by id.
  EXPECT_EQ(make_order(g, OrderStrategy::kDegreeAscending),
            (std::vector<VertexId>{0, 4, 1, 2, 3}));
  // BFS from 0 on a path is the identity.
  EXPECT_EQ(make_order(g, OrderStrategy::kBfs),
            (std::vector<VertexId>{0, 1, 2, 3, 4}));
}

TEST(OrderStrategyTest, RandomIsSeedDeterministic) {
  const Graph g = ring(20);
  EXPECT_EQ(make_order(g, OrderStrategy::kRandom, 5),
            make_order(g, OrderStrategy::kRandom, 5));
  EXPECT_NE(make_order(g, OrderStrategy::kRandom, 5),
            make_order(g, OrderStrategy::kRandom, 6));
}

TEST(OrderStrategyTest, BfsCoversDisconnectedGraphs) {
  const Graph g = disjoint_cliques({3, 4});
  const auto order = make_order(g, OrderStrategy::kBfs);
  EXPECT_TRUE(is_vertex_permutation(g, order));
}

TEST(OrderStrategyTest, NamesAreDistinct) {
  std::set<std::string> names;
  for (auto s : all_order_strategies()) names.insert(to_string(s));
  EXPECT_EQ(names.size(), all_order_strategies().size());
}

}  // namespace
}  // namespace pslocal
