// service/engine + workload: end-to-end serving determinism, admission
// control, shutdown semantics, batching memoization, and replay files.
#include "service/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "service/workload.hpp"
#include "util/hash.hpp"

namespace pslocal::service {
namespace {

TraceParams small_trace_params() {
  TraceParams tp;
  tp.seed = 7;
  tp.requests = 60;
  tp.instance_pool = 4;
  tp.n = 32;
  tp.m = 24;
  tp.k = 3;
  return tp;
}

/// Serve every trace request (serially submitted, FIFO) and return the
/// replay entries in id order.
std::vector<ReplayEntry> serve_all(const Trace& trace,
                                   const EngineConfig& cfg) {
  ServiceEngine engine(cfg);
  engine.start();
  std::vector<ReplayEntry> entries;
  entries.reserve(trace.requests.size());
  for (const auto& req : trace.requests) {
    auto sub = engine.submit(req);
    EXPECT_EQ(sub.admission, Admission::kAccepted);
    const Response resp = sub.response.get();
    EXPECT_EQ(resp.status, Response::Status::kOk) << resp.reason;
    entries.push_back({resp.id, resp.key, resp.result});
  }
  return entries;
}

TEST(ServiceEngineTest, PayloadsIdenticalAcrossThreadCounts) {
  const Trace trace = generate_trace(small_trace_params());
  runtime::ThreadPool seq(1), par(4);
  EngineConfig cfg_seq;
  cfg_seq.scheduler = &seq;
  EngineConfig cfg_par;
  cfg_par.scheduler = &par;
  const auto a = serve_all(trace, cfg_seq);
  const auto b = serve_all(trace, cfg_par);
  const auto verdict = verify_replay(a, b);
  EXPECT_TRUE(verdict.identical)
      << verdict.mismatches << " mismatches, first id "
      << verdict.first_mismatch_id;
  EXPECT_EQ(verdict.compared, trace.requests.size());
}

TEST(ServiceEngineTest, PayloadsIdenticalWithAndWithoutCache) {
  const Trace trace = generate_trace(small_trace_params());
  EngineConfig cached;
  EngineConfig uncached;
  uncached.cache.enabled = false;
  uncached.graph_cache_entries = 0;
  const auto verdict =
      verify_replay(serve_all(trace, cached), serve_all(trace, uncached));
  EXPECT_TRUE(verdict.identical);
}

TEST(ServiceEngineTest, CacheHitTotalsAreDeterministic) {
  const Trace trace = generate_trace(small_trace_params());
  EngineConfig cfg;  // capacity far above unique_keys: no evictions
  ServiceEngine engine(cfg);
  engine.start();
  for (const auto& req : trace.requests) {
    auto sub = engine.submit(req);
    ASSERT_EQ(sub.admission, Admission::kAccepted);
    (void)sub.response.get();
  }
  const auto stats = engine.stats();
  // With serial submission every repeated key is a cache hit; total
  // hits = requests - distinct keys, independent of timing.
  EXPECT_EQ(stats.served, trace.requests.size());
  EXPECT_EQ(stats.served_cached, trace.requests.size() - trace.unique_keys);
  EXPECT_EQ(stats.cache.misses, trace.unique_keys);
  EXPECT_EQ(stats.errors, 0u);
}

TEST(ServiceEngineTest, UnstartedEngineAdmitsExactlyCapacity) {
  const Trace trace = generate_trace(small_trace_params());
  EngineConfig cfg;
  cfg.queue_capacity = 5;
  ServiceEngine engine(cfg);  // never started: nothing drains
  std::vector<std::future<Response>> accepted;
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < 9; ++i) {
    auto sub = engine.submit(trace.requests[i]);
    if (sub.admission == Admission::kAccepted)
      accepted.push_back(std::move(sub.response));
    else if (sub.admission == Admission::kQueueFull)
      ++rejected;
  }
  EXPECT_EQ(accepted.size(), 5u);
  EXPECT_EQ(rejected, 4u);
  engine.stop();
  // Every admitted request is still answered — rejected at shutdown.
  for (auto& f : accepted) {
    const Response resp = f.get();
    EXPECT_EQ(resp.status, Response::Status::kRejected);
    EXPECT_EQ(resp.reason, "shutdown");
  }
  const auto stats = engine.stats();
  EXPECT_EQ(stats.rejected_full, 4u);
  EXPECT_EQ(stats.rejected_shutdown, 5u);
}

TEST(ServiceEngineTest, QueueFullRejectionLeavesCachesUntouched) {
  // Regression pin: a kQueueFull rejection happens entirely at
  // admission — before any cache lookup — so it must not mutate the
  // solver cache, the conflict-graph cache, or any served counter.
  const Trace trace = generate_trace(small_trace_params());
  EngineConfig cfg;
  cfg.queue_capacity = 3;
  ServiceEngine engine(cfg);  // un-started: the queue never drains
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < 12; ++i)
    if (engine.submit(trace.requests[i]).admission == Admission::kQueueFull)
      ++rejected;
  ASSERT_EQ(rejected, 9u);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.cache.hits, 0u);
  EXPECT_EQ(stats.cache.misses, 0u);
  EXPECT_EQ(stats.cache.entries, 0u);
  EXPECT_EQ(stats.cache.evictions, 0u);
  EXPECT_EQ(stats.graph_cache.builds, 0u);
  EXPECT_EQ(stats.graph_cache.hits, 0u);
  EXPECT_EQ(stats.served, 0u);
  engine.stop();
}

TEST(ServiceEngineTest, SubmitAfterStopIsRejectedImmediately) {
  const Trace trace = generate_trace(small_trace_params());
  ServiceEngine engine;
  engine.start();
  engine.stop();
  auto sub = engine.submit(trace.requests[0]);
  EXPECT_EQ(sub.admission, Admission::kShutdown);
}

TEST(ServiceEngineTest, SolverErrorYieldsErrorResponseNotCrash) {
  const Trace trace = generate_trace(small_trace_params());
  Request req = trace.requests[0];
  req.kind = RequestKind::kRunReduction;
  req.solver = "no-such-solver";
  ServiceEngine engine;
  engine.start();
  auto sub = engine.submit(req);
  ASSERT_EQ(sub.admission, Admission::kAccepted);
  const Response resp = sub.response.get();
  EXPECT_EQ(resp.status, Response::Status::kError);
  EXPECT_FALSE(resp.reason.empty());
  EXPECT_EQ(engine.stats().errors, 1u);
}

TEST(ServiceEngineTest, FillsInstanceHashWhenCallerLeavesItZero) {
  const Trace trace = generate_trace(small_trace_params());
  Request req = trace.requests[0];
  const std::uint64_t expected = req.instance_hash;
  req.instance_hash = 0;
  ServiceEngine engine;
  engine.start();
  auto sub = engine.submit(req);
  ASSERT_EQ(sub.admission, Admission::kAccepted);
  const Response resp = sub.response.get();
  EXPECT_EQ(resp.status, Response::Status::kOk);
  Request keyed = trace.requests[0];
  keyed.instance_hash = expected;
  EXPECT_EQ(resp.key, cache_key(keyed));
}

TEST(ServiceEngineTest, ConcurrentClientsAllServed) {
  TraceParams tp = small_trace_params();
  tp.requests = 200;
  const Trace trace = generate_trace(tp);
  ServiceEngine engine;
  engine.start();
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> served{0}, retried{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= trace.requests.size()) return;
        for (;;) {
          auto sub = engine.submit(trace.requests[i]);
          if (sub.admission == Admission::kQueueFull) {
            retried.fetch_add(1);
            std::this_thread::yield();
            continue;
          }
          ASSERT_EQ(sub.admission, Admission::kAccepted);
          const Response resp = sub.response.get();
          ASSERT_EQ(resp.status, Response::Status::kOk);
          served.fetch_add(1);
          break;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(served.load(), trace.requests.size());
  EXPECT_EQ(engine.stats().served, trace.requests.size());
}

TEST(ServiceEngineTest, TraceGenerationIsDeterministic) {
  const Trace a = generate_trace(small_trace_params());
  const Trace b = generate_trace(small_trace_params());
  ASSERT_EQ(a.requests.size(), b.requests.size());
  EXPECT_EQ(a.unique_keys, b.unique_keys);
  EXPECT_EQ(a.instance_hashes, b.instance_hashes);
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].kind, b.requests[i].kind);
    EXPECT_EQ(a.requests[i].seed, b.requests[i].seed);
    EXPECT_EQ(cache_key(a.requests[i]), cache_key(b.requests[i]));
  }
}

TEST(ServiceEngineTest, ReplayFileRoundTripsByteExactly) {
  TraceParams tp = small_trace_params();
  tp.requests = 20;
  const Trace trace = generate_trace(tp);
  const auto entries = serve_all(trace, EngineConfig{});
  const std::string path = ::testing::TempDir() + "service_replay_test.json";
  write_replay_file(path, entries, tp.seed);
  const auto loaded = read_replay_file(path);
  const auto verdict = verify_replay(entries, loaded);
  EXPECT_TRUE(verdict.identical);
  EXPECT_EQ(verdict.compared, entries.size());
}

TEST(ServiceEngineTest, StopDrainServesEverythingAdmitted) {
  // Graceful drain: stop(kDrain) keeps the dispatcher serving until the
  // queue is empty, so every admitted request gets its real answer even
  // when stop() races the submissions.
  const Trace trace = generate_trace(small_trace_params());
  EngineConfig cfg;
  cfg.queue_capacity = trace.requests.size();
  ServiceEngine engine(cfg);
  engine.start();
  std::vector<std::future<Response>> futures;
  for (const auto& req : trace.requests) {
    auto sub = engine.submit(req);
    ASSERT_EQ(sub.admission, Admission::kAccepted);
    futures.push_back(std::move(sub.response));
  }
  engine.stop(ServiceEngine::StopMode::kDrain);
  for (auto& f : futures) {
    const Response resp = f.get();
    EXPECT_EQ(resp.status, Response::Status::kOk) << resp.reason;
  }
  const auto stats = engine.stats();
  EXPECT_EQ(stats.served, trace.requests.size());
  EXPECT_EQ(stats.rejected_shutdown, 0u);
}

TEST(ServiceEngineTest, StopRejectAnswersEveryFutureExactlyOnce) {
  // Fast shutdown: whatever was not yet dispatched when stop(kReject)
  // lands is answered kRejected("shutdown") instead of computed.  The
  // split between served and rejected depends on timing; the invariant
  // is that every future resolves, to exactly one of the two.
  const Trace trace = generate_trace(small_trace_params());
  EngineConfig cfg;
  cfg.queue_capacity = trace.requests.size();
  ServiceEngine engine(cfg);
  engine.start();
  std::vector<std::future<Response>> futures;
  for (const auto& req : trace.requests) {
    auto sub = engine.submit(req);
    ASSERT_EQ(sub.admission, Admission::kAccepted);
    futures.push_back(std::move(sub.response));
  }
  engine.stop(ServiceEngine::StopMode::kReject);
  std::size_t ok = 0, rejected = 0;
  for (auto& f : futures) {
    const Response resp = f.get();
    if (resp.status == Response::Status::kOk) {
      ++ok;
    } else {
      ASSERT_EQ(resp.status, Response::Status::kRejected);
      EXPECT_EQ(resp.reason, "shutdown");
      ++rejected;
    }
  }
  EXPECT_EQ(ok + rejected, trace.requests.size());
  const auto stats = engine.stats();
  EXPECT_EQ(stats.served, ok);
  EXPECT_EQ(stats.rejected_shutdown, rejected);
}

TEST(ServiceEngineTest, StopDrainOnUnstartedEngineStillAnswers) {
  // With no dispatcher there is nothing to drain with: the queued
  // requests are answered kRejected rather than abandoned.
  const Trace trace = generate_trace(small_trace_params());
  EngineConfig cfg;
  cfg.queue_capacity = 8;
  ServiceEngine engine(cfg);
  std::vector<std::future<Response>> futures;
  for (std::size_t i = 0; i < 5; ++i) {
    auto sub = engine.submit(trace.requests[i]);
    ASSERT_EQ(sub.admission, Admission::kAccepted);
    futures.push_back(std::move(sub.response));
  }
  engine.stop(ServiceEngine::StopMode::kDrain);
  for (auto& f : futures) {
    const Response resp = f.get();
    EXPECT_EQ(resp.status, Response::Status::kRejected);
    EXPECT_EQ(resp.reason, "shutdown");
  }
}

TEST(ServiceEngineTest, VerifyReplayFlagsTamperedPayload) {
  TraceParams tp = small_trace_params();
  tp.requests = 10;
  const Trace trace = generate_trace(tp);
  auto entries = serve_all(trace, EngineConfig{});
  auto tampered = entries;
  tampered[3].result[5] ^= 1;
  const auto verdict = verify_replay(entries, tampered);
  EXPECT_FALSE(verdict.identical);
  EXPECT_EQ(verdict.mismatches, 1u);
  EXPECT_EQ(verdict.first_mismatch_id, 3u);
}

}  // namespace
}  // namespace pslocal::service
