#include "core/conflict_graph.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/correspondence.hpp"
#include "hypergraph/generators.hpp"

namespace pslocal {
namespace {

// Independent brute-force construction of E(G_k) straight from the paper's
// definition, used as ground truth against the optimized builder.
std::set<std::pair<TripleId, TripleId>> brute_force_edges(
    const ConflictGraph& cg) {
  const Hypergraph& h = cg.hypergraph();
  std::set<std::pair<TripleId, TripleId>> edges;
  const std::size_t n = cg.triple_count();
  for (TripleId a = 0; a < n; ++a) {
    const Triple ta = cg.triple(a);
    for (TripleId b = a + 1; b < n; ++b) {
      const Triple tb = cg.triple(b);
      const bool e_vertex = ta.v == tb.v && ta.c != tb.c;
      const bool e_edge = ta.e == tb.e;
      const auto both_in = [&](EdgeId e) {
        return h.edge_contains(e, ta.v) && h.edge_contains(e, tb.v);
      };
      // u != v is required for E_color (see the constructor note in
      // core/conflict_graph.cpp — with u = v Lemma 2.1 a) would fail).
      const bool e_color =
          ta.c == tb.c && ta.v != tb.v && (both_in(ta.e) || both_in(tb.e));
      if (e_vertex || e_edge || e_color) edges.emplace(a, b);
    }
  }
  return edges;
}

TEST(ConflictGraphTest, SingleEdgeIsCompleteBlock) {
  // One hyperedge {0,1}, k=2: 4 triples forming a K4 via E_edge.
  const Hypergraph h(2, {{0, 1}});
  const ConflictGraph cg(h, 2);
  EXPECT_EQ(cg.triple_count(), 4u);
  EXPECT_EQ(cg.graph().edge_count(), 6u);
  EXPECT_EQ(cg.independence_upper_bound(), 1u);
}

TEST(ConflictGraphTest, DisjointEdgesSingleColor) {
  // Two disjoint hyperedges, k=1: only the two E_edge pairs.
  const Hypergraph h(4, {{0, 1}, {2, 3}});
  const ConflictGraph cg(h, 1);
  EXPECT_EQ(cg.triple_count(), 4u);
  EXPECT_EQ(cg.graph().edge_count(), 2u);
  const TripleId a = cg.triple_id(0, 0, 1);
  const TripleId c = cg.triple_id(1, 2, 1);
  EXPECT_FALSE(cg.graph().has_edge(static_cast<VertexId>(a),
                                   static_cast<VertexId>(c)));
}

TEST(ConflictGraphTest, SharedVertexCreatesVertexAndColorEdges) {
  // Edges {0,1} and {1,2} share vertex 1; k=2.
  const Hypergraph h(3, {{0, 1}, {1, 2}});
  const ConflictGraph cg(h, 2);
  const auto id = [&](EdgeId e, VertexId v, std::size_t c) {
    return static_cast<VertexId>(cg.triple_id(e, v, c));
  };
  // E_vertex: (e0,1,1) ~ (e1,1,2).
  EXPECT_TRUE(cg.graph().has_edge(id(0, 1, 1), id(1, 1, 2)));
  EXPECT_EQ(cg.edge_class_mask(cg.triple_id(0, 1, 1), cg.triple_id(1, 1, 2)),
            ConflictGraph::kEVertex);
  // Same vertex, same color, different edges: NOT an edge (u != v is
  // required for E_color; with u = v Lemma 2.1 a) would fail).
  EXPECT_FALSE(cg.graph().has_edge(id(0, 1, 1), id(1, 1, 1)));
  EXPECT_EQ(cg.edge_class_mask(cg.triple_id(0, 1, 1), cg.triple_id(1, 1, 1)),
            0u);
  // E_color with distinct vertices: (e0,0,1) ~ (e1,1,1), witness {0,1}⊆e0.
  EXPECT_TRUE(cg.graph().has_edge(id(0, 0, 1), id(1, 1, 1)));
  EXPECT_EQ(cg.edge_class_mask(cg.triple_id(0, 0, 1), cg.triple_id(1, 1, 1)),
            ConflictGraph::kEColor);
  // Non-edge: (e0,0,1) vs (e1,2,2) share nothing.
  EXPECT_FALSE(cg.graph().has_edge(id(0, 0, 1), id(1, 2, 2)));
  EXPECT_EQ(cg.edge_class_mask(cg.triple_id(0, 0, 1), cg.triple_id(1, 2, 2)),
            0u);
}

TEST(ConflictGraphTest, SharedWitnessAcrossEdgesStaysIndependent) {
  // Regression for the u != v reading of E_color: edges {0,1} and {0,2}
  // both have vertex 0 as their unique-color witness under f = (1, 2, 2).
  // I_f = {(e0,0,1), (e1,0,1)} must be independent or Lemma 2.1 a) fails.
  const Hypergraph h(3, {{0, 1}, {0, 2}});
  const ConflictGraph cg(h, 2);
  const auto a = static_cast<VertexId>(cg.triple_id(0, 0, 1));
  const auto b = static_cast<VertexId>(cg.triple_id(1, 0, 1));
  EXPECT_FALSE(cg.graph().has_edge(a, b));
}

TEST(ConflictGraphTest, TripleRoundtrip) {
  const Hypergraph h(5, {{0, 2, 4}, {1, 2}, {3, 4}});
  const ConflictGraph cg(h, 3);
  EXPECT_EQ(cg.triple_count(), (3u + 2u + 2u) * 3u);
  for (TripleId t = 0; t < cg.triple_count(); ++t) {
    const Triple tr = cg.triple(t);
    EXPECT_TRUE(h.edge_contains(tr.e, tr.v));
    EXPECT_GE(tr.c, 1u);
    EXPECT_LE(tr.c, 3u);
    EXPECT_EQ(cg.triple_id(tr.e, tr.v, tr.c), t);
  }
}

TEST(ConflictGraphTest, TripleIdContracts) {
  const Hypergraph h(3, {{0, 1}});
  const ConflictGraph cg(h, 2);
  EXPECT_THROW((void)cg.triple_id(0, 2, 1), ContractViolation);  // not in edge
  EXPECT_THROW((void)cg.triple_id(0, 0, 0), ContractViolation);  // color 0
  EXPECT_THROW((void)cg.triple_id(0, 0, 3), ContractViolation);  // color > k
  EXPECT_THROW((void)cg.triple(999), ContractViolation);
}

TEST(ConflictGraphTest, VertexCountFormula) {
  Rng rng(11);
  PlantedCfParams params;
  params.n = 30;
  params.m = 20;
  params.k = 3;
  const auto inst = planted_cf_colorable(params, rng);
  for (std::size_t k : {1u, 2u, 4u}) {
    const ConflictGraph cg(inst.hypergraph, k);
    std::size_t incidence = 0;
    for (EdgeId e = 0; e < inst.hypergraph.edge_count(); ++e)
      incidence += inst.hypergraph.edge_size(e);
    EXPECT_EQ(cg.triple_count(), incidence * k);
  }
}

struct BruteForceCase {
  std::size_t n, m, k;
};

class ConflictGraphBruteForceTest
    : public ::testing::TestWithParam<BruteForceCase> {};

TEST_P(ConflictGraphBruteForceTest, MatchesDefinitionExactly) {
  const auto p = GetParam();
  Rng rng(500 + p.n * 13 + p.m * 7 + p.k);
  PlantedCfParams params;
  params.n = p.n;
  params.m = p.m;
  params.k = std::max<std::size_t>(2, p.k);
  const auto inst = planted_cf_colorable(params, rng);
  const ConflictGraph cg(inst.hypergraph, p.k);

  const auto expected = brute_force_edges(cg);
  std::set<std::pair<TripleId, TripleId>> actual;
  for (auto [a, b] : cg.graph().edges())
    actual.emplace(static_cast<TripleId>(a), static_cast<TripleId>(b));
  EXPECT_EQ(actual, expected);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ConflictGraphBruteForceTest,
                         ::testing::Values(BruteForceCase{10, 4, 1},
                                           BruteForceCase{10, 4, 2},
                                           BruteForceCase{12, 6, 3},
                                           BruteForceCase{16, 8, 2},
                                           BruteForceCase{18, 5, 4}));

TEST(ConflictGraphTest, ClosedFormClassCounts) {
  // Exact combinatorics of the first two classes:
  //   |E_edge|   = sum_e C(|e|*k, 2)                      (one clique per edge)
  //   |E_vertex| = sum_v [ C(d_v,2) k(k-1) + d_v C(k,2) ] (pairs of incident
  //                pairs with distinct colors; same-pair case has unordered
  //                color pairs)
  Rng rng(29);
  PlantedCfParams params;
  params.n = 24;
  params.m = 14;
  params.k = 3;
  const auto inst = planted_cf_colorable(params, rng);
  for (std::size_t k : {1u, 2u, 3u}) {
    const ConflictGraph cg(inst.hypergraph, k);
    const auto counts = cg.count_edge_classes();

    std::size_t expect_eedge = 0;
    for (EdgeId e = 0; e < inst.hypergraph.edge_count(); ++e) {
      const std::size_t block = inst.hypergraph.edge_size(e) * k;
      expect_eedge += block * (block - 1) / 2;
    }
    EXPECT_EQ(counts.e_edge, expect_eedge) << "k=" << k;

    std::size_t expect_evertex = 0;
    for (VertexId v = 0; v < inst.hypergraph.vertex_count(); ++v) {
      const std::size_t d = inst.hypergraph.vertex_degree(v);
      expect_evertex += d * (d - 1) / 2 * k * (k - 1);  // distinct pairs
      expect_evertex += d * (k * (k - 1) / 2);          // same pair, c < d
    }
    EXPECT_EQ(counts.e_vertex, expect_evertex) << "k=" << k;
  }
}

TEST(ConflictGraphTest, DuplicateHyperedgesAreLegal) {
  // Duplicate edges are legal hypergraph inputs; the corrected (u != v)
  // E_color keeps Lemma 2.1 a) true even when both copies pick the same
  // witness.
  const Hypergraph h(3, {{0, 1}, {0, 1}, {1, 2}});
  const ConflictGraph cg(h, 2);
  const CfColoring f{1, 2, 1};  // CF: every edge bichromatic
  ASSERT_TRUE(is_conflict_free(h, f));
  const auto report = check_lemma_a(cg, f);
  EXPECT_TRUE(report.applicable);
  EXPECT_TRUE(report.independent);
  EXPECT_TRUE(report.attains_maximum);
  EXPECT_EQ(report.is_size, 3u);
}

TEST(ConflictGraphTest, ClassCountsCoverAllEdges) {
  Rng rng(17);
  PlantedCfParams params;
  params.n = 20;
  params.m = 10;
  params.k = 3;
  const auto inst = planted_cf_colorable(params, rng);
  const ConflictGraph cg(inst.hypergraph, 3);
  const auto counts = cg.count_edge_classes();
  EXPECT_EQ(counts.total, cg.graph().edge_count());
  EXPECT_GT(counts.e_vertex, 0u);
  EXPECT_GT(counts.e_edge, 0u);
  EXPECT_GT(counts.e_color, 0u);
  // Classes overlap, so their sum is at least the total.
  EXPECT_GE(counts.e_vertex + counts.e_edge + counts.e_color, counts.total);
}

TEST(ConflictGraphTest, InterValHypergraphAlsoWorks) {
  Rng rng(23);
  const auto h = interval_hypergraph(20, 8, 2, 5, rng);
  const ConflictGraph cg(h, 2);
  const auto expected = brute_force_edges(cg);
  std::set<std::pair<TripleId, TripleId>> actual;
  for (auto [a, b] : cg.graph().edges())
    actual.emplace(static_cast<TripleId>(a), static_cast<TripleId>(b));
  EXPECT_EQ(actual, expected);
}

}  // namespace
}  // namespace pslocal
