// qc/gen: the generators must be seed-deterministic and every named
// family's carried witness must actually certify CF k-colorability —
// otherwise the reduction properties would assert a promise nobody
// checked.
#include "qc/gen.hpp"

#include <gtest/gtest.h>

#include "coloring/conflict_free.hpp"
#include "util/hash.hpp"

namespace pslocal::qc {
namespace {

TEST(QcGeneratorsTest, FamilyWitnessesAreCfKColorings) {
  for (const std::string& family : hyper_family_names()) {
    for (std::uint64_t seed : {1ull, 7ull, 42ull, 1000ull}) {
      const HyperInstance inst = make_family(family, seed);
      ASSERT_EQ(inst.family, family);
      ASSERT_EQ(inst.seed, seed);
      ASSERT_GE(inst.k, 2u) << family;
      ASSERT_EQ(inst.witness.size(), inst.hypergraph.vertex_count())
          << family << " seed " << seed;
      EXPECT_TRUE(is_conflict_free(inst.hypergraph, inst.witness))
          << family << " seed " << seed;
      for (const std::size_t c : inst.witness) {
        EXPECT_GE(c, 1u);
        EXPECT_LE(c, inst.k) << family << " seed " << seed;
      }
    }
  }
}

TEST(QcGeneratorsTest, MakeFamilyIsDeterministic) {
  for (const std::string& family : hyper_family_names()) {
    const HyperInstance a = make_family(family, 99);
    const HyperInstance b = make_family(family, 99);
    EXPECT_EQ(describe(a.hypergraph), describe(b.hypergraph)) << family;
    EXPECT_EQ(a.k, b.k);
    EXPECT_EQ(a.witness, b.witness);
  }
}

TEST(QcGeneratorsTest, ArbitraryInstanceRespectsForcedFamily) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    const HyperInstance inst = arbitrary_instance(rng, "interval");
    EXPECT_EQ(inst.family, "interval");
  }
}

TEST(QcGeneratorsTest, ArbitraryGraphIsDeterministicAndBounded) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    Rng a(seed);
    Rng b(seed);
    const Graph ga = arbitrary_graph(a);
    const Graph gb = arbitrary_graph(b);
    EXPECT_EQ(describe(ga), describe(gb)) << "seed " << seed;
    EXPECT_LE(ga.vertex_count(), 36u) << "seed " << seed;
  }
}

TEST(QcGeneratorsTest, ArbitraryGraphCoversEmptyAndDenseEnds) {
  // Over a modest seed range the zoo must produce edgeless graphs,
  // graphs with edges, and something dense — shrinking relies on the
  // small end, the oracles on the dense end.
  bool saw_edgeless = false, saw_edges = false, saw_dense = false;
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    Rng rng(seed);
    const Graph g = arbitrary_graph(rng);
    if (g.edge_count() == 0) saw_edgeless = true;
    if (g.edge_count() > 0) saw_edges = true;
    if (g.vertex_count() >= 4 &&
        g.edge_count() * 3 >= g.vertex_count() * (g.vertex_count() - 1))
      saw_dense = true;
  }
  EXPECT_TRUE(saw_edgeless);
  EXPECT_TRUE(saw_edges);
  EXPECT_TRUE(saw_dense);
}

TEST(QcGeneratorsTest, TinyHypergraphsStayTiny) {
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    Rng rng(seed);
    const Hypergraph h = arbitrary_tiny_hypergraph(rng);
    EXPECT_LE(h.vertex_count(), 9u);
    EXPECT_LE(h.edge_count(), 8u);
    for (EdgeId e = 0; e < h.edge_count(); ++e) {
      EXPECT_GE(h.edge(e).size(), 1u);
      EXPECT_LE(h.edge(e).size(), 4u);
    }
  }
}

TEST(QcGeneratorsTest, TraceParamsKeepEveryKindReachable) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    Rng rng(seed);
    const service::TraceParams tp = arbitrary_trace_params(rng);
    EXPECT_GE(tp.requests, 16u);
    EXPECT_GE(tp.instance_pool, 2u);
    EXPECT_GE(tp.weight_build, 1u);
    EXPECT_GE(tp.weight_greedy, 1u);
    EXPECT_GE(tp.weight_luby, 1u);
    EXPECT_GE(tp.weight_cf, 1u);
    EXPECT_GE(tp.weight_reduction, 1u);
    // The params must actually generate (precondition sweep).
    const service::Trace trace = service::generate_trace(tp);
    EXPECT_EQ(trace.requests.size(), tp.requests);
  }
}

TEST(QcGeneratorsTest, MutationFamiliesAreSeedPure) {
  for (const auto& family : mutation_family_names()) {
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const MutationScript a = make_mutation_family(family, seed);
      const MutationScript b = make_mutation_family(family, seed);
      EXPECT_EQ(a.script, b.script) << family << " seed " << seed;
      EXPECT_EQ(a.witness, b.witness);
      EXPECT_EQ(hash_hypergraph(a.base.hypergraph),
                hash_hypergraph(b.base.hypergraph));
      EXPECT_EQ(a.base.k, b.base.k);
      // Valid against the base by construction, and small enough for
      // the exact differential leg.
      EXPECT_FALSE(validate_script(a.base.hypergraph, a.script).has_value());
      EXPECT_LE(a.base.hypergraph.vertex_count(), 16u);
      EXPECT_FALSE(a.script.empty());
    }
  }
}

TEST(QcGeneratorsTest, MutationWitnessStaysValidAtEveryPrefix) {
  // The witness is a CF coloring over the final vertex count whose
  // restriction to each prefix must stay conflict-free — the reduction
  // precondition survives every edit.
  for (const auto& family : mutation_family_names()) {
    for (std::uint64_t seed = 1; seed <= 15; ++seed) {
      const MutationScript ms = make_mutation_family(family, seed);
      std::size_t n = ms.base.hypergraph.vertex_count();
      std::vector<std::vector<VertexId>> edges;
      for (EdgeId e = 0; e < ms.base.hypergraph.edge_count(); ++e) {
        const auto vs = ms.base.hypergraph.edge(e);
        edges.emplace_back(vs.begin(), vs.end());
      }
      for (std::size_t step = 0; step <= ms.script.size(); ++step) {
        const Hypergraph h(n, edges);
        const CfColoring prefix(
            ms.witness.begin(),
            ms.witness.begin() + static_cast<std::ptrdiff_t>(n));
        EXPECT_TRUE(is_conflict_free(h, prefix))
            << family << " seed " << seed << " prefix " << step;
        for (const std::size_t c : prefix) {
          EXPECT_GE(c, 1u);
          EXPECT_LE(c, ms.base.k);
        }
        if (step < ms.script.size())
          apply_mutation(n, edges, ms.script[step]);
      }
      EXPECT_EQ(ms.witness.size(), n);  // sized to the final vertex count
    }
  }
}

TEST(QcGeneratorsTest, ArbitraryMutationScriptRespectsForcedFamily) {
  Rng rng(5);
  bool saw_heavy = false, saw_burst = false;
  for (int i = 0; i < 10; ++i) {
    const MutationScript forced =
        arbitrary_mutation_script(rng, "churn_burst");
    EXPECT_EQ(forced.family, "churn_burst");
    const MutationScript free = arbitrary_mutation_script(rng);
    saw_heavy = saw_heavy || free.family == "mutation_heavy";
    saw_burst = saw_burst || free.family == "churn_burst";
  }
  EXPECT_TRUE(saw_heavy);
  EXPECT_TRUE(saw_burst);
}

}  // namespace
}  // namespace pslocal::qc
