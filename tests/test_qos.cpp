// qos/: tenant registry + token-bucket determinism, weighted-fair
// admission (DRR exactness, lane bounds, deadline stamping), the engine
// integration (shed verdicts with backoff hints, deadline sheds at
// dispatch, the stats surface), and the end-to-end typed-NACK contract
// over real sockets.  All suites match the TSan CI filter `*Qos*`.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/server.hpp"
#include "qos/fair_queue.hpp"
#include "qos/tenant.hpp"
#include "service/engine.hpp"
#include "service/workload.hpp"
#include "util/json.hpp"

namespace pslocal {
namespace {

using service::Admission;
using service::Pending;

TEST(QosTenantTest, RegistryIndexZeroIsAlwaysTheDefaultTenant) {
  qos::TenantRegistry empty;
  ASSERT_EQ(empty.size(), 1u);
  EXPECT_EQ(empty.resolve(""), 0u);
  EXPECT_EQ(empty.resolve("nobody-configured-this"), 0u);
  EXPECT_EQ(empty.config(0).weight, 1u);
  EXPECT_EQ(empty.config(0).rate_rps, 0.0);

  qos::TenantConfig gold;
  gold.name = "gold";
  gold.weight = 4;
  qos::TenantConfig dflt;  // "" overrides the default tenant's policy
  dflt.weight = 2;
  qos::TenantRegistry reg({gold, dflt});
  ASSERT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.resolve("gold"), 1u);
  EXPECT_EQ(reg.config(1).weight, 4u);
  // Unknown wire tenants degrade to the default lane, not an error —
  // that is what keeps pre-QoS senders servable.
  EXPECT_EQ(reg.resolve("silver"), 0u);
  EXPECT_EQ(reg.config(0).weight, 2u);
}

TEST(QosTenantTest, TokenBucketIsAPureFunctionOfTheTimestampSchedule) {
  // rate 1000 rps, burst 2: two tokens up front, then exactly one per
  // millisecond of caller-supplied clock.  No wall time anywhere.
  qos::TokenBucket a(1000.0, 2.0), b(1000.0, 2.0);
  const std::uint64_t t0 = 1;
  EXPECT_TRUE(a.try_acquire(t0).admitted);
  EXPECT_TRUE(a.try_acquire(t0).admitted);
  const auto shed = a.try_acquire(t0);
  EXPECT_FALSE(shed.admitted);
  // The hint names the instant a whole token exists: 1ms at this rate.
  EXPECT_GE(shed.retry_after_us, 999u);
  EXPECT_LE(shed.retry_after_us, 1001u);
  // Honoring the hint admits.
  EXPECT_TRUE(a.try_acquire(t0 + shed.retry_after_us * 1000).admitted);

  // A second bucket fed the identical schedule produces the identical
  // verdicts (the determinism the qc properties lean on).
  EXPECT_TRUE(b.try_acquire(t0).admitted);
  EXPECT_TRUE(b.try_acquire(t0).admitted);
  const auto shed_b = b.try_acquire(t0);
  EXPECT_FALSE(shed_b.admitted);
  EXPECT_EQ(shed_b.retry_after_us, shed.retry_after_us);

  // rate 0 = unlimited: always admitted, never a hint.
  qos::TokenBucket open(0.0, 0.0);
  for (int i = 0; i < 64; ++i) {
    const auto v = open.try_acquire(static_cast<std::uint64_t>(i));
    EXPECT_TRUE(v.admitted);
    EXPECT_EQ(v.retry_after_us, 0u);
  }
}

qos::QosConfig two_tenant_config() {
  qos::QosConfig config;
  config.enabled = true;
  config.quantum = 2;
  qos::TenantConfig a;
  a.name = "a";
  a.weight = 3;
  qos::TenantConfig b;
  b.name = "b";
  b.weight = 1;
  config.tenants = {a, b};
  return config;
}

Pending make_pending(const std::string& tenant, std::uint64_t submit_ns) {
  Pending p;
  p.request.tenant = tenant;
  p.submit_ns = submit_ns;
  return p;
}

TEST(QosFairQueueTest, DrrRoundServesQuantumTimesWeightPerBackloggedLane) {
  qos::FairQueue q(two_tenant_config(), 64);
  std::uint64_t clock = 1;
  for (int i = 0; i < 12; ++i)
    ASSERT_EQ(q.admit(make_pending("a", clock++)).admission,
              Admission::kAccepted);
  for (int i = 0; i < 4; ++i)
    ASSERT_EQ(q.admit(make_pending("b", clock++)).admission,
              Admission::kAccepted);

  // One DRR visit credits quantum x weight: a gets 6, b gets 2 —
  // exactly, not asymptotically, because both lanes stay backlogged.
  std::vector<Pending> out;
  ASSERT_EQ(q.pop_batch(out, 8), 8u);
  std::size_t from_a = 0, from_b = 0;
  for (const Pending& p : out)
    (p.request.tenant == "a" ? from_a : from_b)++;
  EXPECT_EQ(from_a, 6u);
  EXPECT_EQ(from_b, 2u);

  // FIFO within a lane: a's pops arrive in admission order.
  std::uint64_t prev = 0;
  for (const Pending& p : out)
    if (p.request.tenant == "a") {
      EXPECT_GT(p.submit_ns, prev);
      prev = p.submit_ns;
    }
  q.shutdown();
}

TEST(QosFairQueueTest, GlobalCapacityBoundIsQueueFullNotShed) {
  qos::FairQueue q(two_tenant_config(), 2);
  EXPECT_EQ(q.admit(make_pending("a", 1)).admission, Admission::kAccepted);
  EXPECT_EQ(q.admit(make_pending("b", 2)).admission, Admission::kAccepted);
  const auto v = q.admit(make_pending("a", 3));
  // Same contract as the pre-QoS RequestQueue: nothing was computed,
  // the client may retry — but it is not a shed (no hint).
  EXPECT_EQ(v.admission, Admission::kQueueFull);
  EXPECT_EQ(v.retry_after_us, 0u);
  EXPECT_EQ(q.depth(), 2u);
  q.shutdown();
}

TEST(QosFairQueueTest, LaneBoundAndRateLimitShedWithHints) {
  qos::QosConfig config;
  config.enabled = true;
  qos::TenantConfig bounded;
  bounded.name = "bounded";
  bounded.queue_limit = 1;
  qos::TenantConfig limited;
  limited.name = "limited";
  limited.rate_rps = 1000.0;
  limited.burst = 1.0;
  config.tenants = {bounded, limited};
  qos::FairQueue q(config, 64);

  // Per-lane FIFO bound: the lane is full, the global queue is not.
  ASSERT_EQ(q.admit(make_pending("bounded", 1)).admission,
            Admission::kAccepted);
  const auto lane_shed = q.admit(make_pending("bounded", 2));
  EXPECT_EQ(lane_shed.admission, Admission::kShed);
  EXPECT_GT(lane_shed.retry_after_us, 0u);

  // Token bucket: burst 1 admits once, then sheds with the refill hint.
  ASSERT_EQ(q.admit(make_pending("limited", 10)).admission,
            Admission::kAccepted);
  const auto rate_shed = q.admit(make_pending("limited", 10));
  EXPECT_EQ(rate_shed.admission, Admission::kShed);
  EXPECT_GE(rate_shed.retry_after_us, 999u);
  EXPECT_LE(rate_shed.retry_after_us, 1001u);

  const auto stats = q.tenant_stats();
  ASSERT_EQ(stats.size(), 3u);  // default + 2
  EXPECT_EQ(stats[0].name, "default");
  EXPECT_EQ(stats[1].name, "bounded");
  EXPECT_EQ(stats[1].admitted, 1u);
  EXPECT_EQ(stats[1].shed_rate, 1u);
  EXPECT_EQ(stats[2].name, "limited");
  EXPECT_EQ(stats[2].shed_rate, 1u);
  q.shutdown();
}

TEST(QosFairQueueTest, DeadlineClassStampsDeadlineAtAdmission) {
  qos::QosConfig config;
  config.enabled = true;
  qos::TenantConfig t;
  t.name = "slo";
  t.deadline_ms = 5;
  config.tenants = {t};
  qos::FairQueue q(config, 8);
  ASSERT_EQ(q.admit(make_pending("slo", 1'000)).admission,
            Admission::kAccepted);
  // Unknown tenant -> default lane, which has no deadline class.
  ASSERT_EQ(q.admit(make_pending("who", 2'000)).admission,
            Admission::kAccepted);

  std::vector<Pending> out;
  ASSERT_EQ(q.pop_batch(out, 8), 2u);
  for (const Pending& p : out) {
    if (p.request.tenant == "slo")
      EXPECT_EQ(p.deadline_ns, 1'000u + 5'000'000u);
    else
      EXPECT_EQ(p.deadline_ns, 0u);
  }
  q.shutdown();
}

TEST(QosFairQueueTest, ShutdownRefusesAdmissionAndDrainReturnsBacklog) {
  qos::FairQueue q(two_tenant_config(), 8);
  ASSERT_EQ(q.admit(make_pending("a", 1)).admission, Admission::kAccepted);
  ASSERT_EQ(q.admit(make_pending("b", 2)).admission, Admission::kAccepted);
  q.shutdown();
  EXPECT_EQ(q.admit(make_pending("a", 3)).admission, Admission::kShutdown);
  std::vector<Pending> out;
  EXPECT_EQ(q.drain(out), 2u);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(q.depth(), 0u);
}

service::Trace qos_trace() {
  service::TraceParams tp;
  tp.seed = 23;
  tp.requests = 6;
  tp.instance_pool = 2;
  tp.n = 24;
  tp.m = 18;
  tp.k = 2;
  return service::generate_trace(tp);
}

TEST(QosEngineTest, ShedVerdictCarriesHintAndAcceptedBytesStayPure) {
  const service::Trace trace = qos_trace();

  // Reference bytes from a qos-off engine (no tenant field at all).
  service::ServiceEngine ref{service::EngineConfig{}};
  ref.start();
  auto ref_sub = ref.submit(trace.requests[0]);
  ASSERT_EQ(ref_sub.admission, Admission::kAccepted);
  const std::string ref_bytes = ref_sub.response.get().result;
  EXPECT_FALSE(ref.stats().qos_enabled);
  EXPECT_TRUE(ref.stats().qos_tenants.empty());

  service::EngineConfig cfg;
  cfg.qos.enabled = true;
  qos::TenantConfig t;
  t.name = "t";
  t.rate_rps = 1.0;  // one token per second: the 2nd submit must shed
  t.burst = 1.0;
  cfg.qos.tenants = {t};
  service::ServiceEngine engine(cfg);
  engine.start();

  service::Request probe = trace.requests[0];
  probe.tenant = "t";
  auto first = engine.submit(probe);
  ASSERT_EQ(first.admission, Admission::kAccepted);
  EXPECT_EQ(first.response.get().result, ref_bytes);

  auto second = engine.submit(probe);
  EXPECT_EQ(second.admission, Admission::kShed);
  EXPECT_GT(second.retry_after_us, 0u);

  const auto stats = engine.stats();
  EXPECT_TRUE(stats.qos_enabled);
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.shed_deadline, 0u);
  ASSERT_EQ(stats.qos_tenants.size(), 2u);
  EXPECT_EQ(stats.qos_tenants[1].name, "t");
  EXPECT_EQ(stats.qos_tenants[1].admitted, 1u);
  EXPECT_EQ(stats.qos_tenants[1].shed_rate, 1u);
  engine.stop();
}

TEST(QosEngineTest, PastDeadlineRequestIsShedAtDispatchNotServed) {
  const service::Trace trace = qos_trace();
  service::EngineConfig cfg;
  cfg.qos.enabled = true;
  qos::TenantConfig t;
  t.name = "slo";
  t.deadline_ms = 1;
  cfg.qos.tenants = {t};
  service::ServiceEngine engine(cfg);  // not started: the request parks

  service::Request probe = trace.requests[0];
  probe.tenant = "slo";
  auto sub = engine.submit(probe);
  ASSERT_EQ(sub.admission, Admission::kAccepted);
  // Let the 1ms deadline class expire while the request is queued, then
  // start the dispatcher: it must answer with a shed, not burn solver
  // time on an answer nobody is waiting for.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  engine.start();
  const service::Response resp = sub.response.get();
  EXPECT_EQ(resp.status, service::Response::Status::kRejected);
  EXPECT_EQ(resp.reason, "shed");
  EXPECT_EQ(resp.retry_after_us, 1000u);  // deadline_ms as the hint

  const auto stats = engine.stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.shed_deadline, 1u);
  EXPECT_EQ(stats.served, 0u);
  ASSERT_EQ(stats.qos_tenants.size(), 2u);
  EXPECT_EQ(stats.qos_tenants[1].shed_deadline, 1u);
  engine.stop();
}

TEST(QosEngineTest, StatsJsonCarriesTheQosBlock) {
  service::EngineConfig cfg;
  cfg.queue_capacity = 99;
  cfg.qos.enabled = true;
  qos::TenantConfig t;
  t.name = "gold";
  t.weight = 4;
  cfg.qos.tenants = {t};
  service::ServiceEngine engine(cfg);

  const json::Value doc = json::parse(service::stats_json(engine.stats()));
  EXPECT_EQ(doc.at("queue_capacity").as_number(), 99.0);
  const json::Value& qos = doc.at("qos");
  EXPECT_EQ(qos.at("enabled").as_number(), 1.0);
  const auto& tenants = qos.at("tenants").as_array();
  ASSERT_EQ(tenants.size(), 2u);
  EXPECT_EQ(tenants[0].at("name").as_string(), "default");
  EXPECT_EQ(tenants[1].at("name").as_string(), "gold");
  EXPECT_EQ(tenants[1].at("weight").as_number(), 4.0);

  // QoS off: the block stays present (scrapers need a stable shape) but
  // reports disabled with no tenant lanes.
  service::ServiceEngine off{service::EngineConfig{}};
  const json::Value off_doc = json::parse(service::stats_json(off.stats()));
  EXPECT_EQ(off_doc.at("qos").at("enabled").as_number(), 0.0);
  EXPECT_TRUE(off_doc.at("qos").at("tenants").as_array().empty());
}

TEST(QosNetTest, ShedBecomesTypedNackWithBackoffHint) {
  // End to end over loopback: a rate-limited tenant's second frame is
  // answered NACK(kShedRetryAfter) carrying the deterministic hint, the
  // first is served normally, and the server tallies the shed.
  const service::Trace trace = qos_trace();
  service::EngineConfig cfg;
  cfg.qos.enabled = true;
  qos::TenantConfig t;
  t.name = "t";
  t.rate_rps = 1.0;
  t.burst = 1.0;
  cfg.qos.tenants = {t};
  service::ServiceEngine engine(cfg);
  engine.start();
  net::Server server(engine, {});
  server.start();
  net::Client::Config cc;
  cc.port = server.port();
  net::Client client(cc);
  client.connect();

  service::Request req = trace.requests[0];
  req.tenant = "t";
  // Pipeline both sends before waiting, so the second reaches admission
  // well inside the 1s refill window.
  const std::uint64_t first_id = client.send(req);
  const std::uint64_t second_id = client.send(req);

  const net::Client::Result first = client.wait(first_id);
  ASSERT_EQ(first.outcome, net::Client::Outcome::kOk) << first.error;
  const net::Client::Result second = client.wait(second_id);
  ASSERT_EQ(second.outcome, net::Client::Outcome::kNack) << second.error;
  EXPECT_EQ(second.nack_code, net::wire::NackCode::kShedRetryAfter);
  EXPECT_GT(second.retry_after_us, 0u);

  EXPECT_EQ(server.stats().nacks_shed, 1u);
  EXPECT_EQ(server.stats().nacks_queue_full, 0u);

  // An untagged sender on the same socket lands in the default tenant
  // and is served — the abusive lane's limit never bleeds across.
  const net::Client::Result untagged = client.call(trace.requests[1]);
  EXPECT_EQ(untagged.outcome, net::Client::Outcome::kOk) << untagged.error;

  server.stop();
  engine.stop();
}

}  // namespace
}  // namespace pslocal
