#include "cover/dominating_set.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace pslocal {
namespace {

TEST(DominatingSetVerifierTest, Basics) {
  const Graph g = path(5);
  EXPECT_TRUE(is_dominating_set(g, {1, 3}));
  EXPECT_FALSE(is_dominating_set(g, {0, 1}));  // vertices 3, 4 uncovered
  EXPECT_TRUE(is_dominating_set(g, {0, 2, 4}));
  EXPECT_FALSE(is_dominating_set(g, {7}));  // out of range
  EXPECT_TRUE(is_dominating_set(Graph{}, {}));
}

TEST(GreedyDominatingSetTest, KnownOptima) {
  // Star: the center alone dominates.
  GraphBuilder b(8);
  for (VertexId leaf = 1; leaf < 8; ++leaf) b.add_edge(0, leaf);
  EXPECT_EQ(greedy_dominating_set(b.build()).size(), 1u);
  // Path P9: optimum 3 ({1,4,7}); greedy matches.
  EXPECT_EQ(greedy_dominating_set(path(9)).size(), 3u);
  // Complete graph: 1.
  EXPECT_EQ(greedy_dominating_set(complete(10)).size(), 1u);
  // Disjoint triangles: one per triangle.
  EXPECT_EQ(greedy_dominating_set(disjoint_cliques({3, 3, 3})).size(), 3u);
}

TEST(ExactDominatingSetTest, MatchesKnownValues) {
  EXPECT_EQ(exact_dominating_set(path(9)).set.size(), 3u);
  EXPECT_EQ(exact_dominating_set(ring(9)).set.size(), 3u);
  EXPECT_EQ(exact_dominating_set(complete(7)).set.size(), 1u);
  EXPECT_EQ(exact_dominating_set(grid(3, 3)).set.size(), 3u);
  const auto empty = exact_dominating_set(Graph{});
  EXPECT_TRUE(empty.set.empty());
  EXPECT_TRUE(empty.proven_optimal);
}

class DomSetRatioTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DomSetRatioTest, GreedyWithinGuaranteeOnRandomGraphs) {
  Rng rng(GetParam());
  const Graph g = gnp(22, 0.2, rng);
  const auto greedy = greedy_dominating_set(g);
  const auto exact = exact_dominating_set(g);
  ASSERT_TRUE(exact.proven_optimal);
  EXPECT_TRUE(is_dominating_set(g, greedy));
  const double ratio = static_cast<double>(greedy.size()) /
                       static_cast<double>(exact.set.size());
  EXPECT_LE(ratio, dominating_set_guarantee(g) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DomSetRatioTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(DominatingSetTest, GuaranteeIsHarmonic) {
  const Graph g = complete(4);  // Δ+1 = 4
  EXPECT_NEAR(dominating_set_guarantee(g), 1.0 + 0.5 + 1.0 / 3 + 0.25, 1e-12);
}

TEST(ExactDominatingSetTest, BudgetExhaustionStillValid) {
  Rng rng(7);
  const Graph g = gnp(40, 0.1, rng);
  const auto res = exact_dominating_set(g, /*node_budget=*/5);
  EXPECT_TRUE(is_dominating_set(g, res.set));
  EXPECT_FALSE(res.proven_optimal);
}

}  // namespace
}  // namespace pslocal
