// End-to-end determinism of the parallelized library hot paths: for a
// fixed seed, every wired algorithm must produce byte-identical output
// at 1, 2 and 8 threads, and across repeated runs on the same pool
// (scheduling is timing-dependent; results must not be).  This is the
// executable form of the contract in runtime/scheduler.hpp.
#include <gtest/gtest.h>

#include <vector>

#include "coloring/cf_baselines.hpp"
#include "core/conflict_graph.hpp"
#include "hypergraph/generators.hpp"
#include "local/luby_mis.hpp"
#include "mis/greedy_maxis.hpp"
#include "runtime/thread_pool.hpp"

namespace pslocal {
namespace {

Hypergraph planted_instance() {
  PlantedCfParams params;
  params.n = 96;
  params.m = 96;
  params.k = 4;
  params.epsilon = 0.5;
  Rng rng(2024);
  return planted_cf_colorable(params, rng).hypergraph;
}

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kThreadCounts[] = {1, 2, 8};
  Hypergraph h_ = planted_instance();
};

TEST_F(ParallelDeterminismTest, ConflictGraphBitIdenticalAcrossThreads) {
  runtime::ThreadPool ref_pool(1);
  const ConflictGraph ref(h_, 4, ref_pool);
  for (std::size_t threads : kThreadCounts) {
    runtime::ThreadPool pool(threads);
    for (int run = 0; run < 3; ++run) {
      const ConflictGraph cg(h_, 4, pool);
      // Graph operator== compares the raw CSR arrays: vertex order,
      // offsets and neighbor order all byte-identical.
      ASSERT_EQ(cg.graph(), ref.graph())
          << "threads=" << threads << " run=" << run;
    }
  }
}

TEST_F(ParallelDeterminismTest, LubyMisBitIdenticalAcrossThreads) {
  runtime::ThreadPool ref_pool(1);
  const ConflictGraph cg(h_, 4, ref_pool);
  const auto ref = luby_mis(cg.graph(), 7, 0, ref_pool);
  for (std::size_t threads : kThreadCounts) {
    runtime::ThreadPool pool(threads);
    for (int run = 0; run < 3; ++run) {
      const auto luby = luby_mis(cg.graph(), 7, 0, pool);
      ASSERT_EQ(luby.independent_set, ref.independent_set)
          << "threads=" << threads << " run=" << run;
      ASSERT_EQ(luby.rounds, ref.rounds);
      ASSERT_EQ(luby.messages_sent, ref.messages_sent);
      ASSERT_EQ(luby.max_message_bytes, ref.max_message_bytes);
    }
  }
}

TEST_F(ParallelDeterminismTest, GreedyMaxisIdenticalAcrossThreads) {
  runtime::ThreadPool ref_pool(1);
  const ConflictGraph cg(h_, 4, ref_pool);
  const auto ref = greedy_min_degree_maxis(cg.graph(), ref_pool);
  for (std::size_t threads : kThreadCounts) {
    runtime::ThreadPool pool(threads);
    const auto mis = greedy_min_degree_maxis(cg.graph(), pool);
    ASSERT_EQ(mis, ref) << "threads=" << threads;
  }
}

TEST_F(ParallelDeterminismTest, GreedyCfColoringIdenticalAcrossThreads) {
  runtime::ThreadPool ref_pool(1);
  const auto ref = greedy_cf_coloring(h_, ref_pool);
  for (std::size_t threads : kThreadCounts) {
    runtime::ThreadPool pool(threads);
    const auto res = greedy_cf_coloring(h_, pool);
    ASSERT_EQ(res.coloring, ref.coloring) << "threads=" << threads;
    ASSERT_EQ(res.colors_used, ref.colors_used);
  }
}

TEST_F(ParallelDeterminismTest, DifferentSeedsStillDiffer) {
  // Guard against a "deterministic because constant" bug: the parallel
  // Luby must still respond to the seed.
  runtime::ThreadPool pool(4);
  const ConflictGraph cg(h_, 4, pool);
  const auto a = luby_mis(cg.graph(), 1, 0, pool);
  const auto b = luby_mis(cg.graph(), 2, 0, pool);
  // Both are valid MIS of the same graph; for different seeds the round
  // trajectories should differ (extremely unlikely to coincide).
  EXPECT_TRUE(a.independent_set != b.independent_set ||
              a.messages_sent != b.messages_sent);
}

}  // namespace
}  // namespace pslocal
