#include "util/stats.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace pslocal {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.variance(), 0.0);
}

TEST(Accumulator, KnownMoments) {
  Accumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_DOUBLE_EQ(a.sum(), 40.0);
}

TEST(Accumulator, MergeMatchesSequential) {
  Accumulator whole, left, right;
  for (int i = 0; i < 100; ++i) {
    const double x = i * 0.37 - 5;
    whole.add(x);
    (i < 40 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a, empty;
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 2.5);
  EXPECT_DOUBLE_EQ(percentile({42.0}, 73), 42.0);
}

TEST(Percentile, EmptyViolatesContract) {
  EXPECT_THROW(percentile({}, 50), ContractViolation);
}

TEST(HistogramTest, CountsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);   // clamps into bucket 0
  h.add(0.5);
  h.add(9.99);
  h.add(100.0);  // clamps into last bucket
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(4), 10.0);
  EXPECT_FALSE(h.render().empty());
}

TEST(LinearFitTest, ExactLine) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{3, 5, 7, 9, 11};  // y = 1 + 2x
  const auto fit = linear_fit(x, y);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-9);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(LinearFitTest, SizeMismatchViolatesContract) {
  EXPECT_THROW(linear_fit({1, 2}, {1}), ContractViolation);
  EXPECT_THROW(linear_fit({1}, {1}), ContractViolation);
}

}  // namespace
}  // namespace pslocal
