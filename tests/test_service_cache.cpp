// service/cache: LRU behavior, hit/miss determinism, byte-exact hits,
// and thread safety of both cache layers.
#include "service/cache.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/conflict_graph.hpp"
#include "hypergraph/hypergraph.hpp"

namespace pslocal::service {
namespace {

TEST(ServiceCacheTest, MissThenHitReturnsExactBytes) {
  SolverCache cache;
  EXPECT_FALSE(cache.lookup(7).has_value());
  const std::string payload = "{\"x\":1,\"blob\":\"\\u0001bytes\"}";
  cache.insert(7, payload);
  const auto hit = cache.lookup(7);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, payload);  // byte-for-byte
  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.bytes, payload.size());
}

TEST(ServiceCacheTest, LruEvictsOldestAndRefreshesOnHit) {
  SolverCache::Config cfg;
  cfg.max_entries = 2;
  SolverCache cache(cfg);
  cache.insert(1, "a");
  cache.insert(2, "bb");
  EXPECT_TRUE(cache.lookup(1).has_value());  // 1 now most recent
  cache.insert(3, "ccc");                    // evicts 2, not 1
  EXPECT_FALSE(cache.lookup(2).has_value());
  EXPECT_TRUE(cache.lookup(1).has_value());
  EXPECT_TRUE(cache.lookup(3).has_value());
  const auto s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.bytes, 4u);  // "a" + "ccc"
}

TEST(ServiceCacheTest, DisabledCacheNeverHits) {
  SolverCache::Config cfg;
  cfg.enabled = false;
  SolverCache cache(cfg);
  cache.insert(1, "a");
  EXPECT_FALSE(cache.lookup(1).has_value());
  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.entries, 0u);
}

TEST(ServiceCacheTest, DuplicateInsertIsIdempotent) {
  SolverCache cache;
  cache.insert(1, "payload");
  cache.insert(1, "payload");
  const auto s = cache.stats();
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.bytes, 7u);
}

TEST(ServiceCacheTest, HitMissTotalsDeterministicForFixedSequence) {
  // Same lookup/insert schedule -> same stats, run twice.
  const auto run = [] {
    SolverCache::Config cfg;
    cfg.max_entries = 4;
    SolverCache cache(cfg);
    for (std::uint64_t i = 0; i < 64; ++i) {
      const std::uint64_t key = i % 6;
      if (!cache.lookup(key).has_value())
        cache.insert(key, std::string(key + 1, 'x'));
    }
    return cache.stats();
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.bytes, b.bytes);
}

TEST(ServiceCacheTest, ConcurrentLookupInsertIsSafe) {
  SolverCache::Config cfg;
  cfg.max_entries = 16;  // small, so eviction churns under contention
  SolverCache cache(cfg);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      for (std::uint64_t i = 0; i < 500; ++i) {
        const std::uint64_t key = (i * 7 + static_cast<std::uint64_t>(t)) % 40;
        const auto hit = cache.lookup(key);
        if (hit.has_value()) {
          ASSERT_EQ(hit->size(), key + 1);  // bytes never torn
        } else {
          cache.insert(key, std::string(key + 1, 'p'));
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, 2000u);
  EXPECT_LE(s.entries, 16u);
}

TEST(ServiceCacheTest, GraphCacheSharesBuilds) {
  const Hypergraph h(6, {{0, 1, 2}, {3, 4, 5}});
  ConflictGraphCache cache(8);
  const auto build = [&h] {
    return std::make_shared<const ConflictGraph>(h, 2);
  };
  const auto a = cache.get_or_build(42, build);
  const auto b = cache.get_or_build(42, build);
  EXPECT_EQ(a.get(), b.get());  // same object, one build
  const auto s = cache.stats();
  EXPECT_EQ(s.builds, 1u);
  EXPECT_EQ(s.hits, 1u);
}

TEST(ServiceCacheTest, GraphCacheDisabledAlwaysBuilds) {
  const Hypergraph h(4, {{0, 1}, {2, 3}});
  ConflictGraphCache cache(0);
  const auto build = [&h] {
    return std::make_shared<const ConflictGraph>(h, 2);
  };
  (void)cache.get_or_build(1, build);
  (void)cache.get_or_build(1, build);
  const auto s = cache.stats();
  EXPECT_EQ(s.builds, 2u);
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.entries, 0u);
}

TEST(ServiceCacheTest, GraphCacheConcurrentGetOrBuild) {
  const Hypergraph h(8, {{0, 1, 2}, {2, 3, 4}, {4, 5, 6}, {6, 7, 0}});
  ConflictGraphCache cache(4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        const auto key = static_cast<std::uint64_t>(i % 6);
        const auto g = cache.get_or_build(key, [&h] {
          return std::make_shared<const ConflictGraph>(h, 2);
        });
        ASSERT_NE(g, nullptr);
        ASSERT_EQ(g->triple_count(), 2 * 12u);
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto s = cache.stats();
  EXPECT_EQ(s.hits + s.builds, 200u);
}

}  // namespace
}  // namespace pslocal::service
