// service/queue: bounded admission, FIFO batching pops, shutdown
// semantics, and MPMC safety.
#include "service/queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "service/batcher.hpp"

namespace pslocal::service {
namespace {

Pending make_pending(std::uint64_t id, std::uint64_t key_seed = 0) {
  Pending p;
  p.request.id = id;
  // instance_hash feeds cache_key; vary it to control batch grouping.
  p.request.instance_hash = key_seed == 0 ? 1 : key_seed;
  return p;
}

TEST(ServiceQueueTest, AdmitsUpToCapacityThenRejectsDeterministically) {
  RequestQueue q(3);
  for (std::uint64_t i = 0; i < 3; ++i)
    EXPECT_EQ(q.try_push(make_pending(i)), Admission::kAccepted);
  // Queue full and nothing draining: every further push is rejected.
  for (std::uint64_t i = 3; i < 8; ++i)
    EXPECT_EQ(q.try_push(make_pending(i)), Admission::kQueueFull);
  EXPECT_EQ(q.depth(), 3u);
}

TEST(ServiceQueueTest, PopBatchIsFifoAndBounded) {
  RequestQueue q(8);
  for (std::uint64_t i = 0; i < 5; ++i)
    ASSERT_EQ(q.try_push(make_pending(i)), Admission::kAccepted);
  std::vector<Pending> out;
  EXPECT_EQ(q.pop_batch(out, 3), 3u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].request.id, 0u);
  EXPECT_EQ(out[2].request.id, 2u);
  EXPECT_EQ(q.pop_batch(out, 3), 2u);  // appends the remaining two
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[4].request.id, 4u);
}

TEST(ServiceQueueTest, ShutdownRejectsPushesAndWakesConsumers) {
  RequestQueue q(4);
  ASSERT_EQ(q.try_push(make_pending(0)), Admission::kAccepted);
  std::thread consumer([&q] {
    std::vector<Pending> out;
    // First pop gets the queued item; second observes shutdown-and-empty.
    EXPECT_EQ(q.pop_batch(out, 4), 1u);
    EXPECT_EQ(q.pop_batch(out, 4), 0u);
  });
  q.shutdown();
  consumer.join();
  EXPECT_EQ(q.try_push(make_pending(1)), Admission::kShutdown);
}

TEST(ServiceQueueTest, DrainMovesEverythingWithoutBlocking) {
  RequestQueue q(4);
  for (std::uint64_t i = 0; i < 4; ++i)
    ASSERT_EQ(q.try_push(make_pending(i)), Admission::kAccepted);
  q.shutdown();
  std::vector<Pending> out;
  EXPECT_EQ(q.drain(out), 4u);
  EXPECT_EQ(q.depth(), 0u);
  EXPECT_EQ(q.drain(out), 0u);
}

TEST(ServiceQueueTest, ConcurrentProducersConsumersLoseNothing) {
  RequestQueue q(16);
  constexpr std::uint64_t kPerProducer = 400;
  constexpr int kProducers = 3;
  std::atomic<std::uint64_t> popped{0};
  std::atomic<bool> done{false};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      std::vector<Pending> out;
      while (!done.load() || q.depth() > 0) {
        out.clear();
        const std::size_t got = q.pop_batch(out, 8);
        popped.fetch_add(got);
        if (got == 0) return;  // shutdown and empty
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        Pending pending =
            make_pending(static_cast<std::uint64_t>(p) * kPerProducer + i);
        while (q.try_push(std::move(pending)) != Admission::kAccepted)
          std::this_thread::yield();
      }
    });
  }
  for (auto& t : producers) t.join();
  done.store(true);
  q.shutdown();  // wake blocked consumers once the queue empties
  for (auto& t : consumers) t.join();
  EXPECT_EQ(popped.load(), kPerProducer * kProducers);
}

TEST(ServiceQueueTest, BatcherGroupsByKeyInArrivalOrder) {
  std::vector<Pending> drained;
  // Keys: A B A C B A  -> batches [A:{0,2,5}] [B:{1,4}] [C:{3}]
  drained.push_back(make_pending(0, 100));
  drained.push_back(make_pending(1, 200));
  drained.push_back(make_pending(2, 100));
  drained.push_back(make_pending(3, 300));
  drained.push_back(make_pending(4, 200));
  drained.push_back(make_pending(5, 100));
  const auto batches = form_batches(drained);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].members, (std::vector<std::size_t>{0, 2, 5}));
  EXPECT_EQ(batches[1].members, (std::vector<std::size_t>{1, 4}));
  EXPECT_EQ(batches[2].members, (std::vector<std::size_t>{3}));
  EXPECT_EQ(batches[0].key, cache_key(drained[0].request));
}

TEST(ServiceQueueTest, AdmissionNamesAreStable) {
  EXPECT_STREQ(admission_name(Admission::kAccepted), "accepted");
  EXPECT_STREQ(admission_name(Admission::kQueueFull), "queue_full");
  EXPECT_STREQ(admission_name(Admission::kShutdown), "shutdown");
}

}  // namespace
}  // namespace pslocal::service
