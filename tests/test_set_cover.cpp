#include "cover/set_cover.hpp"

#include <gtest/gtest.h>

#include "cover/dominating_set.hpp"
#include "graph/generators.hpp"
#include "hypergraph/generators.hpp"

namespace pslocal {
namespace {

/// Random hypergraph guaranteed feasible: random s-sets plus singleton
/// patches for any untouched element.
Hypergraph feasible_instance(std::size_t n, std::size_t m, std::size_t s,
                             Rng& rng) {
  auto base = random_uniform_hypergraph(n, m, s, rng);
  std::vector<std::vector<VertexId>> edges;
  for (EdgeId e = 0; e < base.edge_count(); ++e) {
    const auto verts = base.edge(e);
    edges.emplace_back(verts.begin(), verts.end());
  }
  for (VertexId v = 0; v < n; ++v)
    if (base.edges_of(v).empty()) edges.push_back({v});
  return Hypergraph(n, std::move(edges));
}

TEST(SetCoverVerifierTest, Basics) {
  const Hypergraph h(4, {{0, 1}, {2}, {2, 3}, {1, 2}});
  EXPECT_TRUE(is_set_cover(h, {0, 2}));
  EXPECT_FALSE(is_set_cover(h, {0, 1}));   // 3 uncovered
  EXPECT_FALSE(is_set_cover(h, {9}));      // bad id
  EXPECT_TRUE(set_cover_feasible(h));
  const Hypergraph gap(3, {{0, 1}});
  EXPECT_FALSE(set_cover_feasible(gap));   // element 2 in no set
}

TEST(GreedySetCoverTest, KnownOptimum) {
  // Partition instance: optimum = 3 disjoint sets; greedy finds them.
  const Hypergraph h(9, {{0, 1, 2}, {3, 4, 5}, {6, 7, 8}, {0, 3, 6}});
  EXPECT_EQ(greedy_set_cover(h).size(), 3u);
  EXPECT_EQ(exact_set_cover(h).cover.size(), 3u);
}

TEST(GreedySetCoverTest, ClassicLowerBoundInstance) {
  // The standard greedy-trap family: elements 0..5, big sets {0,1,2} and
  // {3,4,5} (optimum 2), plus a tempting set {2,3,4} of equal size that
  // greedy may take first with smallest-id tie-breaking... verify greedy
  // stays within the H(rank) guarantee either way.
  const Hypergraph h(6, {{0, 1, 2}, {3, 4, 5}, {2, 3, 4}, {0, 1}, {5}});
  const auto greedy = greedy_set_cover(h);
  const auto exact = exact_set_cover(h);
  ASSERT_TRUE(exact.proven_optimal);
  EXPECT_EQ(exact.cover.size(), 2u);
  EXPECT_LE(static_cast<double>(greedy.size()),
            set_cover_guarantee(h) * static_cast<double>(exact.cover.size()));
}

class SetCoverRatioTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SetCoverRatioTest, GreedyWithinGuarantee) {
  Rng rng(GetParam());
  const auto h = feasible_instance(20, 10, 4, rng);
  const auto greedy = greedy_set_cover(h);
  const auto exact = exact_set_cover(h);
  ASSERT_TRUE(exact.proven_optimal);
  EXPECT_TRUE(is_set_cover(h, greedy));
  EXPECT_LE(static_cast<double>(greedy.size()),
            set_cover_guarantee(h) * static_cast<double>(exact.cover.size()) +
                1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SetCoverRatioTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(SetCoverTest, DominatingSetIsTheNeighborhoodSpecialCase) {
  Rng rng(7);
  const Graph g = gnp(18, 0.25, rng);
  const auto h = closed_neighborhood_hypergraph(g);
  ASSERT_TRUE(set_cover_feasible(h));  // every N[v] contains v
  const auto cover = exact_set_cover(h);
  const auto domset = exact_dominating_set(g);
  ASSERT_TRUE(cover.proven_optimal);
  ASSERT_TRUE(domset.proven_optimal);
  // Set e of the neighborhood hypergraph is N[e]: the two optima agree.
  EXPECT_EQ(cover.cover.size(), domset.set.size());
}

TEST(SetCoverTest, InfeasibleViolatesContract) {
  const Hypergraph gap(3, {{0, 1}});
  EXPECT_THROW(greedy_set_cover(gap), ContractViolation);
  EXPECT_THROW(exact_set_cover(gap), ContractViolation);
}

TEST(SetCoverTest, GuaranteeIsHarmonicInRank) {
  const Hypergraph h(4, {{0, 1, 2, 3}});
  EXPECT_NEAR(set_cover_guarantee(h), 1.0 + 0.5 + 1.0 / 3 + 0.25, 1e-12);
}

}  // namespace
}  // namespace pslocal
