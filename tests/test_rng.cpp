#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace pslocal {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, SplitStreamsAreIndependentOfParentUse) {
  Rng parent(7);
  Rng s1 = parent.split(0);
  // Splitting again with the same stream id from an untouched clone gives
  // the same stream.
  Rng parent2(7);
  Rng s2 = parent2.split(0);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(s1.next_u64(), s2.next_u64());
  // Different stream ids give different streams.
  Rng s3 = parent2.split(1);
  int equal = 0;
  Rng s1b = Rng(7).split(0);
  for (int i = 0; i < 64; ++i)
    if (s1b.next_u64() == s3.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(5);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowZeroViolatesContract) {
  Rng rng(5);
  EXPECT_THROW(rng.next_below(0), ContractViolation);
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit w.h.p.
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBoolExtremes) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, BernoulliFrequencyRoughlyMatches) {
  Rng rng(17);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.next_bool(0.3) ? 1 : 0;
  const double freq = static_cast<double>(hits) / trials;
  EXPECT_NEAR(freq, 0.3, 0.02);
}

TEST(Rng, ExponentialIsPositiveWithRoughMean) {
  Rng rng(19);
  double sum = 0.0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const double x = rng.next_exponential(2.0);
    EXPECT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / trials, 0.5, 0.05);  // mean = 1/rate
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(21);
  for (std::size_t n : {0u, 1u, 2u, 17u, 100u}) {
    auto p = rng.permutation(n);
    ASSERT_EQ(p.size(), n);
    std::sort(p.begin(), p.end());
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(p[i], i);
  }
}

TEST(Rng, PermutationIsShuffled) {
  Rng rng(23);
  const auto p = rng.permutation(200);
  std::size_t fixed = 0;
  for (std::size_t i = 0; i < p.size(); ++i)
    if (p[i] == i) ++fixed;
  EXPECT_LT(fixed, 20u);  // identity would be 200
}

class SampleWithoutReplacementTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(SampleWithoutReplacementTest, DistinctAndInRange) {
  const auto [n, k] = GetParam();
  Rng rng(31 + n * 1000 + k);
  const auto sample = rng.sample_without_replacement(n, k);
  ASSERT_EQ(sample.size(), k);
  std::set<std::size_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), k);
  for (auto v : sample) EXPECT_LT(v, n);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SampleWithoutReplacementTest,
    ::testing::Values(std::pair<std::size_t, std::size_t>{10, 0},
                      std::pair<std::size_t, std::size_t>{10, 1},
                      std::pair<std::size_t, std::size_t>{10, 3},
                      std::pair<std::size_t, std::size_t>{10, 10},
                      std::pair<std::size_t, std::size_t>{1000, 5},
                      std::pair<std::size_t, std::size_t>{1000, 999},
                      std::pair<std::size_t, std::size_t>{64, 64}));

TEST(Rng, SampleLargerThanPopulationViolatesContract) {
  Rng rng(1);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), ContractViolation);
}

TEST(Rng, ForkIsDeterministic) {
  Rng parent(7);
  Rng a = parent.fork(42);
  Rng b = Rng(7).fork(42);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ForkDoesNotAdvanceParent) {
  Rng parent(7), untouched(7);
  (void)parent.fork(0);
  (void)parent.fork(1);
  for (int i = 0; i < 32; ++i)
    EXPECT_EQ(parent.next_u64(), untouched.next_u64());
}

TEST(Rng, ForkStreamsDiverge) {
  Rng parent(7);
  Rng a = parent.fork(0);
  Rng b = parent.fork(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

// Statistical non-correlation smoke test: the Pearson correlation of
// sibling fork() streams (and of a stream against its parent) over 4096
// paired doubles must be tiny.  For iid uniforms the sample correlation
// has sd ~ 1/sqrt(4096) ~ 0.016, so |r| < 0.1 is a > 6-sigma bound —
// loose enough to never flake, tight enough to catch a shared or lagged
// state bug immediately.
TEST(Rng, ForkStreamsAreUncorrelated) {
  const int kSamples = 4096;
  auto pearson = [&](Rng x, Rng y) {
    double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
    for (int i = 0; i < kSamples; ++i) {
      const double a = x.next_double();
      const double b = y.next_double();
      sx += a;
      sy += b;
      sxx += a * a;
      syy += b * b;
      sxy += a * b;
    }
    const double n = kSamples;
    const double cov = sxy - sx * sy / n;
    const double vx = sxx - sx * sx / n;
    const double vy = syy - sy * sy / n;
    return cov / std::sqrt(vx * vy);
  };
  Rng parent(101);
  EXPECT_LT(std::abs(pearson(parent.fork(0), parent.fork(1))), 0.1);
  EXPECT_LT(std::abs(pearson(parent.fork(0), parent.fork(12345))), 0.1);
  EXPECT_LT(std::abs(pearson(parent, parent.fork(0))), 0.1);
  // Adjacent stream ids — the case a weak mixer would fail first.
  EXPECT_LT(std::abs(pearson(parent.fork(7), parent.fork(8))), 0.1);
}

TEST(Rng, ShuffleKeepsMultiset) {
  Rng rng(37);
  std::vector<int> v{1, 1, 2, 3, 5, 8, 13};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

}  // namespace
}  // namespace pslocal
