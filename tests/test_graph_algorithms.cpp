#include "graph/algorithms.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "graph/generators.hpp"

namespace pslocal {
namespace {

TEST(BfsTest, DistancesOnPath) {
  const Graph g = path(5);
  const auto dist = bfs_distances(g, 0);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(dist[i], i);
}

TEST(BfsTest, MaxDistCutsOff) {
  const Graph g = path(6);
  const auto dist = bfs_distances(g, 0, 2);
  EXPECT_EQ(dist[2], 2u);
  EXPECT_EQ(dist[3], kUnreachable);
}

TEST(BfsTest, MultiSourceTakesNearest) {
  const Graph g = path(7);
  const auto dist = bfs_distances_multi(g, {0, 6});
  EXPECT_EQ(dist[3], 3u);
  EXPECT_EQ(dist[5], 1u);
  EXPECT_EQ(dist[0], 0u);
}

TEST(BfsTest, UnreachableInDisconnectedGraph) {
  const Graph g = Graph::from_edges(4, {{0, 1}});
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kUnreachable);
}

TEST(BallTest, RingBallSizes) {
  const Graph g = ring(10);
  EXPECT_EQ(ball(g, 0, 0).size(), 1u);
  EXPECT_EQ(ball(g, 0, 1).size(), 3u);
  EXPECT_EQ(ball(g, 0, 2).size(), 5u);
  EXPECT_EQ(ball(g, 0, 5).size(), 10u);   // wraps fully
  EXPECT_EQ(ball(g, 0, 99).size(), 10u);  // saturates
  EXPECT_EQ(ball(g, 0, 1).front(), 0u);   // center first
}

TEST(InducedSubgraphTest, MapsAndEdges) {
  const Graph g = ring(6);
  const auto sub = induced_subgraph(g, {0, 1, 2, 4});
  EXPECT_EQ(sub.graph.vertex_count(), 4u);
  EXPECT_EQ(sub.graph.edge_count(), 2u);  // 0-1, 1-2 survive; 4 isolated
  EXPECT_TRUE(sub.graph.has_edge(sub.to_local[0], sub.to_local[1]));
  EXPECT_TRUE(sub.graph.has_edge(sub.to_local[1], sub.to_local[2]));
  EXPECT_EQ(sub.to_local[3], InducedSubgraph::kNoVertex);
  for (std::size_t i = 0; i < sub.to_original.size(); ++i)
    EXPECT_EQ(sub.to_local[sub.to_original[i]], i);
}

TEST(InducedSubgraphTest, DuplicateSelectionViolatesContract) {
  const Graph g = ring(4);
  EXPECT_THROW(induced_subgraph(g, {0, 0}), ContractViolation);
}

TEST(ComponentsTest, CountsComponents) {
  GraphBuilder b(7);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 4);
  const Graph g = b.build();
  const auto comp = connected_components(g);
  EXPECT_EQ(comp.count, 4u);  // {0,1,2}, {3,4}, {5}, {6}
  EXPECT_EQ(comp.component_of[0], comp.component_of[2]);
  EXPECT_NE(comp.component_of[0], comp.component_of[3]);
}

TEST(DiameterTest, KnownValues) {
  EXPECT_EQ(diameter(path(5)), 4u);
  EXPECT_EQ(diameter(ring(8)), 4u);
  EXPECT_EQ(diameter(complete(5)), 1u);
  EXPECT_EQ(diameter(Graph::from_edges(3, {{0, 1}})), kUnreachable);
}

TEST(DegeneracyTest, KnownDegeneracies) {
  EXPECT_EQ(degeneracy_order(complete(6)).degeneracy, 5u);
  EXPECT_EQ(degeneracy_order(ring(10)).degeneracy, 2u);
  Rng rng(3);
  EXPECT_EQ(degeneracy_order(random_tree(50, rng)).degeneracy, 1u);
  EXPECT_EQ(degeneracy_order(grid(5, 5)).degeneracy, 2u);
}

TEST(DegeneracyTest, OrderIsPermutation) {
  Rng rng(5);
  const Graph g = gnp(60, 0.1, rng);
  const auto res = degeneracy_order(g);
  EXPECT_TRUE(is_vertex_permutation(g, res.order));
}

TEST(GreedyColoringTest, ProperAndBounded) {
  Rng rng(7);
  const Graph g = gnp(80, 0.15, rng);
  std::vector<VertexId> order(g.vertex_count());
  std::iota(order.begin(), order.end(), VertexId{0});
  const auto color = greedy_coloring(g, order);
  for (auto [u, v] : g.edges()) EXPECT_NE(color[u], color[v]);
  for (VertexId v = 0; v < g.vertex_count(); ++v)
    EXPECT_LE(color[v], g.max_degree());
}

TEST(GreedyColoringTest, ReverseDegeneracyUsesFewColors) {
  Rng rng(9);
  const Graph g = random_tree(100, rng);
  auto res = degeneracy_order(g);
  std::reverse(res.order.begin(), res.order.end());
  const auto color = greedy_coloring(g, res.order);
  // Trees have degeneracy 1 -> 2 colors along reverse degeneracy order.
  for (VertexId v = 0; v < g.vertex_count(); ++v) EXPECT_LE(color[v], 1u);
}

TEST(CliqueCoverTest, ClassesAreCliques) {
  Rng rng(11);
  const Graph g = gnp(50, 0.3, rng);
  const auto cover = greedy_clique_cover(g);
  ASSERT_EQ(cover.clique_of.size(), g.vertex_count());
  for (VertexId u = 0; u < g.vertex_count(); ++u) {
    EXPECT_LT(cover.clique_of[u], cover.count);
    for (VertexId v = u + 1; v < g.vertex_count(); ++v) {
      if (cover.clique_of[u] == cover.clique_of[v]) {
        EXPECT_TRUE(g.has_edge(u, v));
      }
    }
  }
}

TEST(CliqueCoverTest, CompleteGraphIsOneClique) {
  const auto cover = greedy_clique_cover(complete(8));
  EXPECT_EQ(cover.count, 1u);
}

TEST(CliqueCoverTest, EdgelessGraphIsAllSingletons) {
  const auto cover = greedy_clique_cover(Graph::from_edges(5, {}));
  EXPECT_EQ(cover.count, 5u);
}

TEST(PowerGraphTest, PathPowers) {
  const Graph g = path(6);
  const Graph g2 = power_graph(g, 2);
  EXPECT_TRUE(g2.has_edge(0, 1));
  EXPECT_TRUE(g2.has_edge(0, 2));
  EXPECT_FALSE(g2.has_edge(0, 3));
  const Graph g1 = power_graph(g, 1);
  EXPECT_EQ(g1, g);
  const Graph g5 = power_graph(g, 5);
  EXPECT_EQ(g5.edge_count(), 15u);  // complete on 6 vertices
}

TEST(PermutationCheckTest, DetectsBadOrders) {
  const Graph g = ring(4);
  EXPECT_TRUE(is_vertex_permutation(g, {3, 1, 0, 2}));
  EXPECT_FALSE(is_vertex_permutation(g, {0, 1, 2}));      // too short
  EXPECT_FALSE(is_vertex_permutation(g, {0, 1, 2, 2}));   // repeat
  EXPECT_FALSE(is_vertex_permutation(g, {0, 1, 2, 4}));   // out of range
}

}  // namespace
}  // namespace pslocal
