// End-to-end smoke test: a planted instance through the full reduction.
#include <gtest/gtest.h>

#include "core/reduction.hpp"
#include "hypergraph/generators.hpp"
#include "mis/greedy_maxis.hpp"

namespace pslocal {
namespace {

TEST(Smoke, ReductionSolvesPlantedInstance) {
  Rng rng(42);
  PlantedCfParams params;
  params.n = 40;
  params.m = 30;
  params.k = 3;
  auto inst = planted_cf_colorable(params, rng);
  ASSERT_TRUE(is_conflict_free(inst.hypergraph,
                               CfColoring(inst.planted_coloring)));

  GreedyMinDegreeOracle oracle;
  ReductionOptions opts;
  opts.k = params.k;
  const auto result = cf_multicoloring_via_maxis(inst.hypergraph, oracle, opts);
  EXPECT_TRUE(result.success);
  EXPECT_TRUE(is_conflict_free(inst.hypergraph, result.coloring));
  EXPECT_GE(result.phases, 1u);
}

}  // namespace
}  // namespace pslocal
