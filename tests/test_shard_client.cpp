// shard/shard_client + shard/cluster: routed calls over real loopback
// sockets — fan-out duplicate suppression, typed failover around a
// killed replica, and the headline determinism pin: response bytes are
// identical whatever the shard count or replication factor.
#include "shard/shard_client.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "service/workload.hpp"
#include "shard/cluster.hpp"

namespace pslocal::shard {
namespace {

service::Trace small_trace(std::size_t requests = 16) {
  service::TraceParams tp;
  tp.seed = 1;
  tp.requests = requests;
  tp.instance_pool = 4;
  tp.n = 24;
  tp.m = 16;
  tp.k = 3;
  return service::generate_trace(tp);
}

struct PassResult {
  std::vector<std::string> payloads;  // response bytes, in trace order
  ShardClient::Stats stats;
  std::vector<std::uint64_t> routed;
};

/// Run the trace through a fresh cluster; every call must succeed.
/// kill_shard (if < shards) is stopped after the first quarter.
PassResult run_pass(std::size_t shards, std::size_t replication,
                    const service::Trace& trace,
                    std::size_t kill_shard = SIZE_MAX) {
  LocalClusterConfig cc;
  cc.shards = shards;
  cc.replication = replication;
  cc.engine.cache.max_entries = 64;
  LocalCluster cluster(cc);
  cluster.start();

  ShardClientConfig scc;
  scc.topology = cluster.topology();
  scc.retry.seed = 1;
  scc.retry.base_delay_us = 100;
  scc.retry.max_delay_us = 5000;
  scc.retry.max_attempts = 16;
  ShardClient client(scc);
  client.connect();

  PassResult out;
  const std::size_t kill_at = trace.requests.size() / 4;
  for (std::size_t i = 0; i < trace.requests.size(); ++i) {
    if (kill_shard < shards && i == kill_at) cluster.kill_shard(kill_shard);
    const net::Client::Result r = client.call(trace.requests[i]);
    EXPECT_EQ(r.outcome, net::Client::Outcome::kOk)
        << "request " << i << ": " << r.error;
    if (r.outcome != net::Client::Outcome::kOk) break;
    EXPECT_FALSE(r.response.result.empty()) << "request " << i;
    out.payloads.push_back(r.response.result);
  }
  client.drain();
  out.stats = client.stats();
  out.routed = client.routed_per_shard();
  cluster.stop();
  return out;
}

TEST(ShardClientTest, ServesEveryRequestAcrossTwoShards) {
  const service::Trace trace = small_trace();
  const PassResult r = run_pass(/*shards=*/2, /*replication=*/1, trace);
  ASSERT_EQ(r.payloads.size(), trace.requests.size());
  EXPECT_EQ(r.stats.calls, trace.requests.size());
  EXPECT_EQ(r.stats.fanout_sends, 0u) << "rf=1 must not fan out";
  EXPECT_EQ(r.stats.failovers, 0u);
  EXPECT_EQ(r.stats.pending_duplicates, 0u);
  // Both shards actually served traffic.
  ASSERT_EQ(r.routed.size(), 2u);
  std::uint64_t total = 0;
  for (const auto n : r.routed) {
    EXPECT_GT(n, 0u) << "a shard received nothing";
    total += n;
  }
  EXPECT_EQ(total, r.stats.sends);
}

TEST(ShardClientTest, ResponseBytesIdenticalAcrossShardCounts) {
  // The determinism headline: where a request is served never leaks
  // into the bytes that come back.  1, 2 and 4 shards, same trace,
  // byte-equal payloads position by position.
  const service::Trace trace = small_trace();
  const PassResult one = run_pass(1, 1, trace);
  const PassResult two = run_pass(2, 1, trace);
  const PassResult four = run_pass(4, 1, trace);
  ASSERT_EQ(one.payloads.size(), trace.requests.size());
  EXPECT_EQ(one.payloads, two.payloads);
  EXPECT_EQ(one.payloads, four.payloads);
}

TEST(ShardClientTest, FanOutSuppressesDuplicateResponses) {
  const service::Trace trace = small_trace();
  const PassResult r = run_pass(/*shards=*/2, /*replication=*/2, trace);
  ASSERT_EQ(r.payloads.size(), trace.requests.size());
  // Every call sent to both replicas; each loser's answer was absorbed,
  // either mid-run or by drain() — never left dangling.
  EXPECT_EQ(r.stats.fanout_sends, trace.requests.size());
  EXPECT_EQ(r.stats.duplicates_suppressed, trace.requests.size());
  EXPECT_EQ(r.stats.pending_duplicates, 0u) << "drain() left orphans";

  // And fan-out must not change the response bytes.
  const PassResult rf1 = run_pass(2, 1, trace);
  EXPECT_EQ(r.payloads, rf1.payloads);
}

TEST(ShardClientTest, FailoverSurvivesReplicaDeathMidRun) {
  // Kill shard 1 a quarter of the way in.  With rf=2 every key has a
  // live replica, so zero requests may be lost; the client must record
  // the transport-triggered failovers it performed.
  const service::Trace trace = small_trace(/*requests=*/24);
  const PassResult r =
      run_pass(/*shards=*/2, /*replication=*/2, trace, /*kill_shard=*/1);
  ASSERT_EQ(r.payloads.size(), trace.requests.size());
  EXPECT_EQ(r.stats.pending_duplicates, 0u);

  // Bytes still identical to an undisturbed single-shard run.
  const PassResult calm = run_pass(1, 1, trace);
  EXPECT_EQ(r.payloads, calm.payloads);
}

TEST(ShardClientTest, ConnectToleratesDeadShardsUntilCallNeedsThem) {
  // One shard never starts (cluster kills it before the client
  // connects).  connect() must not throw — rf=2 fan-out and failover
  // route everything to the survivor.
  const service::Trace trace = small_trace();
  LocalClusterConfig cc;
  cc.shards = 2;
  cc.replication = 2;
  cc.engine.cache.max_entries = 64;
  LocalCluster cluster(cc);
  cluster.start();
  cluster.kill_shard(0);

  ShardClientConfig scc;
  scc.topology = cluster.topology();
  scc.retry.seed = 1;
  scc.retry.base_delay_us = 100;
  scc.retry.max_delay_us = 5000;
  ShardClient client(scc);
  client.connect();
  EXPECT_FALSE(client.shard_up(0));
  EXPECT_TRUE(client.shard_up(1));

  for (std::size_t i = 0; i < trace.requests.size(); ++i) {
    const net::Client::Result r = client.call(trace.requests[i]);
    ASSERT_EQ(r.outcome, net::Client::Outcome::kOk)
        << "request " << i << ": " << r.error;
  }
  client.drain();
  EXPECT_EQ(client.stats().pending_duplicates, 0u);
  cluster.stop();
}

}  // namespace
}  // namespace pslocal::shard
