// mutate_hypergraph end-to-end: payload purity (sessions and caches are
// pure accelerations), session resume byte-identity, thread-count
// independence, the kQueueFull mid-script purity pin, and eviction churn
// over tiny caches.
#include <gtest/gtest.h>

#include <vector>

#include "qc/fault.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/thread_pool.hpp"
#include "service/engine.hpp"
#include "service/session.hpp"
#include "service/workload.hpp"
#include "util/hash.hpp"

namespace pslocal::service {
namespace {

std::shared_ptr<const Hypergraph> base_instance() {
  return std::make_shared<const Hypergraph>(
      Hypergraph(8, {{0, 1, 2}, {2, 3}, {3, 4, 5}, {5, 6, 7}, {0, 7}}));
}

Request mutate_request(std::shared_ptr<const Hypergraph> inst,
                       std::vector<Mutation> script,
                       const std::string& solver = "greedy-mindeg",
                       std::uint64_t seed = 1) {
  Request req;
  req.kind = RequestKind::kMutateHypergraph;
  req.instance_hash = hash_hypergraph(*inst);
  req.instance = std::move(inst);
  req.k = 2;
  req.seed = seed;
  req.solver = solver;
  req.script = std::move(script);
  return req;
}

std::vector<Mutation> sample_script() {
  return {Mutation::add_edge({1, 4}), Mutation::remove_edge(0),
          Mutation::add_vertex(), Mutation::remove_vertex(3)};
}

TraceParams mutate_trace_params() {
  TraceParams tp;
  tp.seed = 11;
  tp.requests = 40;
  tp.instance_pool = 3;
  tp.n = 24;
  tp.m = 18;
  tp.k = 2;
  tp.weight_mutate = 30;  // mutation-heavy mix alongside the other kinds
  return tp;
}

std::vector<ReplayEntry> serve_all(const Trace& trace,
                                   const EngineConfig& cfg) {
  ServiceEngine engine(cfg);
  engine.start();
  std::vector<ReplayEntry> entries;
  entries.reserve(trace.requests.size());
  for (const auto& req : trace.requests) {
    auto sub = engine.submit(req);
    EXPECT_EQ(sub.admission, Admission::kAccepted);
    const Response resp = sub.response.get();
    EXPECT_EQ(resp.status, Response::Status::kOk) << resp.reason;
    entries.push_back({resp.id, resp.key, resp.result});
  }
  return entries;
}

TEST(ServiceMutateTest, PayloadMatchesBareExecution) {
  // The engine adds queueing, caching, and sessions around
  // execute_request; none of that may leak into the payload bytes.
  for (const char* solver : {"greedy-mindeg", "luby", "dpll"}) {
    const Request req = mutate_request(base_instance(), sample_script(),
                                       solver);
    runtime::SequentialScheduler seq;
    const std::string bare = execute_request(req, seq);

    ServiceEngine engine{EngineConfig{}};
    engine.start();
    auto sub = engine.submit(req);
    ASSERT_EQ(sub.admission, Admission::kAccepted);
    const Response resp = sub.response.get();
    ASSERT_EQ(resp.status, Response::Status::kOk) << resp.reason;
    EXPECT_EQ(resp.result, bare) << "solver " << solver;
  }
}

TEST(ServiceMutateTest, PayloadsIdenticalAcrossThreadCounts) {
  const Trace trace = generate_trace(mutate_trace_params());
  runtime::ThreadPool seq(1), par(4);
  EngineConfig cfg_seq;
  cfg_seq.scheduler = &seq;
  EngineConfig cfg_par;
  cfg_par.scheduler = &par;
  const auto verdict =
      verify_replay(serve_all(trace, cfg_seq), serve_all(trace, cfg_par));
  EXPECT_TRUE(verdict.identical)
      << verdict.mismatches << " mismatches, first id "
      << verdict.first_mismatch_id;
}

TEST(ServiceMutateTest, SessionResumeReproducesColdBytes) {
  const auto inst = base_instance();
  const auto script = sample_script();
  const Request prefix = mutate_request(
      inst, {script.begin(), script.begin() + 2});
  const Request full = mutate_request(inst, script);

  // Warm engine: serving the prefix stores its end state; the full
  // script must resume from that epoch instead of replaying from the
  // base — and still produce the cold engine's bytes.
  ServiceEngine warm{EngineConfig{}};
  warm.start();
  auto sub_prefix = warm.submit(prefix);
  ASSERT_EQ(sub_prefix.admission, Admission::kAccepted);
  (void)sub_prefix.response.get();
  auto sub_full = warm.submit(full);
  ASSERT_EQ(sub_full.admission, Admission::kAccepted);
  const Response warm_resp = sub_full.response.get();
  ASSERT_EQ(warm_resp.status, Response::Status::kOk) << warm_resp.reason;
  EXPECT_GE(warm.stats().sessions.hits, 1u);
  EXPECT_GE(warm.stats().sessions.entries, 1u);

  ServiceEngine cold{EngineConfig{}};
  cold.start();
  auto sub_cold = cold.submit(full);
  ASSERT_EQ(sub_cold.admission, Admission::kAccepted);
  const Response cold_resp = sub_cold.response.get();
  ASSERT_EQ(cold_resp.status, Response::Status::kOk) << cold_resp.reason;

  EXPECT_EQ(warm_resp.result, cold_resp.result);

  // Sessions off entirely: still the same bytes.
  EngineConfig no_sessions;
  no_sessions.mutation_sessions = 0;
  ServiceEngine bare{no_sessions};
  bare.start();
  auto sub_bare = bare.submit(full);
  ASSERT_EQ(sub_bare.admission, Admission::kAccepted);
  EXPECT_EQ(sub_bare.response.get().result, cold_resp.result);
}

TEST(ServiceMutateTest, QueueFullMidScriptLeavesStateUntouched) {
  // Satellite pin: a kQueueFull NACK in the middle of a stream of
  // mutation scripts happens entirely at admission — graph epochs
  // (session store), both caches, and replay bytes stay untouched.
  const auto inst = base_instance();
  const auto script = sample_script();
  std::vector<Request> stream;
  for (std::size_t len = 1; len <= script.size(); ++len)
    stream.push_back(
        mutate_request(inst, {script.begin(), script.begin() + len}));

  EngineConfig cfg;
  cfg.queue_capacity = 2;
  ServiceEngine engine(cfg);  // un-started: the queue never drains
  std::size_t rejected = 0;
  for (const auto& req : stream)
    if (engine.submit(req).admission == Admission::kQueueFull) ++rejected;
  ASSERT_EQ(rejected, stream.size() - 2);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.served, 0u);
  EXPECT_EQ(stats.cache.hits, 0u);
  EXPECT_EQ(stats.cache.misses, 0u);
  EXPECT_EQ(stats.cache.entries, 0u);
  EXPECT_EQ(stats.sessions.hits, 0u);
  EXPECT_EQ(stats.sessions.misses, 0u);
  EXPECT_EQ(stats.sessions.entries, 0u);
  EXPECT_EQ(stats.graph_cache.builds, 0u);
  engine.stop();

  // Replay bytes after the NACK: a fresh engine serving the full stream
  // matches the bare per-request execution byte for byte.
  runtime::SequentialScheduler seq;
  ServiceEngine fresh{EngineConfig{}};
  fresh.start();
  for (const auto& req : stream) {
    auto sub = fresh.submit(req);
    ASSERT_EQ(sub.admission, Admission::kAccepted);
    const Response resp = sub.response.get();
    ASSERT_EQ(resp.status, Response::Status::kOk) << resp.reason;
    EXPECT_EQ(resp.result, execute_request(req, seq));
  }
}

TEST(ServiceMutateTest, EvictionChurnKeepsBytesIdentical) {
  // Tiny 1..3-entry caches force eviction churn between repair steps;
  // the fault harness differentially compares every payload against the
  // bare reference execution.
  const Trace trace = generate_trace(mutate_trace_params());
  for (std::size_t entries = 1; entries <= 3; ++entries) {
    qc::FaultPlan plan;
    plan.seed = 5 + entries;
    plan.cache_entries = entries;
    plan.graph_cache_entries = 1;
    const qc::FaultReport report = qc::run_fault_plan(plan, trace);
    EXPECT_TRUE(report.ok()) << "cache_entries=" << entries << ": "
                             << report.error << " (" << report.mismatches
                             << " mismatches)";
    EXPECT_TRUE(report.cache_untouched_on_reject);
  }
}

TEST(ServiceMutateTest, SessionStatesShareGraphRows) {
  // Memory pin (ROADMAP dynamic-tier follow-on): session states share
  // the graph structurally instead of deep-copying it.  Copies share
  // every adjacency row; a mutation applied to the copy reallocates only
  // the rows inside the edit's ball, and never writes through to rows
  // the original still points at.
  const auto inst = base_instance();
  DynamicConflictGraph base(*inst, 2);
  const std::uint64_t base_hash = base.graph_hash();

  // MutationState copy (what a partial-prefix resume makes): every row
  // of the copied graph aliases the stored one's storage.
  const MutationState stored{DynamicConflictGraph(base), {}, 7, {}};
  MutationState resumed = stored;
  EXPECT_EQ(resumed.graph.shared_rows_with(stored.graph),
            stored.graph.triple_count());

  // Divergent suffix on the copy: rows outside the mutation's dirty ball
  // stay shared, dirty/fresh rows get fresh storage (COW — the original
  // graph's bytes are untouched).
  const auto delta = resumed.graph.apply(Mutation::add_edge({1, 4}));
  const std::size_t shared = resumed.graph.shared_rows_with(stored.graph);
  EXPECT_GE(shared + delta.dirty.size(), base.triple_count());
  EXPECT_LT(shared, resumed.graph.triple_count());  // something did change
  EXPECT_GT(shared, 0u);                            // ...but not everything
  EXPECT_EQ(stored.graph.graph_hash(), base_hash);

  // Removal path (non-identity remap): rows whose neighbor ids survive
  // unrenumbered keep sharing too.
  MutationState removed = stored;
  (void)removed.graph.apply(Mutation::remove_edge(4));
  EXPECT_GT(removed.graph.shared_rows_with(stored.graph), 0u);
  EXPECT_EQ(stored.graph.graph_hash(), base_hash);
}

TEST(ServiceMutateTest, SessionStoreLruEvictsAndDisables) {
  MutationSessionStore store(2);
  const Hypergraph h(4, {{0, 1}, {2, 3}});
  const auto state = std::make_shared<const MutationState>(
      MutationState{DynamicConflictGraph(h, 2), {}, 7, {}});
  store.store(1, state);
  store.store(2, state);
  ASSERT_TRUE(store.lookup(1) != nullptr);  // 1 is now most recent
  store.store(3, state);                    // evicts 2
  EXPECT_EQ(store.lookup(2), nullptr);
  EXPECT_TRUE(store.lookup(1) != nullptr);
  EXPECT_TRUE(store.lookup(3) != nullptr);
  const auto stats = store.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);

  MutationSessionStore off(0);
  off.store(1, state);
  EXPECT_EQ(off.lookup(1), nullptr);
  EXPECT_EQ(off.stats().entries, 0u);
}

}  // namespace
}  // namespace pslocal::service
