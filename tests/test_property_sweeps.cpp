// Property sweeps: the library's core invariants exercised across a
// matrix of instance families, oracles and seeds.  These are the
// "fuzz-lite" tests: every case asserts the full invariant set end to
// end, not a single example.
//
// Instance families come from the QC harness (qc::make_family), so a
// failure here and a pslocal_fuzz failure speak the same reproducer
// vocabulary — each assertion message carries the fuzz command that
// replays the same family/seed pair.
#include <gtest/gtest.h>

#include <memory>

#include "coloring/cf_baselines.hpp"
#include "core/correspondence.hpp"
#include "core/reduction.hpp"
#include "core/simulation.hpp"
#include "graph/generators.hpp"
#include "hypergraph/generators.hpp"
#include "local/luby_mis.hpp"
#include "mis/greedy_maxis.hpp"
#include "mis/independent_set.hpp"
#include "qc/gen.hpp"
#include "qc/property.hpp"

namespace pslocal {
namespace {

using qc::make_family;
using qc::reproducer;

MaxISOraclePtr make_oracle(const std::string& kind, std::uint64_t seed) {
  if (kind == "greedy-mindeg") return std::make_unique<GreedyMinDegreeOracle>();
  if (kind == "greedy-clique")
    return std::make_unique<CliqueCoverGreedyOracle>();
  if (kind == "greedy-random") return std::make_unique<RandomGreedyOracle>(seed);
  if (kind == "luby") return std::make_unique<LubyOracle>(seed);
  throw std::logic_error("unknown oracle " + kind);
}

// ---------------------------------------------------------------------
// Sweep 1: the reduction solves every family with every oracle, with
// per-phase verification enabled, and the result verifies against the
// original hypergraph.
struct ReductionCase {
  std::string family;
  std::string oracle;
};

class ReductionMatrixTest : public ::testing::TestWithParam<ReductionCase> {};

TEST_P(ReductionMatrixTest, SolvesWithPhaseVerification) {
  const auto& param = GetParam();
  for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
    auto inst = make_family(param.family, seed);
    auto oracle = make_oracle(param.oracle, seed);
    const std::string repro =
        reproducer("reduction-solves", seed, param.family, param.oracle);
    ReductionOptions opts;
    opts.k = inst.k;
    opts.verify_phases = true;
    const auto res = cf_multicoloring_via_maxis(inst.hypergraph, *oracle, opts);
    ASSERT_TRUE(res.success) << param.family << "/" << param.oracle
                             << " seed " << seed << "\n  " << repro;
    EXPECT_TRUE(is_conflict_free(inst.hypergraph, res.coloring))
        << "\n  " << repro;
    EXPECT_LE(res.colors_used, res.palette_bound) << "\n  " << repro;
    // Multicoloring bookkeeping is internally consistent.
    EXPECT_LE(res.coloring.palette_size(), res.coloring.assignment_count());
    EXPECT_LE(res.coloring.max_color(), inst.k * res.phases);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ReductionMatrixTest,
    ::testing::Values(
        ReductionCase{"planted-k2", "greedy-mindeg"},
        ReductionCase{"planted-k2", "greedy-clique"},
        ReductionCase{"planted-k2", "greedy-random"},
        ReductionCase{"planted-k2", "luby"},
        ReductionCase{"planted-k4", "greedy-mindeg"},
        ReductionCase{"planted-k4", "greedy-random"},
        ReductionCase{"planted-k4", "luby"},
        ReductionCase{"interval", "greedy-mindeg"},
        ReductionCase{"interval", "greedy-random"},
        ReductionCase{"interval", "luby"},
        ReductionCase{"ring-neighborhoods", "greedy-mindeg"},
        ReductionCase{"ring-neighborhoods", "greedy-clique"},
        ReductionCase{"ring-neighborhoods", "luby"}),
    [](const auto& info) {
      std::string name = info.param.family + "_" + info.param.oracle;
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

// ---------------------------------------------------------------------
// Sweep 2: Lemma 2.1 b) and host-mapping simulability hold on every
// family's conflict graph, for ISs from every oracle.
class FamilyInvariantTest : public ::testing::TestWithParam<std::string> {};

TEST_P(FamilyInvariantTest, LemmaBAndSimulabilityAcrossSeeds) {
  for (std::uint64_t seed : {5ull, 6ull, 7ull}) {
    auto inst = make_family(GetParam(), seed);
    const std::string repro =
        reproducer("correspondence-roundtrip", seed, GetParam());
    const ConflictGraph cg(inst.hypergraph, inst.k);
    EXPECT_TRUE(analyze_host_mapping(cg).one_round_simulable)
        << "\n  " << repro;

    RandomGreedyOracle oracle(seed);
    const auto is = oracle.solve(cg.graph());
    const auto report = check_lemma_b(cg, is);
    EXPECT_TRUE(report.independent) << "\n  " << repro;
    EXPECT_TRUE(report.well_defined) << "\n  " << repro;
    EXPECT_TRUE(report.happy_at_least_is_size) << "\n  " << repro;
    // alpha(G_k) <= m always (E_edge clique cover), so |I| <= m.
    EXPECT_LE(is.size(), cg.independence_upper_bound());
  }
}

TEST_P(FamilyInvariantTest, TripleIndexRoundtripsAcrossSeeds) {
  auto inst = make_family(GetParam(), 17);
  const ConflictGraph cg(inst.hypergraph, inst.k);
  for (TripleId t = 0; t < cg.triple_count(); ++t) {
    const Triple tr = cg.triple(t);
    EXPECT_EQ(cg.triple_id(tr.e, tr.v, tr.c), t);
    EXPECT_TRUE(inst.hypergraph.edge_contains(tr.e, tr.v));
  }
}

INSTANTIATE_TEST_SUITE_P(Families, FamilyInvariantTest,
                         ::testing::Values("planted-k2", "planted-k4",
                                           "interval", "ring-neighborhoods"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

// ---------------------------------------------------------------------
// Sweep 3: every IS oracle produces valid sets on every graph family.
class OracleValidityTest : public ::testing::TestWithParam<std::string> {};

TEST_P(OracleValidityTest, ValidOnEveryGraphFamily) {
  auto oracle = make_oracle(GetParam(), 31);
  Rng rng(41);
  const std::vector<Graph> graphs = {
      ring(15),        path(20),          grid(4, 5),
      complete(9),     complete_bipartite(4, 6),
      gnp(40, 0.08, rng), gnp(40, 0.4, rng), random_tree(30, rng),
      power_law(50, 2.5, 3.0, rng),        Graph::from_edges(6, {}),
  };
  for (const auto& g : graphs) {
    const auto is = oracle->solve(g);
    EXPECT_TRUE(is_independent_set(g, is))
        << GetParam() << " on n=" << g.vertex_count();
    if (g.vertex_count() > 0) {
      EXPECT_GE(is.size(), 1u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Oracles, OracleValidityTest,
                         ::testing::Values("greedy-mindeg", "greedy-clique",
                                           "greedy-random", "luby"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

// ---------------------------------------------------------------------
// Sweep 4: dyadic baseline is CF on *random* interval hypergraphs (not
// just all_intervals), across sizes and seeds.
class DyadicSweepTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DyadicSweepTest, ConflictFreeOnRandomIntervalFamilies) {
  const std::size_t n = GetParam();
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    Rng rng(seed * 1000 + n);
    const auto h =
        interval_hypergraph(n, 3 * n, 1, std::min<std::size_t>(n, 9), rng);
    const auto f = dyadic_interval_cf_coloring(n);
    EXPECT_TRUE(is_conflict_free(h, f)) << "n=" << n << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DyadicSweepTest,
                         ::testing::Values(8, 17, 32, 50, 100));

}  // namespace
}  // namespace pslocal
