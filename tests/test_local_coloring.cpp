#include "local/coloring_local.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "coloring/coloring.hpp"
#include "graph/generators.hpp"

namespace pslocal {
namespace {

class LocalColoringSeedTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(LocalColoringSeedTest, ProperDeltaPlusOneOnFamilies) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const std::vector<Graph> graphs = {
      ring(25), grid(5, 7), complete(10), gnp(70, 0.1, rng),
      random_tree(50, rng),
  };
  for (const auto& g : graphs) {
    const auto res = local_random_coloring(g, seed);
    EXPECT_TRUE(res.completed);
    EXPECT_TRUE(is_proper_coloring(g, res.coloring));
    EXPECT_LE(color_count(res.coloring), g.max_degree() + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LocalColoringSeedTest,
                         ::testing::Values(1, 2, 3, 77));

TEST(LocalColoringTest, EdgelessGraphsColorImmediately) {
  const Graph g = Graph::from_edges(6, {});
  const auto res = local_random_coloring(g, 1);
  EXPECT_TRUE(res.completed);
  for (auto c : res.coloring) EXPECT_EQ(c, 0u);  // palette {0} only
}

TEST(LocalColoringTest, DeterministicPerSeed) {
  Rng rng(4);
  const Graph g = gnp(50, 0.15, rng);
  const auto a = local_random_coloring(g, 11);
  const auto b = local_random_coloring(g, 11);
  EXPECT_EQ(a.coloring, b.coloring);
}

TEST(LocalColoringTest, RoundsAreLogarithmic) {
  Rng rng(5);
  for (std::size_t n : {64u, 256u}) {
    const Graph g = gnp(n, 6.0 / static_cast<double>(n), rng);
    const auto res = local_random_coloring(g, 9);
    EXPECT_TRUE(res.completed);
    EXPECT_LE(static_cast<double>(res.rounds),
              8.0 * std::log2(static_cast<double>(n)) + 12.0);
  }
}

}  // namespace
}  // namespace pslocal
