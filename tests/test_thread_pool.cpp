// Tests for the work-stealing pool itself (src/runtime/): completion,
// exception propagation, nested regions, stealing under skewed load, and
// the parallel primitives built on top of run_chunks.  Determinism of
// the *library* hot paths wired onto the pool is covered separately in
// test_parallel_determinism.cpp.
#include "runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/global.hpp"
#include "runtime/parallel.hpp"

namespace pslocal::runtime {
namespace {

TEST(ChunkLayout, BoundariesDependOnlyOnNAndGrain) {
  EXPECT_EQ(chunk_count(0, 5), 0u);
  EXPECT_EQ(chunk_count(1, 5), 1u);
  EXPECT_EQ(chunk_count(10, 5), 2u);
  EXPECT_EQ(chunk_count(11, 5), 3u);
  // default_grain is a function of n alone.
  EXPECT_EQ(default_grain(0), 1u);
  EXPECT_EQ(default_grain(100), 100u);     // small loops: one chunk
  EXPECT_EQ(default_grain(2048), 2048u);
  EXPECT_GT(default_grain(1 << 20), 0u);
  EXPECT_LE(chunk_count(1 << 20, default_grain(1 << 20)), 257u);
}

TEST(ThreadPool, SingleLanePoolSpawnsNothingAndCompletes) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::vector<int> hits(100, 0);
  parallel_for_each_index(pool, {100, 7}, [&](std::size_t i) { ++hits[i]; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ThreadPool, EveryChunkRunsExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 100'000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for_each_index(pool, {n, 64},
                          [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ReusableAcrossManyRegions) {
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    const std::size_t n = 1 + (round * 37) % 500;
    const auto sum = parallel_reduce<std::size_t>(
        pool, {n, 16}, std::size_t{0},
        [](std::size_t lo, std::size_t hi, std::size_t) {
          std::size_t s = 0;
          for (std::size_t i = lo; i < hi; ++i) s += i;
          return s;
        },
        [](std::size_t a, std::size_t b) { return a + b; });
    ASSERT_EQ(sum, n * (n - 1) / 2) << "round " << round;
  }
}

TEST(ThreadPool, EmptyAndTinyRangesAreFine) {
  ThreadPool pool(4);
  int calls = 0;
  parallel_for(pool, {0, 0}, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for_each_index(pool, {1, 0}, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for_each_index(pool, {10'000, 8},
                              [&](std::size_t i) {
                                if (i == 7777)
                                  throw std::runtime_error("chunk failure");
                              }),
      std::runtime_error);
  // The failed region must not poison the pool.
  std::atomic<std::size_t> count{0};
  parallel_for_each_index(pool, {5000, 8}, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 5000u);
}

TEST(ThreadPool, FirstOfManyExceptionsWins) {
  ThreadPool pool(4);
  try {
    parallel_for(pool, {64, 1}, [&](std::size_t lo, std::size_t) {
      throw std::runtime_error("boom " + std::to_string(lo));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()).rfind("boom ", 0), 0u);
  }
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64 * 64);
  parallel_for_each_index(pool, {64, 4}, [&](std::size_t outer) {
    // Inner region from inside a pool chunk: must run inline and not
    // deadlock waiting for workers that are busy with the outer region.
    parallel_for_each_index(pool, {64, 4}, [&](std::size_t inner) {
      ++hits[outer * 64 + inner];
    });
  });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPool, StealingHappensUnderSkewedLoad) {
  ThreadPool pool(4);
  const auto before = pool.steal_count();
  // Chunk 0 is pathologically heavy, the rest are trivial: lane 0 gets
  // stuck on its first chunk and the other lanes must steal the rest of
  // its pre-partitioned block to finish the region.
  std::atomic<std::size_t> done{0};
  parallel_for(pool, {256, 1}, [&](std::size_t lo, std::size_t) {
    if (lo == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ++done;
  });
  EXPECT_EQ(done.load(), 256u);
  // On a single-core machine workers still run (they are OS threads),
  // so steals occur whenever a sibling lane drains the blocked lane's
  // deque; allow equality only if the whole region ran on one lane.
  EXPECT_GE(pool.steal_count(), before);
}

TEST(ThreadPool, SkewedLoadCompletesEvenWithManyRegions) {
  ThreadPool pool(8);
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::size_t> done{0};
    parallel_for(pool, {64, 1}, [&](std::size_t lo, std::size_t) {
      if (lo % 17 == 0)
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      ++done;
    });
    ASSERT_EQ(done.load(), 64u) << "round " << round;
  }
}

TEST(ParallelPrimitives, ReduceMatchesSequentialFloatBitForBit) {
  ThreadPool pool(4);
  SequentialScheduler seq;
  const std::size_t n = 200'000;
  std::vector<double> data(n);
  for (std::size_t i = 0; i < n; ++i)
    data[i] = 1.0 / static_cast<double>(i + 1);
  auto run = [&](Scheduler& s) {
    return parallel_reduce<double>(
        s, {n, 0}, 0.0,
        [&](std::size_t lo, std::size_t hi, std::size_t) {
          double acc = 0.0;
          for (std::size_t i = lo; i < hi; ++i) acc += data[i];
          return acc;
        },
        [](double a, double b) { return a + b; });
  };
  // Identical association order => identical rounding => identical bits.
  EXPECT_EQ(run(pool), run(seq));
}

TEST(ParallelPrimitives, CollectMatchesSequentialAppendOrder) {
  ThreadPool pool(4);
  const std::size_t n = 50'000;
  const auto out = parallel_collect<std::size_t>(
      pool, {n, 128}, [](std::size_t lo, std::size_t hi, auto& sink) {
        for (std::size_t i = lo; i < hi; ++i)
          if (i % 3 == 0) sink.push_back(i);
      });
  std::vector<std::size_t> expected;
  for (std::size_t i = 0; i < n; i += 3) expected.push_back(i);
  EXPECT_EQ(out, expected);
}

TEST(ParallelPrimitives, SortEqualsStableSort) {
  ThreadPool pool(4);
  Rng rng(99);
  std::vector<std::uint64_t> v(100'000);
  for (auto& x : v) x = rng.next_below(1000);  // many duplicates
  auto expected = v;
  std::stable_sort(expected.begin(), expected.end());
  parallel_sort(pool, v);
  EXPECT_EQ(v, expected);
}

TEST(ParallelPrimitives, RngForChunkIsThreadCountInvariantByConstruction) {
  // Chunk RNGs key on the chunk index, so any scheduler sees the same
  // streams; spot-check reproducibility and pairwise divergence.
  Rng a = rng_for_chunk(42, 0);
  Rng b = rng_for_chunk(42, 0);
  Rng c = rng_for_chunk(42, 1);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == c.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(GlobalScheduler, DefaultsToOneLaneAndResizes) {
  // The global pool must stay sequential until a binary opts in.
  Scheduler& before = global_scheduler();
  EXPECT_GE(before.thread_count(), 1u);
  set_global_thread_count(2);
  EXPECT_EQ(global_scheduler().thread_count(), 2u);
  std::atomic<int> hits{0};
  parallel_for_each_index(global_scheduler(), {1000, 0},
                          [&](std::size_t) { ++hits; });
  EXPECT_EQ(hits.load(), 1000);
  set_global_thread_count(1);
  EXPECT_EQ(global_scheduler().thread_count(), 1u);
}

}  // namespace
}  // namespace pslocal::runtime
