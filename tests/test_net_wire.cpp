// net/wire: frame encode/decode round-trips, incremental parsing under
// arbitrary chunking, and strict rejection of torn / corrupt / oversized
// / length-lying inputs (the decoder half of docs/net.md).
#include "net/wire.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "util/hash.hpp"

namespace pslocal::net::wire {
namespace {

std::shared_ptr<const Hypergraph> tiny_instance() {
  return std::make_shared<Hypergraph>(
      6, std::vector<std::vector<VertexId>>{{0, 1, 2}, {2, 3}, {3, 4, 5}});
}

service::Request tiny_request() {
  service::Request req;
  req.kind = service::RequestKind::kGreedyMaxis;
  req.instance = tiny_instance();
  req.instance_hash = hash_hypergraph(*req.instance);
  req.k = 3;
  req.seed = 42;
  req.solver = "greedy-mindeg";
  return req;
}

Frame request_frame(std::uint64_t id) {
  Frame f;
  f.kind = FrameKind::kRequest;
  f.request_id = id;
  f.payload = encode_request(tiny_request());
  return f;
}

TEST(NetWireTest, FrameRoundTripsThroughDecoder) {
  const Frame in = request_frame(7);
  const std::string bytes = encode_frame(in);
  ASSERT_EQ(bytes.size(), kHeaderSize + in.payload.size());

  FrameDecoder dec;
  dec.feed(bytes);
  Frame out;
  ASSERT_EQ(dec.next(out), FrameDecoder::Result::kFrame);
  EXPECT_EQ(out.kind, in.kind);
  EXPECT_EQ(out.request_id, in.request_id);
  EXPECT_EQ(out.payload, in.payload);
  EXPECT_EQ(dec.buffered(), 0u);
  EXPECT_EQ(dec.next(out), FrameDecoder::Result::kNeedMore);
}

TEST(NetWireTest, DecoderHandlesByteAtATimeFeeding) {
  const Frame in = request_frame(99);
  const std::string bytes = encode_frame(in);
  FrameDecoder dec;
  Frame out;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    dec.feed(&bytes[i], 1);
    ASSERT_EQ(dec.next(out), FrameDecoder::Result::kNeedMore)
        << "complete frame after " << (i + 1) << "/" << bytes.size()
        << " bytes";
  }
  dec.feed(&bytes[bytes.size() - 1], 1);
  ASSERT_EQ(dec.next(out), FrameDecoder::Result::kFrame);
  EXPECT_EQ(out.request_id, 99u);
  EXPECT_EQ(out.payload, in.payload);
}

TEST(NetWireTest, DecoderExtractsBackToBackFrames) {
  std::string bytes;
  for (std::uint64_t id = 1; id <= 4; ++id)
    bytes += encode_frame(request_frame(id));
  FrameDecoder dec;
  dec.feed(bytes);
  Frame out;
  for (std::uint64_t id = 1; id <= 4; ++id) {
    ASSERT_EQ(dec.next(out), FrameDecoder::Result::kFrame);
    EXPECT_EQ(out.request_id, id);
  }
  EXPECT_EQ(dec.next(out), FrameDecoder::Result::kNeedMore);
  EXPECT_EQ(dec.buffered(), 0u);
}

/// Corrupting any of these header positions must yield kCorrupt, and the
/// corruption must be sticky: further feeds stay rejected.
void expect_corrupt(std::string bytes, std::size_t flip_at,
                    const char* what) {
  bytes[flip_at] = static_cast<char>(bytes[flip_at] ^ 0x40);
  FrameDecoder dec;
  dec.feed(bytes);
  Frame out;
  EXPECT_EQ(dec.next(out), FrameDecoder::Result::kCorrupt) << what;
  EXPECT_TRUE(dec.corrupt()) << what;
  EXPECT_FALSE(dec.error().empty()) << what;
  dec.feed(encode_frame(request_frame(1)));  // sticky: no recovery
  EXPECT_EQ(dec.next(out), FrameDecoder::Result::kCorrupt) << what;
}

TEST(NetWireTest, DecoderRejectsHeaderCorruption) {
  const std::string bytes = encode_frame(request_frame(5));
  expect_corrupt(bytes, 0, "magic");
  expect_corrupt(bytes, 4, "version");
  expect_corrupt(bytes, 5, "kind");
  expect_corrupt(bytes, 6, "reserved");
  expect_corrupt(bytes, 24, "checksum");
}

TEST(NetWireTest, TenantRoundTripsInV2Header) {
  Frame in = request_frame(13);
  in.tenant = "gold";
  const std::string bytes = encode_frame(in);
  // The tenant rides as a payload-region prefix: frame grows by exactly
  // its length, and payload_len on the wire covers tenant + payload.
  ASSERT_EQ(bytes.size(), kHeaderSize + in.tenant.size() + in.payload.size());

  FrameDecoder dec;
  dec.feed(bytes);
  Frame out;
  ASSERT_EQ(dec.next(out), FrameDecoder::Result::kFrame);
  EXPECT_EQ(out.tenant, "gold");
  EXPECT_EQ(out.payload, in.payload);
  EXPECT_EQ(out.request_id, 13u);
}

TEST(NetWireTest, EmptyTenantLeavesWireBytesUnchanged) {
  // Compatibility pin: a pre-QoS sender and a QoS sender with no tenant
  // produce bit-identical frames — the tenant field costs zero bytes
  // when unused, so recorded pre-QoS streams stay valid forever.
  Frame in = request_frame(7);
  const std::string before = encode_frame(in);
  in.tenant = "";
  EXPECT_EQ(encode_frame(in), before);
}

TEST(NetWireTest, V1FrameWithNonzeroTenantWordIsCorrupt) {
  // v1 has no tenant field: the word at offset 20 is still reserved
  // there and must be zero.  A v1 peer that starts scribbling into it
  // is broken, not "early QoS".
  std::string bytes = encode_frame(request_frame(5), /*version=*/1);
  bytes[20] = 1;
  FrameDecoder dec;
  dec.feed(bytes);
  Frame out;
  EXPECT_EQ(dec.next(out), FrameDecoder::Result::kCorrupt);
  EXPECT_TRUE(dec.corrupt());
}

TEST(NetWireTest, TenantLengthBeyondPayloadBoundIsCorrupt) {
  // Regression pin (fuzz-found class): tenant_len > payload_len would
  // let a lying header move the payload split past the bytes the length
  // word accounts for.  The decoder must flag it before touching the
  // region.  Also pinned: the kMaxTenantLen cap (a tenant id is a name,
  // not a data channel).
  Frame in = request_frame(5);
  in.tenant = "t";
  std::string bytes = encode_frame(in);
  const std::uint32_t region =
      static_cast<std::uint32_t>(in.tenant.size() + in.payload.size());
  const std::uint32_t lie = region + 1;
  for (int i = 0; i < 4; ++i)
    bytes[20 + static_cast<std::size_t>(i)] =
        static_cast<char>(lie >> (8 * i));
  FrameDecoder dec;
  dec.feed(bytes);
  Frame out;
  EXPECT_EQ(dec.next(out), FrameDecoder::Result::kCorrupt);
  EXPECT_TRUE(dec.corrupt());

  Frame capped;
  capped.kind = FrameKind::kRequest;
  capped.tenant.assign(kMaxTenantLen + 1, 'a');
  capped.payload.assign(kMaxTenantLen + 64, 'b');
  std::string capped_bytes;
  // encode_frame contract-checks the cap, so build the oversized header
  // by patching a legal frame with a tenant_len that is in payload
  // bounds but over the tenant cap.
  capped.tenant.clear();
  capped_bytes = encode_frame(capped);
  const std::uint32_t over = static_cast<std::uint32_t>(kMaxTenantLen + 1);
  for (int i = 0; i < 4; ++i)
    capped_bytes[20 + static_cast<std::size_t>(i)] =
        static_cast<char>(over >> (8 * i));
  FrameDecoder dec2;
  dec2.feed(capped_bytes);
  EXPECT_EQ(dec2.next(out), FrameDecoder::Result::kCorrupt);
}

TEST(NetWireTest, TenantBitFlipIsCaughtByChecksum) {
  // The tenant prefix sits inside the checksummed region: corrupting it
  // is detected exactly like payload corruption, so routing decisions
  // never run on a damaged tenant id.
  Frame in = request_frame(5);
  in.tenant = "gold";
  std::string bytes = encode_frame(in);
  bytes[kHeaderSize] = static_cast<char>(bytes[kHeaderSize] ^ 1);
  FrameDecoder dec;
  dec.feed(bytes);
  Frame out;
  EXPECT_EQ(dec.next(out), FrameDecoder::Result::kCorrupt);
}

TEST(NetWireTest, DecoderRejectsPayloadBitFlip) {
  std::string bytes = encode_frame(request_frame(5));
  bytes[kHeaderSize + 3] = static_cast<char>(bytes[kHeaderSize + 3] ^ 1);
  FrameDecoder dec;
  dec.feed(bytes);
  Frame out;
  EXPECT_EQ(dec.next(out), FrameDecoder::Result::kCorrupt);
}

TEST(NetWireTest, DecoderRejectsOversizedPayloadBeforeBuffering) {
  // A header announcing a payload beyond the decoder's bound is corrupt
  // immediately — the decoder must not wait for (or allocate) the bytes.
  Frame f;
  f.kind = FrameKind::kResponse;
  f.payload.assign(512, 'x');
  std::string bytes = encode_frame(f);
  FrameDecoder dec(/*max_payload=*/128);
  dec.feed(bytes.substr(0, kHeaderSize));  // header only
  Frame out;
  EXPECT_EQ(dec.next(out), FrameDecoder::Result::kCorrupt);
}

TEST(NetWireTest, MaxPayloadBoundaryIsExact) {
  // len == limit is a legal frame; limit + 1 is corrupt.  An off-by-one
  // here either rejects the largest legal response or admits an
  // unbounded allocation, so the boundary is pinned exactly.
  const auto frame_of = [](std::size_t payload_len) {
    Frame f;
    f.kind = FrameKind::kResponse;
    f.request_id = 11;
    f.payload.assign(payload_len, 'y');
    return encode_frame(f);
  };

  FrameDecoder at_limit(/*max_payload=*/128);
  at_limit.feed(frame_of(128));
  Frame out;
  ASSERT_EQ(at_limit.next(out), FrameDecoder::Result::kFrame);
  EXPECT_EQ(out.payload.size(), 128u);
  EXPECT_FALSE(at_limit.corrupt());

  FrameDecoder over_limit(/*max_payload=*/128);
  over_limit.feed(frame_of(129));
  EXPECT_EQ(over_limit.next(out), FrameDecoder::Result::kCorrupt);
  EXPECT_TRUE(over_limit.corrupt());
}

TEST(NetWireTest, TruncatedStreamIsNeedMoreNotCorrupt) {
  const std::string bytes = encode_frame(request_frame(3));
  FrameDecoder dec;
  dec.feed(bytes.substr(0, bytes.size() - 5));
  Frame out;
  EXPECT_EQ(dec.next(out), FrameDecoder::Result::kNeedMore);
  EXPECT_FALSE(dec.corrupt());
}

TEST(NetWireTest, TraceWordsRoundTripInV2Header) {
  Frame in = request_frame(7);
  in.trace_id = 0x0123456789abcdefull;
  in.parent_span_id = 0xfedcba9876543210ull;
  const std::string bytes = encode_frame(in);
  ASSERT_EQ(bytes.size(), kHeaderSize + in.payload.size());

  FrameDecoder dec;
  dec.feed(bytes);
  Frame out;
  ASSERT_EQ(dec.next(out), FrameDecoder::Result::kFrame);
  EXPECT_EQ(out.trace_id, in.trace_id);
  EXPECT_EQ(out.parent_span_id, in.parent_span_id);
  EXPECT_EQ(out.request_id, in.request_id);
  EXPECT_EQ(out.payload, in.payload);

  // An untraced sender puts zeros on the wire; they decode as zeros.
  FrameDecoder dec2;
  dec2.feed(encode_frame(request_frame(8)));
  ASSERT_EQ(dec2.next(out), FrameDecoder::Result::kFrame);
  EXPECT_EQ(out.trace_id, 0u);
  EXPECT_EQ(out.parent_span_id, 0u);
}

TEST(NetWireTest, V1FramesDecodeWithZeroTraceFields) {
  // A version-1 peer has no trace words: its header is 32 bytes and the
  // payload starts at offset 32.  The decoder must keep accepting it.
  Frame in = request_frame(21);
  in.trace_id = 0xAAAA;  // dropped by the v1 encoding
  in.parent_span_id = 0xBBBB;
  const std::string bytes = encode_frame(in, /*version=*/1);
  ASSERT_EQ(bytes.size(), kHeaderSizeV1 + in.payload.size());

  FrameDecoder dec;
  dec.feed(bytes);
  Frame out;
  ASSERT_EQ(dec.next(out), FrameDecoder::Result::kFrame);
  EXPECT_EQ(out.kind, in.kind);
  EXPECT_EQ(out.request_id, 21u);
  EXPECT_EQ(out.payload, in.payload);
  EXPECT_EQ(out.trace_id, 0u);
  EXPECT_EQ(out.parent_span_id, 0u);
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(NetWireTest, MixedVersionFramesShareOneStream) {
  // v2, v1, v2 back to back: per-frame version sniffing, no cross-talk.
  Frame traced = request_frame(1);
  traced.trace_id = 0xC0FFEE;
  std::string bytes = encode_frame(traced);
  bytes += encode_frame(request_frame(2), /*version=*/1);
  Frame traced3 = request_frame(3);
  traced3.trace_id = 0xDECAF;
  bytes += encode_frame(traced3);

  FrameDecoder dec;
  dec.feed(bytes);
  Frame out;
  ASSERT_EQ(dec.next(out), FrameDecoder::Result::kFrame);
  EXPECT_EQ(out.request_id, 1u);
  EXPECT_EQ(out.trace_id, 0xC0FFEEu);
  ASSERT_EQ(dec.next(out), FrameDecoder::Result::kFrame);
  EXPECT_EQ(out.request_id, 2u);
  EXPECT_EQ(out.trace_id, 0u);
  ASSERT_EQ(dec.next(out), FrameDecoder::Result::kFrame);
  EXPECT_EQ(out.request_id, 3u);
  EXPECT_EQ(out.trace_id, 0xDECAFu);
  EXPECT_EQ(dec.next(out), FrameDecoder::Result::kNeedMore);
}

TEST(NetWireTest, StatsFrameKindsRoundTrip) {
  EXPECT_TRUE(frame_kind_valid(
      static_cast<std::uint8_t>(FrameKind::kStatsRequest)));
  EXPECT_TRUE(frame_kind_valid(
      static_cast<std::uint8_t>(FrameKind::kStatsResponse)));
  EXPECT_FALSE(frame_kind_valid(0));
  EXPECT_FALSE(frame_kind_valid(6));

  // A stats request is an empty-payload frame; the response carries the
  // JSON payload and echoes the request's trace context.
  Frame req;
  req.kind = FrameKind::kStatsRequest;
  req.request_id = 17;
  req.trace_id = 0x5747;
  FrameDecoder dec;
  dec.feed(encode_frame(req));
  Frame out;
  ASSERT_EQ(dec.next(out), FrameDecoder::Result::kFrame);
  EXPECT_EQ(out.kind, FrameKind::kStatsRequest);
  EXPECT_TRUE(out.payload.empty());
  EXPECT_EQ(out.trace_id, 0x5747u);

  Frame resp;
  resp.kind = FrameKind::kStatsResponse;
  resp.request_id = 17;
  resp.trace_id = 0x5747;
  resp.payload = "{\"engine\":{},\"obs\":{},\"server\":{}}";
  FrameDecoder dec2;
  dec2.feed(encode_frame(resp));
  ASSERT_EQ(dec2.next(out), FrameDecoder::Result::kFrame);
  EXPECT_EQ(out.kind, FrameKind::kStatsResponse);
  EXPECT_EQ(out.payload, resp.payload);
}

TEST(NetWireTest, TraceWordsAreNotChecksummed) {
  // The checksum guards the payload; the trace words are routing
  // metadata.  Flipping one changes the decoded ids but must not make
  // the frame corrupt (a relay may legitimately restamp them).
  std::string bytes = encode_frame(request_frame(9));
  bytes[33] = static_cast<char>(bytes[33] ^ 0x40);  // inside trace_id
  FrameDecoder dec;
  dec.feed(bytes);
  Frame out;
  ASSERT_EQ(dec.next(out), FrameDecoder::Result::kFrame);
  EXPECT_EQ(out.trace_id, std::uint64_t{0x40} << 8);
  EXPECT_FALSE(dec.corrupt());
}

TEST(NetWireTest, RequestPayloadRoundTrips) {
  const service::Request in = tiny_request();
  const std::string payload = encode_request(in);

  service::Request out;
  std::string error;
  ASSERT_TRUE(decode_request(payload, out, &error)) << error;
  EXPECT_EQ(out.kind, in.kind);
  EXPECT_EQ(out.k, in.k);
  EXPECT_EQ(out.seed, in.seed);
  EXPECT_EQ(out.solver, in.solver);
  ASSERT_NE(out.instance, nullptr);
  // The decoded instance is the same canonical object: identical bytes,
  // identical hash, so the server's cache key matches the client's.
  EXPECT_EQ(canonical_bytes(*out.instance), canonical_bytes(*in.instance));
  EXPECT_EQ(out.instance_hash, in.instance_hash);
  // Re-encoding is byte-stable.
  EXPECT_EQ(encode_request(out), payload);
}

TEST(NetWireTest, ResponsePayloadRoundTrips) {
  service::Response in;
  in.status = service::Response::Status::kOk;
  in.key = 0xDEADBEEFCAFEBABEull;
  in.cache_hit = true;
  in.result = "{\"answer\": [1, 2, 3]}";
  const std::string payload = encode_response(in);
  service::Response out;
  std::string error;
  ASSERT_TRUE(decode_response(payload, out, &error)) << error;
  EXPECT_EQ(out.status, in.status);
  EXPECT_EQ(out.key, in.key);
  EXPECT_EQ(out.cache_hit, in.cache_hit);
  EXPECT_EQ(out.result, in.result);
  EXPECT_EQ(out.reason, in.reason);
}

TEST(NetWireTest, NackPayloadRoundTrips) {
  for (const NackCode code : {NackCode::kQueueFull, NackCode::kShutdown}) {
    const std::string payload = encode_nack(code);
    NackCode out = NackCode::kQueueFull;
    std::string error;
    ASSERT_TRUE(decode_nack(payload, out, &error)) << error;
    EXPECT_EQ(out, code);
  }
  NackCode out = NackCode::kQueueFull;
  std::string error;
  EXPECT_FALSE(decode_nack("", out, &error));
  EXPECT_FALSE(decode_nack(std::string(1, '\x7f'), out, &error));

  // kShedRetryAfter carries the deterministic backoff hint; the other
  // codes stay hint-free single bytes (wire compatibility with pre-QoS
  // receivers that only ever saw one-byte NACK payloads).
  const std::string shed = encode_nack(NackCode::kShedRetryAfter, 1500);
  EXPECT_EQ(shed.size(), 9u);
  std::uint64_t hint = 0;
  ASSERT_TRUE(decode_nack(shed, out, &error, &hint)) << error;
  EXPECT_EQ(out, NackCode::kShedRetryAfter);
  EXPECT_EQ(hint, 1500u);
  EXPECT_EQ(encode_nack(NackCode::kQueueFull, 1500).size(), 1u);
}

TEST(NetWireTest, TruncatedRequestPayloadIsRejectedNotMisread) {
  const std::string payload = encode_request(tiny_request());
  // Every strict prefix must fail cleanly (the frame checksum normally
  // guards this path; the codec must still never over-read).
  for (const std::size_t len : {std::size_t{0}, std::size_t{1},
                                payload.size() / 2, payload.size() - 1}) {
    service::Request out;
    std::string error;
    EXPECT_FALSE(
        decode_request(std::string_view(payload).substr(0, len), out, &error))
        << "prefix of " << len << " bytes decoded";
  }
}

TEST(NetWireTest, HypergraphDecodeRejectsLiedCounts) {
  const auto h = tiny_instance();
  const std::string bytes = canonical_bytes(*h);
  Hypergraph out;
  std::string error;
  ASSERT_TRUE(decode_hypergraph(bytes, out, &error)) << error;
  EXPECT_EQ(hash_hypergraph(out), hash_hypergraph(*h));

  // Lie about the edge count: more edges than the bytes can hold.
  std::string lied = bytes;
  lied[8] = '\x7f';  // m lives at offset 8, little-endian
  EXPECT_FALSE(decode_hypergraph(lied, out, &error));

  // Lie about the vertex count: beyond the wire bound.
  std::string huge = bytes;
  huge[4] = '\x01';  // n |= 1 << 32... (byte 4 of the u64 at offset 0)
  EXPECT_FALSE(decode_hypergraph(huge, out, &error));

  // Trailing garbage is an error, not silently ignored.
  EXPECT_FALSE(decode_hypergraph(bytes + "x", out, &error));

  // Out-of-range vertex id inside an edge.
  std::string bad_vertex = bytes;
  bad_vertex[bytes.size() - 1] = '\x7f';
  EXPECT_FALSE(decode_hypergraph(bad_vertex, out, &error));
}

}  // namespace
}  // namespace pslocal::net::wire
