#include "local/luby_mis.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "mis/independent_set.hpp"

namespace pslocal {
namespace {

struct LubyCase {
  std::string name;
  Graph graph;
};

class LubyFamilyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LubyFamilyTest, ProducesMaximalIndependentSets) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const std::vector<Graph> graphs = {
      ring(21),
      path(30),
      grid(6, 6),
      complete(12),
      complete_bipartite(5, 9),
      gnp(80, 0.08, rng),
      gnp(50, 0.3, rng),
      random_tree(64, rng),
  };
  for (const auto& g : graphs) {
    const auto res = luby_mis(g, seed);
    EXPECT_TRUE(res.completed);
    EXPECT_TRUE(is_maximal_independent_set(g, res.independent_set));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LubyFamilyTest,
                         ::testing::Values(1, 2, 3, 42, 1234));

TEST(LubyTest, CompleteGraphSelectsExactlyOne) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto res = luby_mis(complete(15), seed);
    EXPECT_EQ(res.independent_set.size(), 1u);
  }
}

TEST(LubyTest, EdgelessGraphSelectsAll) {
  const Graph g = Graph::from_edges(9, {});
  const auto res = luby_mis(g, 3);
  EXPECT_EQ(res.independent_set.size(), 9u);
  EXPECT_EQ(res.iterations, 1u);
}

TEST(LubyTest, DeterministicPerSeed) {
  Rng rng(6);
  const Graph g = gnp(60, 0.1, rng);
  const auto a = luby_mis(g, 99);
  const auto b = luby_mis(g, 99);
  EXPECT_EQ(a.independent_set, b.independent_set);
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(LubyTest, RoundsAreLogarithmic) {
  // O(log n) iterations w.h.p.; assert against a generous constant.
  Rng rng(7);
  for (std::size_t n : {32u, 128u, 512u}) {
    const Graph g = gnp(n, 4.0 / static_cast<double>(n), rng);
    const auto res = luby_mis(g, 5);
    EXPECT_TRUE(res.completed);
    EXPECT_LE(static_cast<double>(res.iterations),
              6.0 * std::log2(static_cast<double>(n)) + 8.0)
        << "n=" << n;
  }
}

TEST(LubyTest, OracleInterfaceWorks) {
  LubyOracle oracle(5);
  EXPECT_EQ(oracle.name(), "luby-mis");
  EXPECT_FALSE(oracle.lambda_guarantee().has_value());
  const Graph g = ring(12);
  const auto is = oracle.solve(g);
  EXPECT_TRUE(is_maximal_independent_set(g, is));
  // Successive calls draw fresh seeds but stay valid.
  EXPECT_TRUE(is_maximal_independent_set(g, oracle.solve(g)));
}

}  // namespace
}  // namespace pslocal
