#include "slocal/ruling_set.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.hpp"
#include "mis/independent_set.hpp"

namespace pslocal {
namespace {

std::vector<VertexId> identity_order(const Graph& g) {
  std::vector<VertexId> order(g.vertex_count());
  std::iota(order.begin(), order.end(), VertexId{0});
  return order;
}

struct RulingCase {
  std::size_t alpha;
  std::uint64_t seed;
};

class RulingSetTest : public ::testing::TestWithParam<RulingCase> {};

TEST_P(RulingSetTest, GreedyGivesAlphaAlphaMinusOneRulingSet) {
  const auto [alpha, seed] = GetParam();
  Rng rng(seed);
  const Graph g = gnp(80, 0.06, rng);
  const auto res = slocal_ruling_set(g, alpha, identity_order(g));
  EXPECT_TRUE(is_ruling_set(g, res.ruling_set, alpha,
                            alpha >= 2 ? alpha - 1 : 0));
  EXPECT_LE(res.locality, alpha >= 2 ? alpha - 1 : 0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RulingSetTest,
                         ::testing::Values(RulingCase{1, 1}, RulingCase{2, 2},
                                           RulingCase{3, 3}, RulingCase{4, 4},
                                           RulingCase{5, 5}));

TEST(RulingSetTest, TwoOneRulingSetIsMis) {
  Rng rng(9);
  const Graph g = gnp(50, 0.1, rng);
  const auto res = slocal_ruling_set(g, 2, identity_order(g));
  EXPECT_TRUE(is_maximal_independent_set(g, res.ruling_set));
  EXPECT_EQ(res.locality, 1u);
}

TEST(RulingSetTest, AlphaOneTakesEverything) {
  const Graph g = ring(6);
  const auto res = slocal_ruling_set(g, 1, identity_order(g));
  EXPECT_EQ(res.ruling_set.size(), 6u);
}

TEST(RulingSetTest, PathSpacing) {
  const Graph g = path(10);
  const auto res = slocal_ruling_set(g, 3, identity_order(g));
  // Identity order on a path: members at 0, 3, 6, 9.
  EXPECT_EQ(res.ruling_set, (std::vector<VertexId>{0, 3, 6, 9}));
}

TEST(RulingSetVerifierTest, RejectsBadSets) {
  const Graph g = path(6);
  EXPECT_FALSE(is_ruling_set(g, {0, 1}, 3, 5));  // too close
  EXPECT_FALSE(is_ruling_set(g, {0}, 2, 2));     // vertex 5 uncovered
  EXPECT_TRUE(is_ruling_set(g, {0, 3}, 3, 2));
  EXPECT_FALSE(is_ruling_set(g, {}, 2, 1));      // nonempty graph uncovered
  EXPECT_TRUE(is_ruling_set(Graph{}, {}, 2, 1));
  EXPECT_FALSE(is_ruling_set(g, {9}, 2, 1));     // out of range
}

TEST(RulingSetTest, DisconnectedGraphCoversEveryComponent) {
  const Graph g = disjoint_cliques({3, 3, 3});
  const auto res = slocal_ruling_set(g, 2, identity_order(g));
  EXPECT_TRUE(is_ruling_set(g, res.ruling_set, 2, 1));
  EXPECT_EQ(res.ruling_set.size(), 3u);  // one per clique
}

}  // namespace
}  // namespace pslocal
