#include "slocal/engine.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.hpp"

namespace pslocal {
namespace {

std::vector<VertexId> identity_order(const Graph& g) {
  std::vector<VertexId> order(g.vertex_count());
  std::iota(order.begin(), order.end(), VertexId{0});
  return order;
}

TEST(SLocalEngineTest, BallVerticesMatchBfs) {
  const Graph g = grid(4, 4);
  auto run = run_slocal<int>(g, std::vector<int>(16, 0), identity_order(g),
                             [&](SLocalView<int>& view) {
                               const auto b0 = view.ball_vertices(0);
                               EXPECT_EQ(b0.size(), 1u);
                               EXPECT_EQ(b0[0], view.center());
                               const auto b1 = view.ball_vertices(1);
                               EXPECT_EQ(b1.size(),
                                         1 + g.degree(view.center()));
                               const auto b99 = view.ball_vertices(99);
                               EXPECT_EQ(b99.size(), 16u);  // connected
                             });
  EXPECT_EQ(run.max_locality, 99u);
}

TEST(SLocalEngineTest, LocalityTracksMaxQuery) {
  const Graph g = path(10);
  auto run = run_slocal<int>(g, std::vector<int>(10, 0), identity_order(g),
                             [](SLocalView<int>& view) {
                               if (view.center() == 3)
                                 (void)view.ball_vertices(4);
                               else
                                 (void)view.ball_vertices(1);
                             });
  EXPECT_EQ(run.max_locality, 4u);
  EXPECT_EQ(run.locality_of[3], 4u);
  EXPECT_EQ(run.locality_of[5], 1u);
}

TEST(SLocalEngineTest, OwnStateIsFree) {
  const Graph g = path(5);
  auto run = run_slocal<int>(g, std::vector<int>(5, 0), identity_order(g),
                             [](SLocalView<int>& view) {
                               view.own_state() = 7;
                             });
  EXPECT_EQ(run.max_locality, 0u);
  for (int s : run.states) EXPECT_EQ(s, 7);
}

TEST(SLocalEngineTest, LaterNodesSeeEarlierWrites) {
  // Sequential semantics: each node copies its predecessor's counter + 1.
  const Graph g = path(6);
  auto run = run_slocal<int>(g, std::vector<int>(6, 0), identity_order(g),
                             [](SLocalView<int>& view) {
                               const VertexId c = view.center();
                               int prev = 0;
                               if (c > 0) prev = view.state(c - 1);
                               view.own_state() = prev + 1;
                             });
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(run.states[v], int(v) + 1);
  EXPECT_EQ(run.max_locality, 1u);  // state(c-1) is one hop away
}

TEST(SLocalEngineTest, StateReadChargesDistance) {
  const Graph g = path(8);
  auto run = run_slocal<int>(g, std::vector<int>(8, 0), identity_order(g),
                             [](SLocalView<int>& view) {
                               if (view.center() == 0)
                                 (void)view.state(5);  // 5 hops away
                             });
  EXPECT_EQ(run.max_locality, 5u);
  EXPECT_EQ(run.locality_of[0], 5u);
}

TEST(SLocalEngineTest, WriteStateChargesDistance) {
  const Graph g = path(8);
  auto run = run_slocal<int>(g, std::vector<int>(8, 0), identity_order(g),
                             [](SLocalView<int>& view) {
                               if (view.center() == 7) view.write_state(4, 99);
                             });
  EXPECT_EQ(run.locality_of[7], 3u);
  EXPECT_EQ(run.states[4], 99);
}

TEST(SLocalEngineTest, UnreachableStateViolatesContract) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {2, 3}});
  EXPECT_THROW(
      run_slocal<int>(g, std::vector<int>(4, 0), identity_order(g),
                      [](SLocalView<int>& view) {
                        if (view.center() == 0) (void)view.state(3);
                      }),
      ContractViolation);
}

TEST(SLocalEngineTest, BallOnDisconnectedGraphStaysInComponent) {
  const Graph g = Graph::from_edges(5, {{0, 1}, {1, 2}});
  auto run = run_slocal<int>(g, std::vector<int>(5, 0), identity_order(g),
                             [](SLocalView<int>& view) {
                               if (view.center() == 0) {
                                 const auto b = view.ball_vertices(10);
                                 EXPECT_EQ(b.size(), 3u);
                               }
                             });
  (void)run;
}

TEST(SLocalEngineTest, BallSubgraphIsInduced) {
  const Graph g = ring(8);
  auto run = run_slocal<int>(g, std::vector<int>(8, 0), identity_order(g),
                             [](SLocalView<int>& view) {
                               if (view.center() != 0) return;
                               const auto sub = view.ball_subgraph(2);
                               EXPECT_EQ(sub.graph.vertex_count(), 5u);
                               EXPECT_EQ(sub.graph.edge_count(), 4u);  // path
                             });
  EXPECT_EQ(run.locality_of[0], 2u);
}

TEST(SLocalEngineTest, BadOrderViolatesContract) {
  const Graph g = path(3);
  EXPECT_THROW(run_slocal<int>(g, std::vector<int>(3, 0), {0, 1},
                               [](SLocalView<int>&) {}),
               ContractViolation);
  EXPECT_THROW(run_slocal<int>(g, std::vector<int>(2, 0), {0, 1, 2},
                               [](SLocalView<int>&) {}),
               ContractViolation);
}

}  // namespace
}  // namespace pslocal
