#include "mis/repair.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "hypergraph/generators.hpp"
#include "mis/greedy_maxis.hpp"
#include "mis/independent_set.hpp"
#include "util/rng.hpp"

namespace pslocal {
namespace {

std::vector<VertexId> symmetric_difference(const std::vector<VertexId>& a,
                                           const std::vector<VertexId>& b) {
  std::vector<VertexId> out;
  std::set_symmetric_difference(a.begin(), a.end(), b.begin(), b.end(),
                                std::back_inserter(out));
  return out;
}

TEST(MisRepairTest, RemapSurvivingDropsRemovedIds) {
  std::vector<TripleId> remap = {0, DynamicConflictGraph::kRemoved, 1,
                                 DynamicConflictGraph::kRemoved, 2};
  std::size_t dropped = 0;
  const auto out = remap_surviving({0, 1, 2, 4}, remap, &dropped);
  EXPECT_EQ(out, (std::vector<VertexId>{0, 1, 2}));
  EXPECT_EQ(dropped, 1u);
}

TEST(MisRepairTest, EmptyDirtyIsANoOp) {
  const Hypergraph h(4, {{0, 1}, {2, 3}});
  const DynamicConflictGraph dyn(h, 2);
  const auto mis = greedy_min_degree_maxis(dyn.snapshot());
  const auto rep = repair_mis(dyn, mis, {});
  EXPECT_EQ(rep.mis, mis);
  EXPECT_TRUE(rep.ball.empty());
  EXPECT_TRUE(rep.removed.empty());
  EXPECT_TRUE(rep.added.empty());
}

TEST(MisRepairTest, PhaseARemovesSeededConflicts) {
  // One hyperedge, k = 2: the 4 triples form a clique.  Seed an invalid
  // "MIS" of two members; repair must drop the larger id and keep a
  // single member (maximal in a clique).
  const Hypergraph h(2, {{0, 1}});
  const DynamicConflictGraph dyn(h, 2);
  std::vector<TripleId> dirty(dyn.triple_count());
  for (TripleId t = 0; t < dirty.size(); ++t) dirty[t] = t;
  const auto rep = repair_mis(dyn, {0, 3}, dirty);
  EXPECT_EQ(rep.mis, (std::vector<VertexId>{0}));
  EXPECT_EQ(rep.removed, (std::vector<VertexId>{3}));
}

TEST(MisRepairTest, RepairedSetStaysMaximalAndLocalUnderRandomScripts) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    PlantedCfParams params;
    params.n = 12;
    params.m = 9;
    params.k = 2;
    auto inst = planted_cf_colorable(params, rng);
    DynamicConflictGraph dyn(inst.hypergraph, inst.k);
    auto mis = greedy_min_degree_maxis(dyn.snapshot());
    std::sort(mis.begin(), mis.end());

    for (int step = 0; step < 8; ++step) {
      // Random valid edit: remove a random edge or duplicate one.
      Mutation mut;
      if (dyn.edge_count() > 2 && rng.next_bool(0.5)) {
        mut = Mutation::remove_edge(
            static_cast<EdgeId>(rng.next_below(dyn.edge_count())));
      } else {
        const auto src = dyn.hyperedge(
            static_cast<EdgeId>(rng.next_below(dyn.edge_count())));
        mut = Mutation::add_edge({src.begin(), src.end()});
      }
      const auto delta = dyn.apply(mut);
      std::size_t dropped = 0;
      const auto survivors = remap_surviving(mis, delta.remap, &dropped);
      const auto rep = repair_mis(dyn, survivors, delta.dirty);

      const Graph g = dyn.snapshot();
      EXPECT_TRUE(is_independent_set(g, rep.mis));
      EXPECT_TRUE(is_maximal_independent_set(g, rep.mis))
          << "seed " << seed << " step " << step << " mut " << describe(mut);
      // Locality: everything that changed relative to the carried-over
      // set lies inside the reported repair ball.
      for (const VertexId v : symmetric_difference(survivors, rep.mis))
        EXPECT_TRUE(std::binary_search(rep.ball.begin(), rep.ball.end(), v))
            << "vertex " << v << " changed outside the ball";
      EXPECT_LE(rep.mis.size(), dyn.independence_upper_bound());
      mis = rep.mis;
    }
  }
}

}  // namespace
}  // namespace pslocal
