#include "local/linial_coloring.hpp"

#include <gtest/gtest.h>

#include "coloring/coloring.hpp"
#include "graph/generators.hpp"
#include "local/from_coloring.hpp"

namespace pslocal {
namespace {

TEST(PrimeHelperTest, NextPrimeAbove) {
  EXPECT_EQ(next_prime_above(0), 2u);
  EXPECT_EQ(next_prime_above(2), 3u);
  EXPECT_EQ(next_prime_above(3), 5u);
  EXPECT_EQ(next_prime_above(13), 17u);
  EXPECT_EQ(next_prime_above(100), 101u);
}

class LinialFamilyTest : public ::testing::TestWithParam<std::size_t> {};

// One Linial step makes progress whenever R > max(64, 16 (Δ+1)^2): with
// degree d = 2, q = nextprime(max(2Δ+1, R^{1/3})) <= 2 max(2Δ+1, R^{1/3})
// (Bertrand), and q^2 < R follows.  So the algorithm must only ever stop
// at ranges below that threshold — the Θ(Δ² polylog) fixed point.
bool progress_possible(std::size_t range, std::size_t delta) {
  return range > std::max<std::size_t>(64, 16 * (delta + 1) * (delta + 1));
}

TEST_P(LinialFamilyTest, ReachesTheDeltaSquaredFixedPoint) {
  const std::size_t n = GetParam();
  Rng rng(n);
  const std::vector<Graph> graphs = {
      ring(n),
      random_tree(n, rng),
      gnp(n, 3.0 / static_cast<double>(n), rng),
  };
  for (const auto& g : graphs) {
    const auto res = linial_coloring(g);
    EXPECT_TRUE(is_proper_coloring(g, res.coloring));
    for (auto c : res.coloring) EXPECT_LT(c, res.colors_range);
    // Stopped at a genuine fixed point.
    EXPECT_FALSE(progress_possible(res.colors_range, g.max_degree()));
    // The range trace is strictly decreasing after the start.
    for (std::size_t i = 1; i < res.range_trace.size(); ++i)
      EXPECT_LT(res.range_trace[i], res.range_trace[i - 1]);
    // Rounds = number of reduction steps (log*-ish, single digits here).
    EXPECT_EQ(res.rounds, res.range_trace.size() - 1);
    EXPECT_LE(res.rounds, 8u);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LinialFamilyTest,
                         ::testing::Values(32, 64, 128, 256, 512));

TEST(LinialTest, BoundedDegreeRangeIsDeltaPolylog) {
  // On a ring (Δ = 2) the fixed point is a constant range.
  const auto res = linial_coloring(ring(512));
  EXPECT_LE(res.colors_range, 64u);
}

TEST(LinialTest, RoundsGrowVerySlowly) {
  // log*-type behaviour: going 64 -> 4096 vertices adds at most 2 steps.
  const auto small = linial_coloring(ring(64));
  const auto large = linial_coloring(ring(4096));
  EXPECT_LE(large.rounds, small.rounds + 2);
}

TEST(LinialTest, EmptyAndTinyGraphs) {
  EXPECT_TRUE(linial_coloring(Graph{}).coloring.empty());
  const Graph single = Graph::from_edges(1, {});
  const auto res = linial_coloring(single);
  EXPECT_EQ(res.coloring.size(), 1u);
}

TEST(LinialPipelineTest, LinialPlusReductionGivesDeltaPlusOne) {
  Rng rng(5);
  const Graph g = gnp(128, 4.0 / 128.0, rng);
  const auto linial = linial_coloring(g);
  const auto reduced = color_reduction(g, linial.coloring);
  EXPECT_TRUE(is_proper_coloring(g, reduced.coloring));
  EXPECT_LE(color_count(reduced.coloring), g.max_degree() + 1);
  // One round per eliminated class: at most range - (Δ+1) rounds.
  EXPECT_LE(reduced.rounds + g.max_degree() + 1, linial.colors_range);
}

TEST(LinialPipelineTest, LinialPlusMisIsDeterministicMis) {
  Rng rng(6);
  const Graph g = gnp(96, 5.0 / 96.0, rng);
  const auto linial = linial_coloring(g);
  const auto reduced = color_reduction(g, linial.coloring);
  const auto mis = mis_from_coloring(g, reduced.coloring);
  EXPECT_LE(mis.rounds, g.max_degree() + 1);
  // Determinism: the pipeline has no randomness at all.
  const auto mis2 =
      mis_from_coloring(g, color_reduction(g, linial_coloring(g).coloring)
                               .coloring);
  EXPECT_EQ(mis.independent_set, mis2.independent_set);
}

}  // namespace
}  // namespace pslocal
