#include "mis/tree_maxis.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "mis/exact_maxis.hpp"
#include "mis/independent_set.hpp"

namespace pslocal {
namespace {

TEST(ForestCheckTest, Classification) {
  Rng rng(1);
  EXPECT_TRUE(is_forest(path(10)));
  EXPECT_TRUE(is_forest(random_tree(50, rng)));
  EXPECT_TRUE(is_forest(Graph::from_edges(5, {})));
  EXPECT_TRUE(is_forest(Graph::from_edges(6, {{0, 1}, {2, 3}, {3, 4}})));
  EXPECT_FALSE(is_forest(ring(5)));
  EXPECT_FALSE(is_forest(complete(4)));
}

TEST(TreeMaxISTest, KnownValues) {
  EXPECT_EQ(tree_independence_number(path(1)), 1u);
  EXPECT_EQ(tree_independence_number(path(2)), 1u);
  EXPECT_EQ(tree_independence_number(path(9)), 5u);
  // Star: all leaves.
  GraphBuilder b(8);
  for (VertexId leaf = 1; leaf < 8; ++leaf) b.add_edge(0, leaf);
  EXPECT_EQ(tree_independence_number(b.build()), 7u);
  // Spider with three legs of length 2: alpha = 4 (leg tips + ... ).
  GraphBuilder s(7);
  s.add_edge(0, 1);
  s.add_edge(1, 2);
  s.add_edge(0, 3);
  s.add_edge(3, 4);
  s.add_edge(0, 5);
  s.add_edge(5, 6);
  EXPECT_EQ(tree_independence_number(s.build()), 4u);
}

TEST(TreeMaxISTest, ForestsWithIsolatedVertices) {
  const Graph g = Graph::from_edges(7, {{0, 1}, {3, 4}, {4, 5}});
  // alpha = 1 (of {0,1}) + 2 (of path {3,4,5}) + isolated {2, 6} = 5.
  EXPECT_EQ(tree_independence_number(g), 5u);
  const auto set = tree_maxis(g);
  EXPECT_TRUE(is_independent_set(g, set));
}

class TreeVsExactTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreeVsExactTest, MatchesBranchAndBoundOnRandomTrees) {
  Rng rng(GetParam());
  for (std::size_t n : {10u, 25u, 60u}) {
    const Graph g = random_tree(n, rng);
    const auto dp_set = tree_maxis(g);
    EXPECT_TRUE(is_independent_set(g, dp_set));
    EXPECT_EQ(dp_set.size(), independence_number(g)) << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeVsExactTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(TreeMaxISTest, LargeTreeIsFast) {
  Rng rng(9);
  const Graph g = random_tree(20000, rng);
  const auto set = tree_maxis(g);
  EXPECT_TRUE(is_independent_set(g, set));
  EXPECT_GE(set.size(), 10000u);  // alpha >= n/2 on any tree
}

TEST(TreeMaxISTest, NonForestViolatesContract) {
  EXPECT_THROW(tree_maxis(ring(4)), ContractViolation);
}

}  // namespace
}  // namespace pslocal
