#include "core/correspondence.hpp"

#include <gtest/gtest.h>

#include "hypergraph/generators.hpp"
#include "mis/exact_maxis.hpp"
#include "mis/greedy_maxis.hpp"
#include "mis/independent_set.hpp"

namespace pslocal {
namespace {

struct InstanceCase {
  std::size_t n, m, k;
};

PlantedCfInstance make_instance(const InstanceCase& c, std::uint64_t seed) {
  Rng rng(seed);
  PlantedCfParams params;
  params.n = c.n;
  params.m = c.m;
  params.k = c.k;
  return planted_cf_colorable(params, rng);
}

class LemmaATest : public ::testing::TestWithParam<InstanceCase> {};

TEST_P(LemmaATest, InducedSetIsMaximumOfSizeM) {
  const auto inst = make_instance(GetParam(), 90 + GetParam().n);
  const ConflictGraph cg(inst.hypergraph, inst.k);
  const CfColoring f(inst.planted_coloring);

  const auto report = check_lemma_a(cg, f);
  EXPECT_TRUE(report.applicable);
  EXPECT_TRUE(report.independent);
  EXPECT_EQ(report.is_size, inst.hypergraph.edge_count());
  EXPECT_TRUE(report.attains_maximum);
}

TEST_P(LemmaATest, ExactAlphaEqualsEdgeCount) {
  // Lemma 2.1 a) + the E_edge clique bound pin alpha(G_k) to exactly m.
  const auto inst = make_instance(GetParam(), 190 + GetParam().n);
  const ConflictGraph cg(inst.hypergraph, inst.k);
  EXPECT_EQ(independence_number(cg.graph()), inst.hypergraph.edge_count());
}

INSTANTIATE_TEST_SUITE_P(Sweep, LemmaATest,
                         ::testing::Values(InstanceCase{12, 4, 2},
                                           InstanceCase{16, 6, 2},
                                           InstanceCase{18, 8, 3},
                                           InstanceCase{24, 10, 3},
                                           InstanceCase{20, 5, 4}));

class LemmaBTest : public ::testing::TestWithParam<InstanceCase> {};

TEST_P(LemmaBTest, RandomIndependentSetsSatisfyLemmaB) {
  const auto inst = make_instance(GetParam(), 290 + GetParam().n);
  const ConflictGraph cg(inst.hypergraph, inst.k);
  Rng rng(17 + GetParam().m);
  for (int rep = 0; rep < 10; ++rep) {
    // Random greedy MIS, then a random subset of it (still independent).
    RandomGreedyOracle oracle(rng.next_u64());
    auto is = oracle.solve(cg.graph());
    std::vector<VertexId> subset;
    for (VertexId t : is)
      if (rng.next_bool(0.6)) subset.push_back(t);

    for (const auto& candidate : {is, subset}) {
      const auto report = check_lemma_b(cg, candidate);
      EXPECT_TRUE(report.independent);
      EXPECT_TRUE(report.well_defined);
      EXPECT_TRUE(report.happy_at_least_is_size)
          << "|I|=" << report.is_size << " happy=" << report.happy_count;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LemmaBTest,
                         ::testing::Values(InstanceCase{16, 8, 2},
                                           InstanceCase{24, 16, 3},
                                           InstanceCase{32, 24, 4},
                                           InstanceCase{40, 30, 3}));

TEST(CorrespondenceTest, RoundTripThroughColoring) {
  const auto inst = make_instance({20, 8, 3}, 7);
  const ConflictGraph cg(inst.hypergraph, 3);
  const CfColoring f(inst.planted_coloring);
  const auto is = is_from_coloring(cg, f);
  ASSERT_EQ(is.size(), inst.hypergraph.edge_count());
  // The induced coloring of I_f agrees with f on every vertex it colors.
  const auto induced = coloring_from_is(cg, is);
  EXPECT_TRUE(induced.well_defined);
  for (VertexId v = 0; v < inst.hypergraph.vertex_count(); ++v) {
    if (induced.coloring[v] != kCfUncolored) {
      EXPECT_EQ(induced.coloring[v], f[v]);
    }
  }
}

TEST(CorrespondenceTest, NonIndependentInputDetectedAsIllDefined) {
  // Two triples (e,v,c), (g,v,d) with c != d force ill-definedness.
  const Hypergraph h(3, {{0, 1}, {1, 2}});
  const ConflictGraph cg(h, 2);
  const std::vector<VertexId> bad{
      static_cast<VertexId>(cg.triple_id(0, 1, 1)),
      static_cast<VertexId>(cg.triple_id(1, 1, 2))};
  EXPECT_FALSE(is_independent_set(cg.graph(), bad));  // E_vertex edge
  const auto induced = coloring_from_is(cg, bad);
  EXPECT_FALSE(induced.well_defined);
  const auto report = check_lemma_b(cg, bad);
  EXPECT_FALSE(report.independent);
  EXPECT_FALSE(report.well_defined);
}

TEST(CorrespondenceTest, UnhappyEdgeViolatesIsFromColoringContract) {
  const Hypergraph h(2, {{0, 1}});
  const ConflictGraph cg(h, 2);
  const CfColoring monochrome{1, 1};
  EXPECT_THROW(is_from_coloring(cg, monochrome), ContractViolation);
}

TEST(CorrespondenceTest, ColorOutsidePaletteViolatesContract) {
  const Hypergraph h(2, {{0, 1}});
  const ConflictGraph cg(h, 2);
  const CfColoring f{3, kCfUncolored};  // color 3 > k = 2
  EXPECT_THROW(is_from_coloring(cg, f), ContractViolation);
}

TEST(CorrespondenceTest, LemmaAReportsInapplicableColorings) {
  const auto inst = make_instance({16, 6, 2}, 11);
  const ConflictGraph cg(inst.hypergraph, 2);
  // All-one coloring cannot be conflict free (every edge has >= 2 nodes).
  const CfColoring bad(inst.hypergraph.vertex_count(), 1);
  const auto report = check_lemma_a(cg, bad);
  EXPECT_FALSE(report.applicable);
  // Out-of-palette coloring is inapplicable too.
  CfColoring oops(inst.planted_coloring);
  oops[0] = 99;
  EXPECT_FALSE(check_lemma_a(cg, oops).applicable);
}

// --- Degenerate shapes of Lemma 2.1: the reduction never produces them,
// but the correspondence maps must still be total on them.

TEST(CorrespondenceTest, EmptyHypergraphIsTriviallyMaximum) {
  const Hypergraph h(0, {});
  const ConflictGraph cg(h, 2);
  EXPECT_EQ(cg.triple_count(), 0u);
  // The empty coloring is vacuously conflict-free; I_f is empty and
  // attains the (zero) maximum m = 0.
  const auto a = check_lemma_a(cg, CfColoring{});
  EXPECT_TRUE(a.applicable);
  EXPECT_TRUE(a.independent);
  EXPECT_EQ(a.is_size, 0u);
  EXPECT_EQ(a.m, 0u);
  EXPECT_TRUE(a.attains_maximum);
  const auto b = check_lemma_b(cg, {});
  EXPECT_TRUE(b.independent);
  EXPECT_TRUE(b.well_defined);
  EXPECT_TRUE(b.happy_at_least_is_size);
}

TEST(CorrespondenceTest, VerticesWithoutEdgesAreIrrelevant) {
  // Isolated vertices contribute no triples and no constraints.
  const Hypergraph h(5, {});
  const ConflictGraph cg(h, 3);
  EXPECT_EQ(cg.triple_count(), 0u);
  const auto a = check_lemma_a(cg, CfColoring(5, kCfUncolored));
  EXPECT_TRUE(a.applicable);
  EXPECT_TRUE(a.attains_maximum);
}

TEST(CorrespondenceTest, SingleEdgeRoundTrip) {
  const Hypergraph h(3, {{0, 1, 2}});
  const ConflictGraph cg(h, 2);
  // One colored vertex makes the single edge happy; the rest stay ⊥.
  const CfColoring f{1, kCfUncolored, kCfUncolored};
  const auto a = check_lemma_a(cg, f);
  EXPECT_TRUE(a.applicable);
  EXPECT_EQ(a.is_size, 1u);
  EXPECT_EQ(a.m, 1u);
  EXPECT_TRUE(a.attains_maximum);
  const auto is = is_from_coloring(cg, f);
  ASSERT_EQ(is.size(), 1u);
  const auto induced = coloring_from_is(cg, is);
  EXPECT_TRUE(induced.well_defined);
  EXPECT_EQ(induced.coloring[0], 1u);
  EXPECT_EQ(induced.coloring[1], kCfUncolored);
  EXPECT_EQ(induced.coloring[2], kCfUncolored);
}

TEST(CorrespondenceTest, RankOneEdgesRoundTripWithUnitPalette) {
  // Rank-1 edges {v} are happy iff v is colored; k = 1 suffices and the
  // correspondence degenerates to the identity on edges.
  const Hypergraph h(3, {{0}, {2}});
  const ConflictGraph cg(h, 1);
  EXPECT_EQ(cg.triple_count(), 2u);  // k * sum |e|
  const CfColoring f{1, kCfUncolored, 1};
  const auto a = check_lemma_a(cg, f);
  EXPECT_TRUE(a.applicable);
  EXPECT_EQ(a.is_size, 2u);
  EXPECT_TRUE(a.attains_maximum);
  const auto is = is_from_coloring(cg, f);
  const auto induced = coloring_from_is(cg, is);
  EXPECT_TRUE(induced.well_defined);
  EXPECT_EQ(induced.coloring[0], 1u);
  EXPECT_EQ(induced.coloring[2], 1u);
  const auto b = check_lemma_b(cg, is);
  EXPECT_TRUE(b.independent);
  EXPECT_EQ(b.happy_count, 2u);
}

TEST(CorrespondenceTest, EmptyIndependentSetInducesEmptyColoring) {
  const auto inst = make_instance({16, 6, 2}, 13);
  const ConflictGraph cg(inst.hypergraph, 2);
  const auto report = check_lemma_b(cg, {});
  EXPECT_TRUE(report.independent);
  EXPECT_TRUE(report.well_defined);
  EXPECT_TRUE(report.happy_at_least_is_size);
  EXPECT_EQ(report.is_size, 0u);
}

}  // namespace
}  // namespace pslocal
