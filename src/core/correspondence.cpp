#include "core/correspondence.hpp"

#include <algorithm>

#include "mis/independent_set.hpp"
#include "util/check.hpp"

namespace pslocal {

InducedColoring coloring_from_is(
    const ConflictGraph& cg, const std::vector<VertexId>& independent_set) {
  const Hypergraph& h = cg.hypergraph();
  InducedColoring out;
  out.coloring.assign(h.vertex_count(), kCfUncolored);
  for (VertexId t : independent_set) {
    const Triple tr = cg.triple(t);
    if (out.coloring[tr.v] != kCfUncolored && out.coloring[tr.v] != tr.c)
      out.well_defined = false;
    out.coloring[tr.v] = tr.c;
  }
  return out;
}

std::vector<VertexId> is_from_coloring(const ConflictGraph& cg,
                                       const CfColoring& f) {
  const Hypergraph& h = cg.hypergraph();
  PSL_EXPECTS(f.size() == h.vertex_count());
  std::vector<VertexId> result;
  result.reserve(h.edge_count());
  for (EdgeId e = 0; e < h.edge_count(); ++e) {
    // Smallest vertex of e whose (non-⊥) color occurs exactly once in e.
    const auto verts = h.edge(e);
    VertexId witness = h.vertex_count();  // sentinel
    for (VertexId v : verts) {
      if (f[v] == kCfUncolored) continue;
      const auto same_color =
          std::count_if(verts.begin(), verts.end(),
                        [&](VertexId u) { return f[u] == f[v]; });
      if (same_color == 1) {
        witness = v;
        break;  // verts sorted: first hit is the smallest
      }
    }
    PSL_EXPECTS_MSG(witness != h.vertex_count(),
                    "edge " << e << " is not happy under f");
    PSL_EXPECTS_MSG(f[witness] >= 1 && f[witness] <= cg.k(),
                    "color " << f[witness] << " outside palette [1, "
                             << cg.k() << "]");
    result.push_back(
        static_cast<VertexId>(cg.triple_id(e, witness, f[witness])));
  }
  return result;
}

LemmaAReport check_lemma_a(const ConflictGraph& cg, const CfColoring& f) {
  const Hypergraph& h = cg.hypergraph();
  LemmaAReport report;
  report.m = h.edge_count();

  const bool colors_in_palette = std::all_of(
      f.begin(), f.end(), [&](std::size_t c) { return c <= cg.k(); });
  report.applicable = colors_in_palette && is_conflict_free(h, f);
  if (!report.applicable) return report;

  const auto is = is_from_coloring(cg, f);
  report.independent = is_independent_set(cg.graph(), is);
  report.is_size = is.size();
  report.attains_maximum =
      report.independent && is.size() == report.m &&
      report.m == cg.independence_upper_bound();
  return report;
}

LemmaBReport check_lemma_b(const ConflictGraph& cg,
                           const std::vector<VertexId>& independent_set) {
  LemmaBReport report;
  report.independent = is_independent_set(cg.graph(), independent_set);
  report.is_size = independent_set.size();
  const auto induced = coloring_from_is(cg, independent_set);
  report.well_defined = induced.well_defined;
  report.happy_count = happy_edge_count(cg.hypergraph(), induced.coloring);
  report.happy_at_least_is_size = report.happy_count >= report.is_size;
  return report;
}

}  // namespace pslocal
