// Delta-maintained conflict graph: G_k patched in place per mutation
// instead of rebuilt from scratch.
//
// Why edge-local patching is *exact* here: every G_k edge class
// (core/conflict_graph.hpp) is defined by a predicate that references
// only the two endpoint triples' own hyperedges —
//
//   E_vertex {(e,v,c),(g,v,d)}  mentions e and g,
//   E_edge   {(e,v,c),(e,u,d)}  mentions e,
//   E_color  {(e,v,c),(g,u,c)}  mentions e and g ({u,v} ⊆ e or ⊆ g).
//
// So every G_k edge created or destroyed by mutating hyperedge e is
// incident to a triple of e.  A mutation therefore removes the triple
// blocks of the touched hyperedges, renumbers the survivors (their
// adjacency is *remapped*, never re-derived), and re-enumerates
// candidate neighbors only for the fresh blocks — the same three-class
// enumeration ConflictGraph runs globally, restricted to the ball around
// the edit.  remove_vertex is handled as "remove the old edge block,
// re-attach the shrunk edge at the same position", which keeps one
// endpoint of every affected pair inside a touched block.
//
// The renumbering pass is O(|G_k|) (a linear remap of the survivor
// adjacency); what the delta path saves is the candidate enumeration and
// sort over the whole graph — and, one level up, MIS *repair*
// (mis/repair.hpp) instead of a full re-solve.
//
// Canonical layout is identical to ConflictGraph: incidence pairs (e, v)
// laid out edge-by-edge in sorted-vertex order, triple_id =
// pair * k + (c - 1).  snapshot() must equal a fresh
// ConflictGraph(hypergraph(), k).graph() after every mutation, and
// graph_hash() streams exactly hash_graph's encoding — both are pinned
// by tests and the mis_repair_vs_recompute qc differential.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/conflict_graph.hpp"
#include "hypergraph/mutation.hpp"
#include "runtime/global.hpp"

namespace pslocal {

class DynamicConflictGraph {
 public:
  /// remap[] value for triples dropped by a mutation.
  static constexpr TripleId kRemoved = static_cast<TripleId>(-1);

  DynamicConflictGraph() = default;

  /// Seed from a hypergraph (builds G_k once via ConflictGraph).
  explicit DynamicConflictGraph(const Hypergraph& h, std::size_t k,
                                runtime::Scheduler& sched =
                                    runtime::global_scheduler());

  /// Seed from an already-built conflict graph (no rebuild).
  explicit DynamicConflictGraph(const ConflictGraph& cg);

  [[nodiscard]] std::size_t k() const { return k_; }
  [[nodiscard]] std::size_t vertex_count() const { return n_; }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }
  [[nodiscard]] std::size_t triple_count() const { return adj_.size(); }
  [[nodiscard]] std::size_t gk_edge_count() const { return gk_edges_; }

  [[nodiscard]] std::span<const VertexId> hyperedge(EdgeId e) const {
    PSL_EXPECTS(e < edges_.size());
    return edges_[e];
  }

  [[nodiscard]] std::span<const TripleId> neighbors(TripleId t) const {
    PSL_EXPECTS(t < adj_.size());
    return *adj_[t];
  }

  /// Decode a triple id under the current layout.
  [[nodiscard]] Triple triple(TripleId t) const;

  /// What one mutation did to the triple id space and the edge set.
  struct Delta {
    /// Pre-mutation ids of dropped triples (blocks of deleted and
    /// content-changed hyperedges), ascending.
    std::vector<TripleId> removed;
    /// Post-mutation ids of fresh triples (blocks of appended and
    /// content-changed hyperedges), ascending.
    std::vector<TripleId> added;
    /// Post-mutation ids whose adjacency changed — fresh triples plus
    /// survivors that lost or gained a neighbor.  This is the dirty
    /// region MIS repair re-solves around.  Ascending.
    std::vector<TripleId> dirty;
    /// Old triple id -> new triple id; kRemoved for dropped triples.
    /// Strictly increasing over survivors (sorted lists stay sorted
    /// under remapping).
    std::vector<TripleId> remap;
    std::size_t gk_edges_removed = 0;
    std::size_t gk_edges_added = 0;
  };

  /// Apply one mutation; PSL_CHECKs validate_mutation.
  Delta apply(const Mutation& mut);

  /// Materialize the current hypergraph (reference semantics: equals
  /// apply_script(base, script-so-far)).
  [[nodiscard]] Hypergraph hypergraph() const;

  /// == hash_hypergraph(hypergraph()), streamed without materializing.
  [[nodiscard]] std::uint64_t content_hash() const;

  /// Materialize the current G_k; must equal
  /// ConflictGraph(hypergraph(), k).graph() bit for bit.
  [[nodiscard]] Graph snapshot(runtime::Scheduler& sched =
                                   runtime::global_scheduler()) const;

  /// == hash_graph(snapshot()), streamed without materializing.
  [[nodiscard]] std::uint64_t graph_hash() const;

  /// alpha(G_k) <= current edge count (the E_edge cliques partition
  /// V(G_k) into m cliques; see ConflictGraph::independence_upper_bound).
  [[nodiscard]] std::size_t independence_upper_bound() const {
    return edges_.size();
  }

  /// How many adjacency rows this graph shares (pointer-identical row
  /// storage) with `other`, compared position-wise over the common id
  /// range.  Copies share every row; apply() reallocates only the rows a
  /// mutation actually rewrites, so this is the structural-sharing probe
  /// the session-store memory pin reads.
  [[nodiscard]] std::size_t shared_rows_with(
      const DynamicConflictGraph& other) const;

 private:
  /// One adjacency row, shared copy-on-write across graph copies.  The
  /// session store keeps many MutationStates that differ by a script
  /// suffix; sharing unchanged rows makes a stored copy cost O(rows the
  /// divergent suffix rewrites), not O(|G_k|).  Rows are immutable once
  /// published — apply() builds replacements and swaps pointers.
  using Row = std::shared_ptr<const std::vector<TripleId>>;

  void rebuild_incidence();
  void rebuild_pair_offsets();
  [[nodiscard]] std::size_t pair_of(EdgeId e, VertexId v) const;
  void collect_fresh_neighbors(EdgeId e,
                               std::vector<std::uint64_t>& pairs) const;

  std::size_t n_ = 0;
  std::size_t k_ = 1;
  std::vector<std::vector<VertexId>> edges_;    // sorted vertex lists
  std::vector<std::vector<EdgeId>> incidence_;  // vertex -> edges, ascending
  std::vector<std::size_t> pair_offset_;        // edge -> first pair (m+1)
  std::vector<Row> adj_;  // triple -> sorted neighbors (COW rows)
  std::size_t gk_edges_ = 0;
};

}  // namespace pslocal
