// Local simulability of the conflict graph (paper, Section 2):
//
//   "The conflict graph G_k can be efficiently simulated in H in the
//    LOCAL model."
//
// The witness is the host mapping host((e, v, c)) = v: every triple is a
// virtual node hosted by its middle hypergraph vertex.  For *every* class
// of conflict-graph edges the two hosts coincide or share a hyperedge:
//   E_vertex: same host (distance 0);
//   E_edge:   u, v ∈ e, so hosts are adjacent in the primal graph;
//   E_color:  {u, v} ⊆ e or ⊆ g, ditto.
// Hence the dilation of the mapping into H's communication (primal) graph
// is at most 1 and one G_k round is simulated in one H round (messages are
// unbounded, so hosting many triples costs no extra rounds).  Experiment
// E9 measures exactly this.
#pragma once

#include <cstddef>

#include "core/conflict_graph.hpp"

namespace pslocal {

struct HostMappingReport {
  std::size_t host_count = 0;     // |V(H)|
  std::size_t triple_count = 0;   // |V(G_k)|
  std::size_t max_load = 0;       // most triples on one host
  double avg_load = 0.0;          // triple_count / hosts with load
  std::size_t max_dilation = 0;   // max primal-distance between edge hosts
  bool one_round_simulable = false;  // max_dilation <= 1
  /// Rounds of H needed per round of G_k under this mapping.
  std::size_t rounds_per_simulated_round = 0;
};

/// Analyze the host mapping host((e,v,c)) = v against H's primal graph.
HostMappingReport analyze_host_mapping(const ConflictGraph& cg);

}  // namespace pslocal
