// The Theorem 1.1 reduction executed as a distributed LOCAL computation
// on the hypergraph's own communication graph — the form the proof
// actually speaks about:
//
//   "In phase i we use the hypergraph H_i = (V, E_i) to build the
//    conflict graph G_k^i.  G_k^i has polynomially many nodes and edges
//    and can be simulated locally.  Then we compute an independent set
//    I_i of G_k^i ..."
//
// Per phase, this driver:
//   1. hosts G_k^i on H's primal graph (host((e,v,c)) = v) and runs
//      Luby's MIS *through the hosts* (core/virtual_local.hpp), paying
//      one physical round per virtual round (dilation 1);
//   2. lets every host color itself from its own triples in I_i — a
//      purely local step (f_I is host-local by construction);
//   3. detects happy edges with one exchange among each edge's members
//      (1 physical round: members are pairwise adjacent in the primal
//      graph) and removes them.
//
// The result carries the total physical-round bill
//   sum over phases of (luby rounds + 1 happy-detection round)
// and the bandwidth figures, and is verified against the same
// conflict-freeness checks as the centralized runner.  An MIS is only a
// (Δ+1)-approximation in general, but on conflict graphs Luby's output is
// empirically near-maximum (E6), so phase counts stay small; the
// *guaranteed* polylog route would plug a λ-approximation with proven λ
// into the same loop.
#pragma once

#include <cstdint>
#include <vector>

#include "coloring/conflict_free.hpp"
#include "hypergraph/hypergraph.hpp"

namespace pslocal {

struct DistributedPhaseStats {
  std::size_t phase = 0;
  std::size_t edges_before = 0;
  std::size_t virtual_nodes = 0;       // |V(G_k^i)|
  std::size_t luby_rounds = 0;         // virtual == physical (dilation 1)
  std::size_t is_size = 0;
  std::size_t happy_removed = 0;
  std::size_t max_message_bytes = 0;   // largest bundled host message
};

struct DistributedReductionResult {
  CfMulticoloring coloring;
  bool success = false;
  std::size_t phases = 0;
  std::size_t total_physical_rounds = 0;  // Luby rounds + detection rounds
  std::size_t colors_used = 0;
  std::vector<DistributedPhaseStats> trace;
};

/// Run the distributed reduction with palette size k per phase.
/// `seed` drives the per-phase Luby runs; `max_phases` caps the loop
/// (0 = edge count + 1, always sufficient for MIS oracles).
DistributedReductionResult distributed_cf_multicoloring(
    const Hypergraph& h, std::size_t k, std::uint64_t seed,
    std::size_t max_phases = 0);

/// The *deterministic* distributed variant — the derandomization payoff
/// the paper's completeness result is about, realized end to end with the
/// machinery this library has:
///
/// Per phase the oracle is the SLOCAL(1) greedy MIS on G_k^i, compiled to
/// a deterministic LOCAL algorithm via a network decomposition of
/// (G_k^i)^3 (local/slocal_compiler.hpp); the returned bill is the
/// compiler's round count plus one detection round per phase.  Zero
/// random bits anywhere.
struct DeterministicPhaseStats {
  std::size_t phase = 0;
  std::size_t edges_before = 0;
  std::size_t virtual_nodes = 0;
  std::size_t compiled_rounds = 0;       // compiler round bill on G_k^i
  std::size_t decomposition_colors = 0;  // C of the ND used
  std::size_t is_size = 0;
  std::size_t happy_removed = 0;
};

struct DeterministicDistributedResult {
  CfMulticoloring coloring;
  bool success = false;
  std::size_t phases = 0;
  std::size_t total_round_bill = 0;
  std::size_t colors_used = 0;
  std::vector<DeterministicPhaseStats> trace;
};

DeterministicDistributedResult deterministic_distributed_cf_multicoloring(
    const Hypergraph& h, std::size_t k, std::size_t max_phases = 0);

}  // namespace pslocal
