// The coloring <-> independent-set correspondence of Lemma 2.1.
//
//   a) Any conflict-free k-coloring f of H induces a *maximum* independent
//      set I_f of the conflict graph G_k, of size m = |E(H)|.
//   b) For any independent set I of G_k the induced coloring f_I is well
//      defined and at least |I| edges of H are happy in f_I.
//
// These two maps are what the Theorem 1.1 reduction pumps through every
// phase; the check_* functions re-verify every clause of the lemma on
// concrete objects and power experiments E2/E3 and the per-phase
// verification mode of the reduction.
#pragma once

#include <vector>

#include "coloring/conflict_free.hpp"
#include "core/conflict_graph.hpp"

namespace pslocal {

/// f_I of Lemma 2.1 (Equation (1)): f_I(v) = c if some (e, v, c) ∈ I,
/// ⊥ otherwise.
struct InducedColoring {
  CfColoring coloring;
  bool well_defined = true;  // false iff two triples assign v different colors
};

/// Compute f_I.  For a valid independent set well_defined is always true
/// (E_vertex forbids two colors per vertex); invalid inputs are reported,
/// not rejected, so tests can probe the failure mode.
InducedColoring coloring_from_is(const ConflictGraph& cg,
                                 const std::vector<VertexId>& independent_set);

/// I_f of Lemma 2.1 a): one triple (e, v, f(v)) per edge e, where v is a
/// vertex whose color is unique in e (smallest such v — the paper breaks
/// ties arbitrarily).  Precondition: every edge of H is happy under f and
/// every used color is in [1, k].
std::vector<VertexId> is_from_coloring(const ConflictGraph& cg,
                                       const CfColoring& f);

struct LemmaAReport {
  bool applicable = false;      // f is a CF coloring of H with colors <= k
  bool independent = false;     // I_f is an independent set of G_k
  std::size_t is_size = 0;
  std::size_t m = 0;
  bool attains_maximum = false;  // |I_f| == m == alpha upper bound
};
/// Verify every clause of Lemma 2.1 a) for a concrete coloring.
LemmaAReport check_lemma_a(const ConflictGraph& cg, const CfColoring& f);

struct LemmaBReport {
  bool independent = false;   // the input really is an IS (precondition)
  bool well_defined = false;  // f_I assigns at most one color per vertex
  std::size_t is_size = 0;
  std::size_t happy_count = 0;
  bool happy_at_least_is_size = false;
};
/// Verify every clause of Lemma 2.1 b) for a concrete independent set.
LemmaBReport check_lemma_b(const ConflictGraph& cg,
                           const std::vector<VertexId>& independent_set);

}  // namespace pslocal
