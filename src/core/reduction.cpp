#include "core/reduction.hpp"

#include <cmath>

#include "core/correspondence.hpp"
#include "mis/independent_set.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace pslocal {

namespace {
struct ReductionMetrics {
  obs::Counter runs{"reduction.runs"};
  obs::Counter phases{"reduction.phases"};
  obs::Counter happy_removed{"reduction.happy_removed"};
  obs::Counter oracle_ns{"reduction.oracle_ns"};
  obs::Histogram phase_edges{"reduction.phase_edges"};
  obs::Histogram run_phases{"reduction.run_phases"};
};

const ReductionMetrics& red_metrics() {
  static ReductionMetrics m;
  return m;
}
}  // namespace

std::size_t reduction_phase_bound(double lambda, std::size_t m) {
  PSL_EXPECTS(lambda >= 1.0);
  if (m == 0) return 0;
  return static_cast<std::size_t>(
             std::ceil(lambda * std::log(static_cast<double>(m)))) +
         1;
}

ReductionResult cf_multicoloring_via_maxis(const Hypergraph& h,
                                           MaxISOracle& oracle,
                                           const ReductionOptions& opts) {
  PSL_EXPECTS(opts.k >= 1);
  PSL_OBS_SPAN("reduction.run");
  red_metrics().runs.add(1);
  const std::size_t m = h.edge_count();

  ReductionResult result;
  result.coloring = CfMulticoloring(h.vertex_count());
  if (m == 0) {
    result.success = true;
    result.within_rho = true;
    return result;
  }

  double lambda = opts.lambda;
  if (lambda <= 0.0 && oracle.lambda_guarantee().has_value())
    lambda = *oracle.lambda_guarantee();
  if (lambda >= 1.0) result.rho_bound = reduction_phase_bound(lambda, m);

  const std::size_t phase_cap =
      opts.max_phases > 0 ? opts.max_phases
                          : std::max<std::size_t>(result.rho_bound, m) + 1;

  Hypergraph current = h.restrict_edges(std::vector<bool>(m, true));
  while (current.edge_count() > 0 && result.phases < phase_cap) {
    PSL_OBS_SPAN("reduction.phase");
    const std::size_t phase = ++result.phases;
    red_metrics().phases.add(1);
    red_metrics().phase_edges.record(current.edge_count());
    PhaseStats stats;
    stats.phase = phase;
    stats.edges_before = current.edge_count();

    // 1. The conflict graph of the current hypergraph.
    ConflictGraph cg(current, opts.k);
    stats.conflict_nodes = cg.graph().vertex_count();
    stats.conflict_edges = cg.graph().edge_count();

    // 2. λ-approximate MaxIS.
    WallTimer timer;
    std::vector<VertexId> is;
    {
      PSL_OBS_SPAN("reduction.oracle");
      is = oracle.solve(cg.graph());
    }
    red_metrics().oracle_ns.add(timer.elapsed_nanos());
    stats.oracle_millis = timer.elapsed_millis();
    stats.is_size = is.size();
    if (opts.verify_phases)
      PSL_CHECK_MSG(is_independent_set(cg.graph(), is),
                    "oracle '" << oracle.name()
                               << "' returned a non-independent set");

    // 3. Per-phase coloring f_{I_i}; phase-private palette via offset.
    const auto induced = coloring_from_is(cg, is);
    if (opts.verify_phases) {
      PSL_CHECK_MSG(induced.well_defined,
                    "f_I not well defined (Lemma 2.1 b violated)");
    }
    result.coloring.absorb(induced.coloring, (phase - 1) * opts.k);

    // 4. Remove all happy edges of H_i (under this phase's coloring).
    const auto happy = happy_edges(current, induced.coloring);
    std::size_t happy_count = 0;
    std::vector<bool> keep(current.edge_count());
    for (EdgeId e = 0; e < current.edge_count(); ++e) {
      keep[e] = !happy[e];
      if (happy[e]) ++happy_count;
    }
    stats.happy_removed = happy_count;
    red_metrics().happy_removed.add(happy_count);
    if (opts.verify_phases)
      PSL_CHECK_MSG(happy_count >= is.size(),
                    "fewer happy edges than |I| (Lemma 2.1 b violated)");
    result.trace.push_back(stats);

    if (happy_count == 0) break;  // no progress; report failure below
    current = current.restrict_edges(keep);
  }

  red_metrics().run_phases.record(result.phases);
  result.success = (current.edge_count() == 0);
  result.colors_used = result.coloring.palette_size();
  result.palette_bound = opts.k * result.phases;
  result.within_rho =
      result.rho_bound > 0 && result.success && result.phases <= result.rho_bound;
  if (result.success)
    PSL_ENSURES(is_conflict_free(h, result.coloring));
  return result;
}

}  // namespace pslocal
