// The conflict graph G_k of conflict-free k-coloring a hypergraph H —
// the central construction of the paper (Section 2):
//
//   "The vertex set V(G_k) consists of all triples (e, v, c), e ∈ E(H),
//    v ∈ e, 1 <= c <= k.  The edge set E(G_k) is
//      E_vertex = {{(e,v,c),(g,v,d)} | v ∈ V(H), 1 <= c != d <= k}  ∪
//      E_edge   = {{(e,v,c),(e,u,d)} | e ∈ E(H), u,v ∈ e, 1 <= c,d <= k} ∪
//      E_color  = {{(e,v,c),(g,u,c)} | e,g ∈ E(H), 1 <= c <= k,
//                                      {u,v} ⊆ e or {u,v} ⊆ g}."
//
// Intuition: a triple (e, v, c) proposes "edge e is made happy by vertex v
// carrying color c".  E_vertex forbids giving one vertex two colors,
// E_edge forbids serving one edge twice, E_color forbids claiming c is
// unique for v while another vertex of the same edge also carries c.
//
// Reading note: in E_color we require u != v.  The paper's set notation
// "{u,v} ⊆ e" would admit u = v, but Lemma 2.1 a) only holds for the
// u != v reading (the proofs also argue with "a further node u != v");
// see the constructor comment in conflict_graph.cpp for the derivation.
//
// Triples are densely indexed: the incidence pairs (e, v) are laid out
// edge-by-edge (in edge-vertex order), and triple_id = pair * k + (c-1),
// so the coloring<->IS correspondence maps are O(1)/O(log) per query.
//
// |V(G_k)| = k * sum_e |e|.  A single conflict-graph edge may fall into
// several of the three classes; edge_class_mask exposes the full tag.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "hypergraph/hypergraph.hpp"
#include "runtime/global.hpp"

namespace pslocal {

using TripleId = std::size_t;

/// A conflict-graph vertex: edge e of H, vertex v in e, color c in [1, k].
struct Triple {
  EdgeId e = 0;
  VertexId v = 0;
  std::size_t c = 1;

  [[nodiscard]] bool operator==(const Triple&) const = default;
};

class ConflictGraph {
 public:
  /// Build G_k for conflict-free k-coloring of h.  The hypergraph is
  /// copied so the conflict graph stays valid independently of h.
  /// Candidate-pair enumeration of the three edge classes fans out on
  /// `sched`; the resulting graph is bit-identical at every thread count
  /// (tests/test_parallel_determinism.cpp).
  explicit ConflictGraph(Hypergraph h, std::size_t k,
                         runtime::Scheduler& sched =
                             runtime::global_scheduler());

  [[nodiscard]] const Hypergraph& hypergraph() const { return h_; }
  [[nodiscard]] std::size_t k() const { return k_; }
  [[nodiscard]] const Graph& graph() const { return graph_; }

  [[nodiscard]] std::size_t triple_count() const {
    return graph_.vertex_count();
  }

  /// Decode a conflict-graph vertex id.
  [[nodiscard]] Triple triple(TripleId t) const;

  /// Encode (e, v, c); v must belong to edge e and 1 <= c <= k.
  [[nodiscard]] TripleId triple_id(EdgeId e, VertexId v, std::size_t c) const;

  /// Classification of a conflict-graph edge (a, b must be adjacent or at
  /// least valid triples): bit-or of the classes whose defining predicate
  /// the pair satisfies.
  enum EdgeClass : unsigned {
    kEVertex = 1u,
    kEEdge = 2u,
    kEColor = 4u,
  };
  [[nodiscard]] unsigned edge_class_mask(TripleId a, TripleId b) const;

  struct ClassCounts {
    std::size_t e_vertex = 0;  // edges satisfying the E_vertex predicate
    std::size_t e_edge = 0;
    std::size_t e_color = 0;
    std::size_t total = 0;     // distinct edges of G_k
  };
  /// Tally the classes over all edges of G_k (an edge counts once per
  /// class it belongs to; total counts it once).
  [[nodiscard]] ClassCounts count_edge_classes() const;

  /// alpha(G_k) <= m: the E_edge cliques {(e,?,?)} partition V(G_k) into
  /// m cliques (proof of Lemma 2.1 a).  With Lemma 2.1 a), equality holds
  /// whenever H admits a conflict-free k-coloring.
  [[nodiscard]] std::size_t independence_upper_bound() const {
    return h_.edge_count();
  }

 private:
  [[nodiscard]] std::size_t pair_of(EdgeId e, VertexId v) const;

  Hypergraph h_;
  std::size_t k_;
  Graph graph_;
  std::vector<std::size_t> edge_pair_offset_;  // edge -> first pair index
  std::vector<EdgeId> pair_edge_;              // pair -> edge
  std::vector<VertexId> pair_vertex_;          // pair -> vertex
};

}  // namespace pslocal
