// The P-SLOCAL landscape, as a machine-checkable catalogue.
//
// P-SLOCAL is the class of problems solvable with polylogarithmic locality
// in the SLOCAL model [GKM17].  A problem is P-SLOCAL-complete if it is in
// the class and every problem of the class locally reduces to it; solving
// any complete problem efficiently and deterministically in LOCAL would
// derandomize the whole class (paper, Section 1).
//
// The catalogue records, for every problem this library implements, its
// membership/completeness status with the literature reference, and —
// where the library has one — a pointer to the verifier so example
// binaries and tests can cross-check solutions uniformly.
#pragma once

#include <functional>
#include <string>
#include <vector>

namespace pslocal {

enum class PSLocalStatus {
  kInPSLocal,         // contained; completeness unknown/open
  kPSLocalComplete,   // contained and P-SLOCAL-hard
  kCompletenessOpen,  // contained; completeness is an open question
};

struct ProblemInfo {
  std::string name;
  std::string description;
  PSLocalStatus status = PSLocalStatus::kInPSLocal;
  std::string reference;       // literature source for the status
  std::string implementation;  // where this library implements it
  /// Runs a tiny instance through the named implementation and verifies
  /// the result — the catalogue is machine-checkable, not prose.  Only
  /// empty for entries without an in-repo implementation.
  std::function<bool()> self_check;
};

/// All problems the library touches, with their P-SLOCAL status.
const std::vector<ProblemInfo>& problem_catalogue();

std::string to_string(PSLocalStatus status);

}  // namespace pslocal
