// Operational proof of the paper's simulability claim (Section 2):
//
//   "The conflict graph G_k can be efficiently simulated in H in the
//    LOCAL model."
//
// core/simulation.* analyzes the host mapping (dilation <= 1); this layer
// goes further and *executes* an arbitrary broadcast LOCAL algorithm on
// G_k through H: every hypergraph vertex v hosts its triples (?, v, ?);
// per physical round each host bundles the virtual messages of all its
// triples into one (unbounded) LOCAL message to its H-neighbors, and each
// receiving host routes payloads to its triples along G_k adjacency.
//
// Guarantees enforced at runtime:
//  * routing legality: every G_k edge joins triples whose hosts coincide
//    or are adjacent in H's primal graph (checked for every delivery), so
//    one virtual round costs exactly one physical round;
//  * semantic equivalence: with the same seed, the virtual execution is
//    *bit-identical* to running the algorithm directly on G_k (per-node
//    RNG streams and inbox ordering are reproduced exactly) — tests
//    assert equality of final states via the caller's comparator.
//
// The run also reports the congestion figures (physical message bytes)
// that a bandwidth-capped model (CONGEST) would charge — quantifying how
// hard the simulation leans on LOCAL's unbounded messages.
#pragma once

#include <algorithm>
#include <optional>
#include <vector>

#include "core/conflict_graph.hpp"
#include "graph/graph.hpp"
#include "local/simulator.hpp"
#include "util/check.hpp"

namespace pslocal {

template <typename State>
struct VirtualRunResult {
  std::vector<State> states;     // final state per triple (virtual node)
  std::size_t physical_rounds = 0;
  bool all_halted = false;
  /// Largest single host->neighbors physical payload in bytes (sum of the
  /// bundled virtual messages plus an 8-byte routing id each).
  std::size_t max_physical_message_bytes = 0;
  std::size_t total_physical_message_bytes = 0;
};

/// Execute `algo` on cg.graph(), hosted on cg.hypergraph()'s primal graph.
/// Mirrors run_local()'s scheduling and seeding exactly.
template <typename State, typename Msg>
VirtualRunResult<State> run_local_on_hosts(const ConflictGraph& cg,
                                           BroadcastAlgorithm<State, Msg>& algo,
                                           std::uint64_t seed,
                                           std::size_t max_rounds) {
  const Graph& gk = cg.graph();
  const Graph primal = cg.hypergraph().primal_graph();
  const std::size_t n_virtual = gk.vertex_count();
  const std::size_t n_hosts = cg.hypergraph().vertex_count();

  // Host of each virtual node, and the triples each host carries.
  std::vector<VertexId> host_of(n_virtual);
  std::vector<std::vector<VertexId>> hosted(n_hosts);
  for (VertexId t = 0; t < n_virtual; ++t) {
    host_of[t] = cg.triple(t).v;
    hosted[host_of[t]].push_back(t);
  }
  // Routing legality: every virtual edge must be deliverable in one hop.
  for (auto [a, b] : gk.edges()) {
    const VertexId ha = host_of[a], hb = host_of[b];
    PSL_CHECK_MSG(ha == hb || primal.has_edge(ha, hb),
                  "G_k edge " << a << "-" << b
                              << " spans non-adjacent hosts " << ha << ", "
                              << hb);
  }

  // Per-virtual-node RNG streams, identical to run_local's.
  Rng base(seed);
  std::vector<Rng> node_rng;
  node_rng.reserve(n_virtual);
  for (VertexId t = 0; t < n_virtual; ++t) node_rng.push_back(base.split(t));

  VirtualRunResult<State> run;
  run.states.reserve(n_virtual);
  for (VertexId t = 0; t < n_virtual; ++t)
    run.states.push_back(algo.init(t, gk, node_rng[t]));

  std::vector<std::optional<Msg>> outbox(n_virtual);
  std::vector<std::optional<Msg>> inbox;
  while (run.physical_rounds < max_rounds) {
    bool all_halted = true;
    for (VertexId t = 0; t < n_virtual; ++t)
      if (!algo.halted(t, run.states[t])) {
        all_halted = false;
        break;
      }
    if (all_halted) {
      run.all_halted = true;
      break;
    }

    // Virtual emits (from pre-round states), billed as one bundled
    // physical message per host.
    for (VertexId t = 0; t < n_virtual; ++t)
      outbox[t] = algo.emit(t, run.states[t]);
    for (VertexId h = 0; h < n_hosts; ++h) {
      std::size_t bytes = 0;
      for (VertexId t : hosted[h])
        if (outbox[t]) bytes += algo.message_size(*outbox[t]) + 8;
      if (bytes > 0) {
        run.max_physical_message_bytes =
            std::max(run.max_physical_message_bytes, bytes);
        run.total_physical_message_bytes += bytes;
      }
    }

    // Delivery + step: the inbox of virtual node t is assembled in
    // gk.neighbors(t) order — exactly as run_local does — after checking
    // each payload is reachable within one physical hop.
    for (VertexId t = 0; t < n_virtual; ++t) {
      if (algo.halted(t, run.states[t])) continue;
      const auto nb = gk.neighbors(t);
      inbox.assign(nb.size(), std::nullopt);
      for (std::size_t i = 0; i < nb.size(); ++i) {
        const VertexId ht = host_of[t];
        const VertexId hs = host_of[nb[i]];
        PSL_CHECK(ht == hs || primal.has_edge(ht, hs));
        inbox[i] = outbox[nb[i]];
      }
      algo.step(t, run.states[t], inbox, node_rng[t]);
    }
    ++run.physical_rounds;
  }
  if (!run.all_halted) {
    bool all_halted = true;
    for (VertexId t = 0; t < n_virtual; ++t)
      if (!algo.halted(t, run.states[t])) all_halted = false;
    run.all_halted = all_halted;
  }
  return run;
}

}  // namespace pslocal
