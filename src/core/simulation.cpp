#include "core/simulation.hpp"

#include <algorithm>
#include <vector>

#include "graph/algorithms.hpp"
#include "util/check.hpp"

namespace pslocal {

HostMappingReport analyze_host_mapping(const ConflictGraph& cg) {
  const Hypergraph& h = cg.hypergraph();
  HostMappingReport report;
  report.host_count = h.vertex_count();
  report.triple_count = cg.triple_count();

  std::vector<std::size_t> load(h.vertex_count(), 0);
  for (TripleId t = 0; t < cg.triple_count(); ++t) ++load[cg.triple(t).v];
  std::size_t loaded_hosts = 0;
  for (auto l : load) {
    report.max_load = std::max(report.max_load, l);
    if (l > 0) ++loaded_hosts;
  }
  report.avg_load = loaded_hosts == 0
                        ? 0.0
                        : static_cast<double>(report.triple_count) /
                              static_cast<double>(loaded_hosts);

  const Graph primal = h.primal_graph();
  for (auto [a, b] : cg.graph().edges()) {
    const VertexId ha = cg.triple(a).v;
    const VertexId hb = cg.triple(b).v;
    std::size_t dilation = 0;
    if (ha != hb) {
      if (primal.has_edge(ha, hb)) {
        dilation = 1;
      } else {
        // Should be impossible (see header); measure honestly if not.
        const auto dist = bfs_distances(primal, ha);
        PSL_CHECK(dist[hb] != kUnreachable);
        dilation = dist[hb];
      }
    }
    report.max_dilation = std::max(report.max_dilation, dilation);
  }
  report.one_round_simulable = report.max_dilation <= 1;
  report.rounds_per_simulated_round = std::max<std::size_t>(
      1, report.max_dilation);
  return report;
}

}  // namespace pslocal
