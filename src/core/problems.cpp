#include "core/problems.hpp"

#include <numeric>

#include "coloring/splitting.hpp"
#include "core/reduction.hpp"
#include "cover/dominating_set.hpp"
#include "cover/set_cover.hpp"
#include "graph/generators.hpp"
#include "hypergraph/generators.hpp"
#include "local/luby_mis.hpp"
#include "mis/greedy_maxis.hpp"
#include "mis/independent_set.hpp"
#include "slocal/ball_carving.hpp"
#include "slocal/greedy_algorithms.hpp"
#include "slocal/matching.hpp"
#include "slocal/network_decomposition.hpp"

namespace pslocal {

namespace {

std::vector<VertexId> identity_order(std::size_t n) {
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), VertexId{0});
  return order;
}

Graph tiny_graph() {
  Rng rng(424242);
  return gnp(24, 0.15, rng);
}

PlantedCfInstance tiny_cf_instance() {
  Rng rng(424243);
  PlantedCfParams params;
  params.n = 20;
  params.m = 12;
  params.k = 2;
  return planted_cf_colorable(params, rng);
}

bool check_mis() {
  const Graph g = tiny_graph();
  const auto slocal = slocal_greedy_mis(g, identity_order(g.vertex_count()));
  const auto luby = luby_mis(g, 1);
  return slocal.locality == 1 &&
         is_maximal_independent_set(g, slocal.independent_set) &&
         is_maximal_independent_set(g, luby.independent_set);
}

bool check_coloring() {
  const Graph g = tiny_graph();
  const auto res = slocal_greedy_coloring(g, identity_order(g.vertex_count()));
  return res.locality == 1 && res.colors_used <= g.max_degree() + 1;
}

bool check_maxis_approx() {
  const Graph g = tiny_graph();
  BallCarvingOracle oracle;
  const auto is = oracle.solve(g);
  return is_independent_set(g, is) && !is.empty();
}

bool check_cf_multicoloring() {
  const auto inst = tiny_cf_instance();
  GreedyMinDegreeOracle oracle;
  ReductionOptions opts;
  opts.k = 2;
  const auto res = cf_multicoloring_via_maxis(inst.hypergraph, oracle, opts);
  return res.success && is_conflict_free(inst.hypergraph, res.coloring);
}

bool check_network_decomposition() {
  const Graph g = tiny_graph();
  const auto nd = ball_growing_decomposition(g);
  return verify_decomposition(g, nd,
                              decomposition_diameter_bound(g.vertex_count()),
                              decomposition_color_bound(g.vertex_count()));
}

bool check_covering() {
  const Graph g = tiny_graph();
  const auto ds = greedy_dominating_set(g);
  const auto h = closed_neighborhood_hypergraph(g);
  const auto sc = greedy_set_cover(h);
  return is_dominating_set(g, ds) && is_set_cover(h, sc);
}

bool check_matching() {
  const Graph g = tiny_graph();
  const auto res = slocal_greedy_matching(g, identity_order(g.vertex_count()));
  return res.locality <= 1 && is_maximal_matching(g, res.matching);
}

bool check_splitting() {
  Rng rng(424244);
  const auto h = random_uniform_hypergraph(30, 12, 8, rng);
  if (splitting_estimator(h) >= 1.0) return false;  // instance must promise
  const auto res = derandomized_splitting(h, identity_order(30));
  return res.locality <= 1 && is_valid_splitting(h, res.splitting);
}

}  // namespace

const std::vector<ProblemInfo>& problem_catalogue() {
  static const std::vector<ProblemInfo> catalogue = {
      {
          "maximal independent set (MIS)",
          "inclusion-maximal independent set; SLOCAL(1) greedy",
          PSLocalStatus::kCompletenessOpen,
          "[Lin92] question; [GKM17]; paper Section 1",
          "slocal/greedy_algorithms.*, local/luby_mis.*",
          check_mis,
      },
      {
          "(Delta+1)-vertex coloring",
          "proper coloring with max-degree+1 colors; SLOCAL(1) greedy",
          PSLocalStatus::kCompletenessOpen,
          "[GKM17]; paper Section 1 and closing remark",
          "slocal/greedy_algorithms.*, local/coloring_local.*",
          check_coloring,
      },
      {
          "polylog MaxIS approximation",
          "independent set of size >= alpha(G)/polylog(n)",
          PSLocalStatus::kPSLocalComplete,
          "THIS PAPER, Theorem 1.1 (containment [GKM17, Thm 7.1])",
          "core/reduction.*, slocal/ball_carving.*, mis/*",
          check_maxis_approx,
      },
      {
          "conflict-free multicoloring, polylog colors",
          "almost-uniform hypergraphs with poly(n) edges",
          PSLocalStatus::kPSLocalComplete,
          "[GKM17], restated as paper Theorem 1.2",
          "coloring/conflict_free.*, core/reduction.*",
          check_cf_multicoloring,
      },
      {
          "(polylog, polylog) network decomposition",
          "partition into low-diameter clusters, cluster graph colored",
          PSLocalStatus::kPSLocalComplete,
          "[GKM17]",
          "slocal/network_decomposition.*, local/mpx_decomposition.*",
          check_network_decomposition,
      },
      {
          "dominating set / set cover approximation",
          "O(log n)-approximate minimum dominating set / set cover",
          PSLocalStatus::kPSLocalComplete,
          "[GHK18]",
          "cover/dominating_set.*, cover/set_cover.* (greedy + exact)",
          check_covering,
      },
      {
          "maximal matching",
          "inclusion-maximal matching; SLOCAL(1) greedy; 2-approx of "
          "maximum matching",
          PSLocalStatus::kInPSLocal,
          "[GKM17] (containment family around Thm 7.1)",
          "slocal/matching.*",
          check_matching,
      },
      {
          "(weak) local splitting",
          "2-color vertices so no hyperedge is monochromatic (Property B "
          "variant)",
          PSLocalStatus::kPSLocalComplete,
          "[GKM17] (splitting family; we implement the hyperedge-"
          "non-monochromatic variant)",
          "coloring/splitting.* (random + derandomized SLOCAL(1))",
          check_splitting,
      },
  };
  return catalogue;
}

std::string to_string(PSLocalStatus status) {
  switch (status) {
    case PSLocalStatus::kInPSLocal:
      return "in P-SLOCAL";
    case PSLocalStatus::kPSLocalComplete:
      return "P-SLOCAL-complete";
    case PSLocalStatus::kCompletenessOpen:
      return "in P-SLOCAL (completeness open)";
  }
  return "unknown";
}

}  // namespace pslocal
