// The hardness reduction of Theorem 1.1: conflict-free multicoloring via
// iterated MaxIS approximation on conflict graphs.
//
// Proof of Theorem 1.1 (paper, Section 2): with a λ-approximate MaxIS
// algorithm and ρ = λ ln m + 1 phases, phase i
//   1. builds the conflict graph G_k^i of the current hypergraph
//      H_i = (V, E_i)  (H_1 = H),
//   2. computes a λ-approximate maximum independent set I_i of G_k^i,
//   3. colors every v with some (?, v, c) ∈ I_i with color c from a
//      phase-private palette of size k,
//   4. removes all happy edges.
// Because α(G_k^i) = |E_i| (Lemma 2.1 a, H_i ⊆ H still CF k-colorable)
// and |I_i| >= |E_i|/λ gives |E_{i+1}| <= (1 - 1/λ)|E_i|, all edges are
// happy after ρ phases and the multicoloring uses k·ρ = polylog n colors.
//
// The runner below is generic in the oracle (any MaxISOracle) and keeps a
// full per-phase trace so experiments E4/E5/E10 can compare the measured
// behaviour against the proof's bounds.  With verify_phases set, every
// phase re-checks the Lemma 2.1 clauses it relies on.
#pragma once

#include <cstddef>
#include <vector>

#include "coloring/conflict_free.hpp"
#include "core/conflict_graph.hpp"
#include "hypergraph/hypergraph.hpp"
#include "mis/oracle.hpp"

namespace pslocal {

struct ReductionOptions {
  /// Palette size per phase (the k of the CF k-coloring the instance is
  /// promised to admit).
  std::size_t k = 4;

  /// λ used for the phase bound ρ = ceil(λ ln m) + 1.  If 0, taken from
  /// the oracle's guarantee; if the oracle has none, the bound is not
  /// predicted (rho_bound = 0) and the run continues until completion.
  double lambda = 0.0;

  /// Hard cap on phases (0 = automatic: max(ρ, m) + 1).
  std::size_t max_phases = 0;

  /// Re-verify Lemma 2.1 clauses and oracle-output independence per phase.
  bool verify_phases = true;
};

struct PhaseStats {
  std::size_t phase = 0;  // 1-based
  std::size_t edges_before = 0;       // |E_i|
  std::size_t conflict_nodes = 0;     // |V(G_k^i)|
  std::size_t conflict_edges = 0;     // |E(G_k^i)|
  std::size_t is_size = 0;            // |I_i|
  std::size_t happy_removed = 0;      // edges removed after this phase
  double oracle_millis = 0.0;
};

struct ReductionResult {
  CfMulticoloring coloring;       // over V(H), palettes disjoint per phase
  bool success = false;           // coloring is conflict-free for H
  std::size_t phases = 0;         // phases actually executed
  std::size_t rho_bound = 0;      // predicted ceil(λ ln m)+1 (0 if unknown)
  bool within_rho = false;        // phases <= rho_bound (when predicted)
  std::size_t colors_used = 0;    // distinct colors in the multicoloring
  std::size_t palette_bound = 0;  // k * phases (the paper's k·ρ accounting)
  std::vector<PhaseStats> trace;
};

/// Run the reduction on hypergraph h with palette size k per phase.
/// Precondition for the guarantees: h admits a CF coloring with at most
/// opts.k colors (e.g. a planted instance with k >= planted k); the runner
/// itself is safe on any input and reports success accordingly.
ReductionResult cf_multicoloring_via_maxis(const Hypergraph& h,
                                           MaxISOracle& oracle,
                                           const ReductionOptions& opts);

/// The paper's phase bound ρ = ceil(λ ln m) + 1 (>= 1 for m >= 1).
std::size_t reduction_phase_bound(double lambda, std::size_t m);

}  // namespace pslocal
