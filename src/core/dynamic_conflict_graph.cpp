#include "core/dynamic_conflict_graph.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/hash.hpp"

namespace pslocal {

namespace {

constexpr EdgeId kNoEdge = static_cast<EdgeId>(-1);

/// Shared sentinel for triples with no neighbors; counts as "shared"
/// between any two graphs, which is exactly right for the memory probe.
const std::shared_ptr<const std::vector<TripleId>>& empty_row() {
  static const auto row = std::make_shared<const std::vector<TripleId>>();
  return row;
}

struct DeltaMetrics {
  obs::Counter applies{"dynamic_conflict_graph.applies"};
  obs::Counter triples_removed{"dynamic_conflict_graph.triples_removed"};
  obs::Counter triples_added{"dynamic_conflict_graph.triples_added"};
  obs::Counter gk_edges_removed{"dynamic_conflict_graph.gk_edges_removed"};
  obs::Counter gk_edges_added{"dynamic_conflict_graph.gk_edges_added"};
};

const DeltaMetrics& delta_metrics() {
  static DeltaMetrics m;
  return m;
}

}  // namespace

DynamicConflictGraph::DynamicConflictGraph(const Hypergraph& h, std::size_t k,
                                           runtime::Scheduler& sched)
    : DynamicConflictGraph(ConflictGraph(h, k, sched)) {}

DynamicConflictGraph::DynamicConflictGraph(const ConflictGraph& cg) {
  const Hypergraph& h = cg.hypergraph();
  n_ = h.vertex_count();
  k_ = cg.k();
  edges_.reserve(h.edge_count());
  for (EdgeId e = 0; e < h.edge_count(); ++e) {
    const auto vs = h.edge(e);
    edges_.emplace_back(vs.begin(), vs.end());
  }
  rebuild_pair_offsets();
  rebuild_incidence();
  const Graph& g = cg.graph();
  adj_.resize(g.vertex_count());
  for (TripleId t = 0; t < adj_.size(); ++t) {
    const auto nbrs = g.neighbors(static_cast<VertexId>(t));
    adj_[t] = nbrs.empty() ? empty_row()
                           : std::make_shared<const std::vector<TripleId>>(
                                 nbrs.begin(), nbrs.end());
  }
  gk_edges_ = g.edge_count();
}

void DynamicConflictGraph::rebuild_pair_offsets() {
  pair_offset_.assign(edges_.size() + 1, 0);
  for (EdgeId e = 0; e < edges_.size(); ++e)
    pair_offset_[e + 1] = pair_offset_[e] + edges_[e].size();
}

void DynamicConflictGraph::rebuild_incidence() {
  incidence_.assign(n_, {});
  for (EdgeId e = 0; e < edges_.size(); ++e)
    for (const VertexId v : edges_[e]) incidence_[v].push_back(e);
}

std::size_t DynamicConflictGraph::pair_of(EdgeId e, VertexId v) const {
  const auto& verts = edges_[e];
  const auto it = std::lower_bound(verts.begin(), verts.end(), v);
  PSL_EXPECTS_MSG(it != verts.end() && *it == v,
                  "vertex " << v << " not in hyperedge " << e);
  return pair_offset_[e] +
         static_cast<std::size_t>(std::distance(verts.begin(), it));
}

Triple DynamicConflictGraph::triple(TripleId t) const {
  PSL_EXPECTS(t < triple_count());
  const std::size_t pair = t / k_;
  const auto it = std::upper_bound(pair_offset_.begin(), pair_offset_.end(),
                                   pair);
  const EdgeId e = static_cast<EdgeId>(
      std::distance(pair_offset_.begin(), it) - 1);
  Triple out;
  out.e = e;
  out.v = edges_[e][pair - pair_offset_[e]];
  out.c = t % k_ + 1;
  return out;
}

/// Enumerate the G_k neighbors of every triple of (fresh) hyperedge e
/// against the CURRENT edges_/incidence_ — the ball-local restriction of
/// the three-class enumeration in conflict_graph.cpp.
void DynamicConflictGraph::collect_fresh_neighbors(
    EdgeId e, std::vector<std::uint64_t>& pairs) const {
  const auto tid = [this](std::size_t pair, std::size_t c) {
    return static_cast<VertexId>(pair * k_ + (c - 1));
  };
  // E_edge: the block of e is a clique.
  const std::size_t first = pair_offset_[e] * k_;
  const std::size_t last = pair_offset_[e + 1] * k_;
  for (std::size_t a = first; a < last; ++a)
    for (std::size_t b = a + 1; b < last; ++b)
      pairs.push_back(pack_edge(static_cast<VertexId>(a),
                                static_cast<VertexId>(b)));
  for (const VertexId v : edges_[e]) {
    const std::size_t pv = pair_of(e, v);
    // E_vertex: same middle vertex, different colors.  The same-pair
    // case (g == e) is already inside the E_edge clique above.
    for (const EdgeId g : incidence_[v]) {
      if (g == e) continue;
      const std::size_t pu = pair_of(g, v);
      for (std::size_t c = 1; c <= k_; ++c)
        for (std::size_t d = 1; d <= k_; ++d) {
          if (c == d) continue;
          pairs.push_back(pack_edge(tid(pv, c), tid(pu, d)));
        }
    }
    // E_color, witness edge = e: u, v both in e (u != v), partner is
    // (g, u, c) for any g containing u.
    for (const VertexId u : edges_[e]) {
      if (u == v) continue;
      for (const EdgeId g : incidence_[u]) {
        const std::size_t pu = pair_of(g, u);
        for (std::size_t c = 1; c <= k_; ++c)
          pairs.push_back(pack_edge(tid(pv, c), tid(pu, c)));
      }
    }
    // E_color, witness edge = g: u, v both in g (u != v), partner is
    // (g, u, c) — g ranges over the other edges containing v.
    for (const EdgeId g : incidence_[v]) {
      for (const VertexId u : edges_[g]) {
        if (u == v) continue;
        const std::size_t pu = pair_of(g, u);
        for (std::size_t c = 1; c <= k_; ++c)
          pairs.push_back(pack_edge(tid(pv, c), tid(pu, c)));
      }
    }
  }
}

DynamicConflictGraph::Delta DynamicConflictGraph::apply(const Mutation& mut) {
  PSL_OBS_SPAN("conflict_graph.apply_delta");
  const auto invalid = validate_mutation(n_, edges_, mut);
  PSL_CHECK_MSG(!invalid.has_value(), "dynamic conflict graph: " << *invalid);
  delta_metrics().applies.add(1);

  Delta delta;
  const std::size_t old_triples = adj_.size();
  const std::size_t old_m = edges_.size();

  if (mut.op == MutationOp::kAddVertex) {
    ++n_;
    incidence_.emplace_back();
    delta.remap.resize(old_triples);
    std::iota(delta.remap.begin(), delta.remap.end(), TripleId{0});
    return delta;
  }

  // Plan: which old blocks disappear, which new contents are fresh.
  std::vector<char> edge_touched(old_m, 0);  // old block removed
  std::vector<std::vector<VertexId>> replacement(old_m);
  std::vector<char> replaced(old_m, 0);
  std::vector<std::vector<VertexId>> appended;
  switch (mut.op) {
    case MutationOp::kAddEdge: {
      std::vector<VertexId> vs = mut.vertices;
      std::sort(vs.begin(), vs.end());
      appended.push_back(std::move(vs));
      break;
    }
    case MutationOp::kRemoveEdge:
      edge_touched[mut.edge] = 1;
      break;
    case MutationOp::kRemoveVertex: {
      const VertexId v = mut.vertices[0];
      for (const EdgeId e : incidence_[v]) {
        edge_touched[e] = 1;
        if (edges_[e].size() > 1) {
          replaced[e] = 1;
          std::vector<VertexId> shrunk;
          shrunk.reserve(edges_[e].size() - 1);
          for (const VertexId u : edges_[e])
            if (u != v) shrunk.push_back(u);
          replacement[e] = std::move(shrunk);
        }
      }
      break;
    }
    case MutationOp::kAddVertex:
      break;  // handled above
  }

  // Removed triple set = the blocks of every touched old edge.
  std::vector<char> removed_flag(old_triples, 0);
  for (EdgeId e = 0; e < old_m; ++e) {
    if (!edge_touched[e]) continue;
    for (std::size_t t = pair_offset_[e] * k_; t < pair_offset_[e + 1] * k_;
         ++t) {
      removed_flag[t] = 1;
      delta.removed.push_back(t);
    }
  }

  // Detach: count the G_k edges that die with the removed blocks, and
  // filter them out of every surviving neighbor's list.
  std::vector<TripleId> dirty_old;
  for (const TripleId t : delta.removed) {
    for (const TripleId nb : *adj_[t]) {
      if (removed_flag[nb]) {
        if (t < nb) ++delta.gk_edges_removed;
      } else {
        ++delta.gk_edges_removed;
        dirty_old.push_back(nb);
      }
    }
  }
  std::sort(dirty_old.begin(), dirty_old.end());
  dirty_old.erase(std::unique(dirty_old.begin(), dirty_old.end()),
                  dirty_old.end());
  for (const TripleId nb : dirty_old) {
    // Rows are immutable (shared COW); publish a filtered replacement.
    const std::vector<TripleId>& old_row = *adj_[nb];
    std::vector<TripleId> kept;
    kept.reserve(old_row.size());
    for (const TripleId x : old_row)
      if (!removed_flag[x]) kept.push_back(x);
    adj_[nb] = std::make_shared<const std::vector<TripleId>>(std::move(kept));
  }

  // New edge list: survivors keep relative order, replaced edges keep
  // their position with fresh content, appends go at the end.
  std::vector<std::vector<VertexId>> new_edges;
  new_edges.reserve(old_m + appended.size());
  std::vector<char> fresh;
  fresh.reserve(old_m + appended.size());
  std::vector<EdgeId> old_to_new(old_m, kNoEdge);
  for (EdgeId e = 0; e < old_m; ++e) {
    if (edge_touched[e] && !replaced[e]) continue;  // deleted
    old_to_new[e] = static_cast<EdgeId>(new_edges.size());
    if (replaced[e]) {
      new_edges.push_back(std::move(replacement[e]));
      fresh.push_back(1);
    } else {
      new_edges.push_back(std::move(edges_[e]));
      fresh.push_back(0);
    }
  }
  for (auto& vs : appended) {
    new_edges.push_back(std::move(vs));
    fresh.push_back(1);
  }

  const std::vector<std::size_t> old_offset = std::move(pair_offset_);
  edges_ = std::move(new_edges);
  rebuild_pair_offsets();
  rebuild_incidence();

  const std::size_t new_triples = pair_offset_.back() * k_;
  PSL_EXPECTS_MSG(new_triples < (std::uint64_t{1} << 32),
                  "conflict graph too large for 32-bit triple ids");

  // Survivor remap: untouched blocks move en bloc (strictly increasing,
  // so remapped sorted lists stay sorted).
  delta.remap.assign(old_triples, kRemoved);
  for (EdgeId e = 0; e < old_m; ++e) {
    if (edge_touched[e]) continue;
    const EdgeId ne = old_to_new[e];
    const std::size_t old_first = old_offset[e] * k_;
    const std::size_t new_first = pair_offset_[ne] * k_;
    const std::size_t count = (old_offset[e + 1] - old_offset[e]) * k_;
    for (std::size_t i = 0; i < count; ++i)
      delta.remap[old_first + i] = new_first + i;
  }

  std::vector<Row> new_adj(new_triples);
  for (TripleId t = 0; t < old_triples; ++t) {
    const TripleId nt = delta.remap[t];
    if (nt == kRemoved) continue;
    const std::vector<TripleId>& row = *adj_[t];
    // A row whose every neighbor keeps its id is content-unchanged under
    // the remap: keep sharing its storage instead of reallocating.  This
    // is what preserves structural sharing for mutations far from the
    // rows a stored session copy still points at.
    bool unchanged = true;
    for (const TripleId x : row) {
      if (delta.remap[x] != x) {
        unchanged = false;
        break;
      }
    }
    if (unchanged) {
      new_adj[nt] = std::move(adj_[t]);
      continue;
    }
    std::vector<TripleId> remapped;
    remapped.reserve(row.size());
    for (const TripleId x : row) remapped.push_back(delta.remap[x]);
    new_adj[nt] =
        std::make_shared<const std::vector<TripleId>>(std::move(remapped));
  }
  adj_ = std::move(new_adj);

  // Fresh blocks and their ball-local candidate enumeration.
  std::vector<std::uint64_t> candidates;
  for (EdgeId ne = 0; ne < edges_.size(); ++ne) {
    if (!fresh[ne]) continue;
    for (std::size_t t = pair_offset_[ne] * k_; t < pair_offset_[ne + 1] * k_;
         ++t)
      delta.added.push_back(t);
    collect_fresh_neighbors(ne, candidates);
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  delta.gk_edges_added = candidates.size();

  // Scatter the new edges into the adjacency lists.  Every new pair has
  // a fresh endpoint and fresh ids are disjoint from survivor ids, so no
  // candidate can already be present — a sorted merge per source is
  // exact.
  std::vector<std::pair<TripleId, TripleId>> directed;
  directed.reserve(candidates.size() * 2);
  for (const std::uint64_t packed : candidates) {
    const auto a = static_cast<TripleId>(packed >> 32);
    const auto b = static_cast<TripleId>(packed & 0xffffffffULL);
    directed.emplace_back(a, b);
    directed.emplace_back(b, a);
  }
  std::sort(directed.begin(), directed.end());
  for (std::size_t i = 0; i < directed.size();) {
    const TripleId src = directed[i].first;
    std::size_t j = i;
    while (j < directed.size() && directed[j].first == src) ++j;
    // Fresh triples still hold a null Row here; treat it as empty.
    static const std::vector<TripleId> kNone;
    const std::vector<TripleId>& list =
        adj_[src] != nullptr ? *adj_[src] : kNone;
    std::vector<TripleId> merged;
    merged.reserve(list.size() + (j - i));
    std::size_t a = 0, b = i;
    while (a < list.size() && b < j) {
      if (list[a] < directed[b].second)
        merged.push_back(list[a++]);
      else
        merged.push_back(directed[b++].second);
    }
    while (a < list.size()) merged.push_back(list[a++]);
    while (b < j) merged.push_back(directed[b++].second);
    adj_[src] =
        std::make_shared<const std::vector<TripleId>>(std::move(merged));
    i = j;
  }
  for (Row& row : adj_) {
    if (row == nullptr) row = empty_row();  // fresh triple, no neighbors
  }
  gk_edges_ = gk_edges_ - delta.gk_edges_removed + delta.gk_edges_added;

  // Dirty region: fresh triples plus survivors whose lists changed.
  delta.dirty.reserve(dirty_old.size() + delta.added.size());
  for (const TripleId t : dirty_old) delta.dirty.push_back(delta.remap[t]);
  for (const TripleId src :
       [&directed] {
         std::vector<TripleId> srcs;
         for (const auto& [a, b] : directed) srcs.push_back(a);
         return srcs;
       }())
    delta.dirty.push_back(src);
  std::sort(delta.dirty.begin(), delta.dirty.end());
  delta.dirty.erase(std::unique(delta.dirty.begin(), delta.dirty.end()),
                    delta.dirty.end());

  delta_metrics().triples_removed.add(delta.removed.size());
  delta_metrics().triples_added.add(delta.added.size());
  delta_metrics().gk_edges_removed.add(delta.gk_edges_removed);
  delta_metrics().gk_edges_added.add(delta.gk_edges_added);
  return delta;
}

Hypergraph DynamicConflictGraph::hypergraph() const {
  return Hypergraph(n_, edges_);
}

std::uint64_t DynamicConflictGraph::content_hash() const {
  Fnv1a64 hash;
  hash.update_u64(n_);
  hash.update_u64(edges_.size());
  for (const auto& edge : edges_) {
    hash.update_u64(edge.size());
    for (const VertexId v : edge) hash.update_u64(v);
  }
  return hash.digest();
}

Graph DynamicConflictGraph::snapshot(runtime::Scheduler& sched) const {
  std::vector<std::uint64_t> packed;
  packed.reserve(gk_edges_);
  for (TripleId t = 0; t < adj_.size(); ++t)
    for (const TripleId nb : *adj_[t])
      if (t < nb)
        packed.push_back(pack_edge(static_cast<VertexId>(t),
                                   static_cast<VertexId>(nb)));
  return Graph::from_packed_edges(adj_.size(), std::move(packed), sched);
}

std::uint64_t DynamicConflictGraph::graph_hash() const {
  Fnv1a64 hash;
  hash.update_u64(adj_.size());
  for (const Row& list : adj_) {
    hash.update_u64(list->size());
    for (const TripleId nb : *list) hash.update_u64(nb);
  }
  return hash.digest();
}

std::size_t DynamicConflictGraph::shared_rows_with(
    const DynamicConflictGraph& other) const {
  const std::size_t common = std::min(adj_.size(), other.adj_.size());
  std::size_t shared = 0;
  for (std::size_t t = 0; t < common; ++t)
    if (adj_[t] != nullptr && adj_[t] == other.adj_[t]) ++shared;
  return shared;
}

}  // namespace pslocal
