#include "core/conflict_graph.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "runtime/parallel.hpp"
#include "util/check.hpp"

namespace pslocal {

namespace {
struct ConflictGraphMetrics {
  obs::Counter builds{"conflict_graph.builds"};
  obs::Counter triples{"conflict_graph.triples"};
  obs::Counter candidate_pairs{"conflict_graph.candidate_pairs"};
  obs::Counter edges{"conflict_graph.edges"};
};

const ConflictGraphMetrics& cg_metrics() {
  static ConflictGraphMetrics m;
  return m;
}
}  // namespace

ConflictGraph::ConflictGraph(Hypergraph h, std::size_t k,
                             runtime::Scheduler& sched)
    : h_(std::move(h)), k_(k) {
  PSL_EXPECTS(k_ >= 1);
  PSL_OBS_SPAN("conflict_graph.build");
  const std::size_t m = h_.edge_count();

  // Lay out incidence pairs (e, v) edge by edge.
  edge_pair_offset_.assign(m + 1, 0);
  for (EdgeId e = 0; e < m; ++e)
    edge_pair_offset_[e + 1] = edge_pair_offset_[e] + h_.edge_size(e);
  const std::size_t pair_count = edge_pair_offset_[m];
  pair_edge_.resize(pair_count);
  pair_vertex_.resize(pair_count);
  for (EdgeId e = 0; e < m; ++e) {
    std::size_t p = edge_pair_offset_[e];
    for (VertexId v : h_.edge(e)) {
      pair_edge_[p] = e;
      pair_vertex_[p] = v;
      ++p;
    }
  }

  const std::size_t n_triples = pair_count * k_;
  PSL_EXPECTS_MSG(n_triples < (std::uint64_t{1} << 32),
                  "conflict graph too large for 32-bit triple ids");
  auto tid = [this](std::size_t pair, std::size_t c) {
    return static_cast<VertexId>(pair * k_ + (c - 1));
  };

  // The three candidate-pair enumerations below fan out on `sched`; each
  // chunk appends pack_edge-encoded pairs to a private sink
  // (runtime/parallel.hpp).  The classes only differ in their outer loop
  // domain; the final edge SET is what determines the graph, so any
  // execution order yields the same G_k.
  std::vector<std::uint64_t> packed;

  // E_edge: the triples of one hyperedge form a clique.
  {
    auto out = runtime::parallel_collect<std::uint64_t>(
        sched, {m, 0},
        [&](std::size_t lo, std::size_t hi, std::vector<std::uint64_t>& sink) {
          for (EdgeId e = lo; e < hi; ++e) {
            const std::size_t first = edge_pair_offset_[e] * k_;
            const std::size_t last = edge_pair_offset_[e + 1] * k_;
            for (std::size_t a = first; a < last; ++a)
              for (std::size_t b = a + 1; b < last; ++b)
                sink.push_back(pack_edge(static_cast<VertexId>(a),
                                         static_cast<VertexId>(b)));
          }
        });
    packed = std::move(out);
  }

  // E_vertex: triples sharing their middle vertex, with different colors.
  // Group pairs by vertex via the hypergraph incidence lists.
  {
    auto out = runtime::parallel_collect<std::uint64_t>(
        sched, {h_.vertex_count(), 0},
        [&](std::size_t lo, std::size_t hi, std::vector<std::uint64_t>& sink) {
          for (VertexId v = lo; v < hi; ++v) {
            const auto incident = h_.edges_of(v);
            std::vector<std::size_t> pairs;
            pairs.reserve(incident.size());
            for (EdgeId e : incident) pairs.push_back(pair_of(e, v));
            for (std::size_t i = 0; i < pairs.size(); ++i) {
              for (std::size_t j = i; j < pairs.size(); ++j) {
                for (std::size_t c = 1; c <= k_; ++c) {
                  for (std::size_t d = 1; d <= k_; ++d) {
                    if (c == d) continue;
                    if (i == j && c >= d) continue;  // same pair: {c,d} once
                    sink.push_back(pack_edge(tid(pairs[i], c),
                                             tid(pairs[j], d)));
                  }
                }
              }
            }
          }
        });
    packed.insert(packed.end(), out.begin(), out.end());
  }

  // E_color: same color c; the two middle vertices u, v lie together in
  // (at least) one of the two hyperedges.  Enumerate by the witness edge
  // f: v, u in f, triple1 = (f, v, c), triple2 = (g, u, c) for any g
  // containing u.  Swapping roles covers witness-in-second-edge cases.
  //
  // NOTE (erratum-level reading of the paper): the set notation
  // "{u,v} ⊆ e" admits u = v, but the proofs of Lemma 2.1 treat u and v
  // as distinct ("assume that there is a further node u ∈ e, u != v ...").
  // Indeed with u = v the lemma's part (a) is FALSE: if two hyperedges
  // share their unique-color witness vertex v, I_f would contain
  // (e, v, c) and (g, v, c) and an u = v E_color edge would join them.
  // We therefore require u != v; see ConflictGraphTest.
  // SharedWitnessAcrossEdgesStaysIndependent for the counterexample.
  {
    auto out = runtime::parallel_collect<std::uint64_t>(
        sched, {m, 0},
        [&](std::size_t lo, std::size_t hi, std::vector<std::uint64_t>& sink) {
          for (EdgeId f = lo; f < hi; ++f) {
            const auto verts = h_.edge(f);
            for (VertexId v : verts) {
              const std::size_t pv = pair_of(f, v);
              for (VertexId u : verts) {
                if (u == v) continue;
                for (EdgeId g : h_.edges_of(u)) {
                  const std::size_t pu = pair_of(g, u);
                  for (std::size_t c = 1; c <= k_; ++c)
                    sink.push_back(pack_edge(tid(pv, c), tid(pu, c)));
                }
              }
            }
          }
        });
    packed.insert(packed.end(), out.begin(), out.end());
  }

  cg_metrics().builds.add(1);
  cg_metrics().triples.add(n_triples);
  cg_metrics().candidate_pairs.add(packed.size());
  graph_ = Graph::from_packed_edges(n_triples, std::move(packed), sched);
  cg_metrics().edges.add(graph_.edge_count());
}

Triple ConflictGraph::triple(TripleId t) const {
  PSL_EXPECTS(t < triple_count());
  const std::size_t pair = t / k_;
  Triple out;
  out.e = pair_edge_[pair];
  out.v = pair_vertex_[pair];
  out.c = t % k_ + 1;
  return out;
}

TripleId ConflictGraph::triple_id(EdgeId e, VertexId v, std::size_t c) const {
  PSL_EXPECTS(c >= 1 && c <= k_);
  return pair_of(e, v) * k_ + (c - 1);
}

std::size_t ConflictGraph::pair_of(EdgeId e, VertexId v) const {
  PSL_EXPECTS(e < h_.edge_count());
  const auto verts = h_.edge(e);
  const auto it = std::lower_bound(verts.begin(), verts.end(), v);
  PSL_EXPECTS_MSG(it != verts.end() && *it == v,
                  "vertex " << v << " not in hyperedge " << e);
  return edge_pair_offset_[e] +
         static_cast<std::size_t>(std::distance(verts.begin(), it));
}

unsigned ConflictGraph::edge_class_mask(TripleId a, TripleId b) const {
  const Triple ta = triple(a);
  const Triple tb = triple(b);
  PSL_EXPECTS(!(ta == tb));
  unsigned mask = 0;
  if (ta.v == tb.v && ta.c != tb.c) mask |= kEVertex;
  if (ta.e == tb.e) mask |= kEEdge;
  // E_color requires two *distinct* vertices u != v (see constructor note).
  if (ta.c == tb.c && ta.v != tb.v &&
      (h_.edge_contains(ta.e, tb.v) || h_.edge_contains(tb.e, ta.v)))
    mask |= kEColor;
  return mask;
}

ConflictGraph::ClassCounts ConflictGraph::count_edge_classes() const {
  ClassCounts counts;
  for (auto [a, b] : graph_.edges()) {
    const unsigned mask = edge_class_mask(a, b);
    PSL_CHECK_MSG(mask != 0, "conflict-graph edge outside all classes");
    if (mask & kEVertex) ++counts.e_vertex;
    if (mask & kEEdge) ++counts.e_edge;
    if (mask & kEColor) ++counts.e_color;
    ++counts.total;
  }
  return counts;
}

}  // namespace pslocal
