#include "core/distributed_reduction.hpp"

#include "core/conflict_graph.hpp"
#include "core/correspondence.hpp"
#include "core/virtual_local.hpp"
#include "local/luby_algorithm.hpp"
#include "local/slocal_compiler.hpp"
#include "mis/independent_set.hpp"
#include "util/check.hpp"

namespace pslocal {

DistributedReductionResult distributed_cf_multicoloring(
    const Hypergraph& h, std::size_t k, std::uint64_t seed,
    std::size_t max_phases) {
  PSL_EXPECTS(k >= 1);
  const std::size_t m = h.edge_count();
  if (max_phases == 0) max_phases = m + 1;

  DistributedReductionResult result;
  result.coloring = CfMulticoloring(h.vertex_count());
  if (m == 0) {
    result.success = true;
    return result;
  }

  Hypergraph current = h.restrict_edges(std::vector<bool>(m, true));
  Rng phase_seeds(seed);
  while (current.edge_count() > 0 && result.phases < max_phases) {
    const std::size_t phase = ++result.phases;
    DistributedPhaseStats stats;
    stats.phase = phase;
    stats.edges_before = current.edge_count();

    // 1. Host G_k^i on H's primal graph and run Luby through the hosts.
    const ConflictGraph cg(current, k);
    stats.virtual_nodes = cg.triple_count();
    detail::LubyAlgorithm luby;
    const auto run = run_local_on_hosts(
        cg, luby, phase_seeds.next_u64(),
        detail::luby_default_round_cap(cg.triple_count()));
    PSL_CHECK_MSG(run.all_halted, "hosted Luby did not converge");
    stats.luby_rounds = run.physical_rounds;
    stats.max_message_bytes = run.max_physical_message_bytes;

    std::vector<VertexId> is;
    for (TripleId t = 0; t < cg.triple_count(); ++t)
      if (run.states[t].status == detail::LubyStatus::kIn)
        is.push_back(static_cast<VertexId>(t));
    PSL_CHECK(is_independent_set(cg.graph(), is));
    stats.is_size = is.size();

    // 2. Hosts color themselves from their own triples in I_i.  f_I is
    //    host-local: the triple (e, v, c) lives at host v.
    const auto induced = coloring_from_is(cg, is);
    PSL_CHECK(induced.well_defined);
    result.coloring.absorb(induced.coloring, (phase - 1) * k);

    // 3. Happy-edge detection: one physical round in which every edge's
    //    members exchange their phase colors (members are pairwise
    //    adjacent in the primal graph, so one hop suffices).
    const auto happy = happy_edges(current, induced.coloring);
    std::vector<bool> keep(current.edge_count());
    std::size_t removed = 0;
    for (EdgeId e = 0; e < current.edge_count(); ++e) {
      keep[e] = !happy[e];
      if (happy[e]) ++removed;
    }
    stats.happy_removed = removed;
    result.total_physical_rounds += stats.luby_rounds + 1;
    result.trace.push_back(stats);

    if (removed == 0) break;  // cannot happen while |I_i| >= 1
    current = current.restrict_edges(keep);
  }

  result.success = (current.edge_count() == 0);
  result.colors_used = result.coloring.palette_size();
  if (result.success) PSL_ENSURES(is_conflict_free(h, result.coloring));
  return result;
}

namespace {
enum class GreedyMark : std::uint8_t { kUndecided, kIn, kOut };
}

DeterministicDistributedResult deterministic_distributed_cf_multicoloring(
    const Hypergraph& h, std::size_t k, std::size_t max_phases) {
  PSL_EXPECTS(k >= 1);
  const std::size_t m = h.edge_count();
  if (max_phases == 0) max_phases = m + 1;

  DeterministicDistributedResult result;
  result.coloring = CfMulticoloring(h.vertex_count());
  if (m == 0) {
    result.success = true;
    return result;
  }

  Hypergraph current = h.restrict_edges(std::vector<bool>(m, true));
  while (current.edge_count() > 0 && result.phases < max_phases) {
    const std::size_t phase = ++result.phases;
    DeterministicPhaseStats stats;
    stats.phase = phase;
    stats.edges_before = current.edge_count();

    const ConflictGraph cg(current, k);
    stats.virtual_nodes = cg.triple_count();

    // Deterministic LOCAL MIS on G_k^i: greedy SLOCAL(1) through the
    // compiler (network decomposition of (G_k^i)^3).
    const auto run = compile_slocal_to_local<GreedyMark>(
        cg.graph(), /*r=*/1,
        std::vector<GreedyMark>(cg.triple_count(), GreedyMark::kUndecided),
        [](SLocalView<GreedyMark>& view) {
          bool neighbor_in = false;
          for (VertexId w : view.neighbors())
            if (view.state(w) == GreedyMark::kIn) {
              neighbor_in = true;
              break;
            }
          view.own_state() =
              neighbor_in ? GreedyMark::kOut : GreedyMark::kIn;
        });
    stats.compiled_rounds = run.local_rounds;
    stats.decomposition_colors = run.decomposition_colors;

    std::vector<VertexId> is;
    for (TripleId t = 0; t < cg.triple_count(); ++t)
      if (run.states[t] == GreedyMark::kIn)
        is.push_back(static_cast<VertexId>(t));
    PSL_CHECK(is_independent_set(cg.graph(), is));
    stats.is_size = is.size();

    const auto induced = coloring_from_is(cg, is);
    PSL_CHECK(induced.well_defined);
    result.coloring.absorb(induced.coloring, (phase - 1) * k);

    const auto happy = happy_edges(current, induced.coloring);
    std::vector<bool> keep(current.edge_count());
    std::size_t removed = 0;
    for (EdgeId e = 0; e < current.edge_count(); ++e) {
      keep[e] = !happy[e];
      if (happy[e]) ++removed;
    }
    stats.happy_removed = removed;
    result.total_round_bill += stats.compiled_rounds + 1;
    result.trace.push_back(stats);

    if (removed == 0) break;
    current = current.restrict_edges(keep);
  }

  result.success = (current.edge_count() == 0);
  result.colors_used = result.coloring.palette_size();
  if (result.success) PSL_ENSURES(is_conflict_free(h, result.coloring));
  return result;
}

}  // namespace pslocal
