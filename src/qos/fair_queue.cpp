#include "qos/fair_queue.hpp"

#include <utility>

#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace pslocal::qos {

namespace {
const obs::Counter g_admitted("qos.admitted");
const obs::Counter g_shed_rate("qos.shed_rate");
const obs::Counter g_shed_deadline("qos.shed_deadline");
const obs::Counter g_rejected_full("qos.rejected_full");
const obs::Histogram g_depth("qos.queue.depth");

/// Backoff hint for a lane-bound shed, where no token-bucket clock
/// exists to derive one from: long enough to let a dispatch cycle
/// drain the lane, fixed so replay schedules stay deterministic.
constexpr std::uint64_t kLaneBoundBackoffUs = 1000;
}  // namespace

FairQueue::FairQueue(const QosConfig& config, std::size_t capacity)
    : registry_(config.tenants),
      capacity_(capacity),
      quantum_(config.quantum > 0 ? config.quantum : 1) {
  PSL_EXPECTS(capacity > 0);
  lanes_.reserve(registry_.size());
  for (std::size_t i = 0; i < registry_.size(); ++i) {
    const TenantConfig& cfg = registry_.config(i);
    lanes_.emplace_back(TokenBucket(cfg.rate_rps, cfg.burst));
  }
  Rng rng(config.seed);
  order_ = rng.permutation(registry_.size());
}

service::AdmissionVerdict FairQueue::admit(service::Pending&& pending) {
  service::AdmissionVerdict verdict;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return {service::Admission::kShutdown, 0};
    const std::size_t idx = registry_.resolve(pending.request.tenant);
    const TenantConfig& cfg = registry_.config(idx);
    Lane& lane = lanes_[idx];
    if (total_ >= capacity_) {
      g_rejected_full.add();
      return {service::Admission::kQueueFull, 0};
    }
    if (cfg.queue_limit > 0 && lane.fifo.size() >= cfg.queue_limit) {
      ++lane.shed_rate;
      g_shed_rate.add();
      return {service::Admission::kShed, kLaneBoundBackoffUs};
    }
    const TokenBucket::Verdict tb = lane.bucket.try_acquire(pending.submit_ns);
    if (!tb.admitted) {
      ++lane.shed_rate;
      g_shed_rate.add();
      return {service::Admission::kShed, tb.retry_after_us};
    }
    pending.tenant = idx;
    if (cfg.deadline_ms > 0)
      pending.deadline_ns = pending.submit_ns + cfg.deadline_ms * 1'000'000;
    lane.fifo.push_back(std::move(pending));
    ++lane.admitted;
    ++total_;
    g_admitted.add();
    g_depth.record(total_);
    verdict = {service::Admission::kAccepted, 0};
  }
  cv_.notify_one();
  return verdict;
}

std::size_t FairQueue::pop_batch(std::vector<service::Pending>& out,
                                 std::size_t max) {
  PSL_EXPECTS(max > 0);
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return total_ > 0 || shutdown_; });
  std::size_t popped = 0;
  // Deficit round robin over the seeded visit order: each visit of a
  // backlogged lane earns quantum x weight credit; unit request cost.
  // An empty lane forfeits its carry (classic DRR — idle tenants do not
  // bank credit while others drain).
  while (popped < max && total_ > 0) {
    for (const std::size_t idx : order_) {
      Lane& lane = lanes_[idx];
      if (lane.fifo.empty()) {
        lane.deficit = 0;
        continue;
      }
      lane.deficit += quantum_ * registry_.config(idx).weight;
      while (lane.deficit >= 1 && !lane.fifo.empty() && popped < max) {
        out.push_back(std::move(lane.fifo.front()));
        lane.fifo.pop_front();
        lane.deficit -= 1;
        --total_;
        ++popped;
      }
      if (lane.fifo.empty()) lane.deficit = 0;
      if (popped >= max) break;
    }
  }
  return popped;
}

void FairQueue::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

std::size_t FairQueue::drain(std::vector<service::Pending>& out) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t n = total_;
  for (const std::size_t idx : order_) {
    Lane& lane = lanes_[idx];
    while (!lane.fifo.empty()) {
      out.push_back(std::move(lane.fifo.front()));
      lane.fifo.pop_front();
    }
    lane.deficit = 0;
  }
  total_ = 0;
  return n;
}

std::size_t FairQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

void FairQueue::record_deadline_shed(std::size_t tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  PSL_EXPECTS(tenant < lanes_.size());
  ++lanes_[tenant].shed_deadline;
  g_shed_deadline.add();
}

std::vector<FairQueue::TenantSnapshot> FairQueue::tenant_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TenantSnapshot> out;
  out.reserve(lanes_.size());
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    const TenantConfig& cfg = registry_.config(i);
    const Lane& lane = lanes_[i];
    out.push_back({cfg.name.empty() ? "default" : cfg.name, cfg.weight,
                   lane.fifo.size(), lane.admitted, lane.shed_rate,
                   lane.shed_deadline, lane.deficit});
  }
  return out;
}

}  // namespace pslocal::qos
