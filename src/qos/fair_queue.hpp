// Weighted-fair admission queue: per-tenant FIFOs drained by a seeded
// deficit-round-robin scheduler.
//
// Replaces the engine's single MPMC RequestQueue when EngineConfig.qos
// is on.  Admission applies, in order: the global capacity bound
// (kQueueFull — identical contract to RequestQueue), the tenant's
// optional per-lane queue bound and token bucket (kShed with a
// deterministic retry_after_us hint), then enqueue into the tenant's
// FIFO stamped with its deadline class.  The dispatcher's pop_batch
// visits tenant lanes in a seed-fixed permutation and credits each
// visit `quantum x weight` deficit, so backlogged tenants drain in
// proportion to their weights — the qc `qos_fairness` property pins the
// convergence, and because every decision is a pure function of the
// (tenant, submit_ns) admission schedule, the whole queue is
// deterministic under replay.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "qos/tenant.hpp"
#include "service/queue.hpp"

namespace pslocal::qos {

class FairQueue final : public service::AdmissionQueue {
 public:
  /// `capacity` bounds the total across all tenant lanes (the analogue
  /// of RequestQueue's bound; EngineConfig.queue_capacity).
  FairQueue(const QosConfig& config, std::size_t capacity);

  [[nodiscard]] service::AdmissionVerdict admit(
      service::Pending&& pending) override;
  std::size_t pop_batch(std::vector<service::Pending>& out,
                        std::size_t max) override;
  void shutdown() override;
  std::size_t drain(std::vector<service::Pending>& out) override;
  [[nodiscard]] std::size_t depth() const override;
  [[nodiscard]] std::size_t capacity() const override { return capacity_; }

  [[nodiscard]] const TenantRegistry& registry() const { return registry_; }

  /// Deadline sheds happen at dispatch (the engine owns the clock
  /// there); the engine reports them back so per-tenant stats are
  /// complete in one place.
  void record_deadline_shed(std::size_t tenant);

  /// Point-in-time per-tenant stats for service::stats_json.
  struct TenantSnapshot {
    std::string name;            // "default" for the default tenant
    std::uint64_t weight = 1;
    std::size_t depth = 0;       // requests queued in this lane now
    std::uint64_t admitted = 0;
    std::uint64_t shed_rate = 0;      // token-bucket / lane-bound sheds
    std::uint64_t shed_deadline = 0;  // past-deadline sheds at dispatch
    std::uint64_t deficit = 0;        // current DRR deficit carry
  };
  [[nodiscard]] std::vector<TenantSnapshot> tenant_stats() const;

 private:
  struct Lane {
    explicit Lane(TokenBucket b) : bucket(b) {}
    // Explicitly noexcept so vector growth moves lanes instead of
    // falling back to the (deleted — Pending holds a promise) copy.
    Lane(Lane&& other) noexcept = default;
    Lane& operator=(Lane&& other) noexcept = default;

    std::deque<service::Pending> fifo;
    TokenBucket bucket;
    std::uint64_t deficit = 0;
    std::uint64_t admitted = 0;
    std::uint64_t shed_rate = 0;
    std::uint64_t shed_deadline = 0;
  };

  const TenantRegistry registry_;
  const std::size_t capacity_;
  const std::uint64_t quantum_;
  std::vector<std::size_t> order_;  // seeded DRR visit permutation

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Lane> lanes_;
  std::size_t total_ = 0;
  bool shutdown_ = false;
};

}  // namespace pslocal::qos
