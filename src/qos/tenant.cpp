#include "qos/tenant.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/check.hpp"

namespace pslocal::qos {

TenantRegistry::TenantRegistry(std::vector<TenantConfig> tenants) {
  tenants_.push_back(TenantConfig{});  // index 0: the default tenant
  for (auto& t : tenants) {
    if (t.name.empty()) {  // policy override for the default tenant
      PSL_EXPECTS_MSG(t.weight > 0, "qos: tenant weight must be positive");
      tenants_[0] = std::move(t);
      continue;
    }
    PSL_EXPECTS_MSG(t.weight > 0, "qos: tenant weight must be positive");
    const auto [it, inserted] = index_.emplace(t.name, tenants_.size());
    PSL_EXPECTS_MSG(inserted, "qos: duplicate tenant name");
    (void)it;
    tenants_.push_back(std::move(t));
  }
}

std::size_t TenantRegistry::resolve(std::string_view name) const {
  if (name.empty()) return 0;
  const auto it = index_.find(std::string(name));
  return it == index_.end() ? 0 : it->second;
}

const TenantConfig& TenantRegistry::config(std::size_t index) const {
  PSL_EXPECTS(index < tenants_.size());
  return tenants_[index];
}

TokenBucket::TokenBucket(double rate_rps, double burst)
    : rate_per_ns_(rate_rps / 1e9),
      capacity_(burst > 0 ? burst : std::max(8.0, rate_rps / 10.0)),
      tokens_(capacity_) {
  PSL_EXPECTS_MSG(rate_rps >= 0, "qos: negative token-bucket rate");
}

TokenBucket::Verdict TokenBucket::try_acquire(std::uint64_t now_ns) {
  if (rate_per_ns_ <= 0) return {true, 0};
  if (now_ns > last_ns_) {
    tokens_ = std::min(
        capacity_, tokens_ + static_cast<double>(now_ns - last_ns_) *
                                 rate_per_ns_);
    last_ns_ = now_ns;
  }
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    return {true, 0};
  }
  // Deterministic hint: exactly how long until a whole token refills at
  // the configured rate (rounded up so a retry at the hint succeeds).
  const double deficit_ns = (1.0 - tokens_) / rate_per_ns_;
  const auto hint_us =
      static_cast<std::uint64_t>(std::ceil(deficit_ns / 1e3));
  return {false, std::max<std::uint64_t>(hint_us, 1)};
}

}  // namespace pslocal::qos
