// Multi-tenant QoS policy: tenant registry, token buckets, deadlines.
//
// A tenant is a named traffic class with a weighted-fair share
// (consumed by qos::FairQueue's deficit-round-robin), an optional
// token-bucket rate limit, and an optional deadline class.  The tenant
// id travels in the wire-frame header (docs/net.md); an absent or
// unknown id resolves to the default tenant, so pre-QoS senders and
// recorded replay streams are served unchanged.
//
// Everything here is deterministic: the token bucket is clocked by the
// caller-supplied admission timestamp (Pending.submit_ns), never by its
// own clock reads, so a recorded schedule of (tenant, submit_ns) pairs
// replays to the identical admit/shed sequence — which is what the qc
// `qos_fairness` and `qos_shed_purity` properties pin.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace pslocal::qos {

/// Per-tenant policy.  The zero-argument default is the policy of the
/// default tenant: weight 1, no rate limit, no deadline.
struct TenantConfig {
  std::string name;           // "" names the default tenant
  std::uint64_t weight = 1;   // DRR share (relative to other tenants)
  double rate_rps = 0.0;      // token-bucket refill rate; 0 = unlimited
  double burst = 0.0;         // bucket capacity in tokens; 0 = max(8, rate/10)
  std::uint64_t deadline_ms = 0;  // deadline class; 0 = no deadline
  std::size_t queue_limit = 0;    // per-tenant FIFO bound; 0 = global only
};

/// QoS knob block embedded in service::EngineConfig.  `enabled` false
/// keeps the engine on the single pre-QoS RequestQueue.
struct QosConfig {
  bool enabled = false;
  std::vector<TenantConfig> tenants;  // default tenant added if absent
  std::uint64_t quantum = 4;  // DRR deficit credit per weight unit per visit
  std::uint64_t seed = 1;     // seeds the DRR tenant visit order
};

/// Immutable name -> policy table.  Index 0 is always the default
/// tenant; unknown names resolve to it.
class TenantRegistry {
 public:
  /// Builds the table.  A config named "" overrides the default
  /// tenant's policy; duplicate names are a contract violation.
  explicit TenantRegistry(std::vector<TenantConfig> tenants = {});

  /// Registry index for a wire tenant id (unknown -> 0, the default).
  [[nodiscard]] std::size_t resolve(std::string_view name) const;

  [[nodiscard]] const TenantConfig& config(std::size_t index) const;
  [[nodiscard]] std::size_t size() const { return tenants_.size(); }

 private:
  std::vector<TenantConfig> tenants_;
  std::unordered_map<std::string, std::size_t> index_;
};

/// Deterministic token bucket.  Clocked entirely by the timestamps the
/// caller passes in (monotonically non-decreasing by contract of the
/// admission path, which stamps submit_ns under the queue lock).
class TokenBucket {
 public:
  /// rate_rps 0 disables the bucket (every acquire admits).
  TokenBucket(double rate_rps, double burst);

  struct Verdict {
    bool admitted = true;
    std::uint64_t retry_after_us = 0;  // time until the next whole token
  };

  /// Refill to `now_ns`, then take one token or compute the backoff
  /// hint: the exact time until a whole token exists, which makes the
  /// hint deterministic for a fixed timestamp schedule.
  [[nodiscard]] Verdict try_acquire(std::uint64_t now_ns);

  [[nodiscard]] double tokens() const { return tokens_; }

 private:
  double rate_per_ns_;  // 0 = unlimited
  double capacity_;
  double tokens_;
  std::uint64_t last_ns_ = 0;
};

}  // namespace pslocal::qos
