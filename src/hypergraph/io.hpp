// Plain-text hypergraph serialization:
//   line 1: "n m"
//   next m lines: "s v1 v2 ... vs"  (edge size, then its vertices)
#pragma once

#include <iosfwd>
#include <string>

#include "hypergraph/hypergraph.hpp"

namespace pslocal {

void write_hypergraph(std::ostream& os, const Hypergraph& h);
Hypergraph read_hypergraph(std::istream& is);

void save_hypergraph(const std::string& path, const Hypergraph& h);
Hypergraph load_hypergraph(const std::string& path);

}  // namespace pslocal
