#include "hypergraph/mutation.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "util/check.hpp"
#include "util/hash.hpp"

namespace pslocal {

namespace {

std::vector<std::vector<VertexId>> edge_lists(const Hypergraph& h) {
  std::vector<std::vector<VertexId>> edges;
  edges.reserve(h.edge_count());
  for (EdgeId e = 0; e < h.edge_count(); ++e) {
    const auto vs = h.edge(e);
    edges.emplace_back(vs.begin(), vs.end());
  }
  return edges;
}

}  // namespace

const char* mutation_op_name(MutationOp op) {
  switch (op) {
    case MutationOp::kAddEdge: return "add_edge";
    case MutationOp::kRemoveEdge: return "remove_edge";
    case MutationOp::kAddVertex: return "add_vertex";
    case MutationOp::kRemoveVertex: return "remove_vertex";
  }
  return "unknown";
}

Mutation Mutation::add_edge(std::vector<VertexId> vs) {
  Mutation m;
  m.op = MutationOp::kAddEdge;
  m.vertices = std::move(vs);
  return m;
}

Mutation Mutation::remove_edge(EdgeId e) {
  Mutation m;
  m.op = MutationOp::kRemoveEdge;
  m.edge = e;
  return m;
}

Mutation Mutation::add_vertex() {
  Mutation m;
  m.op = MutationOp::kAddVertex;
  return m;
}

Mutation Mutation::remove_vertex(VertexId v) {
  Mutation m;
  m.op = MutationOp::kRemoveVertex;
  m.vertices = {v};
  return m;
}

std::optional<std::string> validate_mutation(
    std::size_t n, const std::vector<std::vector<VertexId>>& edges,
    const Mutation& mut) {
  switch (mut.op) {
    case MutationOp::kAddEdge: {
      if (mut.vertices.empty()) return "add_edge: empty vertex list";
      for (const VertexId v : mut.vertices)
        if (v >= n) {
          std::ostringstream os;
          os << "add_edge: vertex " << v << " out of range (n=" << n << ")";
          return os.str();
        }
      std::vector<VertexId> sorted = mut.vertices;
      std::sort(sorted.begin(), sorted.end());
      if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end())
        return "add_edge: duplicate vertex";
      return std::nullopt;
    }
    case MutationOp::kRemoveEdge: {
      if (mut.edge >= edges.size()) {
        std::ostringstream os;
        os << "remove_edge: edge " << mut.edge << " out of range (m="
           << edges.size() << ")";
        return os.str();
      }
      return std::nullopt;
    }
    case MutationOp::kAddVertex:
      return std::nullopt;
    case MutationOp::kRemoveVertex: {
      if (mut.vertices.size() != 1)
        return "remove_vertex: expects exactly one vertex";
      if (mut.vertices[0] >= n) {
        std::ostringstream os;
        os << "remove_vertex: vertex " << mut.vertices[0]
           << " out of range (n=" << n << ")";
        return os.str();
      }
      return std::nullopt;
    }
  }
  return "unknown mutation op";
}

void apply_mutation(std::size_t& n, std::vector<std::vector<VertexId>>& edges,
                    const Mutation& mut) {
  const auto invalid = validate_mutation(n, edges, mut);
  PSL_CHECK_MSG(!invalid.has_value(), "mutation: " << *invalid);
  switch (mut.op) {
    case MutationOp::kAddEdge: {
      std::vector<VertexId> vs = mut.vertices;
      std::sort(vs.begin(), vs.end());
      edges.push_back(std::move(vs));
      break;
    }
    case MutationOp::kRemoveEdge:
      edges.erase(edges.begin() + mut.edge);
      break;
    case MutationOp::kAddVertex:
      ++n;
      break;
    case MutationOp::kRemoveVertex: {
      const VertexId v = mut.vertices[0];
      for (auto it = edges.begin(); it != edges.end();) {
        auto& edge = *it;
        const auto pos = std::lower_bound(edge.begin(), edge.end(), v);
        if (pos != edge.end() && *pos == v) {
          edge.erase(pos);
          if (edge.empty()) {
            it = edges.erase(it);
            continue;
          }
        }
        ++it;
      }
      break;
    }
  }
}

std::optional<std::string> validate_script(const Hypergraph& h,
                                           const std::vector<Mutation>& script) {
  std::size_t n = h.vertex_count();
  auto edges = edge_lists(h);
  for (std::size_t i = 0; i < script.size(); ++i) {
    if (const auto why = validate_mutation(n, edges, script[i])) {
      std::ostringstream os;
      os << "step " << i << ": " << *why;
      return os.str();
    }
    apply_mutation(n, edges, script[i]);
  }
  return std::nullopt;
}

Hypergraph apply_script(const Hypergraph& h,
                        const std::vector<Mutation>& script) {
  std::size_t n = h.vertex_count();
  auto edges = edge_lists(h);
  for (const Mutation& mut : script) apply_mutation(n, edges, mut);
  return Hypergraph(n, std::move(edges));
}

std::uint64_t hash_mutation(const Mutation& mut) {
  Fnv1a64 h;
  h.update_u64(static_cast<std::uint64_t>(mut.op));
  h.update_u64(mut.edge);
  h.update_u64(mut.vertices.size());
  for (const VertexId v : mut.vertices) h.update_u64(v);
  return h.digest();
}

std::uint64_t advance_epoch(std::uint64_t epoch, const Mutation& mut) {
  return hash_combine(mix64(epoch), hash_mutation(mut));
}

std::vector<std::uint64_t> epoch_chain(std::uint64_t base_epoch,
                                       const std::vector<Mutation>& script) {
  std::vector<std::uint64_t> chain;
  chain.reserve(script.size() + 1);
  chain.push_back(base_epoch);
  for (const Mutation& mut : script)
    chain.push_back(advance_epoch(chain.back(), mut));
  return chain;
}

std::string encode_script(const std::vector<Mutation>& script) {
  std::string out;
  const auto put_u64 = [&out](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out += static_cast<char>(v >> (8 * i));
  };
  put_u64(script.size());
  for (const Mutation& mut : script) {
    out += static_cast<char>(mut.op);
    put_u64(mut.edge);
    put_u64(mut.vertices.size());
    for (const VertexId v : mut.vertices) put_u64(v);
  }
  return out;
}

std::optional<std::vector<Mutation>> decode_script(std::string_view bytes) {
  std::size_t pos = 0;
  const auto read_u64 = [&](std::uint64_t& v) {
    if (bytes.size() - pos < 8) return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(
               static_cast<std::uint8_t>(bytes[pos + static_cast<std::size_t>(i)]))
           << (8 * i);
    pos += 8;
    return true;
  };
  std::uint64_t count = 0;
  if (!read_u64(count)) return std::nullopt;
  // Every mutation costs at least 17 bytes (op + edge + count words); a
  // lying count fails before any allocation.
  if (count > (bytes.size() - pos) / 17) return std::nullopt;
  std::vector<Mutation> script;
  script.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    if (pos >= bytes.size()) return std::nullopt;
    const auto op = static_cast<std::uint8_t>(bytes[pos++]);
    if (op > static_cast<std::uint8_t>(MutationOp::kRemoveVertex))
      return std::nullopt;
    Mutation mut;
    mut.op = static_cast<MutationOp>(op);
    std::uint64_t edge = 0, nverts = 0;
    if (!read_u64(edge) || !read_u64(nverts)) return std::nullopt;
    if (edge > std::numeric_limits<EdgeId>::max()) return std::nullopt;
    mut.edge = static_cast<EdgeId>(edge);
    if (nverts > (bytes.size() - pos) / 8) return std::nullopt;
    mut.vertices.reserve(static_cast<std::size_t>(nverts));
    for (std::uint64_t v = 0; v < nverts; ++v) {
      std::uint64_t word = 0;
      if (!read_u64(word)) return std::nullopt;
      if (word > std::numeric_limits<VertexId>::max()) return std::nullopt;
      mut.vertices.push_back(static_cast<VertexId>(word));
    }
    script.push_back(std::move(mut));
  }
  if (pos != bytes.size()) return std::nullopt;  // trailing bytes
  return script;
}

std::string describe(const Mutation& mut) {
  std::ostringstream os;
  os << mutation_op_name(mut.op);
  switch (mut.op) {
    case MutationOp::kAddEdge: {
      os << '{';
      for (std::size_t i = 0; i < mut.vertices.size(); ++i)
        os << (i ? "," : "") << mut.vertices[i];
      os << '}';
      break;
    }
    case MutationOp::kRemoveEdge:
      os << '(' << mut.edge << ')';
      break;
    case MutationOp::kAddVertex:
      break;
    case MutationOp::kRemoveVertex:
      os << '(' << (mut.vertices.empty() ? 0 : mut.vertices[0]) << ')';
      break;
  }
  return os.str();
}

std::string describe(const std::vector<Mutation>& script) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < script.size(); ++i)
    os << (i ? " " : "") << describe(script[i]);
  os << ']';
  return os.str();
}

}  // namespace pslocal
