// Structural predicates on hypergraphs used by the reduction and the
// experiment harnesses, most importantly ε-almost-uniformity:
//
//   "For a given constant 0 < ε <= 1 we call a hypergraph H = (V, E)
//    almost uniform if there is an arbitrary k such that for all edges
//    e ∈ E we have k <= |e| <= (1+ε)k."            (paper, Section 1)
#pragma once

#include <cstddef>
#include <optional>

#include "hypergraph/hypergraph.hpp"

namespace pslocal {

/// If H is ε-almost-uniform, the witness k (the corank qualifies whenever
/// any k does); std::nullopt otherwise.  Edgeless hypergraphs are almost
/// uniform with k = 1 by convention (the condition is vacuous).
std::optional<std::size_t> almost_uniform_witness(const Hypergraph& h,
                                                  double epsilon);

inline bool is_almost_uniform(const Hypergraph& h, double epsilon) {
  return almost_uniform_witness(h, epsilon).has_value();
}

/// Degree/size summary for experiment tables.
struct HypergraphStats {
  std::size_t vertices = 0;
  std::size_t edges = 0;
  std::size_t rank = 0;    // max edge size
  std::size_t corank = 0;  // min edge size
  std::size_t max_vertex_degree = 0;
  double avg_edge_size = 0.0;
  std::size_t incidence_size = 0;  // sum of edge sizes = |V(G_k)| / k
};
HypergraphStats hypergraph_stats(const Hypergraph& h);

/// True iff every pair of distinct edges has distinct vertex sets.
bool has_distinct_edges(const Hypergraph& h);

}  // namespace pslocal
