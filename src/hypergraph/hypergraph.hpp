// Hypergraph H = (V, E), the input structure of the conflict-free
// multicoloring problem (paper, Section 1).
//
// Vertices are dense ids 0..n-1.  Each hyperedge is a sorted vector of
// distinct vertices.  Hyperedges keep stable ids 0..m-1; the Theorem 1.1
// reduction runs on *edge subsets* H_i = (V, E_i) of the original
// hypergraph, represented by `restrict_edges`, which preserves original
// edge ids through `original_edge_id`.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "util/check.hpp"

namespace pslocal {

using EdgeId = std::uint32_t;

class Hypergraph {
 public:
  Hypergraph() = default;

  /// Construct from explicit edge lists.  Each edge must be non-empty with
  /// distinct in-range vertices (any order; stored sorted).
  Hypergraph(std::size_t n, std::vector<std::vector<VertexId>> edges);

  [[nodiscard]] std::size_t vertex_count() const { return n_; }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }

  /// Vertices of edge e, sorted ascending.
  [[nodiscard]] std::span<const VertexId> edge(EdgeId e) const {
    PSL_EXPECTS(e < edges_.size());
    return edges_[e];
  }

  [[nodiscard]] std::size_t edge_size(EdgeId e) const { return edge(e).size(); }

  /// Edges incident to vertex v.
  [[nodiscard]] std::span<const EdgeId> edges_of(VertexId v) const {
    PSL_EXPECTS(v < n_);
    return incidence_[v];
  }

  [[nodiscard]] std::size_t vertex_degree(VertexId v) const {
    return edges_of(v).size();
  }

  /// O(log |e|) membership test.
  [[nodiscard]] bool edge_contains(EdgeId e, VertexId v) const;

  /// Maximum / minimum edge size (rank / corank); 0 for edgeless H.
  [[nodiscard]] std::size_t rank() const;
  [[nodiscard]] std::size_t corank() const;

  /// The primal graph (a.k.a. communication graph in the LOCAL model over
  /// hypergraphs): u ~ v iff they share at least one hyperedge.
  [[nodiscard]] Graph primal_graph() const;

  /// The bipartite incidence graph: vertices 0..n-1 are the hypergraph
  /// vertices, vertices n..n+m-1 represent the hyperedges, with an edge
  /// v ~ (n + e) iff v ∈ e.  The alternative communication topology used
  /// by distributed hypergraph algorithms where hyperedges are agents.
  [[nodiscard]] Graph incidence_graph() const;

  /// Sub-hypergraph on the same vertex set keeping only the edges with
  /// keep[e] == true.  `original_edge_id(e')` on the result maps back.
  [[nodiscard]] Hypergraph restrict_edges(const std::vector<bool>& keep) const;

  /// Identity for directly constructed hypergraphs; for restrictions,
  /// the id of this edge in the hypergraph it was restricted from.
  [[nodiscard]] EdgeId original_edge_id(EdgeId e) const {
    PSL_EXPECTS(e < edges_.size());
    return original_ids_[e];
  }

 private:
  std::size_t n_ = 0;
  std::vector<std::vector<VertexId>> edges_;
  std::vector<std::vector<EdgeId>> incidence_;
  std::vector<EdgeId> original_ids_;
};

}  // namespace pslocal
