#include "hypergraph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace pslocal {

PlantedCfInstance planted_cf_colorable(const PlantedCfParams& params,
                                       Rng& rng) {
  const std::size_t n = params.n;
  const std::size_t k = params.k;
  PSL_EXPECTS(k >= 2);
  PSL_EXPECTS(params.epsilon > 0.0 && params.epsilon <= 1.0);
  const auto max_size = static_cast<std::size_t>(
      std::floor((1.0 + params.epsilon) * static_cast<double>(k)));
  PSL_EXPECTS_MSG(n >= 2 * max_size,
                  "need n >= 2*(1+eps)*k, got n=" << n << " k=" << k);

  PlantedCfInstance out;
  out.k = k;

  // Balanced planted coloring: shuffle vertices, deal colors round-robin.
  // Every color class has >= floor(n/k) >= 2 members, and the complement
  // of any class has >= n - ceil(n/k) >= max_size - 1 members, so edge
  // sampling below cannot starve.
  out.planted_coloring.assign(n, 0);
  const auto perm = rng.permutation(n);
  for (std::size_t i = 0; i < n; ++i)
    out.planted_coloring[perm[i]] = (i % k) + 1;

  std::vector<std::vector<VertexId>> by_color(k + 1);
  std::vector<VertexId> all(n);
  for (VertexId v = 0; v < n; ++v) {
    all[v] = v;
    by_color[out.planted_coloring[v]].push_back(v);
  }

  std::set<std::vector<VertexId>> seen;
  std::vector<std::vector<VertexId>> edges;
  edges.reserve(params.m);
  for (std::size_t e = 0; e < params.m; ++e) {
    std::vector<VertexId> edge;
    for (int attempt = 0; attempt < 32; ++attempt) {
      const auto s = static_cast<std::size_t>(
          rng.next_int(static_cast<std::int64_t>(k),
                       static_cast<std::int64_t>(max_size)));
      // Witness vertex: its planted color appears exactly once in the edge.
      const auto w = static_cast<VertexId>(rng.next_below(n));
      const std::size_t wc = out.planted_coloring[w];
      // Remaining s-1 vertices come from other color classes.
      std::vector<VertexId> pool;
      pool.reserve(n - by_color[wc].size());
      for (VertexId v : all)
        if (out.planted_coloring[v] != wc) pool.push_back(v);
      PSL_CHECK(pool.size() >= s - 1);
      const auto picks = rng.sample_without_replacement(pool.size(), s - 1);
      edge.clear();
      edge.push_back(w);
      for (auto idx : picks) edge.push_back(pool[idx]);
      std::sort(edge.begin(), edge.end());
      if (!params.distinct_edges || seen.insert(edge).second) break;
      edge.clear();
    }
    // After exhausting retries accept a duplicate rather than failing:
    // duplicate edges are legal hyperedges and CF-colorability persists.
    if (edge.empty()) {
      const auto s = k;
      const auto w = static_cast<VertexId>(rng.next_below(n));
      const std::size_t wc = out.planted_coloring[w];
      std::vector<VertexId> pool;
      for (VertexId v : all)
        if (out.planted_coloring[v] != wc) pool.push_back(v);
      const auto picks = rng.sample_without_replacement(pool.size(), s - 1);
      edge.push_back(w);
      for (auto idx : picks) edge.push_back(pool[idx]);
    }
    edges.push_back(std::move(edge));
  }
  out.hypergraph = Hypergraph(n, std::move(edges));
  return out;
}

Hypergraph interval_hypergraph(std::size_t n, std::size_t m,
                               std::size_t min_len, std::size_t max_len,
                               Rng& rng) {
  PSL_EXPECTS(min_len >= 1 && min_len <= max_len && max_len <= n);
  std::vector<std::vector<VertexId>> edges;
  edges.reserve(m);
  for (std::size_t e = 0; e < m; ++e) {
    const auto len = static_cast<std::size_t>(
        rng.next_int(static_cast<std::int64_t>(min_len),
                     static_cast<std::int64_t>(max_len)));
    const auto a = static_cast<std::size_t>(rng.next_below(n - len + 1));
    std::vector<VertexId> edge(len);
    for (std::size_t i = 0; i < len; ++i)
      edge[i] = static_cast<VertexId>(a + i);
    edges.push_back(std::move(edge));
  }
  return Hypergraph(n, std::move(edges));
}

Hypergraph all_intervals(std::size_t n, std::size_t min_len,
                         std::size_t max_len) {
  PSL_EXPECTS(min_len >= 1 && min_len <= max_len && max_len <= n);
  std::vector<std::vector<VertexId>> edges;
  for (std::size_t len = min_len; len <= max_len; ++len) {
    for (std::size_t a = 0; a + len <= n; ++a) {
      std::vector<VertexId> edge(len);
      for (std::size_t i = 0; i < len; ++i)
        edge[i] = static_cast<VertexId>(a + i);
      edges.push_back(std::move(edge));
    }
  }
  return Hypergraph(n, std::move(edges));
}

Hypergraph closed_neighborhood_hypergraph(const Graph& g) {
  std::vector<std::vector<VertexId>> edges;
  edges.reserve(g.vertex_count());
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    std::vector<VertexId> edge{v};
    edge.insert(edge.end(), g.neighbors(v).begin(), g.neighbors(v).end());
    edges.push_back(std::move(edge));
  }
  return Hypergraph(g.vertex_count(), std::move(edges));
}

Hypergraph random_uniform_hypergraph(std::size_t n, std::size_t m,
                                     std::size_t s, Rng& rng) {
  PSL_EXPECTS(s >= 1 && s <= n);
  std::vector<std::vector<VertexId>> edges;
  edges.reserve(m);
  for (std::size_t e = 0; e < m; ++e) {
    const auto picks = rng.sample_without_replacement(n, s);
    std::vector<VertexId> edge;
    edge.reserve(s);
    for (auto p : picks) edge.push_back(static_cast<VertexId>(p));
    edges.push_back(std::move(edge));
  }
  return Hypergraph(n, std::move(edges));
}

}  // namespace pslocal
