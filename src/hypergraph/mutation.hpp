// Incremental hypergraph mutations and the epoch hash chain.
//
// A Mutation is one bounded edit of a hypergraph: append an edge, erase
// an edge, append an isolated vertex, or remove a vertex from every edge
// containing it.  A mutation *script* is an ordered list of mutations;
// the service layer (service/request.hpp, kind mutate_hypergraph) applies
// scripts against a base instance, and the dynamic conflict graph
// (core/dynamic_conflict_graph.hpp) patches G_k in place per step.
//
// Id semantics are chosen so deltas stay local and replayable:
//
//  * add_edge appends at id m (existing edge ids are stable);
//  * remove_edge erases id e, ids above e shift down by one;
//  * add_vertex appends isolated vertex n;
//  * remove_vertex is a *tombstone*: the vertex slot stays (n is
//    unchanged) but v disappears from every incident edge.  Edges left
//    empty are erased (ascending scan, ids shift as for remove_edge).
//
// Epoch chaining: a graph state is named by the hash chain
//   epoch_0 = hash_hypergraph(base)
//   epoch_{i+1} = advance_epoch(epoch_i, script[i])
//                = hash_combine(mix64(epoch_i), hash_mutation(script[i]))
// so the epoch after step i commits to the base content AND the entire
// mutation prefix in order.  Cache keys derived from an epoch are
// re-derivable by replaying the script — that is what lets
// SolverCache/ConflictGraphCache entries survive (and be invalidated)
// per mutation epoch without a coordination channel.  mix64 decorrelates
// successive chain links the way the shard ring decorrelates FNV
// digests (util/hash.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "hypergraph/hypergraph.hpp"

namespace pslocal {

enum class MutationOp : std::uint8_t {
  kAddEdge,       // append `vertices` as edge m
  kRemoveEdge,    // erase edge `edge`; later ids shift down
  kAddVertex,     // append isolated vertex n
  kRemoveVertex,  // tombstone vertices[0] out of every incident edge
};

/// Stable wire name ("add_edge", "remove_edge", "add_vertex",
/// "remove_vertex").
[[nodiscard]] const char* mutation_op_name(MutationOp op);

struct Mutation {
  MutationOp op = MutationOp::kAddEdge;
  EdgeId edge = 0;                 // kRemoveEdge target; 0 otherwise
  std::vector<VertexId> vertices;  // kAddEdge members; kRemoveVertex {v}

  [[nodiscard]] bool operator==(const Mutation&) const = default;

  [[nodiscard]] static Mutation add_edge(std::vector<VertexId> vs);
  [[nodiscard]] static Mutation remove_edge(EdgeId e);
  [[nodiscard]] static Mutation add_vertex();
  [[nodiscard]] static Mutation remove_vertex(VertexId v);
};

/// Check `mut` against a raw (n, edges) state.  nullopt = applicable;
/// otherwise a human-readable reason (used verbatim in service error
/// payloads and qc counterexample reports).
[[nodiscard]] std::optional<std::string> validate_mutation(
    std::size_t n, const std::vector<std::vector<VertexId>>& edges,
    const Mutation& mut);

/// Apply `mut` in place to a raw (n, edges) state.  Edge vertex lists are
/// kept sorted (matching the Hypergraph constructor's canonical form).
/// PSL_CHECKs validate_mutation.
void apply_mutation(std::size_t& n, std::vector<std::vector<VertexId>>& edges,
                    const Mutation& mut);

/// Validate a whole script against h, simulating each prefix.  Returns
/// the first step's reason as "step i: <reason>", or nullopt.
[[nodiscard]] std::optional<std::string> validate_script(
    const Hypergraph& h, const std::vector<Mutation>& script);

/// Reference semantics: the hypergraph after applying the whole script.
/// PSL_CHECKs validity.  The dynamic conflict graph must agree with this
/// at every prefix (the repair-vs-recompute differential pins it).
[[nodiscard]] Hypergraph apply_script(const Hypergraph& h,
                                      const std::vector<Mutation>& script);

/// Canonical content hash of one mutation (op, edge, vertex list, all as
/// fixed-width words — one-field flips always change the digest).
[[nodiscard]] std::uint64_t hash_mutation(const Mutation& mut);

/// One link of the epoch chain (see header comment).
[[nodiscard]] std::uint64_t advance_epoch(std::uint64_t epoch,
                                          const Mutation& mut);

/// The full chain: chain[0] = base_epoch, chain[i+1] after script[i].
/// chain.size() == script.size() + 1.
[[nodiscard]] std::vector<std::uint64_t> epoch_chain(
    std::uint64_t base_epoch, const std::vector<Mutation>& script);

/// Canonical byte encoding of a script (count, then per mutation: op
/// byte, u64 edge, u64 vertex count, u64 per vertex — all little-endian
/// fixed width, the util/hash.hpp conventions).  Used both on the wire
/// (net/wire.cpp) and inside mutate cache keys.
[[nodiscard]] std::string encode_script(const std::vector<Mutation>& script);

/// Bounds-checked inverse of encode_script; nullopt on truncated, lying
/// or trailing bytes (the wire decoder's strictness rules).
[[nodiscard]] std::optional<std::vector<Mutation>> decode_script(
    std::string_view bytes);

/// Compact printable form: "add_edge{1,4,7}", "remove_edge(3)",
/// "add_vertex", "remove_vertex(2)".
[[nodiscard]] std::string describe(const Mutation& mut);

/// Whole-script form: "[add_edge{1,4} remove_edge(0)]".
[[nodiscard]] std::string describe(const std::vector<Mutation>& script);

}  // namespace pslocal
