#include "hypergraph/hypergraph.hpp"

#include <algorithm>
#include <numeric>

namespace pslocal {

Hypergraph::Hypergraph(std::size_t n, std::vector<std::vector<VertexId>> edges)
    : n_(n), edges_(std::move(edges)) {
  incidence_.resize(n_);
  original_ids_.resize(edges_.size());
  std::iota(original_ids_.begin(), original_ids_.end(), EdgeId{0});
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    auto& verts = edges_[e];
    PSL_EXPECTS_MSG(!verts.empty(), "hyperedge " << e << " is empty");
    std::sort(verts.begin(), verts.end());
    PSL_EXPECTS_MSG(
        std::adjacent_find(verts.begin(), verts.end()) == verts.end(),
        "hyperedge " << e << " has duplicate vertices");
    PSL_EXPECTS_MSG(verts.back() < n_,
                    "hyperedge " << e << " vertex out of range");
    for (VertexId v : verts) incidence_[v].push_back(e);
  }
}

bool Hypergraph::edge_contains(EdgeId e, VertexId v) const {
  const auto verts = edge(e);
  return std::binary_search(verts.begin(), verts.end(), v);
}

std::size_t Hypergraph::rank() const {
  std::size_t r = 0;
  for (const auto& e : edges_) r = std::max(r, e.size());
  return r;
}

std::size_t Hypergraph::corank() const {
  if (edges_.empty()) return 0;
  std::size_t r = edges_.front().size();
  for (const auto& e : edges_) r = std::min(r, e.size());
  return r;
}

Graph Hypergraph::primal_graph() const {
  GraphBuilder b(n_);
  for (const auto& verts : edges_)
    for (std::size_t i = 0; i < verts.size(); ++i)
      for (std::size_t j = i + 1; j < verts.size(); ++j)
        b.add_edge(verts[i], verts[j]);
  return b.build();
}

Graph Hypergraph::incidence_graph() const {
  GraphBuilder b(n_ + edges_.size());
  for (EdgeId e = 0; e < edges_.size(); ++e)
    for (VertexId v : edges_[e])
      b.add_edge(v, static_cast<VertexId>(n_ + e));
  return b.build();
}

Hypergraph Hypergraph::restrict_edges(const std::vector<bool>& keep) const {
  PSL_EXPECTS(keep.size() == edges_.size());
  std::vector<std::vector<VertexId>> kept;
  std::vector<EdgeId> kept_ids;
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    if (keep[e]) {
      kept.push_back(edges_[e]);
      kept_ids.push_back(original_ids_[e]);
    }
  }
  Hypergraph h(n_, std::move(kept));
  h.original_ids_ = std::move(kept_ids);
  return h;
}

}  // namespace pslocal
