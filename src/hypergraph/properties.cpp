#include "hypergraph/properties.hpp"

#include <algorithm>
#include <set>
#include <vector>

namespace pslocal {

std::optional<std::size_t> almost_uniform_witness(const Hypergraph& h,
                                                  double epsilon) {
  PSL_EXPECTS(epsilon > 0.0 && epsilon <= 1.0);
  if (h.edge_count() == 0) return std::size_t{1};
  const std::size_t k = h.corank();
  const std::size_t r = h.rank();
  // If any k works then k = corank works: corank <= |e| holds by
  // definition, and the upper bound (1+eps)*corank >= (1+eps)*k' >= rank
  // for any valid witness k' <= corank.
  if (static_cast<double>(r) <= (1.0 + epsilon) * static_cast<double>(k))
    return k;
  return std::nullopt;
}

HypergraphStats hypergraph_stats(const Hypergraph& h) {
  HypergraphStats s;
  s.vertices = h.vertex_count();
  s.edges = h.edge_count();
  s.rank = h.rank();
  s.corank = h.corank();
  for (VertexId v = 0; v < h.vertex_count(); ++v)
    s.max_vertex_degree = std::max(s.max_vertex_degree, h.vertex_degree(v));
  for (EdgeId e = 0; e < h.edge_count(); ++e)
    s.incidence_size += h.edge_size(e);
  s.avg_edge_size = h.edge_count() == 0
                        ? 0.0
                        : static_cast<double>(s.incidence_size) /
                              static_cast<double>(h.edge_count());
  return s;
}

bool has_distinct_edges(const Hypergraph& h) {
  std::set<std::vector<VertexId>> seen;
  for (EdgeId e = 0; e < h.edge_count(); ++e) {
    const auto verts = h.edge(e);
    if (!seen.emplace(verts.begin(), verts.end()).second) return false;
  }
  return true;
}

}  // namespace pslocal
