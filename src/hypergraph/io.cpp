#include "hypergraph/io.hpp"

#include <fstream>

#include "util/check.hpp"

namespace pslocal {

void write_hypergraph(std::ostream& os, const Hypergraph& h) {
  os << h.vertex_count() << ' ' << h.edge_count() << '\n';
  for (EdgeId e = 0; e < h.edge_count(); ++e) {
    os << h.edge_size(e);
    for (VertexId v : h.edge(e)) os << ' ' << v;
    os << '\n';
  }
}

Hypergraph read_hypergraph(std::istream& is) {
  std::size_t n = 0, m = 0;
  PSL_CHECK_MSG(static_cast<bool>(is >> n >> m), "bad hypergraph header");
  std::vector<std::vector<VertexId>> edges;
  edges.reserve(m);
  for (std::size_t e = 0; e < m; ++e) {
    std::size_t s = 0;
    PSL_CHECK_MSG(static_cast<bool>(is >> s), "bad edge size at edge " << e);
    std::vector<VertexId> edge(s);
    for (std::size_t i = 0; i < s; ++i)
      PSL_CHECK_MSG(static_cast<bool>(is >> edge[i]),
                    "bad vertex in edge " << e);
    edges.push_back(std::move(edge));
  }
  return Hypergraph(n, std::move(edges));
}

void save_hypergraph(const std::string& path, const Hypergraph& h) {
  std::ofstream f(path);
  PSL_CHECK_MSG(f.good(), "cannot open " << path << " for writing");
  write_hypergraph(f, h);
}

Hypergraph load_hypergraph(const std::string& path) {
  std::ifstream f(path);
  PSL_CHECK_MSG(f.good(), "cannot open " << path << " for reading");
  return read_hypergraph(f);
}

}  // namespace pslocal
