// Hypergraph workload generators.
//
// The hardness proof of Theorem 1.1 operates on hypergraphs that
// "all admit a conflictfree k-coloring where each node only has a single
// color and k = poly log n".  The authors' instances come from the
// [GKM17] completeness construction, which we cannot reuse verbatim
// (it embeds arbitrary P-SLOCAL problems); instead `planted_cf_colorable`
// *plants* such a coloring, which yields exactly the precondition the
// reduction needs (see DESIGN.md §5).  Interval hypergraphs provide a
// second family with a known-good baseline ([DN18]-style, dyadic CF
// coloring with ⌊log2 n⌋+1 colors).
#pragma once

#include <cstddef>
#include <vector>

#include "hypergraph/hypergraph.hpp"
#include "util/rng.hpp"

namespace pslocal {

/// A hypergraph together with the coloring planted at generation time.
/// The planted coloring is a certificate that H (and every edge subset of
/// H) admits a conflict-free k-coloring with single colors per node.
struct PlantedCfInstance {
  Hypergraph hypergraph;
  std::vector<std::size_t> planted_coloring;  // vertex -> color in [1, k]
  std::size_t k = 0;
};

/// Parameters for the planted generator.
struct PlantedCfParams {
  std::size_t n = 64;        // vertices
  std::size_t m = 64;        // hyperedges
  std::size_t k = 4;         // planted palette size
  double epsilon = 1.0;      // almost-uniformity slack (0 < eps <= 1)
  bool distinct_edges = true;  // retry duplicates (best effort)
};

/// Generate an ε-almost-uniform hypergraph with a planted CF k-coloring:
/// every edge has size in [k, (1+eps)k] and contains exactly one vertex of
/// its witness color, so the planted coloring is conflict-free.
/// Requires n >= 2 * ceil((1+eps) k) and k >= 2.
PlantedCfInstance planted_cf_colorable(const PlantedCfParams& params, Rng& rng);

/// m random intervals [a, a+len-1] over points 0..n-1 with
/// len in [min_len, max_len].
Hypergraph interval_hypergraph(std::size_t n, std::size_t m,
                               std::size_t min_len, std::size_t max_len,
                               Rng& rng);

/// All intervals over 0..n-1 of length in [min_len, max_len].
Hypergraph all_intervals(std::size_t n, std::size_t min_len,
                         std::size_t max_len);

/// m edges, each s distinct uniform vertices (s-uniform hypergraph).
Hypergraph random_uniform_hypergraph(std::size_t n, std::size_t m,
                                     std::size_t s, Rng& rng);

/// The closed-neighborhood hypergraph of a graph: one hyperedge
/// N[v] = {v} ∪ N(v) per vertex.  Conflict-free coloring of such
/// hypergraphs ("CF coloring of graph neighborhoods") is the
/// graph-theoretic special case studied alongside [DN18]; it gives the
/// reduction a third structurally distinct workload family.
Hypergraph closed_neighborhood_hypergraph(const Graph& g);

}  // namespace pslocal
