// Umbrella header of the network tier (src/net/).
//
//   net/wire.hpp     length-prefixed binary frames + payload codecs,
//                    strict bounded incremental FrameDecoder
//   net/server.hpp   non-blocking poll TCP server fronting ServiceEngine
//   net/client.hpp   pipelined client with deadlines and seeded retries
//
// docs/net.md documents the wire format, the per-connection state
// machine and the backpressure contract end to end.
#pragma once

#include "net/client.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
