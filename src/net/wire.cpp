#include "net/wire.hpp"

#include <cstring>
#include <utility>
#include <vector>

#include "util/check.hpp"
#include "util/hash.hpp"

namespace pslocal::net::wire {

namespace {

void put_u8(std::string& out, std::uint8_t v) {
  out += static_cast<char>(v);
}

void put_u16(std::string& out, std::uint16_t v) {
  for (int i = 0; i < 2; ++i) out += static_cast<char>(v >> (8 * i));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out += static_cast<char>(v >> (8 * i));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out += static_cast<char>(v >> (8 * i));
}

void put_string(std::string& out, std::string_view s) {
  put_u64(out, s.size());
  out += s;
}

/// Bounds-checked little-endian cursor over untrusted bytes.  Every
/// read either succeeds or returns false leaving `ok()` false; no read
/// ever touches memory past the view.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  bool read_u8(std::uint8_t& v) {
    if (remaining() < 1) return ok_ = false;
    v = static_cast<std::uint8_t>(bytes_[pos_++]);
    return true;
  }

  bool read_u64(std::uint64_t& v) {
    if (remaining() < 8) return ok_ = false;
    v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(
               static_cast<std::uint8_t>(bytes_[pos_ + static_cast<std::size_t>(i)]))
           << (8 * i);
    pos_ += 8;
    return true;
  }

  /// Length-prefixed string whose length must fit in the remaining
  /// bytes — a lying prefix fails before any allocation.
  bool read_string(std::string& v) {
    std::uint64_t len = 0;
    if (!read_u64(len)) return false;
    if (len > remaining()) return ok_ = false;
    v.assign(bytes_.data() + pos_, static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return true;
  }

  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }
  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] bool exhausted() const { return remaining() == 0; }

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

std::uint32_t load_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[i])) << (8 * i);
  return v;
}

std::uint64_t load_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(p[i])) << (8 * i);
  return v;
}

bool set_error(std::string* error, const std::string& why) {
  if (error != nullptr) *error = why;
  return false;
}

}  // namespace

bool frame_kind_valid(std::uint8_t kind) {
  return kind >= static_cast<std::uint8_t>(FrameKind::kRequest) &&
         kind <= static_cast<std::uint8_t>(FrameKind::kStatsResponse);
}

std::string encode_frame(const Frame& frame, std::uint8_t version) {
  PSL_EXPECTS(frame.tenant.size() <= kMaxTenantLen);
  PSL_EXPECTS(frame.tenant.size() + frame.payload.size() <= kMaxPayload);
  PSL_EXPECTS_MSG(version == 1 || version == 2,
                  "net: unencodable frame version");
  PSL_EXPECTS_MSG(version == 2 || frame.tenant.empty(),
                  "net: v1 frames cannot carry a tenant id");
  const std::size_t header = version == 1 ? kHeaderSizeV1 : kHeaderSize;
  // The payload region is tenant-prefix + logical payload; one checksum
  // covers both, and an empty tenant reproduces the pre-QoS bytes.
  const std::size_t region = frame.tenant.size() + frame.payload.size();
  Fnv1a64 fnv;
  fnv.update_bytes(frame.tenant.data(), frame.tenant.size());
  fnv.update_bytes(frame.payload.data(), frame.payload.size());
  std::string out;
  out.reserve(header + region);
  put_u32(out, kMagic);
  put_u8(out, version);
  put_u8(out, static_cast<std::uint8_t>(frame.kind));
  put_u16(out, 0);
  put_u64(out, frame.request_id);
  put_u32(out, static_cast<std::uint32_t>(region));
  put_u32(out, static_cast<std::uint32_t>(frame.tenant.size()));
  put_u64(out, fnv.digest());
  if (version == 2) {
    put_u64(out, frame.trace_id);
    put_u64(out, frame.parent_span_id);
  }
  out += frame.tenant;
  out += frame.payload;
  PSL_ENSURES(out.size() == header + region);
  return out;
}

FrameDecoder::FrameDecoder(std::size_t max_payload)
    : max_payload_(max_payload) {}

void FrameDecoder::feed(const char* data, std::size_t len) {
  if (corrupt_ || len == 0) return;
  // Compact lazily: only once parsed bytes dominate the buffer, so a
  // steady stream of small frames doesn't memmove per frame.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, len);
}

FrameDecoder::Result FrameDecoder::fail(const std::string& why) {
  corrupt_ = true;
  error_ = why;
  buffer_.clear();
  consumed_ = 0;
  return Result::kCorrupt;
}

FrameDecoder::Result FrameDecoder::next(Frame& out) {
  if (corrupt_) return Result::kCorrupt;
  const std::size_t avail = buffer_.size() - consumed_;
  if (avail < kHeaderSizeV1) return Result::kNeedMore;
  const char* h = buffer_.data() + consumed_;

  if (load_u32(h) != kMagic) return fail("bad magic");
  const auto version = static_cast<std::uint8_t>(h[4]);
  if (version != 1 && version != kVersion)
    return fail("unsupported version " + std::to_string(version));
  // v1 peers stop after the checksum word; v2 appends the trace words.
  const std::size_t header_size = version == 1 ? kHeaderSizeV1 : kHeaderSize;
  const auto kind = static_cast<std::uint8_t>(h[5]);
  if (!frame_kind_valid(kind))
    return fail("unknown frame kind " + std::to_string(kind));
  if (h[6] != 0 || h[7] != 0) return fail("nonzero reserved field");
  const std::uint64_t request_id = load_u64(h + 8);
  const std::uint32_t payload_len = load_u32(h + 16);
  if (payload_len > max_payload_)
    return fail("payload length " + std::to_string(payload_len) +
                " exceeds bound " + std::to_string(max_payload_));
  const std::uint32_t tenant_len = load_u32(h + 20);
  if (version == 1) {
    // v1 has no tenant field — the word is still reserved there.
    if (tenant_len != 0) return fail("nonzero reserved field");
  } else {
    // The tenant prefix must fit inside the declared payload region: a
    // lying tenant_len cannot move the payload split past the bytes the
    // checksum covers (regression-pinned; fuzzed by qc `net_frame`).
    if (tenant_len > payload_len)
      return fail("tenant length " + std::to_string(tenant_len) +
                  " exceeds payload bound " + std::to_string(payload_len));
    if (tenant_len > kMaxTenantLen)
      return fail("tenant length " + std::to_string(tenant_len) +
                  " exceeds bound " + std::to_string(kMaxTenantLen));
  }
  const std::uint64_t payload_fnv = load_u64(h + 24);

  if (avail < header_size + payload_len) return Result::kNeedMore;
  const std::string_view region(h + header_size, payload_len);
  if (fnv1a64(region) != payload_fnv) return fail("payload checksum mismatch");

  out.kind = static_cast<FrameKind>(kind);
  out.request_id = request_id;
  out.trace_id = version == 1 ? 0 : load_u64(h + 32);
  out.parent_span_id = version == 1 ? 0 : load_u64(h + 40);
  out.tenant.assign(region.data(), tenant_len);
  out.payload.assign(region.data() + tenant_len, region.size() - tenant_len);
  consumed_ += header_size + payload_len;
  if (consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  }
  return Result::kFrame;
}

std::string encode_request(const service::Request& req) {
  PSL_EXPECTS_MSG(req.instance != nullptr, "net: request has no instance");
  std::string out;
  put_u8(out, static_cast<std::uint8_t>(req.kind));
  put_u64(out, req.k);
  put_u64(out, req.seed);
  put_string(out, req.solver);
  put_string(out, canonical_bytes(*req.instance));
  // The mutation script rides as one extra length-prefixed field, only
  // for the kind that consumes it — the other kinds' bytes are
  // unchanged from the 5-field codec.
  if (req.kind == service::RequestKind::kMutateHypergraph)
    put_string(out, encode_script(req.script));
  return out;
}

bool decode_request(std::string_view payload, service::Request& out,
                    std::string* error) {
  ByteReader r(payload);
  std::uint8_t kind = 0;
  std::uint64_t k = 0, seed = 0;
  std::string solver, instance_bytes;
  if (!r.read_u8(kind) || !r.read_u64(k) || !r.read_u64(seed) ||
      !r.read_string(solver) || !r.read_string(instance_bytes))
    return set_error(error, "request payload truncated");
  if (kind >
      static_cast<std::uint8_t>(service::RequestKind::kMutateHypergraph))
    return set_error(error,
                     "unknown request kind " + std::to_string(kind));
  std::vector<Mutation> script;
  if (kind ==
      static_cast<std::uint8_t>(service::RequestKind::kMutateHypergraph)) {
    std::string script_bytes;
    if (!r.read_string(script_bytes))
      return set_error(error, "request payload truncated");
    // Structural validation only; semantic applicability is checked at
    // execute time against the decoded instance.
    auto decoded = decode_script(script_bytes);
    if (!decoded.has_value())
      return set_error(error, "request mutation script malformed");
    script = std::move(*decoded);
  }
  if (!r.exhausted())
    return set_error(error, "request payload has trailing bytes");
  Hypergraph h;
  if (!decode_hypergraph(instance_bytes, h, error)) return false;

  out.kind = static_cast<service::RequestKind>(kind);
  out.k = static_cast<std::size_t>(k);
  out.seed = seed;
  out.solver = std::move(solver);
  out.script = std::move(script);
  out.instance = std::make_shared<const Hypergraph>(std::move(h));
  out.instance_hash = hash_hypergraph(*out.instance);
  return true;
}

std::string encode_response(const service::Response& resp) {
  std::string out;
  put_u8(out, static_cast<std::uint8_t>(resp.status));
  put_u8(out, resp.cache_hit ? 1 : 0);
  put_u64(out, resp.key);
  put_string(out, resp.reason);
  put_string(out, resp.result);
  return out;
}

bool decode_response(std::string_view payload, service::Response& out,
                     std::string* error) {
  ByteReader r(payload);
  std::uint8_t status = 0, cache_hit = 0;
  if (!r.read_u8(status) || !r.read_u8(cache_hit) || !r.read_u64(out.key) ||
      !r.read_string(out.reason) || !r.read_string(out.result))
    return set_error(error, "response payload truncated");
  if (!r.exhausted())
    return set_error(error, "response payload has trailing bytes");
  if (status > static_cast<std::uint8_t>(service::Response::Status::kError))
    return set_error(error,
                     "unknown response status " + std::to_string(status));
  out.status = static_cast<service::Response::Status>(status);
  out.cache_hit = cache_hit != 0;
  return true;
}

const char* nack_name(NackCode code) {
  switch (code) {
    case NackCode::kQueueFull: return "queue_full";
    case NackCode::kShutdown: return "shutdown";
    case NackCode::kShedRetryAfter: return "shed_retry_after";
  }
  return "unknown";
}

std::string encode_nack(NackCode code, std::uint64_t retry_after_us) {
  std::string out;
  put_u8(out, static_cast<std::uint8_t>(code));
  // Only the shed code carries the hint word; the pre-QoS codes keep
  // their single-byte payload so old byte streams decode unchanged.
  if (code == NackCode::kShedRetryAfter) put_u64(out, retry_after_us);
  return out;
}

bool decode_nack(std::string_view payload, NackCode& out, std::string* error,
                 std::uint64_t* retry_after_us) {
  if (retry_after_us != nullptr) *retry_after_us = 0;
  ByteReader r(payload);
  std::uint8_t code = 0;
  if (!r.read_u8(code)) return set_error(error, "nack payload truncated");
  if (code < static_cast<std::uint8_t>(NackCode::kQueueFull) ||
      code > static_cast<std::uint8_t>(NackCode::kShedRetryAfter))
    return set_error(error, "unknown nack code " + std::to_string(code));
  if (code == static_cast<std::uint8_t>(NackCode::kShedRetryAfter)) {
    std::uint64_t hint = 0;
    if (!r.read_u64(hint)) return set_error(error, "nack payload truncated");
    if (retry_after_us != nullptr) *retry_after_us = hint;
  }
  if (!r.exhausted())
    return set_error(error, "nack payload has trailing bytes");
  out = static_cast<NackCode>(code);
  return true;
}

bool decode_hypergraph(std::string_view bytes, Hypergraph& out,
                       std::string* error) {
  ByteReader r(bytes);
  std::uint64_t n = 0, m = 0;
  if (!r.read_u64(n) || !r.read_u64(m))
    return set_error(error, "hypergraph bytes truncated");
  // Each of the m edges needs at least its 8-byte size word, and each
  // vertex id costs 8 bytes — so both counts are bounded by the bytes
  // actually present before anything is allocated from them.
  if (m > r.remaining() / 8)
    return set_error(error, "hypergraph edge count exceeds payload");
  if (n > kMaxWireVertices)
    return set_error(error, "hypergraph vertex count out of range");
  std::vector<std::vector<VertexId>> edges;
  edges.reserve(static_cast<std::size_t>(m));
  for (std::uint64_t e = 0; e < m; ++e) {
    std::uint64_t size = 0;
    if (!r.read_u64(size))
      return set_error(error, "hypergraph bytes truncated");
    if (size > r.remaining() / 8)
      return set_error(error, "hypergraph edge size exceeds payload");
    std::vector<VertexId> vs;
    vs.reserve(static_cast<std::size_t>(size));
    for (std::uint64_t i = 0; i < size; ++i) {
      std::uint64_t v = 0;
      if (!r.read_u64(v))
        return set_error(error, "hypergraph bytes truncated");
      if (v >= n)
        return set_error(error, "hypergraph vertex id out of range");
      vs.push_back(static_cast<VertexId>(v));
    }
    edges.push_back(std::move(vs));
  }
  if (!r.exhausted())
    return set_error(error, "hypergraph bytes have trailing data");
  // The constructor still enforces non-empty edges with distinct
  // vertices; convert its contract throw into a decode error.
  try {
    out = Hypergraph(static_cast<std::size_t>(n), std::move(edges));
  } catch (const std::exception& e) {
    return set_error(error, std::string("invalid hypergraph: ") + e.what());
  }
  return true;
}

}  // namespace pslocal::net::wire
