// Binary wire protocol of the network tier (src/net/).
//
// A frame is a fixed 48-byte header (version 2) followed by
// `payload_len` payload bytes.  Every multi-byte integer is
// little-endian at a fixed width — the same canonical convention as
// util/hash — so frames are byte-identical across platforms and a
// recorded byte stream replays anywhere.  The header carries an FNV-1a
// 64 digest of the payload; a frame whose payload was bit-flipped in
// flight (or whose length field lies about where the payload ends)
// fails the checksum and is rejected as corrupt rather than mis-parsed.
//
//   offset  width  field
//        0      4  magic        "PSL1" (0x314c5350 little-endian)
//        4      1  version      kVersion (currently 2; 1 still decodes)
//        5      1  kind         FrameKind (request/response/nack/stats)
//        6      2  reserved     must be 0
//        8      8  request_id   caller-assigned; echoed in the response
//       16      4  payload_len  <= max_payload (decoder-configured)
//       20      4  tenant_len   v2: QoS tenant-id prefix length; v1: must be 0
//       24      8  payload_fnv  fnv1a64(payload region)
//       32      8  trace_id     distributed trace id (v2; 0 = untraced)
//       40      8  parent_span_id  sender's span (v2; 0 = root)
//       48      …  payload
//
// Version 1 frames (PR 5/6 peers) are the same layout without the two
// trace words — a 32-byte header with the payload at offset 32.  The
// decoder accepts both: v1 frames simply decode with zero trace fields,
// so trace context is always *on the wire* (zero when absent or when
// built with -DPSLOCAL_OBS=OFF) without breaking older byte streams.
//
// The QoS tenant id (docs/qos.md) rides as an optional prefix of the
// payload region: `tenant_len` (the former reserved2 word) names how
// many of the `payload_len` bytes are the tenant id; the logical
// payload is the remainder.  The checksum covers the whole region, so
// a bit-flipped tenant id is caught like any payload corruption.  A
// frame with no tenant (tenant_len 0 — every pre-QoS sender) is
// byte-identical to the old encoding, which keeps recorded replay
// streams valid.  The decoder rejects tenant_len > payload_len (a
// length lie cannot move the payload split past the region) and bounds
// tenant ids at kMaxTenantLen.  v1 frames cannot carry a tenant.
//
// Payload encodings reuse the canonical serialization style of
// util/hash (fixed-width little-endian words, length-prefixed strings):
// a request payload embeds canonical_bytes(instance) verbatim, so the
// server-side instance hash equals the client-side one by construction.
//
// The FrameDecoder is a strict bounded-size incremental parser: feed()
// appends raw socket bytes, next() yields complete frames.  Oversized,
// torn and garbage inputs produce kCorrupt (sticky — the connection is
// beyond repair and must be closed) or kNeedMore; no input crashes the
// decoder or indexes out of bounds (the qc property `net_frame` fuzzes
// exactly this contract).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "service/request.hpp"

namespace pslocal::net::wire {

inline constexpr std::uint32_t kMagic = 0x314c5350u;  // "PSL1"
inline constexpr std::uint8_t kVersion = 2;
/// Header size of a kVersion frame (v2: includes the trace words).
inline constexpr std::size_t kHeaderSize = 48;
/// Header size of a legacy version-1 frame (no trace words).
inline constexpr std::size_t kHeaderSizeV1 = 32;
/// Default payload bound: generous for request instances, small enough
/// that a length-lying frame cannot make the decoder allocate wildly.
inline constexpr std::size_t kMaxPayload = 16u << 20;
/// Vertex-count bound for wire-decoded hypergraphs.  The canonical
/// encoding carries no per-vertex bytes, so without this bound a
/// length-lied vertex count would size the incidence index at will.
inline constexpr std::uint64_t kMaxWireVertices = 1u << 24;
/// Bound on the tenant-id prefix (a tenant name, not a data channel).
inline constexpr std::size_t kMaxTenantLen = 256;

enum class FrameKind : std::uint8_t {
  kRequest = 1,        // payload: encode_request
  kResponse = 2,       // payload: encode_response
  kNack = 3,           // payload: encode_nack (admission rejected; retryable)
  kStatsRequest = 4,   // payload: empty (live telemetry scrape)
  kStatsResponse = 5,  // payload: deterministic JSON (docs/tracing.md)
};

/// True for the five defined kinds (the decoder rejects anything else).
[[nodiscard]] bool frame_kind_valid(std::uint8_t kind);

struct Frame {
  FrameKind kind = FrameKind::kRequest;
  std::uint64_t request_id = 0;
  std::string payload;
  // Distributed trace context (v2 header words; decoded as 0 from v1
  // frames and from untraced senders).
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;
  // QoS tenant id (v2 payload-region prefix; empty = default tenant —
  // and an empty tenant leaves the wire bytes identical to pre-QoS
  // frames).  Never part of the request payload or any cache key.
  std::string tenant;
};

/// Serialize a frame (header + payload) into wire bytes.  `version`
/// must be 1 or 2; version 1 drops the trace words (compatibility
/// shim, used by tests and old-peer simulation) and requires an empty
/// tenant.  PSL_EXPECTS tenant.size() + payload.size() <= kMaxPayload
/// and tenant.size() <= kMaxTenantLen.
[[nodiscard]] std::string encode_frame(const Frame& frame,
                                       std::uint8_t version = kVersion);

/// Strict incremental frame parser (see header comment).
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_payload = kMaxPayload);

  /// Append raw bytes from the socket.  No-op after corruption.
  void feed(const char* data, std::size_t len);
  void feed(std::string_view bytes) { feed(bytes.data(), bytes.size()); }

  enum class Result : std::uint8_t {
    kFrame,     // `out` holds the next complete frame
    kNeedMore,  // buffered bytes form no complete frame yet
    kCorrupt,   // stream is invalid; close the connection (sticky)
  };

  /// Extract the next complete frame, validating magic, version,
  /// reserved fields, kind, payload bound and checksum.
  Result next(Frame& out);

  [[nodiscard]] bool corrupt() const { return corrupt_; }
  /// Human-readable reason, set once corrupt() turns true.
  [[nodiscard]] const std::string& error() const { return error_; }
  /// Unparsed bytes currently held (0 after every frame was extracted).
  [[nodiscard]] std::size_t buffered() const {
    return buffer_.size() - consumed_;
  }

 private:
  Result fail(const std::string& why);

  std::size_t max_payload_;
  std::string buffer_;
  std::size_t consumed_ = 0;  // bytes of buffer_ already parsed
  bool corrupt_ = false;
  std::string error_;
};

// --- Payload codecs -------------------------------------------------
//
// Decoders return false (with *error set) on malformed payloads instead
// of throwing: a hostile payload is an expected input for a server, not
// a contract violation.

/// Request payload: kind u8, k u64, seed u64, solver string,
/// canonical_bytes(instance) string.  Requires req.instance != nullptr.
[[nodiscard]] std::string encode_request(const service::Request& req);

/// Inverse of encode_request.  Rebuilds the Hypergraph from its
/// canonical bytes (bounds-checked before any allocation sized by
/// untrusted lengths) and fills out.instance_hash from the decoded
/// content.  out.id is NOT set here — it travels in the frame header.
[[nodiscard]] bool decode_request(std::string_view payload,
                                  service::Request& out, std::string* error);

/// Response payload: status u8, cache_hit u8, key u64, reason string,
/// result string.  Timing fields do not cross the wire (they are
/// server-local; the client measures its own RTT).
[[nodiscard]] std::string encode_response(const service::Response& resp);
[[nodiscard]] bool decode_response(std::string_view payload,
                                   service::Response& out,
                                   std::string* error);

/// Typed admission NACK: the request was not admitted and nothing was
/// or will be computed for it.  kQueueFull and kShedRetryAfter are
/// retryable by contract; kShedRetryAfter additionally carries a
/// deterministic backoff hint (microseconds) that retry paths honor.
enum class NackCode : std::uint8_t {
  kQueueFull = 1,
  kShutdown = 2,
  kShedRetryAfter = 3,
};

[[nodiscard]] const char* nack_name(NackCode code);

/// NACK payload: code u8, then for kShedRetryAfter a u64 backoff hint
/// in microseconds (0 for the other codes; their payload stays the
/// single pre-QoS byte).
[[nodiscard]] std::string encode_nack(NackCode code,
                                      std::uint64_t retry_after_us = 0);
/// Inverse of encode_nack.  `retry_after_us` (optional) receives the
/// backoff hint (0 unless the code is kShedRetryAfter).
[[nodiscard]] bool decode_nack(std::string_view payload, NackCode& out,
                               std::string* error,
                               std::uint64_t* retry_after_us = nullptr);

/// Decode the canonical hypergraph bytes produced by canonical_bytes()
/// (util/hash.hpp).  Validates counts against the available bytes
/// before allocating and lets the Hypergraph constructor enforce the
/// structural invariants (in-range, distinct, non-empty edges).
[[nodiscard]] bool decode_hypergraph(std::string_view bytes, Hypergraph& out,
                                     std::string* error);

}  // namespace pslocal::net::wire
