#include "net/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace pslocal::net {

namespace {

const obs::Counter g_sent("net.client.requests_sent");
const obs::Counter g_retries("net.client.retries");
const obs::Histogram g_rtt_ns("net.rtt_ns");

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  PSL_CHECK_MSG(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                "net: fcntl(O_NONBLOCK) failed: " << std::strerror(errno));
}

/// Remaining milliseconds of a deadline expressed as an absolute ns
/// timestamp; 0 once passed.
int remaining_ms(std::uint64_t deadline_ns) {
  const std::uint64_t now = now_ns();
  if (now >= deadline_ns) return 0;
  const std::uint64_t ms = (deadline_ns - now) / 1000000;
  return ms > 60'000'000 ? 60'000'000 : static_cast<int>(ms) + 1;
}

}  // namespace

Client::Client(Config config)
    : config_(std::move(config)),
      decoder_(config_.max_payload == 0 ? wire::kMaxPayload
                                        : config_.max_payload) {}

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : config_(std::move(other.config_)),
      fd_(std::exchange(other.fd_, -1)),
      decoder_(std::move(other.decoder_)),
      next_id_(other.next_id_),
      inflight_sent_(std::move(other.inflight_sent_)),
      parked_(std::move(other.parked_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    config_ = std::move(other.config_);
    fd_ = std::exchange(other.fd_, -1);
    decoder_ = std::move(other.decoder_);
    next_id_ = other.next_id_;
    inflight_sent_ = std::move(other.inflight_sent_);
    parked_ = std::move(other.parked_);
  }
  return *this;
}

void Client::connect() {
  if (fd_ >= 0) return;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  PSL_CHECK_MSG(fd >= 0, "net: socket failed: " << std::strerror(errno));
  set_nonblocking(fd);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    PSL_CHECK_MSG(false, "net: invalid host '" << config_.host << "'");
  }
  const int rc =
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  if (rc != 0 && errno != EINPROGRESS) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    PSL_CHECK_MSG(false, "net: connect " << config_.host << ":"
                                         << config_.port << " failed: " << why);
  }
  if (rc != 0) {
    const std::uint64_t deadline =
        now_ns() +
        static_cast<std::uint64_t>(config_.connect_timeout_ms) * 1000000ULL;
    pollfd pfd{fd, POLLOUT, 0};
    int ready;
    for (;;) {
      ready = ::poll(&pfd, 1, remaining_ms(deadline));
      if (ready < 0 && errno == EINTR) continue;  // signal: re-poll remainder
      break;
    }
    int soerr = 0;
    socklen_t len = sizeof soerr;
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len);
    if (ready <= 0 || soerr != 0) {
      ::close(fd);
      PSL_CHECK_MSG(false, "net: connect " << config_.host << ":"
                                           << config_.port << " failed: "
                                           << (ready <= 0
                                                   ? "timeout"
                                                   : std::strerror(soerr)));
    }
  }
  fd_ = fd;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  inflight_sent_.clear();
  parked_.clear();
}

const char* Client::outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kOk: return "ok";
    case Outcome::kRejected: return "rejected";
    case Outcome::kError: return "error";
    case Outcome::kNack: return "nack";
    case Outcome::kTimeout: return "timeout";
    case Outcome::kTransport: return "transport";
  }
  return "unknown";
}

std::uint64_t Client::send(const service::Request& request) {
  PSL_CHECK_MSG(fd_ >= 0, "net: send on a disconnected client");
  const std::uint64_t id = next_id_++;
  wire::Frame frame{wire::FrameKind::kRequest, id,
                    wire::encode_request(request)};
  // Trace context rides the frame header: an explicit per-request id
  // wins, else the ambient obs context (the enclosing ScopedSpan /
  // ScopedTraceContext); both are zero when untraced.
  const obs::TraceContext ctx = obs::current_trace_context();
  frame.trace_id = request.trace_id != 0 ? request.trace_id : ctx.trace_id;
  frame.parent_span_id =
      request.parent_span_id != 0 ? request.parent_span_id : ctx.span_id;
  // The QoS tenant id rides the header's payload-region prefix; an
  // empty tenant leaves the frame bytes identical to pre-QoS senders.
  frame.tenant = request.tenant;
  write_bytes(wire::encode_frame(frame));
  inflight_sent_[id] = now_ns();
  g_sent.add();
  return id;
}

Client::Result Client::stats(int timeout_ms) {
  PSL_CHECK_MSG(fd_ >= 0, "net: stats on a disconnected client");
  const std::uint64_t id = next_id_++;
  wire::Frame frame{wire::FrameKind::kStatsRequest, id, std::string{}};
  const obs::TraceContext ctx = obs::current_trace_context();
  frame.trace_id = ctx.trace_id;
  frame.parent_span_id = ctx.span_id;
  write_bytes(wire::encode_frame(frame));
  inflight_sent_[id] = now_ns();
  return wait(id, timeout_ms);
}

void Client::write_bytes(const std::string& bytes) {
  const std::uint64_t deadline =
      now_ns() +
      static_cast<std::uint64_t>(config_.io_timeout_ms) * 1000000ULL;
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + written,
                             bytes.size() - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        pollfd pfd{fd_, POLLOUT, 0};
        const int ready = ::poll(&pfd, 1, remaining_ms(deadline));
        if (ready < 0 && errno == EINTR) continue;  // deadline still applies
        PSL_CHECK_MSG(ready >= 0,
                      "net: poll failed: " << std::strerror(errno));
        PSL_CHECK_MSG(ready > 0, "net: send timed out");
        continue;
      }
      PSL_CHECK_MSG(false, "net: send failed: " << std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
}

Client::Result Client::finish(std::uint64_t id, const wire::Frame& frame,
                              std::uint64_t arrived_ns) {
  Result result;
  result.trace_id = frame.trace_id;
  const auto sent_it = inflight_sent_.find(id);
  if (sent_it != inflight_sent_.end()) {
    result.rtt_ns = arrived_ns - sent_it->second;
    g_rtt_ns.record(result.rtt_ns, frame.trace_id);
    inflight_sent_.erase(sent_it);
  }
  std::string error;
  if (frame.kind == wire::FrameKind::kResponse) {
    if (!wire::decode_response(frame.payload, result.response, &error)) {
      result.outcome = Outcome::kTransport;
      result.error = "bad response payload: " + error;
      close();
      return result;
    }
    result.response.id = id;
    result.response.total_ns = result.rtt_ns;
    switch (result.response.status) {
      case service::Response::Status::kOk: result.outcome = Outcome::kOk; break;
      case service::Response::Status::kRejected:
        result.outcome = Outcome::kRejected;
        break;
      case service::Response::Status::kError:
        result.outcome = Outcome::kError;
        break;
    }
    return result;
  }
  if (frame.kind == wire::FrameKind::kNack) {
    if (!wire::decode_nack(frame.payload, result.nack_code, &error,
                           &result.retry_after_us)) {
      result.outcome = Outcome::kTransport;
      result.error = "bad nack payload: " + error;
      close();
      return result;
    }
    result.outcome = Outcome::kNack;
    return result;
  }
  if (frame.kind == wire::FrameKind::kStatsResponse) {
    result.outcome = Outcome::kOk;
    result.stats_json = frame.payload;
    return result;
  }
  result.outcome = Outcome::kTransport;
  result.error = "server sent a request frame";
  close();
  return result;
}

Client::Result Client::await_frame(std::uint64_t id, int timeout_ms) {
  const std::uint64_t deadline =
      now_ns() + static_cast<std::uint64_t>(timeout_ms) * 1000000ULL;
  for (;;) {
    // A frame for `id` may already be parked or buffered.
    const auto parked_it = parked_.find(id);
    if (parked_it != parked_.end()) {
      Parked parked = std::move(parked_it->second);
      parked_.erase(parked_it);
      return finish(id, parked.frame, parked.arrived_ns);
    }
    wire::Frame frame;
    const auto dec = decoder_.next(frame);
    if (dec == wire::FrameDecoder::Result::kCorrupt) {
      Result result;
      result.outcome = Outcome::kTransport;
      result.error = "corrupt stream: " + decoder_.error();
      close();
      return result;
    }
    if (dec == wire::FrameDecoder::Result::kFrame) {
      const std::uint64_t arrived = now_ns();
      if (frame.request_id == id) return finish(id, frame, arrived);
      parked_[frame.request_id] = {std::move(frame), arrived};
      continue;
    }

    // Poll before the deadline check: even at a 0ms budget (try_wait)
    // one non-blocking readiness probe runs, so bytes the kernel already
    // holds are pumped into the decoder instead of being starved.
    const int wait_ms = remaining_ms(deadline);
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, wait_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      Result result;
      result.outcome = Outcome::kTransport;
      result.error = std::string("poll failed: ") + std::strerror(errno);
      close();
      return result;
    }
    if (ready == 0) {
      if (remaining_ms(deadline) == 0) {
        Result result;
        result.outcome = Outcome::kTimeout;
        return result;
      }
      continue;
    }

    char buf[64 * 1024];
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n == 0) {
      Result result;
      result.outcome = Outcome::kTransport;
      result.error = "server closed the connection";
      close();
      return result;
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      Result result;
      result.outcome = Outcome::kTransport;
      result.error = std::string("recv failed: ") + std::strerror(errno);
      close();
      return result;
    }
    decoder_.feed(buf, static_cast<std::size_t>(n));
  }
}

Client::Result Client::wait(std::uint64_t id, int timeout_ms) {
  PSL_CHECK_MSG(fd_ >= 0, "net: wait on a disconnected client");
  return await_frame(id, timeout_ms < 0 ? config_.io_timeout_ms : timeout_ms);
}

Client::Result Client::try_wait(std::uint64_t id) {
  PSL_CHECK_MSG(fd_ >= 0, "net: try_wait on a disconnected client");
  return await_frame(id, 0);
}

Client::Result Client::call(const service::Request& request, int timeout_ms) {
  const std::uint64_t id = send(request);
  return wait(id, timeout_ms);
}

std::vector<std::uint64_t> Client::backoff_delays_us(
    const RetryPolicy& policy, std::size_t retries) {
  std::vector<std::uint64_t> delays;
  delays.reserve(retries);
  Rng rng(policy.seed);
  for (std::size_t r = 0; r < retries; ++r) {
    // base << r, saturating at the cap (r is clamped well before the
    // shift could overflow a plausible base delay).
    std::uint64_t d = r < 20 ? policy.base_delay_us << r : policy.max_delay_us;
    if (d > policy.max_delay_us) d = policy.max_delay_us;
    const std::uint64_t half = d / 2;
    delays.push_back(half + rng.next_below(half + 1));
  }
  return delays;
}

Client::Result Client::call_with_retry(const service::Request& request,
                                       const RetryPolicy& policy,
                                       int timeout_ms) {
  PSL_EXPECTS(policy.max_attempts >= 1);
  const std::vector<std::uint64_t> delays =
      backoff_delays_us(policy, policy.max_attempts - 1);
  Result result;
  for (std::uint32_t attempt = 0; attempt < policy.max_attempts; ++attempt) {
    result = call(request, timeout_ms);
    result.attempts = attempt + 1;
    const bool retryable =
        result.outcome == Outcome::kNack &&
        (result.nack_code == wire::NackCode::kQueueFull ||
         result.nack_code == wire::NackCode::kShedRetryAfter);
    if (!retryable || attempt + 1 == policy.max_attempts) return result;
    g_retries.add();
    // Honor the server's shed hint: it names the instant a token (or
    // queue slot) exists, so sleeping less just buys another NACK.
    const std::uint64_t sleep_us =
        std::max(delays[attempt], result.retry_after_us);
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
  }
  return result;
}

}  // namespace pslocal::net
