#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/wire.hpp"
#include "obs/obs.hpp"
#include "service/stages.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace pslocal::net {

namespace {

const obs::Counter g_accepted("net.accepted");
const obs::Counter g_frames_rx("net.frames_rx");
const obs::Counter g_frames_tx("net.frames_tx");
const obs::Counter g_bytes_rx("net.bytes_rx");
const obs::Counter g_bytes_tx("net.bytes_tx");
const obs::Counter g_nack_queue_full("net.nack_queue_full");
const obs::Counter g_nack_shed("net.nack_shed");
const obs::Counter g_decode_errors("net.decode_errors");
const obs::Gauge g_conn_active("net.conn_active");

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  PSL_CHECK_MSG(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                "net: fcntl(O_NONBLOCK) failed: " << std::strerror(errno));
}

std::size_t resolve_loop_count(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t cores = hw == 0 ? 1 : static_cast<std::size_t>(hw);
  return std::min<std::size_t>(cores, 8);
}

}  // namespace

struct Server::Impl {
  explicit Impl(service::ServiceEngine& engine_in, Config config_in)
      : engine(engine_in), config(std::move(config_in)) {
    if (config.max_payload == 0) config.max_payload = wire::kMaxPayload;
    loop_count = resolve_loop_count(config.io_threads);
  }

  service::ServiceEngine& engine;
  Config config;
  std::size_t loop_count = 1;

  // One queued output frame.  Response frames carry their request kind
  // and trace id so the moment the last byte is handed to the socket
  // can be attributed as the wire_write stage (docs/tracing.md).
  struct QueuedWrite {
    std::string bytes;
    std::uint8_t stage_kind = kNoStageKind;  // RequestKind, or none
    std::uint64_t trace_id = 0;
    std::uint64_t enqueue_ns = 0;
  };
  static constexpr std::uint8_t kNoStageKind = 0xff;

  struct Connection {
    int fd = -1;
    std::uint64_t gen = 0;  // unique per accept; survives fd reuse
    wire::FrameDecoder decoder;
    std::deque<QueuedWrite> write_queue;
    std::size_t write_offset = 0;  // into write_queue.front()
    std::size_t queued_bytes = 0;
    bool want_write = false;  // EPOLLOUT currently registered

    Connection(int fd_in, std::uint64_t gen_in, std::size_t max_payload)
        : fd(fd_in), gen(gen_in), decoder(max_payload) {}
  };

  // Encoded response frames headed back to an io loop.
  struct OutFrame {
    std::uint64_t conn_gen = 0;
    QueuedWrite write;
  };

  /// One epoll event loop: private acceptor (SO_REUSEPORT sibling of the
  /// others), wake pipe, and an exclusive connection set.  Only `outbox`
  /// is touched by another thread (the completer), under `outbox_mu`.
  struct Loop {
    std::size_t index = 0;
    int epoll_fd = -1;
    int listen_fd = -1;
    int wake_rd = -1, wake_wr = -1;
    std::thread thread;
    std::unordered_map<int, Connection> conns;           // fd -> state
    std::unordered_map<std::uint64_t, int> gen_to_fd;    // gen -> fd
    std::mutex outbox_mu;
    std::vector<OutFrame> outbox;

    // Live gauges readable from ANY loop (the stats request is answered
    // on whichever loop read it, and sibling connection maps are
    // thread-private — these atomics are the cross-loop view).
    std::atomic<std::size_t> conn_gauge{0};
    std::atomic<std::size_t> queued_bytes_gauge{0};

    void wake() const {
      const char b = 'x';
      // The pipe being full already guarantees a pending wakeup.
      [[maybe_unused]] const ssize_t n = ::write(wake_wr, &b, 1);
    }
  };
  std::vector<std::unique_ptr<Loop>> loops;
  std::atomic<std::uint64_t> next_gen{1};
  std::atomic<std::size_t> conn_count{0};  // across all loops

  // Admitted requests waiting for their engine future, FIFO.
  struct Completion {
    std::size_t loop_index = 0;
    std::uint64_t conn_gen = 0;
    std::uint64_t request_id = 0;
    std::uint8_t kind = 0;  // RequestKind, for per-kind stage metrics
    std::uint64_t trace_id = 0;        // echoed into the response header
    std::uint64_t parent_span_id = 0;
    std::future<service::Response> future;
  };
  std::mutex completions_mu;
  std::condition_variable completions_cv;
  std::deque<Completion> completions;
  bool stopping = false;  // guarded by completions_mu
  std::thread completer_thread;

  // Tallies (relaxed atomics; written by the io/completer threads).
  std::atomic<std::uint64_t> accepted{0}, closed{0};
  std::atomic<std::uint64_t> frames_rx{0}, frames_tx{0};
  std::atomic<std::uint64_t> bytes_rx{0}, bytes_tx{0};
  std::atomic<std::uint64_t> requests_dispatched{0};
  std::atomic<std::uint64_t> nacks_queue_full{0}, nacks_shutdown{0};
  std::atomic<std::uint64_t> nacks_shed{0};
  std::atomic<std::uint64_t> decode_errors{0}, overflow_closes{0};

  void enqueue_frame(Loop& loop, Connection& conn, QueuedWrite write) {
    conn.queued_bytes += write.bytes.size();
    loop.queued_bytes_gauge.fetch_add(write.bytes.size(),
                                      std::memory_order_relaxed);
    if (write.enqueue_ns == 0) write.enqueue_ns = now_ns();
    conn.write_queue.push_back(std::move(write));
  }

  /// True if the connection exceeded its output bound and must close.
  [[nodiscard]] bool over_output_bound(const Connection& conn) const {
    return conn.queued_bytes > config.max_output_bytes;
  }

  /// Keep EPOLLOUT interest in sync with whether output is pending, so
  /// a level-triggered loop never spins on a writable idle socket.
  void update_write_interest(Loop& loop, Connection& conn) {
    const bool want = !conn.write_queue.empty();
    if (want == conn.want_write) return;
    epoll_event ev{};
    ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
    ev.data.fd = conn.fd;
    PSL_CHECK_MSG(
        ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev) == 0,
        "net: epoll_ctl(MOD) failed: " << std::strerror(errno));
    conn.want_write = want;
  }

  /// Close and forget a connection (closing the fd also deregisters it
  /// from the loop's epoll set).
  void close_conn(Loop& loop, int fd) {
    auto it = loop.conns.find(fd);
    if (it == loop.conns.end()) return;
    loop.gen_to_fd.erase(it->second.gen);
    loop.queued_bytes_gauge.fetch_sub(it->second.queued_bytes,
                                      std::memory_order_relaxed);
    loop.conn_gauge.fetch_sub(1, std::memory_order_relaxed);
    loop.conns.erase(it);
    ::close(fd);
    conn_count.fetch_sub(1, std::memory_order_relaxed);
    closed.fetch_add(1, std::memory_order_relaxed);
    g_conn_active.add(-1);
  }

  /// Decode every complete frame buffered on `conn` and dispatch it.
  /// Returns false when the connection must be closed.
  bool drain_decoder(Loop& loop, Connection& conn) {
    PSL_OBS_SPAN("net.decode");
    wire::Frame frame;
    for (;;) {
      const auto result = conn.decoder.next(frame);
      if (result == wire::FrameDecoder::Result::kNeedMore) return true;
      if (result == wire::FrameDecoder::Result::kCorrupt) {
        decode_errors.fetch_add(1, std::memory_order_relaxed);
        g_decode_errors.add();
        return false;
      }
      frames_rx.fetch_add(1, std::memory_order_relaxed);
      g_frames_rx.add();
      if (frame.kind == wire::FrameKind::kStatsRequest) {
        // Telemetry scrape: answered right here on the io loop, never
        // enqueued into the engine — a scrape cannot pause serving.
        answer_stats(loop, conn, frame);
        continue;
      }
      if (frame.kind != wire::FrameKind::kRequest) {
        // Clients have no business sending response/nack frames.
        decode_errors.fetch_add(1, std::memory_order_relaxed);
        g_decode_errors.add();
        return false;
      }
      if (!dispatch_request(loop, conn, frame)) return false;
    }
  }

  /// Deterministic JSON for the live telemetry plane: the process-wide
  /// obs snapshot, this engine's stats, and per-loop gauges.  Key order
  /// is fixed (alphabetical at the top level: engine, obs, server).
  [[nodiscard]] std::string stats_payload() {
    std::string out = "{\"engine\":";
    out += service::stats_json(engine.stats());
    out += ",\"obs\":";
    out += obs::snapshot_json(obs::snapshot());
    out += ",\"server\":{\"name\":\"";
    out += config.name;
    out += "\",\"io_loops\":";
    out += std::to_string(loop_count);
    out += ",\"queue_depth\":";
    out += std::to_string(engine.queue_depth());
    out += ",\"connections\":";
    out += std::to_string(conn_count.load(std::memory_order_relaxed));
    out += ",\"loops\":[";
    for (std::size_t i = 0; i < loops.size(); ++i) {
      if (i > 0) out += ',';
      out += "{\"connections\":";
      out += std::to_string(loops[i]->conn_gauge.load(std::memory_order_relaxed));
      out += ",\"queued_bytes\":";
      out += std::to_string(
          loops[i]->queued_bytes_gauge.load(std::memory_order_relaxed));
      out += '}';
    }
    out += "]}}";
    return out;
  }

  void answer_stats(Loop& loop, Connection& conn, const wire::Frame& frame) {
    PSL_OBS_SPAN("net.stats");
    wire::Frame reply;
    reply.kind = wire::FrameKind::kStatsResponse;
    reply.request_id = frame.request_id;
    reply.payload = stats_payload();
    reply.trace_id = frame.trace_id;
    reply.parent_span_id = frame.parent_span_id;
    enqueue_frame(loop, conn,
                  QueuedWrite{wire::encode_frame(reply), kNoStageKind,
                              frame.trace_id, 0});
  }

  /// Decode the request payload and submit it to the engine; queues a
  /// NACK on admission rejection.  Returns false on a malformed payload
  /// (the connection is closed — framing held but content did not).
  bool dispatch_request(Loop& loop, Connection& conn,
                        const wire::Frame& frame) {
    // Adopt the wire trace context so the dispatch span (and every
    // stage recorded downstream on this thread) nests under the
    // client's root span in the stitched trace.
    obs::ScopedTraceContext trace_ctx(frame.trace_id, frame.parent_span_id);
    PSL_OBS_SPAN("net.dispatch");
    service::Request request;
    std::string error;
    if (!wire::decode_request(frame.payload, request, &error)) {
      decode_errors.fetch_add(1, std::memory_order_relaxed);
      g_decode_errors.add();
      return false;
    }
    request.id = frame.request_id;
    request.trace_id = frame.trace_id;
    request.parent_span_id = frame.parent_span_id;
    request.tenant = frame.tenant;
    const auto kind = request.kind;
    auto submitted = engine.submit(std::move(request));
    switch (submitted.admission) {
      case service::Admission::kAccepted: {
        requests_dispatched.fetch_add(1, std::memory_order_relaxed);
        {
          std::lock_guard<std::mutex> lock(completions_mu);
          completions.push_back({loop.index, conn.gen, frame.request_id,
                                 static_cast<std::uint8_t>(kind),
                                 frame.trace_id, frame.parent_span_id,
                                 std::move(submitted.response)});
        }
        completions_cv.notify_one();
        break;
      }
      case service::Admission::kQueueFull: {
        nacks_queue_full.fetch_add(1, std::memory_order_relaxed);
        g_nack_queue_full.add();
        enqueue_frame(loop, conn, nack_write(frame, wire::NackCode::kQueueFull));
        break;
      }
      case service::Admission::kShutdown: {
        nacks_shutdown.fetch_add(1, std::memory_order_relaxed);
        enqueue_frame(loop, conn, nack_write(frame, wire::NackCode::kShutdown));
        break;
      }
      case service::Admission::kShed: {
        nacks_shed.fetch_add(1, std::memory_order_relaxed);
        g_nack_shed.add();
        enqueue_frame(loop, conn,
                      nack_write(frame, wire::NackCode::kShedRetryAfter,
                                 submitted.retry_after_us));
        break;
      }
    }
    return true;
  }

  /// NACK frames echo the request's trace ids, so even a rejected
  /// request resolves to a complete span tree for the client.
  [[nodiscard]] static QueuedWrite nack_write(const wire::Frame& frame,
                                              wire::NackCode code,
                                              std::uint64_t retry_after_us = 0) {
    wire::Frame reply;
    reply.kind = wire::FrameKind::kNack;
    reply.request_id = frame.request_id;
    reply.payload = wire::encode_nack(code, retry_after_us);
    reply.trace_id = frame.trace_id;
    reply.parent_span_id = frame.parent_span_id;
    return QueuedWrite{wire::encode_frame(reply), kNoStageKind, frame.trace_id,
                       0};
  }

  /// Move completed response frames from the loop's outbox into their
  /// connections' write queues (dropping frames whose connection died),
  /// then flush.
  void drain_outbox(Loop& loop) {
    std::vector<OutFrame> batch;
    {
      std::lock_guard<std::mutex> lock(loop.outbox_mu);
      batch.swap(loop.outbox);
    }
    for (OutFrame& out : batch) {
      const auto it = loop.gen_to_fd.find(out.conn_gen);
      if (it == loop.gen_to_fd.end()) continue;
      Connection& conn = loop.conns.at(it->second);
      enqueue_frame(loop, conn, std::move(out.write));
      bool alive = flush_writes(loop, conn);
      if (alive && over_output_bound(conn)) {
        overflow_closes.fetch_add(1, std::memory_order_relaxed);
        alive = false;
      }
      if (!alive) {
        close_conn(loop, conn.fd);
      } else {
        update_write_interest(loop, conn);
      }
    }
  }

  /// Write as much queued output as the socket accepts.  Returns false
  /// when the connection must be closed.
  bool flush_writes(Loop& loop, Connection& conn) {
    while (!conn.write_queue.empty()) {
      const QueuedWrite& front = conn.write_queue.front();
      const char* data = front.bytes.data() + conn.write_offset;
      const std::size_t len = front.bytes.size() - conn.write_offset;
      const ssize_t n = ::send(conn.fd, data, len, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
        if (errno == EINTR) continue;
        return false;
      }
      bytes_tx.fetch_add(static_cast<std::uint64_t>(n),
                         std::memory_order_relaxed);
      g_bytes_tx.add(static_cast<std::uint64_t>(n));
      conn.write_offset += static_cast<std::size_t>(n);
      conn.queued_bytes -= static_cast<std::size_t>(n);
      loop.queued_bytes_gauge.fetch_sub(static_cast<std::size_t>(n),
                                        std::memory_order_relaxed);
      if (conn.write_offset == front.bytes.size()) {
        // Last byte handed to the kernel: close out the wire_write
        // stage for response frames (enqueue -> socket accepted all).
        if (front.stage_kind != kNoStageKind) {
          service::stages::record(
              service::stages::Stage::kWireWrite,
              static_cast<service::RequestKind>(front.stage_kind),
              now_ns() - front.enqueue_ns, front.trace_id);
        }
        conn.write_queue.pop_front();
        conn.write_offset = 0;
        frames_tx.fetch_add(1, std::memory_order_relaxed);
        g_frames_tx.add();
      }
    }
    return true;
  }

  /// Read everything available on `conn`.  Returns false on EOF/error
  /// or when the decoded stream demands closing.
  bool handle_readable(Loop& loop, Connection& conn) {
    char buf[64 * 1024];
    for (;;) {
      const ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
      if (n == 0) return false;  // peer closed
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
        if (errno == EINTR) continue;
        return false;
      }
      bytes_rx.fetch_add(static_cast<std::uint64_t>(n),
                         std::memory_order_relaxed);
      g_bytes_rx.add(static_cast<std::uint64_t>(n));
      conn.decoder.feed(buf, static_cast<std::size_t>(n));
      if (!drain_decoder(loop, conn)) return false;
      if (static_cast<std::size_t>(n) < sizeof buf) return true;
    }
  }

  void accept_ready(Loop& loop) {
    for (;;) {
      const int fd = ::accept(loop.listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // EAGAIN or transient error; epoll will re-arm
      }
      if (conn_count.load(std::memory_order_relaxed) >=
          config.max_connections) {
        ::close(fd);  // at capacity: refuse outright, never half-serve
        continue;
      }
      set_nonblocking(fd);
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      const std::uint64_t gen =
          next_gen.fetch_add(1, std::memory_order_relaxed);
      loop.conns.emplace(fd, Connection(fd, gen, config.max_payload));
      loop.gen_to_fd.emplace(gen, fd);
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = fd;
      PSL_CHECK_MSG(::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, fd, &ev) == 0,
                    "net: epoll_ctl(ADD) failed: " << std::strerror(errno));
      conn_count.fetch_add(1, std::memory_order_relaxed);
      loop.conn_gauge.fetch_add(1, std::memory_order_relaxed);
      accepted.fetch_add(1, std::memory_order_relaxed);
      g_accepted.add();
      g_conn_active.add(1);
    }
  }

  void loop_main(Loop& loop, const std::atomic<bool>& stop_flag) {
    obs::set_thread_label(config.name + ".loop" + std::to_string(loop.index));
    std::vector<epoll_event> events(128);
    while (!stop_flag.load(std::memory_order_acquire)) {
      const int ready = ::epoll_wait(loop.epoll_fd, events.data(),
                                     static_cast<int>(events.size()), -1);
      if (ready < 0) {
        if (errno == EINTR) continue;
        PSL_CHECK_MSG(false,
                      "net: epoll_wait failed: " << std::strerror(errno));
      }
      bool woken = false;
      for (int i = 0; i < ready; ++i) {
        const int fd = events[static_cast<std::size_t>(i)].data.fd;
        const std::uint32_t ev = events[static_cast<std::size_t>(i)].events;
        if (fd == loop.listen_fd) {
          accept_ready(loop);
          continue;
        }
        if (fd == loop.wake_rd) {
          char drain[256];
          for (;;) {
            const ssize_t n = ::read(loop.wake_rd, drain, sizeof drain);
            if (n > 0) continue;
            if (n < 0 && errno == EINTR) continue;
            break;  // EAGAIN (drained) or EOF
          }
          woken = true;
          continue;
        }
        auto it = loop.conns.find(fd);
        if (it == loop.conns.end()) continue;  // closed earlier this batch
        Connection& conn = it->second;
        bool alive = true;
        if (ev & (EPOLLERR | EPOLLHUP)) alive = false;
        if (alive && (ev & EPOLLIN)) alive = handle_readable(loop, conn);
        if (alive) alive = flush_writes(loop, conn);
        if (alive && over_output_bound(conn)) {
          overflow_closes.fetch_add(1, std::memory_order_relaxed);
          alive = false;
        }
        if (!alive) {
          close_conn(loop, fd);
        } else {
          update_write_interest(loop, conn);
        }
      }
      // Wake or not — completions may have landed while we handled io.
      (void)woken;
      drain_outbox(loop);
    }
    while (!loop.conns.empty()) close_conn(loop, loop.conns.begin()->first);
  }

  void completer_main(const std::atomic<bool>& stop_flag) {
    obs::set_thread_label(config.name + ".completer");
    for (;;) {
      Completion job;
      {
        std::unique_lock<std::mutex> lock(completions_mu);
        completions_cv.wait(
            lock, [this] { return stopping || !completions.empty(); });
        if (stopping) return;  // pending futures are discarded; the
                               // engine still answers them (to nobody)
        job = std::move(completions.front());
        completions.pop_front();
      }
      // Blocking is fine here: the engine answers every admitted
      // request exactly once (serve, error, or shutdown-reject).
      service::Response response = job.future.get();
      response.id = job.request_id;
      // Serialize stage: encode under the request's trace context so
      // the span lands on the completer track of the right trace.
      obs::ScopedTraceContext trace_ctx(job.trace_id, job.parent_span_id);
      const std::uint64_t serialize_start = now_ns();
      std::string bytes;
      {
        PSL_OBS_SPAN("net.serialize");
        wire::Frame reply;
        // A deadline shed surfaces as a kRejected("shed") response from
        // the dispatcher; on the wire it is a typed NACK with the
        // backoff hint, same contract as an admission-time shed.
        if (response.status == service::Response::Status::kRejected &&
            response.reason == "shed") {
          nacks_shed.fetch_add(1, std::memory_order_relaxed);
          g_nack_shed.add();
          reply.kind = wire::FrameKind::kNack;
          reply.payload = wire::encode_nack(wire::NackCode::kShedRetryAfter,
                                            response.retry_after_us);
        } else {
          reply.kind = wire::FrameKind::kResponse;
          reply.payload = wire::encode_response(response);
        }
        reply.request_id = job.request_id;
        reply.trace_id = job.trace_id;
        reply.parent_span_id = job.parent_span_id;
        bytes = wire::encode_frame(reply);
      }
      service::stages::record(service::stages::Stage::kSerialize,
                              static_cast<service::RequestKind>(job.kind),
                              now_ns() - serialize_start, job.trace_id);
      if (stop_flag.load(std::memory_order_acquire)) continue;
      Loop& loop = *loops[job.loop_index];
      {
        std::lock_guard<std::mutex> lock(loop.outbox_mu);
        loop.outbox.push_back(
            {job.conn_gen,
             QueuedWrite{std::move(bytes), job.kind, job.trace_id, now_ns()}});
      }
      loop.wake();
    }
  }
};

Server::Server(service::ServiceEngine& engine, Config config)
    : impl_(new Impl(engine, std::move(config))) {}

Server::~Server() {
  stop();
  delete impl_;
}

void Server::start() {
  if (started_.exchange(true)) return;
  Impl& im = *impl_;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(im.config.port);
  PSL_CHECK_MSG(
      ::inet_pton(AF_INET, im.config.host.c_str(), &addr.sin_addr) == 1,
      "net: invalid host '" << im.config.host << "'");

  im.loops.reserve(im.loop_count);
  for (std::size_t i = 0; i < im.loop_count; ++i) {
    auto loop = std::make_unique<Impl::Loop>();
    loop->index = i;

    int pipe_fds[2];
    PSL_CHECK_MSG(::pipe(pipe_fds) == 0,
                  "net: pipe failed: " << std::strerror(errno));
    loop->wake_rd = pipe_fds[0];
    loop->wake_wr = pipe_fds[1];
    set_nonblocking(loop->wake_rd);
    set_nonblocking(loop->wake_wr);

    // Every loop binds its own SO_REUSEPORT listener to the same
    // address; the kernel spreads incoming connections across them.
    // Loop 0 resolves an ephemeral port; siblings reuse the answer.
    loop->listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    PSL_CHECK_MSG(loop->listen_fd >= 0,
                  "net: socket failed: " << std::strerror(errno));
    const int one = 1;
    ::setsockopt(loop->listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    PSL_CHECK_MSG(::setsockopt(loop->listen_fd, SOL_SOCKET, SO_REUSEPORT,
                               &one, sizeof one) == 0,
                  "net: setsockopt(SO_REUSEPORT) failed: "
                      << std::strerror(errno));
    PSL_CHECK_MSG(::bind(loop->listen_fd, reinterpret_cast<sockaddr*>(&addr),
                         sizeof addr) == 0,
                  "net: bind " << im.config.host << ":"
                               << ntohs(addr.sin_port)
                               << " failed: " << std::strerror(errno));
    PSL_CHECK_MSG(::listen(loop->listen_fd, im.config.backlog) == 0,
                  "net: listen failed: " << std::strerror(errno));
    set_nonblocking(loop->listen_fd);

    if (i == 0) {
      sockaddr_in bound{};
      socklen_t len = sizeof bound;
      PSL_CHECK_MSG(
          ::getsockname(loop->listen_fd, reinterpret_cast<sockaddr*>(&bound),
                        &len) == 0,
          "net: getsockname failed: " << std::strerror(errno));
      port_ = ntohs(bound.sin_port);
      addr.sin_port = bound.sin_port;
    }

    loop->epoll_fd = ::epoll_create1(0);
    PSL_CHECK_MSG(loop->epoll_fd >= 0,
                  "net: epoll_create1 failed: " << std::strerror(errno));
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = loop->listen_fd;
    PSL_CHECK_MSG(::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->listen_fd,
                              &ev) == 0,
                  "net: epoll_ctl(listen) failed: " << std::strerror(errno));
    ev.data.fd = loop->wake_rd;
    PSL_CHECK_MSG(::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->wake_rd,
                              &ev) == 0,
                  "net: epoll_ctl(wake) failed: " << std::strerror(errno));

    im.loops.push_back(std::move(loop));
  }

  for (auto& loop : im.loops) {
    Impl::Loop* lp = loop.get();
    lp->thread = std::thread([this, lp] { impl_->loop_main(*lp, stopped_); });
  }
  im.completer_thread =
      std::thread([this] { impl_->completer_main(stopped_); });
}

void Server::stop() {
  if (!started_.load() || stopped_.exchange(true)) return;
  Impl& im = *impl_;
  {
    std::lock_guard<std::mutex> lock(im.completions_mu);
    im.stopping = true;
  }
  im.completions_cv.notify_all();
  for (auto& loop : im.loops) loop->wake();
  for (auto& loop : im.loops) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  if (im.completer_thread.joinable()) im.completer_thread.join();
  for (auto& loop : im.loops) {
    if (loop->epoll_fd >= 0) ::close(loop->epoll_fd);
    if (loop->listen_fd >= 0) ::close(loop->listen_fd);
    if (loop->wake_rd >= 0) ::close(loop->wake_rd);
    if (loop->wake_wr >= 0) ::close(loop->wake_wr);
    loop->epoll_fd = loop->listen_fd = loop->wake_rd = loop->wake_wr = -1;
  }
}

Server::Stats Server::stats() const {
  const Impl& im = *impl_;
  Stats s;
  s.accepted = im.accepted.load(std::memory_order_relaxed);
  s.closed = im.closed.load(std::memory_order_relaxed);
  s.frames_rx = im.frames_rx.load(std::memory_order_relaxed);
  s.frames_tx = im.frames_tx.load(std::memory_order_relaxed);
  s.bytes_rx = im.bytes_rx.load(std::memory_order_relaxed);
  s.bytes_tx = im.bytes_tx.load(std::memory_order_relaxed);
  s.requests_dispatched =
      im.requests_dispatched.load(std::memory_order_relaxed);
  s.nacks_queue_full = im.nacks_queue_full.load(std::memory_order_relaxed);
  s.nacks_shutdown = im.nacks_shutdown.load(std::memory_order_relaxed);
  s.nacks_shed = im.nacks_shed.load(std::memory_order_relaxed);
  s.decode_errors = im.decode_errors.load(std::memory_order_relaxed);
  s.overflow_closes = im.overflow_closes.load(std::memory_order_relaxed);
  s.io_loops = static_cast<std::uint64_t>(im.loop_count);
  return s;
}

}  // namespace pslocal::net
