#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <future>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/wire.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"

namespace pslocal::net {

namespace {

const obs::Counter g_accepted("net.accepted");
const obs::Counter g_frames_rx("net.frames_rx");
const obs::Counter g_frames_tx("net.frames_tx");
const obs::Counter g_bytes_rx("net.bytes_rx");
const obs::Counter g_bytes_tx("net.bytes_tx");
const obs::Counter g_nack_queue_full("net.nack_queue_full");
const obs::Counter g_decode_errors("net.decode_errors");
const obs::Gauge g_conn_active("net.conn_active");

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  PSL_CHECK_MSG(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                "net: fcntl(O_NONBLOCK) failed: " << std::strerror(errno));
}

}  // namespace

struct Server::Impl {
  explicit Impl(service::ServiceEngine& engine_in, Config config_in)
      : engine(engine_in), config(std::move(config_in)) {
    if (config.max_payload == 0) config.max_payload = wire::kMaxPayload;
  }

  service::ServiceEngine& engine;
  Config config;

  int listen_fd = -1;
  int wake_rd = -1, wake_wr = -1;
  std::thread io_thread;
  std::thread completer_thread;

  struct Connection {
    int fd = -1;
    std::uint64_t gen = 0;  // unique per accept; survives fd reuse
    wire::FrameDecoder decoder;
    std::deque<std::string> write_queue;
    std::size_t write_offset = 0;  // into write_queue.front()
    std::size_t queued_bytes = 0;

    Connection(int fd_in, std::uint64_t gen_in, std::size_t max_payload)
        : fd(fd_in), gen(gen_in), decoder(max_payload) {}
  };
  std::vector<Connection> conns;
  std::uint64_t next_gen = 1;

  // Admitted requests waiting for their engine future, FIFO.
  struct Completion {
    std::uint64_t conn_gen = 0;
    std::uint64_t request_id = 0;
    std::future<service::Response> future;
  };
  std::mutex completions_mu;
  std::condition_variable completions_cv;
  std::deque<Completion> completions;
  bool stopping = false;  // guarded by completions_mu

  // Encoded response frames headed back to the io thread.
  struct OutFrame {
    std::uint64_t conn_gen = 0;
    std::string bytes;
  };
  std::mutex outbox_mu;
  std::vector<OutFrame> outbox;

  // Tallies (relaxed atomics; written by the io/completer threads).
  std::atomic<std::uint64_t> accepted{0}, closed{0};
  std::atomic<std::uint64_t> frames_rx{0}, frames_tx{0};
  std::atomic<std::uint64_t> bytes_rx{0}, bytes_tx{0};
  std::atomic<std::uint64_t> requests_dispatched{0};
  std::atomic<std::uint64_t> nacks_queue_full{0}, nacks_shutdown{0};
  std::atomic<std::uint64_t> decode_errors{0}, overflow_closes{0};

  void wake() {
    const char b = 'x';
    // The pipe being full already guarantees a pending wakeup.
    [[maybe_unused]] const ssize_t n = ::write(wake_wr, &b, 1);
  }

  void enqueue_frame(Connection& conn, std::string bytes) {
    conn.queued_bytes += bytes.size();
    conn.write_queue.push_back(std::move(bytes));
  }

  /// True if the connection exceeded its output bound and must close.
  [[nodiscard]] bool over_output_bound(const Connection& conn) const {
    return conn.queued_bytes > config.max_output_bytes;
  }

  void close_conn(Connection& conn) {
    if (conn.fd >= 0) {
      ::close(conn.fd);
      conn.fd = -1;
      closed.fetch_add(1, std::memory_order_relaxed);
      g_conn_active.add(-1);
    }
  }

  /// Decode every complete frame buffered on `conn` and dispatch it.
  /// Returns false when the connection must be closed.
  bool drain_decoder(Connection& conn) {
    PSL_OBS_SPAN("net.decode");
    wire::Frame frame;
    for (;;) {
      const auto result = conn.decoder.next(frame);
      if (result == wire::FrameDecoder::Result::kNeedMore) return true;
      if (result == wire::FrameDecoder::Result::kCorrupt) {
        decode_errors.fetch_add(1, std::memory_order_relaxed);
        g_decode_errors.add();
        return false;
      }
      frames_rx.fetch_add(1, std::memory_order_relaxed);
      g_frames_rx.add();
      if (frame.kind != wire::FrameKind::kRequest) {
        // Clients have no business sending response/nack frames.
        decode_errors.fetch_add(1, std::memory_order_relaxed);
        g_decode_errors.add();
        return false;
      }
      if (!dispatch_request(conn, frame)) return false;
    }
  }

  /// Decode the request payload and submit it to the engine; queues a
  /// NACK on admission rejection.  Returns false on a malformed payload
  /// (the connection is closed — framing held but content did not).
  bool dispatch_request(Connection& conn, const wire::Frame& frame) {
    PSL_OBS_SPAN("net.dispatch");
    service::Request request;
    std::string error;
    if (!wire::decode_request(frame.payload, request, &error)) {
      decode_errors.fetch_add(1, std::memory_order_relaxed);
      g_decode_errors.add();
      return false;
    }
    request.id = frame.request_id;
    auto submitted = engine.submit(std::move(request));
    switch (submitted.admission) {
      case service::Admission::kAccepted: {
        requests_dispatched.fetch_add(1, std::memory_order_relaxed);
        {
          std::lock_guard<std::mutex> lock(completions_mu);
          completions.push_back(
              {conn.gen, frame.request_id, std::move(submitted.response)});
        }
        completions_cv.notify_one();
        break;
      }
      case service::Admission::kQueueFull: {
        nacks_queue_full.fetch_add(1, std::memory_order_relaxed);
        g_nack_queue_full.add();
        enqueue_frame(conn, wire::encode_frame(
                                {wire::FrameKind::kNack, frame.request_id,
                                 wire::encode_nack(wire::NackCode::kQueueFull)}));
        break;
      }
      case service::Admission::kShutdown: {
        nacks_shutdown.fetch_add(1, std::memory_order_relaxed);
        enqueue_frame(conn, wire::encode_frame(
                                {wire::FrameKind::kNack, frame.request_id,
                                 wire::encode_nack(wire::NackCode::kShutdown)}));
        break;
      }
    }
    return true;
  }

  /// Move completed response frames from the outbox into their
  /// connections' write queues (dropping frames whose connection died).
  void drain_outbox() {
    std::vector<OutFrame> batch;
    {
      std::lock_guard<std::mutex> lock(outbox_mu);
      batch.swap(outbox);
    }
    for (OutFrame& out : batch) {
      for (Connection& conn : conns) {
        if (conn.gen == out.conn_gen && conn.fd >= 0) {
          enqueue_frame(conn, std::move(out.bytes));
          break;
        }
      }
    }
  }

  /// Write as much queued output as the socket accepts.  Returns false
  /// when the connection must be closed.
  bool flush_writes(Connection& conn) {
    while (!conn.write_queue.empty()) {
      const std::string& front = conn.write_queue.front();
      const char* data = front.data() + conn.write_offset;
      const std::size_t len = front.size() - conn.write_offset;
      const ssize_t n = ::send(conn.fd, data, len, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
        if (errno == EINTR) continue;
        return false;
      }
      bytes_tx.fetch_add(static_cast<std::uint64_t>(n),
                         std::memory_order_relaxed);
      g_bytes_tx.add(static_cast<std::uint64_t>(n));
      conn.write_offset += static_cast<std::size_t>(n);
      conn.queued_bytes -= static_cast<std::size_t>(n);
      if (conn.write_offset == front.size()) {
        conn.write_queue.pop_front();
        conn.write_offset = 0;
        frames_tx.fetch_add(1, std::memory_order_relaxed);
        g_frames_tx.add();
      }
    }
    return true;
  }

  /// Read everything available on `conn`.  Returns false on EOF/error
  /// or when the decoded stream demands closing.
  bool handle_readable(Connection& conn) {
    char buf[64 * 1024];
    for (;;) {
      const ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
      if (n == 0) return false;  // peer closed
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
        if (errno == EINTR) continue;
        return false;
      }
      bytes_rx.fetch_add(static_cast<std::uint64_t>(n),
                         std::memory_order_relaxed);
      g_bytes_rx.add(static_cast<std::uint64_t>(n));
      conn.decoder.feed(buf, static_cast<std::size_t>(n));
      if (!drain_decoder(conn)) return false;
      if (static_cast<std::size_t>(n) < sizeof buf) return true;
    }
  }

  void accept_ready() {
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // EAGAIN or transient error; poll will re-arm
      }
      if (conns.size() >= config.max_connections) {
        ::close(fd);  // at capacity: refuse outright, never half-serve
        continue;
      }
      set_nonblocking(fd);
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      conns.emplace_back(fd, next_gen++, config.max_payload);
      accepted.fetch_add(1, std::memory_order_relaxed);
      g_accepted.add();
      g_conn_active.add(1);
    }
  }

  void io_main(const std::atomic<bool>& stop_flag) {
    std::vector<pollfd> pfds;
    while (!stop_flag.load(std::memory_order_acquire)) {
      pfds.clear();
      pfds.push_back({listen_fd, POLLIN, 0});
      pfds.push_back({wake_rd, POLLIN, 0});
      for (const Connection& conn : conns) {
        short events = POLLIN;
        if (!conn.write_queue.empty()) events |= POLLOUT;
        pfds.push_back({conn.fd, events, 0});
      }
      const int ready = ::poll(pfds.data(), pfds.size(), -1);
      if (ready < 0) {
        if (errno == EINTR) continue;
        PSL_CHECK_MSG(false, "net: poll failed: " << std::strerror(errno));
      }
      if (pfds[1].revents & POLLIN) {
        char drain[256];
        while (::read(wake_rd, drain, sizeof drain) > 0) {
        }
      }
      drain_outbox();  // wake or not — completions may have landed
      // Connections accepted below were not polled this round; only the
      // first `polled` entries of conns have a matching pfds slot.
      const std::size_t polled = pfds.size() - 2;
      if (pfds[0].revents & POLLIN) accept_ready();

      for (std::size_t i = 0; i < polled; ++i) {
        Connection& conn = conns[i];
        const short revents = pfds[2 + i].revents;
        bool alive = true;
        if (revents & (POLLERR | POLLHUP | POLLNVAL)) alive = false;
        if (alive && (revents & POLLIN)) alive = handle_readable(conn);
        if (alive) alive = flush_writes(conn);
        if (alive && over_output_bound(conn)) {
          overflow_closes.fetch_add(1, std::memory_order_relaxed);
          alive = false;
        }
        if (!alive) close_conn(conn);
      }
      conns.erase(std::remove_if(conns.begin(), conns.end(),
                                 [](const Connection& c) { return c.fd < 0; }),
                  conns.end());
    }
    for (Connection& conn : conns) close_conn(conn);
    conns.clear();
  }

  void completer_main() {
    for (;;) {
      Completion job;
      {
        std::unique_lock<std::mutex> lock(completions_mu);
        completions_cv.wait(
            lock, [this] { return stopping || !completions.empty(); });
        if (stopping) return;  // pending futures are discarded; the
                               // engine still answers them (to nobody)
        job = std::move(completions.front());
        completions.pop_front();
      }
      // Blocking is fine here: the engine answers every admitted
      // request exactly once (serve, error, or shutdown-reject).
      service::Response response = job.future.get();
      response.id = job.request_id;
      std::string bytes = wire::encode_frame({wire::FrameKind::kResponse,
                                              job.request_id,
                                              wire::encode_response(response)});
      {
        std::lock_guard<std::mutex> lock(outbox_mu);
        outbox.push_back({job.conn_gen, std::move(bytes)});
      }
      wake();
    }
  }
};

Server::Server(service::ServiceEngine& engine, Config config)
    : impl_(new Impl(engine, std::move(config))) {}

Server::~Server() {
  stop();
  delete impl_;
}

void Server::start() {
  if (started_.exchange(true)) return;
  Impl& im = *impl_;

  int pipe_fds[2];
  PSL_CHECK_MSG(::pipe(pipe_fds) == 0,
                "net: pipe failed: " << std::strerror(errno));
  im.wake_rd = pipe_fds[0];
  im.wake_wr = pipe_fds[1];
  set_nonblocking(im.wake_rd);
  set_nonblocking(im.wake_wr);

  im.listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  PSL_CHECK_MSG(im.listen_fd >= 0,
                "net: socket failed: " << std::strerror(errno));
  const int one = 1;
  ::setsockopt(im.listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(im.config.port);
  PSL_CHECK_MSG(
      ::inet_pton(AF_INET, im.config.host.c_str(), &addr.sin_addr) == 1,
      "net: invalid host '" << im.config.host << "'");
  PSL_CHECK_MSG(::bind(im.listen_fd, reinterpret_cast<sockaddr*>(&addr),
                       sizeof addr) == 0,
                "net: bind " << im.config.host << ":" << im.config.port
                             << " failed: " << std::strerror(errno));
  PSL_CHECK_MSG(::listen(im.listen_fd, im.config.backlog) == 0,
                "net: listen failed: " << std::strerror(errno));
  set_nonblocking(im.listen_fd);

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  PSL_CHECK_MSG(::getsockname(im.listen_fd,
                              reinterpret_cast<sockaddr*>(&bound), &len) == 0,
                "net: getsockname failed: " << std::strerror(errno));
  port_ = ntohs(bound.sin_port);

  im.io_thread = std::thread([this] { impl_->io_main(stopped_); });
  im.completer_thread = std::thread([this] { impl_->completer_main(); });
}

void Server::stop() {
  if (!started_.load() || stopped_.exchange(true)) return;
  Impl& im = *impl_;
  {
    std::lock_guard<std::mutex> lock(im.completions_mu);
    im.stopping = true;
  }
  im.completions_cv.notify_all();
  im.wake();
  if (im.io_thread.joinable()) im.io_thread.join();
  if (im.completer_thread.joinable()) im.completer_thread.join();
  if (im.listen_fd >= 0) ::close(im.listen_fd);
  if (im.wake_rd >= 0) ::close(im.wake_rd);
  if (im.wake_wr >= 0) ::close(im.wake_wr);
  im.listen_fd = im.wake_rd = im.wake_wr = -1;
}

Server::Stats Server::stats() const {
  const Impl& im = *impl_;
  Stats s;
  s.accepted = im.accepted.load(std::memory_order_relaxed);
  s.closed = im.closed.load(std::memory_order_relaxed);
  s.frames_rx = im.frames_rx.load(std::memory_order_relaxed);
  s.frames_tx = im.frames_tx.load(std::memory_order_relaxed);
  s.bytes_rx = im.bytes_rx.load(std::memory_order_relaxed);
  s.bytes_tx = im.bytes_tx.load(std::memory_order_relaxed);
  s.requests_dispatched =
      im.requests_dispatched.load(std::memory_order_relaxed);
  s.nacks_queue_full = im.nacks_queue_full.load(std::memory_order_relaxed);
  s.nacks_shutdown = im.nacks_shutdown.load(std::memory_order_relaxed);
  s.decode_errors = im.decode_errors.load(std::memory_order_relaxed);
  s.overflow_closes = im.overflow_closes.load(std::memory_order_relaxed);
  return s;
}

}  // namespace pslocal::net
