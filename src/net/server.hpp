// Non-blocking TCP front end of the ServiceEngine (src/net/).
//
// Threading model — one epoll event loop per core, none per connection:
//
//   io loops (N)       Each loop owns a private epoll instance, its own
//                      SO_REUSEPORT listen socket bound to the shared
//                      address (the kernel shards incoming connections
//                      across the acceptors), a wake pipe, and an
//                      exclusive set of connections.  A loop accepts,
//                      reads bytes into each connection's FrameDecoder,
//                      decodes requests, submits to the engine, and
//                      writes queued output frames (partial writes
//                      resume where they left off; EPOLLOUT interest is
//                      registered only while output is pending).
//                      Admission rejections (kQueueFull / kShutdown)
//                      become typed NACK frames immediately — the byte
//                      is never dropped and the client decides when to
//                      retry.  Connections never migrate between loops,
//                      so no connection state is ever shared or locked.
//
//   completer thread   Blocks on the engine futures of admitted
//                      requests in admission order (the engine fulfills
//                      FIFO batches, so this order is within one batch
//                      of completion order), encodes each Response and
//                      hands it to the owning loop through that loop's
//                      wake pipe.
//
// config.io_threads picks the loop count (0 = one per core, capped at
// 8).  With one loop this is exactly the previous single-poll-loop
// behavior; with more, a single shard saturates the machine before a
// deployment adds machines (docs/shard.md).  Every blocking syscall in
// the loops retries on EINTR — a signal never kills a healthy server.
//
// Backpressure contract (docs/net.md):
//  * engine queue full        -> NACK(queue_full), retryable, nothing
//                                computed; counted in net.nack_queue_full.
//  * engine stopping          -> NACK(shutdown), not retryable.
//  * slow-reading client      -> per-connection output queue grows to
//                                config.max_output_bytes, then the
//                                connection is closed (the one case
//                                where bytes are dropped — the peer
//                                stopped draining them).
//  * corrupt frame            -> connection closed; other connections
//                                unaffected.
//
// Live telemetry (docs/tracing.md): a kStatsRequest frame is answered
// inline on the io loop that read it — obs::snapshot_json + the
// engine's stats_json + per-loop connection/queued-bytes gauges as one
// deterministic JSON object — without ever touching the engine queue,
// so scraping a busy shard never pauses it.
//
// Every connection is independent: one client sending garbage or
// stalling cannot delay decode or dispatch for the others (solver-side
// ordering is the engine's FIFO, as for in-process callers).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "service/engine.hpp"

namespace pslocal::net {

class Server {
 public:
  struct Config {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;  // 0 = ephemeral; port() reports the choice
    int backlog = 64;
    std::size_t max_connections = 64;
    std::size_t max_payload = 0;  // frame payload bound; 0 = wire default
    /// Output-queue bound per connection; exceeded = connection closed.
    std::size_t max_output_bytes = 8u << 20;
    /// epoll event loops (each with its own SO_REUSEPORT acceptor);
    /// 0 = one per core, capped at 8.
    std::size_t io_threads = 1;
    /// Identity in traces and the stats JSON: io-loop threads are
    /// labelled "<name>.loop<i>" (Perfetto track names) and the stats
    /// response reports it, so a multi-shard scrape tells shards apart.
    std::string name = "server";
  };

  /// The engine must outlive the server and should be start()ed by the
  /// caller (an un-started engine NACKs once its queue fills — the
  /// admission-probe setup).
  Server(service::ServiceEngine& engine, Config config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen and launch the io loops + completer thread.  Throws
  /// ContractViolation on bind/listen failure.  Idempotent.
  void start();

  /// Stop accepting, close every connection, join all threads.
  /// In-flight engine futures are still drained (the engine answers
  /// every admitted request; their bytes go nowhere once the
  /// connections are gone).  Idempotent; also called by the destructor.
  void stop();

  /// The bound TCP port (valid after start(); resolves port 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  struct Stats {
    std::uint64_t accepted = 0;          // connections accepted
    std::uint64_t closed = 0;            // connections closed (any cause)
    std::uint64_t frames_rx = 0;
    std::uint64_t frames_tx = 0;
    std::uint64_t bytes_rx = 0;
    std::uint64_t bytes_tx = 0;
    std::uint64_t requests_dispatched = 0;  // admitted into the engine
    std::uint64_t nacks_queue_full = 0;
    std::uint64_t nacks_shutdown = 0;
    std::uint64_t nacks_shed = 0;  // kShedRetryAfter (QoS load sheds)
    std::uint64_t decode_errors = 0;  // corrupt streams / bad payloads
    std::uint64_t overflow_closes = 0;  // output-bound violations
    std::uint64_t io_loops = 0;         // resolved event-loop count
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Impl;
  Impl* impl_;  // pimpl keeps <sys/epoll.h> and socket state out of the header

  std::uint16_t port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
};

}  // namespace pslocal::net
