// Blocking TCP client of the net tier, with pipelining and retries.
//
// One Client owns one connection.  It is deliberately synchronous —
// closed-loop load generators and tests drive one Client per thread —
// but requests are *pipelined*: send() assigns a fresh request id and
// writes the frame without waiting, and wait(id) reassociates whichever
// response arrives with whoever asked for it, so responses may complete
// in any order relative to the sends (frames read while waiting for a
// different id are parked in an id-indexed map).
//
// All blocking operations carry deadlines (connect / send / wait),
// implemented with poll() on a non-blocking socket; a missed deadline
// returns Outcome::kTimeout rather than hanging.
//
// call_with_retry implements the client half of the backpressure
// contract: a NACK(queue_full) means "nothing was computed, try later",
// so it re-sends after a seeded jittered exponential backoff.  The
// backoff schedule is a pure function of RetryPolicy (backoff_delays
// exposes it), which is what makes retry behavior replayable under a
// fixed seed.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/wire.hpp"
#include "service/request.hpp"

namespace pslocal::net {

class Client {
 public:
  struct Config {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    int connect_timeout_ms = 5000;
    int io_timeout_ms = 10000;  // default send/wait deadline
    std::size_t max_payload = 0;  // 0 = wire default
  };

  explicit Client(Config config);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  // Movable so factories can hand out connected clients; the source is
  // left disconnected.
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Establish the connection (non-blocking connect + poll deadline).
  /// Throws ContractViolation on refusal or timeout.  Idempotent.
  void connect();

  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// How one exchange ended, from the client's point of view.
  enum class Outcome : std::uint8_t {
    kOk,         // Response frame with status kOk
    kRejected,   // Response frame with status kRejected (e.g. shutdown)
    kError,      // Response frame with status kError (solver threw)
    kNack,       // typed admission NACK; nack_code says which
    kTimeout,    // deadline passed with no matching response
    kTransport,  // connection broken / protocol violation; error has why
  };

  [[nodiscard]] static const char* outcome_name(Outcome o);

  struct Result {
    Outcome outcome = Outcome::kTransport;
    service::Response response;  // valid for kOk / kRejected / kError
    wire::NackCode nack_code = wire::NackCode::kQueueFull;
    /// Backoff hint of a NACK(kShedRetryAfter), microseconds; 0 else.
    std::uint64_t retry_after_us = 0;
    std::string error;            // set for kTransport
    std::uint64_t rtt_ns = 0;     // send() to matched frame
    std::uint32_t attempts = 1;   // >1 only via call_with_retry
    std::uint64_t trace_id = 0;   // echoed from the matched frame header
    std::string stats_json;       // payload of a kStatsResponse frame
  };

  /// Pipelined send: assigns the next request id, encodes and writes
  /// the frame (blocking up to the io deadline for socket space).
  /// The frame header carries request.trace_id / parent_span_id when
  /// set, else the thread's ambient obs trace context (zero when
  /// untraced or OBS=OFF).  Returns the id to wait on.  Throws on
  /// transport failure.
  std::uint64_t send(const service::Request& request);

  /// Live telemetry scrape (docs/tracing.md): ask the server for its
  /// obs snapshot + engine stats + per-loop gauges as deterministic
  /// JSON.  Answered from the io loop without pausing the shard; the
  /// JSON lands in Result.stats_json on Outcome::kOk.
  [[nodiscard]] Result stats(int timeout_ms = -1);

  /// Block until the response/NACK for `id` arrives or `timeout_ms`
  /// passes (-1 = config.io_timeout_ms).  Frames for other ids that
  /// arrive meanwhile are parked for their own wait(id) calls.
  [[nodiscard]] Result wait(std::uint64_t id, int timeout_ms = -1);

  /// Non-blocking wait: pump whatever bytes the kernel already holds and
  /// resolve `id` if its frame is among them; kTimeout means "not yet"
  /// (nothing blocked).  The shard tier uses this to absorb duplicate
  /// fan-out responses without stalling fresh traffic.
  [[nodiscard]] Result try_wait(std::uint64_t id);

  /// send() + wait() for one request.
  [[nodiscard]] Result call(const service::Request& request,
                            int timeout_ms = -1);

  struct RetryPolicy {
    std::uint32_t max_attempts = 8;
    std::uint64_t base_delay_us = 200;    // first retry delay (pre-jitter)
    std::uint64_t max_delay_us = 100000;  // exponential growth cap
    std::uint64_t seed = 1;               // jitter stream
  };

  /// The deterministic backoff schedule of `policy`: delay before retry
  /// r (r = 0 is the first retry) is
  ///   d = min(base << r, max);  sleep = d/2 + jitter in [0, d/2]
  /// with jitter drawn from an Rng seeded by policy.seed.  Exposed so
  /// tests can pin retry determinism without a socket in sight.
  [[nodiscard]] static std::vector<std::uint64_t> backoff_delays_us(
      const RetryPolicy& policy, std::size_t retries);

  /// call() that re-sends on NACK(queue_full) after the policy's
  /// backoff, and on NACK(shed_retry_after) after the larger of the
  /// policy's backoff and the server's retry_after_us hint.  Any other
  /// outcome — including NACK(shutdown), which by contract will never
  /// succeed — is returned as-is.  Result.attempts counts the sends.
  [[nodiscard]] Result call_with_retry(const service::Request& request,
                                       const RetryPolicy& policy,
                                       int timeout_ms = -1);

  /// Ids sent but not yet resolved by wait() (pipelining depth).
  [[nodiscard]] std::size_t inflight() const { return inflight_sent_.size(); }

  /// Frames received for ids nobody waited on yet.  After every sent id
  /// has been wait()ed, nonzero means the server produced a duplicate or
  /// unsolicited response (the load generator asserts this is 0).
  [[nodiscard]] std::size_t parked() const { return parked_.size(); }

  /// Raw socket handle, for readiness multiplexing across several
  /// clients (shard/shard_client.cpp polls it to implement
  /// first-response-wins fan-out).  Do not read or write through it.
  [[nodiscard]] int native_handle() const { return fd_; }

  void close();

 private:
  struct Parked {
    wire::Frame frame;
    std::uint64_t arrived_ns = 0;
  };

  /// Read frames until `id` shows up or the deadline passes.
  [[nodiscard]] Result await_frame(std::uint64_t id, int timeout_ms);
  Result finish(std::uint64_t id, const wire::Frame& frame,
                std::uint64_t arrived_ns);
  /// Write one encoded frame, blocking up to the io deadline.
  void write_bytes(const std::string& bytes);

  Config config_;
  int fd_ = -1;
  wire::FrameDecoder decoder_;
  std::uint64_t next_id_ = 1;
  std::unordered_map<std::uint64_t, std::uint64_t> inflight_sent_;  // id -> send ns
  std::unordered_map<std::uint64_t, Parked> parked_;
};

}  // namespace pslocal::net
