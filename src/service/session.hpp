// Mutation sessions: mutable graph state keyed by epoch hash.
//
// A mutate_hypergraph request names a base instance plus a mutation
// script.  Its canonical payload is a pure function of the request
// content (the engine's differential harness compares cached/sessioned
// serving against a bare execute_request with neither) — so a session is
// never *required*; it is the object-cache analogue of
// ConflictGraphCache for dynamic state.  After serving a script the
// engine stores the final MutationState under session_key(final epoch,
// k, solver, seed); a later request whose epoch chain passes through a
// stored epoch resumes from that prefix and only applies the remaining
// steps.  Because the epoch chain commits to the base content and the
// whole mutation prefix (hypergraph/mutation.hpp), a key can never
// resume the wrong state — entries are invalidated *by construction*
// when content diverges, and re-derivable by replaying the script.
//
// The stored history is cumulative (every step since the base) so a
// prefix resume reproduces the full per-step stats array of the
// from-scratch execution byte-for-byte.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/dynamic_conflict_graph.hpp"

namespace pslocal::service {

/// Per-step serving stats, replayed verbatim into the payload on resume.
struct MutationStepStat {
  std::string op;            // describe(mutation)
  std::uint64_t epoch = 0;   // epoch after this step
  std::size_t ball = 0;      // repair ball size
  std::size_t changed = 0;   // MIS members dropped + removed + added
  std::size_t triples = 0;   // |V(G_k)| after this step
  std::size_t gk_edges = 0;  // |E(G_k)| after this step
};

/// Immutable snapshot of a served mutation session (shared_ptr so a
/// resume can read while the store evicts).
struct MutationState {
  DynamicConflictGraph graph;
  std::vector<VertexId> mis;  // repaired MIS over graph, ascending
  std::uint64_t epoch = 0;    // epoch of graph's content
  std::vector<MutationStepStat> history;  // all steps since the base
};

/// Key of a session: the epoch names the content+prefix, and the solver
/// parameters that shaped the MIS are folded in so sessions from
/// different solvers/seeds never cross-resume.
[[nodiscard]] std::uint64_t session_key(std::uint64_t epoch, std::size_t k,
                                        const std::string& solver,
                                        std::uint64_t seed);

/// Thread-safe LRU of MutationStates (the SolverCache/ConflictGraphCache
/// pattern).  max_entries = 0 disables the store entirely.
class MutationSessionStore {
 public:
  struct Stats {
    std::uint64_t hits = 0;    // lookups that found a resumable state
    std::uint64_t misses = 0;  // lookups that found nothing
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
  };

  explicit MutationSessionStore(std::size_t max_entries);

  /// The stored state for `key`, or nullptr.  Refreshes recency.
  [[nodiscard]] std::shared_ptr<const MutationState> lookup(
      std::uint64_t key);

  /// Store (or refresh) a state under `key`.
  void store(std::uint64_t key, std::shared_ptr<const MutationState> state);

  [[nodiscard]] Stats stats() const;

 private:
  using LruList =
      std::list<std::pair<std::uint64_t, std::shared_ptr<const MutationState>>>;

  std::size_t max_entries_;
  mutable std::mutex mu_;
  Stats stats_;
  LruList lru_;  // front = most recently used
  std::unordered_map<std::uint64_t, LruList::iterator> index_;
};

}  // namespace pslocal::service
