// Batch formation: group compatible pending requests so the engine
// computes each distinct workload once per dispatch cycle.
//
// Two requests are compatible exactly when they share a cache key —
// same instance content, same kind, same consumed parameters — in which
// case their responses are byte-identical by construction, so one
// compute (or one cache hit) serves the whole group.  Batches preserve
// arrival order: groups are emitted in order of their first member, and
// members within a group keep their FIFO positions.  Given the same
// drained sequence, form_batches is a pure function — the determinism
// anchor for the engine's batch path.
#pragma once

#include <cstdint>
#include <vector>

#include "service/queue.hpp"

namespace pslocal::service {

/// One group of same-key requests from a single dispatch cycle.
struct Batch {
  std::uint64_t key = 0;             // shared cache key
  std::vector<std::size_t> members;  // indices into the drained vector,
                                     // ascending (FIFO within the batch)
};

/// Group `drained` by cache key (see header comment).  Requests must
/// carry a non-zero instance_hash (the engine fills it at submit).
[[nodiscard]] std::vector<Batch> form_batches(
    const std::vector<Pending>& drained);

}  // namespace pslocal::service
