#include "service/queue.hpp"

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace pslocal::service {

namespace {
const obs::Counter g_accepted("service.queue.accepted");
const obs::Counter g_rejected_full("service.queue.rejected_full");
const obs::Counter g_rejected_shutdown("service.queue.rejected_shutdown");
const obs::Histogram g_depth("service.queue.depth");
}  // namespace

const char* admission_name(Admission a) {
  switch (a) {
    case Admission::kAccepted: return "accepted";
    case Admission::kQueueFull: return "queue_full";
    case Admission::kShutdown: return "shutdown";
    case Admission::kShed: return "shed";
  }
  return "unknown";
}

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity) {
  PSL_EXPECTS(capacity > 0);
}

Admission RequestQueue::try_push(Pending&& pending) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      g_rejected_shutdown.add();
      return Admission::kShutdown;
    }
    if (items_.size() >= capacity_) {
      g_rejected_full.add();
      return Admission::kQueueFull;
    }
    items_.push_back(std::move(pending));
    g_accepted.add();
    g_depth.record(items_.size());
  }
  cv_.notify_one();
  return Admission::kAccepted;
}

std::size_t RequestQueue::pop_batch(std::vector<Pending>& out,
                                    std::size_t max) {
  PSL_EXPECTS(max > 0);
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return !items_.empty() || shutdown_; });
  std::size_t popped = 0;
  while (popped < max && !items_.empty()) {
    out.push_back(std::move(items_.front()));
    items_.pop_front();
    ++popped;
  }
  return popped;
}

void RequestQueue::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

std::size_t RequestQueue::drain(std::vector<Pending>& out) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t n = items_.size();
  while (!items_.empty()) {
    out.push_back(std::move(items_.front()));
    items_.pop_front();
  }
  return n;
}

std::size_t RequestQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

}  // namespace pslocal::service
