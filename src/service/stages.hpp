// Per-stage latency attribution for the serving path (docs/tracing.md).
//
// A request's lifetime is split into named stages, each recorded into a
// per-request-kind log2 histogram `service.stage.<stage>.<kind>` with
// the request's trace_id as a tail exemplar — so a p99 bucket in a
// scraped snapshot links directly to a stitched trace:
//
//   admission_wait_ns  inside ServiceEngine::submit (lock + queue push)
//   queue_depth        queue depth observed at admission (a count)
//   cache_probe_ns     SolverCache lookup for the request's batch
//   solve_ns           solver execution (cache misses only)
//   serialize_ns       response payload + frame encode (net completer)
//   wire_write_ns      response enqueue -> last byte handed to the socket
//   rtt_ns             client send -> response decoded (per attempt winner)
//
// plus the kind-agnostic `service.stage.batch_form_ns` (one value per
// dispatch cycle — batches mix kinds).  All calls compile to no-ops
// under -DPSLOCAL_OBS=OFF.
#pragma once

#include <cstdint>

#include "service/request.hpp"

namespace pslocal::service::stages {

enum class Stage : std::uint8_t {
  kAdmissionWait,
  kQueueDepth,
  kCacheProbe,
  kSolve,
  kSerialize,
  kWireWrite,
  kRtt,
};

inline constexpr std::size_t kStageCount = 7;

/// Metric-name fragment ("admission_wait_ns", "queue_depth", ...).
[[nodiscard]] const char* stage_name(Stage stage);

/// Record `value` into service.stage.<stage>.<kind>; a non-zero
/// exemplar_trace_id is retained as a tail exemplar for value's bucket.
void record(Stage stage, RequestKind kind, std::uint64_t value,
            std::uint64_t exemplar_trace_id = 0);

/// Record one dispatch cycle's batch-formation time (kind-agnostic).
void record_batch_form(std::uint64_t ns);

}  // namespace pslocal::service::stages
