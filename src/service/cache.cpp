#include "service/cache.hpp"

#include "core/conflict_graph.hpp"
#include "obs/obs.hpp"

namespace pslocal::service {

namespace {
const obs::Counter g_cache_hits("service.cache.hits");
const obs::Counter g_cache_misses("service.cache.misses");
const obs::Counter g_cache_evictions("service.cache.evictions");
const obs::Gauge g_cache_bytes("service.cache.bytes");
const obs::Counter g_graph_hits("service.graph_cache.hits");
const obs::Counter g_graph_builds("service.graph_cache.builds");
}  // namespace

SolverCache::SolverCache() : SolverCache(Config{}) {}

SolverCache::SolverCache(Config config) : config_(config) {}

std::optional<std::string> SolverCache::lookup(std::uint64_t key) {
  if (!config_.enabled) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    g_cache_misses.add();
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  ++stats_.hits;
  g_cache_hits.add();
  return it->second->second;
}

void SolverCache::insert(std::uint64_t key, const std::string& payload) {
  if (!config_.enabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;  // duplicate compute of the same key; payloads are identical
  }
  lru_.emplace_front(key, payload);
  index_.emplace(key, lru_.begin());
  stats_.bytes += payload.size();
  g_cache_bytes.add(static_cast<std::int64_t>(payload.size()));
  ++stats_.entries;
  evict_locked();
}

void SolverCache::evict_locked() {
  while (config_.max_entries != 0 && lru_.size() > config_.max_entries) {
    const auto& victim = lru_.back();
    stats_.bytes -= victim.second.size();
    g_cache_bytes.add(-static_cast<std::int64_t>(victim.second.size()));
    index_.erase(victim.first);
    lru_.pop_back();
    --stats_.entries;
    ++stats_.evictions;
    g_cache_evictions.add();
  }
}

SolverCache::Stats SolverCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

ConflictGraphCache::ConflictGraphCache(std::size_t max_entries)
    : max_entries_(max_entries) {}

std::shared_ptr<const ConflictGraph> ConflictGraphCache::find(
    std::uint64_t key) {
  if (max_entries_ == 0) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  g_graph_hits.add();
  return it->second->second;
}

std::shared_ptr<const ConflictGraph> ConflictGraphCache::store(
    std::uint64_t key, std::shared_ptr<const ConflictGraph> graph) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.builds;
    if (max_entries_ != 0) {
      const auto it = index_.find(key);
      if (it == index_.end()) {  // keep the first of duplicate builds
        lru_.emplace_front(key, graph);
        index_.emplace(key, lru_.begin());
        ++stats_.entries;
        while (lru_.size() > max_entries_) {
          index_.erase(lru_.back().first);
          lru_.pop_back();
          --stats_.entries;
          ++stats_.evictions;
        }
      }
    }
  }
  g_graph_builds.add();
  return graph;
}

ConflictGraphCache::Stats ConflictGraphCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace pslocal::service
