// Seeded request traces and the deterministic replay format.
//
// A trace is a reproducible synthetic workload: a pool of planted
// hypergraph instances plus `requests` Requests drawn over the pool with
// a seeded RNG — same TraceParams, same trace, bit for bit.  The pool is
// deliberately much smaller than the request count, so the trace repeats
// instances the way production query streams repeat hot keys; that is
// what the solver cache's hit rate is measured against.
//
// Replay files record, per request id, the cache key and the canonical
// response payload.  Because payloads are byte-deterministic
// (service/request.hpp), re-running the same trace at ANY thread count
// must reproduce each recorded payload exactly; verify_replay reports
// the first mismatch.  The file is JSON (parsed back with util/json —
// the hardened parser, since replay files may come from outside):
//
//   {
//     "format": "pslocal-service-replay",
//     "version": 1,
//     "trace_seed": 1,            // provenance only
//     "entries": [
//       { "id": 0, "key": "89abcdef01234567", "result": "{...}" },
//       ...
//     ]
//   }
//
// Keys travel as hex64 strings because JSON numbers are doubles and
// cannot carry 64 bits exactly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "service/request.hpp"

namespace pslocal::service {

struct TraceParams {
  std::uint64_t seed = 1;
  std::size_t requests = 10000;
  std::size_t instance_pool = 24;  // distinct planted instances
  std::size_t n = 48;              // base vertex count (varies over the pool)
  std::size_t m = 40;              // base edge count
  std::size_t k = 3;               // planted palette size
  std::size_t seed_variants = 2;   // distinct solver seeds for random kinds

  // Relative workload mix (weights need not be normalized).
  unsigned weight_build = 20;
  unsigned weight_greedy = 30;
  unsigned weight_luby = 25;
  unsigned weight_cf = 15;
  unsigned weight_reduction = 10;
  // exact_certificate is opt-in (an exact solve per miss is orders of
  // magnitude heavier than the other kinds — pair a non-zero weight
  // with small n/m).  Default 0 also keeps the RNG draw sequence, and
  // therefore existing recorded traces, byte-identical.
  unsigned weight_exact = 0;
  // mutate_hypergraph is opt-in the same way: scripts are a pure
  // function of (instance, seed variant), and the default 0 keeps the
  // RNG draw sequence — and existing recorded traces — byte-identical.
  unsigned weight_mutate = 0;
  std::size_t mutate_script_len = 3;  // steps per mutate script
};

struct Trace {
  std::vector<std::shared_ptr<const Hypergraph>> instances;
  std::vector<std::uint64_t> instance_hashes;  // content hash per instance
  std::vector<Request> requests;               // request i has id == i
  /// Distinct cache keys in the trace — the number of computes a
  /// large-enough cache performs; requests - unique_keys is its hit count.
  std::size_t unique_keys = 0;
};

/// Generate the trace for `params` (deterministic in params alone).
[[nodiscard]] Trace generate_trace(const TraceParams& params);

/// One recorded response.
struct ReplayEntry {
  std::uint64_t id = 0;
  std::uint64_t key = 0;
  std::string result;  // canonical payload bytes
};

/// Write entries in id order to `path` (see format above).
void write_replay_file(const std::string& path,
                       const std::vector<ReplayEntry>& entries,
                       std::uint64_t trace_seed);

/// Parse a replay file; PSL_CHECKs format and version.
[[nodiscard]] std::vector<ReplayEntry> read_replay_file(
    const std::string& path);

struct ReplayVerdict {
  bool identical = false;
  std::size_t compared = 0;
  std::size_t mismatches = 0;
  std::uint64_t first_mismatch_id = 0;  // valid when mismatches > 0
};

/// Compare two recordings byte-for-byte by request id (both sides must
/// cover the same ids).
[[nodiscard]] ReplayVerdict verify_replay(
    const std::vector<ReplayEntry>& recorded,
    const std::vector<ReplayEntry>& observed);

}  // namespace pslocal::service
