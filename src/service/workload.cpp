#include "service/workload.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "hypergraph/generators.hpp"
#include "util/check.hpp"
#include "util/hash.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace pslocal::service {

namespace {

constexpr const char* kReplayFormat = "pslocal-service-replay";
constexpr int kReplayVersion = 1;

/// Deterministic mutate script for (instance, variant): a short churn of
/// duplicate-edge inserts, edge removals, and vertex appends, valid at
/// every prefix by construction.  A pure function of its arguments, so
/// repeated (instance, variant) picks repeat cache keys the way the
/// other kinds do.
std::vector<Mutation> trace_mutation_script(const Hypergraph& h,
                                            std::uint64_t variant,
                                            std::size_t steps) {
  Rng rng(hash_combine(hash_hypergraph(h), variant));
  std::size_t n = h.vertex_count();
  std::vector<std::vector<VertexId>> edges;
  for (EdgeId e = 0; e < h.edge_count(); ++e) {
    const auto vs = h.edge(e);
    edges.emplace_back(vs.begin(), vs.end());
  }
  std::vector<Mutation> script;
  script.reserve(steps);
  for (std::size_t i = 0; i < steps; ++i) {
    Mutation mut;
    const std::uint64_t roll = rng.next_below(3);
    if (roll == 0 && !edges.empty()) {
      mut = Mutation::add_edge(edges[rng.next_below(edges.size())]);
    } else if (roll == 1 && !edges.empty()) {
      mut = Mutation::remove_edge(
          static_cast<EdgeId>(rng.next_below(edges.size())));
    } else {
      mut = Mutation::add_vertex();
    }
    apply_mutation(n, edges, mut);
    script.push_back(std::move(mut));
  }
  return script;
}

}  // namespace

Trace generate_trace(const TraceParams& params) {
  PSL_EXPECTS(params.instance_pool > 0);
  PSL_EXPECTS(params.seed_variants > 0);
  const std::uint64_t total_weight =
      static_cast<std::uint64_t>(params.weight_build) + params.weight_greedy +
      params.weight_luby + params.weight_cf + params.weight_reduction +
      params.weight_exact + params.weight_mutate;
  PSL_EXPECTS_MSG(total_weight > 0, "trace kind weights are all zero");

  Rng rng(params.seed);
  Trace trace;
  trace.instances.reserve(params.instance_pool);
  trace.instance_hashes.reserve(params.instance_pool);

  // Instance sizes vary mildly over the pool so cache entries differ in
  // cost, but each stays small enough that a 10k-request trace is cheap.
  Rng gen_rng = rng.fork(0);
  for (std::size_t i = 0; i < params.instance_pool; ++i) {
    PlantedCfParams p;
    p.n = params.n + (i % 5) * 8;
    p.m = params.m + (i % 7) * 4;
    p.k = params.k;
    auto inst = planted_cf_colorable(p, gen_rng);
    auto h = std::make_shared<const Hypergraph>(std::move(inst.hypergraph));
    trace.instance_hashes.push_back(hash_hypergraph(*h));
    trace.instances.push_back(std::move(h));
  }

  // Request stream: kind by weight, instance uniform over the pool, seed
  // from a small variant set (so random kinds repeat keys too).
  static constexpr const char* kSolvers[] = {"greedy-mindeg", "greedy-random",
                                             "luby"};
  Rng req_rng = rng.fork(1);
  trace.requests.reserve(params.requests);
  std::unordered_set<std::uint64_t> keys;
  for (std::size_t i = 0; i < params.requests; ++i) {
    Request req;
    req.id = i;
    const std::uint64_t pick = req_rng.next_below(total_weight);
    if (pick < params.weight_build)
      req.kind = RequestKind::kBuildConflictGraph;
    else if (pick < params.weight_build + params.weight_greedy)
      req.kind = RequestKind::kGreedyMaxis;
    else if (pick < params.weight_build + params.weight_greedy +
                        params.weight_luby)
      req.kind = RequestKind::kLubyMis;
    else if (pick < params.weight_build + params.weight_greedy +
                        params.weight_luby + params.weight_cf)
      req.kind = RequestKind::kCfColor;
    else if (pick < params.weight_build + params.weight_greedy +
                        params.weight_luby + params.weight_cf +
                        params.weight_reduction)
      req.kind = RequestKind::kRunReduction;
    else if (pick < params.weight_build + params.weight_greedy +
                        params.weight_luby + params.weight_cf +
                        params.weight_reduction + params.weight_exact)
      req.kind = RequestKind::kExactCertificate;
    else
      req.kind = RequestKind::kMutateHypergraph;
    const std::size_t which =
        static_cast<std::size_t>(req_rng.next_below(params.instance_pool));
    req.instance = trace.instances[which];
    req.instance_hash = trace.instance_hashes[which];
    req.k = params.k;
    req.seed = 1 + req_rng.next_below(params.seed_variants);
    if (req.kind == RequestKind::kRunReduction)
      req.solver = kSolvers[req_rng.next_below(3)];
    // Fixed backend, no RNG draw: the stream stays identical to traces
    // generated before this kind existed whenever weight_exact == 0.
    if (req.kind == RequestKind::kExactCertificate) req.solver = "dpll";
    if (req.kind == RequestKind::kMutateHypergraph) {
      // The leg draw and the script derivation run only on mutate picks,
      // so the stream is unchanged whenever weight_mutate == 0.
      req.solver = req_rng.next_bool(0.5) ? "greedy-mindeg" : "luby";
      req.script = trace_mutation_script(*req.instance, req.seed,
                                         params.mutate_script_len);
    }
    keys.insert(cache_key(req));
    trace.requests.push_back(std::move(req));
  }
  trace.unique_keys = keys.size();
  return trace;
}

void write_replay_file(const std::string& path,
                       const std::vector<ReplayEntry>& entries,
                       std::uint64_t trace_seed) {
  std::ofstream out(path);
  PSL_CHECK_MSG(out.good(), "replay: cannot open " << path << " for writing");
  out << "{\n  \"format\": \"" << kReplayFormat << "\",\n"
      << "  \"version\": " << kReplayVersion << ",\n"
      << "  \"trace_seed\": " << trace_seed << ",\n"
      << "  \"entries\": [";
  std::vector<const ReplayEntry*> ordered;
  ordered.reserve(entries.size());
  for (const auto& e : entries) ordered.push_back(&e);
  std::sort(ordered.begin(), ordered.end(),
            [](const ReplayEntry* a, const ReplayEntry* b) {
              return a->id < b->id;
            });
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    const ReplayEntry& e = *ordered[i];
    out << (i ? ",\n" : "\n") << "    {\"id\": " << e.id << ", \"key\": \""
        << hex64(e.key) << "\", \"result\": \"" << json::escape(e.result)
        << "\"}";
  }
  out << "\n  ]\n}\n";
  PSL_CHECK_MSG(out.good(), "replay: write to " << path << " failed");
}

std::vector<ReplayEntry> read_replay_file(const std::string& path) {
  const json::Value doc = json::parse_file(path);
  PSL_CHECK_MSG(doc.at("format").as_string() == kReplayFormat,
                "replay: " << path << " is not a service replay file");
  PSL_CHECK_MSG(static_cast<int>(doc.at("version").as_number()) ==
                    kReplayVersion,
                "replay: unsupported version in " << path);
  std::vector<ReplayEntry> entries;
  const auto& arr = doc.at("entries").as_array();
  entries.reserve(arr.size());
  for (const auto& item : arr) {
    ReplayEntry e;
    e.id = static_cast<std::uint64_t>(item.at("id").as_number());
    e.key = parse_hex64(item.at("key").as_string());
    e.result = item.at("result").as_string();
    entries.push_back(std::move(e));
  }
  return entries;
}

ReplayVerdict verify_replay(const std::vector<ReplayEntry>& recorded,
                            const std::vector<ReplayEntry>& observed) {
  ReplayVerdict verdict;
  std::unordered_map<std::uint64_t, const ReplayEntry*> by_id;
  by_id.reserve(recorded.size());
  for (const auto& e : recorded) by_id.emplace(e.id, &e);
  PSL_CHECK_MSG(observed.size() == recorded.size(),
                "replay: recorded " << recorded.size() << " responses but "
                                    << observed.size() << " observed");
  // Walk in ascending id order so first_mismatch_id is stable.
  std::vector<const ReplayEntry*> ordered;
  ordered.reserve(observed.size());
  for (const auto& e : observed) ordered.push_back(&e);
  std::sort(ordered.begin(), ordered.end(),
            [](const ReplayEntry* a, const ReplayEntry* b) {
              return a->id < b->id;
            });
  for (const ReplayEntry* obs : ordered) {
    const auto it = by_id.find(obs->id);
    PSL_CHECK_MSG(it != by_id.end(),
                  "replay: response id " << obs->id << " not in recording");
    ++verdict.compared;
    const ReplayEntry& rec = *it->second;
    if (rec.key != obs->key || rec.result != obs->result) {
      if (verdict.mismatches == 0) verdict.first_mismatch_id = obs->id;
      ++verdict.mismatches;
    }
  }
  verdict.identical = verdict.mismatches == 0;
  return verdict;
}

}  // namespace pslocal::service
