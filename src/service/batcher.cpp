#include "service/batcher.hpp"

#include <unordered_map>

#include "obs/obs.hpp"

namespace pslocal::service {

namespace {
const obs::Histogram g_batch_size("service.batch.size");
}  // namespace

std::vector<Batch> form_batches(const std::vector<Pending>& drained) {
  std::vector<Batch> batches;
  std::unordered_map<std::uint64_t, std::size_t> by_key;  // key -> batch idx
  by_key.reserve(drained.size());
  for (std::size_t i = 0; i < drained.size(); ++i) {
    const std::uint64_t key = cache_key(drained[i].request);
    const auto [it, inserted] = by_key.emplace(key, batches.size());
    if (inserted) batches.push_back(Batch{key, {}});
    batches[it->second].members.push_back(i);
  }
  for (const Batch& b : batches) g_batch_size.record(b.members.size());
  return batches;
}

}  // namespace pslocal::service
