#include "service/engine.hpp"

#include <exception>
#include <sstream>
#include <utility>

#include "obs/obs.hpp"
#include "runtime/batch.hpp"
#include "service/stages.hpp"
#include "util/hash.hpp"
#include "util/timer.hpp"

namespace pslocal::service {

namespace {
const obs::Counter g_served("service.responses.served");
const obs::Counter g_served_cached("service.responses.cached");
const obs::Counter g_errors("service.responses.errors");
const obs::Counter g_batches("service.batches");
const obs::Histogram g_latency_ns("service.latency_ns");
const obs::Histogram g_queue_ns("service.queue_ns");
const obs::Histogram g_compute_ns("service.compute_ns");
}  // namespace

ServiceEngine::ServiceEngine(EngineConfig config)
    : config_(config),
      sched_(config.scheduler != nullptr ? config.scheduler
                                         : &runtime::global_scheduler()),
      cache_(config.cache),
      graph_cache_(config.graph_cache_entries),
      sessions_(config.mutation_sessions) {
  if (config_.qos.enabled) {
    auto fq = std::make_unique<qos::FairQueue>(config_.qos,
                                               config_.queue_capacity);
    fair_queue_ = fq.get();
    queue_ = std::move(fq);
    const qos::TenantRegistry& reg = fair_queue_->registry();
    tenant_latency_.reserve(reg.size());
    for (std::size_t i = 0; i < reg.size(); ++i) {
      const std::string& name = reg.config(i).name;
      const std::string metric =
          "qos.latency_ns." + (name.empty() ? std::string("default") : name);
      tenant_latency_.emplace_back(metric.c_str());
    }
  } else {
    queue_ = std::make_unique<RequestQueue>(config_.queue_capacity);
  }
}

ServiceEngine::~ServiceEngine() { stop(); }

void ServiceEngine::start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_ || stopped_) return;
  started_ = true;
  dispatcher_ = std::thread([this] { dispatcher_main(); });
}

void ServiceEngine::stop(StopMode mode) {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  if (mode == StopMode::kReject)
    reject_drained_.store(true, std::memory_order_release);
  queue_->shutdown();
  if (dispatcher_.joinable()) dispatcher_.join();
  // Anything still queued was never dispatched (engine not started, or
  // raced the shutdown): answer it rather than abandoning the future.
  std::vector<Pending> stragglers;
  queue_->drain(stragglers);
  reject_all(stragglers, "shutdown");
}

ServiceEngine::Submitted ServiceEngine::submit(Request request) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (request.instance_hash == 0 && request.instance != nullptr)
    request.instance_hash = hash_hypergraph(*request.instance);

  const RequestKind kind = request.kind;
  const std::uint64_t trace_id = request.trace_id;
  Pending pending;
  pending.request = std::move(request);
  pending.submit_ns = now_ns();
  const std::uint64_t submit_ns = pending.submit_ns;
  std::future<Response> future = pending.promise.get_future();

  Submitted out;
  const AdmissionVerdict verdict = queue_->admit(std::move(pending));
  out.admission = verdict.admission;
  out.retry_after_us = verdict.retry_after_us;
  // Admission wait is the time submit() spent getting a verdict from
  // the queue (lock contention under load); queue depth at entry is
  // how much work was already ahead of an accepted request.
  stages::record(stages::Stage::kAdmissionWait, kind, now_ns() - submit_ns,
                 trace_id);
  switch (out.admission) {
    case Admission::kAccepted:
      accepted_.fetch_add(1, std::memory_order_relaxed);
      stages::record(stages::Stage::kQueueDepth, kind, queue_->depth(),
                     trace_id);
      out.response = std::move(future);
      break;
    case Admission::kQueueFull:
      rejected_full_.fetch_add(1, std::memory_order_relaxed);
      break;
    case Admission::kShutdown:
      rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
      break;
    case Admission::kShed:
      shed_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  return out;
}

void ServiceEngine::dispatcher_main() {
  obs::set_thread_label(config_.name + ".dispatcher");
  std::vector<Pending> drained;
  for (;;) {
    drained.clear();
    const std::size_t n = queue_->pop_batch(drained, config_.max_batch);
    if (n == 0) return;  // shutdown and empty
    if (reject_drained_.load(std::memory_order_acquire)) {
      reject_all(drained, "shutdown");
      continue;
    }
    if (fair_queue_ != nullptr) {
      shed_expired(drained);
      if (drained.empty()) continue;
    }
    dispatch_cycles_.fetch_add(1, std::memory_order_relaxed);
    serve_cycle(drained);
  }
}

void ServiceEngine::shed_expired(std::vector<Pending>& drained) {
  // Deadline-aware shedding: a request that already blew its tenant's
  // deadline class gets a shed answer now instead of burning solver
  // time that cannot help it.  The net tier turns the response into a
  // kShedRetryAfter NACK carrying retry_after_us.
  const std::uint64_t now = now_ns();
  std::size_t kept = 0;
  for (std::size_t i = 0; i < drained.size(); ++i) {
    Pending& pending = drained[i];
    if (pending.deadline_ns != 0 && now > pending.deadline_ns) {
      const qos::TenantConfig& cfg =
          fair_queue_->registry().config(pending.tenant);
      Response resp;
      resp.id = pending.request.id;
      resp.status = Response::Status::kRejected;
      resp.reason = "shed";
      resp.retry_after_us = cfg.deadline_ms * 1000;
      resp.total_ns = now - pending.submit_ns;
      fair_queue_->record_deadline_shed(pending.tenant);
      shed_.fetch_add(1, std::memory_order_relaxed);
      shed_deadline_.fetch_add(1, std::memory_order_relaxed);
      pending.promise.set_value(std::move(resp));
      continue;
    }
    if (kept != i) drained[kept] = std::move(pending);
    ++kept;
  }
  drained.resize(kept);
}

void ServiceEngine::serve_cycle(std::vector<Pending>& drained) {
  PSL_OBS_SPAN("service.cycle");
  const std::uint64_t dispatch_ns = now_ns();
  const std::vector<Batch> batches = form_batches(drained);
  stages::record_batch_form(now_ns() - dispatch_ns);
  batches_.fetch_add(batches.size(), std::memory_order_relaxed);
  g_batches.add(batches.size());

  // Per-batch outcome, filled by cache lookups then the compute fan-out.
  struct Outcome {
    std::string payload;
    std::string error;
    std::uint64_t compute_ns = 0;
    bool from_cache = false;
  };
  std::vector<Outcome> outcomes(batches.size());

  std::vector<std::size_t> miss_batches;
  for (std::size_t b = 0; b < batches.size(); ++b) {
    const Request& front = drained[batches[b].members.front()].request;
    const std::uint64_t probe_ns = now_ns();
    if (auto hit = cache_.lookup(batches[b].key)) {
      outcomes[b].payload = std::move(*hit);
      outcomes[b].from_cache = true;
    } else {
      miss_batches.push_back(b);
    }
    stages::record(stages::Stage::kCacheProbe, front.kind,
                   now_ns() - probe_ns, front.trace_id);
  }

  // One task per distinct missing key; heterogeneous costs, so let the
  // work-stealing pool rebalance whole tasks (runtime/batch.hpp).  Each
  // task writes only its own outcome slot.
  {
    PSL_OBS_SPAN("service.compute");
    std::vector<std::function<void()>> tasks;
    tasks.reserve(miss_batches.size());
    for (const std::size_t b : miss_batches) {
      tasks.push_back([this, b, &batches, &drained, &outcomes] {
        Outcome& out = outcomes[b];
        const Request& req = drained[batches[b].members.front()].request;
        // Adopt the request's wire trace context on the worker thread,
        // so the solve span nests under the client's root span even
        // though it runs far from the io loop that read the frame.
        obs::ScopedTraceContext trace_ctx(req.trace_id, req.parent_span_id);
        PSL_OBS_SPAN("service.solve");
        const std::uint64_t t0 = now_ns();
        try {
          out.payload = execute_request(req, *sched_, &graph_cache_,
                                        &sessions_);
        } catch (const std::exception& e) {
          out.error = e.what();
        }
        out.compute_ns = now_ns() - t0;
        stages::record(stages::Stage::kSolve, req.kind, out.compute_ns,
                       req.trace_id);
      });
    }
    runtime::run_task_batch(*sched_, tasks);
  }

  for (const std::size_t b : miss_batches) {
    if (outcomes[b].error.empty())
      cache_.insert(batches[b].key, outcomes[b].payload);
  }

  // Fulfill every promise in arrival order.  Within a miss batch, the
  // first member pays the compute; later members are batch-memoized hits.
  std::vector<bool> key_served_before(batches.size(), false);
  for (std::size_t b = 0; b < batches.size(); ++b) {
    const Batch& batch = batches[b];
    Outcome& out = outcomes[b];
    for (const std::size_t member : batch.members) {
      Pending& pending = drained[member];
      Response resp;
      resp.id = pending.request.id;
      resp.key = batch.key;
      resp.queue_ns = dispatch_ns - pending.submit_ns;
      if (!out.error.empty()) {
        resp.status = Response::Status::kError;
        resp.reason = out.error;
        errors_.fetch_add(1, std::memory_order_relaxed);
        g_errors.add();
      } else {
        resp.status = Response::Status::kOk;
        resp.result = out.payload;
        resp.cache_hit = out.from_cache || key_served_before[b];
        if (!resp.cache_hit) resp.compute_ns = out.compute_ns;
      }
      key_served_before[b] = true;
      resp.total_ns = now_ns() - pending.submit_ns;
      g_latency_ns.record(resp.total_ns);
      if (!tenant_latency_.empty())
        tenant_latency_[pending.tenant].record(resp.total_ns,
                                               pending.request.trace_id);
      g_queue_ns.record(resp.queue_ns);
      if (resp.compute_ns != 0) g_compute_ns.record(resp.compute_ns);
      served_.fetch_add(1, std::memory_order_relaxed);
      g_served.add();
      if (resp.cache_hit) {
        served_cached_.fetch_add(1, std::memory_order_relaxed);
        g_served_cached.add();
      }
      pending.promise.set_value(std::move(resp));
    }
  }
}

void ServiceEngine::reject_all(std::vector<Pending>& pendings,
                               const char* reason) {
  for (Pending& pending : pendings) {
    Response resp;
    resp.id = pending.request.id;
    resp.status = Response::Status::kRejected;
    resp.reason = reason;
    resp.total_ns = now_ns() - pending.submit_ns;
    rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
    pending.promise.set_value(std::move(resp));
  }
}

ServiceEngine::Stats ServiceEngine::stats() const {
  Stats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.rejected_full = rejected_full_.load(std::memory_order_relaxed);
  s.rejected_shutdown = rejected_shutdown_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.shed_deadline = shed_deadline_.load(std::memory_order_relaxed);
  s.served = served_.load(std::memory_order_relaxed);
  s.served_cached = served_cached_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.dispatch_cycles = dispatch_cycles_.load(std::memory_order_relaxed);
  s.queue_capacity = queue_->capacity();
  s.cache = cache_.stats();
  s.graph_cache = graph_cache_.stats();
  s.sessions = sessions_.stats();
  s.qos_enabled = fair_queue_ != nullptr;
  if (fair_queue_ != nullptr) s.qos_tenants = fair_queue_->tenant_stats();
  return s;
}

std::string stats_json(const ServiceEngine::Stats& stats) {
  std::ostringstream os;
  os << "{\"submitted\":" << stats.submitted
     << ",\"accepted\":" << stats.accepted
     << ",\"rejected_full\":" << stats.rejected_full
     << ",\"rejected_shutdown\":" << stats.rejected_shutdown
     << ",\"served\":" << stats.served
     << ",\"served_cached\":" << stats.served_cached
     << ",\"errors\":" << stats.errors << ",\"batches\":" << stats.batches
     << ",\"dispatch_cycles\":" << stats.dispatch_cycles
     << ",\"cache\":{\"hits\":" << stats.cache.hits
     << ",\"misses\":" << stats.cache.misses
     << ",\"evictions\":" << stats.cache.evictions
     << ",\"entries\":" << stats.cache.entries
     << ",\"bytes\":" << stats.cache.bytes
     << "},\"graph_cache\":{\"hits\":" << stats.graph_cache.hits
     << ",\"builds\":" << stats.graph_cache.builds
     << ",\"evictions\":" << stats.graph_cache.evictions
     << ",\"entries\":" << stats.graph_cache.entries
     << "},\"sessions\":{\"hits\":" << stats.sessions.hits
     << ",\"misses\":" << stats.sessions.misses
     << ",\"evictions\":" << stats.sessions.evictions
     << ",\"entries\":" << stats.sessions.entries
     << "},\"shed\":" << stats.shed
     << ",\"shed_deadline\":" << stats.shed_deadline
     << ",\"queue_capacity\":" << stats.queue_capacity
     << ",\"qos\":{\"enabled\":" << (stats.qos_enabled ? 1 : 0)
     << ",\"tenants\":[";
  for (std::size_t i = 0; i < stats.qos_tenants.size(); ++i) {
    const auto& t = stats.qos_tenants[i];
    if (i > 0) os << ",";
    // Tenant names come from EngineConfig (never raw wire bytes — an
    // unknown wire tenant resolves to "default"), so they are emitted
    // verbatim; configs must keep them JSON-safe.
    os << "{\"name\":\"" << t.name << "\",\"weight\":" << t.weight
       << ",\"depth\":" << t.depth << ",\"admitted\":" << t.admitted
       << ",\"shed_rate\":" << t.shed_rate
       << ",\"shed_deadline\":" << t.shed_deadline
       << ",\"deficit\":" << t.deficit << "}";
  }
  os << "]}}";
  return os.str();
}

}  // namespace pslocal::service
