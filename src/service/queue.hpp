// Bounded MPMC request queue with admission control.
//
// The serving front door: any number of client threads try_push pending
// requests; the engine's dispatcher pops them in FIFO order, up to a
// batch at a time.  Admission is non-blocking and total — a push either
// enters the queue or is rejected *now* with a reason (kQueueFull,
// kShutdown); clients implement their own retry policy.  Rejection is a
// pure function of queue state, so for a serial submission schedule the
// accept/reject sequence is deterministic (tests pin it by filling an
// undrained queue).
//
// Depth is tracked in an obs histogram at every successful push, which is
// how BENCH_service.json gets its queue-depth distribution.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <vector>

#include "service/request.hpp"

namespace pslocal::service {

/// Admission decision for one submit.
enum class Admission : std::uint8_t {
  kAccepted,
  kQueueFull,  // bounded queue at capacity; retry or shed load
  kShutdown,   // engine stopping; no further requests served
  kShed,       // QoS load shed (over-budget tenant); retry after hint
};

/// Stable wire name ("accepted", "queue_full", "shutdown", "shed").
[[nodiscard]] const char* admission_name(Admission a);

/// Admission outcome plus the deterministic backoff hint that rides a
/// kShedRetryAfter NACK (0 for every other admission).
struct AdmissionVerdict {
  Admission admission = Admission::kShutdown;
  std::uint64_t retry_after_us = 0;
};

/// One admitted request travelling through the engine.
struct Pending {
  Request request;
  std::promise<Response> promise;
  std::uint64_t submit_ns = 0;    // now_ns() at admission
  std::size_t tenant = 0;         // registry index (0 = default tenant)
  std::uint64_t deadline_ns = 0;  // absolute deadline; 0 = none
};

/// Admission-queue contract the engine dispatches from.  Two
/// implementations: the single-FIFO RequestQueue below (qos off) and
/// qos::FairQueue (per-tenant FIFOs + deficit-round-robin, qos on).
class AdmissionQueue {
 public:
  virtual ~AdmissionQueue() = default;

  /// Non-blocking admission.  On kAccepted the pending request has been
  /// moved in; otherwise it is left untouched and the verdict says why.
  [[nodiscard]] virtual AdmissionVerdict admit(Pending&& pending) = 0;

  /// Block until at least one request is queued (or shutdown), then move
  /// up to `max` requests into `out` (appended).  Returns how many were
  /// popped; 0 means shutdown-and-empty — the consumer should exit.
  virtual std::size_t pop_batch(std::vector<Pending>& out,
                                std::size_t max) = 0;

  /// Reject all future pushes and wake blocked consumers.  Requests
  /// already queued remain poppable (drain before destroying).
  virtual void shutdown() = 0;

  /// Move out everything still queued without blocking (the engine's
  /// stop path, which rejects stragglers).
  virtual std::size_t drain(std::vector<Pending>& out) = 0;

  [[nodiscard]] virtual std::size_t depth() const = 0;
  [[nodiscard]] virtual std::size_t capacity() const = 0;
};

class RequestQueue final : public AdmissionQueue {
 public:
  explicit RequestQueue(std::size_t capacity);

  /// Non-blocking admission (see header comment).  On kAccepted the
  /// pending request has been moved in; otherwise it is left untouched.
  [[nodiscard]] Admission try_push(Pending&& pending);

  [[nodiscard]] AdmissionVerdict admit(Pending&& pending) override {
    return {try_push(std::move(pending)), 0};
  }
  std::size_t pop_batch(std::vector<Pending>& out, std::size_t max) override;
  void shutdown() override;
  std::size_t drain(std::vector<Pending>& out) override;
  [[nodiscard]] std::size_t depth() const override;
  [[nodiscard]] std::size_t capacity() const override { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> items_;
  bool shutdown_ = false;
};

}  // namespace pslocal::service
