// Bounded MPMC request queue with admission control.
//
// The serving front door: any number of client threads try_push pending
// requests; the engine's dispatcher pops them in FIFO order, up to a
// batch at a time.  Admission is non-blocking and total — a push either
// enters the queue or is rejected *now* with a reason (kQueueFull,
// kShutdown); clients implement their own retry policy.  Rejection is a
// pure function of queue state, so for a serial submission schedule the
// accept/reject sequence is deterministic (tests pin it by filling an
// undrained queue).
//
// Depth is tracked in an obs histogram at every successful push, which is
// how BENCH_service.json gets its queue-depth distribution.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <vector>

#include "service/request.hpp"

namespace pslocal::service {

/// Admission decision for one submit.
enum class Admission : std::uint8_t {
  kAccepted,
  kQueueFull,  // bounded queue at capacity; retry or shed load
  kShutdown,   // engine stopping; no further requests served
};

/// Stable wire name ("accepted", "queue_full", "shutdown").
[[nodiscard]] const char* admission_name(Admission a);

/// One admitted request travelling through the engine.
struct Pending {
  Request request;
  std::promise<Response> promise;
  std::uint64_t submit_ns = 0;  // now_ns() at admission
};

class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity);

  /// Non-blocking admission (see header comment).  On kAccepted the
  /// pending request has been moved in; otherwise it is left untouched.
  [[nodiscard]] Admission try_push(Pending&& pending);

  /// Block until at least one request is queued (or shutdown), then move
  /// up to `max` requests into `out` (appended, FIFO).  Returns how many
  /// were popped; 0 means shutdown-and-empty — the consumer should exit.
  std::size_t pop_batch(std::vector<Pending>& out, std::size_t max);

  /// Reject all future pushes and wake blocked consumers.  Requests
  /// already queued remain poppable (drain before destroying).
  void shutdown();

  /// Move out everything still queued without blocking (the engine's
  /// stop path, which rejects stragglers).
  std::size_t drain(std::vector<Pending>& out);

  [[nodiscard]] std::size_t depth() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> items_;
  bool shutdown_ = false;
};

}  // namespace pslocal::service
