#include "service/session.hpp"

#include "util/hash.hpp"

namespace pslocal::service {

std::uint64_t session_key(std::uint64_t epoch, std::size_t k,
                          const std::string& solver, std::uint64_t seed) {
  std::uint64_t key = hash_combine(epoch, k);
  key = hash_combine(key, fnv1a64(solver));
  return hash_combine(key, seed);
}

MutationSessionStore::MutationSessionStore(std::size_t max_entries)
    : max_entries_(max_entries) {}

std::shared_ptr<const MutationState> MutationSessionStore::lookup(
    std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void MutationSessionStore::store(std::uint64_t key,
                                 std::shared_ptr<const MutationState> state) {
  if (max_entries_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(state);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(state));
  index_[key] = lru_.begin();
  while (lru_.size() > max_entries_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
  stats_.entries = lru_.size();
}

MutationSessionStore::Stats MutationSessionStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out = stats_;
  out.entries = lru_.size();
  return out;
}

}  // namespace pslocal::service
