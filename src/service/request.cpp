#include "service/request.hpp"

#include <sstream>

#include <algorithm>

#include "coloring/cf_baselines.hpp"
#include "core/conflict_graph.hpp"
#include "core/dynamic_conflict_graph.hpp"
#include "core/reduction.hpp"
#include "local/luby_mis.hpp"
#include "mis/greedy_maxis.hpp"
#include "mis/independent_set.hpp"
#include "mis/repair.hpp"
#include "obs/obs.hpp"
#include "service/cache.hpp"
#include "service/session.hpp"
#include "solver/solver.hpp"
#include "util/check.hpp"
#include "util/hash.hpp"

namespace pslocal::service {

namespace {

// Distinguishing constants folded into cache keys, one per kind, so two
// kinds over the same instance and parameters never collide.
constexpr std::uint64_t kKindSalt[] = {
    0x62756c64ULL,  // build_conflict_graph
    0x67726479ULL,  // greedy_maxis
    0x6c756279ULL,  // luby_mis
    0x6366636fULL,  // cf_color
    0x72656475ULL,  // run_reduction
    0x65786374ULL,  // exact_certificate
    0x6d757461ULL,  // mutate_hypergraph
};

void append_vertex_list(std::ostringstream& os, const char* field,
                        const std::vector<VertexId>& vs) {
  os << ",\"" << field << "\":[";
  for (std::size_t i = 0; i < vs.size(); ++i) os << (i ? "," : "") << vs[i];
  os << ']';
}

/// The shared G_k of the MIS-family kinds, memoized when a graph cache
/// is available (keyed by instance content and k).
std::shared_ptr<const ConflictGraph> conflict_graph_for(
    const Request& req, runtime::Scheduler& sched,
    ConflictGraphCache* cache) {
  const auto build = [&req, &sched] {
    return std::make_shared<const ConflictGraph>(*req.instance, req.k, sched);
  };
  if (cache == nullptr) return build();
  return cache->get_or_build(hash_combine(req.instance_hash, req.k), build);
}

std::ostringstream payload_head(const Request& req) {
  std::ostringstream os;
  os << "{\"kind\":\"" << kind_name(req.kind) << "\",\"instance\":\""
     << hex64(req.instance_hash) << '"';
  return os;
}

std::string execute_build(const Request& req, runtime::Scheduler& sched,
                          ConflictGraphCache* graph_cache) {
  const auto cg_ptr = conflict_graph_for(req, sched, graph_cache);
  const ConflictGraph& cg = *cg_ptr;
  const auto classes = cg.count_edge_classes();
  auto os = payload_head(req);
  os << ",\"k\":" << req.k << ",\"triples\":" << cg.triple_count()
     << ",\"edges\":" << classes.total << ",\"e_vertex\":" << classes.e_vertex
     << ",\"e_edge\":" << classes.e_edge << ",\"e_color\":" << classes.e_color
     << ",\"graph_hash\":\"" << hex64(hash_graph(cg.graph())) << "\"}";
  return os.str();
}

std::string execute_greedy(const Request& req, runtime::Scheduler& sched,
                           ConflictGraphCache* graph_cache) {
  const auto cg_ptr = conflict_graph_for(req, sched, graph_cache);
  const ConflictGraph& cg = *cg_ptr;
  const auto is = greedy_min_degree_maxis(cg.graph(), sched);
  auto os = payload_head(req);
  os << ",\"k\":" << req.k << ",\"is_size\":" << is.size()
     << ",\"upper\":" << cg.independence_upper_bound() << ",\"independent\":"
     << (is_independent_set(cg.graph(), is) ? "true" : "false");
  append_vertex_list(os, "is", is);
  os << '}';
  return os.str();
}

std::string execute_luby(const Request& req, runtime::Scheduler& sched,
                         ConflictGraphCache* graph_cache) {
  const auto cg_ptr = conflict_graph_for(req, sched, graph_cache);
  const ConflictGraph& cg = *cg_ptr;
  const auto luby = luby_mis(cg.graph(), req.seed, 0, sched);
  auto os = payload_head(req);
  os << ",\"k\":" << req.k << ",\"seed\":" << req.seed
     << ",\"is_size\":" << luby.independent_set.size()
     << ",\"rounds\":" << luby.rounds
     << ",\"completed\":" << (luby.completed ? "true" : "false");
  append_vertex_list(os, "is", luby.independent_set);
  os << '}';
  return os.str();
}

std::string execute_cf_color(const Request& req, runtime::Scheduler& sched) {
  const auto res = greedy_cf_coloring(*req.instance, sched);
  auto os = payload_head(req);
  os << ",\"colors_used\":" << res.colors_used << ",\"conflict_free\":"
     << (is_conflict_free(*req.instance, res.coloring) ? "true" : "false")
     << ",\"coloring\":[";
  for (std::size_t v = 0; v < res.coloring.size(); ++v)
    os << (v ? "," : "") << res.coloring[v];
  os << "]}";
  return os.str();
}

std::string execute_reduction(const Request& req, runtime::Scheduler&) {
  std::unique_ptr<MaxISOracle> oracle;
  if (req.solver == "greedy-mindeg")
    oracle = std::make_unique<GreedyMinDegreeOracle>();
  else if (req.solver == "greedy-random")
    oracle = std::make_unique<RandomGreedyOracle>(req.seed);
  else if (req.solver == "luby")
    oracle = std::make_unique<LubyOracle>(req.seed);
  PSL_CHECK_MSG(oracle != nullptr,
                "service: unknown reduction solver '" << req.solver << "'");
  ReductionOptions ropts;
  ropts.k = req.k;
  const auto res = cf_multicoloring_via_maxis(*req.instance, *oracle, ropts);
  auto os = payload_head(req);
  os << ",\"k\":" << req.k << ",\"solver\":\"" << req.solver
     << "\",\"success\":" << (res.success ? "true" : "false")
     << ",\"phases\":" << res.phases << ",\"colors_used\":" << res.colors_used
     << ",\"palette_bound\":" << res.palette_bound << '}';
  return os.str();
}

std::string execute_exact_certificate(const Request& req,
                                      runtime::Scheduler& sched,
                                      ConflictGraphCache* graph_cache) {
  const auto cg_ptr = conflict_graph_for(req, sched, graph_cache);
  const ConflictGraph& cg = *cg_ptr;
  solver::SolverOptions options;
  options.seed = req.seed;
  const auto backend = solver::SolverFactory::instance().make(req.solver);
  const auto res = backend->solve_maxis(cg.graph(), options);
  auto os = payload_head(req);
  os << ",\"k\":" << req.k << ",\"solver\":\"" << req.solver
     << "\",\"seed\":" << req.seed << ",\"is_size\":"
     << res.independent_set.size() << ",\"proven_optimal\":"
     << (res.proven_optimal ? "true" : "false")
     << ",\"upper\":" << cg.independence_upper_bound() << ",\"independent\":"
     << (is_independent_set(cg.graph(), res.independent_set) ? "true"
                                                             : "false")
     << ",\"certificate\":{\"formula_vars\":" << res.formula_vars
     << ",\"formula_clauses\":" << res.formula_clauses
     << ",\"formula_hash\":\"" << hex64(res.formula_hash)
     << "\",\"decisions\":" << res.decisions
     << ",\"propagations\":" << res.propagations
     << ",\"conflicts\":" << res.conflicts
     << ",\"kernel_vertices\":" << res.kernel_vertices
     << ",\"kernel_forced\":" << res.kernel_forced << '}';
  append_vertex_list(os, "is", res.independent_set);
  os << '}';
  return os.str();
}

struct MutateMetrics {
  obs::Counter requests{"mutate.requests"};
  obs::Counter steps{"mutate.steps"};
  obs::Counter session_hits{"mutate.session_hits"};
  obs::Counter resumed_steps{"mutate.resumed_steps"};
  obs::Histogram ball_size{"mutate.repair_ball_size"};
};

const MutateMetrics& mutate_metrics() {
  static MutateMetrics m;
  return m;
}

/// Initial MIS leg of a mutate session.  All three legs are maximal:
/// greedy by construction, Luby on completion (max_rounds = 0 runs to
/// quiescence), exact because a maximum IS is inclusion maximal.
std::vector<VertexId> initial_mutate_mis(const Request& req, const Graph& g,
                                         runtime::Scheduler& sched) {
  std::vector<VertexId> mis;
  if (req.solver == "greedy-mindeg") {
    mis = greedy_min_degree_maxis(g, sched);
  } else if (req.solver == "luby") {
    mis = luby_mis(g, req.seed, 0, sched).independent_set;
  } else {
    solver::SolverOptions options;
    options.seed = req.seed;
    const auto backend = solver::SolverFactory::instance().make(req.solver);
    mis = backend->solve_maxis(g, options).independent_set;
  }
  std::sort(mis.begin(), mis.end());
  return mis;
}

std::string execute_mutate(const Request& req, runtime::Scheduler& sched,
                           MutationSessionStore* sessions) {
  PSL_OBS_SPAN("service.mutate");
  mutate_metrics().requests.add(1);
  const auto invalid = validate_script(*req.instance, req.script);
  PSL_CHECK_MSG(!invalid.has_value(),
                "service: mutate script rejected: " << *invalid << " — "
                                                    << describe(req.script));

  const auto chain = epoch_chain(req.instance_hash, req.script);

  // Resume from the longest stored epoch prefix (pure acceleration: the
  // stored state is what the from-scratch path computes at that prefix).
  std::shared_ptr<const MutationState> stored;
  std::size_t prefix = 0;
  if (sessions != nullptr) {
    for (std::size_t p = chain.size(); p-- > 0;) {
      stored = sessions->lookup(
          session_key(chain[p], req.k, req.solver, req.seed));
      if (stored != nullptr) {
        prefix = p;
        break;
      }
    }
  }

  // cur is what we answer from.  A full-prefix hit serves the stored
  // state in place — zero copies of the graph.  A partial hit copies,
  // but the copy shares every adjacency row with the stored state
  // (DynamicConflictGraph rows are COW) and apply() below reallocates
  // only the rows the remaining script steps actually rewrite.
  MutationState state;
  const MutationState* cur = nullptr;
  if (stored != nullptr) {
    mutate_metrics().session_hits.add(1);
    mutate_metrics().resumed_steps.add(prefix);
    if (prefix == req.script.size()) {
      cur = stored.get();
    } else {
      state = *stored;
    }
  } else {
    state.graph = DynamicConflictGraph(*req.instance, req.k, sched);
    state.mis = initial_mutate_mis(req, state.graph.snapshot(sched), sched);
    state.epoch = chain[0];
  }

  if (cur == nullptr) {
    for (std::size_t i = prefix; i < req.script.size(); ++i) {
      const Mutation& mut = req.script[i];
      const auto delta = state.graph.apply(mut);
      std::size_t dropped = 0;
      const auto survivors = remap_surviving(state.mis, delta.remap, &dropped);
      const auto rep = repair_mis(state.graph, survivors, delta.dirty);
      state.mis = rep.mis;
      state.epoch = chain[i + 1];
      MutationStepStat stat;
      stat.op = describe(mut);
      stat.epoch = state.epoch;
      stat.ball = rep.ball.size();
      stat.changed = dropped + rep.removed.size() + rep.added.size();
      stat.triples = state.graph.triple_count();
      stat.gk_edges = state.graph.gk_edge_count();
      state.history.push_back(std::move(stat));
      mutate_metrics().steps.add(1);
      mutate_metrics().ball_size.record(rep.ball.size(), req.trace_id);
    }
    cur = &state;
  }

  // Self-check against the patched adjacency (no snapshot materialized).
  std::vector<char> member(cur->graph.triple_count(), 0);
  for (const VertexId v : cur->mis) member[v] = 1;
  bool independent = true;
  bool maximal = true;
  for (TripleId t = 0; t < cur->graph.triple_count(); ++t) {
    bool member_neighbor = false;
    for (const TripleId nb : cur->graph.neighbors(t)) {
      if (member[nb] != 0) {
        member_neighbor = true;
        break;
      }
    }
    if (member[t] != 0 && member_neighbor) independent = false;
    if (member[t] == 0 && !member_neighbor) maximal = false;
  }

  auto os = payload_head(req);
  os << ",\"k\":" << req.k << ",\"solver\":\"" << req.solver
     << "\",\"seed\":" << req.seed << ",\"steps\":[";
  for (std::size_t i = 0; i < cur->history.size(); ++i) {
    const MutationStepStat& s = cur->history[i];
    os << (i ? "," : "") << "{\"op\":\"" << s.op << "\",\"epoch\":\""
       << hex64(s.epoch) << "\",\"ball\":" << s.ball
       << ",\"changed\":" << s.changed << ",\"triples\":" << s.triples
       << ",\"gk_edges\":" << s.gk_edges << '}';
  }
  os << "],\"epoch\":\"" << hex64(cur->epoch) << "\",\"content\":\""
     << hex64(cur->graph.content_hash()) << "\",\"gk_hash\":\""
     << hex64(cur->graph.graph_hash())
     << "\",\"n\":" << cur->graph.vertex_count()
     << ",\"m\":" << cur->graph.edge_count()
     << ",\"triples\":" << cur->graph.triple_count()
     << ",\"gk_edges\":" << cur->graph.gk_edge_count()
     << ",\"is_size\":" << cur->mis.size()
     << ",\"independent\":" << (independent ? "true" : "false")
     << ",\"maximal\":" << (maximal ? "true" : "false");
  append_vertex_list(os, "is", cur->mis);
  os << '}';

  // A full-prefix hit is already stored under this exact key; only
  // freshly computed states are (re)inserted.
  if (sessions != nullptr && cur == &state) {
    const std::uint64_t key =
        session_key(state.epoch, req.k, req.solver, req.seed);
    sessions->store(key, std::make_shared<MutationState>(std::move(state)));
  }
  return os.str();
}

}  // namespace

const char* kind_name(RequestKind kind) {
  switch (kind) {
    case RequestKind::kBuildConflictGraph: return "build_conflict_graph";
    case RequestKind::kGreedyMaxis: return "greedy_maxis";
    case RequestKind::kLubyMis: return "luby_mis";
    case RequestKind::kCfColor: return "cf_color";
    case RequestKind::kRunReduction: return "run_reduction";
    case RequestKind::kExactCertificate: return "exact_certificate";
    case RequestKind::kMutateHypergraph: return "mutate_hypergraph";
  }
  return "unknown";
}

RequestKind kind_from_name(const std::string& name) {
  for (const RequestKind kind :
       {RequestKind::kBuildConflictGraph, RequestKind::kGreedyMaxis,
        RequestKind::kLubyMis, RequestKind::kCfColor,
        RequestKind::kRunReduction, RequestKind::kExactCertificate,
        RequestKind::kMutateHypergraph}) {
    if (name == kind_name(kind)) return kind;
  }
  PSL_CHECK_MSG(false, "service: unknown request kind '" << name << "'");
  return RequestKind::kGreedyMaxis;  // unreachable
}

std::uint64_t cache_key(const Request& req) {
  PSL_EXPECTS(req.instance_hash != 0);
  std::uint64_t key = hash_combine(
      kKindSalt[static_cast<std::size_t>(req.kind)], req.instance_hash);
  switch (req.kind) {
    case RequestKind::kCfColor:
      break;  // greedy_cf_coloring takes no parameters
    case RequestKind::kBuildConflictGraph:
    case RequestKind::kGreedyMaxis:
      key = hash_combine(key, req.k);
      break;
    case RequestKind::kLubyMis:
      key = hash_combine(hash_combine(key, req.k), req.seed);
      break;
    case RequestKind::kRunReduction:
    case RequestKind::kExactCertificate:
      key = hash_combine(hash_combine(key, req.k), req.seed);
      key = hash_combine(key, fnv1a64(req.solver));
      break;
    case RequestKind::kMutateHypergraph:
      key = hash_combine(hash_combine(key, req.k), req.seed);
      key = hash_combine(key, fnv1a64(req.solver));
      key = hash_combine(key, fnv1a64(encode_script(req.script)));
      break;
  }
  // 0 is the "no key" sentinel in Response; remap the (vanishingly
  // unlikely) collision.
  return key == 0 ? 1 : key;
}

std::string execute_request(const Request& req, runtime::Scheduler& sched,
                            ConflictGraphCache* graph_cache,
                            MutationSessionStore* sessions) {
  PSL_CHECK_MSG(req.instance != nullptr, "service: request has no instance");
  switch (req.kind) {
    case RequestKind::kBuildConflictGraph:
      return execute_build(req, sched, graph_cache);
    case RequestKind::kGreedyMaxis:
      return execute_greedy(req, sched, graph_cache);
    case RequestKind::kLubyMis: return execute_luby(req, sched, graph_cache);
    case RequestKind::kCfColor: return execute_cf_color(req, sched);
    case RequestKind::kRunReduction: return execute_reduction(req, sched);
    case RequestKind::kExactCertificate:
      return execute_exact_certificate(req, sched, graph_cache);
    case RequestKind::kMutateHypergraph:
      return execute_mutate(req, sched, sessions);
  }
  PSL_CHECK_MSG(false, "service: invalid request kind");
  return {};
}

}  // namespace pslocal::service
