#include "service/stages.hpp"

#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace pslocal::service::stages {

namespace {

constexpr std::size_t kKindCount = 6;  // RequestKind enumerators

// All 7x6 per-kind stage histograms, registered once on first use.
// Registration copies the name, so building it from temporaries is
// fine; the handles themselves are just small ids.
const obs::Histogram& stage_histogram(Stage stage, RequestKind kind) {
  static const std::vector<obs::Histogram>* table = [] {
    auto* t = new std::vector<obs::Histogram>;
    t->reserve(kStageCount * kKindCount);
    for (std::size_t s = 0; s < kStageCount; ++s) {
      for (std::size_t k = 0; k < kKindCount; ++k) {
        const std::string name =
            std::string("service.stage.") + stage_name(static_cast<Stage>(s)) +
            "." + kind_name(static_cast<RequestKind>(k));
        t->emplace_back(name.c_str());
      }
    }
    return t;
  }();
  return (*table)[static_cast<std::size_t>(stage) * kKindCount +
                  static_cast<std::size_t>(kind)];
}

}  // namespace

const char* stage_name(Stage stage) {
  switch (stage) {
    case Stage::kAdmissionWait: return "admission_wait_ns";
    case Stage::kQueueDepth: return "queue_depth";
    case Stage::kCacheProbe: return "cache_probe_ns";
    case Stage::kSolve: return "solve_ns";
    case Stage::kSerialize: return "serialize_ns";
    case Stage::kWireWrite: return "wire_write_ns";
    case Stage::kRtt: return "rtt_ns";
  }
  return "unknown";
}

void record(Stage stage, RequestKind kind, std::uint64_t value,
            std::uint64_t exemplar_trace_id) {
  if constexpr (!obs::kEnabled) return;
  stage_histogram(stage, kind).record(value, exemplar_trace_id);
}

void record_batch_form(std::uint64_t ns) {
  if constexpr (!obs::kEnabled) return;
  static const obs::Histogram hist("service.stage.batch_form_ns");
  hist.record(ns);
}

}  // namespace pslocal::service::stages
