// ServiceEngine — the in-process batched query-serving engine.
//
// Wiring (docs/service.md has the full walkthrough):
//
//   clients --submit--> RequestQueue --pop_batch--> dispatcher thread
//                                         |  form_batches (same cache key)
//                                         |  SolverCache lookup per batch
//                                         |  misses: run_task_batch on the
//                                         |    runtime::Scheduler, one task
//                                         |    per distinct missing key
//                                         '--> fulfill promises (FIFO)
//
// Contract highlights:
//
//  * submit() is non-blocking: it returns an Admission decision and, when
//    accepted, a future that will eventually carry a Response — kOk with
//    the canonical payload, kError if the solver threw, or kRejected
//    (reason "shutdown") if the engine stopped first.  Every accepted
//    request is answered exactly once; no future is ever abandoned.
//
//  * Response payloads are byte-deterministic: for a fixed request
//    content they are identical across runs, thread counts, batch
//    compositions and cache states.  Hit/miss *timing* varies; bytes do
//    not.  This is what --replay-in compares (service/workload.hpp).
//
//  * An engine is constructed stopped.  start() launches the dispatcher;
//    an engine that is never started still admits requests (up to queue
//    capacity — the deterministic admission-probe used by tests) and
//    rejects them with "shutdown" at stop()/destruction.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>

#include "obs/obs.hpp"
#include "qos/fair_queue.hpp"
#include "runtime/global.hpp"
#include "service/batcher.hpp"
#include "service/cache.hpp"
#include "service/queue.hpp"
#include "service/request.hpp"
#include "service/session.hpp"

namespace pslocal::service {

struct EngineConfig {
  std::size_t queue_capacity = 256;
  std::size_t max_batch = 64;  // requests drained per dispatch cycle
  SolverCache::Config cache;   // result cache (enabled by default)
  std::size_t graph_cache_entries = 64;  // built G_k objects (0 = off)
  std::size_t mutation_sessions = 8;     // stored mutate states (0 = off)
  /// Execution backend for solver batches; nullptr = the global pool.
  runtime::Scheduler* scheduler = nullptr;
  /// Identity in traces: the dispatcher thread is labelled
  /// "<name>.dispatcher" (its Perfetto track name), so a multi-engine
  /// process — one engine per shard in LocalCluster — reads cleanly.
  std::string name = "engine";
  /// Multi-tenant QoS (docs/qos.md).  enabled replaces the single
  /// RequestQueue with a qos::FairQueue over `qos.tenants`; off keeps
  /// the pre-QoS admission path bit-for-bit.
  qos::QosConfig qos;
};

class ServiceEngine {
 public:
  explicit ServiceEngine(EngineConfig config = {});
  ~ServiceEngine();

  ServiceEngine(const ServiceEngine&) = delete;
  ServiceEngine& operator=(const ServiceEngine&) = delete;

  /// Launch the dispatcher thread (idempotent; no-op after stop()).
  void start();

  /// What happens to already-admitted, not-yet-served requests at stop.
  enum class StopMode : std::uint8_t {
    /// Graceful drain: the dispatcher keeps serving until the queue is
    /// empty, so every admitted request gets its real answer (kOk or
    /// kError).  Only requests the dispatcher never saw (engine not
    /// started) are rejected with "shutdown".
    kDrain,
    /// Fast shutdown: queued-but-undispatched requests are answered
    /// kRejected("shutdown") instead of being served.  Requests whose
    /// batch is already executing still complete normally.
    kReject,
  };

  /// Stop admitting and shut the dispatcher down under `mode` (default:
  /// graceful drain — the pinned contract is that stop() never discards
  /// an admitted request's answer).  Every admitted request is answered
  /// exactly once under either mode.  Idempotent; the destructor calls
  /// stop(kDrain).
  void stop(StopMode mode = StopMode::kDrain);

  struct Submitted {
    Admission admission = Admission::kShutdown;
    /// Valid only when admission == kAccepted.
    std::future<Response> response;
    /// Deterministic backoff hint when admission == kShed (rides the
    /// kShedRetryAfter NACK); 0 otherwise.
    std::uint64_t retry_after_us = 0;
  };

  /// Non-blocking submission.  Fills request.instance_hash from the
  /// instance content when the caller left it 0.
  [[nodiscard]] Submitted submit(Request request);

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t accepted = 0;
    std::uint64_t rejected_full = 0;
    /// Shutdown rejections: refused at submit() plus queued requests
    /// answered kRejected("shutdown") when the engine stopped.
    std::uint64_t rejected_shutdown = 0;
    /// QoS load sheds: over-budget at admission plus past-deadline at
    /// dispatch (the latter also counted in shed_deadline).
    std::uint64_t shed = 0;
    std::uint64_t shed_deadline = 0;
    std::uint64_t served = 0;        // responses fulfilled (kOk or kError)
    std::uint64_t served_cached = 0; // of which cache_hit (cache or batch)
    std::uint64_t errors = 0;
    std::uint64_t batches = 0;       // distinct-key groups executed
    std::uint64_t dispatch_cycles = 0;
    std::size_t queue_capacity = 0;  // admission bound (self-describing
                                     // overload scrapes)
    SolverCache::Stats cache;
    ConflictGraphCache::Stats graph_cache;
    MutationSessionStore::Stats sessions;
    bool qos_enabled = false;
    std::vector<qos::FairQueue::TenantSnapshot> qos_tenants;
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] std::size_t queue_depth() const { return queue_->depth(); }
  [[nodiscard]] const EngineConfig& config() const { return config_; }

 private:
  void dispatcher_main();
  void serve_cycle(std::vector<Pending>& drained);
  void shed_expired(std::vector<Pending>& drained);
  void reject_all(std::vector<Pending>& pendings, const char* reason);

  EngineConfig config_;
  runtime::Scheduler* sched_;  // never null after construction
  std::unique_ptr<AdmissionQueue> queue_;
  /// Non-owning view of *queue_ when config_.qos.enabled (per-tenant
  /// stats + deadline-shed reporting); nullptr otherwise.
  qos::FairQueue* fair_queue_ = nullptr;
  /// Per-tenant "qos.latency_ns.<tenant>" histograms (exemplar-tagged
  /// with the request trace id), indexed like the tenant registry.
  std::vector<obs::Histogram> tenant_latency_;
  SolverCache cache_;
  ConflictGraphCache graph_cache_;
  MutationSessionStore sessions_;
  std::thread dispatcher_;
  bool started_ = false;  // guarded by lifecycle_mu_
  bool stopped_ = false;
  std::mutex lifecycle_mu_;
  /// StopMode::kReject was requested: the dispatcher rejects drained
  /// batches instead of serving them.
  std::atomic<bool> reject_drained_{false};

  // Dispatcher-side tallies (written by one thread, read via stats()).
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_full_{0};
  std::atomic<std::uint64_t> rejected_shutdown_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> shed_deadline_{0};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> served_cached_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> dispatch_cycles_{0};
};

/// Canonical single-line JSON of an engine stats snapshot (stable key
/// order, integers only — safe to cmp across runs).  The shard tier
/// reports one of these per backend engine, which is how per-shard
/// serving and cache behavior shows up in BENCH_shard.json.
[[nodiscard]] std::string stats_json(const ServiceEngine::Stats& stats);

}  // namespace pslocal::service
