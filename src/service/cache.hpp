// Memoizing solver caches of the serving engine.
//
// Two layers, both LRU and both thread-safe behind a mutex (the serving
// hot path is the solvers, not the cache bookkeeping):
//
//  * SolverCache — the content-addressed *result* cache: cache_key(req)
//    -> canonical response payload bytes.  A hit returns the stored
//    string byte-for-byte; since payloads are deterministic (see
//    service/request.hpp), a hit is indistinguishable from a fresh
//    compute except in latency — which is exactly what lets a cached
//    serving run replay byte-identically against an uncached one.
//
//  * ConflictGraphCache — the *object* cache for built conflict graphs,
//    keyed by (instance hash, k).  greedy_maxis and luby_mis requests on
//    the same instance share one G_k build even though their result
//    cache lines differ; on a busy trace this removes the dominant cost
//    of every MIS-family miss.  Concurrent misses on one key may build
//    twice (builds are deterministic, so both results are identical and
//    either may be kept); the stats count builds so tests can bound the
//    duplication.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace pslocal {
class ConflictGraph;
}

namespace pslocal::service {

class SolverCache {
 public:
  struct Config {
    std::size_t max_entries = 512;  // LRU capacity (0 = unbounded)
    bool enabled = true;            // false: every lookup misses, no stores
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
    std::size_t bytes = 0;  // payload bytes currently resident
  };

  SolverCache();  // default Config (512-entry LRU, enabled)
  explicit SolverCache(Config config);

  /// Hit: returns the payload and refreshes recency.  Miss (or disabled):
  /// nullopt.  Hit/miss totals are deterministic for a fixed sequence of
  /// lookup/insert calls.
  [[nodiscard]] std::optional<std::string> lookup(std::uint64_t key);

  /// Store a payload (no-op when disabled; refreshes recency when the key
  /// is already resident — idempotent against duplicate computes).
  void insert(std::uint64_t key, const std::string& payload);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] bool enabled() const { return config_.enabled; }

 private:
  using LruList = std::list<std::pair<std::uint64_t, std::string>>;

  void evict_locked();

  Config config_;
  mutable std::mutex mu_;
  Stats stats_;
  LruList lru_;  // front = most recently used
  std::unordered_map<std::uint64_t, LruList::iterator> index_;
};

class ConflictGraphCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t builds = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
  };

  /// max_entries = 0 disables caching (every call builds).
  explicit ConflictGraphCache(std::size_t max_entries);

  /// Return the cached graph for `key`, or invoke `build` (outside the
  /// lock) and cache its result.
  template <typename BuildFn>
  [[nodiscard]] std::shared_ptr<const ConflictGraph> get_or_build(
      std::uint64_t key, BuildFn&& build) {
    if (auto cached = find(key)) return cached;
    std::shared_ptr<const ConflictGraph> built = build();
    return store(key, std::move(built));
  }

  [[nodiscard]] Stats stats() const;

 private:
  using LruList =
      std::list<std::pair<std::uint64_t, std::shared_ptr<const ConflictGraph>>>;

  [[nodiscard]] std::shared_ptr<const ConflictGraph> find(std::uint64_t key);
  [[nodiscard]] std::shared_ptr<const ConflictGraph> store(
      std::uint64_t key, std::shared_ptr<const ConflictGraph> graph);

  std::size_t max_entries_;
  mutable std::mutex mu_;
  Stats stats_;
  LruList lru_;
  std::unordered_map<std::uint64_t, LruList::iterator> index_;
};

}  // namespace pslocal::service
