// Typed request/response API of the serving engine (src/service/).
//
// A Request names one of the repository's core workloads over one
// hypergraph instance; a Response carries the solver's structured result
// as a *canonical* JSON payload plus per-request timing.  The payload is
// deterministic: for a fixed request content it is byte-identical across
// runs, thread counts and cache hits (the library's solvers are
// bit-deterministic and the serializer below is order-fixed), which is
// what makes replay files (service/workload.hpp) comparable byte-for-byte.
//
// Requests are content-addressed: cache_key() folds the canonical
// instance hash (util/hash.hpp) with the workload kind and exactly the
// parameters that kind consumes — a greedy_maxis request with a different
// seed still hits the same cache line, a luby_mis request does not.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hypergraph/hypergraph.hpp"
#include "hypergraph/mutation.hpp"
#include "runtime/scheduler.hpp"

namespace pslocal::service {

/// The serveable workloads.  Each maps to one library entry point; see
/// execute_request (service/engine.hpp) for the exact dispatch.
enum class RequestKind : std::uint8_t {
  kBuildConflictGraph,  // ConflictGraph(h, k): size + edge-class census
  kGreedyMaxis,         // min-degree greedy MaxIS on G_k
  kLubyMis,             // Luby MIS on G_k (seeded)
  kCfColor,             // direct greedy CF coloring of h
  kRunReduction,        // Theorem 1.1 reduction with a named oracle
  kExactCertificate,    // exact MaxIS on G_k + certificate (src/solver/)
  kMutateHypergraph,    // apply a mutation script + MIS repair per step
};

/// Stable wire name ("build_conflict_graph", "greedy_maxis", ...).
[[nodiscard]] const char* kind_name(RequestKind kind);

/// Inverse of kind_name; PSL_CHECKs on unknown names.
[[nodiscard]] RequestKind kind_from_name(const std::string& name);

struct Request {
  std::uint64_t id = 0;  // caller-assigned; echoed in the Response
  RequestKind kind = RequestKind::kGreedyMaxis;

  /// The instance, shared so a trace of 10k requests over a pool of a few
  /// dozen instances stores each hypergraph once.
  std::shared_ptr<const Hypergraph> instance;

  /// hash_hypergraph(*instance); 0 = compute at submit time.  Traces
  /// precompute it once per pooled instance.
  std::uint64_t instance_hash = 0;

  std::size_t k = 4;            // palette size (all kinds except kCfColor)
  std::uint64_t seed = 1;       // kLubyMis, reduction oracles, solver seed
  std::string solver = "greedy-mindeg";  // kRunReduction oracle:
                                         // greedy-mindeg|greedy-random|luby;
                                         // kExactCertificate: a registered
                                         // SolverFactory backend ("dpll");
                                         // kMutateHypergraph: initial-MIS
                                         // leg (greedy-mindeg|luby|backend)

  /// kMutateHypergraph only: the mutation script applied to `instance`
  /// (canonical wire form: encode_script, hypergraph/mutation.hpp).
  std::vector<Mutation> script;

  // Distributed-trace coordinates (docs/tracing.md), carried in the wire
  // frame header — NEVER part of cache_key() or the canonical payload,
  // so replay bytes stay identical with tracing on or off.  0 = untraced.
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;

  /// QoS tenant id (docs/qos.md), carried in the wire frame header like
  /// the trace words — NEVER part of cache_key() or the canonical
  /// payload, so a tenant-tagged request serves the identical bytes as
  /// an untagged one.  Empty = the default tenant.
  std::string tenant;
};

/// Content-addressed cache key (see header comment).  Requires a
/// non-zero instance_hash.
[[nodiscard]] std::uint64_t cache_key(const Request& req);

struct Response {
  enum class Status : std::uint8_t {
    kOk,        // result holds the canonical payload
    kRejected,  // admission control or shutdown; reason says which
    kError,     // the solver threw; reason holds the message
  };

  std::uint64_t id = 0;
  Status status = Status::kOk;
  std::string reason;      // empty when kOk
  std::uint64_t key = 0;   // cache key served (0 when rejected)
  bool cache_hit = false;  // served from cache / batch memoization
  std::string result;      // canonical JSON payload (empty unless kOk)

  // Timing (never part of the canonical payload; excluded from replay).
  std::uint64_t queue_ns = 0;    // submit -> batch dispatch
  std::uint64_t compute_ns = 0;  // solver execution (0 on a cache hit)
  std::uint64_t total_ns = 0;    // submit -> response ready

  /// QoS backoff hint for kRejected("shed") responses, server-local:
  /// the net tier converts such a response into a kShedRetryAfter NACK
  /// carrying this hint; it never rides encode_response.
  std::uint64_t retry_after_us = 0;
};

class ConflictGraphCache;
class MutationSessionStore;

/// Execute one request synchronously on `sched` and return the canonical
/// JSON payload.  Throws (ContractViolation) on malformed requests — the
/// engine converts that into Status::kError.  This is the single point
/// where requests meet the library's solvers; the engine adds queueing,
/// batching and caching around it.  When `graph_cache` is non-null, the
/// MIS-family kinds share built conflict graphs through it; when
/// `sessions` is non-null, mutate_hypergraph requests resume from stored
/// epoch prefixes through it.  Both are pure accelerations: the payload
/// is identical with or without them.
[[nodiscard]] std::string execute_request(
    const Request& req, runtime::Scheduler& sched,
    ConflictGraphCache* graph_cache = nullptr,
    MutationSessionStore* sessions = nullptr);

}  // namespace pslocal::service
