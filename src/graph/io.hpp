// Plain-text graph serialization (edge-list format):
//   line 1: "n m"
//   next m lines: "u v" with 0 <= u < v < n
// Used by examples to persist/reload workloads.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace pslocal {

void write_edge_list(std::ostream& os, const Graph& g);
Graph read_edge_list(std::istream& is);

void save_graph(const std::string& path, const Graph& g);
Graph load_graph(const std::string& path);

}  // namespace pslocal
