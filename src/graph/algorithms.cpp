#include "graph/algorithms.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

namespace pslocal {

std::vector<std::size_t> bfs_distances(const Graph& g, VertexId source,
                                       std::size_t max_dist) {
  return bfs_distances_multi(g, {source}, max_dist);
}

std::vector<std::size_t> bfs_distances_multi(const Graph& g,
                                             const std::vector<VertexId>& sources,
                                             std::size_t max_dist) {
  std::vector<std::size_t> dist(g.vertex_count(), kUnreachable);
  std::deque<VertexId> queue;
  for (VertexId s : sources) {
    PSL_EXPECTS(s < g.vertex_count());
    if (dist[s] == kUnreachable) {
      dist[s] = 0;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    const VertexId v = queue.front();
    queue.pop_front();
    if (dist[v] >= max_dist) continue;
    for (VertexId w : g.neighbors(v)) {
      if (dist[w] == kUnreachable) {
        dist[w] = dist[v] + 1;
        queue.push_back(w);
      }
    }
  }
  return dist;
}

std::vector<VertexId> ball(const Graph& g, VertexId center, std::size_t r) {
  PSL_EXPECTS(center < g.vertex_count());
  std::vector<std::size_t> dist(g.vertex_count(), kUnreachable);
  std::vector<VertexId> order;
  std::deque<VertexId> queue;
  dist[center] = 0;
  queue.push_back(center);
  order.push_back(center);
  while (!queue.empty()) {
    const VertexId v = queue.front();
    queue.pop_front();
    if (dist[v] >= r) continue;
    for (VertexId w : g.neighbors(v)) {
      if (dist[w] == kUnreachable) {
        dist[w] = dist[v] + 1;
        queue.push_back(w);
        order.push_back(w);
      }
    }
  }
  return order;
}

InducedSubgraph induced_subgraph(const Graph& g,
                                 const std::vector<VertexId>& vertices) {
  InducedSubgraph out;
  out.to_local.assign(g.vertex_count(), InducedSubgraph::kNoVertex);
  out.to_original = vertices;
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    const VertexId v = vertices[i];
    PSL_EXPECTS(v < g.vertex_count());
    PSL_EXPECTS_MSG(out.to_local[v] == InducedSubgraph::kNoVertex,
                    "duplicate vertex " << v << " in subgraph selection");
    out.to_local[v] = static_cast<VertexId>(i);
  }
  GraphBuilder b(vertices.size());
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    for (VertexId w : g.neighbors(vertices[i])) {
      const VertexId lw = out.to_local[w];
      if (lw != InducedSubgraph::kNoVertex && lw > i)
        b.add_edge(static_cast<VertexId>(i), lw);
    }
  }
  out.graph = b.build();
  return out;
}

Components connected_components(const Graph& g) {
  Components c;
  c.component_of.assign(g.vertex_count(), kUnreachable);
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    if (c.component_of[v] != kUnreachable) continue;
    const std::size_t id = c.count++;
    std::deque<VertexId> queue{v};
    c.component_of[v] = id;
    while (!queue.empty()) {
      const VertexId u = queue.front();
      queue.pop_front();
      for (VertexId w : g.neighbors(u)) {
        if (c.component_of[w] == kUnreachable) {
          c.component_of[w] = id;
          queue.push_back(w);
        }
      }
    }
  }
  return c;
}

std::size_t diameter(const Graph& g) {
  std::size_t diam = 0;
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    const auto dist = bfs_distances(g, v);
    for (auto d : dist) {
      if (d == kUnreachable) return kUnreachable;
      diam = std::max(diam, d);
    }
  }
  return diam;
}

DegeneracyResult degeneracy_order(const Graph& g) {
  const std::size_t n = g.vertex_count();
  DegeneracyResult res;
  res.order.reserve(n);

  std::vector<std::size_t> deg(n);
  std::size_t max_deg = 0;
  for (VertexId v = 0; v < n; ++v) {
    deg[v] = g.degree(v);
    max_deg = std::max(max_deg, deg[v]);
  }
  // Matula–Beck bucket queue with lazy deletion: stale entries (whose
  // recorded degree no longer matches) are skipped on pop.  After popping a
  // vertex of degree d, the minimum degree can only have dropped to d-1, so
  // the cursor backs up by at most one per neighbor update — O(n + m) total.
  std::vector<std::vector<VertexId>> buckets(max_deg + 1);
  for (VertexId v = 0; v < n; ++v) buckets[deg[v]].push_back(v);
  std::vector<bool> removed(n, false);
  std::size_t cursor = 0;
  for (std::size_t step = 0; step < n; ++step) {
    VertexId v = InducedSubgraph::kNoVertex;
    while (v == InducedSubgraph::kNoVertex) {
      while (cursor <= max_deg && buckets[cursor].empty()) ++cursor;
      PSL_CHECK(cursor <= max_deg);
      const VertexId cand = buckets[cursor].back();
      buckets[cursor].pop_back();
      if (!removed[cand] && deg[cand] == cursor) v = cand;
    }
    removed[v] = true;
    res.order.push_back(v);
    res.degeneracy = std::max(res.degeneracy, deg[v]);
    for (VertexId w : g.neighbors(v)) {
      if (!removed[w]) {
        --deg[w];
        buckets[deg[w]].push_back(w);
        if (deg[w] < cursor) cursor = deg[w];
      }
    }
  }
  return res;
}

std::vector<std::size_t> greedy_coloring(const Graph& g,
                                         const std::vector<VertexId>& order) {
  PSL_EXPECTS(is_vertex_permutation(g, order));
  constexpr std::size_t kUncolored = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> color(g.vertex_count(), kUncolored);
  std::vector<bool> used;
  for (VertexId v : order) {
    used.assign(g.degree(v) + 1, false);
    for (VertexId w : g.neighbors(v)) {
      if (color[w] != kUncolored && color[w] < used.size())
        used[color[w]] = true;
    }
    std::size_t c = 0;
    while (c < used.size() && used[c]) ++c;
    color[v] = c;
  }
  return color;
}

CliqueCover greedy_clique_cover(const Graph& g) {
  // Greedily grow cliques: scan vertices by descending degree; each
  // unassigned vertex starts a clique and absorbs unassigned common
  // neighbors.
  const std::size_t n = g.vertex_count();
  CliqueCover cover;
  cover.clique_of.assign(n, kUnreachable);
  std::vector<VertexId> by_degree(n);
  std::iota(by_degree.begin(), by_degree.end(), VertexId{0});
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&](VertexId a, VertexId b) {
                     return g.degree(a) > g.degree(b);
                   });
  std::vector<VertexId> clique;
  for (VertexId v : by_degree) {
    if (cover.clique_of[v] != kUnreachable) continue;
    const std::size_t id = cover.count++;
    cover.clique_of[v] = id;
    clique.assign(1, v);
    for (VertexId w : g.neighbors(v)) {
      if (cover.clique_of[w] != kUnreachable) continue;
      const bool adjacent_to_all =
          std::all_of(clique.begin(), clique.end(), [&](VertexId c) {
            return g.has_edge(w, c);
          });
      if (adjacent_to_all) {
        cover.clique_of[w] = id;
        clique.push_back(w);
      }
    }
  }
  return cover;
}

Graph power_graph(const Graph& g, std::size_t t) {
  PSL_EXPECTS(t >= 1);
  GraphBuilder b(g.vertex_count());
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    const auto dist = bfs_distances(g, v, t);
    for (VertexId w = v + 1; w < g.vertex_count(); ++w)
      if (dist[w] != kUnreachable && dist[w] <= t) b.add_edge(v, w);
  }
  return b.build();
}

bool is_vertex_permutation(const Graph& g,
                           const std::vector<VertexId>& order) {
  if (order.size() != g.vertex_count()) return false;
  std::vector<bool> seen(g.vertex_count(), false);
  for (VertexId v : order) {
    if (v >= g.vertex_count() || seen[v]) return false;
    seen[v] = true;
  }
  return true;
}

}  // namespace pslocal
