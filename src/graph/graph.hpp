// Immutable simple undirected graph in CSR (compressed sparse row) form.
//
// All algorithms in the library take `const Graph&`.  Mutation happens only
// through GraphBuilder; this keeps phase-based algorithms (the Theorem 1.1
// reduction re-derives graphs every phase) free of aliasing surprises.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace pslocal {

namespace runtime {
class Scheduler;
}

using VertexId = std::uint32_t;

class GraphBuilder;

/// Canonical one-word edge encoding used by the parallel construction
/// paths: (min(u,v) << 32) | max(u,v).  Packed edges sort exactly like
/// the (u, v) pairs GraphBuilder sorts, which is what keeps the parallel
/// and sequential builds bit-identical.
inline std::uint64_t pack_edge(VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

class Graph {
 public:
  /// The empty graph.
  Graph() = default;

  /// Build from an explicit edge list (duplicates and self-loops rejected
  /// unless `dedup` is set, in which case they are silently dropped).
  static Graph from_edges(std::size_t n,
                          const std::vector<std::pair<VertexId, VertexId>>& edges,
                          bool dedup = false);

  /// Build from pack_edge-encoded edges in any order, duplicates allowed
  /// (self-loops are not).  The dominant cost — sorting — runs on the
  /// given scheduler; the result is bit-identical to GraphBuilder::build
  /// on the same edge multiset at every thread count.  Consumes `packed`.
  static Graph from_packed_edges(std::size_t n,
                                 std::vector<std::uint64_t>&& packed,
                                 runtime::Scheduler& sched);

  [[nodiscard]] std::size_t vertex_count() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  [[nodiscard]] std::size_t edge_count() const { return neighbors_.size() / 2; }

  /// Sorted neighbor list of v.
  [[nodiscard]] std::span<const VertexId> neighbors(VertexId v) const {
    PSL_EXPECTS(v < vertex_count());
    return {neighbors_.data() + offsets_[v],
            neighbors_.data() + offsets_[v + 1]};
  }

  [[nodiscard]] std::size_t degree(VertexId v) const {
    PSL_EXPECTS(v < vertex_count());
    return offsets_[v + 1] - offsets_[v];
  }

  [[nodiscard]] std::size_t max_degree() const;
  [[nodiscard]] double average_degree() const;

  /// O(log deg) membership test on the sorted adjacency list.
  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const;

  /// All edges as (u, v) with u < v, ascending.
  [[nodiscard]] std::vector<std::pair<VertexId, VertexId>> edges() const;

  [[nodiscard]] bool operator==(const Graph& other) const = default;

 private:
  friend class GraphBuilder;

  std::vector<std::size_t> offsets_{0};
  std::vector<VertexId> neighbors_;
};

/// Incremental graph construction; deduplicates edges and drops self-loops.
class GraphBuilder {
 public:
  explicit GraphBuilder(std::size_t n) : n_(n) {}

  /// Add undirected edge {u, v}.  Self-loops are ignored; duplicates are
  /// deduplicated at build() time.
  void add_edge(VertexId u, VertexId v);

  [[nodiscard]] std::size_t vertex_count() const { return n_; }
  [[nodiscard]] std::size_t pending_edge_count() const { return edges_.size(); }

  /// Finalize into an immutable Graph.  The builder is left empty.
  [[nodiscard]] Graph build();

 private:
  std::size_t n_;
  std::vector<std::pair<VertexId, VertexId>> edges_;
};

}  // namespace pslocal
