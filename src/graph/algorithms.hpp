// Classical graph algorithms used as substrates throughout the library:
// traversal, ball extraction (the SLOCAL engine's r-hop views), induced
// subgraphs, components, degeneracy orders, greedy coloring and greedy
// clique cover (the exact-MaxIS upper bound).
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "graph/graph.hpp"

namespace pslocal {

/// Distance marker for unreachable vertices.
inline constexpr std::size_t kUnreachable = std::numeric_limits<std::size_t>::max();

/// Hop distances from `source`; vertices further than `max_dist` (if given)
/// are left at kUnreachable.
std::vector<std::size_t> bfs_distances(const Graph& g, VertexId source,
                                       std::size_t max_dist = kUnreachable);

/// Multi-source BFS: distance to the nearest source.
std::vector<std::size_t> bfs_distances_multi(const Graph& g,
                                             const std::vector<VertexId>& sources,
                                             std::size_t max_dist = kUnreachable);

/// Vertices within hop distance <= r of `center` (including the center),
/// in BFS order.
std::vector<VertexId> ball(const Graph& g, VertexId center, std::size_t r);

/// Result of induced-subgraph extraction: the subgraph plus both direction
/// index maps.  `to_local[orig] == kNoVertex` for vertices outside.
struct InducedSubgraph {
  static constexpr VertexId kNoVertex = std::numeric_limits<VertexId>::max();
  Graph graph;
  std::vector<VertexId> to_original;  // local id -> original id
  std::vector<VertexId> to_local;     // original id -> local id or kNoVertex
};

/// Subgraph induced by `vertices` (must be distinct and in range).
InducedSubgraph induced_subgraph(const Graph& g,
                                 const std::vector<VertexId>& vertices);

/// Component id per vertex (0-based, contiguous) and the component count.
struct Components {
  std::vector<std::size_t> component_of;
  std::size_t count = 0;
};
Components connected_components(const Graph& g);

/// Eccentricity-based diameter of a (small) graph; kUnreachable if
/// disconnected.
std::size_t diameter(const Graph& g);

/// Degeneracy ordering (repeatedly remove a minimum-degree vertex).
/// Returns the order and the degeneracy (max degree at removal time).
struct DegeneracyResult {
  std::vector<VertexId> order;
  std::size_t degeneracy = 0;
};
DegeneracyResult degeneracy_order(const Graph& g);

/// Greedy proper coloring along `order`; colors are 0-based.
/// Uses at most degeneracy(g)+1 colors on a reverse degeneracy order.
std::vector<std::size_t> greedy_coloring(const Graph& g,
                                         const std::vector<VertexId>& order);

/// Greedy partition of V into cliques (each class is a clique in g).
/// The number of classes upper-bounds nothing by itself, but restricted to
/// a vertex subset it upper-bounds the independence number of that subset;
/// exact MaxIS uses it as a bound.  Returns clique id per vertex.
struct CliqueCover {
  std::vector<std::size_t> clique_of;
  std::size_t count = 0;
};
CliqueCover greedy_clique_cover(const Graph& g);

/// Check that `order` is a permutation of V(g).
bool is_vertex_permutation(const Graph& g, const std::vector<VertexId>& order);

/// The t-th power graph G^t: u ~ v iff 0 < dist_G(u, v) <= t.
/// (G^1 == G.)  Used by the SLOCAL->LOCAL compiler, which needs a network
/// decomposition of G^{2r+1} so that same-color clusters are more than 2r
/// apart in G.
Graph power_graph(const Graph& g, std::size_t t);

}  // namespace pslocal
