#include "graph/io.hpp"

#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace pslocal {

void write_edge_list(std::ostream& os, const Graph& g) {
  os << g.vertex_count() << ' ' << g.edge_count() << '\n';
  for (auto [u, v] : g.edges()) os << u << ' ' << v << '\n';
}

Graph read_edge_list(std::istream& is) {
  std::size_t n = 0, m = 0;
  PSL_CHECK_MSG(static_cast<bool>(is >> n >> m), "bad edge-list header");
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    VertexId u = 0, v = 0;
    PSL_CHECK_MSG(static_cast<bool>(is >> u >> v),
                  "bad edge at line " << (i + 2));
    edges.emplace_back(u, v);
  }
  return Graph::from_edges(n, edges);
}

void save_graph(const std::string& path, const Graph& g) {
  std::ofstream f(path);
  PSL_CHECK_MSG(f.good(), "cannot open " << path << " for writing");
  write_edge_list(f, g);
}

Graph load_graph(const std::string& path) {
  std::ifstream f(path);
  PSL_CHECK_MSG(f.good(), "cannot open " << path << " for reading");
  return read_edge_list(f);
}

}  // namespace pslocal
