#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>

namespace pslocal {

Graph gnp(std::size_t n, double p, Rng& rng) {
  PSL_EXPECTS(p >= 0.0 && p <= 1.0);
  GraphBuilder b(n);
  if (p <= 0.0 || n < 2) return b.build();
  if (p >= 1.0) return complete(n);
  // Skip-sampling (Batagelj–Brandes): geometric jumps over absent edges.
  const double log1mp = std::log1p(-p);
  std::size_t v = 1, w = static_cast<std::size_t>(-1);
  while (v < n) {
    const double r = rng.next_double();
    w += 1 + static_cast<std::size_t>(std::floor(std::log1p(-r) / log1mp));
    while (w >= v && v < n) {
      w -= v;
      ++v;
    }
    if (v < n)
      b.add_edge(static_cast<VertexId>(v), static_cast<VertexId>(w));
  }
  return b.build();
}

Graph ring(std::size_t n) {
  PSL_EXPECTS(n >= 3);
  GraphBuilder b(n);
  for (std::size_t i = 0; i < n; ++i)
    b.add_edge(static_cast<VertexId>(i), static_cast<VertexId>((i + 1) % n));
  return b.build();
}

Graph path(std::size_t n) {
  GraphBuilder b(n);
  for (std::size_t i = 0; i + 1 < n; ++i)
    b.add_edge(static_cast<VertexId>(i), static_cast<VertexId>(i + 1));
  return b.build();
}

Graph grid(std::size_t w, std::size_t h) {
  GraphBuilder b(w * h);
  auto id = [w](std::size_t x, std::size_t y) {
    return static_cast<VertexId>(y * w + x);
  };
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      if (x + 1 < w) b.add_edge(id(x, y), id(x + 1, y));
      if (y + 1 < h) b.add_edge(id(x, y), id(x, y + 1));
    }
  }
  return b.build();
}

Graph complete(std::size_t n) {
  GraphBuilder b(n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      b.add_edge(static_cast<VertexId>(i), static_cast<VertexId>(j));
  return b.build();
}

Graph complete_bipartite(std::size_t a, std::size_t b_size) {
  GraphBuilder b(a + b_size);
  for (std::size_t i = 0; i < a; ++i)
    for (std::size_t j = 0; j < b_size; ++j)
      b.add_edge(static_cast<VertexId>(i), static_cast<VertexId>(a + j));
  return b.build();
}

Graph disjoint_cliques(const std::vector<std::size_t>& sizes) {
  std::size_t n = 0;
  for (auto s : sizes) {
    PSL_EXPECTS(s >= 1);
    n += s;
  }
  GraphBuilder b(n);
  std::size_t base = 0;
  for (auto s : sizes) {
    for (std::size_t i = 0; i < s; ++i)
      for (std::size_t j = i + 1; j < s; ++j)
        b.add_edge(static_cast<VertexId>(base + i),
                   static_cast<VertexId>(base + j));
    base += s;
  }
  return b.build();
}

Graph random_near_regular(std::size_t n, std::size_t d, Rng& rng) {
  PSL_EXPECTS(d < n);
  GraphBuilder b(n);
  for (std::size_t round = 0; round < d; ++round) {
    auto perm = rng.permutation(n);
    for (std::size_t i = 0; i + 1 < n; i += 2)
      b.add_edge(static_cast<VertexId>(perm[i]),
                 static_cast<VertexId>(perm[i + 1]));
  }
  return b.build();
}

Graph power_law(std::size_t n, double beta, double avg_deg, Rng& rng) {
  PSL_EXPECTS(beta > 1.0);
  PSL_EXPECTS(avg_deg > 0.0);
  std::vector<double> w(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = std::pow(static_cast<double>(i + 1), -1.0 / (beta - 1.0));
    total += w[i];
  }
  const double scale = avg_deg * static_cast<double>(n) / total;
  for (auto& wi : w) wi *= scale;
  const double s = avg_deg * static_cast<double>(n);
  GraphBuilder b(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double p = std::min(1.0, w[i] * w[j] / s);
      if (p > 0 && rng.next_bool(p))
        b.add_edge(static_cast<VertexId>(i), static_cast<VertexId>(j));
    }
  }
  return b.build();
}

Graph random_tree(std::size_t n, Rng& rng) {
  GraphBuilder b(n);
  for (std::size_t i = 1; i < n; ++i) {
    const auto parent = static_cast<VertexId>(rng.next_below(i));
    b.add_edge(static_cast<VertexId>(i), parent);
  }
  return b.build();
}

Graph hypercube(std::size_t d) {
  PSL_EXPECTS(d <= 20);
  const std::size_t n = std::size_t{1} << d;
  GraphBuilder b(n);
  for (std::size_t v = 0; v < n; ++v)
    for (std::size_t bit = 0; bit < d; ++bit) {
      const std::size_t w = v ^ (std::size_t{1} << bit);
      if (v < w)
        b.add_edge(static_cast<VertexId>(v), static_cast<VertexId>(w));
    }
  return b.build();
}

Graph caterpillar(std::size_t spine, std::size_t legs) {
  PSL_EXPECTS(spine >= 1);
  GraphBuilder b(spine * (1 + legs));
  for (std::size_t i = 0; i + 1 < spine; ++i)
    b.add_edge(static_cast<VertexId>(i), static_cast<VertexId>(i + 1));
  for (std::size_t i = 0; i < spine; ++i)
    for (std::size_t l = 0; l < legs; ++l)
      b.add_edge(static_cast<VertexId>(i),
                 static_cast<VertexId>(spine + i * legs + l));
  return b.build();
}

Graph random_bipartite(std::size_t a, std::size_t b_size, double p,
                       Rng& rng) {
  PSL_EXPECTS(p >= 0.0 && p <= 1.0);
  GraphBuilder b(a + b_size);
  for (std::size_t i = 0; i < a; ++i)
    for (std::size_t j = 0; j < b_size; ++j)
      if (rng.next_bool(p))
        b.add_edge(static_cast<VertexId>(i), static_cast<VertexId>(a + j));
  return b.build();
}

}  // namespace pslocal
