#include "graph/graph.hpp"

#include <algorithm>

#include "runtime/parallel.hpp"

namespace pslocal {

Graph Graph::from_packed_edges(std::size_t n,
                               std::vector<std::uint64_t>&& packed,
                               runtime::Scheduler& sched) {
  runtime::parallel_sort(sched, packed);
  packed.erase(std::unique(packed.begin(), packed.end()), packed.end());

  Graph g;
  g.offsets_.assign(n + 1, 0);
  for (const std::uint64_t pe : packed) {
    const auto u = static_cast<VertexId>(pe >> 32);
    const auto v = static_cast<VertexId>(pe & 0xffffffffULL);
    PSL_EXPECTS_MSG(u < v && v < n,
                    "packed edge {" << u << "," << v << "} invalid for n=" << n);
    ++g.offsets_[u + 1];
    ++g.offsets_[v + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) g.offsets_[i] += g.offsets_[i - 1];
  g.neighbors_.resize(packed.size() * 2);
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  // Scanning edges in (u, v) order fills every CSR row ascending: row x
  // first receives the u's of edges (u, x) in increasing u (< x), then
  // the v's of edges (x, v) in increasing v (> x).  No per-row sort.
  for (const std::uint64_t pe : packed) {
    const auto u = static_cast<VertexId>(pe >> 32);
    const auto v = static_cast<VertexId>(pe & 0xffffffffULL);
    g.neighbors_[cursor[u]++] = v;
    g.neighbors_[cursor[v]++] = u;
  }
  return g;
}

Graph Graph::from_edges(std::size_t n,
                        const std::vector<std::pair<VertexId, VertexId>>& edges,
                        bool dedup) {
  GraphBuilder b(n);
  for (auto [u, v] : edges) {
    if (dedup && u == v) continue;
    PSL_EXPECTS_MSG(u != v, "self-loop " << u);
    b.add_edge(u, v);
  }
  Graph g = b.build();
  if (!dedup) {
    PSL_CHECK_MSG(g.edge_count() == edges.size(),
                  "duplicate edges in input edge list");
  }
  return g;
}

std::size_t Graph::max_degree() const {
  std::size_t d = 0;
  for (VertexId v = 0; v < vertex_count(); ++v) d = std::max(d, degree(v));
  return d;
}

double Graph::average_degree() const {
  if (vertex_count() == 0) return 0.0;
  return 2.0 * static_cast<double>(edge_count()) /
         static_cast<double>(vertex_count());
}

bool Graph::has_edge(VertexId u, VertexId v) const {
  PSL_EXPECTS(u < vertex_count() && v < vertex_count());
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

std::vector<std::pair<VertexId, VertexId>> Graph::edges() const {
  std::vector<std::pair<VertexId, VertexId>> out;
  out.reserve(edge_count());
  for (VertexId u = 0; u < vertex_count(); ++u)
    for (VertexId v : neighbors(u))
      if (u < v) out.emplace_back(u, v);
  return out;
}

void GraphBuilder::add_edge(VertexId u, VertexId v) {
  PSL_EXPECTS_MSG(u < n_ && v < n_,
                  "edge {" << u << "," << v << "} out of range n=" << n_);
  if (u == v) return;
  if (u > v) std::swap(u, v);
  edges_.emplace_back(u, v);
}

Graph GraphBuilder::build() {
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  Graph g;
  g.offsets_.assign(n_ + 1, 0);
  for (auto [u, v] : edges_) {
    ++g.offsets_[u + 1];
    ++g.offsets_[v + 1];
  }
  for (std::size_t i = 1; i <= n_; ++i) g.offsets_[i] += g.offsets_[i - 1];
  g.neighbors_.resize(edges_.size() * 2);
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (auto [u, v] : edges_) {
    g.neighbors_[cursor[u]++] = v;
    g.neighbors_[cursor[v]++] = u;
  }
  // CSR rows are sorted because edges_ was sorted by (u, v) and insertions
  // per row happen in ascending order of the opposite endpoint only for the
  // first endpoint; sort each row to make neighbor lists canonical.
  for (std::size_t v = 0; v < n_; ++v)
    std::sort(g.neighbors_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v]),
              g.neighbors_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v + 1]));
  edges_.clear();
  return g;
}

}  // namespace pslocal
