// Graph generators for tests, examples and experiment workloads.
// All generators are deterministic given the Rng state.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace pslocal {

/// Erdős–Rényi G(n, p).
Graph gnp(std::size_t n, double p, Rng& rng);

/// Cycle C_n (n >= 3).
Graph ring(std::size_t n);

/// Path P_n.
Graph path(std::size_t n);

/// w x h grid with 4-neighborhoods.
Graph grid(std::size_t w, std::size_t h);

/// Complete graph K_n.
Graph complete(std::size_t n);

/// Complete bipartite K_{a,b}.
Graph complete_bipartite(std::size_t a, std::size_t b);

/// Disjoint union of cliques with the given sizes.  The independence
/// number equals the number of cliques — used by tests with known alpha.
Graph disjoint_cliques(const std::vector<std::size_t>& sizes);

/// Random d-regular-ish graph via random perfect matchings union
/// (multi-edges dropped, so degrees are <= d).
Graph random_near_regular(std::size_t n, std::size_t d, Rng& rng);

/// Chung–Lu style graph with power-law-ish expected degrees
/// w_i proportional to (i+1)^{-1/(beta-1)}, scaled to average degree
/// `avg_deg`.  Produces heavy-tailed degree sequences.
Graph power_law(std::size_t n, double beta, double avg_deg, Rng& rng);

/// Random tree on n vertices via random attachment.
Graph random_tree(std::size_t n, Rng& rng);

/// The d-dimensional hypercube Q_d (2^d vertices, Δ = d).
Graph hypercube(std::size_t d);

/// Caterpillar: a spine path of `spine` vertices, each with `legs` leaves.
Graph caterpillar(std::size_t spine, std::size_t legs);

/// Random bipartite graph with sides a, b and edge probability p.
Graph random_bipartite(std::size_t a, std::size_t b, double p, Rng& rng);

}  // namespace pslocal
