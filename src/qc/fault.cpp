#include "qc/fault.hpp"

#include <algorithm>
#include <future>
#include <numeric>
#include <sstream>
#include <thread>

#include "service/engine.hpp"
#include "util/check.hpp"

namespace pslocal::qc {

void ShuffledScheduler::run_chunks(
    std::size_t n, std::size_t grain,
    const std::function<void(runtime::ChunkRange)>& body) {
  PSL_EXPECTS(grain > 0);
  const std::size_t chunks = runtime::chunk_count(n, grain);
  if (chunks == 0) return;
  ++regions_;
  std::vector<std::size_t> order(chunks);
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng_.shuffle(order);
  for (const std::size_t c : order) {
    const std::size_t begin = c * grain;
    const std::size_t end = std::min(n, begin + grain);
    body(runtime::ChunkRange{begin, end, c});
  }
}

FaultPlan arbitrary_fault_plan(Rng& rng) {
  FaultPlan plan;
  plan.seed = rng.next_u64();
  plan.queue_capacity = 2 + rng.next_below(6);
  plan.burst = plan.queue_capacity + rng.next_below(10);
  plan.cache_entries = 1 + rng.next_below(4);
  plan.graph_cache_entries = rng.next_below(3);
  plan.disable_cache = rng.next_bool(0.25);
  plan.shuffle_scheduler = rng.next_bool(0.75);
  return plan;
}

FaultReport run_fault_plan(const FaultPlan& plan,
                           const service::Trace& trace) {
  FaultReport report;
  ShuffledScheduler shuffled(plan.seed);
  service::EngineConfig cfg;
  cfg.queue_capacity = plan.queue_capacity;
  cfg.cache.max_entries = plan.cache_entries;
  cfg.cache.enabled = !plan.disable_cache;
  cfg.graph_cache_entries = plan.graph_cache_entries;
  if (plan.shuffle_scheduler) cfg.scheduler = &shuffled;
  service::ServiceEngine engine(cfg);

  const std::size_t total = trace.requests.size();
  std::vector<std::future<service::Response>> futures(total);
  std::vector<bool> accepted(total, false);

  // Phase 1 — queue-full burst against the un-started engine (the
  // deterministic admission probe): exactly queue_capacity submissions
  // fit, the overflow must come back kQueueFull, and a rejection must
  // leave every cache untouched.
  const std::size_t burst = std::min(plan.burst, total);
  for (std::size_t i = 0; i < burst; ++i) {
    auto sub = engine.submit(trace.requests[i]);
    switch (sub.admission) {
      case service::Admission::kAccepted:
        futures[i] = std::move(sub.response);
        accepted[i] = true;
        break;
      case service::Admission::kQueueFull:
        ++report.probe_rejected_full;
        break;
      case service::Admission::kShutdown:
        report.error = "shutdown admission from a running engine";
        return report;
    }
  }
  const std::size_t expected_rejects =
      burst > plan.queue_capacity ? burst - plan.queue_capacity : 0;
  if (report.probe_rejected_full != expected_rejects) {
    std::ostringstream os;
    os << "admission probe not deterministic: " << report.probe_rejected_full
       << " kQueueFull, expected " << expected_rejects;
    report.error = os.str();
    return report;
  }
  const auto probe_stats = engine.stats();
  report.cache_untouched_on_reject =
      probe_stats.cache.hits == 0 && probe_stats.cache.misses == 0 &&
      probe_stats.cache.entries == 0 && probe_stats.graph_cache.builds == 0;
  if (!report.cache_untouched_on_reject) {
    report.error = "kQueueFull rejection mutated cache state";
    return report;
  }

  engine.start();

  // Phase 2 — submit everything not yet admitted; kQueueFull now just
  // means the dispatcher has not drained yet, so retry until accepted.
  for (std::size_t i = 0; i < total; ++i) {
    if (accepted[i]) continue;
    for (;;) {
      auto sub = engine.submit(trace.requests[i]);
      if (sub.admission == service::Admission::kAccepted) {
        futures[i] = std::move(sub.response);
        accepted[i] = true;
        break;
      }
      if (sub.admission == service::Admission::kShutdown) {
        report.error = "shutdown admission while the engine is running";
        return report;
      }
      ++report.retries;
      std::this_thread::yield();
    }
  }

  // Differential verification: every response must be kOk with payload
  // bytes identical to a direct solver call on a clean sequential
  // scheduler — no cache, no batching, no shuffled schedule.
  runtime::SequentialScheduler reference;
  for (std::size_t i = 0; i < total; ++i) {
    const service::Response resp = futures[i].get();
    if (resp.status != service::Response::Status::kOk) {
      std::ostringstream os;
      os << "request " << trace.requests[i].id << " not served kOk: "
         << resp.reason;
      report.error = os.str();
      return report;
    }
    if (resp.id != trace.requests[i].id) {
      report.error = "response id does not match its request";
      return report;
    }
    ++report.served;
    const std::string direct =
        service::execute_request(trace.requests[i], reference);
    if (direct != resp.result) {
      if (report.mismatches == 0) report.first_mismatch_id = resp.id;
      ++report.mismatches;
    }
  }

  const auto stats = engine.stats();
  engine.stop();
  report.cache_evictions = stats.cache.evictions;
  if (stats.served != total) {
    std::ostringstream os;
    os << "served " << stats.served << " responses for " << total
       << " accepted requests (exactly-once violated)";
    report.error = os.str();
    return report;
  }
  if (stats.errors != 0) {
    report.error = "engine reported solver errors on valid requests";
    return report;
  }
  if (report.mismatches > 0) {
    std::ostringstream os;
    os << report.mismatches << " payloads differ from the direct solver "
       << "call (first id " << report.first_mismatch_id << ")";
    report.error = os.str();
  }
  return report;
}

}  // namespace pslocal::qc
